// The long-horizon history gate: N snapshots (mixed JSON / .lclb) are
// ordered by timestamp and checked for *sustained* trends — the
// regression class a pairwise --compare structurally cannot see. The
// synthetic three-snapshot drift here (two steps of 0.10 against a 0.15
// tolerance, each step individually under the pairwise gate) is the
// canonical case the mode exists for.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "compare.hpp"
#include "core/json.hpp"
#include "core/snapshot.hpp"

namespace lcl {
namespace {

using bench::HistoryOptions;
using bench::history_snapshots;
namespace json = core::json;

std::string write_temp(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream f(path, std::ios::binary);
  f << body;
  EXPECT_TRUE(f.good()) << path;
  return path;
}

/// A schema-faithful v3 snapshot with one series whose fit, scale-10
/// node-average, wall time, run count, and validity are all
/// parameterized — each knob drives one history check.
std::string snapshot_body(const std::string& timestamp, double exponent,
                          double node_avg, double wall_ms, int runs,
                          bool all_ok = true) {
  std::string run_list;
  for (int r = 0; r < runs; ++r) {
    const bool ok = all_ok || r + 1 < runs;  // last run degrades
    if (r > 0) run_list += ",\n";
    run_list += "     {\"scale\": " + std::to_string(10 * (r + 1)) +
                ", \"n\": " + std::to_string(10 * (r + 1)) +
                ", \"node_averaged\": " +
                std::to_string(node_avg * (r + 1)) +
                ", \"worst_case\": 4, \"status\": \"" +
                (ok ? "ok" : "truncated") +
                "\", \"valid\": " + (ok ? "true" : "false") + "}";
  }
  return "{\n\"schema\": \"lclbench-v3\",\n\"timestamp\": \"" + timestamp +
         "\",\n\"scenarios\": [\n"
         " {\"name\": \"s1\", \"wall_ms\": " + std::to_string(wall_ms) +
         ", \"metrics\": {},\n"
         "  \"series\": [\n"
         "   {\"title\": \"t1\", \"fitted_exponent\": " +
         std::to_string(exponent) + ",\n    \"runs\": [\n" + run_list +
         "\n    ]}\n  ]}\n]}\n";
}

std::string write_snapshot(const std::string& name,
                           const std::string& timestamp, double exponent,
                           double node_avg = 2.0, double wall_ms = 100,
                           int runs = 2, bool all_ok = true) {
  return write_temp(name, snapshot_body(timestamp, exponent, node_avg,
                                        wall_ms, runs, all_ok));
}

TEST(History, FlatHistoryIsClean) {
  const std::vector<std::string> paths = {
      write_snapshot("flat1.json", "2026-01-01T00:00:00Z", 0.50),
      write_snapshot("flat2.json", "2026-01-02T00:00:00Z", 0.50),
      write_snapshot("flat3.json", "2026-01-03T00:00:00Z", 0.50),
  };
  EXPECT_EQ(history_snapshots(paths, HistoryOptions{}), 0);
}

TEST(History, SustainedDriftUnderThePairwiseGateIsFlagged) {
  // 0.50 -> 0.60 -> 0.72: every step is under the 0.15 pairwise
  // tolerance, the three-snapshot total is not.
  const std::vector<std::string> paths = {
      write_snapshot("drift1.json", "2026-01-01T00:00:00Z", 0.50),
      write_snapshot("drift2.json", "2026-01-02T00:00:00Z", 0.60),
      write_snapshot("drift3.json", "2026-01-03T00:00:00Z", 0.72),
  };
  EXPECT_EQ(history_snapshots(paths, HistoryOptions{}), 1);
  // A pairwise compare of any adjacent pair stays clean — the trend is
  // invisible to it.
  EXPECT_EQ(bench::compare_snapshots(paths[0], paths[1],
                                     bench::CompareOptions{}),
            0);
  EXPECT_EQ(bench::compare_snapshots(paths[1], paths[2],
                                     bench::CompareOptions{}),
            0);
}

TEST(History, NoiseAroundALevelIsNotATrend) {
  // Same total excursion, but non-monotone: wobble, not drift.
  const std::vector<std::string> paths = {
      write_snapshot("noise1.json", "2026-01-01T00:00:00Z", 0.50),
      write_snapshot("noise2.json", "2026-01-02T00:00:00Z", 0.72),
      write_snapshot("noise3.json", "2026-01-03T00:00:00Z", 0.55),
  };
  EXPECT_EQ(history_snapshots(paths, HistoryOptions{}), 0);
}

TEST(History, DownwardDriftCountsToo) {
  const std::vector<std::string> paths = {
      write_snapshot("down1.json", "2026-01-01T00:00:00Z", 0.50),
      write_snapshot("down2.json", "2026-01-02T00:00:00Z", 0.40),
      write_snapshot("down3.json", "2026-01-03T00:00:00Z", 0.30),
  };
  EXPECT_EQ(history_snapshots(paths, HistoryOptions{}), 1);
}

TEST(History, TimestampsOrderTheHistoryNotTheArguments) {
  // Passed newest-first; ordered by timestamp the drift is monotone
  // and must still be flagged.
  const std::vector<std::string> paths = {
      write_snapshot("ooo3.json", "2026-01-03T00:00:00Z", 0.72),
      write_snapshot("ooo1.json", "2026-01-01T00:00:00Z", 0.50),
      write_snapshot("ooo2.json", "2026-01-02T00:00:00Z", 0.60),
  };
  EXPECT_EQ(history_snapshots(paths, HistoryOptions{}), 1);
}

TEST(History, TrendWindowBoundsTheLookback) {
  // The drift lives entirely in snapshots 1..3; snapshot 4 is flat.
  // Window 3 over the last three (0.60, 0.72, 0.72) sees no monotone
  // move beyond tolerance; window 4 sees the full 0.22 drift... but
  // the last step is flat, so even window 4 stays monotone (0.72 ==
  // 0.72 is a weakly monotone step) and flags it.
  const std::vector<std::string> paths = {
      write_snapshot("win1.json", "2026-01-01T00:00:00Z", 0.50),
      write_snapshot("win2.json", "2026-01-02T00:00:00Z", 0.60),
      write_snapshot("win3.json", "2026-01-03T00:00:00Z", 0.72),
      write_snapshot("win4.json", "2026-01-04T00:00:00Z", 0.72),
  };
  EXPECT_EQ(history_snapshots(paths, HistoryOptions{}), 0);
  HistoryOptions wide;
  wide.window = 4;
  EXPECT_EQ(history_snapshots(paths, wide), 1);
}

TEST(History, CoverageLossRespectsAllowMissing) {
  const std::string full =
      write_snapshot("cov_full.json", "2026-01-01T00:00:00Z", 0.50);
  const std::string empty = write_temp(
      "cov_empty.json",
      "{\"schema\": \"lclbench-v3\", \"timestamp\": "
      "\"2026-01-02T00:00:00Z\", \"scenarios\": []}");
  EXPECT_EQ(history_snapshots({full, empty}, HistoryOptions{}), 1);
  HistoryOptions allow;
  allow.allow_missing = true;
  EXPECT_EQ(history_snapshots({full, empty}, allow), 0);
}

TEST(History, ShrunkSweepAndNewFailuresAreRegressions) {
  const std::string before =
      write_snapshot("val1.json", "2026-01-01T00:00:00Z", 0.50, 2.0, 100,
                     /*runs=*/3);
  const std::string fewer =
      write_snapshot("val2.json", "2026-01-02T00:00:00Z", 0.50, 2.0, 100,
                     /*runs=*/2);
  EXPECT_EQ(history_snapshots({before, fewer}, HistoryOptions{}), 1);
  const std::string failing =
      write_snapshot("val3.json", "2026-01-02T00:00:00Z", 0.50, 2.0, 100,
                     /*runs=*/3, /*all_ok=*/false);
  EXPECT_EQ(history_snapshots({before, failing}, HistoryOptions{}), 1);
}

TEST(History, WallTrendGateIsOptIn) {
  const std::vector<std::string> paths = {
      write_snapshot("wall1.json", "2026-01-01T00:00:00Z", 0.5, 2.0, 100),
      write_snapshot("wall2.json", "2026-01-02T00:00:00Z", 0.5, 2.0, 130),
      write_snapshot("wall3.json", "2026-01-03T00:00:00Z", 0.5, 2.0, 170),
  };
  EXPECT_EQ(history_snapshots(paths, HistoryOptions{}), 0)
      << "wall gate off by default";
  HistoryOptions gated;
  gated.tol_wall = 1.5;
  EXPECT_EQ(history_snapshots(paths, gated), 1);
  gated.tol_wall = 2.0;
  EXPECT_EQ(history_snapshots(paths, gated), 0);
}

TEST(History, NodeAveragedTrendGateIsOptIn) {
  const std::vector<std::string> paths = {
      write_snapshot("avg1.json", "2026-01-01T00:00:00Z", 0.5, 2.0),
      write_snapshot("avg2.json", "2026-01-02T00:00:00Z", 0.5, 2.2),
      write_snapshot("avg3.json", "2026-01-03T00:00:00Z", 0.5, 2.5),
  };
  EXPECT_EQ(history_snapshots(paths, HistoryOptions{}), 0);
  HistoryOptions gated;
  gated.tol_avg = 0.20;
  EXPECT_EQ(history_snapshots(paths, gated), 1);
  gated.tol_avg = 0.30;
  EXPECT_EQ(history_snapshots(paths, gated), 0);
}

TEST(History, MixedJsonAndBinaryHistoriesWork) {
  // The middle snapshot rides in .lclb form; the trend must be flagged
  // exactly as in the all-JSON case.
  const std::string s1 =
      write_snapshot("mix1.json", "2026-01-01T00:00:00Z", 0.50);
  const std::string s2_path = ::testing::TempDir() + "mix2.lclb";
  core::snapshot::write_file(
      s2_path, json::parse(snapshot_body("2026-01-02T00:00:00Z", 0.60,
                                         2.0, 100, 2)));
  const std::string s3 =
      write_snapshot("mix3.json", "2026-01-03T00:00:00Z", 0.72);
  EXPECT_EQ(history_snapshots({s1, s2_path, s3}, HistoryOptions{}), 1);
  EXPECT_EQ(history_snapshots({s1, s2_path}, HistoryOptions{}), 0);
}

TEST(History, UsageAndReadErrorsExitTwo) {
  const std::string one =
      write_snapshot("solo.json", "2026-01-01T00:00:00Z", 0.50);
  EXPECT_EQ(history_snapshots({one}, HistoryOptions{}), 2);
  EXPECT_EQ(history_snapshots({one, "/nonexistent/past.lclb"},
                              HistoryOptions{}),
            2);
  const std::string junk = write_temp("junk.json", "{not json");
  EXPECT_EQ(history_snapshots({one, junk}, HistoryOptions{}), 2);
  const std::string alien = write_temp(
      "alien.json", "{\"schema\": \"other-v1\", \"scenarios\": []}");
  EXPECT_EQ(history_snapshots({one, alien}, HistoryOptions{}), 2);
}

}  // namespace
}  // namespace lcl
