// Definition-8 levels: centralized peeling vs. the distributed
// LevelProgram, masked levels, and structural properties.
#include <gtest/gtest.h>

#include "algo/level_program.hpp"
#include "graph/builders.hpp"
#include "local/engine.hpp"
#include "problems/levels.hpp"
#include "test_util.hpp"

namespace lcl {
namespace {

using graph::NodeId;
using graph::Tree;

TEST(Levels, PathIsAllLevelOne) {
  const Tree t = graph::make_path(20);
  const auto levels = problems::compute_levels(t, 3);
  for (int lv : levels) EXPECT_EQ(lv, 1);
}

TEST(Levels, StarCenterPeelsSecond) {
  const Tree t = graph::make_star(5);
  const auto levels = problems::compute_levels(t, 2);
  EXPECT_EQ(levels[0], 2);  // center has degree 5, peels once leaves gone
  for (NodeId v = 1; v <= 5; ++v) {
    EXPECT_EQ(levels[static_cast<std::size_t>(v)], 1);
  }
}

TEST(Levels, SurvivorsGetLevelKPlusOne) {
  // A complete binary-ish tree deep enough that k=1 leaves survivors.
  const Tree t = graph::make_balanced_weight_tree(200, 4);
  const auto levels = problems::compute_levels(t, 1);
  bool has_survivor = false;
  for (int lv : levels) {
    if (lv == 2) has_survivor = true;
  }
  EXPECT_TRUE(has_survivor);
}

TEST(Levels, MaskedLevelsIgnoreExcluded) {
  // A path where the middle node is excluded: both halves become
  // separate paths, still level 1 everywhere included.
  const Tree t = graph::make_path(9);
  std::vector<char> mask(9, 1);
  mask[4] = 0;
  const auto levels = problems::compute_levels_masked(t, 2, mask);
  EXPECT_EQ(levels[4], 0);
  for (NodeId v = 0; v < 9; ++v) {
    if (v == 4) continue;
    EXPECT_EQ(levels[static_cast<std::size_t>(v)], 1);
  }
}

class DistributedLevels : public ::testing::TestWithParam<int> {};

TEST_P(DistributedLevels, MatchesCentralized) {
  const int k = GetParam();
  const Tree t = graph::make_random_tree(400, 5, 77 + k);
  const auto central = problems::compute_levels(t, k);
  algo::LevelProgram program(t, k);
  local::Engine engine(t);
  const auto stats = engine.run(program);
  for (NodeId v = 0; v < t.size(); ++v) {
    EXPECT_EQ(stats.output[static_cast<std::size_t>(v)].primary,
              central[static_cast<std::size_t>(v)])
        << "node " << v << " k " << k;
  }
  // Level computation is a (k+1)-round procedure.
  EXPECT_LE(stats.worst_case, k + 1);
}

INSTANTIATE_TEST_SUITE_P(Ks, DistributedLevels, ::testing::Values(1, 2, 3, 4));

TEST(Levels, HierarchicalInstanceAllLevelsPresent) {
  const auto inst = graph::make_hierarchical_lower_bound({4, 4, 6});
  const auto levels = problems::compute_levels(inst.tree, 3);
  std::vector<int> count(5, 0);
  for (int lv : levels) count[static_cast<std::size_t>(lv)]++;
  EXPECT_GT(count[1], 0);
  EXPECT_GT(count[2], 0);
  EXPECT_GT(count[3], 0);
  EXPECT_EQ(count[4], 0);  // no level k+1 in the construction
  // Corollary 19: |L_i| = Omega(prod_{i<=j<=k} ell_j).
  EXPECT_GE(count[1], 4 * 4 * 6);
  EXPECT_GE(count[2], 4 * 6);
  EXPECT_GE(count[3], 6);
}

}  // namespace
}  // namespace lcl
