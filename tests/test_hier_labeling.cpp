// The standalone Definition-63 solver (Lemma 65): validity against the
// independent checker, the O(k n^{1/k}) assignment-round bound, and the
// Lemma-26 dichotomy witnessed on Pi^{3.5} runs.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/hier_labeling.hpp"
#include "algo/pi35.hpp"
#include "core/exponents.hpp"
#include "core/experiment.hpp"
#include "graph/builders.hpp"
#include "problems/checkers.hpp"
#include "problems/levels.hpp"
#include "test_util.hpp"

namespace lcl {
namespace {

using graph::NodeId;
using graph::Tree;

class HierLabelingSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(HierLabelingSweep, ValidOnRandomTrees) {
  const auto [k, seed] = GetParam();
  Tree t = graph::make_random_tree(1500, 5, seed);
  graph::assign_ids(t, graph::IdScheme::kShuffled, seed);
  const auto sol = algo::solve_hierarchical_labeling(t, k);
  test::assert_valid(problems::check_hierarchical_labeling(
      t, k + 1, sol.labels, sol.orientation));
  EXPECT_LE(sol.layers_used, k);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HierLabelingSweep,
    ::testing::Combine(::testing::Values(2, 3),
                       ::testing::Values(1u, 2u, 3u)));

TEST(HierLabeling, PathAndCaterpillar) {
  for (Tree t : {graph::make_path(500), graph::make_caterpillar(150, 2)}) {
    graph::assign_ids(t, graph::IdScheme::kShuffled, 4);
    const auto sol = algo::solve_hierarchical_labeling(t, 2);
    test::assert_valid(problems::check_hierarchical_labeling(
        t, 3, sol.labels, sol.orientation));
  }
}

TEST(HierLabeling, AssignmentRoundsAreRootK) {
  // Lemma 65: worst-case O(n^{1/k}) — the peel step count is bounded by
  // k * (gamma + 1) with gamma ~ n^{1/k}.
  for (int k : {2, 3}) {
    Tree t = graph::make_random_tree(20000, 4, 9);
    const auto sol = algo::solve_hierarchical_labeling(t, k);
    int max_round = 0;
    for (int r : sol.assign_round) max_round = std::max(max_round, r);
    EXPECT_LE(max_round,
              static_cast<int>(k * (sol.gamma + 2)))
        << "k " << k;
  }
}

TEST(HierLabeling, CheckerRejectsCorruptedOrientation) {
  Tree t = graph::make_random_tree(300, 4, 5);
  auto sol = algo::solve_hierarchical_labeling(t, 2);
  // Drop one rake node's outgoing orientation.
  for (NodeId v = 0; v < t.size(); ++v) {
    if (!problems::is_rake_label(sol.labels[static_cast<std::size_t>(v)])) {
      continue;
    }
    auto& ports = sol.orientation[static_cast<std::size_t>(v)];
    for (std::size_t p = 0; p < ports.size(); ++p) {
      if (ports[p] == problems::EdgeDir::kOutgoing) {
        ports[p] = problems::EdgeDir::kNone;
        const NodeId u = t.neighbors(v)[p];
        for (std::size_t q = 0;
             q < sol.orientation[static_cast<std::size_t>(u)].size(); ++q) {
          if (t.neighbors(u)[q] == v) {
            sol.orientation[static_cast<std::size_t>(u)][q] =
                problems::EdgeDir::kNone;
          }
        }
        EXPECT_FALSE(problems::check_hierarchical_labeling(
                         t, 3, sol.labels, sol.orientation)
                         .ok);
        return;
      }
    }
  }
  FAIL() << "no oriented rake node found";
}

TEST(HierLabeling, Lemma26DichotomyWitness) {
  // Lemma 26: on the weighted construction, for every level i < k,
  // either all level-i active nodes output D, or a constant fraction of
  // them runs for Omega(ell'_i) rounds. Assert the disjunction on a real
  // Pi^{3.5} run.
  const int delta = 6, d = 3, k = 2;
  const std::int64_t lambda = 256;
  const double xp = core::efficiency_x_prime(delta, d);
  const auto alphas = core::alpha_profile_logstar(xp, k);
  const auto ell = core::lower_bound_lengths(
      alphas, static_cast<double>(lambda), 20000);
  auto inst = graph::make_weighted_construction(ell, delta);
  graph::assign_ids(inst.tree, graph::IdScheme::kShuffled, 21);

  algo::Pi35Options o;
  o.k = k;
  o.d = d;
  o.gammas.assign(1, std::max<std::int64_t>(2, inst.skeleton_lengths[0]));
  o.symmetry_pad = lambda;
  algo::Pi35Program program(inst.tree, o);
  local::Engine engine(inst.tree);
  const auto stats = engine.run(program);

  // Levels of the active subgraph.
  std::vector<char> mask(static_cast<std::size_t>(inst.tree.size()), 0);
  for (NodeId v = 0; v < inst.tree.size(); ++v) {
    mask[static_cast<std::size_t>(v)] =
        inst.tree.input(v) ==
                static_cast<int>(graph::WeightInput::kActive)
            ? 1
            : 0;
  }
  const auto levels =
      problems::compute_levels_masked(inst.tree, k, mask);

  for (int level = 1; level < k; ++level) {
    std::int64_t count = 0, declined = 0, slow = 0;
    const std::int64_t threshold =
        std::max<std::int64_t>(1, inst.skeleton_lengths[
                                      static_cast<std::size_t>(level - 1)] /
                                      10);
    for (NodeId v = 0; v < inst.tree.size(); ++v) {
      if (levels[static_cast<std::size_t>(v)] != level) continue;
      ++count;
      if (stats.output[static_cast<std::size_t>(v)].primary ==
          static_cast<int>(problems::Color::kD)) {
        ++declined;
      }
      if (stats.termination_round[static_cast<std::size_t>(v)] >=
          threshold) {
        ++slow;
      }
    }
    ASSERT_GT(count, 0);
    const bool all_declined = (declined == count);
    const bool third_slow = (3 * slow >= count);
    EXPECT_TRUE(all_declined || third_slow)
        << "level " << level << ": " << declined << "/" << count
        << " declined, " << slow << " slow";
  }
}

}  // namespace
}  // namespace lcl
