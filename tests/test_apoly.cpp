// A_poly on the weighted construction (Theorems 2/3): the composite
// solution is valid for Pi^{2.5}_{Delta,d,k}, and the measured
// node-average tracks n^{alpha_1}.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/apoly.hpp"
#include "core/exponents.hpp"
#include "core/experiment.hpp"
#include "graph/builders.hpp"
#include "problems/checkers.hpp"
#include "test_util.hpp"

namespace lcl {
namespace {

using graph::Tree;
using problems::Variant;

algo::ApolyOptions make_options(const Tree& t, int delta, int d, int k) {
  algo::ApolyOptions o;
  o.k = k;
  o.d = d;
  const double x = core::efficiency_x(delta, d);
  const auto alphas = core::alpha_profile_poly(x, k);
  o.gammas = core::gammas_from_profile(
      alphas, static_cast<double>(t.size()));
  return o;
}

class ApolySweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ApolySweep, ValidOnWeightedConstruction) {
  const auto [delta, d, k] = GetParam();
  const double x = core::efficiency_x(delta, d);
  const auto alphas = core::alpha_profile_poly(x, k);
  const auto ell = core::lower_bound_lengths(alphas, 4000.0, 4000);
  auto inst = graph::make_weighted_construction(ell, delta);
  Tree& t = inst.tree;
  graph::assign_ids(t, graph::IdScheme::kShuffled, 7 * delta + d);

  const auto stats =
      algo::run_apoly(t, make_options(t, delta, d, k));
  test::assert_valid(
      problems::check_weighted(t, k, d, Variant::kTwoHalf, stats.output));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ApolySweep,
                         ::testing::Values(std::make_tuple(5, 2, 2),
                                           std::make_tuple(6, 3, 2),
                                           std::make_tuple(5, 2, 3),
                                           std::make_tuple(9, 4, 2),
                                           std::make_tuple(9, 6, 2)));

TEST(Apoly, NodeAverageScalesLikeAlpha1) {
  // Two sizes; the ratio of node-averages should track (n2/n1)^{alpha1}
  // within a generous factor.
  const int delta = 5, d = 2, k = 2;
  const double x = core::efficiency_x(delta, d);
  const double a1 = core::alpha1_poly(x, k);
  const auto alphas = core::alpha_profile_poly(x, k);

  double avg_small = 0, avg_large = 0;
  const std::int64_t n_small = 3000, n_large = 48000;
  for (std::int64_t target : {n_small, n_large}) {
    const auto ell = core::lower_bound_lengths(
        alphas, static_cast<double>(target), target);
    auto inst = graph::make_weighted_construction(ell, delta);
    Tree& t = inst.tree;
    graph::assign_ids(t, graph::IdScheme::kShuffled, 13);
    algo::ApolyOptions o;
    o.k = k;
    o.d = d;
    o.gammas = core::gammas_from_profile(
        alphas, static_cast<double>(t.size()));
    const auto stats = algo::run_apoly(t, o);
    test::assert_valid(problems::check_weighted(t, k, d,
                                                Variant::kTwoHalf,
                                                stats.output));
    (target == n_small ? avg_small : avg_large) = stats.node_averaged;
  }
  const double measured_ratio = avg_large / avg_small;
  const double predicted_ratio = std::pow(
      static_cast<double>(n_large) / n_small, a1);
  EXPECT_LT(measured_ratio, predicted_ratio * 3.5);
  EXPECT_GT(measured_ratio, predicted_ratio / 3.5);
}

TEST(Apoly, CopyNodesWaitForActives) {
  // Every Copy weight node must terminate no earlier than the active
  // node whose label it copies (the whole point of the weight gadget).
  const int delta = 5, d = 2, k = 2;
  const double x = core::efficiency_x(delta, d);
  const auto alphas = core::alpha_profile_poly(x, k);
  const auto ell = core::lower_bound_lengths(alphas, 6000.0, 6000);
  auto inst = graph::make_weighted_construction(ell, delta);
  Tree& t = inst.tree;
  graph::assign_ids(t, graph::IdScheme::kShuffled, 17);
  algo::ApolyOptions o;
  o.k = k;
  o.d = d;
  o.gammas = core::gammas_from_profile(alphas,
                                       static_cast<double>(t.size()));
  algo::ApolyProgram program(t, o);
  local::Engine engine(t);
  const auto stats = engine.run(program);
  test::assert_valid(
      problems::check_weighted(t, k, d, Variant::kTwoHalf, stats.output));

  using problems::WeightOut;
  std::int64_t copy_count = 0;
  for (graph::NodeId v = 0; v < t.size(); ++v) {
    if (t.input(v) != static_cast<int>(graph::WeightInput::kWeight)) {
      continue;
    }
    if (stats.output[static_cast<std::size_t>(v)].primary !=
        static_cast<int>(WeightOut::kCopy)) {
      continue;
    }
    ++copy_count;
    const graph::NodeId root =
        program.dfree().copy_root[static_cast<std::size_t>(v)];
    // The root's active neighbor(s): v terminates after at least one.
    bool after_some_active = false;
    for (graph::NodeId u : t.neighbors(root)) {
      if (t.input(u) == static_cast<int>(graph::WeightInput::kActive) &&
          stats.termination_round[static_cast<std::size_t>(v)] >
              stats.termination_round[static_cast<std::size_t>(u)]) {
        after_some_active = true;
      }
    }
    EXPECT_TRUE(after_some_active) << "node " << v;
  }
  EXPECT_GT(copy_count, 0);
}

}  // namespace
}  // namespace lcl
