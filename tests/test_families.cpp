// Instance-family registry: every named family must yield connected,
// degree-bounded instances at a range of sizes, deterministically in the
// seed, and the registry lookups/selection parsing must be exact.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/builders.hpp"
#include "graph/families.hpp"
#include "graph/tree.hpp"

namespace lcl {
namespace {

using graph::NodeId;
using graph::Tree;

TEST(Families, RegistryHasThePaperShapes) {
  const std::vector<std::string> names = graph::family_names();
  const std::set<std::string> have(names.begin(), names.end());
  for (const char* required :
       {"path", "cycle", "star", "caterpillar", "dary", "spider", "broom",
        "binary_pendant", "galton_watson", "prufer", "random_attach"}) {
    EXPECT_TRUE(have.count(required)) << "missing family " << required;
  }
  // The registry grew by at least 6 named tree shapes beyond the seed's
  // hand-wired path/cycle/star/caterpillar/random set.
  EXPECT_GE(names.size(), 10u);
}

TEST(Families, EveryFamilyConnectedAndDegreeBounded) {
  for (const graph::Family& f : graph::all_families()) {
    for (const NodeId n : {8, 60, 500}) {
      const Tree t = graph::make_family_instance(f.name, n, /*seed=*/3);
      // Families round n to their shape grid but must stay in the same
      // ballpark and never come back empty.
      EXPECT_GE(t.size(), std::min<NodeId>(n / 2, 30)) << f.name;
      EXPECT_LE(t.size(), 4 * n + 8) << f.name;
      const auto [comp, count] = graph::components(t);
      (void)comp;
      EXPECT_EQ(count, 1) << f.name << " disconnected at n=" << n;
      if (f.is_tree) {
        EXPECT_TRUE(t.is_tree()) << f.name << " not a tree at n=" << n;
        EXPECT_TRUE(t.forest_checked()) << f.name;
      } else {
        EXPECT_FALSE(t.forest_checked()) << f.name;
      }
      if (f.default_delta > 0) {
        EXPECT_LE(t.max_degree(), f.default_delta)
            << f.name << " exceeds its default degree bound at n=" << n;
      }
      t.validate_ids();
    }
  }
}

TEST(Families, ExplicitDeltaIsRespected) {
  for (const char* name : {"galton_watson", "prufer", "random_attach"}) {
    const Tree t =
        graph::make_family_instance(name, 400, /*seed=*/9, /*delta=*/3);
    EXPECT_LE(t.max_degree(), 3) << name;
    EXPECT_TRUE(t.is_tree()) << name;
  }
  const Tree cat =
      graph::make_family_instance("caterpillar", 300, 0, /*delta=*/4);
  EXPECT_LE(cat.max_degree(), 4);
}

TEST(Families, UnsatisfiableExplicitDeltaThrows) {
  // Shape-determined families take no degree parameter at all; a bound
  // a family cannot honor must throw, never be silently substituted.
  for (const char* name : {"path", "cycle", "star", "broom"}) {
    EXPECT_THROW((void)graph::make_family_instance(name, 50, 0, 4),
                 std::invalid_argument)
        << name;
  }
  EXPECT_THROW((void)graph::make_family_instance("dary", 50, 0, 2),
               std::invalid_argument);
  EXPECT_THROW(
      (void)graph::make_family_instance("binary_pendant", 50, 0, 2),
      std::invalid_argument);
  EXPECT_THROW((void)graph::make_family_instance("caterpillar", 50, 0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)graph::make_family_instance("spider", 50, 0, 1),
               std::invalid_argument);
  // delta = 2 is the tightest honorable spider bound (a path).
  EXPECT_LE(graph::make_family_instance("spider", 50, 0, 2).max_degree(),
            2);
}

TEST(Families, RandomFamiliesAreSeedDeterministic) {
  for (const graph::Family& f : graph::all_families()) {
    if (!f.randomized) continue;
    const Tree a = graph::make_family_instance(f.name, 300, 42);
    const Tree b = graph::make_family_instance(f.name, 300, 42);
    const Tree c = graph::make_family_instance(f.name, 300, 43);
    ASSERT_EQ(a.size(), b.size()) << f.name;
    bool identical_ab = true;
    bool identical_ac = a.size() == c.size();
    for (NodeId v = 0; v < a.size(); ++v) {
      const auto na = a.neighbors(v);
      const auto nb = b.neighbors(v);
      ASSERT_EQ(na.size(), nb.size()) << f.name << " node " << v;
      for (std::size_t p = 0; p < na.size(); ++p) {
        identical_ab = identical_ab && na[p] == nb[p];
      }
      if (identical_ac && v < c.size()) {
        const auto nc = c.neighbors(v);
        identical_ac = identical_ac && na.size() == nc.size();
        for (std::size_t p = 0; identical_ac && p < na.size(); ++p) {
          identical_ac = na[p] == nc[p];
        }
      }
    }
    EXPECT_TRUE(identical_ab) << f.name << " not seed-deterministic";
    EXPECT_FALSE(identical_ac) << f.name << " ignores its seed";
  }
}

TEST(Families, LookupAndErrors) {
  EXPECT_NE(graph::find_family("spider"), nullptr);
  EXPECT_EQ(graph::find_family("moebius"), nullptr);
  EXPECT_THROW((void)graph::make_family_instance("moebius", 10),
               std::invalid_argument);
}

TEST(Families, ParseFamilyList) {
  const auto all = graph::parse_family_list("all");
  EXPECT_GE(all.size(), 6u);
  for (const std::string& name : all) {
    const graph::Family* f = graph::find_family(name);
    ASSERT_NE(f, nullptr);
    EXPECT_TRUE(f->is_tree) << "'all' must select only tree families";
  }
  EXPECT_EQ(graph::parse_family_list(""), all);

  const auto picked = graph::parse_family_list("spider,broom,cycle");
  ASSERT_EQ(picked.size(), 3u);
  EXPECT_EQ(picked[0], "spider");
  EXPECT_EQ(picked[1], "broom");
  EXPECT_EQ(picked[2], "cycle");  // non-tree families by explicit name

  EXPECT_THROW((void)graph::parse_family_list("spider,nope"),
               std::invalid_argument);
}

TEST(Families, SpecificShapes) {
  const Tree spider = graph::make_spider(5, 7);
  EXPECT_EQ(spider.size(), 1 + 5 * 7);
  EXPECT_EQ(spider.degree(0), 5);
  EXPECT_TRUE(spider.is_tree());

  const Tree broom = graph::make_broom(10, 6);
  EXPECT_EQ(broom.size(), 16);
  EXPECT_EQ(broom.degree(9), 7);  // handle end: 1 path + 6 bristles
  EXPECT_TRUE(broom.is_tree());

  const Tree bp = graph::make_binary_with_pendant_paths(15, 33);
  EXPECT_EQ(bp.size(), 48);
  EXPECT_TRUE(bp.is_tree());
  EXPECT_LE(bp.max_degree(), 3);

  const Tree gw = graph::make_galton_watson_tree(777, 4, 5);
  EXPECT_EQ(gw.size(), 777);
  EXPECT_TRUE(gw.is_tree());
  EXPECT_LE(gw.max_degree(), 4);

  const Tree pr = graph::make_prufer_tree(500, 6, 11);
  EXPECT_EQ(pr.size(), 500);
  EXPECT_TRUE(pr.is_tree());
  EXPECT_LE(pr.max_degree(), 6);

  // Uncapped Prüfer decodes a valid labeled tree too.
  const Tree pru = graph::make_prufer_tree(200, 0, 13);
  EXPECT_EQ(pru.size(), 200);
  EXPECT_TRUE(pru.is_tree());
}

}  // namespace
}  // namespace lcl
