// Weight-augmented 2.5-coloring (Section 10 / Lemma 69): composite
// validity (Definition 67 checker) and the Theta(n^{1/k}) node-average.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/weight_aug.hpp"
#include "core/fitting.hpp"
#include "graph/builders.hpp"
#include "problems/checkers.hpp"
#include "test_util.hpp"

namespace lcl {
namespace {

using graph::Tree;

graph::WeightedInstance make_instance(int k, std::int64_t target_n,
                                      std::uint64_t seed) {
  // Classical worst-case shape: all levels have length ~ n^{1/k}.
  const double l = std::pow(static_cast<double>(target_n),
                            1.0 / static_cast<double>(k));
  std::vector<std::int64_t> ell(
      static_cast<std::size_t>(k),
      std::max<std::int64_t>(2, static_cast<std::int64_t>(std::llround(l))));
  auto inst = graph::make_weighted_construction(ell, 5);
  graph::assign_ids(inst.tree, graph::IdScheme::kShuffled, seed);
  return inst;
}

class WeightAugSweep : public ::testing::TestWithParam<int> {};

TEST_P(WeightAugSweep, ValidOnWeightedConstruction) {
  const int k = GetParam();
  auto inst = make_instance(k, 4000, 31 + static_cast<std::uint64_t>(k));
  algo::WeightAugOptions o;
  o.k = k;
  problems::OrientationMap orient;
  const auto stats = algo::run_weight_aug(inst.tree, o, &orient);
  test::assert_valid(
      problems::check_weight_augmented(inst.tree, k, stats.output, orient));
}

INSTANTIATE_TEST_SUITE_P(Ks, WeightAugSweep, ::testing::Values(2, 3));

TEST(WeightAug, NodeAverageScalesLikeRootK) {
  const int k = 2;
  std::vector<core::Sample> samples;
  for (std::int64_t n : {2000, 8000, 32000}) {
    auto inst = make_instance(k, n, 7);
    algo::WeightAugOptions o;
    o.k = k;
    problems::OrientationMap orient;
    const auto stats = algo::run_weight_aug(inst.tree, o, &orient);
    test::assert_valid(problems::check_weight_augmented(
        inst.tree, k, stats.output, orient));
    samples.push_back({static_cast<double>(inst.tree.size()),
                       stats.node_averaged});
  }
  const auto fit = core::fit_power_law(samples);
  // Lemma 69: Theta(n^{1/2}) for k = 2.
  EXPECT_GT(fit.exponent, 0.5 - 0.2);
  EXPECT_LT(fit.exponent, 0.5 + 0.2);
}

TEST(WeightAug, MostWeightCopiesTheHost) {
  // Lemma 68: Omega(w) of each balanced weight tree copies the host's
  // output (efficiency factor x = 1).
  auto inst = make_instance(2, 6000, 11);
  algo::WeightAugOptions o;
  o.k = 2;
  problems::OrientationMap orient;
  const auto stats = algo::run_weight_aug(inst.tree, o, &orient);
  std::int64_t weight = 0, copying = 0;
  for (graph::NodeId v = 0; v < inst.tree.size(); ++v) {
    if (inst.tree.input(v) !=
        static_cast<int>(graph::WeightInput::kWeight)) {
      continue;
    }
    ++weight;
    if (stats.output[static_cast<std::size_t>(v)].secondary >= 0) {
      ++copying;
    }
  }
  ASSERT_GT(weight, 0);
  EXPECT_GT(static_cast<double>(copying),
            0.9 * static_cast<double>(weight));
}

}  // namespace
}  // namespace lcl
