// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "graph/builders.hpp"
#include "graph/tree.hpp"
#include "local/engine.hpp"
#include "problems/checkers.hpp"

namespace lcl::test {

/// Asserts a CheckResult passed, printing the checker's reason otherwise.
inline void expect_valid(const problems::CheckResult& r) {
  EXPECT_TRUE(r.ok) << r.reason;
}

inline void assert_valid(const problems::CheckResult& r) {
  ASSERT_TRUE(r.ok) << r.reason;
}

/// All primary outputs of a run.
inline std::vector<int> primaries(const local::RunStats& stats) {
  return stats.primaries();
}

}  // namespace lcl::test
