// Rake-and-compress decompositions (Definitions 71/43, Lemma 72):
// validity of both variants and the layer-count bounds.
#include <gtest/gtest.h>

#include <cmath>

#include "decomp/rake_compress.hpp"
#include "graph/builders.hpp"
#include "test_util.hpp"

namespace lcl {
namespace {

using decomp::LayerKind;
using graph::NodeId;
using graph::Tree;

TEST(Decomp, PathProperDecomposition) {
  const Tree t = graph::make_path(1000);
  const auto d = decomp::rake_compress(t, 1, 4, /*split_paths=*/true);
  EXPECT_EQ(decomp::validate_decomposition(t, d), "");
  // A bare path compresses almost entirely in layer 1.
  std::int64_t compress1 = 0;
  for (NodeId v = 0; v < t.size(); ++v) {
    const auto& a = d.assignment[static_cast<std::size_t>(v)];
    if (a.kind == LayerKind::kCompress && a.layer == 1) ++compress1;
  }
  EXPECT_GT(compress1, 780);
}

TEST(Decomp, RelaxedKeepsWholeChains) {
  const Tree t = graph::make_path(100);
  const auto d = decomp::rake_compress(t, 1, 4, /*split_paths=*/false);
  EXPECT_EQ(decomp::validate_decomposition(t, d), "");
  // One chain of ~98 compress nodes in layer 1 (relaxed: no [ell, 2ell]
  // upper bound).
  std::int64_t compress1 = 0;
  for (NodeId v = 0; v < t.size(); ++v) {
    const auto& a = d.assignment[static_cast<std::size_t>(v)];
    if (a.kind == LayerKind::kCompress) ++compress1;
  }
  EXPECT_GT(compress1, 90);
}

TEST(Decomp, GammaOneGivesLogLayers) {
  // Lemma 72: gamma = 1 => O(log n) layers.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Tree t = graph::make_random_tree(20000, 4, seed);
    const auto d = decomp::rake_compress(t, 1, 4, true);
    EXPECT_EQ(decomp::validate_decomposition(t, d), "");
    EXPECT_LE(d.num_layers,
              4 * static_cast<int>(std::log2(t.size())) + 8);
  }
}

TEST(Decomp, GammaRootKGivesKLayers) {
  // Lemma 72: gamma ~ n^{1/k} (ell/2)^{1-1/k} => at most k rake layers.
  const Tree t = graph::make_random_tree(10000, 4, 3);
  for (int k : {2, 3}) {
    const int gamma = static_cast<int>(
        std::ceil(std::pow(static_cast<double>(t.size()),
                           1.0 / static_cast<double>(k)) *
                  std::pow(2.0, 1.0 - 1.0 / k)));
    const auto d = decomp::rake_compress(t, gamma, 4, true);
    EXPECT_EQ(decomp::validate_decomposition(t, d), "");
    EXPECT_LE(d.num_layers, k) << "k=" << k << " gamma=" << gamma;
  }
}

TEST(Decomp, BalancedTreeRakesInOneLayer) {
  // Balanced weight trees never compress: depth log(w) < gamma.
  const Tree t = graph::make_balanced_weight_tree(5000, 5);
  const auto d = decomp::rake_compress(t, 100, 4, true);
  EXPECT_EQ(decomp::validate_decomposition(t, d), "");
  EXPECT_EQ(d.num_layers, 1);
  for (NodeId v = 0; v < t.size(); ++v) {
    EXPECT_EQ(d.assignment[static_cast<std::size_t>(v)].kind,
              LayerKind::kRake);
  }
}

TEST(Decomp, CaterpillarMixesRakeAndCompress) {
  const Tree t = graph::make_caterpillar(300, 1);
  const auto d = decomp::rake_compress(t, 1, 4, true);
  EXPECT_EQ(decomp::validate_decomposition(t, d), "");
  bool has_rake = false, has_compress = false;
  for (NodeId v = 0; v < t.size(); ++v) {
    if (d.assignment[static_cast<std::size_t>(v)].kind == LayerKind::kRake) {
      has_rake = true;
    } else {
      has_compress = true;
    }
  }
  EXPECT_TRUE(has_rake);
  EXPECT_TRUE(has_compress);
}

TEST(Decomp, AssignStepsAreMonotoneInLayers) {
  const Tree t = graph::make_random_tree(2000, 5, 9);
  const auto d = decomp::rake_compress(t, 2, 4, true);
  EXPECT_EQ(decomp::validate_decomposition(t, d), "");
  for (NodeId v = 0; v < t.size(); ++v) {
    for (NodeId u : t.neighbors(v)) {
      const auto kv = decomp::layer_order_key(
          d.assignment[static_cast<std::size_t>(v)]);
      const auto ku = decomp::layer_order_key(
          d.assignment[static_cast<std::size_t>(u)]);
      if (kv < ku) {
        EXPECT_LE(d.assign_step[static_cast<std::size_t>(v)],
                  d.assign_step[static_cast<std::size_t>(u)]);
      }
    }
  }
}

TEST(Decomp, RejectsCycle) {
  const Tree t = graph::make_cycle(50);
  EXPECT_THROW(decomp::rake_compress(t, 1, 100, true), std::runtime_error);
}

}  // namespace
}  // namespace lcl
