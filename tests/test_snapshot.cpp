// The .lclb binary snapshot codec: lossless round-trips through the
// core::json::dump golden path (property: dump(decode(encode(v))) ==
// dump(v), including the 53-bit integral problem seeds), the committed
// golden .lclb pinned byte-for-byte against its JSON twin, truncation /
// corruption error paths, and the headline size contract — the binary
// form of the committed BENCH_all snapshot is at least 5x smaller than
// the JSON with zero information loss.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/json.hpp"
#include "core/snapshot.hpp"

namespace lcl {
namespace {

namespace json = core::json;
namespace snap = core::snapshot;

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

/// The codec's round-trip contract at the dump level.
void expect_lossless(const std::string& json_text) {
  const json::Value v = json::parse(json_text);
  const std::string bytes = snap::encode(v);
  EXPECT_EQ(json::dump(snap::decode(bytes)), json::dump(v)) << json_text;
}

TEST(SnapshotCodec, ScalarsAndContainersRoundTrip) {
  expect_lossless("null");
  expect_lossless("true");
  expect_lossless("[false, null, true]");
  expect_lossless("\"\"");
  expect_lossless(R"("esc \"\\\n\t done")");
  expect_lossless("[]");
  expect_lossless("{}");
  expect_lossless(R"({"a": {"b": [{"c": []}, {}]}, "d": "a"})");
}

TEST(SnapshotCodec, NumbersRoundTripExactly) {
  // Integral window edges, 53-bit problem seeds, short decimals that
  // take the scaled-varint path, and doubles that need raw bits.
  expect_lossless(
      "[0, -1, 1, 9007199254740991, -9007199254740991, "
      "9007199254740992, 2614017550591987, 14.998, -0.125, 1408.4, "
      "0.000012, 3.5557e7, 1e300, -1e-300, 0.1, "
      "0.3333333333333333, 41.9634]");
}

TEST(SnapshotCodec, RawDoubleBitsSurvive) {
  for (const double d :
       {-0.0, 0.1, 1e-300, 1e300, 2.2250738585072014e-308,
        0.30000000000000004}) {
    json::Value v;
    v.type = json::Value::Type::kNumber;
    v.number = d;
    const json::Value back = snap::decode(snap::encode(v));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.number),
              std::bit_cast<std::uint64_t>(d));
  }
}

/// A schema-faithful run array (the shape write_json emits), with the
/// optional columns varying per row: build_ms on some rows, a non-ok
/// status with check_reason on one.
const char* kRunArrayJson = R"([
  {"scale": 64, "n": 67516, "node_averaged": 14.998, "worst_case": 83,
   "term_p50": 7, "term_p90": 83, "term_p99": 83,
   "term_hist": [0, 0, 0, 45012, 15004, 0, 0, 7500],
   "reps": 1, "reps_ok": 1, "na_stddev": 0, "na_min": 14.998,
   "na_max": 14.998, "status": "ok", "valid": true},
  {"scale": 192, "n": 64303, "node_averaged": 24.7274, "worst_case": 217,
   "build_ms": 1.25, "term_p50": 11, "term_p90": 14, "term_p99": 217,
   "term_hist": [0, 0, 0, 0, 60018, 0, 0, 0, 4285],
   "reps": 2, "reps_ok": 2, "na_stddev": 0.05, "na_min": 24.7,
   "na_max": 24.75, "status": "ok", "valid": true},
  {"scale": 576, "n": 62548, "node_averaged": 42.1818, "worst_case": 611,
   "term_p50": 19, "term_p90": 24, "term_p99": 611,
   "term_hist": [0, 0, 0, 0, 15012, 45036],
   "reps": 1, "reps_ok": 0, "na_stddev": 0, "na_min": 42.1818,
   "na_max": 42.1818, "status": "truncated", "valid": false,
   "check_reason": "hit max_rounds 1000"}
])";

TEST(SnapshotCodec, RunColumnarRoundTripsWithOptionalColumns) {
  expect_lossless(kRunArrayJson);
}

TEST(SnapshotCodec, RunColumnarActuallyCompresses) {
  const json::Value v = json::parse(kRunArrayJson);
  const std::string bytes = snap::encode(v);
  // Well under the source text; the exact ratio is pinned by the
  // BENCH_all contract below, this is the smoke version.
  EXPECT_LT(bytes.size() * 3, std::string(kRunArrayJson).size());
}

TEST(SnapshotCodec, NonCanonicalRunArraysFallBackLosslessly) {
  // Reordered keys, unknown keys, and mixed element shapes must not be
  // forced through the columnar path — only stay lossless.
  expect_lossless(R"([{"n": 5, "scale": 10}])");           // reordered
  expect_lossless(R"([{"scale": 10, "extra": 1}])");       // unknown key
  expect_lossless(R"([{"scale": 10}, 7, "x"])");           // mixed types
  expect_lossless(R"([{"scale": "ten"}])");                // wrong kind
  expect_lossless(R"([{"valid": true}, {"valid": false}])");
}

TEST(SnapshotCodec, GoldenBinaryTwinMatchesGoldenJson) {
  // The committed .lclb must decode to exactly the committed JSON's
  // dump (which the json round-trip suite pins as dump-canonical), and
  // the encoder must reproduce the committed bytes — any wire-format
  // change shows up here as a golden diff plus a format-version review.
  const std::string golden_json = read_file(LCL_GOLDEN_SNAPSHOT);
  const std::string golden_lclb = read_file(LCL_GOLDEN_LCLB);
  ASSERT_FALSE(golden_json.empty());
  ASSERT_FALSE(golden_lclb.empty());
  const json::Value v = json::parse(golden_json);
  EXPECT_EQ(json::dump(snap::decode(golden_lclb)), golden_json);
  EXPECT_EQ(snap::encode(v), golden_lclb)
      << "encoder drift: regenerate tests/golden/lclbench_v3_golden.lclb "
         "with `lclbench --export` and bump kFormatVersion if decode of "
         "old bytes changed";
}

TEST(SnapshotCodec, BenchAllIsLosslessAndFiveTimesSmaller) {
  const std::string json_text = read_file(LCL_BENCH_ALL_JSON);
  ASSERT_FALSE(json_text.empty());
  const json::Value v = json::parse(json_text);
  const std::string bytes = snap::encode(v);
  // Zero information loss at the dump level...
  EXPECT_EQ(json::dump(snap::decode(bytes)), json::dump(v));
  // ...at a >= 5x size reduction (the headline contract)...
  EXPECT_LE(bytes.size() * 5, json_text.size())
      << "binary " << bytes.size() << " bytes vs JSON "
      << json_text.size();
  // ...and the committed BENCH_all.lclb is exactly this encoding.
  EXPECT_EQ(read_file(LCL_BENCH_ALL_LCLB), bytes)
      << "stale BENCH_all.lclb: regenerate with "
         "`lclbench --export BENCH_all.json BENCH_all.lclb`";
}

TEST(SnapshotCodec, EveryTruncationThrows) {
  const std::string bytes = snap::encode(json::parse(kRunArrayJson));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW((void)snap::decode(std::string_view(bytes).substr(0, cut)),
                 std::runtime_error)
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(SnapshotCodec, CorruptStreamsThrowInsteadOfMisparsing) {
  const std::string good = snap::encode(json::parse(R"({"a": [1, 2]})"));
  // Bad magic.
  std::string bad = good;
  bad[0] = 'X';
  EXPECT_THROW((void)snap::decode(bad), std::runtime_error);
  // Unsupported format version.
  bad = good;
  bad[4] = static_cast<char>(snap::kFormatVersion + 1);
  EXPECT_THROW((void)snap::decode(bad), std::runtime_error);
  // Unknown value tag.
  bad = good;
  bad[5] = '\x7F';
  EXPECT_THROW((void)snap::decode(bad), std::runtime_error);
  // Trailing garbage after a complete document.
  bad = good + "tail";
  EXPECT_THROW((void)snap::decode(bad), std::runtime_error);
  // A count that overruns the remaining payload must be rejected
  // before any allocation sized by it.
  EXPECT_THROW(
      (void)snap::decode(std::string("LCLB\x01\x06\xff\xff\xff\x7f", 10)),
      std::runtime_error);
}

TEST(SnapshotCodec, FileHelpersSniffAndRoundTrip) {
  const json::Value v = json::parse(kRunArrayJson);
  const std::string dir = ::testing::TempDir();
  const std::string lclb_path = dir + "codec_rt.lclb";
  const std::string json_path = dir + "codec_rt.json";
  snap::write_file(lclb_path, v);
  {
    std::ofstream f(json_path, std::ios::binary);
    f << json::dump(v);
  }
  EXPECT_TRUE(snap::is_snapshot_file(lclb_path));
  EXPECT_FALSE(snap::is_snapshot_file(json_path));
  EXPECT_FALSE(snap::is_snapshot_file(dir + "missing.lclb"));
  // load_any dispatches on the sniffed magic, not the extension.
  EXPECT_EQ(json::dump(snap::load_any(lclb_path)), json::dump(v));
  EXPECT_EQ(json::dump(snap::load_any(json_path)), json::dump(v));
  EXPECT_EQ(json::dump(snap::read_file(lclb_path)), json::dump(v));
  EXPECT_THROW((void)snap::read_file(dir + "missing.lclb"),
               std::runtime_error);
  EXPECT_THROW((void)snap::read_file(json_path), std::runtime_error);
}

}  // namespace
}  // namespace lcl
