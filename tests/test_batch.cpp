// BatchRunner: deterministic, thread-count-invariant sweep execution.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "core/batch.hpp"
#include "graph/builders.hpp"
#include "local/engine.hpp"
#include "problems/checkers.hpp"
#include "test_util.hpp"

namespace lcl {
namespace {

using core::BatchJob;
using core::BatchOptions;
using core::BatchRunner;
using core::MeasuredRun;

/// Deterministic seed-sensitive workload: node v terminates at round
/// 1 + ((v * seed) % 7), so node_averaged depends on both the instance
/// size and the seed.
class SeededStagger final : public local::Program {
 public:
  explicit SeededStagger(std::uint64_t seed) : seed_(seed) {}
  void on_init(local::NodeCtx&) override {}
  void on_round(local::NodeCtx& ctx) override {
    const std::int64_t target =
        1 + static_cast<std::int64_t>(
                (static_cast<std::uint64_t>(ctx.node()) * seed_) % 7);
    if (ctx.round() >= target) ctx.terminate(0);
  }

 private:
  std::uint64_t seed_;
};

std::vector<BatchJob> make_stagger_jobs(int count) {
  std::vector<BatchJob> jobs;
  for (int i = 0; i < count; ++i) {
    BatchJob job;
    job.label = "stagger-" + std::to_string(i);
    job.scale = 100.0 + i;
    job.seed = static_cast<std::uint64_t>(2 * i + 3);
    job.run = [i](std::uint64_t seed) {
      graph::Tree t = graph::make_path(100 + i);
      SeededStagger p(seed);
      local::Engine engine(t);
      const local::RunStats stats = engine.run(p);
      MeasuredRun r;
      r.scale = 100.0 + i;
      r.node_averaged = stats.node_averaged;
      r.worst_case = stats.worst_case;
      r.n = stats.n;
      r.status = core::RunStatus::kOk;
      return r;
    };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

TEST(BatchRunner, ResultsAreInJobOrder) {
  const auto jobs = make_stagger_jobs(12);
  BatchOptions opts;
  opts.threads = 4;
  BatchRunner runner(opts);
  const auto results = runner.run_all(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i].scale, jobs[i].scale);
    EXPECT_EQ(results[i].n, 100 + static_cast<std::int64_t>(i));
  }
}

TEST(BatchRunner, SingleVsMultiThreadIdentical) {
  const auto jobs = make_stagger_jobs(16);
  const auto serial = core::run_batch(jobs, 1);
  for (const int threads : {2, 4, 8}) {
    const auto parallel = core::run_batch(jobs, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_DOUBLE_EQ(parallel[i].node_averaged, serial[i].node_averaged)
          << "job " << i << " with " << threads << " threads";
      EXPECT_EQ(parallel[i].worst_case, serial[i].worst_case);
      EXPECT_EQ(parallel[i].n, serial[i].n);
      EXPECT_EQ(parallel[i].status, serial[i].status);
    }
  }
}

TEST(BatchRunner, RepeatedRunsAreDeterministic) {
  const auto jobs = make_stagger_jobs(8);
  BatchOptions opts;
  opts.threads = 3;
  BatchRunner runner(opts);
  const auto first = runner.run_all(jobs);
  const auto second = runner.run_all(jobs);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i].node_averaged, second[i].node_averaged);
    EXPECT_EQ(first[i].worst_case, second[i].worst_case);
  }
}

TEST(BatchRunner, ThrowingJobYieldsInvalidRunAndBatchCompletes) {
  auto jobs = make_stagger_jobs(4);
  BatchJob bad;
  bad.label = "bad";
  bad.scale = -1.0;
  bad.run = [](std::uint64_t) -> MeasuredRun {
    throw std::runtime_error("boom");
  };
  jobs.insert(jobs.begin() + 2, std::move(bad));
  const auto results = core::run_batch(jobs, 2);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_FALSE(results[2].ok());
  EXPECT_EQ(results[2].status, core::RunStatus::kException);
  EXPECT_NE(results[2].check_reason.find("boom"), std::string::npos);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[4].ok());
}

/// A run that hits max_rounds round-trips through the batch as a typed
/// kTruncated record with censored partial stats — the job is a
/// measurement, not an exception.
TEST(BatchRunner, TruncatedRunRoundTripsWithStatus) {
  class AllButOneStall final : public local::Program {
   public:
    void on_init(local::NodeCtx&) override {}
    void on_round(local::NodeCtx& ctx) override {
      if (ctx.node() == 0 && ctx.round() == 1) ctx.terminate(3);
    }
  };
  bool checker_ran = false;
  const BatchJob job = core::make_job(
      "stall", 8.0, 1,
      [](std::uint64_t) { return graph::make_path(8); },
      [](const graph::Tree&) { return std::make_unique<AllButOneStall>(); },
      [&checker_ran](const graph::Tree&, const local::RunStats&) {
        checker_ran = true;
        return problems::CheckResult::pass();
      },
      /*max_rounds=*/5);
  const auto results = core::run_batch({job}, 1);
  ASSERT_EQ(results.size(), 1u);
  const MeasuredRun& r = results[0];
  EXPECT_EQ(r.status, core::RunStatus::kTruncated);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(checker_ran) << "partial outputs must not be checked";
  EXPECT_NE(r.check_reason.find("round limit"), std::string::npos);
  EXPECT_EQ(r.n, 8);
  EXPECT_EQ(r.worst_case, 5);  // censored at the bound
  EXPECT_DOUBLE_EQ(r.node_averaged, (1 + 7 * 5) / 8.0);
  EXPECT_EQ(r.term.total(), 8);  // censored survivors included
  EXPECT_GE(r.build_ms, 0.0);
  EXPECT_EQ(r.reps_ok, 0);
}

/// A throwing instance builder is its own failure class.
TEST(BatchRunner, BuildFailureIsTyped) {
  const BatchJob job = core::make_job(
      "bad-build", 1.0, 0,
      [](std::uint64_t) -> graph::Tree {
        throw std::invalid_argument("bad generator parameters");
      },
      [](const graph::Tree&) -> std::unique_ptr<local::Program> {
        ADD_FAILURE() << "program must not be constructed";
        return nullptr;
      },
      [](const graph::Tree&, const local::RunStats&) {
        return problems::CheckResult::pass();
      });
  const auto results = core::run_batch({job}, 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, core::RunStatus::kBuildFailed);
  EXPECT_NE(results[0].check_reason.find("bad generator parameters"),
            std::string::npos);
  EXPECT_LT(results[0].build_ms, 0.0);  // never recorded
}

TEST(BatchRunner, MakeJobComposesBuilderProgramChecker) {
  // The canonical triple: build a path, 2-color it via a trivial
  // parity-of-index program, verify with the real checker.
  class Parity final : public local::Program {
   public:
    void on_init(local::NodeCtx& ctx) override {
      ctx.terminate(static_cast<int>(ctx.node() % 2));
    }
    void on_round(local::NodeCtx&) override {}
  };
  const BatchJob job = core::make_job(
      "parity", 64.0, 7,
      [](std::uint64_t) {
        graph::Tree t = graph::make_path(64);
        return t;
      },
      [](const graph::Tree&) { return std::make_unique<Parity>(); },
      [](const graph::Tree& t, const local::RunStats& stats) {
        return problems::check_two_coloring(t, stats.primaries());
      });
  const auto results = core::run_batch({job}, 2);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok()) << results[0].check_reason;
  EXPECT_EQ(results[0].n, 64);
  EXPECT_DOUBLE_EQ(results[0].scale, 64.0);
  // Every node terminates at init: the distribution is a point mass.
  EXPECT_EQ(results[0].term.total(), 64);
  EXPECT_EQ(results[0].term.p99, 0);
}

TEST(BatchRunner, MakeFamilyJobBuildsThroughTheRegistry) {
  // A do-nothing program (terminate at init) over registry families:
  // exercises family-by-name instance construction on worker threads,
  // including the per-thread arena, and the build-time recording.
  class Immediate final : public local::Program {
   public:
    void on_init(local::NodeCtx& ctx) override { ctx.terminate(0); }
    void on_round(local::NodeCtx&) override {}
  };
  std::vector<BatchJob> jobs;
  for (const char* family : {"spider", "broom", "prufer", "galton_watson"}) {
    jobs.push_back(core::make_family_job(
        family, 200.0, 5, family, 200, /*delta=*/0,
        [](const graph::Tree&) { return std::make_unique<Immediate>(); },
        [](const graph::Tree& t, const local::RunStats&) {
          return t.is_tree() ? problems::CheckResult::pass()
                             : problems::CheckResult::fail("not a tree");
        }));
  }
  const auto results = core::run_batch(jobs, 2);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok()) << r.check_reason;
    EXPECT_GE(r.n, 100);
    EXPECT_GE(r.build_ms, 0.0);
  }
  // Misconfiguration fails at construction, not on a worker: unknown
  // name, and a degree bound the family cannot honor.
  const auto program = [](const graph::Tree&) {
    return std::make_unique<Immediate>();
  };
  const auto pass = [](const graph::Tree&, const local::RunStats&) {
    return problems::CheckResult::pass();
  };
  EXPECT_THROW(
      (void)core::make_family_job("nope", 1.0, 0, "nope", 10, 0, program,
                                  pass),
      std::invalid_argument);
  EXPECT_THROW(
      (void)core::make_family_job("path", 1.0, 0, "path", 10, /*delta=*/4,
                                  program, pass),
      std::invalid_argument);
}

TEST(BatchRunner, EmptyBatchAndThreadCount) {
  BatchOptions opts;
  opts.threads = 5;
  BatchRunner runner(opts);
  EXPECT_EQ(runner.threads(), 5);
  EXPECT_TRUE(runner.run_all({}).empty());
}

}  // namespace
}  // namespace lcl
