// Checker failure injection: valid solutions pass; every class of
// corruption is rejected with a pinpointing reason.
#include <gtest/gtest.h>

#include "algo/generic_hier.hpp"
#include "graph/builders.hpp"
#include "problems/checkers.hpp"
#include "problems/labels.hpp"
#include "problems/levels.hpp"
#include "test_util.hpp"

namespace lcl {
namespace {

using graph::NodeId;
using graph::Tree;
using problems::Color;
using problems::Variant;

std::vector<int> valid_hier_solution(const Tree& t, int k, Variant variant) {
  algo::GenericOptions o;
  o.variant = variant;
  o.k = k;
  o.gammas.assign(static_cast<std::size_t>(k - 1), 4);
  return algo::run_generic(t, o).primaries();
}

TEST(Checkers, RejectsOutOfAlphabet) {
  const Tree t = graph::make_path(10);
  auto out = valid_hier_solution(t, 1, Variant::kTwoHalf);
  out[3] = 99;
  const auto r = problems::check_hierarchical_coloring(
      t, 1, Variant::kTwoHalf, out);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("alphabet"), std::string::npos);
}

TEST(Checkers, RejectsThreeColorInTwoHalf) {
  const Tree t = graph::make_path(10);
  auto out = valid_hier_solution(t, 1, Variant::kTwoHalf);
  out[0] = static_cast<int>(Color::kR);
  EXPECT_FALSE(problems::check_hierarchical_coloring(t, 1,
                                                     Variant::kTwoHalf, out)
                   .ok);
}

TEST(Checkers, RejectsMonochromeEdge) {
  const Tree t = graph::make_path(10);
  auto out = valid_hier_solution(t, 1, Variant::kTwoHalf);
  out[4] = out[5];
  EXPECT_FALSE(problems::check_hierarchical_coloring(t, 1,
                                                     Variant::kTwoHalf, out)
                   .ok);
}

TEST(Checkers, RejectsLevelOneExempt) {
  const Tree t = graph::make_path(10);
  auto out = valid_hier_solution(t, 1, Variant::kTwoHalf);
  out[2] = static_cast<int>(Color::kE);
  const auto r = problems::check_hierarchical_coloring(
      t, 1, Variant::kTwoHalf, out);
  EXPECT_FALSE(r.ok);
}

TEST(Checkers, RejectsLevelKDecline) {
  const auto inst = graph::make_hierarchical_lower_bound({9, 10});
  Tree t = inst.tree;
  auto out = valid_hier_solution(t, 2, Variant::kTwoHalf);
  const auto levels = problems::compute_levels(t, 2);
  for (NodeId v = 0; v < t.size(); ++v) {
    if (levels[static_cast<std::size_t>(v)] == 2) {
      out[static_cast<std::size_t>(v)] = static_cast<int>(Color::kD);
      break;
    }
  }
  EXPECT_FALSE(problems::check_hierarchical_coloring(t, 2,
                                                     Variant::kTwoHalf, out)
                   .ok);
}

TEST(Checkers, RejectsMissedExempt) {
  // Short level-1 paths color, so level-2 must be E; flip one to W.
  const auto inst = graph::make_hierarchical_lower_bound({3, 10});
  Tree t = inst.tree;
  algo::GenericOptions o;
  o.variant = Variant::kTwoHalf;
  o.k = 2;
  o.gammas = {10};
  auto out = algo::run_generic(t, o).primaries();
  const auto levels = problems::compute_levels(t, 2);
  for (NodeId v = 0; v < t.size(); ++v) {
    if (levels[static_cast<std::size_t>(v)] == 2) {
      out[static_cast<std::size_t>(v)] = static_cast<int>(Color::kW);
      break;
    }
  }
  const auto r = problems::check_hierarchical_coloring(
      t, 2, Variant::kTwoHalf, out);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("must be E"), std::string::npos);
}

TEST(Checkers, RejectsColorAdjacentToSameLevelDecline) {
  // Construct by hand: a path of 5 level-1 nodes labeled W,B,W,B,D —
  // the last W/B pair touches a same-level D.
  const Tree t = graph::make_path(5);
  std::vector<int> out = {
      static_cast<int>(Color::kW), static_cast<int>(Color::kB),
      static_cast<int>(Color::kW), static_cast<int>(Color::kB),
      static_cast<int>(Color::kD)};
  EXPECT_FALSE(problems::check_hierarchical_coloring(t, 2,
                                                     Variant::kTwoHalf, out)
                   .ok);
}

TEST(Checkers, AllDeclineOnLevelOnePathIsFine) {
  const Tree t = graph::make_path(5);
  std::vector<int> out(5, static_cast<int>(Color::kD));
  test::expect_valid(problems::check_hierarchical_coloring(
      t, 2, Variant::kTwoHalf, out));
}

TEST(Checkers, ThreeColoringChecker) {
  const Tree t = graph::make_path(4);
  std::vector<int> ok = {
      static_cast<int>(Color::kR), static_cast<int>(Color::kG),
      static_cast<int>(Color::kY), static_cast<int>(Color::kR)};
  test::expect_valid(problems::check_three_coloring(t, ok));
  ok[1] = static_cast<int>(Color::kR);
  EXPECT_FALSE(problems::check_three_coloring(t, ok).ok);
}

TEST(Checkers, DFreeChecker) {
  // Star with A center: center must not decline.
  Tree t = graph::make_star(4);
  t.set_input(0, static_cast<int>(problems::DFreeInput::kA));
  for (NodeId v = 1; v <= 4; ++v) {
    t.set_input(v, static_cast<int>(problems::DFreeInput::kW));
  }
  using problems::WeightOut;
  std::vector<int> out(5, static_cast<int>(WeightOut::kDecline));
  out[0] = static_cast<int>(WeightOut::kCopy);
  // Copy with 4 declining neighbors: needs d >= 4.
  EXPECT_TRUE(problems::check_dfree_weight(t, 4, out).ok);
  EXPECT_FALSE(problems::check_dfree_weight(t, 3, out).ok);
  // An A node declining is always invalid.
  out[0] = static_cast<int>(WeightOut::kDecline);
  EXPECT_FALSE(problems::check_dfree_weight(t, 4, out).ok);
  // Connect needs support.
  out[0] = static_cast<int>(WeightOut::kConnect);
  EXPECT_FALSE(problems::check_dfree_weight(t, 4, out).ok);
}

TEST(Checkers, OrientationConsistency) {
  using problems::EdgeDir;
  const Tree t = graph::make_path(2);
  problems::OrientationMap orient(2);
  orient[0] = {EdgeDir::kOutgoing};
  orient[1] = {EdgeDir::kOutgoing};  // both claim outgoing: inconsistent
  std::vector<int> labels = {problems::rake_label(1),
                             problems::rake_label(1)};
  const auto r = problems::check_hierarchical_labeling(t, 1, labels, orient);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("inconsistent"), std::string::npos);
}

TEST(Checkers, HierarchicalLabelingSmoke) {
  using problems::EdgeDir;
  // A 3-node path, all rake label R1, oriented toward node 2.
  const Tree t = graph::make_path(3);
  problems::OrientationMap orient(3);
  orient[0] = {EdgeDir::kOutgoing};
  orient[1] = {EdgeDir::kIncoming, EdgeDir::kOutgoing};
  orient[2] = {EdgeDir::kIncoming};
  std::vector<int> labels(3, problems::rake_label(1));
  test::expect_valid(
      problems::check_hierarchical_labeling(t, 2, labels, orient));
  // Unoriented edge at a rake node fails Rule 1.
  orient[0][0] = EdgeDir::kNone;
  orient[1][0] = EdgeDir::kNone;
  EXPECT_FALSE(
      problems::check_hierarchical_labeling(t, 2, labels, orient).ok);
}

}  // namespace
}  // namespace lcl
