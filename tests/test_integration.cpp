// Cross-module integration and property tests: the composite solvers on
// *random* mixed Active/Weight instances (not just the paper's clean
// constructions), determinism, checker failure injection on composite
// outputs, and conservation properties of the engine accounting.
#include <gtest/gtest.h>

#include <random>

#include "algo/apoly.hpp"
#include "algo/pi35.hpp"
#include "core/experiment.hpp"
#include "core/exponents.hpp"
#include "graph/builders.hpp"
#include "problems/checkers.hpp"
#include "problems/labels.hpp"
#include "test_util.hpp"

namespace lcl {
namespace {

using graph::NodeId;
using graph::Tree;
using problems::Variant;
using problems::WeightOut;

/// A random tree with a random subset of nodes marked Active such that
/// the active subgraph is nonempty; everything else is Weight.
Tree random_marked_tree(NodeId n, int delta, double active_fraction,
                        std::uint64_t seed) {
  Tree t = graph::make_random_tree(n, delta, seed);
  std::mt19937_64 rng(seed * 7919 + 13);
  std::bernoulli_distribution coin(active_fraction);
  bool any_active = false;
  for (NodeId v = 0; v < n; ++v) {
    const bool active = coin(rng);
    t.set_input(v, static_cast<int>(active ? graph::WeightInput::kActive
                                           : graph::WeightInput::kWeight));
    any_active = any_active || active;
  }
  if (!any_active) t.set_input(0, static_cast<int>(graph::WeightInput::kActive));
  graph::assign_ids(t, graph::IdScheme::kShuffled, seed + 1);
  return t;
}

class ApolyRandomSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(ApolyRandomSweep, ValidOnRandomMixedInstances) {
  const auto [seed, fraction] = GetParam();
  Tree t = random_marked_tree(1200, 5, fraction, seed);
  algo::ApolyOptions o;
  o.k = 2;
  o.d = 2;
  o.gammas = {8};
  const auto stats = algo::run_apoly(t, o);
  const auto check = problems::check_weighted(t, o.k, o.d,
                                              Variant::kTwoHalf,
                                              stats.output);
  ASSERT_TRUE(check.ok) << check.reason << " (seed " << seed
                        << ", fraction " << fraction << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApolyRandomSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(0.1, 0.3, 0.7)));

class Pi35RandomSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(Pi35RandomSweep, ValidOnRandomMixedInstances) {
  const auto [seed, fraction] = GetParam();
  Tree t = random_marked_tree(1200, 6, fraction, seed + 100);
  algo::Pi35Options o;
  o.k = 2;
  o.d = 3;
  o.gammas = {8};
  const auto stats = algo::run_pi35(t, o);
  const auto check = problems::check_weighted(t, o.k, o.d,
                                              Variant::kThreeHalf,
                                              stats.output);
  ASSERT_TRUE(check.ok) << check.reason << " (seed " << seed
                        << ", fraction " << fraction << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Pi35RandomSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(0.1, 0.3, 0.7)));

TEST(Integration, ApolyIsDeterministic) {
  Tree t = random_marked_tree(800, 5, 0.2, 42);
  algo::ApolyOptions o;
  o.k = 2;
  o.d = 2;
  o.gammas = {6};
  const auto a = algo::run_apoly(t, o);
  const auto b = algo::run_apoly(t, o);
  ASSERT_EQ(a.output.size(), b.output.size());
  for (std::size_t i = 0; i < a.output.size(); ++i) {
    EXPECT_EQ(a.output[i].primary, b.output[i].primary);
    EXPECT_EQ(a.output[i].secondary, b.output[i].secondary);
    EXPECT_EQ(a.termination_round[i], b.termination_round[i]);
  }
}

TEST(Integration, EngineAccountingConsistent) {
  Tree t = random_marked_tree(1000, 5, 0.25, 7);
  algo::ApolyOptions o;
  o.k = 2;
  o.d = 2;
  o.gammas = {8};
  const auto stats = algo::run_apoly(t, o);
  std::int64_t total = 0;
  std::int64_t worst = 0;
  for (std::int64_t r : stats.termination_round) {
    total += r;
    worst = std::max(worst, r);
  }
  EXPECT_EQ(total, stats.total_rounds);
  EXPECT_EQ(worst, stats.worst_case);
  EXPECT_DOUBLE_EQ(stats.node_averaged,
                   static_cast<double>(total) / stats.n);
  // Every round up to the last one had at least one live node.
  EXPECT_LE(stats.rounds, stats.worst_case + 1);
}

TEST(Integration, WeightedCheckerFailureInjection) {
  const double x = core::efficiency_x(5, 2);
  const auto alphas = core::alpha_profile_poly(x, 2);
  const auto ell = core::lower_bound_lengths(alphas, 4000.0, 4000);
  auto inst = graph::make_weighted_construction(ell, 5);
  Tree& t = inst.tree;
  graph::assign_ids(t, graph::IdScheme::kShuffled, 3);
  algo::ApolyOptions o;
  o.k = 2;
  o.d = 2;
  for (int i = 0; i + 1 < o.k; ++i) {
    o.gammas.push_back(std::max<std::int64_t>(
        2, inst.skeleton_lengths[static_cast<std::size_t>(i)]));
  }
  const auto stats = algo::run_apoly(t, o);
  test::assert_valid(
      problems::check_weighted(t, 2, 2, Variant::kTwoHalf, stats.output));

  // (a) Corrupt a Copy node's secondary output.
  {
    auto bad = stats.output;
    for (NodeId v = 0; v < t.size(); ++v) {
      if (t.input(v) == static_cast<int>(graph::WeightInput::kWeight) &&
          bad[static_cast<std::size_t>(v)].primary ==
              static_cast<int>(WeightOut::kCopy)) {
        bad[static_cast<std::size_t>(v)].secondary =
            (bad[static_cast<std::size_t>(v)].secondary + 1) % 4;
        break;
      }
    }
    EXPECT_FALSE(
        problems::check_weighted(t, 2, 2, Variant::kTwoHalf, bad).ok);
  }
  // (b) Make an active-adjacent weight node Decline.
  {
    auto bad = stats.output;
    for (NodeId v = 0; v < t.size(); ++v) {
      if (t.input(v) != static_cast<int>(graph::WeightInput::kWeight)) {
        continue;
      }
      bool touches_active = false;
      for (NodeId u : t.neighbors(v)) {
        touches_active =
            touches_active ||
            t.input(u) == static_cast<int>(graph::WeightInput::kActive);
      }
      if (touches_active) {
        bad[static_cast<std::size_t>(v)] = {
            static_cast<int>(WeightOut::kDecline), -1};
        break;
      }
    }
    EXPECT_FALSE(
        problems::check_weighted(t, 2, 2, Variant::kTwoHalf, bad).ok);
  }
  // (c) Corrupt an active node's coloring.
  {
    auto bad = stats.output;
    for (NodeId v = 0; v < t.size(); ++v) {
      if (t.input(v) == static_cast<int>(graph::WeightInput::kActive)) {
        bad[static_cast<std::size_t>(v)].primary =
            static_cast<int>(problems::Color::kE);
        break;
      }
    }
    EXPECT_FALSE(
        problems::check_weighted(t, 2, 2, Variant::kTwoHalf, bad).ok);
  }
}

TEST(Integration, CopyCountsShrinkWithLargerD) {
  // More Decline budget => fewer forced copies (monotone efficiency).
  std::int64_t copies[2] = {0, 0};
  int idx = 0;
  for (int d : {2, 6}) {
    const std::vector<double> profile = {0.45};
    const auto ell = core::lower_bound_lengths(profile, 20000.0, 20000);
    auto inst = graph::make_weighted_construction(ell, 9);
    graph::assign_ids(inst.tree, graph::IdScheme::kShuffled, 5);
    algo::ApolyOptions o;
    o.k = 2;
    o.d = d;
    o.gammas.assign(1, std::max<std::int64_t>(2, inst.skeleton_lengths[0]));
    const auto stats = algo::run_apoly(inst.tree, o);
    test::assert_valid(problems::check_weighted(
        inst.tree, 2, d, Variant::kTwoHalf, stats.output));
    for (const auto& out : stats.output) {
      copies[idx] += (out.primary == static_cast<int>(WeightOut::kCopy));
    }
    ++idx;
  }
  EXPECT_GT(copies[0], copies[1]);
}

}  // namespace
}  // namespace lcl
