// The generic algorithm (Section 4.1): validity on every instance family,
// round-bound sanity, and the k = 1 degenerations (pure 2-coloring with
// Theta(n) node-average, pure 3-coloring with Theta(log*) rounds).
#include <gtest/gtest.h>

#include <cmath>

#include "algo/generic_hier.hpp"
#include "graph/builders.hpp"
#include "problems/checkers.hpp"
#include "problems/labels.hpp"
#include "problems/levels.hpp"
#include "test_util.hpp"

namespace lcl {
namespace {

using algo::GenericOptions;
using graph::NodeId;
using graph::Tree;
using problems::Color;
using problems::Variant;

GenericOptions opts(Variant variant, int k, std::vector<std::int64_t> gammas,
                    std::int64_t pad = 0) {
  GenericOptions o;
  o.variant = variant;
  o.k = k;
  o.gammas = std::move(gammas);
  o.symmetry_pad = pad;
  return o;
}

// --- k = 1 degenerations ---------------------------------------------

TEST(Generic, TwoColoringOnPathIsProper) {
  Tree t = graph::make_path(101);
  graph::assign_ids(t, graph::IdScheme::kShuffled, 3);
  const auto stats = algo::run_generic(t, opts(Variant::kTwoHalf, 1, {}));
  test::assert_valid(problems::check_hierarchical_coloring(
      t, 1, Variant::kTwoHalf, stats.primaries()));
  // All W/B, alternating.
  test::expect_valid(problems::check_two_coloring(t, stats.primaries()));
}

TEST(Generic, TwoColoringNodeAverageIsLinear) {
  // Corollary 60 flavor: 2-coloring needs Theta(n) on average.
  double prev_avg = 0;
  for (NodeId n : {200, 400, 800}) {
    Tree t = graph::make_path(n);
    graph::assign_ids(t, graph::IdScheme::kShuffled, 5);
    const auto stats = algo::run_generic(t, opts(Variant::kTwoHalf, 1, {}));
    EXPECT_GT(stats.node_averaged, static_cast<double>(n) / 8.0);
    EXPECT_GT(stats.node_averaged, prev_avg);
    prev_avg = stats.node_averaged;
  }
}

TEST(Generic, ThreeColoringOnPathIsProperAndFast) {
  Tree t = graph::make_path(5000);
  graph::assign_ids(t, graph::IdScheme::kShuffled, 11);
  const auto stats = algo::run_generic(t, opts(Variant::kThreeHalf, 1, {}));
  test::assert_valid(problems::check_hierarchical_coloring(
      t, 1, Variant::kThreeHalf, stats.primaries()));
  test::expect_valid(problems::check_three_coloring(t, stats.primaries()));
  // Theta(log* n) + constants: for n = 5000 far below any linear bound.
  EXPECT_LE(stats.worst_case, 60);
}

TEST(Generic, ThreeColoringVirtualLogStarTarget) {
  Tree t = graph::make_path(500);
  const auto base = algo::run_generic(t, opts(Variant::kThreeHalf, 1, {}));
  // A target below the natural CV cost changes nothing.
  const auto low = algo::run_generic(t, opts(Variant::kThreeHalf, 1, {}, 10));
  EXPECT_EQ(low.worst_case, base.worst_case);
  // A target above it pads the phase to Lambda total rounds (+3 fixed
  // offset: phase start plus the final map-and-terminate rounds).
  const auto high =
      algo::run_generic(t, opts(Variant::kThreeHalf, 1, {}, 200));
  EXPECT_EQ(high.worst_case, 203);
  test::expect_valid(problems::check_three_coloring(t, high.primaries()));
}

// --- hierarchical instances (Figure 3) --------------------------------

class GenericHier : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GenericHier, ValidOnLowerBoundGraph) {
  const auto [k, variant_idx] = GetParam();
  const Variant variant =
      variant_idx == 0 ? Variant::kTwoHalf : Variant::kThreeHalf;
  std::vector<std::int64_t> ell;
  for (int i = 1; i < k; ++i) ell.push_back(4 + i);
  ell.push_back(12);
  const auto inst = graph::make_hierarchical_lower_bound(ell);
  Tree t = inst.tree;
  graph::assign_ids(t, graph::IdScheme::kShuffled, 17 * k + variant_idx);

  std::vector<std::int64_t> gammas(static_cast<std::size_t>(k - 1), 4);
  const auto stats = algo::run_generic(t, opts(variant, k, gammas));
  test::assert_valid(problems::check_hierarchical_coloring(
      t, k, variant, stats.primaries()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GenericHier,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0, 1)));

TEST(Generic, DeclinesLongPathsColorsShortOnes) {
  // Level-1 paths of length 9 with gamma_1 = 5: every level-1 path is
  // long, so all decline, and the level-2 path must 2-color.
  const auto inst = graph::make_hierarchical_lower_bound({9, 10});
  Tree t = inst.tree;
  graph::assign_ids(t, graph::IdScheme::kShuffled, 23);
  const auto stats = algo::run_generic(t, opts(Variant::kTwoHalf, 2, {5}));
  test::assert_valid(problems::check_hierarchical_coloring(
      t, 2, Variant::kTwoHalf, stats.primaries()));
  const auto out = stats.primaries();
  const auto levels = problems::compute_levels(t, 2);
  for (NodeId v = 0; v < t.size(); ++v) {
    if (levels[static_cast<std::size_t>(v)] == 1) {
      EXPECT_EQ(out[static_cast<std::size_t>(v)],
                static_cast<int>(Color::kD));
    } else {
      EXPECT_TRUE(out[static_cast<std::size_t>(v)] ==
                      static_cast<int>(Color::kW) ||
                  out[static_cast<std::size_t>(v)] ==
                      static_cast<int>(Color::kB));
    }
  }
}

TEST(Generic, ShortLowLevelPathsExemptHigherLevels) {
  // Level-1 paths of length 3 with gamma_1 = 10: they 2-color, so every
  // level-2 node becomes Exempt.
  const auto inst = graph::make_hierarchical_lower_bound({3, 10});
  Tree t = inst.tree;
  graph::assign_ids(t, graph::IdScheme::kShuffled, 29);
  const auto stats = algo::run_generic(t, opts(Variant::kTwoHalf, 2, {10}));
  test::assert_valid(problems::check_hierarchical_coloring(
      t, 2, Variant::kTwoHalf, stats.primaries()));
  const auto out = stats.primaries();
  const auto levels = problems::compute_levels(t, 2);
  for (NodeId v = 0; v < t.size(); ++v) {
    if (levels[static_cast<std::size_t>(v)] == 2) {
      EXPECT_EQ(out[static_cast<std::size_t>(v)],
                static_cast<int>(Color::kE));
    }
  }
}

TEST(Generic, RandomTreesAllVariants) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Tree t = graph::make_random_tree(600, 4, seed);
    graph::assign_ids(t, graph::IdScheme::kShuffled, seed);
    for (int k : {1, 2, 3}) {
      std::vector<std::int64_t> gammas(static_cast<std::size_t>(k - 1), 4);
      for (Variant variant : {Variant::kTwoHalf, Variant::kThreeHalf}) {
        const auto stats = algo::run_generic(t, opts(variant, k, gammas));
        test::assert_valid(problems::check_hierarchical_coloring(
            t, k, variant, stats.primaries()));
      }
    }
  }
}

TEST(Generic, NodeAveragedMatchesTheoryTwoHalf) {
  // BBK+23b: k-hier 2.5-coloring with optimal gammas is
  // Theta(n^{1/(2k-1)}); for k=2, exponent 1/3. We check the measured
  // averages grow sublinearly and in the right ballpark.
  const std::int64_t n_target = 30000;
  const double t13 = std::pow(static_cast<double>(n_target), 1.0 / 3.0);
  const std::int64_t ell1 = static_cast<std::int64_t>(t13);
  const auto inst = graph::make_hierarchical_lower_bound(
      {ell1, n_target / ell1});
  Tree t = inst.tree;
  graph::assign_ids(t, graph::IdScheme::kShuffled, 31);
  const auto stats = algo::run_generic(
      t, opts(Variant::kTwoHalf, 2, algo::gammas_for_25(t.size(), 2)));
  test::assert_valid(problems::check_hierarchical_coloring(
      t, 2, Variant::kTwoHalf, stats.primaries()));
  // Node average should be Theta(n^{1/3}): within a generous band.
  EXPECT_LT(stats.node_averaged, 12.0 * t13);
  EXPECT_GT(stats.node_averaged, t13 / 12.0);
}

}  // namespace
}  // namespace lcl
