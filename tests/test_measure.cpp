// The measurement summary layer: TermSummary histograms/percentiles
// (hand-computed distributions on a star and a path), pooling across
// repetitions, and the measure_run status taxonomy.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/experiment.hpp"
#include "graph/builders.hpp"
#include "local/engine.hpp"
#include "problems/checkers.hpp"

namespace lcl {
namespace {

using core::MeasuredRun;
using core::RunStatus;
using core::TermSummary;

/// Leaves terminate in round 1, internal nodes in round 2.
class LeavesFirst final : public local::Program {
 public:
  void on_init(local::NodeCtx&) override {}
  void on_round(local::NodeCtx& ctx) override {
    if (ctx.round() == 1 && ctx.degree() == 1) {
      ctx.terminate(0);
    } else if (ctx.round() == 2) {
      ctx.terminate(1);
    }
  }
};

/// Node v terminates at round v+1.
class Stagger final : public local::Program {
 public:
  void on_init(local::NodeCtx&) override {}
  void on_round(local::NodeCtx& ctx) override {
    if (ctx.round() == ctx.node() + 1) ctx.terminate(0);
  }
};

TEST(TermSummary, StarDistributionIsHandComputable) {
  // Star with 8 leaves: T_v = 1 for the 8 leaves, 2 for the center.
  graph::Tree t = graph::make_star(8);
  local::Engine engine(t);
  LeavesFirst p;
  const local::RunStats stats = engine.run(p);
  const TermSummary s = TermSummary::from_rounds(stats.termination_round);
  EXPECT_EQ(s.total(), 9);
  EXPECT_EQ(s.p50, 1);  // 5th of 9 sorted values
  EXPECT_EQ(s.p90, 2);  // rank ceil(0.9 * 9) = 9 -> the center
  EXPECT_EQ(s.p99, 2);
  // Buckets: [0], [1], [2..3] -> 0 / 8 leaves / 1 center.
  const std::vector<std::int64_t> hist = {0, 8, 1};
  EXPECT_EQ(s.hist, hist);
}

TEST(TermSummary, PathDistributionIsHandComputable) {
  graph::Tree t = graph::make_path(4);
  local::Engine engine(t);
  Stagger p;
  local::RunProfile profile;
  const local::RunStats stats =
      engine.run(p, std::numeric_limits<int>::max(), &profile);
  const TermSummary s = TermSummary::from_rounds(stats.termination_round);
  EXPECT_EQ(s.total(), 4);
  EXPECT_EQ(s.p50, 2);  // T = {1, 2, 3, 4}
  EXPECT_EQ(s.p90, 4);
  EXPECT_EQ(s.p99, 4);
  // Buckets: [0], [1], [2..3], [4..7] -> 0 / 1 / 2 / 1.
  const std::vector<std::int64_t> hist = {0, 1, 2, 1};
  EXPECT_EQ(s.hist, hist);
  // from_counts over the engine profile agrees with from_rounds.
  const TermSummary via_counts = TermSummary::from_counts(profile.term_count);
  EXPECT_EQ(via_counts.hist, s.hist);
  EXPECT_EQ(via_counts.p50, s.p50);
  EXPECT_EQ(via_counts.p90, s.p90);
  EXPECT_EQ(via_counts.p99, s.p99);
}

TEST(TermSummary, EmptyAndMergeSemantics) {
  const TermSummary empty;
  EXPECT_EQ(empty.total(), 0);
  EXPECT_TRUE(empty.hist.empty());

  // Merging into an empty summary copies the donor verbatim, keeping its
  // exact percentiles.
  TermSummary acc;
  TermSummary star;
  star.p50 = 1;
  star.p90 = 2;
  star.p99 = 2;
  star.hist = {0, 8, 1};
  acc.merge(star);
  EXPECT_EQ(acc.hist, star.hist);
  EXPECT_EQ(acc.p50, 1);

  // Merging an empty summary is a no-op.
  acc.merge(empty);
  EXPECT_EQ(acc.total(), 9);

  // Pooling two summaries recomputes percentiles at bucket resolution
  // (upper edge): 16 leaves + 2 centers -> p90 lands in bucket [2..3].
  acc.merge(star);
  EXPECT_EQ(acc.total(), 18);
  const std::vector<std::int64_t> pooled = {0, 16, 2};
  EXPECT_EQ(acc.hist, pooled);
  EXPECT_EQ(acc.p50, 1);
  EXPECT_EQ(acc.p90, 3);  // bucket edge, not the exact 2
}

TEST(MeasureRun, StatusTaxonomy) {
  graph::Tree t = graph::make_path(4);
  local::Engine engine(t);
  Stagger p;
  const local::RunStats full = engine.run(p);

  const MeasuredRun ok =
      core::measure_run(4.0, full, problems::CheckResult::pass());
  EXPECT_EQ(ok.status, RunStatus::kOk);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.reps, 1);
  EXPECT_EQ(ok.reps_ok, 1);
  EXPECT_DOUBLE_EQ(ok.na_min, ok.node_averaged);
  EXPECT_DOUBLE_EQ(ok.na_max, ok.node_averaged);
  EXPECT_EQ(ok.term.total(), 4);

  const MeasuredRun rejected =
      core::measure_run(4.0, full, problems::CheckResult::fail("bad color"));
  EXPECT_EQ(rejected.status, RunStatus::kCheckFailed);
  EXPECT_EQ(rejected.check_reason, "bad color");
  EXPECT_EQ(rejected.reps_ok, 0);

  local::Engine engine2(t);
  Stagger p2;
  const local::RunStats truncated = engine2.run(p2, 2);
  // Truncation wins over the checker verdict: partial outputs are not
  // checkable.
  const MeasuredRun trunc =
      core::measure_run(4.0, truncated, problems::CheckResult::pass());
  EXPECT_EQ(trunc.status, RunStatus::kTruncated);
  EXPECT_NE(trunc.check_reason.find("round limit 2"), std::string::npos);
  EXPECT_EQ(trunc.term.total(), 4);  // censored survivors included
  EXPECT_EQ(trunc.worst_case, 2);
}

TEST(MeasureRun, DefaultConstructedRecordIsAFailure) {
  // A record nobody filled in must never read as a valid measurement.
  const MeasuredRun empty;
  EXPECT_FALSE(empty.ok());
  EXPECT_EQ(empty.status, RunStatus::kException);
}

TEST(RunStatusNames, AreStableJsonTokens) {
  EXPECT_STREQ(core::to_string(RunStatus::kOk), "ok");
  EXPECT_STREQ(core::to_string(RunStatus::kCheckFailed), "check_failed");
  EXPECT_STREQ(core::to_string(RunStatus::kTruncated), "truncated");
  EXPECT_STREQ(core::to_string(RunStatus::kBuildFailed), "build_failed");
  EXPECT_STREQ(core::to_string(RunStatus::kException), "exception");
}

}  // namespace
}  // namespace lcl
