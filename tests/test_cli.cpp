// lclbench CLI hardening: malformed --algo-opt pairs, duplicate flags,
// and unknown scenario names must fail with exit code 2 and a clear
// one-line error — pinned here with exact-message death tests so a
// parser refactor can't silently regress the messages users script
// against.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario.hpp"

namespace lcl {
namespace {

/// Runs cli_main on a fresh argv inside a death-test child and asserts
/// on (exit code, stderr). cli_main both std::exit()s on usage errors
/// and returns codes; wrapping the return in std::exit covers both.
void expect_cli_failure(const std::vector<std::string>& args,
                        const std::string& message_regex) {
  std::vector<std::string> storage = args;
  storage.insert(storage.begin(), "lclbench");
  std::vector<char*> argv;
  argv.reserve(storage.size());
  for (std::string& s : storage) argv.push_back(s.data());
  EXPECT_EXIT(
      std::exit(bench::cli_main(static_cast<int>(argv.size()), argv.data(),
                                /*forced_scenario=*/"")),
      ::testing::ExitedWithCode(2), message_regex);
}

TEST(CliHardening, AlgoOptMissingEquals) {
  expect_cli_failure({"--run", "solver_matrix", "--algo-opt", "k3"},
                     "lclbench: --algo-opt malformed option 'k3' "
                     "\\(expected key=value\\)");
}

TEST(CliHardening, AlgoOptEmptyKey) {
  expect_cli_failure({"--run", "solver_matrix", "--algo-opt", "=3"},
                     "lclbench: --algo-opt malformed option '=3' "
                     "\\(expected key=value\\)");
}

TEST(CliHardening, AlgoOptNonIntegerValue) {
  // Syntactically fine, semantically bad: caught at the post-selection
  // validation with the solver named.
  expect_cli_failure({"--run", "solver_matrix", "--algo-opt", "k=lots"},
                     "--algo-opt .*expects an integer, got 'lots'");
}

TEST(CliHardening, AlgoOptUnknownKey) {
  expect_cli_failure({"--run", "solver_matrix", "--algo-opt", "zeta=1"},
                     "no selected solver has an option 'zeta'");
}

TEST(CliHardening, DuplicateScaleFlag) {
  expect_cli_failure({"--run", "engine_micro", "--n", "0.1", "--n", "1.0"},
                     "lclbench: duplicate --n");
}

TEST(CliHardening, DuplicateSeedFlag) {
  expect_cli_failure({"--seed", "1", "--seed", "2"},
                     "lclbench: duplicate --seed");
}

TEST(CliHardening, DuplicateRunFlag) {
  expect_cli_failure({"--run", "engine_micro", "--run", "cor60_gap"},
                     "lclbench: duplicate --run");
}

TEST(CliHardening, DuplicateProblemsFlag) {
  expect_cli_failure({"--problems", "10", "--problems", "20"},
                     "lclbench: duplicate --problems");
}

TEST(CliHardening, DuplicateEngineFlag) {
  expect_cli_failure({"--engine", "simd", "--engine", "scalar"},
                     "lclbench: duplicate --engine");
}

TEST(CliHardening, UnknownEngineMode) {
  expect_cli_failure(
      {"--engine", "turbo"},
      "lclbench: --engine expects scalar\\|simd\\|auto, got 'turbo'");
  expect_cli_failure({"--engine"}, "lclbench: --engine requires a value");
}

TEST(CliHardening, DuplicateDispatchFlag) {
  expect_cli_failure({"--dispatch", "batch", "--dispatch", "pernode"},
                     "lclbench: duplicate --dispatch");
}

TEST(CliHardening, UnknownDispatchMode) {
  expect_cli_failure(
      {"--dispatch", "vectorized"},
      "lclbench: --dispatch expects pernode\\|batch\\|auto, got "
      "'vectorized'");
  expect_cli_failure({"--dispatch"},
                     "lclbench: --dispatch requires a value");
}

TEST(CliHardening, DuplicateValuelessFlags) {
  // The "at most once" contract covers the boolean flags too.
  expect_cli_failure({"--list", "--list"}, "lclbench: duplicate --list");
  expect_cli_failure(
      {"--compare", "a.json", "b.json", "--allow-missing",
       "--allow-missing"},
      "lclbench: duplicate --allow-missing");
}

TEST(CliHardening, UnknownScenario) {
  expect_cli_failure({"--run", "nope"},
                     "lclbench: unknown scenario 'nope' \\(try --list\\)");
}

TEST(CliHardening, UnknownFlag) {
  expect_cli_failure({"--bogus"}, "lclbench: unknown argument --bogus");
}

TEST(CliHardening, NonPositiveProblems) {
  expect_cli_failure({"--run", "problem_sweep", "--problems", "0"},
                     "lclbench: --problems expects a positive count");
}

TEST(CliHardening, NegativeSeedRejected) {
  expect_cli_failure(
      {"--seed", "-3"},
      "lclbench: --seed expects an unsigned integer, got '-3'");
}

TEST(CliHardening, MissingValue) {
  expect_cli_failure({"--run"}, "lclbench: --run requires a value");
}

TEST(CliHardening, TrendWindowMustBeAtLeastTwo) {
  expect_cli_failure({"--history", "a.lclb", "b.lclb", "--trend-window",
                      "1"},
                     "lclbench: --trend-window expects a window >= 2");
}

TEST(CliHardening, ExportNeedsBothPaths) {
  expect_cli_failure({"--export", "only_in.json"},
                     "lclbench: --export needs <in> <out>");
  expect_cli_failure({"--export"}, "lclbench: --export requires a value");
}

TEST(CliHardening, HistoryNeedsTwoSnapshots) {
  expect_cli_failure({"--history", "only_one.lclb"},
                     "lclbench --history: needs at least 2 snapshots");
  expect_cli_failure({"--history"},
                     "lclbench: --history requires a value");
}

TEST(CliHardening, DuplicateSnapshotModeFlags) {
  expect_cli_failure({"--binary", "a.lclb", "--binary", "b.lclb"},
                     "lclbench: duplicate --binary");
  expect_cli_failure({"--export", "a", "b", "--export", "c", "d"},
                     "lclbench: duplicate --export");
}

TEST(CliHardening, RepeatableAlgoOptStaysRepeatable) {
  // Two --algo-opt pairs must NOT trip the duplicate detector; with a
  // bad scenario name the parse still has to get past both pairs to the
  // scenario lookup.
  expect_cli_failure({"--run", "nope", "--algo-opt", "k=2", "--algo-opt",
                      "d=3"},
                     "unknown scenario 'nope'");
}

}  // namespace
}  // namespace lcl
