// Black-white/decidability machinery (Section 11): the path classifier
// (Lemma 81), label-set classes (Definitions 73/74), the bounded testing
// procedure, and the Theorem-7 constant-good dichotomy.
#include <gtest/gtest.h>

#include "bw/constant_good.hpp"
#include "bw/label_sets.hpp"
#include "bw/path_lcl.hpp"

namespace lcl {
namespace {

using bw::PathComplexity;

TEST(BW, ClassifierBuiltins) {
  EXPECT_EQ(bw::classify(bw::make_two_coloring_lcl()),
            PathComplexity::kLinear);
  EXPECT_EQ(bw::classify(bw::make_three_coloring_lcl()),
            PathComplexity::kLogStar);
  EXPECT_EQ(bw::classify(bw::make_free_lcl(2)),
            PathComplexity::kConstant);
  EXPECT_EQ(bw::classify(bw::make_unsolvable_lcl()),
            PathComplexity::kUnsolvable);
}

TEST(BW, BoundaryRestrictionsMatter) {
  // 3-coloring with both boundaries pinned to {R} is still log* (the
  // ends anchor, the middle needs symmetry breaking).
  auto p = bw::with_boundaries(bw::make_three_coloring_lcl(), 0b001, 0b001);
  EXPECT_EQ(bw::classify(p), PathComplexity::kLogStar);
  // The free problem stays O(1) under any nonempty boundary.
  auto f = bw::with_boundaries(bw::make_free_lcl(3), 0b010, 0b100);
  EXPECT_EQ(bw::classify(f), PathComplexity::kConstant);
  // Empty boundary kills it.
  auto dead = bw::with_boundaries(bw::make_free_lcl(3), 0, 0b111);
  EXPECT_EQ(bw::classify(dead), PathComplexity::kUnsolvable);
}

TEST(BW, MaximalClassPairs) {
  const auto lcl = bw::make_two_coloring_lcl();
  // Even-length path (2 nodes): ends must differ.
  auto pairs2 = bw::maximal_class_pairs(lcl, 2);
  EXPECT_EQ(pairs2.size(), 2u);  // (W,B), (B,W)
  // Odd-length path (3 nodes): ends must match.
  auto pairs3 = bw::maximal_class_pairs(lcl, 3);
  EXPECT_EQ(pairs3.size(), 2u);  // (W,W), (B,B)
  // 3-coloring on length 3: middle must avoid both ends: any (a,b) pair
  // works (a free third color always exists): 9 pairs.
  auto pairs3c = bw::maximal_class_pairs(bw::make_three_coloring_lcl(), 3);
  EXPECT_EQ(pairs3c.size(), 9u);
}

TEST(BW, FlexiblePairsCaptureParity) {
  // For 2-coloring, no pair is feasible at all large lengths (parity
  // flips); for 3-coloring, all 9 pairs are.
  EXPECT_TRUE(bw::flexible_class_pairs(bw::make_two_coloring_lcl(), 4)
                  .empty());
  EXPECT_EQ(
      bw::flexible_class_pairs(bw::make_three_coloring_lcl(), 4).size(),
      9u);
}

TEST(BW, IndependentRectangle) {
  // Pairs = {(0,1),(1,0),(0,0)}: maximal rectangles are {0}x{0,1} or
  // {0,1}x{0}; area 2.
  std::vector<std::pair<int, int>> pairs = {{0, 1}, {1, 0}, {0, 0}};
  const auto rect = bw::independent_rectangle(pairs, 2);
  EXPECT_FALSE(rect.empty());
  const int area = __builtin_popcount(rect.left) *
                   __builtin_popcount(rect.right);
  EXPECT_EQ(area, 2);
}

TEST(BW, RakeStep) {
  const auto lcl = bw::make_two_coloring_lcl();
  EXPECT_EQ(bw::rake_step(lcl, 0b01), 0b10u);  // next to W: must be B
  EXPECT_EQ(bw::rake_step(lcl, 0b11), 0b11u);
  EXPECT_EQ(bw::rake_step(lcl, 0), 0u);  // empty stays empty
}

TEST(BW, TestingProcedureGoodProblems) {
  EXPECT_TRUE(bw::testing_procedure(bw::make_three_coloring_lcl()).good);
  EXPECT_TRUE(bw::testing_procedure(bw::make_free_lcl(2)).good);
  // 2-coloring: the compress step meets infeasible flexible classes
  // (empty rectangles) — no good f_{Pi,infinity} without splitting by
  // parity, which the relaxed procedure cannot do.
  EXPECT_FALSE(bw::testing_procedure(bw::make_two_coloring_lcl()).good);
}

TEST(BW, Theorem7Dichotomy) {
  // free LCL: constant-good => O(1) node-averaged.
  const auto free_v = bw::decide_constant_good(bw::make_free_lcl(3));
  EXPECT_TRUE(free_v.solvable);
  EXPECT_TRUE(free_v.constant_good);
  EXPECT_EQ(free_v.node_averaged_class, "O(1)");

  // 3-coloring: solvable, NOT constant-good (compress problems are
  // log*), hence by the Theorem-7 gap its node-averaged complexity is
  // (log* n)^{Theta(1)} — matching Corollary 17.
  const auto c3 = bw::decide_constant_good(bw::make_three_coloring_lcl());
  EXPECT_TRUE(c3.solvable);
  EXPECT_FALSE(c3.constant_good);
  EXPECT_EQ(c3.worst_compress, PathComplexity::kLogStar);

  // 2-coloring: not even solvable through the relaxed procedure
  // (Theta(n) problems are outside the log*-regime machinery).
  const auto c2 = bw::decide_constant_good(bw::make_two_coloring_lcl());
  EXPECT_FALSE(c2.constant_good);
}

}  // namespace
}  // namespace lcl
