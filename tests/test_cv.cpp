// Cole-Vishkin / Linial machinery: primes, schedules (log* growth), and
// the one-round reduction property over all small palettes.
#include <gtest/gtest.h>

#include "algo/cole_vishkin.hpp"
#include "local/logstar.hpp"

namespace lcl {
namespace {

TEST(CV, NextPrime) {
  EXPECT_EQ(algo::next_prime(2), 2);
  EXPECT_EQ(algo::next_prime(4), 5);
  EXPECT_EQ(algo::next_prime(14), 17);
  EXPECT_EQ(algo::next_prime(97), 97);
}

TEST(CV, PrimeForPalette) {
  // q >= 5 and q^3 >= K.
  for (std::int64_t k : {2, 10, 100, 1000, 100000, 1000000}) {
    const std::int64_t q = algo::cv_prime_for(k);
    EXPECT_GE(q, 5);
    EXPECT_GE(q * q * q, k);
  }
}

TEST(CV, ScheduleShrinksToFixedPoint) {
  for (std::int64_t k : {30LL, 1000LL, 1LL << 20, 1LL << 40, 1LL << 62}) {
    const auto sched = algo::cv_schedule(k);
    std::int64_t palette = k;
    for (std::int64_t q : sched) {
      EXPECT_GE(q * q * q, palette) << "palette " << palette;
      palette = q * q;
    }
    EXPECT_LE(palette, 25);
  }
}

TEST(CV, ScheduleLengthIsLogStarLike) {
  // The schedule length grows extremely slowly (log*), staying tiny even
  // for astronomically large palettes.
  EXPECT_LE(algo::cv_schedule(1LL << 62).size(), 8u);
  EXPECT_GE(algo::cv_schedule(1LL << 62).size(),
            algo::cv_schedule(100).size());
}

TEST(CV, ReduceKeepsProperness) {
  // Exhaustive small-palette check: for all proper (own, n1, n2) with q=5,
  // the new colors of adjacent nodes differ.
  const std::int64_t q = 5;
  const std::int64_t kMax = 60;  // < q^3 = 125
  for (std::int64_t a = 0; a < kMax; ++a) {
    for (std::int64_t b = 0; b < kMax; ++b) {
      if (b == a) continue;
      // Chain a - b: a's new color (nbr b) vs b's new color (nbr a).
      const std::int64_t na = algo::cv_reduce(q, a, b, -1);
      const std::int64_t nb = algo::cv_reduce(q, b, a, -1);
      EXPECT_NE(na, nb) << a << " " << b;
      EXPECT_LT(na, q * q);
    }
  }
}

TEST(CV, ReduceWithTwoNeighbors) {
  const std::int64_t q = 5;
  for (std::int64_t a = 0; a < 40; ++a) {
    for (std::int64_t b = 0; b < 40; ++b) {
      for (std::int64_t c = 0; c < 40; ++c) {
        if (a == b || b == c) continue;
        // Path a - b - c: middle node vs both ends.
        const std::int64_t nb = algo::cv_reduce(q, b, a, c);
        const std::int64_t na = algo::cv_reduce(q, a, b, -1);
        const std::int64_t nc = algo::cv_reduce(q, c, b, -1);
        EXPECT_NE(nb, na);
        EXPECT_NE(nb, nc);
      }
    }
  }
}

TEST(LogStar, Values) {
  using local::log_star;
  EXPECT_EQ(log_star(1), 0);
  EXPECT_EQ(log_star(2), 1);
  EXPECT_EQ(log_star(4), 2);
  EXPECT_EQ(log_star(16), 3);
  EXPECT_EQ(log_star(65536), 4);
  // With floor-log semantics log* stays 4 until the next tower level.
  EXPECT_EQ(log_star(65537), 4);
  EXPECT_EQ(log_star(~std::uint64_t{0}), 4);  // floor-log: 2^64-1 -> 63 -> 5 -> 2 -> 1
  EXPECT_EQ(local::tower(4), 65536u);
}

}  // namespace
}  // namespace lcl
