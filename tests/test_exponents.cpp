// The closed-form exponent theory: Lemmas 33/36 values, monotonicity
// (Lemmas 57/61), the Lemma-58/62 parameter constructions, and the
// density searches behind Theorems 1 and 6.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "core/experiment.hpp"
#include "core/exponents.hpp"
#include "core/fitting.hpp"

namespace lcl {
namespace {

TEST(Exponents, EfficiencyFactors) {
  // Delta = 5, d = 2: x = log(2)/log(4) = 1/2; x' = log(4)/log(4) = 1.
  EXPECT_DOUBLE_EQ(core::efficiency_x(5, 2), 0.5);
  EXPECT_DOUBLE_EQ(core::efficiency_x_prime(5, 2), 1.0);
  // Delta = 9, d = 4: x = log(4)/log(8) = 2/3.
  EXPECT_NEAR(core::efficiency_x(9, 4), 2.0 / 3.0, 1e-12);
}

TEST(Exponents, Alpha1PolyEndpoints) {
  // Polynomial regime endpoints: sum_{j<k}(2-0)^j = 2^k - 1, so
  // alpha1(0) = 1/(2^k - 1) and alpha1(1) = 1/k.
  // k=2: alpha1(x) = 1/(1 + (2-x)); alpha1(0) = 1/3, alpha1(1) = 1/2.
  EXPECT_NEAR(core::alpha1_poly(0.0, 2), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(core::alpha1_poly(1.0, 2), 1.0 / 2.0, 1e-12);
  // k=3: alpha1(0) = 1/(1+2+4) = 1/7, alpha1(1) = 1/3.
  EXPECT_NEAR(core::alpha1_poly(0.0, 3), 1.0 / 7.0, 1e-12);
  EXPECT_NEAR(core::alpha1_poly(1.0, 3), 1.0 / 3.0, 1e-12);
}

TEST(Exponents, Alpha1LogstarEndpoints) {
  // k=2: alpha1(x) = 1/(1 + (1-x)); alpha1(0) = 1/2, alpha1(1) = 1.
  EXPECT_NEAR(core::alpha1_logstar(0.0, 2), 0.5, 1e-12);
  EXPECT_NEAR(core::alpha1_logstar(1.0, 2), 1.0, 1e-12);
  // k=3: alpha1(0) = 1/(1 + 1*(1+2)) = 1/4 = 1/(2^k - ... ) indeed
  // 1/(2^{k-1}...): check against the unweighted value 1/(2^k - 1)?
  // Theorem 11's unweighted exponent for k=3 is 1/7; the weighted
  // alpha1(0) is 1/4 — they differ by design (weights shift the optimum).
  EXPECT_NEAR(core::alpha1_logstar(0.0, 3), 0.25, 1e-12);
}

TEST(Exponents, MonotoneAndContinuous) {
  // Lemmas 57/61: alpha1 is strictly increasing in x on [0, 1].
  for (int k : {2, 3, 4, 5}) {
    double prev_poly = 0, prev_star = 0;
    for (double x = 0.0; x <= 1.0001; x += 0.01) {
      const double ap = core::alpha1_poly(std::min(x, 1.0), k);
      const double as = core::alpha1_logstar(std::min(x, 1.0), k);
      EXPECT_GT(ap, prev_poly);
      EXPECT_GT(as, prev_star);
      prev_poly = ap;
      prev_star = as;
    }
  }
}

TEST(Exponents, ProfileRecurrence) {
  const double x = 0.5;
  for (int k : {2, 3, 4}) {
    const auto prof = core::alpha_profile_poly(x, k);
    ASSERT_EQ(prof.size(), static_cast<std::size_t>(k - 1));
    for (std::size_t i = 1; i < prof.size(); ++i) {
      EXPECT_NEAR(prof[i], (2.0 - x) * prof[i - 1], 1e-12);
    }
    // Lemma 33: setting all B_i equal means
    // 1 = alpha1 * sum_j (2-x)^j.
    double sum = 0, term = 1;
    for (int j = 0; j < k; ++j) {
      sum += term;
      term *= (2.0 - x);
    }
    EXPECT_NEAR(prof[0] * sum, 1.0, 1e-12);
  }
}

TEST(Exponents, Lemma58Params) {
  // x = p/q realized exactly: p=1,q=2 -> Delta=5, d=2, x=1/2.
  const auto g = core::params_for_rational(1, 2);
  EXPECT_EQ(g.delta, 5);
  EXPECT_EQ(g.d, 2);
  EXPECT_DOUBLE_EQ(g.x, 0.5);
  // p=2,q=3 -> Delta=9, d=4, x=2/3.
  const auto h = core::params_for_rational(2, 3);
  EXPECT_EQ(h.delta, 9);
  EXPECT_EQ(h.d, 4);
  EXPECT_NEAR(h.x, 2.0 / 3.0, 1e-12);
}

TEST(Exponents, Lemma62GapShrinks) {
  // Scaling p/q keeps x fixed and drives x' -> x.
  const auto wide = core::params_for_rational(1, 2);
  const auto narrow = core::params_with_gap(1, 2, 0.05);
  EXPECT_NEAR(narrow.x, wide.x, 1e-12);
  EXPECT_LT(narrow.x_prime - narrow.x, 0.05);
  EXPECT_LT(narrow.x_prime - narrow.x, wide.x_prime - wide.x);
}

TEST(Exponents, Theorem1DensitySearch) {
  for (auto [r1, r2] : std::vector<std::pair<double, double>>{
           {0.30, 0.35}, {0.21, 0.23}, {0.40, 0.45}, {0.12, 0.16}}) {
    const auto c = core::choose_poly_exponent(r1, r2);
    EXPECT_GE(c.exponent, r1);
    EXPECT_LE(c.exponent, r2);
    EXPECT_GE(c.params.delta, c.params.d + 3);
    // Realizability: exponent == alpha1(x(Delta, d), k).
    EXPECT_NEAR(c.exponent,
                core::alpha1_poly(
                    core::efficiency_x(c.params.delta, c.params.d), c.k),
                1e-12);
  }
}

TEST(Exponents, Theorem6DensitySearch) {
  const auto c = core::choose_logstar_exponent(0.55, 0.75, 0.05);
  EXPECT_GE(c.exponent, 0.55);
  EXPECT_LE(c.exponent, 0.75);
  const double hi = core::alpha1_logstar(
      core::efficiency_x_prime(c.params.delta, c.params.d), c.k);
  EXPECT_LT(hi - c.exponent, 0.05);
}

TEST(Fitting, RecoversExponent) {
  std::vector<core::Sample> s;
  for (double x : {10.0, 100.0, 1000.0, 10000.0}) {
    s.push_back({x, 3.0 * std::pow(x, 0.42)});
  }
  const auto fit = core::fit_power_law(s);
  EXPECT_TRUE(fit.ok);
  EXPECT_NEAR(fit.exponent, 0.42, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

/// Degenerate inputs must yield ok == false, never a throw: a stray
/// all-equal sweep cannot be allowed to abort a whole bench run.
TEST(Fitting, DegenerateInputsAreNotOk) {
  EXPECT_FALSE(core::fit_power_law({}).ok);
  EXPECT_FALSE(core::fit_power_law({{10.0, 5.0}}).ok);
  // Identical scales: the log-log x range is degenerate.
  EXPECT_FALSE(core::fit_power_law({{10.0, 5.0}, {10.0, 7.0}}).ok);
  // Non-positive samples have no log-log image.
  EXPECT_FALSE(core::fit_power_law({{10.0, 5.0}, {-20.0, 7.0}}).ok);
  EXPECT_FALSE(core::fit_power_law({{10.0, 0.0}, {20.0, 7.0}}).ok);
}

/// A flat (constant-measure) series is a valid zero-exponent fit.
TEST(Fitting, FlatSeriesFitsExponentZero) {
  const auto fit = core::fit_power_law({{10.0, 3.0}, {100.0, 3.0},
                                        {1000.0, 3.0}});
  EXPECT_TRUE(fit.ok);
  EXPECT_NEAR(fit.exponent, 0.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

/// lower_bound_lengths saturates its running product instead of
/// overflowing int64 at extreme (base, alpha) combinations.
TEST(Experiment, LowerBoundLengthsSaturatesInsteadOfOverflowing) {
  // Each ell_i ~ (1e7)^3 = 1e21 > int64 max: the lengths and the
  // product both saturate, and ell_k degrades to 1 instead of UB.
  const auto ell = core::lower_bound_lengths({3.0, 3.0, 3.0}, 1e7,
                                             std::int64_t{1} << 40);
  ASSERT_EQ(ell.size(), 4u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ell[i], std::numeric_limits<std::int64_t>::max());
  }
  EXPECT_EQ(ell.back(), 1);

  // Moderate values still behave exactly as before.
  const auto small = core::lower_bound_lengths({1.0}, 10.0, 1000);
  ASSERT_EQ(small.size(), 2u);
  EXPECT_EQ(small[0], 10);
  EXPECT_EQ(small[1], 100);

  // Overflow via the *product* of individually-representable lengths.
  const auto prod = core::lower_bound_lengths({2.0, 2.0, 2.0}, 1e6,
                                              std::int64_t{1} << 50);
  ASSERT_EQ(prod.size(), 4u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(prod[i], 1000000000000);
  EXPECT_EQ(prod.back(), 1);
}

}  // namespace
}  // namespace lcl
