// The Pi^{3.5} solver (Section 8.2 / Theorem 5): composite validity on
// the weighted construction, kept-copy accounting, and the virtual-log*
// scaling of the node-average.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/pi35.hpp"
#include "core/exponents.hpp"
#include "core/experiment.hpp"
#include "graph/builders.hpp"
#include "problems/checkers.hpp"
#include "test_util.hpp"

namespace lcl {
namespace {

using graph::Tree;
using problems::Variant;

struct Pi35Setup {
  Tree tree;
  algo::Pi35Options options;
};

Pi35Setup make_setup(int delta, int d, int k, std::int64_t lambda,
                     std::int64_t target_n, std::uint64_t seed) {
  const double xp = core::efficiency_x_prime(delta, d);
  const auto alphas = core::alpha_profile_logstar(xp, k);
  const auto ell = core::lower_bound_lengths(
      alphas, static_cast<double>(lambda), target_n);
  auto inst = graph::make_weighted_construction(ell, delta);
  graph::assign_ids(inst.tree, graph::IdScheme::kShuffled, seed);

  Pi35Setup s{std::move(inst.tree), {}};
  s.options.k = k;
  s.options.d = d;
  for (int i = 0; i + 1 < k; ++i) {
    s.options.gammas.push_back(std::max<std::int64_t>(
        2, inst.skeleton_lengths[static_cast<std::size_t>(i)]));
  }
  s.options.symmetry_pad = lambda;
  return s;
}

class Pi35Sweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Pi35Sweep, ValidOnWeightedConstruction) {
  const auto [delta, d, k] = GetParam();
  auto s = make_setup(delta, d, k, 16, 3000, 3 * delta + d);
  const auto stats = algo::run_pi35(s.tree, s.options);
  test::assert_valid(problems::check_weighted(
      s.tree, k, d, Variant::kThreeHalf, stats.output));
}

INSTANTIATE_TEST_SUITE_P(Sweep, Pi35Sweep,
                         ::testing::Values(std::make_tuple(6, 3, 2),
                                           std::make_tuple(7, 3, 2),
                                           std::make_tuple(7, 4, 2),
                                           std::make_tuple(6, 3, 3),
                                           std::make_tuple(9, 5, 2)));

TEST(Pi35, NodeAverageGrowsWithLambda) {
  // Sweep the virtual log*: node-average should grow like
  // Lambda^{alpha1} (between alpha1(x) and alpha1(x')).
  const int delta = 6, d = 3, k = 2;
  double prev = 0;
  std::vector<core::Sample> samples;
  for (std::int64_t lambda : {64, 128, 256, 512}) {
    auto s = make_setup(delta, d, k, lambda, 4000, 11);
    const auto stats = algo::run_pi35(s.tree, s.options);
    test::assert_valid(problems::check_weighted(
        s.tree, k, d, Variant::kThreeHalf, stats.output));
    EXPECT_GE(stats.node_averaged, prev * 0.9);
    prev = stats.node_averaged;
    samples.push_back({static_cast<double>(lambda), stats.node_averaged});
  }
  const auto fit = core::fit_power_law(samples);
  // Generous band around [alpha1(x), alpha1(x')] — constants and additive
  // terms pollute small Lambdas.
  const double lo = core::alpha1_logstar(core::efficiency_x(delta, d), k);
  const double hi =
      core::alpha1_logstar(core::efficiency_x_prime(delta, d), k);
  EXPECT_GT(fit.exponent, lo - 0.45);
  EXPECT_LT(fit.exponent, hi + 0.45);
}

TEST(Pi35, KeptCopiesBounded) {
  const int delta = 7, d = 3, k = 2;
  auto s = make_setup(delta, d, k, 32, 6000, 23);
  algo::Pi35Program program(s.tree, s.options);
  local::Engine engine(s.tree);
  const auto stats = engine.run(program);
  test::assert_valid(problems::check_weighted(
      s.tree, k, d, Variant::kThreeHalf, stats.output));
  // Kept copies are far fewer than the weight volume: sum over
  // components of 2|C|^{x'} plus Case-1 components.
  std::int64_t weight_nodes = 0;
  for (graph::NodeId v = 0; v < s.tree.size(); ++v) {
    if (s.tree.input(v) ==
        static_cast<int>(graph::WeightInput::kWeight)) {
      ++weight_nodes;
    }
  }
  EXPECT_GT(program.copies_kept(), 0);
  EXPECT_LT(program.copies_kept(), weight_nodes);
}

}  // namespace
}  // namespace lcl
