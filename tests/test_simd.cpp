// Kernel-level differential tests: every wide kernel must be
// bit-identical to its scalar twin on adversarial inputs (random flag
// patterns, all-dense, all-sparse, unaligned counts), and the mode
// plumbing (parse/resolve/default) must collapse exactly as documented.
// The engine-level scalar-vs-simd equivalence is covered separately by
// tests/test_engine.cpp and the fuzz loop in tests/test_differential.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "local/engine.hpp"
#include "local/simd.hpp"

namespace lcl::local {
namespace {

TEST(KernelMode, ParseAndName) {
  KernelMode m = KernelMode::kAuto;
  EXPECT_TRUE(parse_kernel_mode("scalar", m));
  EXPECT_EQ(m, KernelMode::kScalar);
  EXPECT_TRUE(parse_kernel_mode("simd", m));
  EXPECT_EQ(m, KernelMode::kSimd);
  EXPECT_TRUE(parse_kernel_mode("auto", m));
  EXPECT_EQ(m, KernelMode::kAuto);
  EXPECT_FALSE(parse_kernel_mode("turbo", m));
  EXPECT_FALSE(parse_kernel_mode("", m));
  EXPECT_STREQ(kernel_mode_name(KernelMode::kScalar), "scalar");
  EXPECT_STREQ(kernel_mode_name(KernelMode::kSimd), "simd");
  EXPECT_STREQ(kernel_mode_name(KernelMode::kAuto), "auto");
}

TEST(KernelMode, ResolveCollapsesAutoAndDegrades) {
  // Explicit requests resolve to themselves (simd degrades to scalar
  // only in forced-scalar builds).
  EXPECT_EQ(resolve_kernel_mode(KernelMode::kScalar),
            KernelMode::kScalar);
  EXPECT_EQ(resolve_kernel_mode(KernelMode::kSimd),
            simd_compiled() ? KernelMode::kSimd : KernelMode::kScalar);

  // kAuto defers to the settable process default; an auto default
  // collapses to the widest compiled path.
  const KernelMode saved = default_kernel_mode();
  set_default_kernel_mode(KernelMode::kScalar);
  EXPECT_EQ(resolve_kernel_mode(KernelMode::kAuto), KernelMode::kScalar);
  set_default_kernel_mode(KernelMode::kAuto);
  EXPECT_EQ(resolve_kernel_mode(KernelMode::kAuto),
            simd_compiled() ? KernelMode::kSimd : KernelMode::kScalar);
  set_default_kernel_mode(saved);
}

TEST(Kernels, FlipCommitMatchesScalar) {
  std::mt19937_64 rng(7);
  for (const std::size_t count : {0UL, 1UL, 63UL, 64UL, 200UL, 4096UL}) {
    std::vector<std::uint8_t> cur_a(count);
    std::vector<std::uint8_t> pub_a(count);
    for (std::size_t i = 0; i < count; ++i) {
      cur_a[i] = static_cast<std::uint8_t>(rng() & 1);
      pub_a[i] = static_cast<std::uint8_t>(rng() % 3 == 0);
    }
    std::vector<std::uint8_t> cur_b = cur_a;
    std::vector<std::uint8_t> pub_b = pub_a;
    flip_commit_scalar(cur_a.data(), pub_a.data(), count);
    flip_commit_simd(cur_b.data(), pub_b.data(), count);
    EXPECT_EQ(cur_a, cur_b) << "count=" << count;
    EXPECT_EQ(pub_a, pub_b) << "count=" << count;
    for (std::size_t i = 0; i < count; ++i) EXPECT_EQ(pub_a[i], 0);
  }
}

TEST(Kernels, CompactAliveMatchesScalarAndIsStable) {
  std::mt19937_64 rng(11);
  // Termination densities from "nothing terminates" (the block fast
  // path end to end) to "everything terminates", plus ragged counts
  // exercising the per-id tail.
  for (const double density : {0.0, 0.01, 0.3, 1.0}) {
    for (const std::size_t count : {0UL, 5UL, 16UL, 17UL, 1000UL}) {
      std::vector<std::uint8_t> term(count + 64, 0);
      std::vector<graph::NodeId> ids(count);
      for (std::size_t i = 0; i < count; ++i) {
        ids[i] = static_cast<graph::NodeId>(i);
        term[i] = static_cast<std::uint8_t>(
            std::uniform_real_distribution<>(0, 1)(rng) < density);
      }
      std::vector<graph::NodeId> a = ids;
      std::vector<graph::NodeId> b = ids;
      const std::size_t wa =
          compact_alive_scalar(a.data(), count, term.data());
      const std::size_t wb =
          compact_alive_simd(b.data(), count, term.data());
      ASSERT_EQ(wa, wb) << "density=" << density << " count=" << count;
      a.resize(wa);
      b.resize(wb);
      EXPECT_EQ(a, b);
      // Stability: survivors keep their original relative order.
      for (std::size_t i = 1; i < a.size(); ++i) {
        EXPECT_LT(a[i - 1], a[i]);
      }

      // Second pass over the now-gapped survivor list (fresh kill
      // flags): exercises the non-contiguous blocks where the kernel
      // must fall back to indexed flag gathers.
      for (std::size_t i = 0; i < count; ++i) {
        term[i] = static_cast<std::uint8_t>(
            std::uniform_real_distribution<>(0, 1)(rng) < 0.2);
      }
      const std::size_t wa2 =
          compact_alive_scalar(a.data(), a.size(), term.data());
      const std::size_t wb2 =
          compact_alive_simd(b.data(), b.size(), term.data());
      ASSERT_EQ(wa2, wb2) << "density=" << density << " count=" << count;
      a.resize(wa2);
      b.resize(wb2);
      EXPECT_EQ(a, b);
    }
  }
}

TEST(Kernels, ReduceTvMatchesScalarExactly) {
  std::mt19937_64 rng(13);
  for (const std::size_t count : {0UL, 1UL, 3UL, 4UL, 8UL, 777UL}) {
    std::vector<std::int64_t> t(count);
    for (std::size_t i = 0; i < count; ++i) {
      t[i] = static_cast<std::int64_t>(rng() % 1000000);
    }
    const TvReduction a = reduce_tv_scalar(t.data(), count);
    const TvReduction b = reduce_tv_simd(t.data(), count);
    EXPECT_EQ(a.sum, b.sum) << "count=" << count;
    EXPECT_EQ(a.max, b.max) << "count=" << count;
  }
}

TEST(AlignedPlaneContract, PaddingAlignmentAndAllocAccounting) {
  AlignedPlane<std::int64_t> plane;
  EXPECT_EQ(AlignedPlane<std::int64_t>::padded(0), 0u);
  EXPECT_EQ(AlignedPlane<std::int64_t>::padded(1), 8u);
  EXPECT_EQ(AlignedPlane<std::int64_t>::padded(8), 8u);
  EXPECT_EQ(AlignedPlane<std::int64_t>::padded(9), 16u);
  EXPECT_EQ(AlignedPlane<std::uint8_t>::padded(1), 64u);

  EXPECT_TRUE(plane.assign(100, 7));  // first sizing allocates
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(plane.data()) % 64, 0u);
  // The fill covers the padded extent, not just the requested count.
  for (std::size_t i = 0; i < AlignedPlane<std::int64_t>::padded(100);
       ++i) {
    EXPECT_EQ(plane.data()[i], 7);
  }
  EXPECT_FALSE(plane.assign(50, 1));   // shrinking reuses
  EXPECT_FALSE(plane.assign(104, 2));  // fits the padded capacity
  EXPECT_TRUE(plane.assign(105, 3));   // genuine growth reallocates
}

}  // namespace
}  // namespace lcl::local
