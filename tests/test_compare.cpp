// The bench layer's measurement plumbing: run_sweep aggregation through
// a real pool, the snapshot reader, and the bench-compare regression
// gate — self-diff emptiness plus each regression class the gate must
// catch (schema downgrade, validity, coverage, exponent drift, missing
// series).
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>

#include "compare.hpp"
#include "core/batch.hpp"
#include "core/json.hpp"
#include "graph/builders.hpp"
#include "local/engine.hpp"
#include "problems/checkers.hpp"
#include "scenario.hpp"

namespace lcl {
namespace {

using bench::CompareOptions;
using bench::compare_snapshots;
namespace json = core::json;

std::string write_temp(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream f(path);
  f << body;
  EXPECT_TRUE(f.good()) << path;
  return path;
}

/// A sweep point whose only repetition truncates must keep the censored
/// partial measurement (flagged by the non-ok status) instead of
/// serializing zeros — the whole point of structured truncation.
TEST(RunSweep, FullyTruncatedPointKeepsCensoredStats) {
  class Stall final : public local::Program {
   public:
    void on_init(local::NodeCtx&) override {}
    void on_round(local::NodeCtx& ctx) override {
      if (ctx.node() == 0 && ctx.round() == 1) ctx.terminate(0);
    }
  };
  bench::ScenarioOptions opts;
  opts.reps = 1;
  core::BatchRunner pool(core::BatchOptions{.threads = 1});
  bench::ScenarioContext ctx(opts, pool);
  std::vector<core::BatchJob> jobs;
  jobs.push_back(core::make_job(
      "stall", 6.0, 3, [](std::uint64_t) { return graph::make_path(6); },
      [](const graph::Tree&) { return std::make_unique<Stall>(); },
      [](const graph::Tree&, const local::RunStats&) {
        return problems::CheckResult::pass();
      },
      /*max_rounds=*/4));
  const auto points = ctx.run_sweep(std::move(jobs));
  ASSERT_EQ(points.size(), 1u);
  const core::MeasuredRun& p = points[0];
  EXPECT_EQ(p.status, core::RunStatus::kTruncated);
  EXPECT_EQ(p.reps_ok, 0);
  EXPECT_EQ(p.n, 6);
  EXPECT_EQ(p.worst_case, 4);                       // censored bound
  EXPECT_DOUBLE_EQ(p.node_averaged, (1 + 5 * 4) / 6.0);
  EXPECT_EQ(p.term.total(), 6);                     // survivors included
}

TEST(Json, ParsesScalarsContainersAndEscapes) {
  const json::Value v = json::parse(
      R"({"a": 1.5, "b": [true, false, null], "s": "x\n\"y\"A",)"
      R"( "neg": -2e3, "obj": {"k": 7}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.get_number("a", 0.0), 1.5);
  const json::Value* arr = v.find("b");
  ASSERT_NE(arr, nullptr);
  ASSERT_TRUE(arr->is_array());
  ASSERT_EQ(arr->array.size(), 3u);
  EXPECT_TRUE(arr->array[0].bool_or(false));
  EXPECT_FALSE(arr->array[1].bool_or(true));
  EXPECT_TRUE(arr->array[2].is_null());
  EXPECT_EQ(v.get_string("s", ""), "x\n\"y\"A");
  EXPECT_DOUBLE_EQ(v.get_number("neg", 0.0), -2000.0);
  const json::Value* obj = v.find("obj");
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->find("k")->int_or(0), 7);
  // Typed accessors never coerce: a number read as string falls back.
  EXPECT_EQ(v.find("a")->string_or("fallback"), "fallback");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, IntAccessorGuardsOutOfRangeNumbers) {
  const json::Value v =
      json::parse(R"({"huge": 1e300, "neg_huge": -1e300, "ok": -42})");
  EXPECT_EQ(v.find("huge")->int_or(7), 7);
  EXPECT_EQ(v.find("neg_huge")->int_or(7), 7);
  EXPECT_EQ(v.find("ok")->int_or(7), -42);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)json::parse("[1, 2,]"), std::runtime_error);
  EXPECT_THROW((void)json::parse("{\"a\": 1} trailing"),
               std::runtime_error);
  EXPECT_THROW((void)json::parse("{\"a\": 0x10}"), std::runtime_error);
  EXPECT_THROW((void)json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)json::parse_file("/nonexistent/nope.json"),
               std::runtime_error);
}

/// A small but schema-faithful v3 snapshot.
std::string snapshot(const std::string& schema, double exponent,
                     const std::string& run2_status) {
  const bool ok2 = run2_status == "ok";
  return std::string("{\n\"schema\": \"") + schema +
         "\",\n\"scenarios\": [\n"
         " {\"name\": \"s1\", \"wall_ms\": 100, \"metrics\": {},\n"
         "  \"series\": [\n"
         "   {\"title\": \"t1\", \"fitted_exponent\": " +
         std::to_string(exponent) +
         ",\n"
         "    \"runs\": [\n"
         "     {\"scale\": 10, \"n\": 10, \"node_averaged\": 2.0, "
         "\"worst_case\": 4, \"term_p50\": 1, \"term_p90\": 2, "
         "\"term_p99\": 4, \"term_hist\": [0, 5, 4, 1], \"reps\": 1, "
         "\"reps_ok\": 1, \"status\": \"ok\", \"valid\": true},\n"
         "     {\"scale\": 20, \"n\": 20, \"node_averaged\": 3.0, "
         "\"worst_case\": 8, \"status\": \"" +
         run2_status + "\", \"valid\": " + (ok2 ? "true" : "false") +
         "}\n"
         "    ]}\n"
         "  ]}\n"
         "]}\n";
}

TEST(Compare, SelfDiffIsEmpty) {
  const std::string path =
      write_temp("self.json", snapshot("lclbench-v3", 0.5, "ok"));
  EXPECT_EQ(compare_snapshots(path, path, CompareOptions{}), 0);
}

TEST(Compare, V2PredecessorToV3IsAccepted) {
  // Upgrading the schema is not a regression; v2 run records (no
  // "status" key, only "valid") are understood.
  const std::string old_path = write_temp(
      "old_v2.json",
      "{\"schema\": \"lclbench-v2\", \"scenarios\": ["
      "{\"name\": \"s1\", \"wall_ms\": 50, \"series\": ["
      "{\"title\": \"t1\", \"fitted_exponent\": 0.5, \"runs\": ["
      "{\"scale\": 10, \"node_averaged\": 2.0, \"valid\": true}]}]}]}");
  const std::string new_path =
      write_temp("new_v3.json", snapshot("lclbench-v3", 0.51, "ok"));
  EXPECT_EQ(compare_snapshots(old_path, new_path, CompareOptions{}), 0);
}

TEST(Compare, SchemaDowngradeIsARegression) {
  const std::string old_path =
      write_temp("old_v3.json", snapshot("lclbench-v3", 0.5, "ok"));
  const std::string new_path =
      write_temp("new_v2.json", snapshot("lclbench-v2", 0.5, "ok"));
  EXPECT_EQ(compare_snapshots(old_path, new_path, CompareOptions{}), 1);
}

TEST(Compare, ValidityRegressionIsCaught) {
  const std::string old_path =
      write_temp("valid_old.json", snapshot("lclbench-v3", 0.5, "ok"));
  // One run degrades to a truncation: a typed, non-ok status.
  const std::string new_path = write_temp(
      "valid_new.json", snapshot("lclbench-v3", 0.5, "truncated"));
  EXPECT_EQ(compare_snapshots(old_path, new_path, CompareOptions{}), 1);
  // The reverse direction (a failure got fixed) is fine.
  EXPECT_EQ(compare_snapshots(new_path, old_path, CompareOptions{}), 0);
}

TEST(Compare, ExponentDriftHonorsTolerance) {
  const std::string old_path =
      write_temp("exp_old.json", snapshot("lclbench-v3", 0.50, "ok"));
  const std::string new_path =
      write_temp("exp_new.json", snapshot("lclbench-v3", 0.80, "ok"));
  CompareOptions strict;
  strict.tol_exponent = 0.1;
  EXPECT_EQ(compare_snapshots(old_path, new_path, strict), 1);
  CompareOptions loose;
  loose.tol_exponent = 0.5;
  EXPECT_EQ(compare_snapshots(old_path, new_path, loose), 0);
}

TEST(Compare, NodeAveragedDriftIsOptInAtMatchingScales) {
  const std::string old_path =
      write_temp("avg_old.json", snapshot("lclbench-v3", 0.5, "ok"));
  // Same scales, node_averaged 2.0 -> 3.2 at scale 10 via a hand-edited
  // copy.
  std::string body = snapshot("lclbench-v3", 0.5, "ok");
  const std::string needle = "\"node_averaged\": 2.0";
  body.replace(body.find(needle), needle.size(),
               "\"node_averaged\": 3.2");
  const std::string new_path = write_temp("avg_new.json", body);
  EXPECT_EQ(compare_snapshots(old_path, new_path, CompareOptions{}), 0)
      << "disabled by default";
  CompareOptions gated;
  gated.tol_avg = 0.25;
  EXPECT_EQ(compare_snapshots(old_path, new_path, gated), 1);
  gated.tol_avg = 1.0;
  EXPECT_EQ(compare_snapshots(old_path, new_path, gated), 0);
}

TEST(Compare, LostRunCoverageIsARegression) {
  // A series that silently dropped sweep points must not read as
  // healthy just because none of its surviving runs failed.
  const std::string old_path =
      write_temp("cov_old.json", snapshot("lclbench-v3", 0.5, "ok"));
  std::string body = snapshot("lclbench-v3", 0.5, "ok");
  const std::size_t second_run = body.find("{\"scale\": 20");
  ASSERT_NE(second_run, std::string::npos);
  // Drop run 2 along with the separating comma.
  const std::size_t comma = body.rfind(',', second_run);
  const std::size_t end = body.find('}', second_run);
  ASSERT_NE(comma, std::string::npos);
  ASSERT_NE(end, std::string::npos);
  body.erase(comma, end - comma + 1);
  const std::string new_path = write_temp("cov_new.json", body);
  // Sanity: the mutated snapshot still parses and has one run.
  EXPECT_EQ(json::parse_file(new_path)
                .find("scenarios")->array[0]
                .find("series")->array[0]
                .find("runs")->array.size(),
            1u);
  EXPECT_EQ(compare_snapshots(old_path, new_path, CompareOptions{}), 1);
}

TEST(Compare, MissingScenarioRespectsAllowMissing) {
  const std::string old_path =
      write_temp("miss_old.json", snapshot("lclbench-v3", 0.5, "ok"));
  const std::string new_path = write_temp(
      "miss_new.json", "{\"schema\": \"lclbench-v3\", \"scenarios\": []}");
  EXPECT_EQ(compare_snapshots(old_path, new_path, CompareOptions{}), 1);
  CompareOptions allow;
  allow.allow_missing = true;
  EXPECT_EQ(compare_snapshots(old_path, new_path, allow), 0);
}

TEST(Compare, UnreadableSnapshotIsUsageError) {
  const std::string ok_path =
      write_temp("ok.json", snapshot("lclbench-v3", 0.5, "ok"));
  EXPECT_EQ(compare_snapshots("/nonexistent/a.json", ok_path,
                              CompareOptions{}),
            2);
  const std::string bad_path = write_temp("bad.json", "{not json");
  EXPECT_EQ(compare_snapshots(ok_path, bad_path, CompareOptions{}), 2);
}

}  // namespace
}  // namespace lcl
