// Algorithm A for the d-free weight problem (Section 7): validity on the
// paper's weight-tree instances, the Lemma-40 Copy bound, and Connect
// behavior between close input-A nodes.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/dfree_logn.hpp"
#include "core/exponents.hpp"
#include "graph/builders.hpp"
#include "problems/checkers.hpp"
#include "problems/labels.hpp"
#include "test_util.hpp"

namespace lcl {
namespace {

using graph::NodeId;
using graph::Tree;
using problems::WeightOut;

/// d-free instance: a balanced weight tree whose root is the input-A node.
struct WeightTreeInstance {
  Tree tree;
  std::vector<char> participates;
  std::vector<char> is_a;
};

WeightTreeInstance weight_tree_instance(NodeId w, int delta) {
  WeightTreeInstance inst;
  inst.tree = graph::make_balanced_weight_tree(w, delta);
  inst.participates.assign(static_cast<std::size_t>(w), 1);
  inst.is_a.assign(static_cast<std::size_t>(w), 0);
  inst.is_a[0] = 1;
  inst.tree.set_input(0, static_cast<int>(problems::DFreeInput::kA));
  for (NodeId v = 1; v < w; ++v) {
    inst.tree.set_input(v, static_cast<int>(problems::DFreeInput::kW));
  }
  return inst;
}

class DFreeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DFreeSweep, ValidAndCopyBounded) {
  const auto [w, delta, d] = GetParam();
  ASSERT_GE(delta, d + 3);
  auto inst = weight_tree_instance(w, delta);
  const auto res = algo::run_dfree_algorithm_a(
      inst.tree, inst.participates, inst.is_a, d, inst.tree.size());
  test::assert_valid(
      problems::check_dfree_weight(inst.tree, d, res.output));
  // Root must Copy (it is input-A with no close A peer).
  EXPECT_EQ(res.output[0], static_cast<int>(WeightOut::kCopy));

  // Lemma 40: |Copy| <= 6 * |ball|^x with x = log(D-1-d)/log(D-1); the
  // ball is at most the whole tree.
  std::int64_t copies = 0;
  for (int o : res.output) {
    if (o == static_cast<int>(WeightOut::kCopy)) ++copies;
  }
  const double x = core::efficiency_x(delta, d);
  EXPECT_LE(static_cast<double>(copies),
            6.0 * std::pow(static_cast<double>(w), x) + 1.0)
      << "w=" << w << " delta=" << delta << " d=" << d;
  // And at least w^x nodes copy (Lemma 23's lower bound, up to the
  // truncation of the last level).
  EXPECT_GE(static_cast<double>(copies),
            0.2 * std::pow(static_cast<double>(w), x) - 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DFreeSweep,
    ::testing::Values(std::make_tuple(200, 5, 2),
                      std::make_tuple(1000, 5, 2),
                      std::make_tuple(1000, 6, 3),
                      std::make_tuple(3000, 7, 3),
                      std::make_tuple(3000, 9, 4),
                      std::make_tuple(5000, 9, 6)));

TEST(DFree, ConnectBetweenCloseANodes) {
  // A path of 7 weight nodes whose two ends are input-A: within the
  // Connect bound, the whole path connects.
  const NodeId n = 7;
  Tree t = graph::make_path(n);
  std::vector<char> part(static_cast<std::size_t>(n), 1);
  std::vector<char> is_a(static_cast<std::size_t>(n), 0);
  is_a[0] = is_a[static_cast<std::size_t>(n - 1)] = 1;
  t.set_input(0, static_cast<int>(problems::DFreeInput::kA));
  t.set_input(n - 1, static_cast<int>(problems::DFreeInput::kA));
  const auto res = algo::run_dfree_algorithm_a(t, part, is_a, 2, n);
  test::assert_valid(problems::check_dfree_weight(t, 2, res.output));
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(res.output[static_cast<std::size_t>(v)],
              static_cast<int>(WeightOut::kConnect))
        << "node " << v;
  }
}

TEST(DFree, FarANodesDoNotConnect) {
  // Far-apart A-nodes on a long path: no Connect; each A copies.
  const NodeId n = 4000;
  Tree t = graph::make_path(n);
  std::vector<char> part(static_cast<std::size_t>(n), 1);
  std::vector<char> is_a(static_cast<std::size_t>(n), 0);
  is_a[0] = is_a[static_cast<std::size_t>(n - 1)] = 1;
  for (NodeId v = 0; v < n; ++v) {
    t.set_input(v, static_cast<int>(is_a[static_cast<std::size_t>(v)]
                                        ? problems::DFreeInput::kA
                                        : problems::DFreeInput::kW));
  }
  const auto res = algo::run_dfree_algorithm_a(t, part, is_a, 2, n);
  test::assert_valid(problems::check_dfree_weight(t, 2, res.output));
  EXPECT_EQ(res.output[0], static_cast<int>(WeightOut::kCopy));
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_NE(res.output[static_cast<std::size_t>(v)],
              static_cast<int>(WeightOut::kConnect));
  }
}

TEST(DFree, CopyComponentContainsExactlyOneANode) {
  // Observation 39 on a random weight forest with several A nodes.
  Tree t = graph::make_random_tree(3000, 5, 99);
  const NodeId n = t.size();
  std::vector<char> part(static_cast<std::size_t>(n), 1);
  std::vector<char> is_a(static_cast<std::size_t>(n), 0);
  // A nodes far apart: indices 0, n/2 (random attachment keeps them
  // reasonably distant with this seed; Connect handles them otherwise).
  is_a[0] = 1;
  is_a[static_cast<std::size_t>(n / 2)] = 1;
  for (NodeId v = 0; v < n; ++v) {
    t.set_input(v, static_cast<int>(is_a[static_cast<std::size_t>(v)]
                                        ? problems::DFreeInput::kA
                                        : problems::DFreeInput::kW));
  }
  const auto res = algo::run_dfree_algorithm_a(t, part, is_a, 2, n);
  test::assert_valid(problems::check_dfree_weight(t, 2, res.output));
  // Each Copy node belongs to the component of exactly one root.
  for (NodeId v = 0; v < n; ++v) {
    if (res.output[static_cast<std::size_t>(v)] ==
        static_cast<int>(WeightOut::kCopy)) {
      EXPECT_NE(res.copy_root[static_cast<std::size_t>(v)],
                graph::kInvalidNode);
    }
  }
}

TEST(DFree, ViewRadiusIsLogarithmic) {
  auto inst = weight_tree_instance(10000, 5);
  const auto res = algo::run_dfree_algorithm_a(
      inst.tree, inst.participates, inst.is_a, 2, inst.tree.size());
  // 3*ceil(log_3(10000)) + 3 = 3*9 + 3 = 30.
  EXPECT_EQ(res.view_radius, 30);
}

}  // namespace
}  // namespace lcl
