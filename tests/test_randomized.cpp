// Randomized coloring (the Figure-1/2 randomized dichotomy witness):
// validity across seeds, O(1) node-average independent of n, and
// reproducibility.
#include <gtest/gtest.h>

#include "algo/randomized.hpp"
#include "graph/builders.hpp"
#include "problems/checkers.hpp"
#include "test_util.hpp"

namespace lcl {
namespace {

using graph::NodeId;
using graph::Tree;

/// Proper coloring check over arbitrary alphabets.
bool proper(const Tree& t, const std::vector<int>& colors) {
  for (NodeId v = 0; v < t.size(); ++v) {
    for (NodeId u : t.neighbors(v)) {
      if (colors[static_cast<std::size_t>(u)] ==
          colors[static_cast<std::size_t>(v)]) {
        return false;
      }
    }
  }
  return true;
}

class RandomColoring : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomColoring, ValidOnPathsAndTrees) {
  const std::uint64_t seed = GetParam();
  {
    Tree t = graph::make_path(3000);
    graph::assign_ids(t, graph::IdScheme::kShuffled, seed);
    const auto stats = algo::run_random_coloring(t, 3, seed);
    EXPECT_TRUE(proper(t, stats.primaries()));
  }
  {
    Tree t = graph::make_random_tree(2000, 4, seed);
    graph::assign_ids(t, graph::IdScheme::kShuffled, seed + 7);
    const auto stats = algo::run_random_coloring(t, 5, seed);
    EXPECT_TRUE(proper(t, stats.primaries()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomColoring,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(RandomColoring, NodeAverageIsConstantInN) {
  // The randomized dichotomy's O(1) side: node-average stays flat while
  // n grows 64x (deterministic 3-coloring pays Theta(log*) ~ 28 here).
  double first = 0;
  for (NodeId n : {4000, 32000, 256000}) {
    Tree t = graph::make_path(n);
    graph::assign_ids(t, graph::IdScheme::kShuffled, 13);
    const auto stats = algo::run_random_coloring(t, 3, 99);
    EXPECT_TRUE(proper(t, stats.primaries()));
    EXPECT_LT(stats.node_averaged, 12.0) << n;
    if (first == 0) first = stats.node_averaged;
    EXPECT_LT(stats.node_averaged, first * 2.0 + 2.0);
  }
}

TEST(RandomColoring, WorstCaseLogarithmic) {
  Tree t = graph::make_path(100000);
  graph::assign_ids(t, graph::IdScheme::kShuffled, 17);
  const auto stats = algo::run_random_coloring(t, 3, 5);
  EXPECT_TRUE(proper(t, stats.primaries()));
  EXPECT_LE(stats.worst_case, 80);  // O(log n) w.h.p.
}

TEST(RandomColoring, Reproducible) {
  Tree t = graph::make_random_tree(1000, 4, 3);
  const auto a = algo::run_random_coloring(t, 5, 42);
  const auto b = algo::run_random_coloring(t, 5, 42);
  EXPECT_EQ(a.primaries(), b.primaries());
  EXPECT_EQ(a.termination_round, b.termination_round);
  const auto c = algo::run_random_coloring(t, 5, 43);
  EXPECT_NE(a.primaries(), c.primaries());
}

TEST(RandomColoring, RejectsTooFewColors) {
  Tree t = graph::make_star(5);
  EXPECT_THROW(algo::run_random_coloring(t, 3, 1), std::invalid_argument);
}

}  // namespace
}  // namespace lcl
