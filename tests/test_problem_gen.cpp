// The problem generator (problems/lclgen.hpp) and empirical classifier
// (problems/classify.hpp): witness tables land in the right landscape
// class, sampling is deterministic and deduplicated up to label
// permutation, and the classification is *invariant* under label
// permutation and alphabet padding — property-tested over seeded random
// tables, with failing cases shrunk to a minimal table before reporting.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>

#include "bw/tree_problem.hpp"
#include "graph/builders.hpp"
#include "graph/families.hpp"
#include "problems/classify.hpp"
#include "problems/lclgen.hpp"

namespace lcl {
namespace {

using problems::BwTable;
using problems::ProblemClass;

// ---------------------------------------------------------------------------
// Table representation.
// ---------------------------------------------------------------------------

TEST(LclGen, MultisetEnumerationIsRankable) {
  const auto& sets = problems::multisets(3, 2);
  EXPECT_EQ(sets.size(), 6u);  // C(3+2-1, 2)
  for (std::size_t i = 0; i < sets.size(); ++i) {
    EXPECT_EQ(problems::multiset_index(3, sets[i]), static_cast<int>(i));
  }
  EXPECT_EQ(problems::multisets(4, 4).size(), 35u);  // C(7, 4) fits a word
}

TEST(LclGen, WitnessTablesMatchTheirPredicates) {
  const BwTable ec = problems::edge_coloring_table(3, 3);
  EXPECT_TRUE(ec.allows({0, 1, 2}));
  EXPECT_FALSE(ec.allows({0, 0, 1}));
  EXPECT_TRUE(ec.allows({2}));
  EXPECT_FALSE(ec.allows({0, 0, 1, 2}));  // beyond max_degree

  const BwTable wm = problems::weak_matching_table(3);
  EXPECT_TRUE(wm.allows({0, 0, 1}));
  EXPECT_FALSE(wm.allows({0, 1, 1}));
  EXPECT_TRUE(wm.allows({}));  // isolated nodes are always fine
}

TEST(LclGen, TableProblemAgreesWithBuiltinOnRandomTrees) {
  // The tabulated edge-coloring must behave exactly like the predicate
  // problem the bw tests exercise: same solvability, checkable labels.
  const graph::Tree t = graph::make_random_tree(300, 3, 11);
  const auto res =
      bw::solve_tree_bw(t, problems::edge_coloring_table(3, 3).to_problem());
  ASSERT_TRUE(res.solved) << res.failure;
  EXPECT_EQ(bw::check_tree_bw(t, bw::make_bw_edge_coloring(3),
                              res.edge_label),
            "");
}

// ---------------------------------------------------------------------------
// Sampling.
// ---------------------------------------------------------------------------

TEST(LclGen, SamplingIsDeterministic) {
  for (std::uint64_t seed : {0ull, 1ull, 99ull, (1ull << 52) + 7}) {
    EXPECT_EQ(problems::sample_table(seed), problems::sample_table(seed));
  }
  const auto a = problems::sample_problems(5, 20);
  const auto b = problems::sample_problems(5, 20);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(LclGen, SampledProblemsAreDistinctUpToPermutation) {
  const auto tables = problems::sample_problems(1, 60);
  EXPECT_GE(tables.size(), 50u);
  std::vector<std::string> keys;
  for (const BwTable& t : tables) {
    keys.push_back(problems::canonical_key(t));
    // Sub-seeds regenerate their table exactly and survive a JSON
    // double round-trip (53-bit).
    EXPECT_EQ(problems::sample_table(t.seed), t);
    EXPECT_LT(t.seed, 1ull << 53);
    EXPECT_EQ(static_cast<std::uint64_t>(static_cast<double>(t.seed)),
              t.seed);
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end())
      << "duplicate canonical keys in a deduplicated sample";
}

TEST(LclGen, CanonicalKeyIdentifiesPermutedTables) {
  const BwTable t = problems::sample_table(42);
  std::vector<int> perm(static_cast<std::size_t>(t.alphabet));
  std::iota(perm.begin(), perm.end(), 0);
  do {
    const BwTable p = problems::permute_table(t, perm);
    EXPECT_EQ(problems::canonical_key(p), problems::canonical_key(t));
    EXPECT_EQ(problems::canonical_table(p), problems::canonical_table(t));
  } while (std::next_permutation(perm.begin(), perm.end()));
}

// ---------------------------------------------------------------------------
// Classification of the named witnesses.
// ---------------------------------------------------------------------------

TEST(Classify, WitnessesLandInTheirKnownClasses) {
  EXPECT_EQ(problems::classify_table(problems::free_table(2, 3)).predicted,
            ProblemClass::kConstant);
  EXPECT_EQ(problems::classify_table(problems::free_table(3, 3)).predicted,
            ProblemClass::kConstant);
  // 3-edge-coloring: flexible but not constant-good — the split class.
  EXPECT_EQ(
      problems::classify_table(problems::edge_coloring_table(3, 3)).predicted,
      ProblemClass::kLogStar);
  // Parity-rigid chains: only the exact decomposition schedule applies.
  EXPECT_EQ(
      problems::classify_table(problems::two_coloring_table(3)).predicted,
      ProblemClass::kGenericLogN);
  // 2-edge-coloring at max degree 3: a degree-3 node has no valid
  // multiset, so some bounded-degree tree is a witness of unsolvability.
  EXPECT_EQ(
      problems::classify_table(problems::edge_coloring_table(2, 3)).predicted,
      ProblemClass::kUnsolvable);
}

TEST(Classify, WeakMatchingAndCoveringAreSolvable) {
  const auto wm = problems::classify_table(problems::weak_matching_table(3));
  EXPECT_NE(wm.predicted, ProblemClass::kUnsolvable);
  const auto cov = problems::classify_table(problems::covering_table(3));
  EXPECT_NE(cov.predicted, ProblemClass::kUnsolvable);
}

TEST(Classify, LandscapeRegionsBindToFigure2Rows) {
  EXPECT_EQ(problems::landscape_region(ProblemClass::kConstant).range,
            "O(1)");
  const auto split = problems::landscape_region(ProblemClass::kLogStar);
  EXPECT_NE(split.range.find("log*"), std::string::npos);
  EXPECT_EQ(split.kind, core::RegionKind::kDense);
}

TEST(Classify, TreeTestingFindsBranchingWitnesses) {
  // Allowed: singletons and pairs, but *no* degree-3 multiset — every
  // table row beyond degree 2 is empty, so any tree with a degree-3
  // node is infeasible even though paths are fine.
  BwTable t = problems::free_table(2, 3);
  t.allowed[2] = 0;
  const auto tt = problems::tree_testing(t);
  EXPECT_FALSE(tt.good);
  EXPECT_EQ(problems::classify_table(t).predicted,
            ProblemClass::kUnsolvable);
}

// ---------------------------------------------------------------------------
// Property fuzz: classification is invariant under label permutation
// and alphabet padding. Counterexamples are shrunk to a minimal table
// (greedily dropping allowed multisets while the violation persists)
// and printed via describe() so they can be pinned here.
// ---------------------------------------------------------------------------

/// Returns true when `t` violates the given invariance property.
using Violation = std::function<bool(const BwTable&)>;

bool violates_permutation_invariance(const BwTable& t) {
  const ProblemClass base = problems::classify_table(t).predicted;
  std::vector<int> perm(static_cast<std::size_t>(t.alphabet));
  std::iota(perm.begin(), perm.end(), 0);
  do {
    if (problems::classify_table(problems::permute_table(t, perm))
            .predicted != base) {
      return true;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return false;
}

bool violates_padding_invariance(const BwTable& t) {
  if (t.alphabet >= problems::kMaxAlphabet) return false;
  const ProblemClass base = problems::classify_table(t).predicted;
  return problems::classify_table(problems::pad_table(t, 1)).predicted !=
         base;
}

/// Greedy shrink: drop one allowed multiset at a time as long as the
/// violation persists; the result is minimal in the sense that removing
/// any single multiset repairs it.
BwTable shrink_violation(BwTable t, const Violation& violates) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (int d = 1; d <= t.max_degree && !progress; ++d) {
      const auto count = problems::multisets(t.alphabet, d).size();
      for (std::size_t i = 0; i < count && !progress; ++i) {
        const std::uint64_t bit = std::uint64_t{1} << i;
        if (!(t.allowed[static_cast<std::size_t>(d - 1)] & bit)) continue;
        BwTable smaller = t;
        smaller.allowed[static_cast<std::size_t>(d - 1)] &= ~bit;
        if (violates(smaller)) {
          t = smaller;
          progress = true;
        }
      }
    }
  }
  return t;
}

void fuzz_invariance(const Violation& violates, const char* what) {
  for (int i = 0; i < 200; ++i) {
    const BwTable t =
        problems::sample_table(problems::problem_sub_seed(0xF022, i));
    if (violates(t)) {
      const BwTable minimal = shrink_violation(t, violates);
      FAIL() << what << " violated by seed " << t.seed
             << "; shrunk counterexample:\n"
             << minimal.describe();
    }
  }
}

TEST(ClassifyProperty, InvariantUnderLabelPermutation) {
  fuzz_invariance(violates_permutation_invariance, "permutation invariance");
}

TEST(ClassifyProperty, InvariantUnderAlphabetPadding) {
  fuzz_invariance(violates_padding_invariance, "padding invariance");
}

TEST(ClassifyProperty, PinnedPaddingCounterexample) {
  // Shrunk by the harness above from sampled seed 3704178665565904 when
  // classify_table canonicalized *without* stripping inert labels: the
  // padding label changed which relabeling won canonicalization, the
  // label-order-dependent rectangle tie-breaks then explored different
  // label-sets, and the predicted class flipped. strip_unused_labels
  // fixes it; this exact table stays pinned as the regression witness.
  BwTable t;
  t.alphabet = 3;
  t.max_degree = 3;
  t.name = "pinned-padding-cex";
  t.allowed[0] = (std::uint64_t{1} << problems::multiset_index(3, {1})) |
                 (std::uint64_t{1} << problems::multiset_index(3, {2}));
  t.allowed[1] =
      (std::uint64_t{1} << problems::multiset_index(3, {0, 1})) |
      (std::uint64_t{1} << problems::multiset_index(3, {1, 1})) |
      (std::uint64_t{1} << problems::multiset_index(3, {2, 2}));
  t.allowed[2] = std::uint64_t{1} << problems::multiset_index(3, {2, 2, 2});
  EXPECT_FALSE(violates_padding_invariance(t)) << t.describe();
  EXPECT_FALSE(violates_permutation_invariance(t)) << t.describe();
  // Stripping is the identity here (every label is used), and the
  // padded variant strips back to the original exactly.
  EXPECT_EQ(problems::strip_unused_labels(t), t);
  EXPECT_EQ(problems::strip_unused_labels(problems::pad_table(t, 1)), t);
}

TEST(ClassifyProperty, PinnedMinimalTables) {
  // Pinned by hand from the shrink harness: the free 1-multiset table
  // whose only allowed sets are a self-loop chain — the smallest table
  // where the canonicalization step is load-bearing. Classifying the
  // *raw* permuted variants must agree because classify_table
  // canonicalizes internally; these stay as regression anchors.
  BwTable t;
  t.alphabet = 2;
  t.max_degree = 3;
  t.name = "pinned-minimal";
  t.allowed[0] = 0b01;  // leaf: {0}
  t.allowed[1] =
      std::uint64_t{1} << problems::multiset_index(2, {0, 0});  // chain: {0,0}
  t.allowed[2] =
      std::uint64_t{1} << problems::multiset_index(2, {0, 0, 0});
  EXPECT_EQ(problems::classify_table(t).predicted, ProblemClass::kConstant);
  EXPECT_FALSE(violates_permutation_invariance(t));
  EXPECT_FALSE(violates_padding_invariance(t));

  // Its mirror under the 0<->1 swap is the same problem.
  const BwTable swapped = problems::permute_table(t, {1, 0});
  EXPECT_EQ(problems::canonical_key(swapped), problems::canonical_key(t));
  EXPECT_EQ(problems::classify_table(swapped).predicted,
            ProblemClass::kConstant);
}

// ---------------------------------------------------------------------------
// canonical_key as a cache identity. The lcld problem cache keys every
// entry by canonical_key(strip_unused_labels(table)) — two requests
// share an entry iff their keys match — so the key must be stable
// across the table encodings of one problem (permutation, post-strip
// padding), must never collide across distinct canonical tables, and
// its rendered format is a wire contract (classify responses and
// persisted snapshots carry it verbatim).
// ---------------------------------------------------------------------------

bool violates_key_stability(const BwTable& t) {
  const std::string base =
      problems::canonical_key(problems::strip_unused_labels(t));
  std::vector<int> perm(static_cast<std::size_t>(t.alphabet));
  std::iota(perm.begin(), perm.end(), 0);
  do {
    const BwTable p =
        problems::strip_unused_labels(problems::permute_table(t, perm));
    if (problems::canonical_key(p) != base) return true;
  } while (std::next_permutation(perm.begin(), perm.end()));
  // Padding adds only unused labels, so stripping undoes it exactly and
  // the cache key cannot depend on the alphabet headroom.
  if (t.alphabet < problems::kMaxAlphabet) {
    const BwTable padded =
        problems::strip_unused_labels(problems::pad_table(t, 1));
    if (problems::canonical_key(padded) != base) return true;
  }
  return false;
}

TEST(CanonicalKeyProperty, StableUnderPermutationAndPaddingAfterStrip) {
  fuzz_invariance(violates_key_stability, "canonical-key stability");
}

TEST(CanonicalKeyProperty, DistinctCanonicalTablesNeverShareAKey) {
  // Keys and canonical tables must be 1:1 over a large mixed sample: a
  // collision would make the service cache answer with the wrong
  // problem's classification, a split would duplicate entries.
  std::map<std::string, BwTable> seen;
  const auto check = [&](const BwTable& raw) {
    const BwTable stripped = problems::strip_unused_labels(raw);
    const BwTable canon = problems::canonical_table(stripped);
    const std::string key = problems::canonical_key(stripped);
    // The key reads through canonicalization: the canonical
    // representative renders the same key as any table in its orbit.
    EXPECT_EQ(problems::canonical_key(canon), key);
    const auto [it, inserted] = seen.emplace(key, canon);
    if (!inserted) {
      EXPECT_EQ(it->second, canon) << "key collision on " << key;
    }
  };
  for (int i = 0; i < 400; ++i) {
    check(problems::sample_table(problems::problem_sub_seed(0xC011, i)));
  }
  for (const BwTable& t : problems::sample_problems(9, 40)) check(t);
  EXPECT_GT(seen.size(), 50u);
}

TEST(CanonicalKeyProperty, RenderedFormatIsPinned) {
  // Exact literals pinned: lcld classify responses echo these keys and
  // cache entries persist under them, so a format change here is a wire
  // break, not a refactor.
  EXPECT_EQ(problems::canonical_key(
                problems::strip_unused_labels(problems::sample_table(42))),
            "a2d3:3:3:7");
  EXPECT_EQ(problems::canonical_key(problems::edge_coloring_table(3, 3)),
            "a3d3:7:16:10");
  EXPECT_EQ(problems::canonical_key(problems::two_coloring_table(3)),
            "a2d3:3:2:f");
  EXPECT_EQ(problems::canonical_key(problems::free_table(2, 3)),
            "a2d3:3:7:f");
}

// ---------------------------------------------------------------------------
// The exact global solver (the kGenericLogN schedule's engine).
// ---------------------------------------------------------------------------

TEST(TreeBwGlobal, SolvesParityRigidChainsTheFlexibleSolverRejects) {
  const graph::Tree t = graph::make_path(240);
  const auto problem = problems::two_coloring_table(3).to_problem();
  EXPECT_FALSE(bw::solve_tree_bw(t, problem).solved);
  const auto exact = bw::solve_tree_bw_global(t, problem);
  ASSERT_TRUE(exact.solved) << exact.failure;
  EXPECT_EQ(bw::check_tree_bw(t, problem, exact.edge_label), "");
}

TEST(TreeBwGlobal, AgreesWithFlexibleSolverOnSolvableProblems) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const graph::Tree t = graph::make_random_tree(350, 3, seed);
    const auto problem = problems::edge_coloring_table(3, 3).to_problem();
    ASSERT_TRUE(bw::solve_tree_bw(t, problem).solved);
    const auto exact = bw::solve_tree_bw_global(t, problem);
    ASSERT_TRUE(exact.solved) << exact.failure;
    EXPECT_EQ(bw::check_tree_bw(t, problem, exact.edge_label), "");
  }
}

TEST(TreeBwGlobal, RejectsGenuinelyInfeasibleInstances) {
  // 2-edge-coloring a degree-3 star is impossible.
  const graph::Tree t = graph::make_star(3);
  const auto res = bw::solve_tree_bw_global(
      t, problems::edge_coloring_table(2, 3).to_problem());
  EXPECT_FALSE(res.solved);
  EXPECT_NE(res.failure, "");
}

TEST(TreeBw, SolveRecordsCompressChains) {
  const graph::Tree t = graph::make_path(120);
  const auto res =
      bw::solve_tree_bw(t, problems::edge_coloring_table(3, 3).to_problem());
  ASSERT_TRUE(res.solved);
  ASSERT_FALSE(res.chains.empty());
  std::size_t covered = 0;
  for (const bw::ChainRecord& c : res.chains) {
    EXPECT_FALSE(c.nodes.empty());
    covered += c.nodes.size();
    // Interior chains carry committed boundary sets on both sides.
    if (c.left != 0) EXPECT_LT(c.left, 1u << 3);
  }
  EXPECT_GT(covered, 0u);
  EXPECT_LE(covered, static_cast<std::size_t>(t.size()));
}

// ---------------------------------------------------------------------------
// The empirical classifier's decision rules (documented thresholds).
// ---------------------------------------------------------------------------

TEST(ClassifyEmpirical, DecisionRules) {
  problems::EmpiricalSignal s;
  s.n_small = 4000;
  s.n_large = 64000;

  s.any_infeasible = true;
  EXPECT_EQ(problems::classify_empirical(s), ProblemClass::kUnsolvable);

  s.any_infeasible = false;
  s.na_small = 2.3;
  s.na_large = 2.4;  // flat and small: O(1)
  EXPECT_EQ(problems::classify_empirical(s), ProblemClass::kConstant);

  s.na_small = 20.0;
  s.na_large = 21.0;  // flat but split-sized: log*-range
  EXPECT_EQ(problems::classify_empirical(s), ProblemClass::kLogStar);

  s.na_small = 17.0;
  s.na_large = 24.0;  // growing ~ log n
  EXPECT_EQ(problems::classify_empirical(s), ProblemClass::kGenericLogN);
}

}  // namespace
}  // namespace lcl
