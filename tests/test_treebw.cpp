// The black-white tree solver (Definition 70, Sections 11.3-11.5):
// label-set sweeps over a rake-and-compress decomposition solve edge
// LCLs on trees; the independent checker certifies every solution, and
// unsolvable problems are detected via empty classes.
#include <gtest/gtest.h>

#include "bw/tree_problem.hpp"
#include "graph/builders.hpp"

namespace lcl {
namespace {

using graph::NodeId;
using graph::Tree;

void solve_and_check(const Tree& t, const bw::TreeBwProblem& p,
                     bool expect_solved = true) {
  const auto res = bw::solve_tree_bw(t, p);
  if (!expect_solved) {
    EXPECT_FALSE(res.solved) << p.name;
    return;
  }
  ASSERT_TRUE(res.solved) << p.name << ": " << res.failure;
  const std::string err = bw::check_tree_bw(t, p, res.edge_label);
  EXPECT_EQ(err, "") << p.name;
}

TEST(TreeBw, FreeProblemOnEverything) {
  solve_and_check(graph::make_path(50), bw::make_bw_free(2));
  solve_and_check(graph::make_star(7), bw::make_bw_free(3));
  solve_and_check(graph::make_random_tree(500, 5, 1), bw::make_bw_free(2));
}

TEST(TreeBw, EdgeColoringMirrorsTheRigidityClassification) {
  // Edge-2-coloring of a path is a Theta(n)-rigid problem (its node
  // analog classifies kLinear): the generic label-set machinery MUST
  // fail on it — compress chains force parity-coupled classes whose
  // independent restrictions cannot be combined globally. This is the
  // same refusal the testing procedure reports for 2-coloring.
  solve_and_check(graph::make_path(200), bw::make_bw_edge_coloring(2),
                  /*expect_solved=*/false);
  // Three colors make the problem flexible (Theta(log* n) analog): the
  // generic solver succeeds.
  solve_and_check(graph::make_path(201), bw::make_bw_edge_coloring(3));
  // A star with 5 leaves needs 5 colors; 4 must fail.
  solve_and_check(graph::make_star(5), bw::make_bw_edge_coloring(5));
  solve_and_check(graph::make_star(5), bw::make_bw_edge_coloring(4),
                  /*expect_solved=*/false);
}

class TreeBwRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeBwRandom, EdgeColoringOnRandomTrees) {
  const std::uint64_t seed = GetParam();
  const Tree t = graph::make_random_tree(400, 4, seed);
  solve_and_check(t, bw::make_bw_edge_coloring(4));
}

TEST_P(TreeBwRandom, SinklessOrientationOnRandomTrees) {
  const std::uint64_t seed = GetParam();
  const Tree t = graph::make_random_tree(400, 4, seed + 50);
  solve_and_check(t, bw::make_bw_sinkless());
}

TEST_P(TreeBwRandom, WeakMatchingOnRandomTrees) {
  const std::uint64_t seed = GetParam();
  const Tree t = graph::make_random_tree(400, 5, seed + 99);
  solve_and_check(t, bw::make_bw_weak_matching());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeBwRandom,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(TreeBw, CaterpillarMixesChainsAndRakes) {
  const Tree t = graph::make_caterpillar(120, 1);
  solve_and_check(t, bw::make_bw_edge_coloring(4));
  solve_and_check(t, bw::make_bw_sinkless());
  solve_and_check(t, bw::make_bw_weak_matching());
}

TEST(TreeBw, CheckerRejectsCorruption) {
  const Tree t = graph::make_path(30);
  const auto p = bw::make_bw_edge_coloring(3);
  auto res = bw::solve_tree_bw(t, p);
  ASSERT_TRUE(res.solved);
  res.edge_label[5] = res.edge_label[4];  // adjacent edges same color
  EXPECT_NE(bw::check_tree_bw(t, p, res.edge_label), "");
}

TEST(TreeBw, HierarchicalInstances) {
  // The Figure-3 lower-bound tree as a black-white substrate.
  const auto inst = graph::make_hierarchical_lower_bound({5, 8});
  solve_and_check(inst.tree, bw::make_bw_edge_coloring(4));
  solve_and_check(inst.tree, bw::make_bw_sinkless());
}

}  // namespace
}  // namespace lcl
