// Graph substrate: builders produce the structures the paper's
// constructions require, and the by-construction levels of the
// lower-bound graphs match the Definition-8 peeling.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "graph/builders.hpp"
#include "graph/tree.hpp"
#include "problems/levels.hpp"
#include "test_util.hpp"

namespace lcl {
namespace {

using graph::NodeId;
using graph::Tree;

TEST(Graph, PathBasics) {
  const Tree t = graph::make_path(5);
  EXPECT_EQ(t.size(), 5);
  EXPECT_EQ(t.edge_count(), 4);
  EXPECT_TRUE(t.is_tree());
  EXPECT_EQ(t.degree(0), 1);
  EXPECT_EQ(t.degree(2), 2);
  EXPECT_EQ(t.max_degree(), 2);
}

TEST(Graph, StarAndCaterpillar) {
  const Tree s = graph::make_star(6);
  EXPECT_EQ(s.size(), 7);
  EXPECT_EQ(s.degree(0), 6);
  EXPECT_TRUE(s.is_tree());

  const Tree c = graph::make_caterpillar(10, 3);
  EXPECT_EQ(c.size(), 10 + 30);
  EXPECT_TRUE(c.is_tree());
}

TEST(Graph, BalancedWeightTreeShape) {
  const int delta = 5;  // fanout 4
  const Tree t = graph::make_balanced_weight_tree(100, delta);
  EXPECT_EQ(t.size(), 100);
  EXPECT_TRUE(t.is_tree());
  EXPECT_LE(t.max_degree(), delta);
  // Root has fanout delta-1.
  EXPECT_EQ(t.degree(0), delta - 1);
}

TEST(Graph, BfsDistancesAndBall) {
  const Tree t = graph::make_path(7);
  const auto dist = graph::bfs_distances(t, 3);
  EXPECT_EQ(dist[0], 3);
  EXPECT_EQ(dist[6], 3);
  EXPECT_EQ(dist[3], 0);
  const auto b = graph::ball(t, 3, 2);
  EXPECT_EQ(b.size(), 5u);
}

TEST(Graph, RandomTreeRespectsDegree) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Tree t = graph::make_random_tree(500, 4, seed);
    EXPECT_EQ(t.size(), 500);
    EXPECT_TRUE(t.is_tree());
    EXPECT_LE(t.max_degree(), 4);
  }
}

TEST(Graph, IdSchemes) {
  Tree t = graph::make_path(100);
  graph::assign_ids(t, graph::IdScheme::kShuffled, 42);
  t.validate_ids();
  graph::assign_ids(t, graph::IdScheme::kBlockOffset, 1000);
  EXPECT_EQ(t.local_id(0), 1000);
  EXPECT_EQ(t.local_id(99), 1099);
  t.validate_ids();
}

TEST(Graph, ForestDetection) {
  graph::TreeBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);  // triangle
  // finalize proves forest-ness and must reject the triangle; the
  // explicit non-forest finalize admits it with the flag cleared.
  EXPECT_THROW((void)b.finalize(0), std::logic_error);
  const Tree t = b.finalize_graph(0);
  EXPECT_FALSE(t.forest_checked());
  EXPECT_FALSE(t.is_forest());
}

// --- CSR substrate: TreeBuilder validation + round-trip ---------------

TEST(Graph, CsrRoundTripMatchesReferenceAdjacency) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const NodeId n = 400;
    // Feed the same random edge sequence to the CSR builder and to an
    // independently maintained vector-of-vectors reference (the old
    // Tree representation's exact push_back semantics), then compare.
    std::mt19937_64 rng(seed);
    graph::TreeBuilder b(n);
    std::vector<std::vector<NodeId>> ref(static_cast<std::size_t>(n));
    for (NodeId v = 1; v < n; ++v) {
      std::uniform_int_distribution<NodeId> pick(0, v - 1);
      const NodeId u = pick(rng);
      b.add_edge(u, v);
      ref[static_cast<std::size_t>(u)].push_back(v);
      ref[static_cast<std::size_t>(v)].push_back(u);
    }
    const Tree t = b.finalize(0);
    ASSERT_TRUE(t.is_tree());
    // The flat CSR arrays must agree with the spans and with each other.
    const auto off = t.offsets();
    const auto adj = t.adjacency();
    ASSERT_EQ(off.size(), static_cast<std::size_t>(n) + 1);
    ASSERT_EQ(adj.size(), 2 * static_cast<std::size_t>(t.edge_count()));
    std::int64_t degree_sum = 0;
    for (NodeId v = 0; v < n; ++v) {
      const auto nb = t.neighbors(v);
      ASSERT_EQ(static_cast<int>(nb.size()), t.degree(v));
      degree_sum += t.degree(v);
      for (std::size_t p = 0; p < nb.size(); ++p) {
        EXPECT_EQ(nb[p],
                  adj[static_cast<std::size_t>(
                          off[static_cast<std::size_t>(v)]) +
                      p]);
        EXPECT_EQ(nb[p], ref[static_cast<std::size_t>(v)][p]);
      }
    }
    EXPECT_EQ(degree_sum, 2 * t.edge_count());
    // Symmetry: u appears in v's list iff v appears in u's list.
    for (NodeId v = 0; v < n; ++v) {
      for (NodeId u : t.neighbors(v)) {
        bool found = false;
        for (NodeId w : t.neighbors(u)) found = found || w == v;
        EXPECT_TRUE(found) << "edge " << v << "-" << u << " not mirrored";
      }
    }
  }
}

TEST(Graph, BuilderPortOrderIsInsertionOrder) {
  graph::TreeBuilder b(5);
  b.add_edge(2, 0);
  b.add_edge(2, 4);
  b.add_edge(2, 1);
  b.add_edge(3, 2);
  const Tree t = b.finalize(0);
  const auto nb = t.neighbors(2);
  ASSERT_EQ(nb.size(), 4u);
  EXPECT_EQ(nb[0], 0);
  EXPECT_EQ(nb[1], 4);
  EXPECT_EQ(nb[2], 1);
  EXPECT_EQ(nb[3], 3);
}

TEST(Graph, NeighborSpansStableAfterFinalize) {
  Tree t = graph::make_caterpillar(20, 2);
  const auto before = t.neighbors(5);
  const NodeId first = before[0];
  // Attribute mutation (IDs, inputs) must not move the topology arrays.
  for (NodeId v = 0; v < t.size(); ++v) {
    t.set_local_id(v, 1000 + v);
    t.set_input(v, 7);
  }
  const auto after = t.neighbors(5);
  EXPECT_EQ(before.data(), after.data());
  EXPECT_EQ(before.size(), after.size());
  EXPECT_EQ(after[0], first);
  // Spans point into the tree's own flat adjacency array.
  const auto adj = t.adjacency();
  EXPECT_GE(after.data(), adj.data());
  EXPECT_LE(after.data() + after.size(), adj.data() + adj.size());
}

TEST(Graph, BuilderRejectsSelfLoop) {
  graph::TreeBuilder b(3);
  EXPECT_THROW(b.add_edge(1, 1), std::invalid_argument);
  EXPECT_THROW(b.add_edge(0, 3), std::out_of_range);
  EXPECT_THROW(b.add_edge(-1, 0), std::out_of_range);
}

TEST(Graph, BuilderRejectsDuplicateEdge) {
  graph::TreeBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // same undirected edge, either orientation
  EXPECT_THROW((void)b.finalize(0), std::logic_error);
}

TEST(Graph, BuilderRejectsDegreeOverflow) {
  graph::TreeBuilder b(5);
  for (NodeId v = 1; v < 5; ++v) b.add_edge(0, v);
  EXPECT_THROW((void)b.finalize(3), std::logic_error);
  EXPECT_EQ(b.finalize(4).max_degree(), 4);
}

TEST(Graph, BuilderArenaIsReusable) {
  graph::TreeBuilder& arena = graph::tls_build_arena();
  arena.reset(3);
  arena.add_edge(0, 1);
  arena.add_edge(1, 2);
  const Tree path = arena.finalize(2);
  arena.reset(4);
  for (NodeId v = 1; v < 4; ++v) arena.add_edge(0, v);
  const Tree star = arena.finalize(3);
  // The earlier emitted tree owns its storage and survives arena reuse.
  EXPECT_TRUE(path.is_tree());
  EXPECT_EQ(path.degree(1), 2);
  EXPECT_TRUE(star.is_tree());
  EXPECT_EQ(star.degree(0), 3);
}

TEST(Graph, FailedBuildDoesNotPoisonTheArena) {
  // A builder that throws during lease acquisition (negative n) must not
  // leave the thread's arena marked leased; later builds on this thread
  // have to work.
  EXPECT_THROW((void)graph::make_path(-1), std::invalid_argument);
  const Tree ok = graph::make_path(10);
  EXPECT_EQ(ok.size(), 10);
  // Same for a failure after acquisition (cycle rejected at finalize).
  graph::TreeBuilder bad(3);
  bad.add_edge(0, 1);
  bad.add_edge(1, 2);
  bad.add_edge(2, 0);
  EXPECT_THROW((void)bad.finalize(0), std::logic_error);
  EXPECT_TRUE(graph::make_star(4).is_tree());
}

TEST(Graph, MakeCycleCarriesNonForestFlag) {
  const Tree c = graph::make_cycle(6);
  EXPECT_FALSE(c.forest_checked());
  EXPECT_FALSE(c.is_forest());
  EXPECT_EQ(c.max_degree(), 2);
  EXPECT_EQ(c.edge_count(), 6);
  EXPECT_TRUE(graph::make_path(6).forest_checked());
}

TEST(Graph, InducedSubgraph) {
  // Caterpillar spine 4, 1 leg each: keep only the spine.
  const Tree t = graph::make_caterpillar(4, 1);
  std::vector<char> keep(static_cast<std::size_t>(t.size()), 0);
  for (NodeId v = 0; v < 4; ++v) keep[static_cast<std::size_t>(v)] = 1;
  std::vector<NodeId> from_sub;
  std::vector<NodeId> to_sub;
  const Tree sub = graph::induced_subgraph(t, keep, &from_sub, &to_sub);
  EXPECT_EQ(sub.size(), 4);
  EXPECT_EQ(sub.edge_count(), 3);
  EXPECT_TRUE(sub.is_tree());
  ASSERT_EQ(from_sub.size(), 4u);
  for (NodeId s = 0; s < 4; ++s) {
    EXPECT_EQ(from_sub[static_cast<std::size_t>(s)], s);
    EXPECT_EQ(to_sub[static_cast<std::size_t>(s)], s);
  }
  for (NodeId v = 4; v < t.size(); ++v) {
    EXPECT_EQ(to_sub[static_cast<std::size_t>(v)], graph::kInvalidNode);
  }
  // Verified parent -> verified (known-forest) subgraph; unverified
  // parent (cycle) -> flag stays cleared, and a full-mask induced
  // subgraph of a cycle is still the cycle.
  EXPECT_TRUE(sub.forest_checked());
  const Tree cyc = graph::make_cycle(5);
  const std::vector<char> all(5, 1);
  const Tree cyc_sub = graph::induced_subgraph(cyc, all);
  EXPECT_FALSE(cyc_sub.forest_checked());
  EXPECT_EQ(cyc_sub.edge_count(), 5);
  EXPECT_FALSE(cyc_sub.is_forest());
}

// --- Definition 18: the hierarchical lower-bound graph (Figure 3) ----

TEST(Graph, HierarchicalLowerBoundLevelsMatchPeeling) {
  // k = 2: level-1 paths of length 5 hanging off a level-2 path of 8.
  // The two level-2 endpoints carry one extra level-1 path each (the
  // Figure-3 boundary fix), so there are 8 + 2 attached paths.
  const auto inst = graph::make_hierarchical_lower_bound({5, 8});
  EXPECT_TRUE(inst.tree.is_tree());
  EXPECT_EQ(inst.tree.size(), 8 + (8 + 2) * 5);
  const auto levels = problems::compute_levels(inst.tree, 2);
  for (NodeId v = 0; v < inst.tree.size(); ++v) {
    EXPECT_EQ(levels[static_cast<std::size_t>(v)],
              inst.intended_level[static_cast<std::size_t>(v)])
        << "node " << v;
  }
}

TEST(Graph, HierarchicalLowerBoundK3) {
  const auto inst = graph::make_hierarchical_lower_bound({3, 4, 5});
  EXPECT_TRUE(inst.tree.is_tree());
  // Level 3: 5 nodes; level 2: (5+2) paths of 4 = 28 nodes; level 1:
  // each level-2 path contributes 2*2 + 2*1 = 6 attached paths of 3.
  EXPECT_EQ(inst.tree.size(), 5 + 28 + 7 * 6 * 3);
  const auto levels = problems::compute_levels(inst.tree, 3);
  for (NodeId v = 0; v < inst.tree.size(); ++v) {
    EXPECT_EQ(levels[static_cast<std::size_t>(v)],
              inst.intended_level[static_cast<std::size_t>(v)]);
  }
}

// --- Definition 25: the weighted construction (Figure 4) -------------

TEST(Graph, WeightedConstructionShape) {
  const auto inst = graph::make_weighted_construction({6, 10}, 6);
  EXPECT_TRUE(inst.tree.is_tree());
  EXPECT_LE(inst.tree.max_degree(), 6);
  EXPECT_GT(inst.weight_count, 0);
  // Active nodes form the skeleton; weight trees hang off levels >= 2.
  NodeId active = 0, weight = 0;
  for (NodeId v = 0; v < inst.tree.size(); ++v) {
    if (inst.tree.input(v) ==
        static_cast<int>(graph::WeightInput::kActive)) {
      ++active;
    } else {
      ++weight;
    }
  }
  EXPECT_EQ(active, inst.active_count);
  EXPECT_EQ(weight, inst.weight_count);
  // Every weight node's component touches exactly one active node family:
  // each level->=2 skeleton node has exactly one attached weight tree, so
  // every weight tree root has exactly one active neighbor.
  for (NodeId v = 0; v < inst.tree.size(); ++v) {
    if (inst.tree.input(v) !=
        static_cast<int>(graph::WeightInput::kWeight)) {
      continue;
    }
    int active_neighbors = 0;
    for (NodeId u : inst.tree.neighbors(v)) {
      if (inst.tree.input(u) ==
          static_cast<int>(graph::WeightInput::kActive)) {
        ++active_neighbors;
      }
    }
    EXPECT_LE(active_neighbors, 1);
  }
}

TEST(Graph, WeightedConstructionBalancedWeight) {
  const auto inst = graph::make_weighted_construction({4, 6, 8}, 7);
  // Weight per level ~ n' for levels 2..k: total weight ~ (k-1) * n'.
  const double ratio = static_cast<double>(inst.weight_count) /
                       static_cast<double>(inst.active_count);
  EXPECT_GT(ratio, 0.8);  // roughly k-1 = 2 with rounding slack
}

}  // namespace
}  // namespace lcl
