// Graph substrate: builders produce the structures the paper's
// constructions require, and the by-construction levels of the
// lower-bound graphs match the Definition-8 peeling.
#include <gtest/gtest.h>

#include "graph/builders.hpp"
#include "graph/tree.hpp"
#include "problems/levels.hpp"
#include "test_util.hpp"

namespace lcl {
namespace {

using graph::NodeId;
using graph::Tree;

TEST(Graph, PathBasics) {
  const Tree t = graph::make_path(5);
  EXPECT_EQ(t.size(), 5);
  EXPECT_EQ(t.edge_count(), 4);
  EXPECT_TRUE(t.is_tree());
  EXPECT_EQ(t.degree(0), 1);
  EXPECT_EQ(t.degree(2), 2);
  EXPECT_EQ(t.max_degree(), 2);
}

TEST(Graph, StarAndCaterpillar) {
  const Tree s = graph::make_star(6);
  EXPECT_EQ(s.size(), 7);
  EXPECT_EQ(s.degree(0), 6);
  EXPECT_TRUE(s.is_tree());

  const Tree c = graph::make_caterpillar(10, 3);
  EXPECT_EQ(c.size(), 10 + 30);
  EXPECT_TRUE(c.is_tree());
}

TEST(Graph, BalancedWeightTreeShape) {
  const int delta = 5;  // fanout 4
  const Tree t = graph::make_balanced_weight_tree(100, delta);
  EXPECT_EQ(t.size(), 100);
  EXPECT_TRUE(t.is_tree());
  EXPECT_LE(t.max_degree(), delta);
  // Root has fanout delta-1.
  EXPECT_EQ(t.degree(0), delta - 1);
}

TEST(Graph, BfsDistancesAndBall) {
  const Tree t = graph::make_path(7);
  const auto dist = graph::bfs_distances(t, 3);
  EXPECT_EQ(dist[0], 3);
  EXPECT_EQ(dist[6], 3);
  EXPECT_EQ(dist[3], 0);
  const auto b = graph::ball(t, 3, 2);
  EXPECT_EQ(b.size(), 5u);
}

TEST(Graph, RandomTreeRespectsDegree) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Tree t = graph::make_random_tree(500, 4, seed);
    EXPECT_EQ(t.size(), 500);
    EXPECT_TRUE(t.is_tree());
    EXPECT_LE(t.max_degree(), 4);
  }
}

TEST(Graph, IdSchemes) {
  Tree t = graph::make_path(100);
  graph::assign_ids(t, graph::IdScheme::kShuffled, 42);
  t.validate_ids();
  graph::assign_ids(t, graph::IdScheme::kBlockOffset, 1000);
  EXPECT_EQ(t.local_id(0), 1000);
  EXPECT_EQ(t.local_id(99), 1099);
  t.validate_ids();
}

TEST(Graph, ForestDetection) {
  Tree t(4);
  t.add_edge(0, 1);
  t.add_edge(1, 2);
  t.add_edge(2, 0);  // triangle
  t.finalize(0);
  EXPECT_FALSE(t.is_forest());
}

// --- Definition 18: the hierarchical lower-bound graph (Figure 3) ----

TEST(Graph, HierarchicalLowerBoundLevelsMatchPeeling) {
  // k = 2: level-1 paths of length 5 hanging off a level-2 path of 8.
  // The two level-2 endpoints carry one extra level-1 path each (the
  // Figure-3 boundary fix), so there are 8 + 2 attached paths.
  const auto inst = graph::make_hierarchical_lower_bound({5, 8});
  EXPECT_TRUE(inst.tree.is_tree());
  EXPECT_EQ(inst.tree.size(), 8 + (8 + 2) * 5);
  const auto levels = problems::compute_levels(inst.tree, 2);
  for (NodeId v = 0; v < inst.tree.size(); ++v) {
    EXPECT_EQ(levels[static_cast<std::size_t>(v)],
              inst.intended_level[static_cast<std::size_t>(v)])
        << "node " << v;
  }
}

TEST(Graph, HierarchicalLowerBoundK3) {
  const auto inst = graph::make_hierarchical_lower_bound({3, 4, 5});
  EXPECT_TRUE(inst.tree.is_tree());
  // Level 3: 5 nodes; level 2: (5+2) paths of 4 = 28 nodes; level 1:
  // each level-2 path contributes 2*2 + 2*1 = 6 attached paths of 3.
  EXPECT_EQ(inst.tree.size(), 5 + 28 + 7 * 6 * 3);
  const auto levels = problems::compute_levels(inst.tree, 3);
  for (NodeId v = 0; v < inst.tree.size(); ++v) {
    EXPECT_EQ(levels[static_cast<std::size_t>(v)],
              inst.intended_level[static_cast<std::size_t>(v)]);
  }
}

// --- Definition 25: the weighted construction (Figure 4) -------------

TEST(Graph, WeightedConstructionShape) {
  const auto inst = graph::make_weighted_construction({6, 10}, 6);
  EXPECT_TRUE(inst.tree.is_tree());
  EXPECT_LE(inst.tree.max_degree(), 6);
  EXPECT_GT(inst.weight_count, 0);
  // Active nodes form the skeleton; weight trees hang off levels >= 2.
  NodeId active = 0, weight = 0;
  for (NodeId v = 0; v < inst.tree.size(); ++v) {
    if (inst.tree.input(v) ==
        static_cast<int>(graph::WeightInput::kActive)) {
      ++active;
    } else {
      ++weight;
    }
  }
  EXPECT_EQ(active, inst.active_count);
  EXPECT_EQ(weight, inst.weight_count);
  // Every weight node's component touches exactly one active node family:
  // each level->=2 skeleton node has exactly one attached weight tree, so
  // every weight tree root has exactly one active neighbor.
  for (NodeId v = 0; v < inst.tree.size(); ++v) {
    if (inst.tree.input(v) !=
        static_cast<int>(graph::WeightInput::kWeight)) {
      continue;
    }
    int active_neighbors = 0;
    for (NodeId u : inst.tree.neighbors(v)) {
      if (inst.tree.input(u) ==
          static_cast<int>(graph::WeightInput::kActive)) {
        ++active_neighbors;
      }
    }
    EXPECT_LE(active_neighbors, 1);
  }
}

TEST(Graph, WeightedConstructionBalancedWeight) {
  const auto inst = graph::make_weighted_construction({4, 6, 8}, 7);
  // Weight per level ~ n' for levels 2..k: total weight ~ (k-1) * n'.
  const double ratio = static_cast<double>(inst.weight_count) /
                       static_cast<double>(inst.active_count);
  EXPECT_GT(ratio, 0.8);  // roughly k-1 = 2 with rounding slack
}

}  // namespace
}  // namespace lcl
