// The adapted fast decomposition (Section 8.1): d-free validity of the
// planned outputs, the Corollary-47 geometric decay, and the Lemma-52
// pruning bound.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/fast_decomp.hpp"
#include "core/exponents.hpp"
#include "graph/builders.hpp"
#include "problems/checkers.hpp"
#include "problems/labels.hpp"
#include "test_util.hpp"

namespace lcl {
namespace {

using algo::FastDecompPlan;
using algo::FdaRole;
using graph::NodeId;
using graph::Tree;
using problems::WeightOut;

/// Projects a plan (with every component fully kept) to d-free outputs.
std::vector<int> plan_outputs(const FastDecompPlan& plan, NodeId n) {
  std::vector<int> out(static_cast<std::size_t>(n), -1);
  for (NodeId v = 0; v < n; ++v) {
    switch (plan.role[static_cast<std::size_t>(v)]) {
      case FdaRole::kInactive:
        break;
      case FdaRole::kConnect:
        out[static_cast<std::size_t>(v)] =
            static_cast<int>(WeightOut::kConnect);
        break;
      case FdaRole::kDecline:
        out[static_cast<std::size_t>(v)] =
            static_cast<int>(WeightOut::kDecline);
        break;
      case FdaRole::kCopyRoot:
      case FdaRole::kCopyMember:
        out[static_cast<std::size_t>(v)] =
            static_cast<int>(WeightOut::kCopy);
        break;
    }
  }
  return out;
}

struct Instance {
  Tree tree;
  std::vector<char> part;
  std::vector<char> is_a;
};

Instance balanced_instance(NodeId w, int delta) {
  Instance inst;
  inst.tree = graph::make_balanced_weight_tree(w, delta);
  inst.part.assign(static_cast<std::size_t>(w), 1);
  inst.is_a.assign(static_cast<std::size_t>(w), 0);
  inst.is_a[0] = 1;
  inst.tree.set_input(0, static_cast<int>(problems::DFreeInput::kA));
  for (NodeId v = 1; v < w; ++v) {
    inst.tree.set_input(v, static_cast<int>(problems::DFreeInput::kW));
  }
  return inst;
}

TEST(FastDecomp, ValidOnBalancedWeightTree) {
  for (int d : {3, 4}) {
    auto inst = balanced_instance(2000, d + 4);
    const auto plan = algo::run_fast_decomposition(inst.tree, inst.part,
                                                   inst.is_a, d);
    const auto out = plan_outputs(plan, inst.tree.size());
    test::assert_valid(problems::check_dfree_weight(inst.tree, d, out));
    // Exactly one Copy component rooted at the A node.
    EXPECT_EQ(plan.components.size(), 1u);
    EXPECT_EQ(plan.role[0], FdaRole::kCopyRoot);
  }
}

TEST(FastDecomp, ValidOnPathsAndCaterpillars) {
  // Long paths exercise the compress machinery.
  for (NodeId n : {50, 500}) {
    Tree t = graph::make_path(n);
    std::vector<char> part(static_cast<std::size_t>(n), 1);
    std::vector<char> is_a(static_cast<std::size_t>(n), 0);
    is_a[0] = 1;
    for (NodeId v = 0; v < n; ++v) {
      t.set_input(v, static_cast<int>(is_a[static_cast<std::size_t>(v)]
                                          ? problems::DFreeInput::kA
                                          : problems::DFreeInput::kW));
    }
    const auto plan = algo::run_fast_decomposition(t, part, is_a, 3);
    const auto out = plan_outputs(plan, n);
    test::assert_valid(problems::check_dfree_weight(t, 3, out));
  }
  Tree cat = graph::make_caterpillar(100, 2);
  const NodeId n = cat.size();
  std::vector<char> part(static_cast<std::size_t>(n), 1);
  std::vector<char> is_a(static_cast<std::size_t>(n), 0);
  is_a[static_cast<std::size_t>(n - 1)] = 1;
  for (NodeId v = 0; v < n; ++v) {
    cat.set_input(v, static_cast<int>(is_a[static_cast<std::size_t>(v)]
                                          ? problems::DFreeInput::kA
                                          : problems::DFreeInput::kW));
  }
  const auto plan = algo::run_fast_decomposition(cat, part, is_a, 3);
  test::assert_valid(
      problems::check_dfree_weight(cat, 3, plan_outputs(plan, n)));
}

TEST(FastDecomp, ValidOnRandomTrees) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Tree t = graph::make_random_tree(1500, 6, seed);
    const NodeId n = t.size();
    std::vector<char> part(static_cast<std::size_t>(n), 1);
    std::vector<char> is_a(static_cast<std::size_t>(n), 0);
    is_a[0] = 1;
    is_a[static_cast<std::size_t>(n / 3)] = 1;
    is_a[static_cast<std::size_t>(2 * n / 3)] = 1;
    for (NodeId v = 0; v < n; ++v) {
      t.set_input(v, static_cast<int>(is_a[static_cast<std::size_t>(v)]
                                          ? problems::DFreeInput::kA
                                          : problems::DFreeInput::kW));
    }
    const auto plan = algo::run_fast_decomposition(t, part, is_a, 3);
    const auto out = plan_outputs(plan, n);
    const auto check = problems::check_dfree_weight(t, 3, out);
    ASSERT_TRUE(check.ok) << check.reason << " (seed " << seed << ")";
  }
}

TEST(FastDecomp, GeometricDecay) {
  // Corollary 47: unfinished nodes decay geometrically with iterations.
  Tree t = graph::make_random_tree(20000, 4, 5);
  const NodeId n = t.size();
  std::vector<char> part(static_cast<std::size_t>(n), 1);
  std::vector<char> is_a(static_cast<std::size_t>(n), 0);
  is_a[0] = 1;
  for (NodeId v = 0; v < n; ++v) {
    t.set_input(v, static_cast<int>(is_a[static_cast<std::size_t>(v)]
                                        ? problems::DFreeInput::kA
                                        : problems::DFreeInput::kW));
  }
  const auto plan = algo::run_fast_decomposition(t, part, is_a, 3);
  const auto& decay = plan.unfinished_after_iteration;
  ASSERT_GE(decay.size(), 3u);
  // Sum of unfinished counts across iterations is O(n): this is exactly
  // the O(1) node-averaged charge of Lemma 56.
  std::int64_t total = 0;
  for (std::int64_t c : decay) total += c;
  EXPECT_LT(total, 8 * static_cast<std::int64_t>(n));
  // And the tail is small: after 3/4 of iterations, < 10% remains.
  const std::size_t i34 = decay.size() * 3 / 4;
  EXPECT_LT(decay[i34], n / 10);
}

TEST(FastDecomp, PruningBoundLemma52) {
  // |C'(v)| <= 2 |C(v)|^{x'} on balanced weight trees.
  const int delta = 7, d = 3;
  auto inst = balanced_instance(5000, delta);
  const auto plan = algo::run_fast_decomposition(inst.tree, inst.part,
                                                 inst.is_a, d);
  ASSERT_EQ(plan.components.size(), 1u);
  std::vector<char> declined(static_cast<std::size_t>(inst.tree.size()),
                             0);
  for (NodeId v = 0; v < inst.tree.size(); ++v) {
    if (plan.role[static_cast<std::size_t>(v)] == FdaRole::kDecline) {
      declined[static_cast<std::size_t>(v)] = 1;
    }
  }
  const auto keep =
      algo::prune_component(inst.tree, plan, 0, d, declined);
  std::int64_t kept = 0;
  for (char k : keep) kept += (k != 0);
  const double xp = core::efficiency_x_prime(delta, d);
  const double csize =
      static_cast<double>(plan.components[0].size());
  EXPECT_LE(static_cast<double>(kept), 2.0 * std::pow(csize, xp) + 1.0);
  EXPECT_GE(kept, 1);  // the root always stays

  // Pruned outputs remain d-free valid.
  auto out = plan_outputs(plan, inst.tree.size());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    if (!keep[i]) {
      out[static_cast<std::size_t>(plan.components[0][i])] =
          static_cast<int>(WeightOut::kDecline);
    }
  }
  test::assert_valid(problems::check_dfree_weight(inst.tree, d, out));
}

TEST(FastDecomp, CloseANodesConnect) {
  // Two A nodes 3 apart on a path: the pre-step connects them.
  const NodeId n = 40;
  Tree t = graph::make_path(n);
  std::vector<char> part(static_cast<std::size_t>(n), 1);
  std::vector<char> is_a(static_cast<std::size_t>(n), 0);
  is_a[10] = is_a[13] = 1;
  for (NodeId v = 0; v < n; ++v) {
    t.set_input(v, static_cast<int>(is_a[static_cast<std::size_t>(v)]
                                        ? problems::DFreeInput::kA
                                        : problems::DFreeInput::kW));
  }
  const auto plan = algo::run_fast_decomposition(t, part, is_a, 3);
  for (NodeId v = 10; v <= 13; ++v) {
    EXPECT_EQ(plan.role[static_cast<std::size_t>(v)], FdaRole::kConnect);
  }
  test::assert_valid(
      problems::check_dfree_weight(t, 3, plan_outputs(plan, n)));
}

}  // namespace
}  // namespace lcl
