// Differential test between the arena engine and the frozen legacy
// baseline (bench/legacy_engine.hpp): for every registered solver on
// random Prufer / Galton-Watson instances, the solver's termination
// schedule replayed on the legacy engine must reproduce the
// node-average *bit-identically* (same sum, same division) and certify
// identically through the solver's own registry checker. This pins the
// two engines' round/termination accounting against each other — an
// off-by-one in either round numbering, T_v bookkeeping, or alive
// compaction shows up as a sum or verdict mismatch.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "algo/generic_hier.hpp"
#include "algo/registry.hpp"
#include "graph/builders.hpp"
#include "graph/families.hpp"
#include "legacy_engine.hpp"
#include "local/engine.hpp"
#include "problems/checkers.hpp"
#include "problems/levels.hpp"

namespace lcl {
namespace {

/// Replays a termination schedule: node v terminates exactly in round
/// T_v (T_v == 0 during init), publishing nothing. Records the rounds
/// the legacy engine actually assigned, so the comparison reads the
/// engine's bookkeeping rather than echoing the input.
class ReplayProgram final : public bench::legacy::Program {
 public:
  explicit ReplayProgram(const std::vector<std::int64_t>& t_v)
      : t_v_(t_v), observed_(t_v.size(), -1) {}

  void on_init(bench::legacy::NodeCtx& ctx) override {
    if (t_v_[static_cast<std::size_t>(ctx.node())] == 0) {
      ctx.terminate(0);
      observed_[static_cast<std::size_t>(ctx.node())] = ctx.round();
    }
  }
  void on_round(bench::legacy::NodeCtx& ctx) override {
    if (ctx.round() >= t_v_[static_cast<std::size_t>(ctx.node())]) {
      ctx.terminate(0);
      observed_[static_cast<std::size_t>(ctx.node())] = ctx.round();
    }
  }

  [[nodiscard]] const std::vector<std::int64_t>& observed() const {
    return observed_;
  }

 private:
  const std::vector<std::int64_t>& t_v_;
  std::vector<std::int64_t> observed_;
};

struct Case {
  std::string family;
  graph::NodeId n;
  std::uint64_t seed;
};

class DifferentialSolvers
    : public ::testing::TestWithParam<std::tuple<std::string, Case>> {};

TEST_P(DifferentialSolvers, LegacyReplayMatchesBitIdentically) {
  const auto& [solver_name, c] = GetParam();
  const algo::SolverSpec& spec = algo::solver(solver_name);

  graph::Tree tree =
      graph::make_family_instance(c.family, c.n, c.seed, /*delta=*/3);
  algo::prepare_instance(tree, spec.needs, c.seed);

  algo::SolverConfig config;
  config.seed = c.seed;
  config.validate(spec);

  // Modern run (the same sequence run_registered performs, kept inline
  // so the program stays alive for the certify calls below).
  const std::unique_ptr<local::Program> program =
      spec.factory(tree, config);
  local::Engine engine(tree);
  const local::RunStats modern = engine.run(*program);
  ASSERT_FALSE(modern.truncated);
  const problems::CheckResult modern_verdict =
      spec.certify(tree, *program, modern, config);

  // Legacy replay of the identical schedule.
  ReplayProgram replay(modern.termination_round);
  bench::legacy::Engine legacy(tree);
  const bench::legacy::RunStats legacy_stats =
      legacy.run(replay, modern.worst_case + 2);

  // Bit-identical accounting: same executed rounds, same sum of T_v,
  // and therefore the same node-average down to the last ulp.
  EXPECT_EQ(legacy_stats.rounds, modern.rounds);
  EXPECT_EQ(legacy_stats.total_rounds, modern.total_rounds);
  const double legacy_na =
      static_cast<double>(legacy_stats.total_rounds) /
      static_cast<double>(modern.n);
  EXPECT_EQ(legacy_na, modern.node_averaged);

  // The legacy engine must have terminated every node in exactly the
  // round the modern engine recorded.
  EXPECT_EQ(replay.observed(), modern.termination_round);

  // Certify identically: the solver's own checker graded on the legacy
  // engine's termination rounds (with the modern outputs, which the
  // legacy baseline does not store) must return the same verdict.
  local::RunStats synthetic = modern;
  synthetic.termination_round = replay.observed();
  const problems::CheckResult legacy_verdict =
      spec.certify(tree, *program, synthetic, config);
  EXPECT_EQ(legacy_verdict.ok, modern_verdict.ok);
  EXPECT_EQ(legacy_verdict.reason, modern_verdict.reason);
  EXPECT_TRUE(modern_verdict.ok) << modern_verdict.reason;
}

std::vector<std::string> differential_solvers() {
  // Every registered solver; both families are plain trees, so the
  // compatibility predicate only needs to hold for the *family*
  // registry entries (delta is pinned to 3 by the instance builder).
  return algo::solver_names();
}

INSTANTIATE_TEST_SUITE_P(
    RegistryOnRandomTrees, DifferentialSolvers,
    ::testing::Combine(
        ::testing::ValuesIn(differential_solvers()),
        ::testing::Values(Case{"prufer", 420, 17},
                          Case{"galton_watson", 420, 23})),
    [](const ::testing::TestParamInfo<DifferentialSolvers::ParamType>&
           info) {
      return std::get<0>(info.param) + "_" +
             std::get<1>(info.param).family + "_" +
             std::to_string(std::get<1>(info.param).seed);
    });

// Seeded three-way fuzz: every registered solver on freshly sampled
// random families, run under BOTH kernel paths. The scalar and SIMD
// engines must agree *bit-identically* (termination rounds, outputs,
// node-average down to the ulp), and the shared schedule must replay
// bit-identically on the frozen legacy engine — so a kernel bug can't
// hide behind instances the parameterized suite happens not to cover.
TEST(DifferentialFuzz, ScalarSimdLegacyAgreeOnRandomFamilies) {
  const std::vector<std::string> families = {"prufer", "galton_watson",
                                             "caterpillar"};
  std::uint64_t seed = 0x51D0FACADE;
  for (int iter = 0; iter < 6; ++iter) {
    const std::string& family = families[static_cast<std::size_t>(iter) %
                                         families.size()];
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto n = static_cast<graph::NodeId>(64 + (seed >> 32) % 300);

    for (const std::string& solver_name : algo::solver_names()) {
      SCOPED_TRACE("solver=" + solver_name + " family=" + family +
                   " n=" + std::to_string(n) +
                   " seed=" + std::to_string(seed));
      const algo::SolverSpec& spec = algo::solver(solver_name);
      graph::Tree tree =
          graph::make_family_instance(family, n, seed, /*delta=*/3);
      algo::prepare_instance(tree, spec.needs, seed);
      algo::SolverConfig config;
      config.seed = seed;
      config.validate(spec);

      // One frozen instance, two kernel paths. Each path gets its own
      // program instance so seeded per-node state is regenerated
      // identically rather than shared.
      const std::unique_ptr<local::Program> scalar_program =
          spec.factory(tree, config);
      local::Engine scalar_engine(tree, local::KernelMode::kScalar);
      const local::RunStats scalar_stats =
          scalar_engine.run(*scalar_program);

      const std::unique_ptr<local::Program> simd_program =
          spec.factory(tree, config);
      local::Engine simd_engine(tree, local::KernelMode::kSimd);
      const local::RunStats simd_stats = simd_engine.run(*simd_program);

      ASSERT_FALSE(scalar_stats.truncated);
      EXPECT_EQ(scalar_stats.rounds, simd_stats.rounds);
      EXPECT_EQ(scalar_stats.total_rounds, simd_stats.total_rounds);
      EXPECT_EQ(scalar_stats.node_averaged, simd_stats.node_averaged);
      EXPECT_EQ(scalar_stats.termination_round,
                simd_stats.termination_round);
      EXPECT_EQ(scalar_stats.primaries(), simd_stats.primaries());
      EXPECT_EQ(scalar_stats.secondaries(), simd_stats.secondaries());

      // And the schedule both paths produced replays bit-identically on
      // the frozen legacy oracle.
      ReplayProgram replay(scalar_stats.termination_round);
      bench::legacy::Engine legacy(tree);
      const bench::legacy::RunStats legacy_stats =
          legacy.run(replay, scalar_stats.worst_case + 2);
      EXPECT_EQ(legacy_stats.rounds, scalar_stats.rounds);
      EXPECT_EQ(legacy_stats.total_rounds, scalar_stats.total_rounds);
      EXPECT_EQ(replay.observed(), scalar_stats.termination_round);
    }
  }
}

// Seeded three-way dispatch fuzz: every registered solver on freshly
// sampled random families, run under BOTH Program↔Engine contracts.
// The per-node virtual-hook path and the span-level batch-kernel path
// must agree *bit-identically* (rounds, termination schedule, outputs,
// node-average down to the ulp) and certify identically through the
// solver's own checker, and the shared schedule must replay
// bit-identically on the frozen legacy engine. This is the contract
// that lets `--dispatch auto` resolve to batch: a batch kernel that
// drifts from its pinned per-node reference twin fails here on the
// exact (solver, family, seed) triple.
TEST(DifferentialFuzz, PerNodeBatchLegacyAgreeOnRandomFamilies) {
  const std::vector<std::string> families = {"prufer", "galton_watson",
                                             "caterpillar", "spider"};
  std::uint64_t seed = 0xD15BA7C4ED;
  for (int iter = 0; iter < 6; ++iter) {
    const std::string& family = families[static_cast<std::size_t>(iter) %
                                         families.size()];
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto n = static_cast<graph::NodeId>(64 + (seed >> 32) % 300);

    for (const std::string& solver_name : algo::solver_names()) {
      SCOPED_TRACE("solver=" + solver_name + " family=" + family +
                   " n=" + std::to_string(n) +
                   " seed=" + std::to_string(seed));
      const algo::SolverSpec& spec = algo::solver(solver_name);
      graph::Tree tree =
          graph::make_family_instance(family, n, seed, /*delta=*/3);
      algo::prepare_instance(tree, spec.needs, seed);
      algo::SolverConfig config;
      config.seed = seed;
      config.validate(spec);

      // One frozen instance, two dispatch contracts. Each contract gets
      // its own program instance so seeded per-node state is regenerated
      // identically rather than shared.
      const std::unique_ptr<local::Program> pernode_program =
          spec.factory(tree, config);
      local::Engine pernode_engine(tree, local::KernelMode::kAuto,
                                   local::DispatchMode::kPerNode);
      const local::RunStats pernode_stats =
          pernode_engine.run(*pernode_program);

      const std::unique_ptr<local::Program> batch_program =
          spec.factory(tree, config);
      local::Engine batch_engine(tree, local::KernelMode::kAuto,
                                 local::DispatchMode::kBatch);
      const local::RunStats batch_stats =
          batch_engine.run(*batch_program);

      ASSERT_FALSE(pernode_stats.truncated);
      EXPECT_EQ(pernode_stats.rounds, batch_stats.rounds);
      EXPECT_EQ(pernode_stats.total_rounds, batch_stats.total_rounds);
      EXPECT_EQ(pernode_stats.node_averaged, batch_stats.node_averaged);
      EXPECT_EQ(pernode_stats.termination_round,
                batch_stats.termination_round);
      EXPECT_EQ(pernode_stats.primaries(), batch_stats.primaries());
      EXPECT_EQ(pernode_stats.secondaries(), batch_stats.secondaries());

      // Certify identically through the solver's own checker binding
      // (each verdict graded against the program instance that produced
      // the run).
      const problems::CheckResult pernode_verdict =
          spec.certify(tree, *pernode_program, pernode_stats, config);
      const problems::CheckResult batch_verdict =
          spec.certify(tree, *batch_program, batch_stats, config);
      EXPECT_EQ(pernode_verdict.ok, batch_verdict.ok);
      EXPECT_EQ(pernode_verdict.reason, batch_verdict.reason);
      EXPECT_TRUE(pernode_verdict.ok) << pernode_verdict.reason;

      // And the schedule both contracts produced replays bit-identically
      // on the frozen legacy oracle.
      ReplayProgram replay(pernode_stats.termination_round);
      bench::legacy::Engine legacy(tree);
      const bench::legacy::RunStats legacy_stats =
          legacy.run(replay, pernode_stats.worst_case + 2);
      EXPECT_EQ(legacy_stats.rounds, pernode_stats.rounds);
      EXPECT_EQ(legacy_stats.total_rounds, pernode_stats.total_rounds);
      EXPECT_EQ(replay.observed(), pernode_stats.termination_round);
    }
  }
}

// Dedicated heavy generic_hier case for its batch-kernel port: the
// registry fuzz above only drives solvers at their default configs, so
// the k-hierarchical program's interesting machinery — the Exempt rules
// between phases, multi-gamma wave schedules, the level-k Cole-Vishkin
// reduction with a virtual-log* pad — never fires there. Here both
// variants run at k = 2 and k = 3 with explicit gamma profiles on
// structured lower-bound instances and random trees; per-node and batch
// dispatch must agree bit-identically, the coloring must pass the
// paper's hierarchical checker, and the shared schedule must replay
// bit-identically on the frozen legacy engine.
TEST(DifferentialFuzz, GenericHierHeavyPerNodeBatchLegacyAgree) {
  struct HierCase {
    std::string label;
    graph::Tree tree;
    problems::Variant variant;
    int k;
    std::vector<std::int64_t> gammas;
    std::int64_t pad;
  };
  std::vector<HierCase> cases;
  cases.push_back({"lower_bound_25_k2",
                   graph::make_hierarchical_lower_bound({6, 40}).tree,
                   problems::Variant::kTwoHalf, 2, {5}, 0});
  cases.push_back({"lower_bound_35_k3",
                   graph::make_hierarchical_lower_bound({5, 6, 14}).tree,
                   problems::Variant::kThreeHalf, 3, {4, 4}, 60});
  cases.push_back({"random_25_k3", graph::make_random_tree(520, 4, 77),
                   problems::Variant::kTwoHalf, 3, {4, 8}, 0});
  cases.push_back({"random_35_k2", graph::make_random_tree(480, 4, 91),
                   problems::Variant::kThreeHalf, 2, {6}, 40});

  std::uint64_t id_seed = 1337;
  for (HierCase& c : cases) {
    SCOPED_TRACE("case=" + c.label + " k=" + std::to_string(c.k));
    graph::assign_ids(c.tree, graph::IdScheme::kShuffled, id_seed++);
    const std::vector<int> levels = problems::compute_levels(c.tree, c.k);

    algo::GenericOptions options;
    options.variant = c.variant;
    options.k = c.k;
    options.gammas = c.gammas;
    options.symmetry_pad = c.pad;

    algo::GenericHierProgram pernode_program(c.tree, options, levels);
    local::Engine pernode_engine(c.tree, local::KernelMode::kAuto,
                                 local::DispatchMode::kPerNode);
    const local::RunStats pernode_stats =
        pernode_engine.run(pernode_program);

    algo::GenericHierProgram batch_program(c.tree, options, levels);
    local::Engine batch_engine(c.tree, local::KernelMode::kAuto,
                               local::DispatchMode::kBatch);
    const local::RunStats batch_stats = batch_engine.run(batch_program);

    ASSERT_FALSE(pernode_stats.truncated);
    EXPECT_EQ(pernode_stats.rounds, batch_stats.rounds);
    EXPECT_EQ(pernode_stats.total_rounds, batch_stats.total_rounds);
    EXPECT_EQ(pernode_stats.node_averaged, batch_stats.node_averaged);
    EXPECT_EQ(pernode_stats.termination_round,
              batch_stats.termination_round);
    EXPECT_EQ(pernode_stats.primaries(), batch_stats.primaries());
    EXPECT_EQ(pernode_stats.secondaries(), batch_stats.secondaries());

    // Both runs produced the same output; grade it once through the
    // paper's own checker.
    const problems::CheckResult verdict =
        problems::check_hierarchical_coloring(c.tree, c.k, c.variant,
                                              pernode_stats.primaries());
    EXPECT_TRUE(verdict.ok) << verdict.reason;

    // And the shared schedule replays bit-identically on the frozen
    // legacy oracle.
    ReplayProgram replay(pernode_stats.termination_round);
    bench::legacy::Engine legacy(c.tree);
    const bench::legacy::RunStats legacy_stats =
        legacy.run(replay, pernode_stats.worst_case + 2);
    EXPECT_EQ(legacy_stats.rounds, pernode_stats.rounds);
    EXPECT_EQ(legacy_stats.total_rounds, pernode_stats.total_rounds);
    EXPECT_EQ(replay.observed(), pernode_stats.termination_round);
  }
}

}  // namespace
}  // namespace lcl
