// Engine semantics: synchronous register visibility, termination rounds,
// node-averaged accounting, and the one-round delay of termination
// visibility (the property every wave protocol relies on).
#include <gtest/gtest.h>

#include "graph/builders.hpp"
#include "local/engine.hpp"
#include "test_util.hpp"

namespace lcl {
namespace {

using graph::NodeId;
using graph::Tree;
using local::Engine;
using local::NodeCtx;
using local::Program;
using local::Register;
using local::RunStats;

/// Everyone terminates in on_init: T_v == 0 for all.
class InstantProgram final : public Program {
 public:
  void on_init(NodeCtx& ctx) override { ctx.terminate(7); }
  void on_round(NodeCtx& ctx) override { FAIL() << ctx.node(); }
};

TEST(Engine, InstantTermination) {
  Tree t = graph::make_path(10);
  Engine engine(t);
  InstantProgram p;
  const RunStats stats = engine.run(p);
  EXPECT_EQ(stats.worst_case, 0);
  EXPECT_DOUBLE_EQ(stats.node_averaged, 0.0);
  for (const auto& o : stats.output) EXPECT_EQ(o.primary, 7);
}

/// Node v terminates at round v+1: checks exact T_v accounting.
class StaggerProgram final : public Program {
 public:
  void on_init(NodeCtx&) override {}
  void on_round(NodeCtx& ctx) override {
    if (ctx.round() == ctx.node() + 1) ctx.terminate(0);
  }
};

TEST(Engine, TerminationRoundsAndAverage) {
  Tree t = graph::make_path(4);
  Engine engine(t);
  StaggerProgram p;
  const RunStats stats = engine.run(p);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(stats.termination_round[static_cast<std::size_t>(v)], v + 1);
  }
  EXPECT_EQ(stats.worst_case, 4);
  EXPECT_DOUBLE_EQ(stats.node_averaged, (1 + 2 + 3 + 4) / 4.0);
}

/// A wave: node 0 publishes at round 1; node i can only see it at round
/// i+1 if each node forwards one hop per round. Verifies registers are
/// double-buffered (no same-round information leaks).
class ForwardProgram final : public Program {
 public:
  void on_init(NodeCtx&) override {}
  void on_round(NodeCtx& ctx) override {
    if (ctx.node() == 0) {
      ctx.publish({1});
      ctx.terminate(0);
      return;
    }
    const Register& left = ctx.peek(0);  // port 0 = smaller neighbor
    if (!left.empty() && left[0] == 1) {
      ctx.publish({1});
      ctx.terminate(static_cast<int>(ctx.round()));
    }
  }
};

TEST(Engine, OneHopPerRound) {
  Tree t = graph::make_path(6);
  Engine engine(t);
  ForwardProgram p;
  const RunStats stats = engine.run(p);
  for (NodeId v = 1; v < 6; ++v) {
    // Node v learns the token exactly at round v+1.
    EXPECT_EQ(stats.termination_round[static_cast<std::size_t>(v)], v + 1)
        << "node " << v;
  }
}

/// Termination visibility is delayed by one round.
class VisibilityProgram final : public Program {
 public:
  explicit VisibilityProgram(std::vector<std::int64_t>& seen)
      : seen_(seen) {}
  void on_init(NodeCtx&) override {}
  void on_round(NodeCtx& ctx) override {
    if (ctx.node() == 0) {
      ctx.terminate(42);
      return;
    }
    if (ctx.node() == 1 && ctx.neighbor_terminated(0)) {
      seen_.push_back(ctx.round());
      EXPECT_EQ(ctx.neighbor_output(0).primary, 42);
      ctx.terminate(1);
    }
  }

 private:
  std::vector<std::int64_t>& seen_;
};

TEST(Engine, TerminationVisibleNextRound) {
  Tree t = graph::make_path(2);
  Engine engine(t);
  std::vector<std::int64_t> seen;
  VisibilityProgram p(seen);
  const RunStats stats = engine.run(p);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 2);  // terminated at round 1, visible at round 2
  EXPECT_EQ(stats.termination_round[1], 2);
}

/// The engine throws when a program stalls.
class StallProgram final : public Program {
 public:
  void on_init(NodeCtx&) override {}
  void on_round(NodeCtx&) override {}
};

TEST(Engine, RoundLimit) {
  Tree t = graph::make_path(3);
  Engine engine(t);
  StallProgram p;
  EXPECT_THROW(engine.run(p, 100), std::runtime_error);
}

/// Double termination is a programming error.
class DoubleTerminate final : public Program {
 public:
  void on_init(NodeCtx& ctx) override {
    ctx.terminate(0);
    ctx.terminate(1);
  }
  void on_round(NodeCtx&) override {}
};

TEST(Engine, DoubleTerminationThrows) {
  Tree t = graph::make_path(1);
  Engine engine(t);
  DoubleTerminate p;
  EXPECT_THROW(engine.run(p), std::logic_error);
}

}  // namespace
}  // namespace lcl
