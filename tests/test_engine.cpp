// Engine semantics: synchronous register visibility, termination rounds,
// node-averaged accounting, and the one-round delay of termination
// visibility (the property every wave protocol relies on).
#include <gtest/gtest.h>

#include "graph/builders.hpp"
#include "local/engine.hpp"
#include "test_util.hpp"

namespace lcl {
namespace {

using graph::NodeId;
using graph::Tree;
using local::Engine;
using local::NodeCtx;
using local::Program;
using local::Register;
using local::RunStats;

/// Everyone terminates in on_init: T_v == 0 for all.
class InstantProgram final : public Program {
 public:
  void on_init(NodeCtx& ctx) override { ctx.terminate(7); }
  void on_round(NodeCtx& ctx) override { FAIL() << ctx.node(); }
};

TEST(Engine, InstantTermination) {
  Tree t = graph::make_path(10);
  Engine engine(t);
  InstantProgram p;
  const RunStats stats = engine.run(p);
  EXPECT_EQ(stats.worst_case, 0);
  EXPECT_DOUBLE_EQ(stats.node_averaged, 0.0);
  for (const auto& o : stats.output) EXPECT_EQ(o.primary, 7);
}

/// Node v terminates at round v+1: checks exact T_v accounting.
class StaggerProgram final : public Program {
 public:
  void on_init(NodeCtx&) override {}
  void on_round(NodeCtx& ctx) override {
    if (ctx.round() == ctx.node() + 1) ctx.terminate(0);
  }
};

TEST(Engine, TerminationRoundsAndAverage) {
  Tree t = graph::make_path(4);
  Engine engine(t);
  StaggerProgram p;
  const RunStats stats = engine.run(p);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(stats.termination_round[static_cast<std::size_t>(v)], v + 1);
  }
  EXPECT_EQ(stats.worst_case, 4);
  EXPECT_DOUBLE_EQ(stats.node_averaged, (1 + 2 + 3 + 4) / 4.0);
}

/// A wave: node 0 publishes at round 1; node i can only see it at round
/// i+1 if each node forwards one hop per round. Verifies registers are
/// double-buffered (no same-round information leaks).
class ForwardProgram final : public Program {
 public:
  void on_init(NodeCtx&) override {}
  void on_round(NodeCtx& ctx) override {
    if (ctx.node() == 0) {
      ctx.publish({1});
      ctx.terminate(0);
      return;
    }
    const local::RegView left = ctx.peek(0);  // port 0 = smaller neighbor
    if (!left.empty() && left[0] == 1) {
      ctx.publish({1});
      ctx.terminate(static_cast<int>(ctx.round()));
    }
  }
};

TEST(Engine, OneHopPerRound) {
  Tree t = graph::make_path(6);
  Engine engine(t);
  ForwardProgram p;
  const RunStats stats = engine.run(p);
  for (NodeId v = 1; v < 6; ++v) {
    // Node v learns the token exactly at round v+1.
    EXPECT_EQ(stats.termination_round[static_cast<std::size_t>(v)], v + 1)
        << "node " << v;
  }
}

/// Termination visibility is delayed by one round.
class VisibilityProgram final : public Program {
 public:
  explicit VisibilityProgram(std::vector<std::int64_t>& seen)
      : seen_(seen) {}
  void on_init(NodeCtx&) override {}
  void on_round(NodeCtx& ctx) override {
    if (ctx.node() == 0) {
      ctx.terminate(42);
      return;
    }
    if (ctx.node() == 1 && ctx.neighbor_terminated(0)) {
      seen_.push_back(ctx.round());
      EXPECT_EQ(ctx.neighbor_output(0).primary, 42);
      ctx.terminate(1);
    }
  }

 private:
  std::vector<std::int64_t>& seen_;
};

TEST(Engine, TerminationVisibleNextRound) {
  Tree t = graph::make_path(2);
  Engine engine(t);
  std::vector<std::int64_t> seen;
  VisibilityProgram p(seen);
  const RunStats stats = engine.run(p);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 2);  // terminated at round 1, visible at round 2
  EXPECT_EQ(stats.termination_round[1], 2);
}

/// A terminated node's frozen register must stay readable for arbitrarily
/// many rounds after termination. This pins the arena semantics: the
/// end-of-round buffer swap must never resurface a stale slice for a node
/// that stopped computing (the classic double-buffer bug).
class FrozenReaderProgram final : public Program {
 public:
  void on_init(NodeCtx& ctx) override {
    if (ctx.node() == 0) {
      ctx.publish({99});
      ctx.terminate(0);
    }
  }
  void on_round(NodeCtx& ctx) override {
    // Node 1 re-reads node 0's frozen register every round and only
    // terminates late, so the read crosses many buffer swaps.
    const local::RegView reg = ctx.peek(0);
    ASSERT_EQ(reg.size(), 1u) << "round " << ctx.round();
    EXPECT_EQ(reg[0], 99) << "round " << ctx.round();
    if (ctx.round() == 7) ctx.terminate(1);
  }
};

TEST(Engine, FrozenRegisterSurvivesManySwaps) {
  Tree t = graph::make_path(2);
  Engine engine(t);
  FrozenReaderProgram p;
  const RunStats stats = engine.run(p);
  EXPECT_EQ(stats.termination_round[0], 0);
  EXPECT_EQ(stats.termination_round[1], 7);
}

/// A register wider than the initial arena capacity forces a mid-run
/// arena growth; values (including frozen ones) must survive the rebuild.
class WideRegisterProgram final : public Program {
 public:
  void on_init(NodeCtx& ctx) override {
    if (ctx.node() == 0) {
      ctx.publish({5});  // narrow, frozen before the growth below
      ctx.terminate(0);
    }
  }
  void on_round(NodeCtx& ctx) override {
    if (ctx.round() == 1) {
      Register wide(100);
      for (std::size_t i = 0; i < wide.size(); ++i) {
        wide[i] = static_cast<std::int64_t>(i) + ctx.node();
      }
      ctx.publish(wide);
      return;
    }
    // After the growth: own register kept all 100 words, and the frozen
    // narrow register of node 0 is intact.
    const local::RegView mine = ctx.own();
    ASSERT_EQ(mine.size(), 100u);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      EXPECT_EQ(mine[i], static_cast<std::int64_t>(i) + ctx.node());
    }
    if (ctx.node() == 1) {
      const local::RegView frozen = ctx.peek(0);
      ASSERT_EQ(frozen.size(), 1u);
      EXPECT_EQ(frozen[0], 5);
    }
    if (ctx.round() == 4) ctx.terminate(2);
  }
};

TEST(Engine, ArenaGrowthPreservesRegisters) {
  Tree t = graph::make_path(3);
  Engine engine(t);
  WideRegisterProgram p;
  const RunStats stats = engine.run(p);
  for (NodeId v = 1; v < 3; ++v) {
    EXPECT_EQ(stats.output[static_cast<std::size_t>(v)].primary, 2);
  }
}

/// Without a publish, a node's register persists unchanged round to round.
class SilentProgram final : public Program {
 public:
  void on_init(NodeCtx& ctx) override {
    ctx.publish({ctx.node() + 10});
  }
  void on_round(NodeCtx& ctx) override {
    const local::RegView mine = ctx.own();
    ASSERT_EQ(mine.size(), 1u);
    EXPECT_EQ(mine[0], ctx.node() + 10);
    const local::RegView theirs = ctx.peek(0);
    ASSERT_EQ(theirs.size(), 1u);
    if (ctx.round() == 5) ctx.terminate(0);
  }
};

TEST(Engine, UnpublishedRegisterPersists) {
  Tree t = graph::make_path(4);
  Engine engine(t);
  SilentProgram p;
  const RunStats stats = engine.run(p);
  EXPECT_EQ(stats.rounds, 5);
}

/// A publish in the same round as (and after) termination still takes
/// effect and is the value frozen for later readers.
class PublishAfterTerminate final : public Program {
 public:
  void on_init(NodeCtx&) override {}
  void on_round(NodeCtx& ctx) override {
    if (ctx.node() == 0) {
      ctx.terminate(0);
      ctx.publish({123});
      return;
    }
    const local::RegView reg = ctx.peek(0);
    if (!reg.empty()) {
      EXPECT_EQ(reg[0], 123);
      EXPECT_EQ(ctx.round(), 2);  // published in round 1, visible round 2
      ctx.terminate(1);
    }
  }
};

TEST(Engine, PublishAfterTerminateIsFrozen) {
  Tree t = graph::make_path(2);
  Engine engine(t);
  PublishAfterTerminate p;
  const RunStats stats = engine.run(p);
  EXPECT_EQ(stats.termination_round[1], 2);
}

/// Publishing an empty register is legal and clears the visible value.
class EmptyPublishProgram final : public Program {
 public:
  void on_init(NodeCtx& ctx) override { ctx.publish({ctx.node() + 1}); }
  void on_round(NodeCtx& ctx) override {
    if (ctx.round() == 1) {
      const local::RegView theirs = ctx.peek(0);
      ASSERT_EQ(theirs.size(), 1u);
      ctx.publish({});
      return;
    }
    EXPECT_TRUE(ctx.peek(0).empty());
    EXPECT_TRUE(ctx.own().empty());
    ctx.terminate(0);
  }
};

TEST(Engine, EmptyPublishClearsRegister) {
  Tree t = graph::make_path(2);
  Engine engine(t);
  EmptyPublishProgram p;
  const RunStats stats = engine.run(p);
  EXPECT_EQ(stats.rounds, 2);
}

/// A stalling program no longer aborts the run: hitting `max_rounds`
/// yields structured truncation with every survivor's T_v censored at
/// the bound.
class StallProgram final : public Program {
 public:
  void on_init(NodeCtx&) override {}
  void on_round(NodeCtx&) override {}
};

TEST(Engine, RoundLimitTruncates) {
  Tree t = graph::make_path(3);
  Engine engine(t);
  StallProgram p;
  const RunStats stats = engine.run(p, 100);
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.rounds, 100);
  EXPECT_EQ(stats.unterminated, 3);
  EXPECT_EQ(stats.worst_case, 100);
  EXPECT_DOUBLE_EQ(stats.node_averaged, 100.0);
  for (const std::int64_t t_v : stats.termination_round) {
    EXPECT_EQ(t_v, 100);
  }
  for (const auto& o : stats.output) EXPECT_EQ(o.primary, -1);
}

/// Truncation keeps everything measured before the bound: terminated
/// nodes keep their exact T_v and outputs, only survivors are censored.
TEST(Engine, TruncationKeepsPartialStats) {
  Tree t = graph::make_path(4);
  Engine engine(t);
  StaggerProgram p;  // node v terminates at round v+1
  const RunStats stats = engine.run(p, 2);
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.rounds, 2);
  EXPECT_EQ(stats.unterminated, 2);
  const std::vector<std::int64_t> expected = {1, 2, 2, 2};
  EXPECT_EQ(stats.termination_round, expected);
  EXPECT_EQ(stats.output[0].primary, 0);
  EXPECT_EQ(stats.output[3].primary, -1);
  EXPECT_DOUBLE_EQ(stats.node_averaged, (1 + 2 + 2 + 2) / 4.0);
}

/// The optional RunProfile records the alive-count trajectory and the
/// exact T_v histogram, from data the engine already touches.
TEST(Engine, ProfileTrajectoryAndHistogram) {
  Tree t = graph::make_path(4);
  Engine engine(t);
  StaggerProgram p;
  local::RunProfile profile;
  const RunStats stats = engine.run(
      p, std::numeric_limits<int>::max(), &profile);
  EXPECT_EQ(stats.rounds, 4);
  const std::vector<std::int64_t> alive = {4, 3, 2, 1};
  EXPECT_EQ(profile.alive_per_round, alive);
  const std::vector<std::int64_t> hist = {0, 1, 1, 1, 1};
  EXPECT_EQ(profile.term_count, hist);
}

/// Under truncation the profile histogram matches termination_round,
/// censored survivors included.
TEST(Engine, ProfileHistogramCountsCensoredSurvivors) {
  Tree t = graph::make_path(4);
  Engine engine(t);
  StaggerProgram p;
  local::RunProfile profile;
  const RunStats stats = engine.run(p, 2, &profile);
  EXPECT_TRUE(stats.truncated);
  const std::vector<std::int64_t> alive = {4, 3};
  EXPECT_EQ(profile.alive_per_round, alive);
  const std::vector<std::int64_t> hist = {0, 1, 3};  // T = {1, 2, 2, 2}
  EXPECT_EQ(profile.term_count, hist);
}

/// Double termination is a programming error.
class DoubleTerminate final : public Program {
 public:
  void on_init(NodeCtx& ctx) override {
    ctx.terminate(0);
    ctx.terminate(1);
  }
  void on_round(NodeCtx&) override {}
};

TEST(Engine, DoubleTerminationThrows) {
  Tree t = graph::make_path(1);
  Engine engine(t);
  DoubleTerminate p;
  EXPECT_THROW(engine.run(p), std::logic_error);
}

/// A register-heavy stagger used by the workspace/kernel tests: node v
/// republishes a growing register every round and terminates at round
/// (v mod 13) + 1, so runs exercise publish, flip, compaction, growth,
/// and uneven T_v in one program.
class ChurnProgram final : public Program {
 public:
  void on_init(NodeCtx& ctx) override { ctx.publish({ctx.node()}); }
  void on_round(NodeCtx& ctx) override {
    Register r(ctx.own().begin(), ctx.own().end());
    r.push_back(ctx.round());
    ctx.publish(r);
    if (ctx.round() == (ctx.node() % 13) + 1) ctx.terminate(1);
  }
};

void expect_identical(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.worst_case, b.worst_case);
  EXPECT_EQ(a.total_rounds, b.total_rounds);
  EXPECT_EQ(a.node_averaged, b.node_averaged);  // bit-identical
  EXPECT_EQ(a.termination_round, b.termination_round);
  EXPECT_EQ(a.primaries(), b.primaries());
  EXPECT_EQ(a.secondaries(), b.secondaries());
}

TEST(EngineWorkspace, WarmRunsAreAllocationFreeAndIdentical) {
  Tree t = graph::make_random_tree(600, 4, 99);
  Engine engine(t);
  Engine::Workspace ws;
  ChurnProgram p;
  const RunStats first = engine.run(p, ws);
  const std::int64_t after_first = ws.alloc_events();
  EXPECT_GT(after_first, 0);

  // Reps after the first: identical results, zero plane allocations —
  // including in run_into, which also recycles the stats vectors.
  RunStats warm;
  for (int rep = 0; rep < 5; ++rep) {
    engine.run_into(p, ws, warm);
    expect_identical(first, warm);
  }
  EXPECT_EQ(ws.alloc_events(), after_first);
}

TEST(EngineWorkspace, ReusedAcrossDifferentSizesAndGrowth) {
  // A workspace hopping big -> small -> big must not leak stale lane or
  // padding state between runs (the small run leaves garbage beyond its
  // n; the kernels read whole 64-byte blocks).
  Engine::Workspace ws;
  Tree big = graph::make_path(500);
  Tree small = graph::make_path(37);
  ChurnProgram p;
  Engine big_engine(big);
  Engine small_engine(small);
  const RunStats ref_big = big_engine.run(p);
  const RunStats ref_small = small_engine.run(p);
  expect_identical(ref_big, big_engine.run(p, ws));
  expect_identical(ref_small, small_engine.run(p, ws));
  expect_identical(ref_big, big_engine.run(p, ws));
  // Capacity growth inside a shared workspace persists across runs
  // (ChurnProgram's widest register exceeds the initial 8 words).
  expect_identical(ref_small, small_engine.run(p, ws));
}

TEST(EngineWorkspace, ScalarAndSimdRunsAreBitIdentical) {
  Tree t = graph::make_random_tree(700, 4, 123);
  ChurnProgram p;
  Engine scalar_engine(t, local::KernelMode::kScalar);
  Engine simd_engine(t, local::KernelMode::kSimd);
  const RunStats a = scalar_engine.run(p);
  const RunStats b = simd_engine.run(p);
  expect_identical(a, b);

  // Truncated runs too: censoring + reduction agree across kernels.
  const RunStats ta = scalar_engine.run(p, 3);
  const RunStats tb = simd_engine.run(p, 3);
  EXPECT_TRUE(ta.truncated);
  expect_identical(ta, tb);
}

/// A program that (illegally) starts a nested engine run on the same
/// workspace mid-round.
class NestedRun final : public Program {
 public:
  explicit NestedRun(Engine::Workspace& ws) : ws_(ws) {}
  void on_init(NodeCtx&) override {}
  void on_round(NodeCtx& ctx) override {
    Tree inner = graph::make_path(3);
    Engine engine(inner);
    InstantProgram p;
    (void)engine.run(p, ws_);  // throws: ws_ is serving the outer run
    ctx.terminate(0);
  }

 private:
  Engine::Workspace& ws_;
};

TEST(EngineWorkspace, NestedUseOfOneWorkspaceThrows) {
  Tree t = graph::make_path(4);
  Engine engine(t);
  Engine::Workspace ws;
  NestedRun p(ws);
  EXPECT_THROW(engine.run(p, ws), std::logic_error);
  // The guard releases on unwind: the workspace is usable again.
  InstantProgram ok;
  EXPECT_EQ(engine.run(ok, ws).worst_case, 0);
}

TEST(EngineWorkspace, BatchDispatchWarmRunsAreAllocationFree) {
  // The batched init path fills the reserved alive list in place
  // (iota + stable compaction) instead of filtering through push_back;
  // warm reps must stay allocation-free exactly like per-node dispatch,
  // and produce bit-identical results.
  Tree t = graph::make_random_tree(600, 4, 99);
  Engine pernode_engine(t, local::KernelMode::kAuto,
                        local::DispatchMode::kPerNode);
  Engine batch_engine(t, local::KernelMode::kAuto,
                      local::DispatchMode::kBatch);
  ChurnProgram p;
  const RunStats reference = pernode_engine.run(p);

  Engine::Workspace ws;
  const RunStats first = batch_engine.run(p, ws);
  expect_identical(reference, first);
  const std::int64_t after_first = ws.alloc_events();
  EXPECT_GT(after_first, 0);

  RunStats warm;
  for (int rep = 0; rep < 5; ++rep) {
    batch_engine.run_into(p, ws, warm);
    expect_identical(first, warm);
  }
  EXPECT_EQ(ws.alloc_events(), after_first);
}

TEST(EngineWorkspace, NestedUseUnderBatchDispatchThrows) {
  // The in_use guard must fire on the batched round loop too: the
  // nested run here is attempted from inside on_round_batch (the
  // default hook drives on_round), against the same workspace.
  Tree t = graph::make_path(4);
  Engine engine(t, local::KernelMode::kAuto, local::DispatchMode::kBatch);
  Engine::Workspace ws;
  NestedRun p(ws);
  EXPECT_THROW(engine.run(p, ws), std::logic_error);
  // The guard releases on unwind: the workspace is usable again.
  InstantProgram ok;
  EXPECT_EQ(engine.run(ok, ws).worst_case, 0);
}

TEST(EngineWorkspace, TlsWorkspaceIsSticky) {
  Engine::Workspace& ws = local::tls_workspace();
  EXPECT_EQ(&ws, &local::tls_workspace());
  Tree t = graph::make_path(32);
  Engine engine(t);
  ChurnProgram p;
  const RunStats direct = engine.run(p);
  expect_identical(direct, engine.run(p, ws));
}

}  // namespace
}  // namespace lcl
