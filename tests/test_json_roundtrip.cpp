// Golden-file round-trip of the lclbench-v3 snapshot schema: a
// committed snapshot (including the problem_sweep additions: top-level
// `problems`/`problem_seed` and the agreement metrics) must parse
// through src/core/json and re-serialize byte-identically via
// core::json::dump. Schema or parser/serializer drift is caught here,
// at test time, instead of surfacing as a confusing `--compare`
// failure against an old snapshot.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/json.hpp"

namespace lcl {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

TEST(JsonRoundTrip, GoldenSnapshotReserializesByteIdentically) {
  const std::string raw = read_file(LCL_GOLDEN_SNAPSHOT);
  ASSERT_FALSE(raw.empty());
  const core::json::Value v = core::json::parse(raw);
  EXPECT_EQ(core::json::dump(v), raw)
      << "schema / parser / serializer drift: regenerate the golden "
         "with core::json::dump over a fresh problem_sweep snapshot "
         "and review the diff";
}

TEST(JsonRoundTrip, GoldenCarriesTheProblemSweepSchema) {
  const core::json::Value v =
      core::json::parse(read_file(LCL_GOLDEN_SNAPSHOT));
  EXPECT_EQ(v.get_string("schema", ""), "lclbench-v3");
  EXPECT_NE(v.find("problems"), nullptr);
  EXPECT_NE(v.find("problem_seed"), nullptr);

  const core::json::Value* scenarios = v.find("scenarios");
  ASSERT_NE(scenarios, nullptr);
  ASSERT_TRUE(scenarios->is_array());
  bool found_sweep = false;
  for (const core::json::Value& s : scenarios->array) {
    if (s.get_string("name", "") != "problem_sweep") continue;
    found_sweep = true;
    const core::json::Value* metrics = s.find("metrics");
    ASSERT_NE(metrics, nullptr);
    const double total = metrics->get_number("problems_total", -1);
    const double agree = metrics->get_number("problems_agree", -1);
    EXPECT_GT(total, 0);
    EXPECT_GE(agree, 0);
    EXPECT_GE(metrics->get_number("problems_uncertified", -1), 0);
  }
  EXPECT_TRUE(found_sweep)
      << "golden snapshot must include a problem_sweep scenario";
}

TEST(JsonRoundTrip, DumpParseIsIdempotent) {
  const core::json::Value v = core::json::parse(
      R"({"a": 1, "b": [1.5, true, null, "x\ny"], "c": {"d": [], "e": {}},
          "big": 9007199254740992, "neg": -0.125})");
  const std::string once = core::json::dump(v);
  const std::string twice = core::json::dump(core::json::parse(once));
  EXPECT_EQ(once, twice);
}

TEST(JsonRoundTrip, IntegralDoublesPrintAsIntegers) {
  const core::json::Value v = core::json::parse("[3, 3.5, -0, 4503599627370496]");
  EXPECT_EQ(core::json::dump(v), "[\n  3,\n  3.5,\n  0,\n  4503599627370496\n]\n");
}

}  // namespace
}  // namespace lcl
