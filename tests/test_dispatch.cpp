// Batched dispatch: the DispatchMode knob (parse/name/resolve and the
// process-wide default), the BatchCtx contract (lane views, bulk
// writers, synchronous visibility masking), and the guarantee the whole
// refactor rests on — a program with only per-node hooks runs
// bit-identically under batch dispatch through the default span loops,
// and a program with real batch kernels matches its per-node twin.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "graph/builders.hpp"
#include "local/dispatch.hpp"
#include "local/engine.hpp"

namespace lcl {
namespace {

using graph::NodeId;
using graph::Tree;
using local::BatchCtx;
using local::DispatchMode;
using local::Engine;
using local::NodeCtx;
using local::NodeSpan;
using local::Program;
using local::RunStats;

void expect_identical(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.worst_case, b.worst_case);
  EXPECT_EQ(a.total_rounds, b.total_rounds);
  EXPECT_EQ(a.node_averaged, b.node_averaged);  // bit-identical
  EXPECT_EQ(a.termination_round, b.termination_round);
  EXPECT_EQ(a.primaries(), b.primaries());
  EXPECT_EQ(a.secondaries(), b.secondaries());
}

TEST(DispatchMode, ParseNameRoundTrip) {
  DispatchMode mode = DispatchMode::kAuto;
  EXPECT_TRUE(local::parse_dispatch_mode("pernode", mode));
  EXPECT_EQ(mode, DispatchMode::kPerNode);
  EXPECT_TRUE(local::parse_dispatch_mode("batch", mode));
  EXPECT_EQ(mode, DispatchMode::kBatch);
  EXPECT_TRUE(local::parse_dispatch_mode("auto", mode));
  EXPECT_EQ(mode, DispatchMode::kAuto);

  EXPECT_FALSE(local::parse_dispatch_mode("vectorized", mode));
  EXPECT_FALSE(local::parse_dispatch_mode("", mode));
  EXPECT_FALSE(local::parse_dispatch_mode("Batch", mode));
  // A failed parse leaves the out-parameter untouched.
  EXPECT_EQ(mode, DispatchMode::kAuto);

  EXPECT_STREQ(local::dispatch_mode_name(DispatchMode::kPerNode),
               "pernode");
  EXPECT_STREQ(local::dispatch_mode_name(DispatchMode::kBatch), "batch");
  EXPECT_STREQ(local::dispatch_mode_name(DispatchMode::kAuto), "auto");
}

TEST(DispatchMode, ResolveCollapsesAutoThroughTheDefault) {
  const DispatchMode saved = local::default_dispatch_mode();
  // Explicit modes resolve to themselves regardless of the default.
  EXPECT_EQ(local::resolve_dispatch_mode(DispatchMode::kPerNode),
            DispatchMode::kPerNode);
  EXPECT_EQ(local::resolve_dispatch_mode(DispatchMode::kBatch),
            DispatchMode::kBatch);
  // Auto follows the process default; an auto default means batch
  // (default hooks make batch semantically identical, so it never
  // loses).
  local::set_default_dispatch_mode(DispatchMode::kPerNode);
  EXPECT_EQ(local::resolve_dispatch_mode(DispatchMode::kAuto),
            DispatchMode::kPerNode);
  local::set_default_dispatch_mode(DispatchMode::kAuto);
  EXPECT_EQ(local::resolve_dispatch_mode(DispatchMode::kAuto),
            DispatchMode::kBatch);
  local::set_default_dispatch_mode(saved);
}

/// A per-node-only program exercising every NodeCtx facility: register
/// churn with growing widths, neighbor reads, staggered termination.
class PerNodeOnly final : public Program {
 public:
  void on_init(NodeCtx& ctx) override { ctx.publish({ctx.node()}); }
  void on_round(NodeCtx& ctx) override {
    std::int64_t sum = 0;
    for (int p = 0; p < ctx.degree(); ++p) {
      const local::RegView reg = ctx.peek(p);
      if (!reg.empty()) sum += reg[0];
      if (ctx.neighbor_terminated(p)) ++sum;
    }
    local::Register r(ctx.own().begin(), ctx.own().end());
    r.push_back(sum);
    ctx.publish(r);
    if (ctx.round() == (ctx.node() % 7) + 1) {
      ctx.terminate(static_cast<int>(sum % 1024), ctx.node() % 3);
    }
  }
};

TEST(BatchDispatch, DefaultHooksAreBitIdenticalToPerNode) {
  // No batch overrides: kBatch drives the default span loops, which
  // must reproduce the per-node schedule exactly — this is what lets
  // auto resolve to batch for arbitrary programs.
  Tree t = graph::make_random_tree(500, 4, 31);
  PerNodeOnly a;
  Engine pernode(t, local::KernelMode::kAuto, DispatchMode::kPerNode);
  const RunStats ref = pernode.run(a);
  PerNodeOnly b;
  Engine batch(t, local::KernelMode::kAuto, DispatchMode::kBatch);
  expect_identical(ref, batch.run(b));
  EXPECT_EQ(batch.dispatch(), DispatchMode::kBatch);
  EXPECT_EQ(pernode.dispatch(), DispatchMode::kPerNode);
}

/// A twin-path program: per-node hooks and hand-written batch kernels
/// computing the same protocol (sum neighbor ids, terminate once the
/// round count exceeds the node's threshold) through the lane-level
/// BatchCtx API — bulk publish_lane staging and terminate_lane tails.
class TwinPaths final : public Program {
 public:
  explicit TwinPaths(const Tree& tree)
      : scratch_(static_cast<std::size_t>(tree.size())) {}

  void on_init(NodeCtx& ctx) override { ctx.publish({ctx.node() + 1}); }
  void on_round(NodeCtx& ctx) override {
    if (ctx.round() > 9) {
      ctx.terminate(-1);
      return;
    }
    std::int64_t sum = 0;
    for (int p = 0; p < ctx.degree(); ++p) {
      const local::RegView reg = ctx.peek(p);
      sum += reg.empty() ? 0 : reg[0];
    }
    ctx.publish({sum});
    if (ctx.round() == (ctx.node() % 5) + 3) {
      ctx.terminate(static_cast<int>(sum % 4096));
    }
  }

  void on_init_batch(BatchCtx& batch, NodeSpan nodes) override {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      scratch_[i] = nodes[i] + 1;
    }
    batch.publish_lane(nodes, scratch_.data(), 1);
  }
  void on_round_batch(BatchCtx& batch, NodeSpan nodes) override {
    const std::int64_t round = batch.round();
    if (round > 9) {
      batch.terminate_lane(nodes, local::Output{-1, -1});
      return;
    }
    const std::int32_t* off = batch.offsets();
    const NodeId* adj = batch.adjacency();
    for (const NodeId v : nodes) {
      const auto vi = static_cast<std::size_t>(v);
      std::int64_t sum = 0;
      for (std::int32_t p = off[vi]; p < off[vi + 1]; ++p) {
        const local::RegView reg = batch.reg(adj[p]);
        sum += reg.empty() ? 0 : reg[0];
      }
      batch.publish(v, local::RegView(&sum, 1));
      if (round == (v % 5) + 3) {
        batch.terminate(v, static_cast<int>(sum % 4096));
      }
    }
  }

 private:
  std::vector<std::int64_t> scratch_;
};

TEST(BatchDispatch, HandWrittenKernelsMatchTheirPerNodeTwin) {
  Tree t = graph::make_random_tree(400, 4, 77);
  TwinPaths a(t);
  Engine pernode(t, local::KernelMode::kAuto, DispatchMode::kPerNode);
  const RunStats ref = pernode.run(a);
  TwinPaths b(t);
  Engine batch(t, local::KernelMode::kAuto, DispatchMode::kBatch);
  expect_identical(ref, batch.run(b));
}

/// Observes neighbor terminations through the raw lanes: node 0
/// terminates at round 1; every other node terminates the first round
/// it *sees* a visibly-terminated neighbor, recording the round. On a
/// path this produces a wave — and proves the termination lanes carry
/// the same one-round visibility delay NodeCtx::neighbor_terminated
/// has (the raw `terminated_lane` includes same-round terminations;
/// masking with term_round < round is the documented contract).
class VisibilityWave final : public Program {
 public:
  void on_init(NodeCtx&) override {}
  void on_round(NodeCtx&) override { FAIL() << "batch-only program"; }
  void on_init_batch(BatchCtx&, NodeSpan) override {}
  void on_round_batch(BatchCtx& batch, NodeSpan nodes) override {
    const std::int32_t* off = batch.offsets();
    const NodeId* adj = batch.adjacency();
    const std::uint8_t* term = batch.terminated_lane().data();
    const std::int64_t* term_round = batch.term_round_lane().data();
    const std::int64_t round = batch.round();
    for (const NodeId v : nodes) {
      if (v == 0) {
        batch.terminate(v, 0);
        continue;
      }
      const auto vi = static_cast<std::size_t>(v);
      bool saw = false;
      for (std::int32_t p = off[vi]; p < off[vi + 1]; ++p) {
        const auto u = static_cast<std::size_t>(adj[p]);
        const bool masked = term[u] != 0 && term_round[u] < round;
        EXPECT_EQ(masked, batch.terminated_visible(adj[p]));
        saw = saw || masked;
      }
      if (saw) batch.terminate(v, static_cast<int>(round));
    }
  }
};

TEST(BatchDispatch, TerminationLanesCarrySynchronousVisibility) {
  Tree t = graph::make_path(6);
  VisibilityWave p;
  Engine engine(t, local::KernelMode::kAuto, DispatchMode::kBatch);
  const RunStats stats = engine.run(p);
  // Node 0 terminates in round 1; node i only observes node i-1's
  // termination in round i+1 — the wave advances one hop per round
  // even though the batch walk covers every node every round.
  for (NodeId v = 0; v < 6; ++v) {
    EXPECT_EQ(stats.termination_round[static_cast<std::size_t>(v)], v + 1)
        << "node " << v;
  }
}

/// terminate_lane with per-node outputs, driven from a bulk decision.
class LaneOutputs final : public Program {
 public:
  void on_init(NodeCtx&) override {}
  void on_round(NodeCtx&) override { FAIL() << "batch-only program"; }
  void on_init_batch(BatchCtx&, NodeSpan) override {}
  void on_round_batch(BatchCtx& batch, NodeSpan nodes) override {
    std::vector<local::Output> outs(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      outs[i] = {static_cast<int>(nodes[i]) * 2,
                 static_cast<int>(nodes[i]) % 5};
    }
    batch.terminate_lane(nodes, outs.data());
  }
};

TEST(BatchDispatch, TerminateLaneRecordsPerNodeOutputs) {
  Tree t = graph::make_star(7);
  LaneOutputs p;
  Engine engine(t, local::KernelMode::kAuto, DispatchMode::kBatch);
  const RunStats stats = engine.run(p);
  for (NodeId v = 0; v < 8; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    EXPECT_EQ(stats.termination_round[vi], 1);
    EXPECT_EQ(stats.output[vi].primary, v * 2);
    EXPECT_EQ(stats.output[vi].secondary, v % 5);
  }
}

/// Terminating the same span twice in one round must throw, exactly
/// like a per-node double ctx.terminate().
class DoubleTerminate final : public Program {
 public:
  void on_init(NodeCtx&) override {}
  void on_round(NodeCtx&) override {}
  void on_round_batch(BatchCtx& batch, NodeSpan nodes) override {
    batch.terminate_lane(nodes, local::Output{1, -1});
    batch.terminate_lane(nodes, local::Output{2, -1});
  }
};

TEST(BatchDispatch, DoubleTerminationThrows) {
  Tree t = graph::make_path(4);
  DoubleTerminate p;
  Engine engine(t, local::KernelMode::kAuto, DispatchMode::kBatch);
  EXPECT_THROW(engine.run(p), std::logic_error);
}

/// Batch init terminating a subset at T_v == 0: the compacted alive
/// span handed to the first on_round_batch must exclude exactly those
/// nodes, in stable id order (the same order per-node init produces).
class InitTerminates final : public Program {
 public:
  void on_init(NodeCtx& ctx) override {
    if (ctx.node() % 3 == 0) ctx.terminate(0);
  }
  void on_round(NodeCtx& ctx) override { ctx.terminate(1); }
  void on_init_batch(BatchCtx& batch, NodeSpan nodes) override {
    for (const NodeId v : nodes) {
      if (v % 3 == 0) batch.terminate(v, 0);
    }
  }
  void on_round_batch(BatchCtx& batch, NodeSpan nodes) override {
    first_round_span_.assign(nodes.begin(), nodes.end());
    for (const NodeId v : nodes) batch.terminate(v, 1);
  }

  std::vector<NodeId> first_round_span_;
};

TEST(BatchDispatch, InitTerminationsCompactTheFirstSpan) {
  Tree t = graph::make_path(10);
  InitTerminates batch_p;
  Engine batch(t, local::KernelMode::kAuto, DispatchMode::kBatch);
  const RunStats batch_stats = batch.run(batch_p);
  const std::vector<NodeId> expected = {1, 2, 4, 5, 7, 8};
  EXPECT_EQ(batch_p.first_round_span_, expected);

  InitTerminates pernode_p;
  Engine pernode(t, local::KernelMode::kAuto, DispatchMode::kPerNode);
  expect_identical(pernode.run(pernode_p), batch_stats);
}

}  // namespace
}  // namespace lcl
