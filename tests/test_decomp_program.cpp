// The distributed decomposition program: agreement with the
// Definition-43 properties, and — the point of running it in-model —
// Lemma 72's ROUND bounds: O(L * (gamma + ell)) rounds overall, i.e.
// O(k n^{1/k}) for gamma ~ n^{1/k} and O(log n * gamma) for gamma = 1.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/decomp_program.hpp"
#include "decomp/rake_compress.hpp"
#include "graph/builders.hpp"
#include "test_util.hpp"

namespace lcl {
namespace {

using graph::NodeId;
using graph::Tree;

TEST(DecompProgram, EncodeDecodeRoundTrips) {
  for (int layer : {1, 5, 200}) {
    for (int sub : {0, 1, 77}) {
      for (auto kind :
           {decomp::LayerKind::kRake, decomp::LayerKind::kCompress}) {
        const decomp::LayerAssignment a{kind, layer, sub};
        const auto b = algo::decode_layer(algo::encode_layer(a));
        EXPECT_EQ(b.kind, a.kind);
        EXPECT_EQ(b.layer, a.layer);
        EXPECT_EQ(b.sublayer, a.sublayer);
      }
    }
  }
}

class DecompProgramSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecompProgramSweep, ValidRelaxedDecomposition) {
  const std::uint64_t seed = GetParam();
  Tree t = graph::make_random_tree(800, 4, seed);
  graph::assign_ids(t, graph::IdScheme::kShuffled, seed);
  const auto out = algo::run_distributed_decomposition(t, 2, 3);
  EXPECT_EQ(decomp::validate_decomposition(t, out.decomposition), "")
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecompProgramSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(DecompProgram, PathsAndCaterpillars) {
  for (Tree t : {graph::make_path(300), graph::make_caterpillar(120, 2)}) {
    graph::assign_ids(t, graph::IdScheme::kShuffled, 9);
    const auto out = algo::run_distributed_decomposition(t, 1, 3);
    EXPECT_EQ(decomp::validate_decomposition(t, out.decomposition), "");
  }
}

TEST(DecompProgram, Lemma72RoundBoundGammaRootK) {
  // gamma ~ n^{1/2}: at most ~2 iterations, so O(n^{1/2}) rounds.
  Tree t = graph::make_random_tree(10000, 4, 3);
  graph::assign_ids(t, graph::IdScheme::kShuffled, 3);
  const int gamma = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(t.size())) * 1.5));
  const auto out = algo::run_distributed_decomposition(t, gamma, 3);
  EXPECT_EQ(decomp::validate_decomposition(t, out.decomposition), "");
  EXPECT_LE(out.decomposition.num_layers, 2);
  // Rounds <= #layers * window = O(n^{1/2}).
  EXPECT_LE(out.stats.worst_case,
            static_cast<std::int64_t>(2) * (2 * gamma + 3 + 3));
}

TEST(DecompProgram, Lemma72RoundBoundGammaOne) {
  // gamma = 1: O(log n) iterations of O(1) rounds each.
  for (NodeId n : {1000, 8000, 64000}) {
    Tree t = graph::make_random_tree(n, 4, 7);
    graph::assign_ids(t, graph::IdScheme::kShuffled, 7);
    const auto out = algo::run_distributed_decomposition(t, 1, 3);
    EXPECT_EQ(decomp::validate_decomposition(t, out.decomposition), "");
    const double logn = std::log2(static_cast<double>(n));
    EXPECT_LE(out.stats.worst_case,
              static_cast<std::int64_t>(8.0 * 4.0 * logn))
        << "n " << n;
  }
}

TEST(DecompProgram, AgreesWithCentralizedOnLayerCounts) {
  // The distributed and centralized relaxed decompositions need not be
  // identical (timing of deferred rakes differs slightly), but their
  // layer counts must be of the same order.
  Tree t = graph::make_random_tree(5000, 4, 11);
  graph::assign_ids(t, graph::IdScheme::kShuffled, 11);
  const auto dist = algo::run_distributed_decomposition(t, 2, 3);
  const auto central = decomp::rake_compress(t, 2, 3, /*split=*/false);
  EXPECT_LE(dist.decomposition.num_layers, 2 * central.num_layers + 2);
  EXPECT_LE(central.num_layers, 2 * dist.decomposition.num_layers + 2);
}

}  // namespace
}  // namespace lcl
