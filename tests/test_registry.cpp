// Algorithm registry: every registered solver must run on a small
// instance of every compatible family through the one uniform code path
// (prepare -> factory -> Engine -> certify), produce a check-ok verdict,
// and reproduce bit-identically under the same seed (catching solvers
// whose determinism depends on hidden state). Plus the typed option
// machinery: defaults, ranges, clear errors, CLI parsing, and the
// make_solver_job composition.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "algo/registry.hpp"
#include "core/batch.hpp"
#include "graph/families.hpp"
#include "graph/tree.hpp"
#include "local/engine.hpp"

namespace lcl {
namespace {

using graph::NodeId;
using graph::Tree;

struct Cell {
  std::string solver;
  std::string family;
};

std::string cell_name(const testing::TestParamInfo<Cell>& info) {
  return info.param.solver + "_on_" + info.param.family;
}

std::vector<Cell> all_compatible_cells() {
  std::vector<Cell> cells;
  for (const algo::SolverSpec& s : algo::registry()) {
    for (const graph::Family& f : graph::all_families()) {
      if (s.compatible(f)) cells.push_back({s.name, f.name});
    }
  }
  return cells;
}

/// One full registry run on a small instance; returns stats + verdict.
algo::SolverRun run_cell(const Cell& cell, std::uint64_t seed) {
  const algo::SolverSpec& spec = algo::solver(cell.solver);
  Tree t = graph::make_family_instance(cell.family, /*n=*/120, seed);
  algo::prepare_instance(t, spec.needs, seed);
  algo::SolverConfig cfg;
  cfg.seed = seed;
  return algo::run_registered(spec, t, cfg, /*max_rounds=*/100000);
}

class RegistryMatrix : public testing::TestWithParam<Cell> {};

TEST_P(RegistryMatrix, CertifiesAndRerunsDeterministically) {
  const Cell cell = GetParam();
  const algo::SolverRun first = run_cell(cell, /*seed=*/11);

  ASSERT_FALSE(first.stats.truncated) << cell.solver << " on "
                                      << cell.family << " hit max_rounds";
  EXPECT_TRUE(first.verdict.ok)
      << cell.solver << " on " << cell.family << ": "
      << first.verdict.reason;
  EXPECT_EQ(first.stats.unterminated, 0);

  // Same seed, fresh everything: outputs and per-node termination
  // rounds must reproduce exactly. A mismatch means the solver's
  // behavior depends on hidden state (uninitialized scratch, global
  // RNG, iteration over an unordered container, ...).
  const algo::SolverRun again = run_cell(cell, /*seed=*/11);
  ASSERT_EQ(first.stats.n, again.stats.n);
  EXPECT_EQ(first.stats.termination_round, again.stats.termination_round);
  for (std::size_t v = 0; v < first.stats.output.size(); ++v) {
    EXPECT_EQ(first.stats.output[v].primary, again.stats.output[v].primary)
        << "node " << v;
    EXPECT_EQ(first.stats.output[v].secondary,
              again.stats.output[v].secondary)
        << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSolversAllFamilies, RegistryMatrix,
                         testing::ValuesIn(all_compatible_cells()),
                         cell_name);

TEST(Registry, EveryAlgorithmIsRegistered) {
  const std::vector<std::string> names = algo::solver_names();
  const std::set<std::string> have(names.begin(), names.end());
  for (const char* required :
       {"generic_hier_25", "generic_hier_35", "apoly", "pi35",
        "weight_aug", "hier_labeling", "dfree_a", "rake_compress",
        "level_peeling", "random_coloring"}) {
    EXPECT_TRUE(have.count(required)) << "missing solver " << required;
  }
  EXPECT_GE(names.size(), 10u);
  for (const algo::SolverSpec& s : algo::registry()) {
    EXPECT_TRUE(static_cast<bool>(s.factory)) << s.name;
    EXPECT_TRUE(static_cast<bool>(s.certify)) << s.name;
    EXPECT_TRUE(static_cast<bool>(s.compatible)) << s.name;
    EXPECT_FALSE(s.problem.empty()) << s.name;
    EXPECT_FALSE(s.theorem.empty()) << s.name;
  }
}

TEST(Registry, LookupAndParsing) {
  EXPECT_EQ(algo::find_solver("apoly"), &algo::solver("apoly"));
  EXPECT_EQ(algo::find_solver("nope"), nullptr);
  EXPECT_THROW((void)algo::solver("nope"), std::invalid_argument);

  EXPECT_EQ(algo::parse_solver_list("all"), algo::solver_names());
  EXPECT_EQ(algo::parse_solver_list(""), algo::solver_names());
  const auto two = algo::parse_solver_list("pi35,weight_aug");
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], "pi35");
  EXPECT_EQ(two[1], "weight_aug");
  EXPECT_THROW((void)algo::parse_solver_list("pi35,bogus"),
               std::invalid_argument);
}

TEST(Registry, ConfigValidationIsStrictAndClear) {
  const algo::SolverSpec& spec = algo::solver("apoly");

  // Defaults fill in; scalars resolve.
  algo::SolverConfig ok;
  ok.validate(spec);
  EXPECT_EQ(ok.get("k"), 2);
  EXPECT_EQ(ok.get("d"), 2);
  EXPECT_EQ(ok.get("naive_all_copy"), 0);

  // Out-of-range k: a clear error naming solver, key, value, range —
  // no silent clamping.
  algo::SolverConfig bad_k;
  bad_k.set("k", 0);
  try {
    bad_k.validate(spec);
    FAIL() << "k=0 accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("apoly"), std::string::npos) << what;
    EXPECT_NE(what.find("k=0"), std::string::npos) << what;
    EXPECT_NE(what.find("[1, 8]"), std::string::npos) << what;
  }

  // Unknown option names the valid ones.
  algo::SolverConfig unknown;
  unknown.set("gama", 3);
  try {
    unknown.validate(spec);
    FAIL() << "unknown option accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gama"), std::string::npos) << what;
    EXPECT_NE(what.find("gammas"), std::string::npos) << what;
  }

  // List elements are range-checked too (gamma_i >= 2).
  algo::SolverConfig bad_gamma;
  bad_gamma.set("gammas", std::vector<std::int64_t>{1});
  EXPECT_THROW(bad_gamma.validate(spec), std::invalid_argument);

  // A list value for a scalar option is rejected.
  algo::SolverConfig listed;
  listed.set("k", std::vector<std::int64_t>{2, 3});
  EXPECT_THROW(listed.validate(spec), std::invalid_argument);

  // Relational check lives in the factory: |gammas| must be k-1.
  algo::SolverConfig mismatched;
  mismatched.set("k", 3);
  mismatched.set("gammas", std::vector<std::int64_t>{4});
  mismatched.validate(spec);
  const Tree t = graph::make_family_instance("path", 32, 0);
  EXPECT_THROW((void)spec.factory(t, mismatched), std::invalid_argument);
}

TEST(Registry, CliOptionParsing) {
  const algo::SolverSpec& spec = algo::solver("generic_hier_35");

  algo::SolverConfig cfg;
  algo::apply_option(spec, cfg, "k=3");
  algo::apply_option(spec, cfg, "gammas=4,16");
  algo::apply_option(spec, cfg, "symmetry_pad=64");
  cfg.validate(spec);
  EXPECT_EQ(cfg.get("k"), 3);
  EXPECT_EQ(cfg.list("gammas"),
            (std::vector<std::int64_t>{4, 16}));
  EXPECT_EQ(cfg.get("symmetry_pad"), 64);

  EXPECT_THROW(algo::apply_option(spec, cfg, "k"), std::invalid_argument);
  EXPECT_THROW(algo::apply_option(spec, cfg, "=3"), std::invalid_argument);
  EXPECT_THROW(algo::apply_option(spec, cfg, "k=abc"),
               std::invalid_argument);
  EXPECT_THROW(algo::apply_option(spec, cfg, "bogus=1"),
               std::invalid_argument);
  EXPECT_EQ(algo::split_option("a=b").first, "a");
  EXPECT_EQ(algo::split_option("a=b").second, "b");
}

TEST(Registry, PrepareInstanceIsDeterministicAndMarksInputs) {
  const algo::SolverSpec& waug = algo::solver("weight_aug");
  Tree a = graph::make_family_instance("prufer", 200, /*seed=*/5);
  Tree b = graph::make_family_instance("prufer", 200, /*seed=*/5);
  algo::prepare_instance(a, waug.needs, /*seed=*/9);
  algo::prepare_instance(b, waug.needs, /*seed=*/9);
  int weight_nodes = 0;
  for (NodeId v = 0; v < a.size(); ++v) {
    EXPECT_EQ(a.local_id(v), b.local_id(v));
    EXPECT_EQ(a.input(v), b.input(v));
    weight_nodes +=
        a.input(v) == static_cast<int>(graph::WeightInput::kWeight);
  }
  // The depth-based marking yields a genuine two-sided instance.
  EXPECT_GT(weight_nodes, 0);
  EXPECT_LT(weight_nodes, a.size());
  a.validate_ids();

  // d-free marking: at least the component root is input-A.
  const algo::SolverSpec& dfree = algo::solver("dfree_a");
  Tree c = graph::make_family_instance("dary", 100, /*seed=*/1);
  algo::prepare_instance(c, dfree.needs, /*seed=*/2);
  int a_nodes = 0;
  for (NodeId v = 0; v < c.size(); ++v) {
    a_nodes += c.input(v) == static_cast<int>(problems::DFreeInput::kA);
  }
  EXPECT_GE(a_nodes, 1);
  EXPECT_LT(a_nodes, c.size());
}

TEST(Registry, MakeSolverJobEndToEnd) {
  algo::SolverConfig cfg;
  cfg.set("k", 2);
  core::BatchJob job = core::make_solver_job(
      "waug-prufer", /*scale=*/150.0, /*seed=*/77, "weight_aug", cfg,
      "prufer", /*n=*/150, /*delta=*/0);
  const core::MeasuredRun run = job.run(job.seed);
  EXPECT_EQ(run.status, core::RunStatus::kOk) << run.check_reason;
  EXPECT_GT(run.n, 0);
  EXPECT_GE(run.build_ms, 0.0);
  EXPECT_GT(run.term.total(), 0);

  // Misconfiguration fails at construction, not on a worker thread.
  algo::SolverConfig bad;
  bad.set("k", 99);
  EXPECT_THROW((void)core::make_solver_job("x", 1.0, 0, "weight_aug", bad,
                                           "path", 64, 0),
               std::invalid_argument);
  EXPECT_THROW((void)core::make_solver_job("x", 1.0, 0, "no_such_solver",
                                           {}, "path", 64, 0),
               std::invalid_argument);
  EXPECT_THROW((void)core::make_solver_job("x", 1.0, 0, "weight_aug", {},
                                           "no_such_family", 64, 0),
               std::invalid_argument);
}

// Regression pin for a checker bug the solver matrix surfaced:
// check_weight_augmented carried per-port orientations into the induced
// weight subgraph in the *parent's* port order, but induced_subgraph
// fills each node's CSR range in global edge-insertion order. BFS-built
// paper instances happen to agree (parent-first ports), Prüfer trees do
// not — the checker then read the orientation of the wrong edge and
// rejected a valid weight-augmented solution. This is the exact
// instance the matrix first failed on.
TEST(Registry, WeightAugCertifiesOnArbitraryPortOrder) {
  const algo::SolverSpec& spec = algo::solver("weight_aug");
  // The solver_matrix cell seed for weight_aug @ prufer at n = 500.
  const std::uint64_t seed =
      core::stable_name_seed("weight_aug@prufer") + 500;
  Tree t = graph::make_family_instance("prufer", 500, seed);
  algo::prepare_instance(t, spec.needs, seed);
  algo::SolverConfig cfg;
  const auto run = algo::run_registered(spec, t, cfg);
  EXPECT_TRUE(run.verdict.ok) << run.verdict.reason;
}

TEST(Registry, RngSolverVariesWithSeedButNotHiddenState) {
  // Different seeds give different runs (the rng need is real)...
  const algo::SolverSpec& spec = algo::solver("random_coloring");
  Tree t = graph::make_family_instance("path", 200, /*seed=*/3);
  algo::prepare_instance(t, spec.needs, /*seed=*/3);
  algo::SolverConfig c1;
  c1.seed = 1;
  algo::SolverConfig c2;
  c2.seed = 2;
  const auto r1 = algo::run_registered(spec, t, c1);
  const auto r2 = algo::run_registered(spec, t, c2);
  EXPECT_TRUE(r1.verdict.ok);
  EXPECT_TRUE(r2.verdict.ok);
  EXPECT_NE(r1.stats.termination_round, r2.stats.termination_round);
}

}  // namespace
}  // namespace lcl
