// Service-layer suite: the ProblemCache contract (sharded LRU,
// byte-budget eviction, counters), the protocol's typed error taxonomy,
// the admission queue's backpressure and timeout behavior, and the
// cache-hit determinism contract — identical requests produce
// byte-identical responses regardless of thread interleaving (the
// response carries no per-request state beyond the echoed id, and warm
// hits replay the cold response's stored bytes).
// The transport suite at the bottom drives the poll-based connection
// supervisor (service/transport.*) over real loopback TCP and Unix
// sockets: pipelined ordering, per-connection flow control (write-
// backlog stall/resume, in-flight window), the --max-conns rejection
// path, connection churn resource bounds, and the regression tests for
// the pre-supervisor I/O bugs (EINTR-as-fatal writes, SIGPIPE death on
// a vanished client, dropped final line without a trailing newline).
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <pthread.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/json.hpp"
#include "problems/lclgen.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"

namespace lcl {
namespace {

using core::json::Value;
using problems::BwTable;
using service::CacheStats;
using service::ProblemCache;
using service::Server;
using service::ServerOptions;

Value parse(const std::string& response) {
  return core::json::parse(response);
}

std::string classify_line(std::uint64_t seed) {
  return "{\"type\":\"classify\",\"problem_seed\":" +
         std::to_string(seed) + "}";
}

// ---------------------------------------------------------------------------
// ProblemCache.
// ---------------------------------------------------------------------------

TEST(ProblemCache, CountsHitsAndMisses) {
  ProblemCache cache(1 << 20);
  const BwTable t = problems::sample_table(7);
  const auto cold = cache.get_or_compute(t);
  const auto warm = cache.get_or_compute(t);
  ASSERT_NE(cold, nullptr);
  EXPECT_EQ(cold.get(), warm.get());  // same resident entry
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.bytes, 0u);
}

TEST(ProblemCache, PermutedAndPaddedTablesShareOneEntry) {
  ProblemCache cache(1 << 20);
  const BwTable t = problems::edge_coloring_table(3, 3);
  const auto base = cache.get_or_compute(t);
  const auto permuted =
      cache.get_or_compute(problems::permute_table(t, {2, 0, 1}));
  const auto padded = cache.get_or_compute(problems::pad_table(t, 1));
  EXPECT_EQ(base.get(), permuted.get());
  EXPECT_EQ(base.get(), padded.get());
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 2u);
}

TEST(ProblemCache, EvictsLeastRecentlyUsedPastByteBudget) {
  // A one-byte budget on a single shard: every insert displaces the
  // previous resident (an oversized singleton stays until displaced).
  ProblemCache cache(1, /*shards=*/1);
  const std::vector<BwTable> tables = problems::sample_problems(1, 6);
  ASSERT_GE(tables.size(), 3u);
  std::vector<std::string> keys;
  for (const BwTable& t : tables) {
    keys.push_back(cache.get_or_compute(t)->key);
  }
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.evictions, tables.size() - 1);
  // Only the most recent key is resident.
  EXPECT_EQ(cache.lookup(keys.front()), nullptr);
  EXPECT_NE(cache.lookup(keys.back()), nullptr);
}

TEST(ProblemCache, EvictionOrderFollowsTouchRecencyNotInsertion) {
  // Synthetic entries with pinned byte costs make the order exact: a
  // budget of 100 holds two 40-byte entries; touching "a" makes "b"
  // the LRU victim when "c" arrives.
  const auto make = [](const std::string& key, std::size_t bytes) {
    auto e = std::make_shared<service::CacheEntry>();
    e->key = key;
    e->bytes = bytes;
    return e;
  };
  ProblemCache cache(100, /*shards=*/1);
  cache.insert(make("a", 40));
  cache.insert(make("b", 40));
  ASSERT_NE(cache.lookup("a"), nullptr);  // refresh: "b" is now LRU
  cache.insert(make("c", 40));
  EXPECT_NE(cache.lookup("a"), nullptr);
  EXPECT_EQ(cache.lookup("b"), nullptr);
  EXPECT_NE(cache.lookup("c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

// ---------------------------------------------------------------------------
// Protocol errors.
// ---------------------------------------------------------------------------

TEST(ServiceProtocol, MalformedJsonIsBadJson) {
  Server server(ServerOptions{});
  const Value v = parse(server.handle_line("this is not json"));
  EXPECT_FALSE(v.get_bool("ok", true));
  EXPECT_EQ(v.get_string("error", ""), "bad_json");
}

TEST(ServiceProtocol, UnknownTypeIsTyped) {
  Server server(ServerOptions{});
  const Value v =
      parse(server.handle_line("{\"type\":\"frobnicate\",\"id\":4}"));
  EXPECT_FALSE(v.get_bool("ok", true));
  EXPECT_EQ(v.get_string("error", ""), "unknown_type");
  EXPECT_EQ(v.get_number("id", -1), 4);  // id echoed on errors too
}

TEST(ServiceProtocol, ClassifyNeedsExactlyOneSelector) {
  Server server(ServerOptions{});
  EXPECT_EQ(parse(server.handle_line("{\"type\":\"classify\"}"))
                .get_string("error", ""),
            "bad_request");
  EXPECT_EQ(parse(server.handle_line(
                      "{\"type\":\"classify\",\"problem_seed\":1,"
                      "\"problem\":\"free\"}"))
                .get_string("error", ""),
            "bad_request");
}

TEST(ServiceProtocol, OversizedTableIsRejected) {
  Server server(ServerOptions{});
  const Value v = parse(server.handle_line(
      "{\"type\":\"classify\",\"table\":{\"alphabet\":9,"
      "\"max_degree\":3,\"allowed\":[1,1,1]}}"));
  EXPECT_EQ(v.get_string("error", ""), "oversized_table");
  const Value deep = parse(server.handle_line(
      "{\"type\":\"classify\",\"table\":{\"alphabet\":2,"
      "\"max_degree\":9,\"allowed\":[1,1,1,1,1,1,1,1,1]}}"));
  EXPECT_EQ(deep.get_string("error", ""), "oversized_table");
}

TEST(ServiceProtocol, StrayMaskBitsAreBadRequest) {
  Server server(ServerOptions{});
  // Degree-1 over alphabet 2 has exactly 2 multisets; bit 2 is invalid.
  const Value v = parse(server.handle_line(
      "{\"type\":\"classify\",\"table\":{\"alphabet\":2,"
      "\"max_degree\":1,\"allowed\":[4]}}"));
  EXPECT_EQ(v.get_string("error", ""), "bad_request");
}

TEST(ServiceProtocol, UnknownSolverAndFamilyAreTyped) {
  Server server(ServerOptions{});
  EXPECT_EQ(parse(server.handle_line(
                      "{\"type\":\"solve\",\"solver\":\"nope\"}"))
                .get_string("error", ""),
            "unknown_solver");
  EXPECT_EQ(parse(server.handle_line(
                      "{\"type\":\"solve\",\"family\":\"nope\"}"))
                .get_string("error", ""),
            "unknown_family");
}

TEST(ServiceProtocol, UndeclaredSolverOptionIsBadRequest) {
  Server server(ServerOptions{});
  const Value v = parse(server.handle_line(
      "{\"type\":\"solve\",\"problem_seed\":0,\"n\":64,"
      "\"options\":{\"frob\":3}}"));
  EXPECT_EQ(v.get_string("error", ""), "bad_request");
}

TEST(ServiceProtocol, IdIsEchoedWhenPresentAndOmittedWhenNot) {
  Server server(ServerOptions{});
  const std::string with_id =
      server.handle_line("{\"type\":\"info\",\"id\":123}");
  EXPECT_EQ(with_id.rfind("{\"id\":123,", 0), 0u);
  const std::string without_id = server.handle_line("{\"type\":\"info\"}");
  EXPECT_EQ(without_id.rfind("{\"ok\":true", 0), 0u);
}

// ---------------------------------------------------------------------------
// Round trips.
// ---------------------------------------------------------------------------

TEST(ServiceRoundTrip, RepeatedClassifyIsServedFromCacheByteIdentical) {
  Server server(ServerOptions{});
  const std::string line =
      "{\"type\":\"classify\",\"id\":1,\"problem_seed\":42}";
  const std::string cold = server.handle_line(line);
  const std::uint64_t hits_before = server.cache().stats().hits;
  const std::string warm = server.handle_line(line);
  EXPECT_EQ(cold, warm);  // byte-identical, id included
  EXPECT_EQ(server.cache().stats().hits, hits_before + 1);

  const Value v = parse(cold);
  EXPECT_TRUE(v.get_bool("ok", false));
  EXPECT_EQ(v.get_string("type", ""), "classify");
  EXPECT_FALSE(v.get_string("key", "").empty());
  const std::string predicted = v.get_string("predicted", "");
  EXPECT_TRUE(predicted == "O(1)" || predicted == "log*-range" ||
              predicted == "Theta(log n)" || predicted == "unsolvable")
      << predicted;
  ASSERT_NE(v.find("region"), nullptr);
  EXPECT_FALSE(v.find("region")->get_string("range", "").empty());
}

TEST(ServiceRoundTrip, NamedProblemClassifies) {
  Server server(ServerOptions{});
  const Value v = parse(server.handle_line(
      "{\"type\":\"classify\",\"problem\":\"edge_coloring\"}"));
  EXPECT_TRUE(v.get_bool("ok", false));
  EXPECT_EQ(parse(server.handle_line(
                      "{\"type\":\"classify\",\"problem\":\"nope\"}"))
                .get_string("error", ""),
            "bad_request");
}

TEST(ServiceRoundTrip, SolveRunsAndCertifies) {
  Server server(ServerOptions{});
  const Value v = parse(server.handle_line(
      "{\"type\":\"solve\",\"id\":9,\"problem_seed\":0,"
      "\"solver\":\"bw_generic\",\"family\":\"path\",\"n\":256,"
      "\"seed\":3}"));
  EXPECT_TRUE(v.get_bool("ok", false));
  EXPECT_EQ(v.get_string("type", ""), "solve");
  EXPECT_EQ(v.get_string("status", ""), "ok");
  EXPECT_TRUE(v.get_bool("certified", false));
  EXPECT_EQ(v.get_number("n", 0), 256);
  EXPECT_FALSE(v.get_string("key", "").empty());
  EXPECT_GE(v.get_number("term_p99", -1), 0);
  // The solve warmed the problem cache: the matching classify hits.
  const std::uint64_t hits_before = server.cache().stats().hits;
  (void)server.handle_line(classify_line(0));
  EXPECT_EQ(server.cache().stats().hits, hits_before + 1);
}

TEST(ServiceRoundTrip, InfoReportsCounters) {
  Server server(ServerOptions{});
  (void)server.handle_line(classify_line(42));
  (void)server.handle_line(classify_line(42));
  const Value v = parse(server.handle_line("{\"type\":\"info\"}"));
  EXPECT_TRUE(v.get_bool("ok", false));
  EXPECT_EQ(v.get_string("type", ""), "info");
  EXPECT_GE(v.get_number("uptime_ms", -1), 0.0);
  EXPECT_EQ(v.get_number("cache_hits", -1), 1);
  EXPECT_EQ(v.get_number("cache_misses", -1), 1);
  EXPECT_EQ(v.get_number("cache_entries", -1), 1);
  EXPECT_GE(v.get_number("threads", 0), 1);
}

// ---------------------------------------------------------------------------
// Admission queue: backpressure, timeout, drain.
// ---------------------------------------------------------------------------

TEST(ServiceQueue, RejectsBeyondMaxQueueWithOverloaded) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};

  ServerOptions opts;
  opts.threads = 1;
  opts.max_queue = 1;
  opts.before_execute = [&] {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  Server server(opts);

  // First request: dequeued by the only worker, parked in the hook.
  auto first = server.submit(classify_line(1));
  while (entered.load() == 0) std::this_thread::yield();
  // Second request: fills the queue (depth 1).
  auto second = server.submit(classify_line(2));
  // Third: over the depth — rejected immediately, without blocking.
  auto third = server.submit(classify_line(3));
  ASSERT_EQ(third.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const Value rejected = parse(third.get());
  EXPECT_FALSE(rejected.get_bool("ok", true));
  EXPECT_EQ(rejected.get_string("error", ""), "overloaded");

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_TRUE(parse(first.get()).get_bool("ok", false));
  EXPECT_TRUE(parse(second.get()).get_bool("ok", false));
}

TEST(ServiceQueue, ZeroTimeoutExpiresEveryQueuedRequest) {
  ServerOptions opts;
  opts.threads = 1;
  opts.timeout_ms = 0.0;  // expired the moment a worker dequeues it
  Server server(opts);
  const Value v = parse(server.submit(classify_line(1)).get());
  EXPECT_FALSE(v.get_bool("ok", true));
  EXPECT_EQ(v.get_string("error", ""), "timeout");
}

TEST(ServiceQueue, DrainStopsAdmissionAndFinishesQueuedWork) {
  ServerOptions opts;
  opts.threads = 2;
  Server server(opts);
  auto pending = server.submit(classify_line(5));
  server.drain();
  EXPECT_TRUE(parse(pending.get()).get_bool("ok", false));
  const Value after = parse(server.submit(classify_line(6)).get());
  EXPECT_EQ(after.get_string("error", ""), "overloaded");
}

// ---------------------------------------------------------------------------
// Concurrency: cache-hit determinism under interleaving.
// ---------------------------------------------------------------------------

TEST(ServiceHammer, IdenticalRequestsGetByteIdenticalResponses) {
  ServerOptions opts;
  opts.threads = 4;
  opts.max_queue = 4096;
  Server server(opts);

  // Four distinct problems, hammered by eight clients through both
  // entry points. Identical request lines (no id) must produce
  // byte-identical responses no matter which thread computed the cold
  // entry or how lookups interleaved with evict-free inserts.
  const std::vector<std::uint64_t> seeds = {0, 42, 1234, 98765};
  constexpr int kClients = 8;
  constexpr int kPerClient = 32;

  std::vector<std::vector<std::string>> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const std::uint64_t seed =
            seeds[static_cast<std::size_t>((c + i) % 4)];
        const std::string line = classify_line(seed);
        std::string response = (c + i) % 2 == 0
                                   ? server.handle_line(line)
                                   : server.submit(line).get();
        responses[static_cast<std::size_t>(c)].push_back(
            std::move(response));
      }
    });
  }
  for (auto& t : clients) t.join();

  // Group by the request that produced each response (reconstructable
  // from the deterministic (c, i) schedule) and assert equality.
  std::map<std::uint64_t, std::string> canonical;
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPerClient; ++i) {
      const std::uint64_t seed =
          seeds[static_cast<std::size_t>((c + i) % 4)];
      const std::string& got =
          responses[static_cast<std::size_t>(c)][static_cast<std::size_t>(
              i)];
      auto [it, inserted] = canonical.emplace(seed, got);
      if (!inserted) {
        ASSERT_EQ(got, it->second) << "seed " << seed;
      }
    }
  }

  const CacheStats s = server.cache().stats();
  EXPECT_GT(s.hits, 0u);
  EXPECT_EQ(s.hits + s.misses,
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(s.entries, seeds.size());
}

// ---------------------------------------------------------------------------
// Transport supervisor: TCP/Unix sockets, pipelining, flow control.
// ---------------------------------------------------------------------------

using service::Transport;
using service::TransportOptions;
using service::TransportStats;

int tcp_connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Tests must fail visibly, not hang: bounded reads.
  timeval timeout{30, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  return fd;
}

int unix_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Blocking buffered line read; false on EOF/error/timeout.
bool read_line(int fd, std::string& buf, std::string& line) {
  for (;;) {
    const std::size_t newline = buf.find('\n');
    if (newline != std::string::npos) {
      line.assign(buf, 0, newline);
      buf.erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got > 0) {
      buf.append(chunk, static_cast<std::size_t>(got));
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    return false;
  }
}

bool send_all(int fd, const std::string& data) {
  return service::write_fully(fd, data);
}

std::size_t open_fd_count() {
  std::size_t count = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++count;
  }
  return count;
}

TEST(ServiceTransport, ParseHostportAcceptsValidRejectsMalformed) {
  std::string host;
  int port = -1;
  EXPECT_TRUE(service::parse_hostport("127.0.0.1:8080", host, port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  EXPECT_TRUE(service::parse_hostport("localhost:0", host, port));
  EXPECT_EQ(port, 0);
  EXPECT_FALSE(service::parse_hostport("no-port", host, port));
  EXPECT_FALSE(service::parse_hostport(":123", host, port));
  EXPECT_FALSE(service::parse_hostport("host:", host, port));
  EXPECT_FALSE(service::parse_hostport("host:abc", host, port));
  EXPECT_FALSE(service::parse_hostport("host:70000", host, port));
}

TEST(ServiceTransport, TcpConcurrentClientsGetByteIdenticalWarmReplies) {
  ServerOptions sopts;
  sopts.threads = 2;
  Server server(sopts);
  TransportOptions topts;
  topts.tcp_host = "127.0.0.1";
  Transport transport(server, topts);
  transport.listen_now();
  transport.start();

  const std::vector<std::uint64_t> seeds = {0, 42, 1234};
  std::map<std::uint64_t, std::string> expected;
  for (const std::uint64_t s : seeds) {
    expected[s] = server.handle_line(classify_line(s));  // prewarm
  }

  constexpr int kClients = 4;
  constexpr int kPerClient = 16;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = tcp_connect(transport.port());
      ASSERT_GE(fd, 0);
      std::string buf;
      std::string line;
      for (int i = 0; i < kPerClient; ++i) {
        const std::uint64_t seed =
            seeds[static_cast<std::size_t>((c + i) % seeds.size())];
        ASSERT_TRUE(send_all(fd, classify_line(seed) + "\n"));
        ASSERT_TRUE(read_line(fd, buf, line));
        if (line != expected[seed]) mismatches.fetch_add(1);
      }
      ::close(fd);
    });
  }
  for (auto& t : clients) t.join();
  transport.stop();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(transport.stats().accepted, static_cast<std::uint64_t>(kClients));
}

TEST(ServiceTransport, PipelinedRequestsComeBackInRequestOrder) {
  ServerOptions sopts;
  sopts.threads = 4;  // responses complete out of order server-side
  Server server(sopts);
  TransportOptions topts;
  topts.tcp_host = "127.0.0.1";
  topts.pipeline_depth = 8;  // smaller than the burst: window recycles
  Transport transport(server, topts);
  transport.listen_now();
  transport.start();

  constexpr int kBurst = 32;
  const std::vector<std::uint64_t> seeds = {0, 42, 1234, 98765};
  std::string batch;
  std::vector<std::string> expected;
  for (int i = 1; i <= kBurst; ++i) {
    const std::string line =
        "{\"type\":\"classify\",\"id\":" + std::to_string(i) +
        ",\"problem_seed\":" +
        std::to_string(seeds[static_cast<std::size_t>(i) % seeds.size()]) +
        "}";
    expected.push_back(server.handle_line(line));
    batch += line;
    batch += '\n';
  }

  const int fd = tcp_connect(transport.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(fd, batch));  // the whole burst in one write
  std::string buf;
  std::string line;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(read_line(fd, buf, line)) << "response " << i;
    EXPECT_EQ(line, expected[static_cast<std::size_t>(i)])
        << "response " << i << " out of order";
  }
  ::close(fd);
  transport.stop();
  EXPECT_EQ(transport.stats().lines_in, static_cast<std::uint64_t>(kBurst));
}

TEST(ServiceTransport, WriteBacklogStallsReadsAndResumes) {
  ServerOptions sopts;
  sopts.threads = 2;
  Server server(sopts);
  TransportOptions topts;
  topts.tcp_host = "127.0.0.1";
  topts.pipeline_depth = 64;
  topts.max_backlog_bytes = 256;  // tiny: one warm reply overflows it
  topts.sndbuf_bytes = 1;         // clamped to the kernel minimum
  topts.poll_ms = 20;
  Transport transport(server, topts);
  transport.listen_now();
  transport.start();

  const std::string request = classify_line(42);
  const std::string expected = server.handle_line(request);  // prewarm

  // Pipeline a burst whose responses exceed what the shrunken kernel
  // buffers can absorb, then refuse to read for a while: the supervisor
  // must park the connection (bounded backlog, reads paused) instead of
  // buffering every rendered response.
  constexpr int kBurst = 64;
  std::string batch;
  for (int i = 0; i < kBurst; ++i) batch += request + "\n";
  const int fd = tcp_connect(transport.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(fd, batch));
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  const TransportStats stalled = transport.stats();
  EXPECT_GE(stalled.read_pauses, 1u) << "reads never paused";
  EXPECT_LE(stalled.peak_backlog_bytes,
            topts.max_backlog_bytes + expected.size() + 1)
      << "backlog not bounded";

  // Drain: every response arrives, byte-identical, and the connection
  // resumes for a follow-up request.
  std::string buf;
  std::string line;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(read_line(fd, buf, line)) << "response " << i;
    EXPECT_EQ(line, expected);
  }
  ASSERT_TRUE(send_all(fd, request + "\n"));
  ASSERT_TRUE(read_line(fd, buf, line));
  EXPECT_EQ(line, expected);
  ::close(fd);
  transport.stop();
  EXPECT_EQ(transport.stats().responses_out,
            static_cast<std::uint64_t>(kBurst + 1));
}

TEST(ServiceTransport, MaxConnsRejectsExtraConnectionsWithTypedError) {
  ServerOptions sopts;
  sopts.threads = 1;
  Server server(sopts);
  TransportOptions topts;
  topts.tcp_host = "127.0.0.1";
  topts.max_conns = 2;
  topts.poll_ms = 20;
  Transport transport(server, topts);
  transport.listen_now();
  transport.start();

  const std::string request = classify_line(0);
  const std::string expected = server.handle_line(request);

  // Two resident connections, both verified live.
  int held[2];
  std::string bufs[2];
  std::string line;
  for (int i = 0; i < 2; ++i) {
    held[i] = tcp_connect(transport.port());
    ASSERT_GE(held[i], 0);
    ASSERT_TRUE(send_all(held[i], request + "\n"));
    ASSERT_TRUE(read_line(held[i], bufs[i], line));
    EXPECT_EQ(line, expected);
  }

  // The third is answered with one `overloaded` line and closed.
  const int extra = tcp_connect(transport.port());
  ASSERT_GE(extra, 0);
  std::string extra_buf;
  ASSERT_TRUE(read_line(extra, extra_buf, line));
  const Value rejected = parse(line);
  EXPECT_FALSE(rejected.get_bool("ok", true));
  EXPECT_EQ(rejected.get_string("error", ""), "overloaded");
  char byte;
  EXPECT_EQ(::recv(extra, &byte, 1, 0), 0) << "rejected conn not closed";
  ::close(extra);

  // Freeing a slot re-opens admission.
  ::close(held[0]);
  bool admitted = false;
  for (int attempt = 0; attempt < 100 && !admitted; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const int fd = tcp_connect(transport.port());
    ASSERT_GE(fd, 0);
    std::string buf;
    ASSERT_TRUE(send_all(fd, request + "\n"));
    ASSERT_TRUE(read_line(fd, buf, line));
    if (parse(line).get_bool("ok", false)) {
      EXPECT_EQ(line, expected);
      admitted = true;
    }
    ::close(fd);
  }
  EXPECT_TRUE(admitted) << "slot never freed after close";
  ::close(held[1]);
  transport.stop();
  EXPECT_GE(transport.stats().rejected_at_capacity, 1u);
}

TEST(ServiceTransport, FinalLineWithoutTrailingNewlineIsServedAtEof) {
  // Regression: the pre-supervisor loop silently dropped a final
  // request that arrived without '\n' before EOF.
  ServerOptions sopts;
  sopts.threads = 1;
  Server server(sopts);
  TransportOptions topts;
  topts.tcp_host = "127.0.0.1";
  Transport transport(server, topts);
  transport.listen_now();
  transport.start();

  const std::string request = classify_line(42);
  const std::string expected = server.handle_line(request);

  const int fd = tcp_connect(transport.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(fd, request));  // no trailing newline
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  std::string buf;
  std::string line;
  ASSERT_TRUE(read_line(fd, buf, line)) << "residual line dropped at EOF";
  EXPECT_EQ(line, expected);
  EXPECT_FALSE(read_line(fd, buf, line));  // then EOF
  ::close(fd);

  // Mixed form: complete lines plus an unterminated final one.
  const int fd2 = tcp_connect(transport.port());
  ASSERT_GE(fd2, 0);
  ASSERT_TRUE(send_all(fd2, request + "\n" + request));
  ASSERT_EQ(::shutdown(fd2, SHUT_WR), 0);
  std::string buf2;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(read_line(fd2, buf2, line)) << "response " << i;
    EXPECT_EQ(line, expected);
  }
  ::close(fd2);
  transport.stop();
}

TEST(ServiceTransport, ClientVanishingMidReplyDoesNotKillTheDaemon) {
  // Regression for the SIGPIPE hole: a client that disconnects before
  // its response is written must cost only its own connection. Without
  // MSG_NOSIGNAL the daemon thread would take SIGPIPE (default: process
  // death — this test dies with it).
  ServerOptions sopts;
  sopts.threads = 2;
  Server server(sopts);
  TransportOptions topts;
  topts.tcp_host = "127.0.0.1";
  topts.poll_ms = 20;
  Transport transport(server, topts);
  transport.listen_now();
  transport.start();

  const std::string request = classify_line(42);
  const std::string expected = server.handle_line(request);

  for (int i = 0; i < 16; ++i) {
    const int fd = tcp_connect(transport.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(send_all(fd, request + "\n" + request + "\n"));
    ::close(fd);  // vanish before reading either response
  }

  // The daemon is still alive and serving.
  const int fd = tcp_connect(transport.port());
  ASSERT_GE(fd, 0);
  std::string buf;
  std::string line;
  ASSERT_TRUE(send_all(fd, request + "\n"));
  ASSERT_TRUE(read_line(fd, buf, line));
  EXPECT_EQ(line, expected);
  ::close(fd);
  transport.stop();
}

TEST(ServiceTransport, ConnectionChurnKeepsResourcesBounded) {
  // Regression for the unreaped thread-per-connection vector: a
  // long-lived daemon serving many short connections must not
  // accumulate per-connection resources. The supervisor owns no
  // threads, so the bound is file descriptors.
  ServerOptions sopts;
  sopts.threads = 1;
  Server server(sopts);
  TransportOptions topts;
  topts.tcp_host = "127.0.0.1";
  topts.poll_ms = 20;
  Transport transport(server, topts);
  transport.listen_now();
  transport.start();

  const std::string request = classify_line(0);
  const std::string expected = server.handle_line(request);

  constexpr int kChurn = 1500;
  const std::size_t fds_before = open_fd_count();
  std::string line;
  for (int i = 0; i < kChurn; ++i) {
    const int fd = tcp_connect(transport.port());
    ASSERT_GE(fd, 0) << "connect " << i;
    std::string buf;
    ASSERT_TRUE(send_all(fd, request + "\n"));
    ASSERT_TRUE(read_line(fd, buf, line)) << "connection " << i;
    ASSERT_EQ(line, expected);
    ::close(fd);
  }
  // Give the supervisor a tick to reap the last EOFs.
  for (int i = 0; i < 100 && transport.stats().open_conns > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const TransportStats ts = transport.stats();
  EXPECT_EQ(ts.accepted, static_cast<std::uint64_t>(kChurn));
  EXPECT_EQ(ts.open_conns, 0u);
  EXPECT_LE(ts.peak_conns, 4u);  // sequential clients never pile up
  const std::size_t fds_after = open_fd_count();
  EXPECT_LE(fds_after, fds_before + 4) << "fd leak across churn";
  transport.stop();
}

TEST(ServiceTransport, UnixSocketRepliesMatchTcpByteForByte) {
  // One server, both transports: the response bytes are a function of
  // the request alone, never of the transport that carried it.
  ServerOptions sopts;
  sopts.threads = 2;
  Server server(sopts);
  const std::string socket_path = "test_service_transport.sock";
  TransportOptions uopts;
  uopts.unix_path = socket_path;
  Transport unix_transport(server, uopts);
  unix_transport.listen_now();
  unix_transport.start();
  TransportOptions topts;
  topts.tcp_host = "127.0.0.1";
  Transport tcp_transport(server, topts);
  tcp_transport.listen_now();
  tcp_transport.start();

  const std::vector<std::uint64_t> seeds = {0, 42, 1234};
  for (const std::uint64_t seed : seeds) {
    const std::string request = classify_line(seed);
    const std::string inproc = server.handle_line(request);

    const int ufd = unix_connect(socket_path);
    ASSERT_GE(ufd, 0);
    std::string ubuf;
    std::string uline;
    ASSERT_TRUE(send_all(ufd, request + "\n"));
    ASSERT_TRUE(read_line(ufd, ubuf, uline));
    ::close(ufd);

    const int tfd = tcp_connect(tcp_transport.port());
    ASSERT_GE(tfd, 0);
    std::string tbuf;
    std::string tline;
    ASSERT_TRUE(send_all(tfd, request + "\n"));
    ASSERT_TRUE(read_line(tfd, tbuf, tline));
    ::close(tfd);

    EXPECT_EQ(uline, inproc) << "unix reply diverges, seed " << seed;
    EXPECT_EQ(tline, inproc) << "tcp reply diverges, seed " << seed;
  }
  unix_transport.stop();
  tcp_transport.stop();
  std::filesystem::remove(socket_path);
}

TEST(ServiceTransport, OversizedUnframedLineIsRejectedNotBuffered) {
  ServerOptions sopts;
  sopts.threads = 1;
  Server server(sopts);
  TransportOptions topts;
  topts.tcp_host = "127.0.0.1";
  topts.poll_ms = 20;
  Transport transport(server, topts);
  transport.listen_now();
  transport.start();

  const int fd = tcp_connect(transport.port());
  ASSERT_GE(fd, 0);
  // Stream > kMaxLineBytes with no newline: typed rejection, then EOF.
  const std::string blob(1 << 16, 'x');
  bool write_ok = true;
  for (std::size_t sent = 0; sent <= service::kMaxLineBytes && write_ok;
       sent += blob.size()) {
    write_ok = send_all(fd, blob);
  }
  std::string buf;
  std::string line;
  ASSERT_TRUE(read_line(fd, buf, line));
  const Value v = parse(line);
  EXPECT_FALSE(v.get_bool("ok", true));
  EXPECT_EQ(v.get_string("error", ""), "bad_request");
  ::close(fd);
  transport.stop();
}

// ---------------------------------------------------------------------------
// I/O helpers: the EINTR regression.
// ---------------------------------------------------------------------------

namespace eintr_test {
std::atomic<int> signals_taken{0};
void on_usr1(int) { signals_taken.fetch_add(1); }
}  // namespace eintr_test

TEST(ServiceIo, WriteFullyRetriesAcrossEintr) {
  // Regression: the pre-supervisor `write_all` treated any `got <= 0`
  // as fatal, so an EINTR — e.g. from the daemon's own SIGTERM-drain
  // signal — dropped the connection mid-response. `write_fully` must
  // ride out interrupts and deliver every byte.
  //
  // Install a no-SA_RESTART handler so blocked writes really do return
  // EINTR, then pepper a writer blocked on a full socket with signals
  // while the reader drains slowly.
  struct sigaction sa{};
  sa.sa_handler = eintr_test::on_usr1;
  sa.sa_flags = 0;  // no SA_RESTART: syscalls fail with EINTR
  sigemptyset(&sa.sa_mask);
  struct sigaction old{};
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int min_buf = 1;  // clamped up to the kernel minimum
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &min_buf, sizeof(min_buf));

  std::string blob(1 << 20, '\0');
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<char>('a' + (i % 26));
  }

  std::atomic<bool> write_ok{false};
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    write_ok.store(service::write_fully(fds[0], blob));
    writer_done.store(true);
  });
  const pthread_t writer_handle = writer.native_handle();

  std::string received;
  received.reserve(blob.size());
  char chunk[1024];  // small reads keep the writer blocked often
  eintr_test::signals_taken.store(0);
  while (received.size() < blob.size()) {
    if (!writer_done.load()) pthread_kill(writer_handle, SIGUSR1);
    const ssize_t got = ::recv(fds[1], chunk, sizeof(chunk), 0);
    ASSERT_GT(got, 0) << "writer hung up early";
    received.append(chunk, static_cast<std::size_t>(got));
  }
  writer.join();
  ::close(fds[0]);
  ::close(fds[1]);
  sigaction(SIGUSR1, &old, nullptr);

  EXPECT_TRUE(write_ok.load()) << "write_fully failed under EINTR";
  EXPECT_EQ(received, blob) << "bytes lost or reordered across EINTR";
  EXPECT_GT(eintr_test::signals_taken.load(), 0)
      << "test never actually interrupted the writer";
}

TEST(ServiceIo, WriteFullyReportsRealErrors) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);
  // Writing into a closed peer: EPIPE, no SIGPIPE, clean false.
  std::string data(1 << 16, 'x');
  bool ok = true;
  for (int i = 0; i < 8 && ok; ++i) ok = service::write_fully(fds[0], data);
  EXPECT_FALSE(ok);
  ::close(fds[0]);
}

}  // namespace
}  // namespace lcl
