// Service-layer suite: the ProblemCache contract (sharded LRU,
// byte-budget eviction, counters), the protocol's typed error taxonomy,
// the admission queue's backpressure and timeout behavior, and the
// cache-hit determinism contract — identical requests produce
// byte-identical responses regardless of thread interleaving (the
// response carries no per-request state beyond the echoed id, and warm
// hits replay the cold response's stored bytes).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/json.hpp"
#include "problems/lclgen.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace lcl {
namespace {

using core::json::Value;
using problems::BwTable;
using service::CacheStats;
using service::ProblemCache;
using service::Server;
using service::ServerOptions;

Value parse(const std::string& response) {
  return core::json::parse(response);
}

std::string classify_line(std::uint64_t seed) {
  return "{\"type\":\"classify\",\"problem_seed\":" +
         std::to_string(seed) + "}";
}

// ---------------------------------------------------------------------------
// ProblemCache.
// ---------------------------------------------------------------------------

TEST(ProblemCache, CountsHitsAndMisses) {
  ProblemCache cache(1 << 20);
  const BwTable t = problems::sample_table(7);
  const auto cold = cache.get_or_compute(t);
  const auto warm = cache.get_or_compute(t);
  ASSERT_NE(cold, nullptr);
  EXPECT_EQ(cold.get(), warm.get());  // same resident entry
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.bytes, 0u);
}

TEST(ProblemCache, PermutedAndPaddedTablesShareOneEntry) {
  ProblemCache cache(1 << 20);
  const BwTable t = problems::edge_coloring_table(3, 3);
  const auto base = cache.get_or_compute(t);
  const auto permuted =
      cache.get_or_compute(problems::permute_table(t, {2, 0, 1}));
  const auto padded = cache.get_or_compute(problems::pad_table(t, 1));
  EXPECT_EQ(base.get(), permuted.get());
  EXPECT_EQ(base.get(), padded.get());
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 2u);
}

TEST(ProblemCache, EvictsLeastRecentlyUsedPastByteBudget) {
  // A one-byte budget on a single shard: every insert displaces the
  // previous resident (an oversized singleton stays until displaced).
  ProblemCache cache(1, /*shards=*/1);
  const std::vector<BwTable> tables = problems::sample_problems(1, 6);
  ASSERT_GE(tables.size(), 3u);
  std::vector<std::string> keys;
  for (const BwTable& t : tables) {
    keys.push_back(cache.get_or_compute(t)->key);
  }
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.evictions, tables.size() - 1);
  // Only the most recent key is resident.
  EXPECT_EQ(cache.lookup(keys.front()), nullptr);
  EXPECT_NE(cache.lookup(keys.back()), nullptr);
}

TEST(ProblemCache, EvictionOrderFollowsTouchRecencyNotInsertion) {
  // Synthetic entries with pinned byte costs make the order exact: a
  // budget of 100 holds two 40-byte entries; touching "a" makes "b"
  // the LRU victim when "c" arrives.
  const auto make = [](const std::string& key, std::size_t bytes) {
    auto e = std::make_shared<service::CacheEntry>();
    e->key = key;
    e->bytes = bytes;
    return e;
  };
  ProblemCache cache(100, /*shards=*/1);
  cache.insert(make("a", 40));
  cache.insert(make("b", 40));
  ASSERT_NE(cache.lookup("a"), nullptr);  // refresh: "b" is now LRU
  cache.insert(make("c", 40));
  EXPECT_NE(cache.lookup("a"), nullptr);
  EXPECT_EQ(cache.lookup("b"), nullptr);
  EXPECT_NE(cache.lookup("c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

// ---------------------------------------------------------------------------
// Protocol errors.
// ---------------------------------------------------------------------------

TEST(ServiceProtocol, MalformedJsonIsBadJson) {
  Server server(ServerOptions{});
  const Value v = parse(server.handle_line("this is not json"));
  EXPECT_FALSE(v.get_bool("ok", true));
  EXPECT_EQ(v.get_string("error", ""), "bad_json");
}

TEST(ServiceProtocol, UnknownTypeIsTyped) {
  Server server(ServerOptions{});
  const Value v =
      parse(server.handle_line("{\"type\":\"frobnicate\",\"id\":4}"));
  EXPECT_FALSE(v.get_bool("ok", true));
  EXPECT_EQ(v.get_string("error", ""), "unknown_type");
  EXPECT_EQ(v.get_number("id", -1), 4);  // id echoed on errors too
}

TEST(ServiceProtocol, ClassifyNeedsExactlyOneSelector) {
  Server server(ServerOptions{});
  EXPECT_EQ(parse(server.handle_line("{\"type\":\"classify\"}"))
                .get_string("error", ""),
            "bad_request");
  EXPECT_EQ(parse(server.handle_line(
                      "{\"type\":\"classify\",\"problem_seed\":1,"
                      "\"problem\":\"free\"}"))
                .get_string("error", ""),
            "bad_request");
}

TEST(ServiceProtocol, OversizedTableIsRejected) {
  Server server(ServerOptions{});
  const Value v = parse(server.handle_line(
      "{\"type\":\"classify\",\"table\":{\"alphabet\":9,"
      "\"max_degree\":3,\"allowed\":[1,1,1]}}"));
  EXPECT_EQ(v.get_string("error", ""), "oversized_table");
  const Value deep = parse(server.handle_line(
      "{\"type\":\"classify\",\"table\":{\"alphabet\":2,"
      "\"max_degree\":9,\"allowed\":[1,1,1,1,1,1,1,1,1]}}"));
  EXPECT_EQ(deep.get_string("error", ""), "oversized_table");
}

TEST(ServiceProtocol, StrayMaskBitsAreBadRequest) {
  Server server(ServerOptions{});
  // Degree-1 over alphabet 2 has exactly 2 multisets; bit 2 is invalid.
  const Value v = parse(server.handle_line(
      "{\"type\":\"classify\",\"table\":{\"alphabet\":2,"
      "\"max_degree\":1,\"allowed\":[4]}}"));
  EXPECT_EQ(v.get_string("error", ""), "bad_request");
}

TEST(ServiceProtocol, UnknownSolverAndFamilyAreTyped) {
  Server server(ServerOptions{});
  EXPECT_EQ(parse(server.handle_line(
                      "{\"type\":\"solve\",\"solver\":\"nope\"}"))
                .get_string("error", ""),
            "unknown_solver");
  EXPECT_EQ(parse(server.handle_line(
                      "{\"type\":\"solve\",\"family\":\"nope\"}"))
                .get_string("error", ""),
            "unknown_family");
}

TEST(ServiceProtocol, UndeclaredSolverOptionIsBadRequest) {
  Server server(ServerOptions{});
  const Value v = parse(server.handle_line(
      "{\"type\":\"solve\",\"problem_seed\":0,\"n\":64,"
      "\"options\":{\"frob\":3}}"));
  EXPECT_EQ(v.get_string("error", ""), "bad_request");
}

TEST(ServiceProtocol, IdIsEchoedWhenPresentAndOmittedWhenNot) {
  Server server(ServerOptions{});
  const std::string with_id =
      server.handle_line("{\"type\":\"info\",\"id\":123}");
  EXPECT_EQ(with_id.rfind("{\"id\":123,", 0), 0u);
  const std::string without_id = server.handle_line("{\"type\":\"info\"}");
  EXPECT_EQ(without_id.rfind("{\"ok\":true", 0), 0u);
}

// ---------------------------------------------------------------------------
// Round trips.
// ---------------------------------------------------------------------------

TEST(ServiceRoundTrip, RepeatedClassifyIsServedFromCacheByteIdentical) {
  Server server(ServerOptions{});
  const std::string line =
      "{\"type\":\"classify\",\"id\":1,\"problem_seed\":42}";
  const std::string cold = server.handle_line(line);
  const std::uint64_t hits_before = server.cache().stats().hits;
  const std::string warm = server.handle_line(line);
  EXPECT_EQ(cold, warm);  // byte-identical, id included
  EXPECT_EQ(server.cache().stats().hits, hits_before + 1);

  const Value v = parse(cold);
  EXPECT_TRUE(v.get_bool("ok", false));
  EXPECT_EQ(v.get_string("type", ""), "classify");
  EXPECT_FALSE(v.get_string("key", "").empty());
  const std::string predicted = v.get_string("predicted", "");
  EXPECT_TRUE(predicted == "O(1)" || predicted == "log*-range" ||
              predicted == "Theta(log n)" || predicted == "unsolvable")
      << predicted;
  ASSERT_NE(v.find("region"), nullptr);
  EXPECT_FALSE(v.find("region")->get_string("range", "").empty());
}

TEST(ServiceRoundTrip, NamedProblemClassifies) {
  Server server(ServerOptions{});
  const Value v = parse(server.handle_line(
      "{\"type\":\"classify\",\"problem\":\"edge_coloring\"}"));
  EXPECT_TRUE(v.get_bool("ok", false));
  EXPECT_EQ(parse(server.handle_line(
                      "{\"type\":\"classify\",\"problem\":\"nope\"}"))
                .get_string("error", ""),
            "bad_request");
}

TEST(ServiceRoundTrip, SolveRunsAndCertifies) {
  Server server(ServerOptions{});
  const Value v = parse(server.handle_line(
      "{\"type\":\"solve\",\"id\":9,\"problem_seed\":0,"
      "\"solver\":\"bw_generic\",\"family\":\"path\",\"n\":256,"
      "\"seed\":3}"));
  EXPECT_TRUE(v.get_bool("ok", false));
  EXPECT_EQ(v.get_string("type", ""), "solve");
  EXPECT_EQ(v.get_string("status", ""), "ok");
  EXPECT_TRUE(v.get_bool("certified", false));
  EXPECT_EQ(v.get_number("n", 0), 256);
  EXPECT_FALSE(v.get_string("key", "").empty());
  EXPECT_GE(v.get_number("term_p99", -1), 0);
  // The solve warmed the problem cache: the matching classify hits.
  const std::uint64_t hits_before = server.cache().stats().hits;
  (void)server.handle_line(classify_line(0));
  EXPECT_EQ(server.cache().stats().hits, hits_before + 1);
}

TEST(ServiceRoundTrip, InfoReportsCounters) {
  Server server(ServerOptions{});
  (void)server.handle_line(classify_line(42));
  (void)server.handle_line(classify_line(42));
  const Value v = parse(server.handle_line("{\"type\":\"info\"}"));
  EXPECT_TRUE(v.get_bool("ok", false));
  EXPECT_EQ(v.get_string("type", ""), "info");
  EXPECT_GE(v.get_number("uptime_ms", -1), 0.0);
  EXPECT_EQ(v.get_number("cache_hits", -1), 1);
  EXPECT_EQ(v.get_number("cache_misses", -1), 1);
  EXPECT_EQ(v.get_number("cache_entries", -1), 1);
  EXPECT_GE(v.get_number("threads", 0), 1);
}

// ---------------------------------------------------------------------------
// Admission queue: backpressure, timeout, drain.
// ---------------------------------------------------------------------------

TEST(ServiceQueue, RejectsBeyondMaxQueueWithOverloaded) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};

  ServerOptions opts;
  opts.threads = 1;
  opts.max_queue = 1;
  opts.before_execute = [&] {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  Server server(opts);

  // First request: dequeued by the only worker, parked in the hook.
  auto first = server.submit(classify_line(1));
  while (entered.load() == 0) std::this_thread::yield();
  // Second request: fills the queue (depth 1).
  auto second = server.submit(classify_line(2));
  // Third: over the depth — rejected immediately, without blocking.
  auto third = server.submit(classify_line(3));
  ASSERT_EQ(third.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const Value rejected = parse(third.get());
  EXPECT_FALSE(rejected.get_bool("ok", true));
  EXPECT_EQ(rejected.get_string("error", ""), "overloaded");

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_TRUE(parse(first.get()).get_bool("ok", false));
  EXPECT_TRUE(parse(second.get()).get_bool("ok", false));
}

TEST(ServiceQueue, ZeroTimeoutExpiresEveryQueuedRequest) {
  ServerOptions opts;
  opts.threads = 1;
  opts.timeout_ms = 0.0;  // expired the moment a worker dequeues it
  Server server(opts);
  const Value v = parse(server.submit(classify_line(1)).get());
  EXPECT_FALSE(v.get_bool("ok", true));
  EXPECT_EQ(v.get_string("error", ""), "timeout");
}

TEST(ServiceQueue, DrainStopsAdmissionAndFinishesQueuedWork) {
  ServerOptions opts;
  opts.threads = 2;
  Server server(opts);
  auto pending = server.submit(classify_line(5));
  server.drain();
  EXPECT_TRUE(parse(pending.get()).get_bool("ok", false));
  const Value after = parse(server.submit(classify_line(6)).get());
  EXPECT_EQ(after.get_string("error", ""), "overloaded");
}

// ---------------------------------------------------------------------------
// Concurrency: cache-hit determinism under interleaving.
// ---------------------------------------------------------------------------

TEST(ServiceHammer, IdenticalRequestsGetByteIdenticalResponses) {
  ServerOptions opts;
  opts.threads = 4;
  opts.max_queue = 4096;
  Server server(opts);

  // Four distinct problems, hammered by eight clients through both
  // entry points. Identical request lines (no id) must produce
  // byte-identical responses no matter which thread computed the cold
  // entry or how lookups interleaved with evict-free inserts.
  const std::vector<std::uint64_t> seeds = {0, 42, 1234, 98765};
  constexpr int kClients = 8;
  constexpr int kPerClient = 32;

  std::vector<std::vector<std::string>> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const std::uint64_t seed =
            seeds[static_cast<std::size_t>((c + i) % 4)];
        const std::string line = classify_line(seed);
        std::string response = (c + i) % 2 == 0
                                   ? server.handle_line(line)
                                   : server.submit(line).get();
        responses[static_cast<std::size_t>(c)].push_back(
            std::move(response));
      }
    });
  }
  for (auto& t : clients) t.join();

  // Group by the request that produced each response (reconstructable
  // from the deterministic (c, i) schedule) and assert equality.
  std::map<std::uint64_t, std::string> canonical;
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPerClient; ++i) {
      const std::uint64_t seed =
          seeds[static_cast<std::size_t>((c + i) % 4)];
      const std::string& got =
          responses[static_cast<std::size_t>(c)][static_cast<std::size_t>(
              i)];
      auto [it, inserted] = canonical.emplace(seed, got);
      if (!inserted) {
        ASSERT_EQ(got, it->second) << "seed " << seed;
      }
    }
  }

  const CacheStats s = server.cache().stats();
  EXPECT_GT(s.hits, 0u);
  EXPECT_EQ(s.hits + s.misses,
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(s.entries, seeds.size());
}

}  // namespace
}  // namespace lcl
