// Quickstart: build a tree, run a distributed LCL algorithm on the LOCAL
// simulator, verify the output with an independent checker, and read off
// the node-averaged complexity.
//
//   $ ./examples/quickstart
//
// This walks the three core moves of the library:
//   1. graph::make_* builders create instances (here: the Figure-3
//      lower-bound tree for 2-hierarchical 3.5-coloring);
//   2. algo::run_generic executes the Section-4.1 generic algorithm in
//      the synchronous LOCAL engine, recording per-node termination
//      rounds;
//   3. problems::check_hierarchical_coloring validates the labeling
//      against Definition 9, and RunStats reports worst-case vs
//      node-averaged rounds — the quantity this paper classifies.
#include <cstdio>

#include "algo/generic_hier.hpp"
#include "graph/builders.hpp"
#include "problems/checkers.hpp"
#include "problems/labels.hpp"

int main() {
  using namespace lcl;

  // A 2-hierarchical lower-bound tree: a level-2 path of 60 nodes, each
  // carrying a level-1 path of 8 nodes (Figure 3 of the paper).
  const auto instance = graph::make_hierarchical_lower_bound({8, 60});
  graph::Tree tree = instance.tree;
  graph::assign_ids(tree, graph::IdScheme::kShuffled, /*seed=*/2024);
  std::printf("instance: %d nodes, max degree %d\n", tree.size(),
              tree.max_degree());

  // Run the generic algorithm for k-hierarchical 3.5-coloring with
  // gamma_1 = 8: level-1 paths are exactly at the Decline threshold, so
  // they all decline and the level-2 path 3-colors via Cole-Vishkin.
  algo::GenericOptions options;
  options.variant = problems::Variant::kThreeHalf;
  options.k = 2;
  options.gammas = {8};
  const local::RunStats stats = algo::run_generic(tree, options);

  // Validate with the independent Definition-9 checker.
  const auto verdict = problems::check_hierarchical_coloring(
      tree, options.k, options.variant, stats.primaries());
  std::printf("valid solution: %s\n",
              verdict.ok ? "yes" : verdict.reason.c_str());

  // Worst-case vs node-averaged: the paper's subject matter.
  std::printf("worst-case rounds:   %lld\n",
              static_cast<long long>(stats.worst_case));
  std::printf("node-averaged:       %.2f\n", stats.node_averaged);
  std::printf("(most nodes decline after ~gamma_1 rounds; only the "
              "level-2 path pays the Theta(log* n) coloring)\n");

  // Peek at a few outputs.
  std::printf("first 10 outputs: ");
  for (graph::NodeId v = 0; v < 10 && v < tree.size(); ++v) {
    std::printf("%s ",
                problems::to_string(
                    static_cast<problems::Color>(
                        stats.output[static_cast<std::size_t>(v)].primary))
                    .c_str());
  }
  std::printf("\n");
  return verdict.ok ? 0 : 1;
}
