// Quickstart: build a tree, pick a solver from the algorithm registry,
// run it on the LOCAL simulator, and read off the node-averaged
// complexity — the library's three moves in their idiomatic form.
//
//   $ ./examples/quickstart
//
//   1. graph::make_* builders (and the named families of
//      graph/families.hpp) create instances; here: the Figure-3
//      lower-bound tree for 2-hierarchical 3.5-coloring.
//   2. algo::solver("generic_hier_35") looks the Section-4.1 algorithm
//      up in the registry (`lclbench --list-algos` prints the full
//      catalog); algo::run_registered executes it in the synchronous
//      LOCAL engine and certifies the outputs with the problem's own
//      Definition-9 checker — one uniform call for every solver.
//   3. RunStats reports worst-case vs node-averaged rounds — the
//      quantity this paper classifies.
#include <cstdio>

#include "algo/registry.hpp"
#include "graph/builders.hpp"
#include "problems/labels.hpp"

int main() {
  using namespace lcl;

  // A 2-hierarchical lower-bound tree: a level-2 path of 60 nodes, each
  // carrying a level-1 path of 8 nodes (Figure 3 of the paper).
  const auto instance = graph::make_hierarchical_lower_bound({8, 60});
  graph::Tree tree = instance.tree;
  graph::assign_ids(tree, graph::IdScheme::kShuffled, /*seed=*/2024);
  std::printf("instance: %d nodes, max degree %d\n", tree.size(),
              tree.max_degree());

  // Pick the generic 3.5-coloring algorithm from the registry and set
  // its typed options: gamma_1 = 8 puts the level-1 paths exactly at
  // the Decline threshold, so they all decline and the level-2 path
  // 3-colors via Cole-Vishkin. Out-of-range values fail loudly here —
  // try k=0.
  const algo::SolverSpec& spec = algo::solver("generic_hier_35");
  algo::SolverConfig config;
  config.set("k", 2);
  config.set("gammas", std::vector<std::int64_t>{8});

  // One call: validate options, build the program, run, certify.
  const algo::SolverRun run = algo::run_registered(spec, tree, config);
  std::printf("solver: %s (%s; predicted %s)\n", spec.name.c_str(),
              spec.theorem.c_str(), spec.complexity.c_str());
  std::printf("valid solution: %s\n",
              run.verdict.ok ? "yes" : run.verdict.reason.c_str());

  // Worst-case vs node-averaged: the paper's subject matter.
  std::printf("worst-case rounds:   %lld\n",
              static_cast<long long>(run.stats.worst_case));
  std::printf("node-averaged:       %.2f\n", run.stats.node_averaged);
  std::printf("(most nodes decline after ~gamma_1 rounds; only the "
              "level-2 path pays the Theta(log* n) coloring)\n");

  // Peek at a few outputs.
  std::printf("first 10 outputs: ");
  for (graph::NodeId v = 0; v < 10 && v < tree.size(); ++v) {
    std::printf(
        "%s ",
        problems::to_string(
            static_cast<problems::Color>(
                run.stats.output[static_cast<std::size_t>(v)].primary))
            .c_str());
  }
  std::printf("\n");
  return run.verdict.ok ? 0 : 1;
}
