// Example: decide whether an LCL has O(1) node-averaged complexity
// (Theorem 7's decision procedure) for a user-described path LCL.
//
// Describe a problem as labels + forbidden adjacent pairs; the tool runs
// the testing procedure (label-set exploration, Definitions 73/74) and
// the constant-good check (Definitions 77/80 via the Lemma-81 path
// classifier) and prints the verdict.
//
//   $ ./examples/decide_constant            # built-in zoo
//   $ ./examples/decide_constant 3 01,10,12,21,02,20
//     (alphabet size, comma-separated *allowed* adjacent pairs)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bw/constant_good.hpp"
#include "bw/path_lcl.hpp"

namespace {

using namespace lcl;

void analyze(const bw::PathLcl& lcl) {
  const auto cls = bw::classify(lcl);
  const auto verdict = bw::decide_constant_good(lcl);
  std::printf("problem %-22s worst-case %-15s", lcl.name.c_str(),
              bw::to_string(cls).c_str());
  std::printf(" constant-good=%-3s  node-averaged: %s\n",
              verdict.constant_good ? "yes" : "no",
              verdict.node_averaged_class.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lcl;

  if (argc == 3) {
    bw::PathLcl custom;
    custom.name = "custom";
    custom.alphabet = std::atoi(argv[1]);
    if (custom.alphabet < 1 || custom.alphabet > 16) {
      std::fprintf(stderr, "alphabet must be 1..16\n");
      return 2;
    }
    custom.adjacent.assign(static_cast<std::size_t>(custom.alphabet), 0);
    const std::string pairs = argv[2];
    for (std::size_t i = 0; i + 1 < pairs.size(); i += 3) {
      const int a = pairs[i] - '0';
      const int b = pairs[i + 1] - '0';
      if (a < 0 || a >= custom.alphabet || b < 0 || b >= custom.alphabet) {
        std::fprintf(stderr, "bad pair at offset %zu\n", i);
        return 2;
      }
      custom.adjacent[static_cast<std::size_t>(a)] |= (1u << b);
      custom.adjacent[static_cast<std::size_t>(b)] |= (1u << a);
    }
    custom.left_boundary = custom.right_boundary =
        static_cast<bw::LabelSet>((1u << custom.alphabet) - 1);
    analyze(custom);
    return 0;
  }

  std::printf("Theorem 7 decision procedure on the built-in zoo:\n\n");
  analyze(bw::make_free_lcl(2));
  analyze(bw::make_three_coloring_lcl());
  analyze(bw::make_two_coloring_lcl());
  analyze(bw::make_unsolvable_lcl());

  // A hand-rolled problem: 3 labels, label 2 is a "wildcard" compatible
  // with everything including itself — constant-good.
  bw::PathLcl wild;
  wild.name = "wildcard";
  wild.alphabet = 3;
  wild.adjacent = {0b110, 0b101, 0b111};
  wild.left_boundary = wild.right_boundary = 0b111;
  analyze(wild);

  std::printf("\nTry your own: decide_constant <alphabet> "
              "<allowed-pairs like 01,10,22>\n");
  return 0;
}
