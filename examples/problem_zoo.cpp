// A short tour of the problem generator and classifier: sample a few
// random black-white tree LCLs, predict their landscape rows, and solve
// one end to end on a random tree with the certified generic pipeline.
//
// Build & run:  ./build/problem_zoo
#include <cstdio>

#include "algo/bw_generic.hpp"
#include "graph/families.hpp"
#include "problems/classify.hpp"
#include "problems/lclgen.hpp"

int main() {
  using namespace lcl;

  std::printf("Sampled problems (base seed 7):\n");
  std::printf("  %-16s %-24s %-13s %s\n", "seed", "name", "predicted",
              "landscape row");
  const auto tables = problems::sample_problems(/*base_seed=*/7,
                                                /*count=*/8);
  for (const problems::BwTable& t : tables) {
    const problems::Classification c = problems::classify_table(t);
    std::printf("  %-16llu %-24.24s %-13s %s\n",
                static_cast<unsigned long long>(t.seed), t.name.c_str(),
                problems::to_string(c.predicted).c_str(),
                c.region.range.c_str());
  }

  // Solve the first sampled problem on a random delta-3 tree and check
  // the labeling with the independent checker.
  const problems::BwTable& table = tables.front();
  const graph::Tree tree =
      graph::make_family_instance("prufer", 400, /*seed=*/3, /*delta=*/3);
  const algo::BwGenericProgram program(tree, table);
  std::printf("\n%s on a 400-node prufer tree: mode %s\n",
              table.name.c_str(), algo::to_string(program.mode()));
  if (program.solved()) {
    const std::string err = bw::check_tree_bw(tree, table.to_problem(),
                                              program.edge_labels());
    std::printf("  independent checker: %s\n",
                err.empty() ? "accepted" : err.c_str());
  } else {
    std::printf("  no labeling exists: %s\n", program.failure().c_str());
  }

  std::printf("\nThe problem_sweep scenario does this at scale:\n"
              "  ./build/lclbench --run problem_sweep --problems 60\n");
  return 0;
}
