// Example: writing your own LOCAL algorithm against the engine API and
// making it a first-class citizen of the solver surface.
//
// Implements a tiny protocol — every node computes its distance to the
// nearest leaf — to show the Program / NodeCtx surface: registers,
// termination, synchronous semantics, and per-node round accounting.
// The program is then wrapped in an ad-hoc algo::SolverSpec (the same
// struct the built-in registry entries use: a factory and an
// independent certifier), so instances come from the named family
// registry and every run goes through the one uniform
// algo::run_registered call — no per-example wiring.
//
// Protocol: leaves publish 0 and terminate; every other node publishes
// 1 + min(neighbor values) and terminates as soon as that value is
// provably final (a value v is final once round >= v, because the wave
// from the nearest leaf advances one hop per round). Termination time =
// the answer itself, so the node-averaged complexity is the average
// leaf-distance — small on bushy trees, Theta(n) on paths. The same
// who-waits-longest structure is what the paper's weight gadgets
// amplify.
//
//   $ ./examples/simulator_tour
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "algo/registry.hpp"
#include "graph/families.hpp"
#include "graph/tree.hpp"
#include "local/engine.hpp"

namespace {

using namespace lcl;
using graph::NodeId;

constexpr std::int64_t kUnknown = -1;

// Register layout: [0] = current distance-to-nearest-leaf estimate
// (kUnknown until a wave arrives).
class NearestLeaf final : public local::Program {
 public:
  void on_init(local::NodeCtx& ctx) override {
    if (ctx.degree() <= 1) {
      ctx.publish({0});
      ctx.terminate(0);
      return;
    }
    ctx.publish({kUnknown});
  }

  void on_round(local::NodeCtx& ctx) override {
    std::int64_t best = kUnknown;
    for (int p = 0; p < ctx.degree(); ++p) {
      const local::RegView reg = ctx.peek(p);
      if (reg.empty() || reg[0] == kUnknown) continue;
      if (best == kUnknown || reg[0] < best) best = reg[0];
    }
    if (best == kUnknown) return;
    const std::int64_t mine = best + 1;
    ctx.publish({mine});
    // The wave from the nearest leaf travels one hop per round, so a
    // value of `mine` arriving by round `mine` is final.
    if (ctx.round() >= mine) ctx.terminate(static_cast<int>(mine));
  }
};

// Centralized reference the certifier grades against (a solver never
// checks its own homework).
std::vector<int> leaf_distances(const graph::Tree& t) {
  std::vector<int> dist(static_cast<std::size_t>(t.size()), -1);
  std::vector<NodeId> frontier;
  for (NodeId v = 0; v < t.size(); ++v) {
    if (t.degree(v) <= 1) {
      dist[static_cast<std::size_t>(v)] = 0;
      frontier.push_back(v);
    }
  }
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (NodeId v : frontier) {
      for (NodeId u : t.neighbors(v)) {
        if (dist[static_cast<std::size_t>(u)] < 0) {
          dist[static_cast<std::size_t>(u)] =
              dist[static_cast<std::size_t>(v)] + 1;
          next.push_back(u);
        }
      }
    }
    frontier = std::move(next);
  }
  return dist;
}

/// A custom program becomes sweepable by filling the same SolverSpec the
/// built-in registry entries use.
algo::SolverSpec nearest_leaf_spec() {
  algo::SolverSpec s;
  s.name = "nearest_leaf";
  s.summary = "distance to the nearest leaf (tour demo)";
  s.problem = "leaf-distance labeling";
  s.factory = [](const graph::Tree& tree, const algo::SolverConfig&) {
    (void)tree;
    return std::make_unique<NearestLeaf>();
  };
  s.certify = [](const graph::Tree& tree, const local::Program&,
                 const local::RunStats& stats, const algo::SolverConfig&) {
    const auto reference = leaf_distances(tree);
    for (NodeId v = 0; v < tree.size(); ++v) {
      if (stats.output[static_cast<std::size_t>(v)].primary !=
          reference[static_cast<std::size_t>(v)]) {
        return problems::CheckResult::fail("node " + std::to_string(v) +
                                           ": wrong leaf distance");
      }
    }
    return problems::CheckResult::pass();
  };
  s.compatible = [](const graph::Family& f) { return f.is_tree; };
  return s;
}

}  // namespace

int main() {
  const algo::SolverSpec spec = nearest_leaf_spec();
  // Instances by name from the family registry — the same axis every
  // scenario sweeps (lclbench --families).
  for (const std::string name :
       {"path", "caterpillar", "random_attach", "star"}) {
    graph::Tree t = graph::make_family_instance(
        name, name == "random_attach" ? 2000 : 401, /*seed=*/5);
    const algo::SolverRun run = algo::run_registered(spec, t, {});

    int max_depth = 0;
    for (NodeId v = 0; v < t.size(); ++v) {
      max_depth = std::max(
          max_depth, run.stats.output[static_cast<std::size_t>(v)].primary);
    }
    std::printf("%-12s n=%5d: max leaf-distance %3d, worst-case %4lld "
                "rounds, node-avg %7.2f, correct=%s\n",
                name.c_str(), t.size(), max_depth,
                static_cast<long long>(run.stats.worst_case),
                run.stats.node_averaged, run.verdict.ok ? "yes" : "NO");
  }
  std::printf("\nThe path's node-average is Theta(n) while the bushy\n"
              "trees finish in O(1) on average — the worst-case vs\n"
              "node-averaged gap this paper's landscape classifies.\n");
  return 0;
}
