// Example: dial in a target node-averaged complexity exponent.
//
// The paper's headline construction (Theorem 1): given a target interval
// (r1, r2) for the exponent c of Theta(n^c), Lemma 58 produces concrete
// gadget parameters (Delta, d, k) whose weighted problem
// Pi^{2.5}_{Delta,d,k} realizes an exponent inside the interval. This
// example runs the whole pipeline: parameter search, instance
// construction (Definition 25 / Figure 4), the A_poly solver, validity
// checking, and a two-point empirical scaling probe.
//
//   $ ./examples/weighted_landscape 0.35 0.40
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "algo/registry.hpp"
#include "core/exponents.hpp"
#include "core/experiment.hpp"
#include "graph/builders.hpp"

int main(int argc, char** argv) {
  using namespace lcl;

  double r1 = 0.35, r2 = 0.40;
  if (argc == 3) {
    r1 = std::atof(argv[1]);
    r2 = std::atof(argv[2]);
  }
  std::printf("target exponent interval: [%.3f, %.3f]\n", r1, r2);

  // Lemma 58 / Theorem 1: find (Delta, d, k) realizing an exponent
  // inside the interval.
  const core::DensityChoice choice = core::choose_poly_exponent(r1, r2);
  std::printf("chosen: Delta=%d d=%d k=%d -> x=%.4f, alpha1=%.4f\n",
              choice.params.delta, choice.params.d, choice.k,
              choice.params.x, choice.exponent);

  // Build two weighted-construction instances and measure the scaling.
  const auto alphas = core::alpha_profile_poly(choice.params.x, choice.k);
  double avg[2] = {0, 0};
  std::int64_t sizes[2] = {0, 0};
  const std::int64_t targets[2] = {30000, 120000};
  for (int i = 0; i < 2; ++i) {
    const auto ell = core::lower_bound_lengths(
        alphas, static_cast<double>(targets[i]), targets[i]);
    auto inst = graph::make_weighted_construction(ell, choice.params.delta);
    graph::assign_ids(inst.tree, graph::IdScheme::kShuffled, 7);

    algo::SolverConfig cfg;
    cfg.set("k", choice.k);
    cfg.set("d", choice.params.d);
    std::vector<std::int64_t> gammas;
    for (int j = 0; j + 1 < choice.k; ++j) {
      gammas.push_back(std::max<std::int64_t>(
          2, inst.skeleton_lengths[static_cast<std::size_t>(j)]));
    }
    cfg.set("gammas", std::move(gammas));
    const auto run =
        algo::run_registered(algo::solver("apoly"), inst.tree, cfg);
    std::printf("n=%7d: node-avg %8.2f  worst %6lld  valid=%s\n",
                inst.tree.size(), run.stats.node_averaged,
                static_cast<long long>(run.stats.worst_case),
                run.verdict.ok ? "yes" : run.verdict.reason.c_str());
    avg[i] = run.stats.node_averaged;
    sizes[i] = inst.tree.size();
  }

  const double measured =
      std::log(avg[1] / avg[0]) /
      std::log(static_cast<double>(sizes[1]) / sizes[0]);
  std::printf("two-point scaling exponent: %.3f (target %.3f; additive "
              "O(log n) terms bias small n downward)\n",
              measured, choice.exponent);
  return 0;
}
