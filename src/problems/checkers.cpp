#include "problems/checkers.hpp"

#include <algorithm>
#include <sstream>

#include "graph/builders.hpp"
#include "problems/levels.hpp"

namespace lcl::problems {

namespace {

std::string node_str(NodeId v) { return "node " + std::to_string(v); }

Color as_color(int raw) { return static_cast<Color>(raw); }

bool valid_color(int raw, Variant variant) {
  if (raw < 0) return false;
  if (variant == Variant::kTwoHalf) return raw <= static_cast<int>(Color::kD);
  return raw <= static_cast<int>(Color::kY);
}

}  // namespace

CheckResult check_hierarchical_coloring(const Tree& tree, int k,
                                        Variant variant,
                                        const std::vector<int>& outputs,
                                        std::vector<int> levels) {
  const NodeId n = tree.size();
  if (static_cast<NodeId>(outputs.size()) != n) {
    return CheckResult::fail("output vector size mismatch");
  }
  if (levels.empty()) levels = compute_levels(tree, k);

  auto lv = [&](NodeId v) { return levels[static_cast<std::size_t>(v)]; };
  auto out = [&](NodeId v) {
    return as_color(outputs[static_cast<std::size_t>(v)]);
  };

  for (NodeId v = 0; v < n; ++v) {
    if (!valid_color(outputs[static_cast<std::size_t>(v)], variant)) {
      return CheckResult::fail(node_str(v) + ": label out of alphabet");
    }
    const int level = lv(v);
    const Color c = out(v);

    // Level 1 cannot be Exempt.
    if (level == 1 && c == Color::kE) {
      return CheckResult::fail(node_str(v) + ": level-1 node labeled E");
    }
    // Level k+1 must be Exempt.
    if (level == k + 1 && c != Color::kE) {
      return CheckResult::fail(node_str(v) + ": level-(k+1) node not E");
    }

    // E iff adjacent lower-level node labeled W/B/E (levels 2..k);
    // level-k additionally requires no lower-level D neighbor.
    if (level >= 2 && level <= k) {
      bool lower_colored_or_e = false;
      bool lower_declined = false;
      for (NodeId u : tree.neighbors(v)) {
        if (lv(u) < level) {
          const Color cu = out(u);
          if (is_two_color(cu) || cu == Color::kE) lower_colored_or_e = true;
          if (cu == Color::kD) lower_declined = true;
        }
      }
      const bool e_allowed =
          lower_colored_or_e && !(level == k && lower_declined);
      if (c == Color::kE && !e_allowed) {
        return CheckResult::fail(node_str(v) + ": E without entitlement");
      }
      if (c != Color::kE && lower_colored_or_e &&
          !(level == k && lower_declined)) {
        return CheckResult::fail(node_str(v) +
                                 ": must be E (lower neighbor colored)");
      }
    }

    // W/B constraints on levels 1..k (2.5) resp. 1..k-1 plus separate
    // level-k rules (3.5).
    const bool wb_level =
        (variant == Variant::kTwoHalf) ? (level >= 1 && level <= k)
                                       : (level >= 1 && level <= k - 1);
    if (wb_level) {
      if (is_three_color(c)) {
        return CheckResult::fail(node_str(v) + ": R/G/Y below level k");
      }
      if (is_two_color(c)) {
        for (NodeId u : tree.neighbors(v)) {
          if (lv(u) != level) continue;
          const Color cu = out(u);
          if (cu == c || cu == Color::kD) {
            return CheckResult::fail(node_str(v) +
                                     ": W/B conflicts with same-level " +
                                     to_string(cu) + " neighbor");
          }
        }
      }
    }

    if (level == k) {
      if (c == Color::kD) {
        return CheckResult::fail(node_str(v) + ": level-k node labeled D");
      }
      if (variant == Variant::kThreeHalf) {
        if (is_two_color(c)) {
          return CheckResult::fail(node_str(v) +
                                   ": level-k W/B in 3.5-coloring");
        }
        if (is_three_color(c)) {
          for (NodeId u : tree.neighbors(v)) {
            if (lv(u) == level && out(u) == c) {
              return CheckResult::fail(node_str(v) +
                                       ": level-k 3-coloring conflict");
            }
          }
        }
      } else {
        // 2.5-coloring: the same-level W/B conflict check above applies.
      }
    }
  }
  return CheckResult::pass();
}

CheckResult check_weighted(const Tree& tree, int k, int d, Variant variant,
                           const std::vector<local::Output>& outputs) {
  const NodeId n = tree.size();
  if (static_cast<NodeId>(outputs.size()) != n) {
    return CheckResult::fail("output vector size mismatch");
  }
  auto is_active = [&](NodeId v) {
    return tree.input(v) == static_cast<int>(graph::WeightInput::kActive);
  };
  auto wout = [&](NodeId v) {
    return static_cast<WeightOut>(outputs[static_cast<std::size_t>(v)].primary);
  };

  // Property 1: active components satisfy k-hierarchical Z-coloring.
  std::vector<char> active_mask(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    active_mask[static_cast<std::size_t>(v)] = is_active(v) ? 1 : 0;
  }
  {
    // Check the induced active subgraph.
    std::vector<NodeId> from_sub;
    const Tree sub =
        graph::induced_subgraph(tree, active_mask, &from_sub);
    std::vector<int> sub_out(from_sub.size());
    for (std::size_t i = 0; i < from_sub.size(); ++i) {
      sub_out[i] = outputs[static_cast<std::size_t>(from_sub[i])].primary;
    }
    CheckResult inner =
        check_hierarchical_coloring(sub, k, variant, sub_out);
    if (!inner.ok) {
      return CheckResult::fail("active subgraph: " + inner.reason);
    }
  }

  for (NodeId v = 0; v < n; ++v) {
    if (is_active(v)) continue;
    const int raw = outputs[static_cast<std::size_t>(v)].primary;
    if (raw < 0 || raw > static_cast<int>(WeightOut::kCopy)) {
      return CheckResult::fail(node_str(v) + ": weight label out of range");
    }
    const WeightOut w = wout(v);

    bool has_active_neighbor = false;
    int declining_neighbors = 0;
    int connect_support = 0;  // active neighbors or Connect-ing weight nbrs
    for (NodeId u : tree.neighbors(v)) {
      if (is_active(u)) {
        has_active_neighbor = true;
        ++connect_support;
      } else {
        if (wout(u) == WeightOut::kDecline) ++declining_neighbors;
        if (wout(u) == WeightOut::kConnect) ++connect_support;
      }
    }

    // Property 2: weight node adjacent to an active node must not Decline.
    if (has_active_neighbor && w == WeightOut::kDecline) {
      return CheckResult::fail(node_str(v) +
                               ": Decline while adjacent to active node");
    }
    // Property 3: Connect needs >= 2 supporting neighbors.
    if (w == WeightOut::kConnect && connect_support < 2) {
      return CheckResult::fail(node_str(v) + ": Connect with support " +
                               std::to_string(connect_support));
    }
    // Property 4: Copy tolerates at most d declining neighbors.
    if (w == WeightOut::kCopy && declining_neighbors > d) {
      return CheckResult::fail(node_str(v) + ": Copy with " +
                               std::to_string(declining_neighbors) +
                               " > d Decline neighbors");
    }
    // Property 5: secondary output consistency for Copy nodes.
    if (w == WeightOut::kCopy) {
      const int sec = outputs[static_cast<std::size_t>(v)].secondary;
      if (!valid_color(sec, variant)) {
        return CheckResult::fail(node_str(v) + ": Copy without secondary");
      }
      if (has_active_neighbor) {
        bool matches = false;
        for (NodeId u : tree.neighbors(v)) {
          if (is_active(u) &&
              outputs[static_cast<std::size_t>(u)].primary == sec) {
            matches = true;
            break;
          }
        }
        if (!matches) {
          return CheckResult::fail(
              node_str(v) + ": secondary matches no active neighbor");
        }
      }
      for (NodeId u : tree.neighbors(v)) {
        if (!is_active(u) && wout(u) == WeightOut::kCopy &&
            outputs[static_cast<std::size_t>(u)].secondary != sec) {
          return CheckResult::fail(node_str(v) +
                                   ": adjacent Copy secondaries differ");
        }
      }
    }
  }
  return CheckResult::pass();
}

CheckResult check_dfree_weight(const Tree& tree, int d,
                               const std::vector<int>& outputs) {
  const NodeId n = tree.size();
  if (static_cast<NodeId>(outputs.size()) != n) {
    return CheckResult::fail("output vector size mismatch");
  }
  auto wout = [&](NodeId v) {
    return static_cast<WeightOut>(outputs[static_cast<std::size_t>(v)]);
  };
  auto is_a = [&](NodeId v) {
    return tree.input(v) == static_cast<int>(DFreeInput::kA);
  };

  for (NodeId v = 0; v < n; ++v) {
    const int raw = outputs[static_cast<std::size_t>(v)];
    if (raw < 0 || raw > static_cast<int>(WeightOut::kCopy)) {
      return CheckResult::fail(node_str(v) + ": label out of range");
    }
    const WeightOut w = wout(v);
    int connect_neighbors = 0;
    int decline_neighbors = 0;
    for (NodeId u : tree.neighbors(v)) {
      if (wout(u) == WeightOut::kConnect) ++connect_neighbors;
      if (wout(u) == WeightOut::kDecline) ++decline_neighbors;
    }
    // Property 1: Connect support (A nodes need 1, W nodes need 2).
    if (w == WeightOut::kConnect) {
      const int need = is_a(v) ? 1 : 2;
      if (connect_neighbors < need) {
        return CheckResult::fail(node_str(v) + ": Connect with " +
                                 std::to_string(connect_neighbors) +
                                 " Connect neighbors, needs " +
                                 std::to_string(need));
      }
    }
    // Property 2: Copy tolerates at most d Decline neighbors.
    if (w == WeightOut::kCopy && decline_neighbors > d) {
      return CheckResult::fail(node_str(v) + ": Copy with " +
                               std::to_string(decline_neighbors) +
                               " > d Decline neighbors");
    }
    // Property 3: A nodes never Decline.
    if (is_a(v) && w == WeightOut::kDecline) {
      return CheckResult::fail(node_str(v) + ": A-node declined");
    }
  }
  return CheckResult::pass();
}

namespace {

/// Looks up the port of `u` in v's adjacency (the reverse port).
int port_of(const Tree& tree, NodeId v, NodeId u) {
  const auto nb = tree.neighbors(v);
  for (std::size_t p = 0; p < nb.size(); ++p) {
    if (nb[p] == u) return static_cast<int>(p);
  }
  return -1;
}

CheckResult check_orientation_consistency(const Tree& tree,
                                          const OrientationMap& orient) {
  for (NodeId v = 0; v < tree.size(); ++v) {
    const auto nb = tree.neighbors(v);
    if (orient[static_cast<std::size_t>(v)].size() != nb.size()) {
      return CheckResult::fail(node_str(v) + ": orientation arity mismatch");
    }
    for (std::size_t p = 0; p < nb.size(); ++p) {
      const NodeId u = nb[p];
      const int q = port_of(tree, u, v);
      const EdgeDir mine = orient[static_cast<std::size_t>(v)][p];
      const EdgeDir theirs =
          orient[static_cast<std::size_t>(u)][static_cast<std::size_t>(q)];
      const bool consistent =
          (mine == EdgeDir::kNone && theirs == EdgeDir::kNone) ||
          (mine == EdgeDir::kOutgoing && theirs == EdgeDir::kIncoming) ||
          (mine == EdgeDir::kIncoming && theirs == EdgeDir::kOutgoing);
      if (!consistent) {
        return CheckResult::fail("edge {" + std::to_string(v) + "," +
                                 std::to_string(u) +
                                 "}: inconsistent orientation");
      }
    }
  }
  return CheckResult::pass();
}

}  // namespace

CheckResult check_hierarchical_labeling(const Tree& tree, int k,
                                        const std::vector<int>& labels,
                                        const OrientationMap& orient) {
  const NodeId n = tree.size();
  if (static_cast<NodeId>(labels.size()) != n ||
      static_cast<NodeId>(orient.size()) != n) {
    return CheckResult::fail("labels/orientation size mismatch");
  }
  if (CheckResult c = check_orientation_consistency(tree, orient); !c.ok) {
    return c;
  }

  const int max_label = rake_label(k);
  for (NodeId v = 0; v < n; ++v) {
    const int lab = labels[static_cast<std::size_t>(v)];
    if (lab < 0 || lab > max_label) {
      return CheckResult::fail(node_str(v) + ": label out of range");
    }
    const auto nb = tree.neighbors(v);
    const auto& ov = orient[static_cast<std::size_t>(v)];

    int outgoing = 0;
    int compress_neighbors_same_label = 0;
    for (std::size_t p = 0; p < nb.size(); ++p) {
      if (ov[p] == EdgeDir::kOutgoing) ++outgoing;
      const int nl = labels[static_cast<std::size_t>(nb[p])];
      if (!is_rake_label(nl) && nl == lab) ++compress_neighbors_same_label;
    }

    // Rule 1: all edges of a rake-labeled node are oriented.
    if (is_rake_label(lab)) {
      for (std::size_t p = 0; p < nb.size(); ++p) {
        if (ov[p] == EdgeDir::kNone) {
          return CheckResult::fail(node_str(v) +
                                   ": rake node with unoriented edge");
        }
      }
    }

    // Rule 2: at most one outgoing edge; a compress node with two
    // same-label compress neighbors must have none.
    if (!is_rake_label(lab) && compress_neighbors_same_label >= 2) {
      if (outgoing != 0) {
        return CheckResult::fail(node_str(v) +
                                 ": interior compress node with outgoing edge");
      }
    } else if (outgoing > 1) {
      return CheckResult::fail(node_str(v) + ": multiple outgoing edges");
    }

    // Rule 3: orientations respect the label order.
    for (std::size_t p = 0; p < nb.size(); ++p) {
      if (ov[p] == EdgeDir::kOutgoing) {
        const int nl = labels[static_cast<std::size_t>(nb[p])];
        if (nl < lab) {
          return CheckResult::fail(node_str(v) +
                                   ": outgoing edge to lower label");
        }
      }
    }

    // Rule 4: each compress label induces disjoint paths (degree <= 2
    // within the label).
    if (!is_rake_label(lab) && compress_neighbors_same_label > 2) {
      return CheckResult::fail(node_str(v) +
                               ": compress label induces degree > 2");
    }

    // Rule 5: distinct compress labels are never adjacent.
    if (!is_rake_label(lab)) {
      for (std::size_t p = 0; p < nb.size(); ++p) {
        const int nl = labels[static_cast<std::size_t>(nb[p])];
        if (!is_rake_label(nl) && nl != lab) {
          return CheckResult::fail(node_str(v) +
                                   ": adjacent distinct compress labels");
        }
      }
    }

    // Rule 6: a rake node has at most one compress neighbor pointing at
    // it; if one exists, all in-pointing neighbors have strictly lower
    // labels.
    if (is_rake_label(lab)) {
      int compress_in = 0;
      for (std::size_t p = 0; p < nb.size(); ++p) {
        if (ov[p] != EdgeDir::kIncoming) continue;
        const int nl = labels[static_cast<std::size_t>(nb[p])];
        if (!is_rake_label(nl)) ++compress_in;
      }
      if (compress_in > 1) {
        return CheckResult::fail(node_str(v) +
                                 ": two compress paths point at rake node");
      }
      if (compress_in == 1) {
        for (std::size_t p = 0; p < nb.size(); ++p) {
          if (ov[p] != EdgeDir::kIncoming) continue;
          const int nl = labels[static_cast<std::size_t>(nb[p])];
          if (nl >= lab) {
            return CheckResult::fail(
                node_str(v) + ": in-pointing neighbor with label >= own");
          }
        }
      }
    }
  }
  return CheckResult::pass();
}

CheckResult check_weight_augmented(const Tree& tree, int k,
                                   const std::vector<local::Output>& outputs,
                                   const OrientationMap& orient) {
  const NodeId n = tree.size();
  if (static_cast<NodeId>(outputs.size()) != n ||
      static_cast<NodeId>(orient.size()) != n) {
    return CheckResult::fail("outputs/orientation size mismatch");
  }
  auto is_active = [&](NodeId v) {
    return tree.input(v) == static_cast<int>(graph::WeightInput::kActive);
  };

  // Per-node orientation arity first: the rules below index
  // orient[v][p] for every port, so a short row must become a fail
  // verdict here, never an out-of-bounds read inside the checker.
  for (NodeId v = 0; v < n; ++v) {
    if (orient[static_cast<std::size_t>(v)].size() !=
        tree.neighbors(v).size()) {
      return CheckResult::fail(node_str(v) +
                               ": orientation arity mismatch");
    }
  }

  // Rule 1: active subgraph solves k-hierarchical 2.5-coloring.
  {
    std::vector<char> active_mask(static_cast<std::size_t>(n), 0);
    for (NodeId v = 0; v < n; ++v) {
      active_mask[static_cast<std::size_t>(v)] = is_active(v) ? 1 : 0;
    }
    std::vector<NodeId> from_sub;
    const Tree sub =
        graph::induced_subgraph(tree, active_mask, &from_sub);
    std::vector<int> sub_out(from_sub.size());
    for (std::size_t i = 0; i < from_sub.size(); ++i) {
      sub_out[i] = outputs[static_cast<std::size_t>(from_sub[i])].primary;
    }
    CheckResult inner =
        check_hierarchical_coloring(sub, k, Variant::kTwoHalf, sub_out);
    if (!inner.ok) {
      return CheckResult::fail("active subgraph: " + inner.reason);
    }
  }

  // Rule 2: weight subgraph solves k-hierarchical labeling. We check the
  // Definition-63 rules on the weight-induced subgraph, ignoring ports
  // that lead to active nodes (those are governed by Rule 3).
  {
    std::vector<char> weight_mask(static_cast<std::size_t>(n), 0);
    for (NodeId v = 0; v < n; ++v) {
      weight_mask[static_cast<std::size_t>(v)] = is_active(v) ? 0 : 1;
    }
    std::vector<NodeId> from_sub;
    const Tree sub =
        graph::induced_subgraph(tree, weight_mask, &from_sub);
    std::vector<int> sub_labels(from_sub.size());
    OrientationMap sub_orient(from_sub.size());
    for (std::size_t i = 0; i < from_sub.size(); ++i) {
      const NodeId v = from_sub[i];
      sub_labels[i] = outputs[static_cast<std::size_t>(v)].primary;
      // Align the carried-over orientations with the *subgraph's* port
      // order: induced_subgraph fills each node's CSR range in global
      // edge-insertion order, which need not match the parent's
      // per-node port order (BFS-built paper instances happen to agree,
      // arbitrary families — e.g. Prüfer trees — do not).
      const auto sub_nb = sub.neighbors(static_cast<NodeId>(i));
      const auto nb = tree.neighbors(v);
      sub_orient[i].reserve(sub_nb.size());
      for (const NodeId sj : sub_nb) {
        const NodeId u = from_sub[static_cast<std::size_t>(sj)];
        EdgeDir dir = EdgeDir::kNone;
        for (std::size_t p = 0; p < nb.size(); ++p) {
          if (nb[p] == u) {
            dir = orient[static_cast<std::size_t>(v)][p];
            break;
          }
        }
        sub_orient[i].push_back(dir);
      }
    }
    CheckResult inner =
        check_hierarchical_labeling(sub, k, sub_labels, sub_orient);
    if (!inner.ok) {
      return CheckResult::fail("weight subgraph: " + inner.reason);
    }
  }

  // Rules 3-5: orientation toward actives and secondary-output copying.
  // (Per-node orientation arity was already verified up front.)
  for (NodeId v = 0; v < n; ++v) {
    if (is_active(v)) continue;
    const auto nb = tree.neighbors(v);
    const auto& ov = orient[static_cast<std::size_t>(v)];
    const int secondary = outputs[static_cast<std::size_t>(v)].secondary;
    const int lab = outputs[static_cast<std::size_t>(v)].primary;

    bool has_active_neighbor = false;
    int outgoing_to_active = 0;
    for (std::size_t p = 0; p < nb.size(); ++p) {
      if (!is_active(nb[p])) continue;
      has_active_neighbor = true;
      if (ov[p] == EdgeDir::kOutgoing) {
        ++outgoing_to_active;
        // Rule 3: secondary equals that active node's output.
        if (secondary != outputs[static_cast<std::size_t>(nb[p])].primary) {
          return CheckResult::fail(
              node_str(v) + ": secondary differs from pointed-to active");
        }
      }
    }
    if (has_active_neighbor && outgoing_to_active != 1) {
      return CheckResult::fail(node_str(v) +
                               ": must point to exactly one active neighbor");
    }

    // Rule 5: a compress node declines iff it is not adjacent to an
    // active node. A rake node may decline only if its pointee declined
    // (the permissive reading that makes Rules 4 and 5 mutually
    // consistent; cf. the subtree argument in Lemma 68).
    const bool declines = (secondary == -1);
    bool pointee_declined = false;
    for (std::size_t p = 0; p < nb.size(); ++p) {
      if (ov[p] == EdgeDir::kOutgoing && !is_active(nb[p]) &&
          outputs[static_cast<std::size_t>(nb[p])].secondary == -1) {
        pointee_declined = true;
      }
    }
    if (declines) {
      if (has_active_neighbor) {
        return CheckResult::fail(node_str(v) +
                                 ": declines while adjacent to active");
      }
      if (is_rake_label(lab) && !pointee_declined) {
        return CheckResult::fail(
            node_str(v) + ": rake node declines without declining pointee");
      }
    }
    if (!is_rake_label(lab) && !has_active_neighbor && !declines) {
      return CheckResult::fail(node_str(v) +
                               ": compress node must decline");
    }

    // Rule 4: weight nodes pointing toward weight nodes copy their
    // secondary output (unless the target declines as a compress node —
    // the spirit of Definition 67 is that rake chains propagate the copy;
    // compress nodes break the chain with Decline).
    if (!declines) {
      for (std::size_t p = 0; p < nb.size(); ++p) {
        if (ov[p] != EdgeDir::kOutgoing || is_active(nb[p])) continue;
        const NodeId u = nb[p];
        const int u_sec = outputs[static_cast<std::size_t>(u)].secondary;
        if (u_sec != -1 && u_sec != secondary) {
          return CheckResult::fail(node_str(v) +
                                   ": secondary differs from pointed-to "
                                   "weight node");
        }
      }
    }
  }
  return CheckResult::pass();
}

CheckResult check_two_coloring(const Tree& tree,
                               const std::vector<int>& outputs) {
  for (NodeId v = 0; v < tree.size(); ++v) {
    const Color c = as_color(outputs[static_cast<std::size_t>(v)]);
    if (!is_two_color(c)) {
      return CheckResult::fail(node_str(v) + ": not a 2-coloring color");
    }
    for (NodeId u : tree.neighbors(v)) {
      if (outputs[static_cast<std::size_t>(u)] ==
          outputs[static_cast<std::size_t>(v)]) {
        return CheckResult::fail(node_str(v) + ": 2-coloring conflict");
      }
    }
  }
  return CheckResult::pass();
}

CheckResult check_three_coloring(const Tree& tree,
                                 const std::vector<int>& outputs) {
  for (NodeId v = 0; v < tree.size(); ++v) {
    const Color c = as_color(outputs[static_cast<std::size_t>(v)]);
    if (!is_three_color(c)) {
      return CheckResult::fail(node_str(v) + ": not a 3-coloring color");
    }
    for (NodeId u : tree.neighbors(v)) {
      if (outputs[static_cast<std::size_t>(u)] ==
          outputs[static_cast<std::size_t>(v)]) {
        return CheckResult::fail(node_str(v) + ": 3-coloring conflict");
      }
    }
  }
  return CheckResult::pass();
}

}  // namespace lcl::problems
