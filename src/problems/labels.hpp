// Shared output-label encodings for every LCL family in the library.
//
// The engine's `Output` carries plain ints; these enums fix the meaning.
// Checkers and solvers must agree on them, and checkers decode based on
// the node's *input* label where a problem gives different roles different
// alphabets (Definition 22).
#pragma once

#include <string>

namespace lcl::problems {

/// Output alphabet of k-hierarchical 2.5- and 3.5-coloring
/// (Definitions 8 and 9). R/G/Y exist only in the 3.5 variant.
enum class Color : int {
  kW = 0,  ///< White (2-coloring color)
  kB = 1,  ///< Black (2-coloring color)
  kE = 2,  ///< Exempt
  kD = 3,  ///< Decline
  kR = 4,  ///< Red (3-coloring color, 3.5 only)
  kG = 5,  ///< Green (3-coloring color, 3.5 only)
  kY = 6,  ///< Yellow (3-coloring color, 3.5 only)
};

/// Primary outputs of weight nodes in Pi^Z_{Delta,d,k} (Definition 22) and
/// of all nodes in the d-free weight problem (Section 7).
enum class WeightOut : int {
  kDecline = 0,
  kConnect = 1,
  kCopy = 2,
};

/// Which hierarchical coloring variant a problem instance uses.
enum class Variant {
  kTwoHalf,    ///< 2.5-coloring: level-k nodes 2-color with W/B
  kThreeHalf,  ///< 3.5-coloring: level-k nodes 3-color with R/G/Y
};

/// Input labels of the d-free weight problem.
enum class DFreeInput : int {
  kA = 0,  ///< "adjacent" node (touches an active node)
  kW = 1,  ///< plain weight node
};

[[nodiscard]] inline std::string to_string(Color c) {
  switch (c) {
    case Color::kW: return "W";
    case Color::kB: return "B";
    case Color::kE: return "E";
    case Color::kD: return "D";
    case Color::kR: return "R";
    case Color::kG: return "G";
    case Color::kY: return "Y";
  }
  return "?";
}

[[nodiscard]] inline std::string to_string(WeightOut w) {
  switch (w) {
    case WeightOut::kDecline: return "Decline";
    case WeightOut::kConnect: return "Connect";
    case WeightOut::kCopy: return "Copy";
  }
  return "?";
}

/// True if `c` is one of the 2-coloring colors {W, B}.
[[nodiscard]] constexpr bool is_two_color(Color c) {
  return c == Color::kW || c == Color::kB;
}

/// True if `c` is one of the 3-coloring colors {R, G, Y}.
[[nodiscard]] constexpr bool is_three_color(Color c) {
  return c == Color::kR || c == Color::kG || c == Color::kY;
}

}  // namespace lcl::problems
