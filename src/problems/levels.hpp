// Level computation for k-hierarchical problems (Definition 8).
//
// Levels are assigned by iterated peeling: V_1 = nodes of degree <= 2 in
// the tree; remove them; V_2 = nodes of degree <= 2 in the remainder; and
// so on for k rounds. Everything surviving k rounds gets level k+1.
//
// The peeling is a constant-round LOCAL computation for constant k; the
// centralized routine here is the reference implementation, used both by
// checkers and (as precomputed "input") by solvers. A genuinely
// distributed version lives in `algo/level_program` and is tested to
// agree with this one.
#pragma once

#include <vector>

#include "graph/tree.hpp"

namespace lcl::problems {

/// Levels of all nodes (values in [1, k+1]).
[[nodiscard]] std::vector<int> compute_levels(const graph::Tree& tree, int k);

/// Levels within the subgraph induced by nodes with `in_subgraph[v] != 0`.
/// Excluded nodes get level 0, and edges to them are ignored.
[[nodiscard]] std::vector<int> compute_levels_masked(
    const graph::Tree& tree, int k, const std::vector<char>& in_subgraph);

}  // namespace lcl::problems
