// Random LCL generator: seeded families of black-white tree problems.
//
// The paper's landscape is a statement about *all* LCLs on trees, but
// every scenario through PR 4 ran a hand-picked problem. This module
// makes the problem itself a sweepable axis: a `BwTable` is an explicit,
// color-symmetric constraint table over a small alphabet and degree
// bound — exactly the finite object the decidability line of work
// (Chang; Balliu et al., "Efficient Classification of Local Problems in
// Regular Trees") mechanically classifies — and `sample_table(seed)` is
// a pure function from a 64-bit seed to such a table, drawn from two
// generator families:
//
//   * explicit random tables: every multiset of <= max_degree incident
//     edge labels is allowed with a seed-derived density (degree-1 and
//     degree-2 rows are kept nonempty so the samples aren't dominated by
//     trivially unsolvable tables);
//   * structured mutations of the paper's named witnesses (the free
//     problem, proper edge coloring, weak matching, an incident-label
//     covering, and a path-2-coloring flavor), with a few allowed-set
//     bits flipped.
//
// Tables are deduplicated *up to label permutation*: `canonical_key`
// minimizes the table's encoding over all relabelings, and
// `sample_problems` keeps one representative per key. Classification
// (problems/classify.hpp) also canonicalizes first, so predicted classes
// are invariant under relabeling by construction.
//
// Tables restrict constraints to color-symmetric ones (the same allowed
// multisets for white and black nodes). This is what lets the path-form
// machinery in src/bw/ — whose PathLcl carries a single symmetric
// adjacency relation — classify the induced compress problems without an
// alternating-automaton generalization; the paper's symmetric witnesses
// (edge coloring, matching, free) live here natively.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bw/tree_problem.hpp"

namespace lcl::problems {

/// Hard caps of the table representation: every degree-d row is a
/// bitmask over the <= C(kMaxAlphabet + kMaxDegree - 1, kMaxDegree) = 35
/// sorted multisets, so a row always fits one 64-bit word.
inline constexpr int kMaxAlphabet = 4;
inline constexpr int kMaxTableDegree = 4;

/// An explicit color-symmetric black-white tree LCL (Definition 70
/// restricted to tables): `allowed[d-1]` is a bitmask over the sorted
/// multisets of d labels (see `multisets`), bit i allowing multiset i as
/// the incident-label multiset of a degree-d node. Degrees above
/// `max_degree` are forbidden outright; the empty multiset (an isolated
/// node) is always allowed.
struct BwTable {
  int alphabet = 2;    ///< in [1, kMaxAlphabet]
  int max_degree = 3;  ///< in [1, kMaxTableDegree]
  std::uint64_t seed = 0;  ///< generator seed that produced it (0 = handmade)
  std::string name;
  std::array<std::uint64_t, kMaxTableDegree> allowed{};

  /// Whether the sorted multiset of incident labels is permitted.
  [[nodiscard]] bool allows(const std::vector<int>& sorted_labels) const;

  /// Wraps the table as the predicate-based problem the bw solvers run.
  [[nodiscard]] bw::TreeBwProblem to_problem() const;

  /// Multi-line human-readable dump (used by the property tests to pin
  /// shrunk counterexamples).
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] bool operator==(const BwTable& o) const {
    return alphabet == o.alphabet && max_degree == o.max_degree &&
           allowed == o.allowed;
  }
};

/// All sorted multisets of `degree` labels from [0, alphabet), in
/// lexicographic order. Cached; the returned reference is stable.
[[nodiscard]] const std::vector<std::vector<int>>& multisets(int alphabet,
                                                             int degree);

/// Index of a sorted multiset within `multisets(alphabet, degree)`.
[[nodiscard]] int multiset_index(int alphabet,
                                 const std::vector<int>& sorted_labels);

/// Relabels the table: label a becomes perm[a]. `perm` must be a
/// permutation of [0, alphabet).
[[nodiscard]] BwTable permute_table(const BwTable& t,
                                    const std::vector<int>& perm);

/// Pads the alphabet with `extra` labels that appear in no allowed
/// multiset. Semantically inert: the padded labels can never be used.
[[nodiscard]] BwTable pad_table(const BwTable& t, int extra);

/// Removes every label that appears in no allowed multiset (the inverse
/// of `pad_table`, and more: interior unused labels are compacted too).
/// Semantically inert for the same reason padding is. Classification
/// strips before canonicalizing — otherwise an inert label shifts which
/// relabeling wins canonicalization, and the label-order-dependent
/// rectangle tie-breaks downstream can flip the predicted class (found
/// by the padding-invariance fuzz test and pinned there). A table with
/// no used labels at all degenerates to an all-empty alphabet-1 table.
[[nodiscard]] BwTable strip_unused_labels(const BwTable& t);

/// Canonical encoding of the table's label-permutation isomorphism
/// class: the lexicographically smallest per-degree mask encoding over
/// all relabelings. Equal keys == same problem up to relabeling.
[[nodiscard]] std::string canonical_key(const BwTable& t);

/// The representative table achieving `canonical_key` (name/seed kept).
[[nodiscard]] BwTable canonical_table(const BwTable& t);

/// Builds a table by tabulating a multiset predicate up to max_degree.
[[nodiscard]] BwTable table_from_predicate(
    int alphabet, int max_degree, std::string name,
    const std::function<bool(const std::vector<int>&)>& pred);

// Named witness tables (color-symmetric paper problems).
[[nodiscard]] BwTable free_table(int alphabet, int max_degree);
[[nodiscard]] BwTable edge_coloring_table(int colors, int max_degree);
[[nodiscard]] BwTable weak_matching_table(int max_degree);
/// Every node of degree >= 2 needs at least one incident 1 (the
/// color-symmetric covering cousin of sinkless orientation).
[[nodiscard]] BwTable covering_table(int max_degree);
/// Degree-2 nodes need their two incident labels distinct, other degrees
/// are free: the path restriction is exactly 2-coloring (parity-rigid).
[[nodiscard]] BwTable two_coloring_table(int max_degree);

/// Deterministic 53-bit sub-seed for attempt `i` of a sweep seeded with
/// `base`. 53 bits so the seed survives a round-trip through the JSON
/// snapshot's doubles exactly.
[[nodiscard]] std::uint64_t problem_sub_seed(std::uint64_t base, int attempt);

/// Pure function seed -> table. Seed 0 is reserved for the benign
/// default (the free table at alphabet 2, max degree 4) so a registered
/// solver with an unset `problem_seed` option is always well-behaved.
[[nodiscard]] BwTable sample_table(std::uint64_t seed);

/// Samples until `count` problems distinct up to label permutation are
/// collected (or `40 * count` attempts are exhausted — the actual size
/// of the returned vector is the ground truth). Deterministic in
/// `base_seed`; every returned table's own `seed` regenerates it via
/// `sample_table`.
[[nodiscard]] std::vector<BwTable> sample_problems(std::uint64_t base_seed,
                                                   int count);

}  // namespace lcl::problems
