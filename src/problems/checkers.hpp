// Centralized validity checkers for every LCL family in the library.
//
// Checkers are deliberately independent of the solvers (a solver never
// grades its own homework): they re-derive levels from the graph, decode
// raw integer outputs, and verify the paper's local constraints verbatim.
// Each returns a `CheckResult` whose `reason` pinpoints the first
// violation, which the failure-injection tests rely on.
#pragma once

#include <string>
#include <vector>

#include "graph/tree.hpp"
#include "local/engine.hpp"
#include "problems/labels.hpp"

namespace lcl::problems {

using graph::NodeId;
using graph::Tree;

/// Verdict of a checker.
struct CheckResult {
  bool ok = true;
  std::string reason;

  static CheckResult pass() { return {}; }
  static CheckResult fail(std::string why) { return {false, std::move(why)}; }
};

/// Definition 8 / 9: k-hierarchical 2.5- or 3.5-coloring.
///
/// `outputs[v]` is a `Color` cast to int. `levels` may be empty, in which
/// case they are recomputed from the tree via `compute_levels`.
///
/// Level-k exemption policy (see DESIGN.md): a level-k node may be E only
/// if some lower-level neighbor is W/B/E and no lower-level neighbor is D.
[[nodiscard]] CheckResult check_hierarchical_coloring(
    const Tree& tree, int k, Variant variant,
    const std::vector<int>& outputs, std::vector<int> levels = {});

/// Definition 22: the weighted problem Pi^Z_{Delta,d,k}.
///
/// Inputs on the tree: graph::WeightInput (0 = Active, 1 = Weight).
/// Active nodes output a `Color` in `primary`; weight nodes output a
/// `WeightOut` in `primary` plus, when Copy, a `Color` in `secondary`.
[[nodiscard]] CheckResult check_weighted(
    const Tree& tree, int k, int d, Variant variant,
    const std::vector<local::Output>& outputs);

/// Section 7: the d-free weight problem.
///
/// Inputs: DFreeInput (0 = A, 1 = W). Outputs: WeightOut.
[[nodiscard]] CheckResult check_dfree_weight(
    const Tree& tree, int d, const std::vector<int>& outputs);

/// Orientation of one incident edge, from the viewpoint of a node.
enum class EdgeDir : int {
  kNone = 0,      ///< unoriented
  kOutgoing = 1,  ///< oriented away from this node
  kIncoming = 2,  ///< oriented toward this node
};

/// Per-node port orientations; `orient[v][p]` describes the edge on port p
/// of node v. Consistency (u->v seen from both sides) is checked.
using OrientationMap = std::vector<std::vector<EdgeDir>>;

/// Labels of the k-hierarchical labeling problem (Definition 63), encoded
/// as ints: rake label R_i = 2*i - 2 (i in [1,k]); compress label
/// C_i = 2*i - 1 (i in [1,k-1]). This packing realizes the total order
/// R1 < C1 < R2 < ... < C_{k-1} < Rk by integer comparison.
[[nodiscard]] constexpr int rake_label(int i) { return 2 * i - 2; }
[[nodiscard]] constexpr int compress_label(int i) { return 2 * i - 1; }
[[nodiscard]] constexpr bool is_rake_label(int lab) { return lab % 2 == 0; }
[[nodiscard]] constexpr int label_index(int lab) { return lab / 2 + 1; }

/// Definition 63: k-hierarchical labeling (labels + orientation).
[[nodiscard]] CheckResult check_hierarchical_labeling(
    const Tree& tree, int k, const std::vector<int>& labels,
    const OrientationMap& orient);

/// Definition 67: k-hierarchical weight-augmented 2.5-coloring.
///
/// Active nodes: `primary` = Color for the 2.5-coloring on the active
/// subgraph. Weight nodes: `primary` = Definition-63 label, `secondary` =
/// Color or -1 for Decline. `orient` covers weight-node ports (active
/// nodes' ports may be kNone).
[[nodiscard]] CheckResult check_weight_augmented(
    const Tree& tree, int k, const std::vector<local::Output>& outputs,
    const OrientationMap& orient);

/// Proper 2-coloring with labels {W, B} on an induced path/cycle.
[[nodiscard]] CheckResult check_two_coloring(const Tree& tree,
                                             const std::vector<int>& outputs);

/// Proper 3-coloring with labels {R, G, Y}.
[[nodiscard]] CheckResult check_three_coloring(
    const Tree& tree, const std::vector<int>& outputs);

}  // namespace lcl::problems
