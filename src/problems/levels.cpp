#include "problems/levels.hpp"

#include <deque>

namespace lcl::problems {

namespace {

using graph::NodeId;
using graph::Tree;

std::vector<int> peel(const Tree& tree, int k,
                      const std::vector<char>* mask) {
  const NodeId n = tree.size();
  std::vector<int> level(static_cast<std::size_t>(n), 0);
  std::vector<int> remaining_degree(static_cast<std::size_t>(n), 0);
  std::vector<char> removed(static_cast<std::size_t>(n), 0);

  auto in_graph = [&](NodeId v) {
    return mask == nullptr || (*mask)[static_cast<std::size_t>(v)] != 0;
  };

  for (NodeId v = 0; v < n; ++v) {
    if (!in_graph(v)) {
      removed[static_cast<std::size_t>(v)] = 1;
      continue;
    }
    int d = 0;
    for (NodeId u : tree.neighbors(v)) {
      if (in_graph(u)) ++d;
    }
    remaining_degree[static_cast<std::size_t>(v)] = d;
  }

  for (int round = 1; round <= k; ++round) {
    // Collect this round's peel set first (simultaneous removal).
    std::vector<NodeId> peeled;
    for (NodeId v = 0; v < n; ++v) {
      if (!removed[static_cast<std::size_t>(v)] &&
          remaining_degree[static_cast<std::size_t>(v)] <= 2) {
        peeled.push_back(v);
      }
    }
    for (NodeId v : peeled) {
      level[static_cast<std::size_t>(v)] = round;
      removed[static_cast<std::size_t>(v)] = 1;
    }
    for (NodeId v : peeled) {
      for (NodeId u : tree.neighbors(v)) {
        if (!removed[static_cast<std::size_t>(u)] && in_graph(u)) {
          --remaining_degree[static_cast<std::size_t>(u)];
        }
      }
    }
    if (peeled.empty()) break;  // nothing more will ever peel
  }

  for (NodeId v = 0; v < n; ++v) {
    if (!removed[static_cast<std::size_t>(v)]) {
      level[static_cast<std::size_t>(v)] = k + 1;
    }
  }
  return level;
}

}  // namespace

std::vector<int> compute_levels(const graph::Tree& tree, int k) {
  return peel(tree, k, nullptr);
}

std::vector<int> compute_levels_masked(const graph::Tree& tree, int k,
                                       const std::vector<char>& in_subgraph) {
  return peel(tree, k, &in_subgraph);
}

}  // namespace lcl::problems
