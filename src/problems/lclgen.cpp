#include "problems/lclgen.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>
#include <stdexcept>

namespace lcl::problems {

namespace {

/// splitmix64: the repo's standard seed-mixing primitive.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Tiny deterministic RNG over a splitmix chain.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() { return state_ = splitmix64(state_); }
  /// Uniform in [0, m).
  std::uint64_t below(std::uint64_t m) { return next() % m; }

 private:
  std::uint64_t state_;
};

/// Packed key of a sorted multiset (labels < kMaxAlphabet, size <=
/// kMaxTableDegree): base-(kMaxAlphabet+1) digits, so keys fit well
/// under 5^4 = 625 and index an O(1) lookup table.
int pack_key(const std::vector<int>& sorted_labels) {
  int key = 0;
  for (const int l : sorted_labels) key = key * (kMaxAlphabet + 1) + l + 1;
  return key;
}

constexpr int kKeySpace = 5 * 5 * 5 * 5 * 5;  // (kMaxAlphabet+1)^kMaxTableDegree+

struct MultisetCache {
  std::vector<std::vector<int>> sets;
  std::array<int, kKeySpace> index_by_key{};
};

const MultisetCache& cache_for(int alphabet, int degree) {
  if (alphabet < 1 || alphabet > kMaxAlphabet || degree < 1 ||
      degree > kMaxTableDegree) {
    throw std::invalid_argument("lclgen: alphabet/degree out of range");
  }
  static std::map<std::pair<int, int>, MultisetCache> caches;
  auto it = caches.find({alphabet, degree});
  if (it != caches.end()) return it->second;

  MultisetCache c;
  c.index_by_key.fill(-1);
  std::vector<int> cur(static_cast<std::size_t>(degree), 0);
  // Enumerate nondecreasing tuples in lexicographic order.
  for (;;) {
    c.index_by_key[static_cast<std::size_t>(pack_key(cur))] =
        static_cast<int>(c.sets.size());
    c.sets.push_back(cur);
    int i = degree - 1;
    while (i >= 0 && cur[static_cast<std::size_t>(i)] == alphabet - 1) --i;
    if (i < 0) break;
    const int v = cur[static_cast<std::size_t>(i)] + 1;
    for (int j = i; j < degree; ++j) cur[static_cast<std::size_t>(j)] = v;
  }
  return caches.emplace(std::make_pair(alphabet, degree), std::move(c))
      .first->second;
}

}  // namespace

const std::vector<std::vector<int>>& multisets(int alphabet, int degree) {
  return cache_for(alphabet, degree).sets;
}

int multiset_index(int alphabet, const std::vector<int>& sorted_labels) {
  const MultisetCache& c =
      cache_for(alphabet, static_cast<int>(sorted_labels.size()));
  const int idx =
      c.index_by_key[static_cast<std::size_t>(pack_key(sorted_labels))];
  if (idx < 0) {
    throw std::invalid_argument("lclgen: labels not sorted or out of range");
  }
  return idx;
}

bool BwTable::allows(const std::vector<int>& sorted_labels) const {
  const int d = static_cast<int>(sorted_labels.size());
  if (d == 0) return true;
  if (d > max_degree) return false;
  for (const int l : sorted_labels) {
    if (l < 0 || l >= alphabet) return false;
  }
  const int idx = multiset_index(alphabet, sorted_labels);
  return (allowed[static_cast<std::size_t>(d - 1)] >> idx) & 1u;
}

bw::TreeBwProblem BwTable::to_problem() const {
  bw::TreeBwProblem p;
  p.alphabet = alphabet;
  p.name = name;
  p.allowed = [t = *this](int /*color*/, const std::vector<int>& labels) {
    return t.allows(labels);
  };
  return p;
}

std::string BwTable::describe() const {
  std::string out = "BwTable{" + name + ", alphabet=" +
                    std::to_string(alphabet) +
                    ", max_degree=" + std::to_string(max_degree) +
                    ", seed=" + std::to_string(seed) + "}\n";
  for (int d = 1; d <= max_degree; ++d) {
    out += "  degree " + std::to_string(d) + ":";
    const auto& sets = multisets(alphabet, d);
    bool any = false;
    for (std::size_t i = 0; i < sets.size(); ++i) {
      if (!((allowed[static_cast<std::size_t>(d - 1)] >> i) & 1u)) continue;
      any = true;
      out += " {";
      for (std::size_t j = 0; j < sets[i].size(); ++j) {
        out += (j ? "," : "") + std::to_string(sets[i][j]);
      }
      out += "}";
    }
    out += any ? "\n" : " (empty)\n";
  }
  return out;
}

BwTable permute_table(const BwTable& t, const std::vector<int>& perm) {
  if (static_cast<int>(perm.size()) != t.alphabet) {
    throw std::invalid_argument("permute_table: |perm| != alphabet");
  }
  BwTable out = t;
  out.allowed.fill(0);
  std::vector<int> mapped;
  for (int d = 1; d <= t.max_degree; ++d) {
    const auto& sets = multisets(t.alphabet, d);
    for (std::size_t i = 0; i < sets.size(); ++i) {
      if (!((t.allowed[static_cast<std::size_t>(d - 1)] >> i) & 1u)) {
        continue;
      }
      mapped = sets[i];
      for (int& l : mapped) l = perm[static_cast<std::size_t>(l)];
      std::sort(mapped.begin(), mapped.end());
      out.allowed[static_cast<std::size_t>(d - 1)] |=
          std::uint64_t{1} << multiset_index(t.alphabet, mapped);
    }
  }
  return out;
}

BwTable pad_table(const BwTable& t, int extra) {
  if (t.alphabet + extra > kMaxAlphabet) {
    throw std::invalid_argument("pad_table: alphabet cap exceeded");
  }
  BwTable out = t;
  out.alphabet = t.alphabet + extra;
  out.allowed.fill(0);
  // Re-index every allowed multiset within the larger alphabet; the new
  // labels participate in nothing.
  for (int d = 1; d <= t.max_degree; ++d) {
    const auto& sets = multisets(t.alphabet, d);
    for (std::size_t i = 0; i < sets.size(); ++i) {
      if (!((t.allowed[static_cast<std::size_t>(d - 1)] >> i) & 1u)) {
        continue;
      }
      out.allowed[static_cast<std::size_t>(d - 1)] |=
          std::uint64_t{1} << multiset_index(out.alphabet, sets[i]);
    }
  }
  return out;
}

BwTable strip_unused_labels(const BwTable& t) {
  std::vector<char> used(static_cast<std::size_t>(t.alphabet), 0);
  for (int d = 1; d <= t.max_degree; ++d) {
    const auto& sets = multisets(t.alphabet, d);
    for (std::size_t i = 0; i < sets.size(); ++i) {
      if (!((t.allowed[static_cast<std::size_t>(d - 1)] >> i) & 1u)) {
        continue;
      }
      for (const int l : sets[i]) used[static_cast<std::size_t>(l)] = 1;
    }
  }
  std::vector<int> remap(static_cast<std::size_t>(t.alphabet), -1);
  int next = 0;
  for (int l = 0; l < t.alphabet; ++l) {
    if (used[static_cast<std::size_t>(l)]) {
      remap[static_cast<std::size_t>(l)] = next++;
    }
  }
  if (next == t.alphabet) return t;

  BwTable out = t;
  out.alphabet = std::max(next, 1);  // an all-empty table keeps one label
  out.allowed.fill(0);
  std::vector<int> mapped;
  for (int d = 1; d <= t.max_degree; ++d) {
    const auto& sets = multisets(t.alphabet, d);
    for (std::size_t i = 0; i < sets.size(); ++i) {
      if (!((t.allowed[static_cast<std::size_t>(d - 1)] >> i) & 1u)) {
        continue;
      }
      mapped = sets[i];
      for (int& l : mapped) l = remap[static_cast<std::size_t>(l)];
      out.allowed[static_cast<std::size_t>(d - 1)] |=
          std::uint64_t{1} << multiset_index(out.alphabet, mapped);
    }
  }
  return out;
}

namespace {

std::string encode_masks(const BwTable& t) {
  std::string key = "a" + std::to_string(t.alphabet) + "d" +
                    std::to_string(t.max_degree);
  for (int d = 1; d <= t.max_degree; ++d) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), ":%llx",
                  static_cast<unsigned long long>(
                      t.allowed[static_cast<std::size_t>(d - 1)]));
    key += buf;
  }
  return key;
}

/// Applies `fn` to every permutation of [0, alphabet).
template <typename Fn>
void for_each_permutation(int alphabet, Fn fn) {
  std::vector<int> perm(static_cast<std::size_t>(alphabet));
  std::iota(perm.begin(), perm.end(), 0);
  do {
    fn(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
}

}  // namespace

std::string canonical_key(const BwTable& t) {
  std::string best;
  for_each_permutation(t.alphabet, [&](const std::vector<int>& perm) {
    const std::string key = encode_masks(permute_table(t, perm));
    if (best.empty() || key < best) best = key;
  });
  return best;
}

BwTable canonical_table(const BwTable& t) {
  BwTable best = t;
  std::string best_key;
  for_each_permutation(t.alphabet, [&](const std::vector<int>& perm) {
    BwTable cand = permute_table(t, perm);
    const std::string key = encode_masks(cand);
    if (best_key.empty() || key < best_key) {
      best_key = key;
      best = std::move(cand);
    }
  });
  return best;
}

BwTable table_from_predicate(
    int alphabet, int max_degree, std::string name,
    const std::function<bool(const std::vector<int>&)>& pred) {
  BwTable t;
  t.alphabet = alphabet;
  t.max_degree = max_degree;
  t.name = std::move(name);
  for (int d = 1; d <= max_degree; ++d) {
    const auto& sets = multisets(alphabet, d);
    for (std::size_t i = 0; i < sets.size(); ++i) {
      if (pred(sets[i])) {
        t.allowed[static_cast<std::size_t>(d - 1)] |= std::uint64_t{1} << i;
      }
    }
  }
  return t;
}

BwTable free_table(int alphabet, int max_degree) {
  return table_from_predicate(alphabet, max_degree,
                              "bw-free-" + std::to_string(alphabet),
                              [](const std::vector<int>&) { return true; });
}

BwTable edge_coloring_table(int colors, int max_degree) {
  return table_from_predicate(
      colors, max_degree, "edge-coloring-" + std::to_string(colors),
      [](const std::vector<int>& labels) {
        for (std::size_t i = 1; i < labels.size(); ++i) {
          if (labels[i] == labels[i - 1]) return false;
        }
        return true;
      });
}

BwTable weak_matching_table(int max_degree) {
  return table_from_predicate(2, max_degree, "weak-matching",
                              [](const std::vector<int>& labels) {
                                int ones = 0;
                                for (const int l : labels) ones += (l == 1);
                                return ones <= 1;
                              });
}

BwTable covering_table(int max_degree) {
  return table_from_predicate(2, max_degree, "covering",
                              [](const std::vector<int>& labels) {
                                if (labels.size() <= 1) return true;
                                for (const int l : labels) {
                                  if (l == 1) return true;
                                }
                                return false;
                              });
}

BwTable two_coloring_table(int max_degree) {
  return table_from_predicate(2, max_degree, "path-2-coloring",
                              [](const std::vector<int>& labels) {
                                if (labels.size() != 2) return true;
                                return labels[0] != labels[1];
                              });
}

std::uint64_t problem_sub_seed(std::uint64_t base, int attempt) {
  const std::uint64_t mixed = splitmix64(
      splitmix64(base ^ 0xb1ac4817e7ab1e55ULL) +
      static_cast<std::uint64_t>(attempt));
  // 53 bits: exactly representable as a JSON double, and nonzero (0 is
  // the reserved default-table seed).
  const std::uint64_t s = mixed >> 11;
  return s == 0 ? 1 : s;
}

BwTable sample_table(std::uint64_t seed) {
  if (seed == 0) {
    BwTable t = free_table(2, kMaxTableDegree);
    t.name = "bw-free-default";
    return t;
  }
  Rng rng(seed);
  BwTable t;
  t.seed = seed;

  char hex[24];
  std::snprintf(hex, sizeof(hex), "%llx",
                static_cast<unsigned long long>(seed));

  const int mode = static_cast<int>(rng.below(3));
  if (mode < 2) {
    // Explicit random table.
    t.alphabet = 2 + static_cast<int>(rng.below(2));
    t.max_degree = 3;
    t.name = std::string("rnd-a") + std::to_string(t.alphabet) + "-" + hex;
    const int density = 350 + static_cast<int>(rng.below(600));  // per mille
    for (int d = 1; d <= t.max_degree; ++d) {
      const auto count = multisets(t.alphabet, d).size();
      for (std::size_t i = 0; i < count; ++i) {
        if (static_cast<int>(rng.below(1000)) < density) {
          t.allowed[static_cast<std::size_t>(d - 1)] |= std::uint64_t{1}
                                                        << i;
        }
      }
    }
  } else {
    // Structured mutation of a named witness.
    const int which = static_cast<int>(rng.below(5));
    switch (which) {
      case 0: t = free_table(3, 3); break;
      case 1: t = edge_coloring_table(3, 3); break;
      case 2: t = weak_matching_table(3); break;
      case 3: t = covering_table(3); break;
      default: t = two_coloring_table(3); break;
    }
    t.seed = seed;
    t.name = "mut-" + t.name + "-" + hex;
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      const int d = 1 + static_cast<int>(rng.below(
                            static_cast<std::uint64_t>(t.max_degree)));
      const auto count = multisets(t.alphabet, d).size();
      const auto bit = rng.below(count);
      t.allowed[static_cast<std::size_t>(d - 1)] ^= std::uint64_t{1} << bit;
    }
  }

  // Keep the degree-1 and degree-2 rows nonempty: an empty leaf or chain
  // row makes every tree instance trivially unsolvable, which would
  // swamp the sample with one uninteresting class.
  for (int d = 1; d <= 2; ++d) {
    if (t.allowed[static_cast<std::size_t>(d - 1)] == 0) {
      const auto count = multisets(t.alphabet, d).size();
      t.allowed[static_cast<std::size_t>(d - 1)] |= std::uint64_t{1}
                                                    << rng.below(count);
    }
  }
  return t;
}

std::vector<BwTable> sample_problems(std::uint64_t base_seed, int count) {
  std::vector<BwTable> out;
  std::vector<std::string> keys;
  const int max_attempts = 40 * std::max(count, 1);
  for (int i = 0; i < max_attempts && static_cast<int>(out.size()) < count;
       ++i) {
    BwTable t = sample_table(problem_sub_seed(base_seed, i));
    std::string key = canonical_key(t);
    if (std::find(keys.begin(), keys.end(), key) != keys.end()) continue;
    keys.push_back(std::move(key));
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace lcl::problems
