// Empirical classifier for sampled black-white tree LCLs.
//
// Maps a `BwTable` to its predicted landscape row using exactly the
// machinery the paper's Section 11 decision procedure is built from:
//
//   1. an *exact* rake feasibility closure over label-sets
//      (`tree_testing`): starting from the leaf set, close under the
//      one-node extension against every multiset of <= max_degree - 1
//      reachable child sets, and require every root combination to be
//      completable. Each reachable set is realized by a concrete
//      bounded-degree subtree, so an empty set or an uncompletable root
//      combination is a *witness tree* on which no labeling exists:
//      prediction kUnsolvable. Conversely, if the closure is clean,
//      every degree-bounded tree is solvable by the exact DP
//      (bw::solve_tree_bw_global).
//   2. the path restriction (`path_restriction`): degree-2 rows become
//      a PathLcl adjacency, degree-1 rows its boundary sets — the
//      compress-path problem of Definition 77, classified by the
//      decidable src/bw machinery. A kLinear path class (parity-rigid
//      chains) or a failing rectangle testing procedure means the
//      flexible generic solver cannot commit compress chains early:
//      the problem is solved by the full O(log n)-depth decomposition
//      schedule instead — prediction kGenericLogN.
//   3. the constant-good test (Theorem 7, bw::decide_constant_good):
//      constant-good => kConstant; otherwise compress chains must be
//      split at Theta(log* n) cost => kLogStar.
//
// Classification canonicalizes the table first (lclgen's
// label-permutation representative), which makes predictions invariant
// under relabeling *by construction* — the canonical-rectangle
// tie-breaks in the testing procedure are label-order dependent, so
// classifying raw tables would not be.
//
// `classify_empirical` is the measurement-side counterpart: it maps the
// pooled node-averaged measurements of the problem_sweep scenario (two
// instance sizes, certified runs only) back onto the same four classes
// using scale-free growth/magnitude rules documented at the constants.
#pragma once

#include <cstdint>
#include <string>

#include "bw/constant_good.hpp"
#include "bw/path_lcl.hpp"
#include "core/landscape.hpp"
#include "graph/tree.hpp"
#include "problems/lclgen.hpp"

namespace lcl::problems {

/// The four-way prediction of the generic-algorithm pipeline.
enum class ProblemClass : int {
  kConstant = 0,     ///< constant-good: O(1) node-averaged
  kLogStar = 1,      ///< compress chains need splitting: (log* n)^{Theta(1)}
  kGenericLogN = 2,  ///< exact-DP schedule only: Theta(log n) for all nodes
  kUnsolvable = 3,   ///< some bounded-degree tree admits no labeling
};

[[nodiscard]] std::string to_string(ProblemClass c);

/// Outcome of the exact rake feasibility closure (step 1 above). The
/// closure's failure is constructive — every reachable label-set is
/// realized by a concrete subtree (a leaf realizes the leaf set, a node
/// over child recipes realizes its extension set) — so on failure the
/// closure *builds* the witness: a bounded-degree tree instance with no
/// valid labeling, which the problem_sweep scenario feeds back to the
/// independent solver as the empirical confirmation of unsolvability.
/// Witness expansion duplicates shared sub-recipes (trees, not DAGs) and
/// is abandoned past ~2*10^5 nodes (`has_witness == false`).
struct TreeTesting {
  bool good = true;
  int reachable_sets = 0;  ///< distinct label-sets in the closure
  std::string failure;     ///< witness description when !good
  bool has_witness = false;
  graph::Tree witness;     ///< infeasible instance (when has_witness)
};

[[nodiscard]] TreeTesting tree_testing(const BwTable& table);

/// The table's compress-path problem: degree-2 rows as the symmetric
/// adjacency relation, degree-1 rows as both boundary sets.
[[nodiscard]] bw::PathLcl path_restriction(const BwTable& table);

/// Full classification record.
struct Classification {
  ProblemClass predicted = ProblemClass::kUnsolvable;
  bw::PathComplexity path_class = bw::PathComplexity::kUnsolvable;
  bool tree_good = false;      ///< exact closure clean
  bool testing_good = false;   ///< rectangle testing procedure clean
  bool constant_good = false;  ///< Theorem-7 verdict
  std::string rationale;       ///< one-line why
  core::LandscapeRegion region;  ///< the landscape row the class lands in
};

[[nodiscard]] Classification classify_table(const BwTable& table);

/// Landscape row for a predicted class. kConstant and kLogStar bind to
/// the Figure-2 rows via core::find_region; the two generic-schedule
/// outcomes get synthesized rows (they describe the generic algorithm's
/// cost, not a realizable landscape class).
[[nodiscard]] core::LandscapeRegion landscape_region(ProblemClass c);

/// Pooled measurements of one problem across the sweep's families, at
/// the sweep's two instance sizes.
struct EmpiricalSignal {
  double na_small = 0.0;  ///< pooled node-average at the small size
  double na_large = 0.0;  ///< pooled node-average at the large size
  std::int64_t n_small = 0;
  std::int64_t n_large = 0;
  bool any_infeasible = false;  ///< some instance admitted no labeling
};

/// Decision thresholds of the empirical classifier, shared with the
/// tests. The generic schedule charges ~2 peel steps per decomposition
/// layer, so a kGenericLogN run's node-average tracks ~2 log n and grows
/// by ~log(n_large)/log(n_small) between the sizes, while kConstant and
/// kLogStar averages are flat in n (log* is constant at these scales —
/// the split surcharge kSplitNaThreshold separates them by magnitude:
/// splitting costs >= kSplitPad + cv_total_rounds(n) ~ 40 rounds per
/// compress node, no constant-good problem averages anywhere near it).
inline constexpr double kLogNGrowthThreshold = 1.18;
inline constexpr double kLogNMinNa = 6.0;
inline constexpr double kSplitNaThreshold = 8.0;

[[nodiscard]] ProblemClass classify_empirical(const EmpiricalSignal& s);

}  // namespace lcl::problems
