#include "problems/classify.hpp"

#include <algorithm>
#include <vector>

#include "bw/label_sets.hpp"

namespace lcl::problems {

namespace {

using bw::LabelSet;

/// Does some choice (l_1, ..., l_m) with l_i in sets[i] make
/// sorted(extra + l) allowed by the table? Exact because the sets come
/// from disjoint subtrees (any combination of achievable labels is
/// simultaneously achievable).
bool exists_choice(const BwTable& t, const std::vector<LabelSet>& sets,
                   int extra) {
  std::vector<int> labels;
  labels.reserve(sets.size() + 1);
  std::function<bool(std::size_t)> rec = [&](std::size_t i) {
    if (i == sets.size()) {
      std::vector<int> sorted = labels;
      if (extra >= 0) sorted.push_back(extra);
      std::sort(sorted.begin(), sorted.end());
      return t.allows(sorted);
    }
    for (int l = 0; l < t.alphabet; ++l) {
      if (!((sets[i] >> l) & 1u)) continue;
      labels.push_back(l);
      if (rec(i + 1)) {
        labels.pop_back();
        return true;
      }
      labels.pop_back();
    }
    return false;
  };
  return rec(0);
}

std::string set_to_string(LabelSet s, int alphabet) {
  std::string out = "{";
  bool first = true;
  for (int l = 0; l < alphabet; ++l) {
    if (!((s >> l) & 1u)) continue;
    out += (first ? "" : ",") + std::to_string(l);
    first = false;
  }
  return out + "}";
}

std::string combo_to_string(const std::vector<LabelSet>& sets,
                            int alphabet) {
  std::string out;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    out += (i ? " x " : "") + set_to_string(sets[i], alphabet);
  }
  return out;
}

/// Enumerates every multiset of `size` sets (with repetition) from
/// `seen` and applies `fn`; `fn` returning false stops the sweep.
template <typename Fn>
bool for_each_combo(const std::vector<LabelSet>& seen, int size, Fn fn) {
  std::vector<std::size_t> idx(static_cast<std::size_t>(size), 0);
  std::vector<LabelSet> combo(static_cast<std::size_t>(size));
  for (;;) {
    for (int i = 0; i < size; ++i) {
      combo[static_cast<std::size_t>(i)] =
          seen[idx[static_cast<std::size_t>(i)]];
    }
    if (!fn(combo)) return false;
    // Next nondecreasing index tuple.
    int i = size - 1;
    while (i >= 0 && idx[static_cast<std::size_t>(i)] == seen.size() - 1) {
      --i;
    }
    if (i < 0) return true;
    const std::size_t v = idx[static_cast<std::size_t>(i)] + 1;
    for (int j = i; j < size; ++j) idx[static_cast<std::size_t>(j)] = v;
  }
}

}  // namespace

std::string to_string(ProblemClass c) {
  switch (c) {
    case ProblemClass::kConstant: return "O(1)";
    case ProblemClass::kLogStar: return "log*-range";
    case ProblemClass::kGenericLogN: return "Theta(log n)";
    case ProblemClass::kUnsolvable: return "unsolvable";
  }
  return "?";
}

namespace {

/// Recipe realizing one reachable label-set: a node whose children are
/// the subtrees realizing the listed (earlier) sets; a leaf for the
/// initial set. Recipes form a DAG over `seen` indices; witness
/// expansion duplicates shared sub-recipes into an actual tree.
using Recipe = std::vector<std::size_t>;

constexpr graph::NodeId kWitnessCap = 200000;

/// Expands recipe `idx` under `parent` (kInvalidNode for a root).
/// Returns false when the node cap is exceeded.
bool expand_recipe(const std::vector<Recipe>& recipes, std::size_t idx,
                   graph::TreeBuilder& builder, graph::NodeId parent) {
  if (builder.size() >= kWitnessCap) return false;
  const graph::NodeId v = builder.add_node();
  if (parent != graph::kInvalidNode) builder.add_edge(parent, v);
  for (const std::size_t child : recipes[idx]) {
    if (!expand_recipe(recipes, child, builder, v)) return false;
  }
  return true;
}

/// Builds the witness tree: an (optional) extra parent node over a node
/// whose children realize `combo` — the configuration the closure found
/// uncompletable.
void build_witness(TreeTesting& out, const std::vector<Recipe>& recipes,
                   const std::vector<std::size_t>& combo_recipes,
                   bool with_parent) {
  graph::TreeBuilder builder;
  graph::NodeId top = graph::kInvalidNode;
  if (with_parent) top = builder.add_node();
  const graph::NodeId v = builder.add_node();
  if (with_parent) builder.add_edge(top, v);
  for (const std::size_t child : combo_recipes) {
    if (!expand_recipe(recipes, child, builder, v)) return;
  }
  out.witness = builder.finalize();
  out.has_witness = true;
}

}  // namespace

TreeTesting tree_testing(const BwTable& table) {
  TreeTesting out;

  LabelSet leaf = 0;
  for (int l = 0; l < table.alphabet; ++l) {
    if (table.allows({l})) leaf |= (1u << l);
  }
  if (leaf == 0) {
    out.good = false;
    out.failure = "no label allowed at a leaf";
    // Witness: a single edge — both endpoints are leaves and neither
    // can label its one incident edge. (A 1-node tree is still fine:
    // the empty multiset is always allowed.)
    graph::TreeBuilder builder;
    const graph::NodeId a = builder.add_node();
    builder.add_edge(a, builder.add_node());
    out.witness = builder.finalize();
    out.has_witness = true;
    return out;
  }

  // Fixed point of the one-node extension: a node with m child subtrees
  // whose up-sets are S_1..S_m can commit label o on its outgoing edge
  // iff some choice completes its multiset constraint. `recipes[i]`
  // records how seen[i] is realized, for witness construction.
  std::vector<LabelSet> seen{leaf};
  std::vector<Recipe> recipes{{}};
  // Maps a snapshot combo back to seen indices (sets are unique in
  // `seen`, so value lookup is unambiguous).
  const auto index_of = [&seen](LabelSet s) {
    return static_cast<std::size_t>(
        std::find(seen.begin(), seen.end(), s) - seen.begin());
  };
  const auto combo_indices =
      [&index_of](const std::vector<LabelSet>& combo) {
        std::vector<std::size_t> idx;
        idx.reserve(combo.size());
        for (const LabelSet s : combo) idx.push_back(index_of(s));
        return idx;
      };
  bool grew = true;
  while (grew && out.good) {
    grew = false;
    const std::vector<LabelSet> snapshot = seen;
    for (int m = 1; m < table.max_degree && out.good; ++m) {
      for_each_combo(snapshot, m, [&](const std::vector<LabelSet>& combo) {
        LabelSet g = 0;
        for (int o = 0; o < table.alphabet; ++o) {
          if (exists_choice(table, combo, o)) g |= (1u << o);
        }
        if (g == 0) {
          out.good = false;
          out.failure = "empty up-set at a degree-" + std::to_string(m + 1) +
                        " node over child classes " +
                        combo_to_string(combo, table.alphabet);
          // The node cannot complete for *any* outgoing label, so
          // attaching any parent yields an infeasible tree.
          build_witness(out, recipes, combo_indices(combo),
                        /*with_parent=*/true);
          return false;
        }
        if (std::find(seen.begin(), seen.end(), g) == seen.end()) {
          seen.push_back(g);
          recipes.push_back(combo_indices(combo));
          grew = true;
        }
        return true;
      });
    }
  }

  // Root closure: a component's last node has 1..max_degree child
  // subtrees and no outgoing edge; every reachable combination must
  // complete. (Every set in `seen` is realized by a concrete subtree —
  // inductively from a single leaf — so a failing combination is a
  // witness tree with no valid labeling.)
  for (int m = 1; m <= table.max_degree && out.good; ++m) {
    for_each_combo(seen, m, [&](const std::vector<LabelSet>& combo) {
      if (!exists_choice(table, combo, -1)) {
        out.good = false;
        out.failure = "no completion at a degree-" + std::to_string(m) +
                      " root over child classes " +
                      combo_to_string(combo, table.alphabet);
        build_witness(out, recipes, combo_indices(combo),
                      /*with_parent=*/false);
        return false;
      }
      return true;
    });
  }

  out.reachable_sets = static_cast<int>(seen.size());
  return out;
}

bw::PathLcl path_restriction(const BwTable& table) {
  bw::PathLcl p;
  p.alphabet = table.alphabet;
  p.name = table.name + "/path";
  p.adjacent.assign(static_cast<std::size_t>(table.alphabet), 0);
  for (int a = 0; a < table.alphabet; ++a) {
    for (int b = a; b < table.alphabet; ++b) {
      if (table.allows({a, b})) {
        p.adjacent[static_cast<std::size_t>(a)] |= (1u << b);
        p.adjacent[static_cast<std::size_t>(b)] |= (1u << a);
      }
    }
    if (table.allows({a})) {
      p.left_boundary |= (1u << a);
      p.right_boundary |= (1u << a);
    }
  }
  return p;
}

core::LandscapeRegion landscape_region(ProblemClass c) {
  static const std::vector<core::LandscapeRegion> rows =
      core::landscape(/*after=*/true);
  switch (c) {
    case ProblemClass::kConstant: {
      const core::LandscapeRegion* r = core::find_region(rows, "O(1)");
      if (r != nullptr) return *r;
      break;
    }
    case ProblemClass::kLogStar: {
      const core::LandscapeRegion* r =
          core::find_region(rows, "(log* n)^{Omega(1)}");
      if (r != nullptr) return *r;
      break;
    }
    case ProblemClass::kGenericLogN:
      return {"O(log n) (generic decomposition schedule)",
              core::RegionKind::kClass, core::Provenance::kThisPaper,
              "Lemma 72 depth + exact chain DP",
              "compress-rigid sampled tables"};
    case ProblemClass::kUnsolvable:
      return {"unsolvable by the generic procedure", core::RegionKind::kGap,
              core::Provenance::kThisPaper,
              "Definition 74 testing procedure (exact rake closure)", "-"};
  }
  return {"?", core::RegionKind::kGap, core::Provenance::kThisPaper, "?",
          "-"};
}

Classification classify_table(const BwTable& table) {
  // Strip inert labels, then canonicalize: the rectangle tie-breaks
  // downstream are label-order dependent, and both an alternative
  // relabeling and an unused padding label would otherwise shift which
  // representative they run on — the prediction must not depend on
  // either (pinned by the property fuzz tests).
  const BwTable canon = canonical_table(strip_unused_labels(table));
  Classification c;

  const TreeTesting tt = tree_testing(canon);
  c.tree_good = tt.good;
  const bw::PathLcl path = path_restriction(canon);
  c.path_class = bw::classify(path);

  if (!tt.good) {
    c.predicted = ProblemClass::kUnsolvable;
    c.rationale = tt.failure;
    c.region = landscape_region(c.predicted);
    return c;
  }
  if (c.path_class == bw::PathComplexity::kUnsolvable) {
    // Defensive: a clean closure should preclude this (paths are trees).
    c.predicted = ProblemClass::kUnsolvable;
    c.rationale = "path restriction unsolvable on long chains";
    c.region = landscape_region(c.predicted);
    return c;
  }
  if (c.path_class == bw::PathComplexity::kLinear) {
    c.predicted = ProblemClass::kGenericLogN;
    c.rationale = "chains are parity-rigid (path class Theta(n)); only "
                  "the exact decomposition schedule applies";
    c.region = landscape_region(c.predicted);
    return c;
  }

  const bw::ConstantGoodVerdict v = bw::decide_constant_good(path);
  c.testing_good = v.solvable;
  c.constant_good = v.constant_good;
  if (!v.solvable) {
    c.predicted = ProblemClass::kGenericLogN;
    c.rationale = "canonical rectangles empty in the testing procedure; "
                  "flexible commit unavailable";
  } else if (v.constant_good) {
    c.predicted = ProblemClass::kConstant;
    c.rationale = "constant-good function exists (Theorem 7)";
  } else if (v.worst_compress == bw::PathComplexity::kLogStar) {
    c.predicted = ProblemClass::kLogStar;
    c.rationale = "compress problems need splitting (worst compress "
                  "class Theta(log* n))";
  } else {
    c.predicted = ProblemClass::kGenericLogN;
    c.rationale = "some compress problem is rigid (" +
                  bw::to_string(v.worst_compress) +
                  "); flexible commit unavailable";
  }
  c.region = landscape_region(c.predicted);
  return c;
}

ProblemClass classify_empirical(const EmpiricalSignal& s) {
  if (s.any_infeasible) return ProblemClass::kUnsolvable;
  const double growth =
      s.na_small > 1e-12 ? s.na_large / s.na_small : 1e9;
  if (growth >= kLogNGrowthThreshold && s.na_large >= kLogNMinNa) {
    return ProblemClass::kGenericLogN;
  }
  if (s.na_large >= kSplitNaThreshold) return ProblemClass::kLogStar;
  return ProblemClass::kConstant;
}

}  // namespace lcl::problems
