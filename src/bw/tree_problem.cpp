#include "bw/tree_problem.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "bw/label_sets.hpp"
#include "decomp/rake_compress.hpp"

namespace lcl::bw {

namespace {

/// Proper 2-coloring of the forest by BFS parity (the W/B split the
/// black-white formalism assumes).
std::vector<int> two_color(const Tree& t) {
  std::vector<int> color(static_cast<std::size_t>(t.size()), -1);
  for (NodeId s = 0; s < t.size(); ++s) {
    if (color[static_cast<std::size_t>(s)] >= 0) continue;
    color[static_cast<std::size_t>(s)] = 0;
    std::deque<NodeId> q{s};
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop_front();
      for (NodeId w : t.neighbors(u)) {
        if (color[static_cast<std::size_t>(w)] < 0) {
          color[static_cast<std::size_t>(w)] =
              1 - color[static_cast<std::size_t>(u)];
          q.push_back(w);
        }
      }
    }
  }
  return color;
}

/// Does some choice l_i in sets[i] make sorted(fixed + l) allowed?
/// Fills `pick` with a witness when non-null. Exponential in |sets| but
/// degrees are constant; a combination cap guards misuse.
bool feasible_choice(const TreeBwProblem& problem, int color,
                     std::vector<int> fixed,
                     const std::vector<LabelSet>& sets,
                     std::vector<int>* pick) {
  std::int64_t combos = 1;
  for (LabelSet s : sets) {
    combos *= std::max(1, __builtin_popcount(s));
    if (combos > 2'000'000) {
      throw std::runtime_error("tree_bw: combination explosion");
    }
  }
  std::vector<int> chosen(sets.size(), -1);
  // Depth-first over the free edges.
  std::vector<int> stack_label(sets.size(), -1);
  std::size_t depth = 0;
  while (true) {
    if (depth == sets.size()) {
      std::vector<int> multiset = fixed;
      for (int l : stack_label) multiset.push_back(l);
      std::sort(multiset.begin(), multiset.end());
      if (problem.allowed(color, multiset)) {
        if (pick != nullptr) *pick = stack_label;
        return true;
      }
      if (depth == 0) return false;
      --depth;
    }
    // Advance the label at `depth`.
    bool advanced = false;
    for (int l = stack_label[depth] + 1; l < problem.alphabet; ++l) {
      if ((sets[depth] >> l) & 1u) {
        stack_label[depth] = l;
        advanced = true;
        break;
      }
    }
    if (advanced) {
      ++depth;
      if (depth < sets.size()) stack_label[depth] = -1;
    } else {
      stack_label[depth] = -1;
      if (depth == 0) return false;
      --depth;
    }
  }
}

}  // namespace

EdgeIndex EdgeIndex::build(const Tree& t) {
  // Per-node port slots coincide with the Tree's CSR slots, so the id
  // array reuses the tree's own offsets instead of recomputing them.
  const auto off = t.offsets();
  EdgeIndex idx;
  idx.id.assign(t.adjacency().size(), -1);
  std::int64_t next = 0;
  for (NodeId v = 0; v < t.size(); ++v) {
    const auto nb = t.neighbors(v);
    for (std::size_t p = 0; p < nb.size(); ++p) {
      if (nb[p] > v) {
        idx.id[static_cast<std::size_t>(off[static_cast<std::size_t>(v)]) +
               p] = next++;
      }
    }
  }
  // Mirror the ids on the other endpoints.
  for (NodeId v = 0; v < t.size(); ++v) {
    const auto nb = t.neighbors(v);
    for (std::size_t p = 0; p < nb.size(); ++p) {
      if (nb[p] < v) {
        const NodeId u = nb[p];
        const auto unb = t.neighbors(u);
        for (std::size_t q = 0; q < unb.size(); ++q) {
          if (unb[q] == v) {
            idx.id[static_cast<std::size_t>(
                       off[static_cast<std::size_t>(v)]) +
                   p] =
                idx.id[static_cast<std::size_t>(
                           off[static_cast<std::size_t>(u)]) +
                       q];
          }
        }
      }
    }
  }
  idx.edge_count = next;
  return idx;
}

std::int64_t EdgeIndex::of(const Tree& t, NodeId v, int port) const {
  return id[static_cast<std::size_t>(
                t.offsets()[static_cast<std::size_t>(v)]) +
            static_cast<std::size_t>(port)];
}

TreeBwResult solve_tree_bw(const Tree& tree, const TreeBwProblem& problem) {
  TreeBwResult res;
  const EdgeIndex edges = EdgeIndex::build(tree);
  const std::vector<int> color = two_color(tree);
  const auto dec = decomp::rake_compress(tree, 1, 4, /*split_paths=*/true);

  const LabelSet all =
      static_cast<LabelSet>((1u << problem.alphabet) - 1);
  std::vector<LabelSet> edge_set(static_cast<std::size_t>(edges.edge_count),
                                 0);
  res.edge_label.assign(static_cast<std::size_t>(edges.edge_count), -1);

  auto key_of = [&](NodeId v) {
    return decomp::layer_order_key(
        dec.assignment[static_cast<std::size_t>(v)]);
  };

  // Group nodes by layer key; compress chains handled as components.
  std::vector<NodeId> order(static_cast<std::size_t>(tree.size()));
  for (NodeId v = 0; v < tree.size(); ++v) {
    order[static_cast<std::size_t>(v)] = v;
  }
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const auto ka = key_of(a), kb = key_of(b);
    return ka != kb ? ka < kb : a < b;
  });

  // Splits a node's ports into (incoming = lower key, outgoing ports).
  auto split_ports = [&](NodeId v, std::vector<int>& in_ports,
                         std::vector<int>& out_ports) {
    const auto nb = tree.neighbors(v);
    for (std::size_t p = 0; p < nb.size(); ++p) {
      if (key_of(nb[p]) < key_of(v)) {
        in_ports.push_back(static_cast<int>(p));
      } else {
        out_ports.push_back(static_cast<int>(p));
      }
    }
  };

  // --- Chain discovery for compress components ----------------------
  std::vector<char> chain_done(static_cast<std::size_t>(tree.size()), 0);
  auto collect_chain = [&](NodeId v) {
    // Same compress layer, connected.
    std::vector<NodeId> comp;
    std::deque<NodeId> q{v};
    chain_done[static_cast<std::size_t>(v)] = 1;
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop_front();
      comp.push_back(u);
      for (NodeId w : tree.neighbors(u)) {
        if (!chain_done[static_cast<std::size_t>(w)] &&
            key_of(w) == key_of(u)) {
          chain_done[static_cast<std::size_t>(w)] = 1;
          q.push_back(w);
        }
      }
    }
    // Order the component as a path.
    std::vector<NodeId> path;
    NodeId end = comp.front();
    for (NodeId u : comp) {
      int same = 0;
      for (NodeId w : tree.neighbors(u)) {
        if (key_of(w) == key_of(u)) ++same;
      }
      if (same <= 1) end = u;
    }
    NodeId prev = graph::kInvalidNode;
    NodeId cur = end;
    while (cur != graph::kInvalidNode) {
      path.push_back(cur);
      NodeId next = graph::kInvalidNode;
      for (NodeId w : tree.neighbors(cur)) {
        if (w != prev && key_of(w) == key_of(cur)) next = w;
      }
      prev = cur;
      cur = next;
    }
    return path;
  };

  // The per-chain DP. Computes feasible (left, right) outgoing pairs,
  // or, when `commit` is non-null with fixed outgoing labels, commits
  // chain-edge and incoming labels.
  struct ChainPlan {
    std::vector<NodeId> path;
    int left_out_port = -1;   // on path.front(), toward higher (or -1)
    int right_out_port = -1;  // on path.back()
  };
  auto chain_pairs = [&](const ChainPlan& plan, int fixed_left,
                         int fixed_right, bool commit) {
    const auto& path = plan.path;
    const std::size_t len = path.size();
    // feasible[i][e] = set of left labels for which a labeling of the
    // prefix up to chain edge i (label e) exists. For reconstruction we
    // store, per (i, e, left), one predecessor edge label.
    // Simpler: DP per left label separately (alphabet is tiny).
    std::vector<std::pair<int, int>> pairs;
    const int a = problem.alphabet;
    std::vector<int> lefts, rights;
    for (int l = 0; l < a; ++l) {
      if (fixed_left < 0 || l == fixed_left) lefts.push_back(l);
    }
    for (int r = 0; r < a; ++r) {
      if (fixed_right < 0 || r == fixed_right) rights.push_back(r);
    }
    for (int l : lefts) {
      // reach[i][e]: prefix through node i with chain edge (i,i+1)
      // labeled e is completable; pred[i][e] = previous edge label.
      std::vector<std::vector<char>> reach(
          len, std::vector<char>(static_cast<std::size_t>(a), 0));
      std::vector<std::vector<int>> pred(
          len, std::vector<int>(static_cast<std::size_t>(a), -1));
      for (std::size_t i = 0; i < len; ++i) {
        const NodeId v = path[i];
        std::vector<int> in_ports, out_ports;
        split_ports(v, in_ports, out_ports);
        // Incoming label-sets from raked subtrees (exclude chain mates
        // and the outgoing-to-higher port).
        std::vector<LabelSet> sets;
        for (int p : in_ports) {
          const NodeId u = tree.neighbors(v)[static_cast<std::size_t>(p)];
          if (key_of(u) == key_of(v)) continue;  // chain mate
          sets.push_back(
              edge_set[static_cast<std::size_t>(edges.of(tree, v, p))]);
        }
        const bool first = (i == 0);
        const bool last = (i + 1 == len);
        for (int e_prev = 0; e_prev < (first ? 1 : a); ++e_prev) {
          if (!first && !reach[i - 1][static_cast<std::size_t>(e_prev)]) {
            continue;
          }
          for (int e_next = 0; e_next < (last ? 1 : a); ++e_next) {
            std::vector<int> fixed;
            if (first) {
              if (plan.left_out_port >= 0) fixed.push_back(l);
            } else {
              fixed.push_back(e_prev);
            }
            if (last) {
              // right outgoing handled by caller loop below
            } else {
              fixed.push_back(e_next);
            }
            if (!last) {
              if (feasible_choice(problem,
                                  color[static_cast<std::size_t>(v)],
                                  fixed, sets, nullptr)) {
                reach[i][static_cast<std::size_t>(e_next)] = 1;
                if (pred[i][static_cast<std::size_t>(e_next)] < 0) {
                  pred[i][static_cast<std::size_t>(e_next)] =
                      first ? -2 : e_prev;
                }
              }
            } else {
              for (int r : rights) {
                std::vector<int> fixed_last = fixed;
                if (plan.right_out_port >= 0) fixed_last.push_back(r);
                if (feasible_choice(problem,
                                    color[static_cast<std::size_t>(v)],
                                    fixed_last, sets, nullptr)) {
                  // For single-node chains the left label is unused
                  // unless there is a left port; normalize.
                  pairs.emplace_back(l, r);
                  if (commit) {
                    // Reconstruct: walk predecessors backward.
                    std::vector<int> chain_edges(len >= 1 ? len - 1 : 0,
                                                 -1);
                    int cur = first ? -2 : e_prev;
                    if (!first) {
                      chain_edges[i - 1] = e_prev;
                      for (std::size_t j = i - 1; j > 0; --j) {
                        cur = pred[j][static_cast<std::size_t>(
                            chain_edges[j])];
                        chain_edges[j - 1] = cur;
                      }
                    }
                    // Commit chain edges.
                    for (std::size_t j = 0; j + 1 < len; ++j) {
                      const NodeId x = path[j];
                      const auto nb = tree.neighbors(x);
                      for (std::size_t p = 0; p < nb.size(); ++p) {
                        if (nb[p] == path[j + 1]) {
                          res.edge_label[static_cast<std::size_t>(
                              edges.of(tree, x, static_cast<int>(p)))] =
                              chain_edges[j];
                        }
                      }
                    }
                    // Commit incoming picks at every chain node.
                    for (std::size_t j = 0; j < len; ++j) {
                      const NodeId x = path[j];
                      std::vector<int> ip, op;
                      split_ports(x, ip, op);
                      std::vector<int> fixed2;
                      std::vector<LabelSet> sets2;
                      std::vector<int> set_ports;
                      for (int p : ip) {
                        const NodeId u =
                            tree.neighbors(x)[static_cast<std::size_t>(p)];
                        if (key_of(u) == key_of(x)) continue;
                        sets2.push_back(edge_set[static_cast<std::size_t>(
                            edges.of(tree, x, p))]);
                        set_ports.push_back(p);
                      }
                      const auto nb = tree.neighbors(x);
                      for (std::size_t p = 0; p < nb.size(); ++p) {
                        const std::int64_t eid =
                            edges.of(tree, x, static_cast<int>(p));
                        const int lab = res.edge_label[
                            static_cast<std::size_t>(eid)];
                        if (lab >= 0 &&
                            std::find(set_ports.begin(), set_ports.end(),
                                      static_cast<int>(p)) ==
                                set_ports.end()) {
                          fixed2.push_back(lab);
                        }
                      }
                      std::vector<int> picks;
                      if (!feasible_choice(
                              problem, color[static_cast<std::size_t>(x)],
                              fixed2, sets2, &picks)) {
                        throw std::logic_error(
                            "tree_bw: chain commit infeasible");
                      }
                      for (std::size_t s = 0; s < set_ports.size(); ++s) {
                        res.edge_label[static_cast<std::size_t>(
                            edges.of(tree, x, set_ports[s]))] = picks[s];
                      }
                    }
                    return pairs;  // committed one witness
                  }
                }
              }
            }
          }
        }
      }
    }
    return pairs;
  };

  // --- Bottom-up: label-sets ----------------------------------------
  std::vector<ChainPlan> chains;
  std::vector<int> chain_of(static_cast<std::size_t>(tree.size()), -1);
  for (NodeId v : order) {
    const auto& assign = dec.assignment[static_cast<std::size_t>(v)];
    if (assign.kind == decomp::LayerKind::kCompress) {
      if (chain_done[static_cast<std::size_t>(v)]) continue;
      ChainPlan plan;
      plan.path = collect_chain(v);
      // Outgoing ports at both endpoints (toward strictly higher keys).
      {
        std::vector<int> ip, op;
        split_ports(plan.path.front(), ip, op);
        for (int p : op) {
          const NodeId u = tree.neighbors(
              plan.path.front())[static_cast<std::size_t>(p)];
          if (key_of(u) > key_of(plan.path.front())) {
            plan.left_out_port = p;
          }
        }
      }
      if (plan.path.size() > 1) {
        std::vector<int> ip, op;
        split_ports(plan.path.back(), ip, op);
        for (int p : op) {
          const NodeId u = tree.neighbors(
              plan.path.back())[static_cast<std::size_t>(p)];
          if (key_of(u) > key_of(plan.path.back())) {
            plan.right_out_port = p;
          }
        }
      }
      const auto pairs = chain_pairs(plan, -1, -1, /*commit=*/false);
      const Rectangle rect = independent_rectangle(pairs, problem.alphabet);
      const bool need_left = plan.left_out_port >= 0;
      const bool need_right = plan.right_out_port >= 0;
      if ((need_left && rect.left == 0) ||
          (need_right && rect.right == 0) || pairs.empty()) {
        res.failure = "empty class at compress chain near node " +
                      std::to_string(v);
        return res;
      }
      if (need_left) {
        edge_set[static_cast<std::size_t>(edges.of(
            tree, plan.path.front(), plan.left_out_port))] = rect.left;
      }
      if (need_right) {
        edge_set[static_cast<std::size_t>(edges.of(
            tree, plan.path.back(), plan.right_out_port))] = rect.right;
      }
      ChainRecord record;
      record.nodes = plan.path;
      record.left = need_left ? rect.left : 0;
      record.right = need_right ? rect.right : 0;
      res.chains.push_back(std::move(record));
      chain_of[static_cast<std::size_t>(plan.path.front())] =
          static_cast<int>(chains.size());
      chains.push_back(std::move(plan));
      continue;
    }

    // Rake node: compute g(v) for the (unique) outgoing edge.
    std::vector<int> in_ports, out_ports;
    split_ports(v, in_ports, out_ports);
    std::vector<LabelSet> sets;
    for (int p : in_ports) {
      sets.push_back(
          edge_set[static_cast<std::size_t>(edges.of(tree, v, p))]);
    }
    if (out_ports.empty()) {
      if (!feasible_choice(problem, color[static_cast<std::size_t>(v)],
                           {}, sets, nullptr)) {
        res.failure = "infeasible root node " + std::to_string(v);
        return res;
      }
      continue;
    }
    if (out_ports.size() > 1) {
      res.failure = "rake node with two higher neighbors (decomposition "
                    "violation) at " +
                    std::to_string(v);
      return res;
    }
    LabelSet g = 0;
    for (int o = 0; o < problem.alphabet; ++o) {
      if (feasible_choice(problem, color[static_cast<std::size_t>(v)],
                          {o}, sets, nullptr)) {
        g |= (1u << o);
      }
    }
    if (g == 0) {
      res.failure = "empty label-set at node " + std::to_string(v);
      return res;
    }
    edge_set[static_cast<std::size_t>(edges.of(tree, v, out_ports[0]))] =
        g;
    (void)all;
  }

  // --- Top-down: commit labels ---------------------------------------
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    const auto& assign = dec.assignment[static_cast<std::size_t>(v)];
    if (assign.kind == decomp::LayerKind::kCompress) {
      const int ci = chain_of[static_cast<std::size_t>(v)];
      if (ci < 0) continue;  // interior / non-anchor chain nodes
      const ChainPlan& plan = chains[static_cast<std::size_t>(ci)];
      int fixed_left = -1, fixed_right = -1;
      if (plan.left_out_port >= 0) {
        fixed_left = res.edge_label[static_cast<std::size_t>(edges.of(
            tree, plan.path.front(), plan.left_out_port))];
      } else {
        fixed_left = 0;  // unused by the DP when there is no left port
      }
      if (plan.right_out_port >= 0) {
        fixed_right = res.edge_label[static_cast<std::size_t>(edges.of(
            tree, plan.path.back(), plan.right_out_port))];
      }
      const auto committed =
          chain_pairs(plan, fixed_left, fixed_right, /*commit=*/true);
      if (committed.empty()) {
        throw std::logic_error(
            "tree_bw: independent rectangle was not completable");
      }
      continue;
    }

    // Rake node: outgoing already labeled by the higher layer (or none);
    // pick incoming labels.
    std::vector<int> in_ports, out_ports;
    split_ports(v, in_ports, out_ports);
    std::vector<int> fixed;
    for (int p : out_ports) {
      const int lab = res.edge_label[static_cast<std::size_t>(
          edges.of(tree, v, p))];
      if (lab < 0) {
        throw std::logic_error("tree_bw: outgoing edge not yet labeled");
      }
      fixed.push_back(lab);
    }
    std::vector<LabelSet> sets;
    for (int p : in_ports) {
      sets.push_back(
          edge_set[static_cast<std::size_t>(edges.of(tree, v, p))]);
    }
    std::vector<int> picks;
    if (!feasible_choice(problem, color[static_cast<std::size_t>(v)],
                         fixed, sets, &picks)) {
      throw std::logic_error("tree_bw: committed set not completable");
    }
    for (std::size_t s = 0; s < in_ports.size(); ++s) {
      res.edge_label[static_cast<std::size_t>(
          edges.of(tree, v, in_ports[s]))] = picks[s];
    }
  }

  res.solved = true;
  return res;
}

TreeBwResult solve_tree_bw_global(const Tree& tree,
                                  const TreeBwProblem& problem) {
  TreeBwResult res;
  const EdgeIndex edges = EdgeIndex::build(tree);
  const std::vector<int> color = two_color(tree);
  const NodeId n = tree.size();
  res.edge_label.assign(static_cast<std::size_t>(edges.edge_count), -1);

  // Root every component at its smallest node; record a BFS order so the
  // reverse is a valid bottom-up order (children before parents) without
  // recursion (components can be 10^5-node paths).
  std::vector<NodeId> parent(static_cast<std::size_t>(n),
                             graph::kInvalidNode);
  std::vector<int> parent_port(static_cast<std::size_t>(n), -1);
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<NodeId> bfs;
  bfs.reserve(static_cast<std::size_t>(n));
  for (NodeId root = 0; root < n; ++root) {
    if (visited[static_cast<std::size_t>(root)]) continue;
    visited[static_cast<std::size_t>(root)] = 1;
    bfs.push_back(root);
    for (std::size_t head = bfs.size() - 1; head < bfs.size(); ++head) {
      const NodeId v = bfs[head];
      const auto nb = tree.neighbors(v);
      for (std::size_t p = 0; p < nb.size(); ++p) {
        const NodeId u = nb[p];
        if (visited[static_cast<std::size_t>(u)]) continue;
        visited[static_cast<std::size_t>(u)] = 1;
        parent[static_cast<std::size_t>(u)] = v;
        // Record u's port toward v for the edge-id lookup at commit time.
        const auto unb = tree.neighbors(u);
        for (std::size_t q = 0; q < unb.size(); ++q) {
          if (unb[q] == v) {
            parent_port[static_cast<std::size_t>(u)] =
                static_cast<int>(q);
          }
        }
        bfs.push_back(u);
      }
    }
  }

  // Bottom-up: up[v] = labels the edge (v, parent) can carry such that
  // v's subtree completes. Children's sets are independent (disjoint
  // subtrees), so feasible_choice's exists-a-choice semantics is exact.
  std::vector<LabelSet> up(static_cast<std::size_t>(n), 0);
  std::vector<LabelSet> sets;
  for (auto it = bfs.rbegin(); it != bfs.rend(); ++it) {
    const NodeId v = *it;
    sets.clear();
    const auto nb = tree.neighbors(v);
    for (std::size_t p = 0; p < nb.size(); ++p) {
      if (nb[p] == parent[static_cast<std::size_t>(v)]) continue;
      sets.push_back(up[static_cast<std::size_t>(nb[p])]);
    }
    if (parent[static_cast<std::size_t>(v)] == graph::kInvalidNode) {
      // Component root: solvable iff some choice over the children's
      // sets completes the root's own multiset constraint.
      if (!feasible_choice(problem, color[static_cast<std::size_t>(v)],
                           {}, sets, nullptr)) {
        res.failure =
            "global DP: no completion at root " + std::to_string(v);
        return res;
      }
      continue;
    }
    LabelSet g = 0;
    for (int o = 0; o < problem.alphabet; ++o) {
      if (feasible_choice(problem, color[static_cast<std::size_t>(v)],
                          {o}, sets, nullptr)) {
        g |= (1u << o);
      }
    }
    if (g == 0) {
      res.failure =
          "global DP: empty up-set at node " + std::to_string(v);
      return res;
    }
    up[static_cast<std::size_t>(v)] = g;
  }

  // Top-down commit in BFS order: the parent edge's label is fixed when
  // v is reached; choose child-edge labels from the children's up-sets.
  for (const NodeId v : bfs) {
    std::vector<int> fixed;
    if (parent[static_cast<std::size_t>(v)] != graph::kInvalidNode) {
      fixed.push_back(res.edge_label[static_cast<std::size_t>(edges.of(
          tree, v, parent_port[static_cast<std::size_t>(v)]))]);
    }
    sets.clear();
    std::vector<int> set_ports;
    const auto nb = tree.neighbors(v);
    for (std::size_t p = 0; p < nb.size(); ++p) {
      if (nb[p] == parent[static_cast<std::size_t>(v)]) continue;
      sets.push_back(up[static_cast<std::size_t>(nb[p])]);
      set_ports.push_back(static_cast<int>(p));
    }
    std::vector<int> picks;
    if (!feasible_choice(problem, color[static_cast<std::size_t>(v)],
                         fixed, sets, &picks)) {
      throw std::logic_error("tree_bw: global DP commit infeasible");
    }
    for (std::size_t s = 0; s < set_ports.size(); ++s) {
      res.edge_label[static_cast<std::size_t>(
          edges.of(tree, v, set_ports[s]))] = picks[s];
    }
  }

  res.solved = true;
  return res;
}

std::string check_tree_bw(const Tree& tree, const TreeBwProblem& problem,
                          const std::vector<int>& edge_label) {
  const EdgeIndex edges = EdgeIndex::build(tree);
  const std::vector<int> color = two_color(tree);
  if (static_cast<std::int64_t>(edge_label.size()) != edges.edge_count) {
    return "edge label vector size mismatch";
  }
  for (NodeId v = 0; v < tree.size(); ++v) {
    std::vector<int> incident;
    for (int p = 0; p < tree.degree(v); ++p) {
      const int lab =
          edge_label[static_cast<std::size_t>(edges.of(tree, v, p))];
      if (lab < 0 || lab >= problem.alphabet) {
        return "edge at node " + std::to_string(v) + " unlabeled";
      }
      incident.push_back(lab);
    }
    std::sort(incident.begin(), incident.end());
    if (!problem.allowed(color[static_cast<std::size_t>(v)], incident)) {
      return "constraint violated at node " + std::to_string(v);
    }
  }
  return {};
}

TreeBwProblem make_bw_free(int alphabet) {
  TreeBwProblem p;
  p.alphabet = alphabet;
  p.name = "bw-free";
  p.allowed = [](int, const std::vector<int>&) { return true; };
  return p;
}

TreeBwProblem make_bw_edge_coloring(int colors) {
  TreeBwProblem p;
  p.alphabet = colors;
  p.name = "edge-coloring";
  p.allowed = [](int, const std::vector<int>& labels) {
    for (std::size_t i = 1; i < labels.size(); ++i) {
      if (labels[i] == labels[i - 1]) return false;
    }
    return true;
  };
  return p;
}

TreeBwProblem make_bw_sinkless() {
  TreeBwProblem p;
  p.alphabet = 2;
  p.name = "sinkless-orientation";
  // Label 1 on an edge = oriented away from the white endpoint. A node
  // of degree >= 2 needs an outgoing edge: white nodes need some 1,
  // black nodes need some 0.
  p.allowed = [](int color, const std::vector<int>& labels) {
    if (labels.size() <= 1) return true;  // leaves are exempt
    const int need = color == 0 ? 1 : 0;
    for (int l : labels) {
      if (l == need) return true;
    }
    return false;
  };
  return p;
}

TreeBwProblem make_bw_weak_matching() {
  TreeBwProblem p;
  p.alphabet = 2;
  p.name = "weak-matching";
  p.allowed = [](int, const std::vector<int>& labels) {
    int ones = 0;
    for (int l : labels) ones += (l == 1);
    return ones <= 1;
  };
  return p;
}

}  // namespace lcl::bw
