// LCLs on trees in the black-white formalism (Definition 70) and the
// generic rake-and-compress solver of Sections 11.3-11.5.
//
// A problem assigns labels to *edges*; the constraint of a node is a set
// of allowed multisets of incident edge labels (one collection per node
// color of the proper 2-coloring W/B that every tree admits — the
// formalism's black/white split). Inputs are omitted (Sigma_in = {eps}),
// which covers every use the paper makes of the formalism in Section 11.
//
// The solver follows the paper's pipeline:
//   1. compute a (gamma, ell, L)-decomposition (Definition 71);
//   2. sweep layers bottom-up (Definition 75 order), assigning to each
//      rake node's outgoing edge the label-set g(v) of Definition 74 and
//      to each compress path's two outgoing edges the canonical
//      independent restriction f_Pi (Definition 73) of its flexible
//      class;
//   3. sweep top-down, committing one label per edge so every node's
//      multiset constraint holds.
// A problem is *solvable by the generic algorithm* iff no empty
// label-set arises (the testing procedure's criterion); `solve` reports
// failure otherwise.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bw/path_lcl.hpp"
#include "graph/tree.hpp"

namespace lcl::bw {

using graph::NodeId;
using graph::Tree;

/// An LCL on tree edges in the black-white formalism, inputs omitted.
/// `allowed(color, labels)` decides whether the sorted multiset of
/// incident edge labels is permitted for a node of the given 2-coloring
/// color (0 = white, 1 = black).
struct TreeBwProblem {
  int alphabet = 0;
  std::string name;
  /// Degree-indexed explicit constraint sets would be exponential; a
  /// predicate keeps problems like "all incident labels distinct"
  /// O(1)-describable. Must be symmetric in the multiset (the caller
  /// passes sorted labels).
  std::function<bool(int color, const std::vector<int>&)> allowed;
};

/// One compress chain the generic solver processed, with the label-sets
/// it committed to the chain's outgoing edges (0 = no outgoing edge on
/// that side). Solvers use these to decide, per chain, whether the
/// induced compress problem is O(1)-completable or needs a Theta(log*)
/// split — the per-instance realization of Definition 77.
struct ChainRecord {
  std::vector<NodeId> nodes;  ///< in path order
  LabelSet left = 0;          ///< set on the front node's outgoing edge
  LabelSet right = 0;         ///< set on the back node's outgoing edge
};

/// Result of the generic solver.
struct TreeBwResult {
  bool solved = false;
  std::string failure;          ///< first empty label-set, if any
  std::vector<int> edge_label;  ///< per edge id (see edge_index)
  /// Compress chains in bottom-up order (filled by solve_tree_bw only).
  std::vector<ChainRecord> chains;
};

/// Canonical edge indexing: edge {u, v} with u < v gets a dense id. The
/// flat id array is laid out on the Tree's native CSR slots, so `of` is
/// one lookup through the tree's own offset array — no parallel offset
/// table is materialized.
struct EdgeIndex {
  std::vector<std::int64_t> id;  ///< flat [tree CSR slot] -> edge id
  std::int64_t edge_count = 0;

  static EdgeIndex build(const Tree& t);
  [[nodiscard]] std::int64_t of(const Tree& t, NodeId v, int port) const;
};

/// Runs the generic rake-and-compress solver.
[[nodiscard]] TreeBwResult solve_tree_bw(const Tree& tree,
                                         const TreeBwProblem& problem);

/// Exact global solver: roots every component and runs the classic
/// bottom-up feasible-label DP followed by a top-down commit, with no
/// canonical-rectangle restriction. Solves exactly the instances that
/// admit *any* labeling (the Theta(log n)-schedule fallback for problems
/// the flexible generic solver rejects, e.g. parity-rigid chains).
[[nodiscard]] TreeBwResult solve_tree_bw_global(const Tree& tree,
                                               const TreeBwProblem& problem);

/// Verifies an edge labeling against the problem (independent checker).
[[nodiscard]] std::string check_tree_bw(const Tree& tree,
                                        const TreeBwProblem& problem,
                                        const std::vector<int>& edge_label);

/// Built-in problems.
/// Every multiset allowed: trivially solvable.
[[nodiscard]] TreeBwProblem make_bw_free(int alphabet);
/// Proper edge coloring with `colors` colors (needs colors >= max degree).
[[nodiscard]] TreeBwProblem make_bw_edge_coloring(int colors);
/// Sinkless-orientation flavor: labels {0,1} read as "toward the white
/// endpoint" (0) / "toward the black endpoint" (1); every node of degree
/// >= 2 needs at least one outgoing edge. On trees with the white/black
/// split, a white node's incident label 1 means outgoing.
[[nodiscard]] TreeBwProblem make_bw_sinkless();
/// At most one incident edge labeled 1 per node ("matching-ish").
[[nodiscard]] TreeBwProblem make_bw_weak_matching();

}  // namespace lcl::bw
