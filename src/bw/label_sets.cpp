#include "bw/label_sets.hpp"

#include <algorithm>
#include <deque>

namespace lcl::bw {

namespace {

/// Boolean adjacency matrix power tooling: walk[a][b] == true iff a path
/// of exactly `len-1` edges can carry labels a ... b.
using BoolMatrix = std::vector<LabelSet>;  // row a: bitmask over b

BoolMatrix identity(int alphabet) {
  BoolMatrix m(static_cast<std::size_t>(alphabet), 0);
  for (int a = 0; a < alphabet; ++a) m[static_cast<std::size_t>(a)] = 1u << a;
  return m;
}

BoolMatrix multiply(const BoolMatrix& x, const BoolMatrix& y, int alphabet) {
  BoolMatrix out(static_cast<std::size_t>(alphabet), 0);
  for (int a = 0; a < alphabet; ++a) {
    LabelSet row = 0;
    for (int mid = 0; mid < alphabet; ++mid) {
      if ((x[static_cast<std::size_t>(a)] >> mid) & 1u) {
        row |= y[static_cast<std::size_t>(mid)];
      }
    }
    out[static_cast<std::size_t>(a)] = row;
  }
  return out;
}

BoolMatrix adjacency(const PathLcl& lcl) { return lcl.adjacent; }

BoolMatrix matrix_power(const PathLcl& lcl, int edges) {
  BoolMatrix result = identity(lcl.alphabet);
  BoolMatrix base = adjacency(lcl);
  int e = edges;
  while (e > 0) {
    if (e & 1) result = multiply(result, base, lcl.alphabet);
    base = multiply(base, base, lcl.alphabet);
    e >>= 1;
  }
  return result;
}

}  // namespace

std::vector<std::pair<int, int>> maximal_class_pairs(const PathLcl& lcl,
                                                     int len) {
  std::vector<std::pair<int, int>> pairs;
  if (len < 1) return pairs;
  const BoolMatrix walk = matrix_power(lcl, len - 1);
  for (int a = 0; a < lcl.alphabet; ++a) {
    if (!((lcl.left_boundary >> a) & 1u)) continue;
    for (int b = 0; b < lcl.alphabet; ++b) {
      if (!((lcl.right_boundary >> b) & 1u)) continue;
      if ((walk[static_cast<std::size_t>(a)] >> b) & 1u) {
        pairs.emplace_back(a, b);
      }
    }
  }
  return pairs;
}

std::vector<std::pair<int, int>> flexible_class_pairs(const PathLcl& lcl,
                                                      int min_len) {
  // A pair feasible at two consecutive lengths stays feasible for every
  // larger length of matching parity reachable by pumping; requiring
  // both parities within a window of 2*alphabet covers "all large
  // lengths".
  std::vector<std::vector<std::pair<int, int>>> by_len;
  for (int len = min_len; len <= min_len + 2 * lcl.alphabet + 1; ++len) {
    by_len.push_back(maximal_class_pairs(lcl, len));
  }
  std::vector<std::pair<int, int>> out;
  for (int a = 0; a < lcl.alphabet; ++a) {
    for (int b = 0; b < lcl.alphabet; ++b) {
      bool even_ok = false;
      bool odd_ok = false;
      for (std::size_t i = 0; i < by_len.size(); ++i) {
        const bool present =
            std::find(by_len[i].begin(), by_len[i].end(),
                      std::make_pair(a, b)) != by_len[i].end();
        if (!present) continue;
        if ((min_len + static_cast<int>(i)) % 2 == 0) even_ok = true;
        else odd_ok = true;
      }
      if (even_ok && odd_ok) out.emplace_back(a, b);
    }
  }
  return out;
}

Rectangle independent_rectangle(const std::vector<std::pair<int, int>>& pairs,
                                int alphabet) {
  // Enumerate candidate left-sets from rows: for each subset choice we
  // only need the "closed" candidates: for left-set A, the best right-set
  // is the intersection of rows of A. Try A = every subset of rows that
  // arises as an intersection-support; with alphabet <= 16, iterate over
  // single rows and their combinations greedily (exact over <= 2^16 is
  // too slow; rows-lattice suffices for maximal-area rectangles in
  // practice and is deterministic).
  std::vector<LabelSet> row(static_cast<std::size_t>(alphabet), 0);
  for (auto [a, b] : pairs) {
    row[static_cast<std::size_t>(a)] |= (1u << b);
  }
  Rectangle best;
  std::int64_t best_area = 0;
  // Candidate right-sets: all distinct intersections of nonempty rows,
  // built incrementally (there are at most alphabet^2 of them here).
  std::set<LabelSet> candidates;
  for (int a = 0; a < alphabet; ++a) {
    if (row[static_cast<std::size_t>(a)] == 0) continue;
    std::set<LabelSet> next = candidates;
    next.insert(row[static_cast<std::size_t>(a)]);
    for (LabelSet c : candidates) {
      next.insert(c & row[static_cast<std::size_t>(a)]);
    }
    candidates = std::move(next);
  }
  for (LabelSet right : candidates) {
    if (right == 0) continue;
    LabelSet left = 0;
    for (int a = 0; a < alphabet; ++a) {
      if ((row[static_cast<std::size_t>(a)] & right) == right) {
        left |= (1u << a);
      }
    }
    const std::int64_t area =
        static_cast<std::int64_t>(__builtin_popcount(left)) *
        __builtin_popcount(right);
    if (area > best_area ||
        (area == best_area &&
         (left < best.left || (left == best.left && right < best.right)))) {
      best_area = area;
      best = {left, right};
    }
  }
  return best;
}

LabelSet rake_step(const PathLcl& lcl, LabelSet incoming) {
  LabelSet out = 0;
  for (int b = 0; b < lcl.alphabet; ++b) {
    // b is committable iff some a in `incoming` is adjacent to b.
    if (lcl.adjacent[static_cast<std::size_t>(b)] & incoming) {
      out |= (1u << b);
    }
  }
  return out;
}

TestingOutcome testing_procedure(const PathLcl& lcl, int compress_len) {
  TestingOutcome outcome;
  std::deque<LabelSet> frontier;
  auto push = [&](LabelSet s) {
    if (outcome.seen.insert(s).second) frontier.push_back(s);
    if (s == 0) outcome.good = false;
  };
  // Leaves commit to any boundary-allowed label: the initial sets are
  // the singletons... in Definition 74 the leaf's outgoing label-set is
  // everything a degree-1 node can commit to, i.e. the full boundary set.
  push(lcl.left_boundary);
  push(lcl.right_boundary);

  while (!frontier.empty() && outcome.good) {
    ++outcome.iterations;
    const LabelSet s = frontier.front();
    frontier.pop_front();
    // Rake step.
    push(rake_step(lcl, s));
    // Compress step against every previously seen set: a long path whose
    // two sides carry label-sets (s, t) restricts to the canonical
    // independent rectangle of the flexible class.
    for (LabelSet t : std::set<LabelSet>(outcome.seen)) {
      PathLcl constrained = with_boundaries(lcl, s, t);
      const auto pairs = flexible_class_pairs(constrained, compress_len);
      const Rectangle rect =
          independent_rectangle(pairs, lcl.alphabet);
      push(rect.left);
      push(rect.right);
    }
    if (outcome.iterations > 4096) break;  // bounded procedure
  }
  return outcome;
}

}  // namespace lcl::bw
