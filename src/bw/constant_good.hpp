// The constant-good function test (Definitions 77 and 80, Theorem 7).
//
// Section 11 shows: an LCL has O(1) deterministic node-averaged
// complexity iff a *constant-good* function f_{Pi,infinity} exists — one
// whose associated compress problem Pi' (labeling arbitrarily long
// compress paths whose boundary edges are restricted to label-sets in
// the codomain of g) is solvable in O(1) worst-case rounds. Otherwise
// compress paths must be split, which costs Theta(log* n), and by the
// gap theorem nothing lies strictly between.
//
// Here the test is realized for path-form LCLs: enumerate the label-sets
// the testing procedure can produce, and ask — via the decidable path
// classifier (Lemma 81) — whether every compress problem they induce is
// O(1)-solvable.
#pragma once

#include <string>
#include <vector>

#include "bw/label_sets.hpp"
#include "bw/path_lcl.hpp"

namespace lcl::bw {

/// Verdict of the Theorem-7 decision procedure for a path-form LCL.
struct ConstantGoodVerdict {
  bool solvable = true;        ///< a good function exists at all
  bool constant_good = false;  ///< the compress problems are all O(1)
  /// The worst compress-problem complexity encountered (the O(log* n)
  /// cost the solver pays when splitting is needed).
  PathComplexity worst_compress = PathComplexity::kConstant;
  /// Resulting node-averaged class per Theorem 7's dichotomy.
  std::string node_averaged_class;
};

/// Decides whether `lcl` (as the compress-path problem of a tree LCL)
/// admits a constant-good function.
[[nodiscard]] ConstantGoodVerdict decide_constant_good(const PathLcl& lcl);

}  // namespace lcl::bw
