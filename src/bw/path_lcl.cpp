#include "bw/path_lcl.hpp"

#include <numeric>
#include <stdexcept>

namespace lcl::bw {

std::string to_string(PathComplexity c) {
  switch (c) {
    case PathComplexity::kConstant: return "O(1)";
    case PathComplexity::kLogStar: return "Theta(log* n)";
    case PathComplexity::kLinear: return "Theta(n)";
    case PathComplexity::kUnsolvable: return "unsolvable";
  }
  return "?";
}

namespace {

/// Labels reachable from `from` by walks of length <= alphabet hops.
LabelSet reachable(const PathLcl& lcl, LabelSet from) {
  LabelSet seen = from;
  for (int step = 0; step < lcl.alphabet; ++step) {
    LabelSet next = seen;
    for (int a = 0; a < lcl.alphabet; ++a) {
      if ((seen >> a) & 1u) next |= lcl.adjacent[static_cast<std::size_t>(a)];
    }
    if (next == seen) break;
    seen = next;
  }
  return seen;
}

/// Tarjan-free SCC via Kosaraju on the (symmetric) adjacency digraph.
/// Because `adjacent` is symmetric, SCC == connected component of the
/// label graph restricted to labels with at least one incident pair.
std::vector<int> components(const PathLcl& lcl) {
  std::vector<int> comp(static_cast<std::size_t>(lcl.alphabet), -1);
  int count = 0;
  for (int s = 0; s < lcl.alphabet; ++s) {
    if (comp[static_cast<std::size_t>(s)] >= 0 ||
        lcl.adjacent[static_cast<std::size_t>(s)] == 0) {
      continue;
    }
    std::vector<int> stack{s};
    comp[static_cast<std::size_t>(s)] = count;
    while (!stack.empty()) {
      const int a = stack.back();
      stack.pop_back();
      for (int b = 0; b < lcl.alphabet; ++b) {
        if (lcl.allows(a, b) && comp[static_cast<std::size_t>(b)] < 0) {
          comp[static_cast<std::size_t>(b)] = count;
          stack.push_back(b);
        }
      }
    }
    ++count;
  }
  return comp;
}

/// Cycle-length gcd of a component: 2 if bipartite (every closed walk is
/// even), 1 otherwise. Self-loops give gcd 1 trivially.
int component_gcd(const PathLcl& lcl, const std::vector<int>& comp, int c) {
  // 2-color the component; an edge within one color class means odd cycle.
  std::vector<int> color(static_cast<std::size_t>(lcl.alphabet), -1);
  for (int s = 0; s < lcl.alphabet; ++s) {
    if (comp[static_cast<std::size_t>(s)] != c ||
        color[static_cast<std::size_t>(s)] >= 0) {
      continue;
    }
    color[static_cast<std::size_t>(s)] = 0;
    std::vector<int> stack{s};
    while (!stack.empty()) {
      const int a = stack.back();
      stack.pop_back();
      if (lcl.allows(a, a)) return 1;  // self-loop
      for (int b = 0; b < lcl.alphabet; ++b) {
        if (!lcl.allows(a, b)) continue;
        if (color[static_cast<std::size_t>(b)] < 0) {
          color[static_cast<std::size_t>(b)] =
              1 - color[static_cast<std::size_t>(a)];
          stack.push_back(b);
        } else if (color[static_cast<std::size_t>(b)] ==
                   color[static_cast<std::size_t>(a)]) {
          return 1;  // odd closed walk
        }
      }
    }
  }
  return 2;
}

}  // namespace

PathComplexity classify(const PathLcl& lcl) {
  if (lcl.alphabet <= 0 ||
      static_cast<int>(lcl.adjacent.size()) != lcl.alphabet) {
    throw std::invalid_argument("classify: malformed PathLcl");
  }
  // Labels usable on arbitrarily long paths: those inside some component
  // with a cycle. On a symmetric digraph every edge lies on a closed walk
  // (a-b-a), so any label with a neighbor is "recurrent".
  const LabelSet from_left = reachable(lcl, lcl.left_boundary);
  const LabelSet from_right = reachable(lcl, lcl.right_boundary);
  LabelSet live = 0;
  for (int a = 0; a < lcl.alphabet; ++a) {
    if (lcl.adjacent[static_cast<std::size_t>(a)] != 0) {
      live |= (1u << a);
    }
  }
  const LabelSet usable = live & from_left & from_right;
  if (usable == 0) return PathComplexity::kUnsolvable;

  // O(1): a self-loop label reachable from both boundaries.
  for (int a = 0; a < lcl.alphabet; ++a) {
    if (((usable >> a) & 1u) && lcl.allows(a, a)) {
      return PathComplexity::kConstant;
    }
  }

  // log*: a flexible (gcd 1) component among the usable labels.
  const std::vector<int> comp = components(lcl);
  for (int a = 0; a < lcl.alphabet; ++a) {
    if (!((usable >> a) & 1u)) continue;
    const int c = comp[static_cast<std::size_t>(a)];
    if (c >= 0 && component_gcd(lcl, comp, c) == 1) {
      return PathComplexity::kLogStar;
    }
  }
  return PathComplexity::kLinear;
}

PathLcl make_two_coloring_lcl() {
  PathLcl p;
  p.name = "2-coloring";
  p.alphabet = 2;
  p.adjacent = {0b10, 0b01};  // W<->B only
  p.left_boundary = p.right_boundary = 0b11;
  return p;
}

PathLcl make_three_coloring_lcl() {
  PathLcl p;
  p.name = "3-coloring";
  p.alphabet = 3;
  p.adjacent = {0b110, 0b101, 0b011};
  p.left_boundary = p.right_boundary = 0b111;
  return p;
}

PathLcl make_free_lcl(int alphabet) {
  PathLcl p;
  p.name = "free";
  p.alphabet = alphabet;
  const LabelSet all = static_cast<LabelSet>((1u << alphabet) - 1);
  p.adjacent.assign(static_cast<std::size_t>(alphabet), all);
  p.left_boundary = p.right_boundary = all;
  return p;
}

PathLcl make_mis_lcl() {
  PathLcl p;
  p.name = "MIS";
  p.alphabet = 2;  // 0 = in, 1 = out
  // in-in forbidden (independence); out-out forbidden (maximality on
  // paths: an out node needs an in neighbor, enforced pairwise).
  p.adjacent = {0b10, 0b01};
  // Endpoint out-nodes would need an in neighbor; allow both for the
  // pure pairwise version... restrict endpoints to `in` for maximality.
  p.left_boundary = p.right_boundary = 0b01;
  // NOTE: the pairwise encoding of MIS on paths coincides with
  // 2-coloring; the classic flexible encoding needs distance-2 state,
  // modeled by the 3-label variant below.
  p.name = "MIS(pairwise=2col)";
  return p;
}

PathLcl make_unsolvable_lcl() {
  PathLcl p;
  p.name = "unsolvable";
  p.alphabet = 2;
  p.adjacent = {0, 0};
  p.left_boundary = p.right_boundary = 0b11;
  return p;
}

PathLcl with_boundaries(PathLcl lcl, LabelSet left, LabelSet right) {
  lcl.left_boundary = left;
  lcl.right_boundary = right;
  return lcl;
}

}  // namespace lcl::bw
