#include "bw/constant_good.hpp"

#include <algorithm>

namespace lcl::bw {

ConstantGoodVerdict decide_constant_good(const PathLcl& lcl) {
  ConstantGoodVerdict verdict;

  const TestingOutcome outcome = testing_procedure(lcl);
  if (!outcome.good) {
    verdict.solvable = false;
    verdict.constant_good = false;
    verdict.node_averaged_class = "unsolvable on long paths";
    return verdict;
  }

  // Every pair of reachable label-sets induces one compress problem Pi';
  // the function is constant-good iff all of them classify as O(1).
  PathComplexity worst = PathComplexity::kConstant;
  auto order = [](PathComplexity c) {
    switch (c) {
      case PathComplexity::kConstant: return 0;
      case PathComplexity::kLogStar: return 1;
      case PathComplexity::kLinear: return 2;
      case PathComplexity::kUnsolvable: return 3;
    }
    return 3;
  };
  for (LabelSet s : outcome.seen) {
    if (s == 0) continue;
    for (LabelSet t : outcome.seen) {
      if (t == 0) continue;
      const PathLcl compress = with_boundaries(lcl, s, t);
      const PathComplexity c = classify(compress);
      if (order(c) > order(worst)) worst = c;
    }
  }
  verdict.worst_compress = worst;
  verdict.constant_good = (worst == PathComplexity::kConstant);
  if (verdict.constant_good) {
    verdict.node_averaged_class = "O(1)";
  } else if (worst == PathComplexity::kLogStar) {
    // Theorem 7 + Theorem 11 side: splitting needed, so the node-averaged
    // complexity is (log* n)^{Omega(1)} and at most O(log* n).
    verdict.node_averaged_class = "(log* n)^{Theta(1)} (gap: nothing in "
                                  "omega(1)..(log* n)^{o(1)})";
  } else {
    verdict.node_averaged_class = "polynomial or harder";
  }
  return verdict;
}

}  // namespace lcl::bw
