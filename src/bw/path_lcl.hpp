// LCLs on paths in automaton form, and their decidable complexity
// classification — the machinery behind Section 11's constant-good
// function test (Lemma 81: O(1)-solvability of path LCLs is decidable).
//
// A `PathLcl` labels the *nodes* of a path with labels from a finite
// alphabet (<= 16), subject to (i) a symmetric adjacency relation over
// pairs of labels and (ii) sets of labels allowed at the two path
// endpoints. This captures every path problem used in the paper's
// Section 11 (3-coloring, 2-coloring, the compress problems Pi' of
// Definition 77 after label-set restriction).
//
// Classification (deterministic, standard automata-lens results for
// paths; cf. [BBC+19, CSS21] as cited by the paper):
//   * kConstant  — some label has a self-loop reachable from both
//     boundary sets within |Sigma| hops: everyone can pump it, O(1).
//   * kLogStar   — no such loop, but some strongly-connected component of
//     the adjacency digraph is *flexible* (cycle-length gcd 1): symmetry
//     breaking alone is needed, Theta(log* n). By Feuilloley's Lemma 16
//     the node-averaged class coincides with the worst case on paths.
//   * kLinear    — solvable only with global coordination (e.g.
//     2-coloring: all cycles even), Theta(n).
//   * kUnsolvable — no long path admits any labeling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lcl::bw {

/// A set of labels as a bitmask (alphabet size <= 16).
using LabelSet = std::uint32_t;

/// LCL on paths with node outputs and a symmetric adjacency constraint.
struct PathLcl {
  int alphabet = 0;                 ///< number of output labels
  std::vector<LabelSet> adjacent;   ///< adjacent[a] = set of b allowed next to a
  LabelSet left_boundary = 0;       ///< labels allowed at a path endpoint
  LabelSet right_boundary = 0;
  std::string name;

  [[nodiscard]] bool allows(int a, int b) const {
    return (adjacent[static_cast<std::size_t>(a)] >> b) & 1u;
  }
};

enum class PathComplexity {
  kConstant,
  kLogStar,
  kLinear,
  kUnsolvable,
};

[[nodiscard]] std::string to_string(PathComplexity c);

/// The decidable classification described above.
[[nodiscard]] PathComplexity classify(const PathLcl& lcl);

/// Built-in problems used by tests and the Theorem-7 bench.
[[nodiscard]] PathLcl make_two_coloring_lcl();
[[nodiscard]] PathLcl make_three_coloring_lcl();
/// All labels mutually compatible (including self): the trivial O(1) LCL.
[[nodiscard]] PathLcl make_free_lcl(int alphabet);
/// Maximal independent set on paths: {in, out}, no two `in` adjacent, no
/// two consecutive `out` (maximality): flexible, Theta(log* n).
[[nodiscard]] PathLcl make_mis_lcl();
/// A deliberately unsolvable LCL (no label may neighbor anything).
[[nodiscard]] PathLcl make_unsolvable_lcl();

/// Restricts the boundary sets of `lcl` (the Definition-77 move: compress
/// problems constrain their two outgoing edges by label-sets).
[[nodiscard]] PathLcl with_boundaries(PathLcl lcl, LabelSet left,
                                      LabelSet right);

}  // namespace lcl::bw
