// Label-sets, classes, and the bounded testing procedure
// (Definitions 73-74, Algorithm 1 of Section 11.6), specialized to the
// path-shaped subgraphs on which the solver actually uses them.
//
// For a path H whose two outgoing edges must carry labels completable
// against the incoming constraints, the *maximal class* projects to the
// set of feasible (left-label, right-label) pairs; an *independent class*
// is a sub-rectangle A x B of that set (any mix of choices remains
// completable — exactly Definition 73's independence). The function
// f_Pi maps the maximal class to a canonical maximal rectangle.
//
// The fixed-point exploration mirrors Algorithm 1's rake/compress steps
// on paths: starting from the boundary label-sets, repeatedly apply the
// one-node extension (rake) and the long-path rectangle restriction
// (compress), recording every label-set produced. The tested function is
// *good* iff no empty label-set ever arises.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "bw/path_lcl.hpp"

namespace lcl::bw {

/// Feasible (left, right) output pairs for a path of `len` nodes between
/// two constrained ends: pair (a, b) is in the class iff some labeling
/// l_1..l_len with l_1 = a, l_len = b satisfies all adjacency
/// constraints. For len == 1 the pair is (a, a).
[[nodiscard]] std::vector<std::pair<int, int>> maximal_class_pairs(
    const PathLcl& lcl, int len);

/// Feasible pairs for *every* length >= `min_len` simultaneously is what
/// long compress paths need; this computes pairs feasible for both some
/// even and some odd length in [min_len, min_len + 2*alphabet] (walk
/// pumping makes that equivalent to "all large lengths").
[[nodiscard]] std::vector<std::pair<int, int>> flexible_class_pairs(
    const PathLcl& lcl, int min_len);

/// The canonical independent restriction: the maximal-area rectangle
/// A x B contained in `pairs` (ties broken lexicographically). Returns
/// {0, 0} if `pairs` is empty.
struct Rectangle {
  LabelSet left = 0;
  LabelSet right = 0;
  [[nodiscard]] bool empty() const { return left == 0 || right == 0; }
};
[[nodiscard]] Rectangle independent_rectangle(
    const std::vector<std::pair<int, int>>& pairs, int alphabet);

/// One-node extension (the rake step of Definition 74): the labels a
/// node may commit to on its outgoing edge given that its single
/// incoming edge carries a label-set S.
[[nodiscard]] LabelSet rake_step(const PathLcl& lcl, LabelSet incoming);

/// Outcome of the bounded testing procedure.
struct TestingOutcome {
  bool good = true;          ///< no empty label-set produced
  std::set<LabelSet> seen;   ///< all label-sets reached
  int iterations = 0;
};

/// Runs the rake/compress fixed point from the boundary label-sets.
/// `compress_len` is the minimum compress-path length (ell).
[[nodiscard]] TestingOutcome testing_procedure(const PathLcl& lcl,
                                               int compress_len = 4);

}  // namespace lcl::bw
