// Rake-and-compress tree decompositions (Section 11.2; Definitions 71, 43).
//
// Iteration i of the procedure:
//   * gamma rake sub-steps: remove nodes of remaining degree <= 1
//     (sublayers V^R_{i,1} .. V^R_{i,gamma});
//   * one compress step: remove maximal chains of remaining-degree-2 nodes
//     of length >= ell (layer V^C_i). In the *proper* variant the chains
//     are first split into segments of length in [ell, 2*ell] by promoting
//     splitter nodes to the next rake layer; the *relaxed* variant
//     (Definition 43) keeps whole chains.
//
// Lemma 72: gamma = n^{1/k} gives at most k rake layers in O(k n^{1/k})
// distributed rounds; gamma = 1 gives O(log n) layers in O(log n) rounds.
//
// `assign_step` records the peeling time at which a node was removed (one
// unit per rake sub-step / compress step); it is the distributed round in
// which the node learns its layer, used by solvers for round charging.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/tree.hpp"

namespace lcl::decomp {

using graph::NodeId;
using graph::Tree;

/// Kind of layer a node belongs to.
enum class LayerKind : int { kRake = 0, kCompress = 1 };

/// Per-node layer assignment.
struct LayerAssignment {
  LayerKind kind = LayerKind::kRake;
  int layer = 0;     ///< i, 1-based
  int sublayer = 0;  ///< j for rake layers (1..gamma), 0 for compress
};

/// Total order on (sub)layers per Definition 75:
/// V^R_{i,j} < V^R_{i',j'} iff (i,j) < (i',j'); V^R_{i,j} < V^C_i;
/// V^C_i < V^R_{i+1,j}. Encoded so that integer comparison decides.
[[nodiscard]] inline std::int64_t layer_order_key(const LayerAssignment& a) {
  // Rake (i, j) -> 2*i*10^6 + j ; Compress i -> (2*i+1)*10^6.
  const std::int64_t block =
      a.kind == LayerKind::kRake ? 2 * a.layer : 2 * a.layer + 1;
  return block * 1000000 + a.sublayer;
}

/// A computed decomposition.
struct Decomposition {
  int gamma = 0;
  int ell = 0;
  int num_layers = 0;  ///< number of iterations actually used (L)
  bool relaxed = false;
  std::vector<LayerAssignment> assignment;  ///< per node
  std::vector<int> assign_step;  ///< peeling time (>=1) per node
};

/// Computes a (gamma, ell, L)-decomposition.
///
/// If `split_paths` is true, long chains are split into [ell, 2*ell]
/// segments (proper decomposition, Definition 71); splitters land in the
/// next rake layer. Otherwise whole chains are compressed (relaxed,
/// Definition 43). Throws if more than `max_layers` iterations are needed.
///
/// `pinned` (optional, per node) delays a node's removal until it is the
/// last of its component: pinned nodes neither compress nor rake while a
/// non-pinned neighbor remains. The weight-augmented solver pins the
/// active-adjacent weight nodes so that Definition 67's rule 3 (point at
/// the active) never conflicts with an in-tree orientation.
[[nodiscard]] Decomposition rake_compress(const Tree& tree, int gamma,
                                          int ell, bool split_paths,
                                          int max_layers = 1 << 20,
                                          const std::vector<char>* pinned =
                                              nullptr);

/// Validation of the decomposition properties (Definition 71 resp. 43):
/// compress components are chains of the right length whose endpoints have
/// exactly one higher-layer neighbor; rake components have <= 1 node with
/// a higher-layer neighbor; rake sublayers are independent sets with <= 1
/// higher neighbor. Returns an empty string on success, else the first
/// violation.
[[nodiscard]] std::string validate_decomposition(const Tree& tree,
                                                 const Decomposition& d);

}  // namespace lcl::decomp
