#include "decomp/rake_compress.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace lcl::decomp {

namespace {

/// Working state for the peeling process. The per-(sub)step worksets
/// (`eligible`, `peel`, chain scanning marks) live here and are re-`assign`ed
/// rather than re-allocated, so one decomposition performs a constant
/// number of heap allocations regardless of the layer count.
struct Peeler {
  const Tree& tree;
  std::vector<int> degree;      // remaining degree
  std::vector<char> removed;    // 1 once assigned
  std::vector<char> eligible;   // rake-substep workset
  std::vector<char> in_chain;   // compress-step workset
  std::vector<char> visited;    // compress-step chain scan marks
  std::vector<NodeId> peel;     // nodes raked this substep
  Decomposition out;
  int step = 0;  // global peeling-time counter

  explicit Peeler(const Tree& t) : tree(t) {
    const std::size_t n = static_cast<std::size_t>(t.size());
    degree.resize(n);
    removed.assign(n, 0);
    out.assignment.resize(n);
    out.assign_step.assign(n, 0);
    for (NodeId v = 0; v < t.size(); ++v) {
      degree[static_cast<std::size_t>(v)] = t.degree(v);
    }
  }

  [[nodiscard]] bool alive(NodeId v) const {
    return removed[static_cast<std::size_t>(v)] == 0;
  }

  void remove(NodeId v, LayerAssignment a) {
    removed[static_cast<std::size_t>(v)] = 1;
    out.assignment[static_cast<std::size_t>(v)] = a;
    out.assign_step[static_cast<std::size_t>(v)] = step;
    for (NodeId u : tree.neighbors(v)) {
      if (alive(u)) --degree[static_cast<std::size_t>(u)];
    }
  }

  [[nodiscard]] std::int64_t alive_count() const {
    std::int64_t c = 0;
    for (char r : removed) c += (r == 0);
    return c;
  }
};

}  // namespace

Decomposition rake_compress(const Tree& tree, int gamma, int ell,
                            bool split_paths, int max_layers,
                            const std::vector<char>* pinned) {
  if (gamma < 1) throw std::invalid_argument("rake_compress: gamma >= 1");
  if (ell < 1) throw std::invalid_argument("rake_compress: ell >= 1");

  auto is_pinned = [&](NodeId v) {
    return pinned != nullptr && (*pinned)[static_cast<std::size_t>(v)] != 0;
  };

  Peeler p(tree);
  p.out.gamma = gamma;
  p.out.ell = ell;
  p.out.relaxed = !split_paths;

  std::int64_t remaining = tree.size();
  int layer = 0;
  while (remaining > 0) {
    ++layer;
    if (layer > max_layers) {
      throw std::runtime_error("rake_compress: layer budget exceeded");
    }

    // gamma rake sub-steps. Two adjacent rake-eligible nodes (the final
    // pair of a path component) must not share a sublayer (Definition 71
    // property 3): the smaller LOCAL id rakes first, its partner follows
    // in the next sub-step.
    for (int j = 1; j <= gamma && remaining > 0; ++j) {
      ++p.step;
      std::vector<char>& eligible = p.eligible;
      eligible.assign(static_cast<std::size_t>(tree.size()), 0);
      for (NodeId v = 0; v < tree.size(); ++v) {
        if (!p.alive(v) || p.degree[static_cast<std::size_t>(v)] > 1) {
          continue;
        }
        if (is_pinned(v) && p.degree[static_cast<std::size_t>(v)] == 1) {
          // A pinned node waits unless its last neighbor is also pinned
          // (mutual pins resolve by id to avoid stalling).
          NodeId last = graph::kInvalidNode;
          for (NodeId u : tree.neighbors(v)) {
            if (p.alive(u)) last = u;
          }
          if (!(last != graph::kInvalidNode && is_pinned(last) &&
                tree.local_id(v) < tree.local_id(last))) {
            continue;
          }
        }
        eligible[static_cast<std::size_t>(v)] = 1;
      }
      std::vector<NodeId>& peel = p.peel;
      peel.clear();
      for (NodeId v = 0; v < tree.size(); ++v) {
        if (!eligible[static_cast<std::size_t>(v)]) continue;
        bool deferred = false;
        for (NodeId u : tree.neighbors(v)) {
          if (p.alive(u) && eligible[static_cast<std::size_t>(u)] &&
              tree.local_id(u) < tree.local_id(v)) {
            deferred = true;
            break;
          }
        }
        if (!deferred) peel.push_back(v);
      }
      if (peel.empty()) break;  // nothing rakes; go to compress
      for (NodeId v : peel) {
        p.remove(v, {LayerKind::kRake, layer, j});
      }
      remaining -= static_cast<std::int64_t>(peel.size());
    }
    if (remaining == 0) break;

    // Compress step: find maximal chains of alive degree-2 nodes.
    ++p.step;
    std::vector<char>& in_chain = p.in_chain;
    std::vector<char>& visited = p.visited;
    in_chain.assign(static_cast<std::size_t>(tree.size()), 0);
    visited.assign(static_cast<std::size_t>(tree.size()), 0);
    for (NodeId v = 0; v < tree.size(); ++v) {
      in_chain[static_cast<std::size_t>(v)] =
          (p.alive(v) && !is_pinned(v) &&
           p.degree[static_cast<std::size_t>(v)] == 2)
              ? 1
              : 0;
    }

    std::vector<std::vector<NodeId>> chains;
    for (NodeId v = 0; v < tree.size(); ++v) {
      if (!in_chain[static_cast<std::size_t>(v)] ||
          visited[static_cast<std::size_t>(v)]) {
        continue;
      }
      // Count chain neighbors of v.
      int chain_deg = 0;
      for (NodeId u : tree.neighbors(v)) {
        if (p.alive(u) && in_chain[static_cast<std::size_t>(u)]) ++chain_deg;
      }
      if (chain_deg == 2) continue;  // interior; start from an end
      // Walk the chain from this end.
      std::vector<NodeId> chain;
      NodeId prev = graph::kInvalidNode;
      NodeId cur = v;
      while (cur != graph::kInvalidNode) {
        visited[static_cast<std::size_t>(cur)] = 1;
        chain.push_back(cur);
        NodeId next = graph::kInvalidNode;
        for (NodeId u : tree.neighbors(cur)) {
          if (u != prev && p.alive(u) &&
              in_chain[static_cast<std::size_t>(u)] &&
              !visited[static_cast<std::size_t>(u)]) {
            next = u;
            break;
          }
        }
        prev = cur;
        cur = next;
      }
      chains.push_back(std::move(chain));
    }

    bool compressed_any = false;
    for (const auto& chain : chains) {
      const std::int64_t len = static_cast<std::int64_t>(chain.size());
      if (len < ell) continue;  // too short; rakes away in later layers
      if (!split_paths) {
        for (NodeId v : chain) {
          p.remove(v, {LayerKind::kCompress, layer, 0});
        }
        remaining -= len;
        compressed_any = true;
        continue;
      }
      // Proper variant: split into segments of length in [ell, 2*ell] by
      // keeping every (ell+1)-th node as a splitter (promoted: it stays
      // alive and will be raked/compressed in a later layer). Segment
      // layout: ell nodes, splitter, ell nodes, splitter, ..., with the
      // final segment absorbing the remainder (< ell extra nodes, so
      // segments stay <= 2*ell).
      std::int64_t idx = 0;
      while (idx < len) {
        std::int64_t seg_end = idx + ell;  // exclusive
        // If what would remain (excluding a splitter) is too small to form
        // another [ell, ...] segment, absorb it into this one.
        if (len - seg_end - 1 < ell) seg_end = len;
        for (std::int64_t t = idx; t < seg_end && t < len; ++t) {
          p.remove(chain[static_cast<std::size_t>(t)],
                   {LayerKind::kCompress, layer, 0});
          --remaining;
        }
        compressed_any = true;
        idx = seg_end + 1;  // skip the splitter (stays alive)
      }
    }

    if (!compressed_any && remaining > 0) {
      // Neither rake nor compress made progress: only possible if the
      // remaining graph has chains shorter than ell bounded by high-degree
      // nodes — impossible in a forest (some leaf always exists), so this
      // indicates a cycle.
      bool raked_possible = false;
      for (NodeId v = 0; v < tree.size(); ++v) {
        if (p.alive(v) && p.degree[static_cast<std::size_t>(v)] <= 1) {
          raked_possible = true;
          break;
        }
      }
      if (!raked_possible) {
        throw std::runtime_error(
            "rake_compress: no progress (graph contains a cycle?)");
      }
    }
  }

  p.out.num_layers = layer;
  return p.out;
}

namespace {

std::string check_compress_layers(const Tree& tree, const Decomposition& d) {
  const NodeId n = tree.size();
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto& av = d.assignment[static_cast<std::size_t>(v)];
    if (av.kind != LayerKind::kCompress || seen[static_cast<std::size_t>(v)]) {
      continue;
    }
    // Gather the connected component of same-compress-layer nodes.
    std::vector<NodeId> comp;
    std::deque<NodeId> q{v};
    seen[static_cast<std::size_t>(v)] = 1;
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop_front();
      comp.push_back(u);
      for (NodeId w : tree.neighbors(u)) {
        const auto& aw = d.assignment[static_cast<std::size_t>(w)];
        if (aw.kind == LayerKind::kCompress && aw.layer == av.layer &&
            !seen[static_cast<std::size_t>(w)]) {
          seen[static_cast<std::size_t>(w)] = 1;
          q.push_back(w);
        }
      }
    }
    // Must be a path: every node has <= 2 same-layer neighbors, at most
    // two nodes have exactly 1 (endpoints unless it's a 1-node chain,
    // which is forbidden by len >= ell >= 1 ... a chain of 1 has 0).
    const std::int64_t len = static_cast<std::int64_t>(comp.size());
    if (len < d.ell) {
      return "compress component shorter than ell at node " +
             std::to_string(v);
    }
    if (!d.relaxed && len > 2 * d.ell) {
      return "compress component longer than 2*ell at node " +
             std::to_string(v);
    }
    const std::int64_t my_key = layer_order_key(av);
    for (NodeId u : comp) {
      int same = 0;
      int higher = 0;
      for (NodeId w : tree.neighbors(u)) {
        const auto& aw = d.assignment[static_cast<std::size_t>(w)];
        if (aw.kind == LayerKind::kCompress && aw.layer == av.layer) {
          ++same;
        } else if (layer_order_key(aw) > my_key) {
          ++higher;
        } else {
          // lower layer: fine (its subtree was raked before).
        }
      }
      if (same > 2) {
        return "compress component not a path at node " + std::to_string(u);
      }
      const bool endpoint = same <= 1;
      if (endpoint && higher != 1) {
        return "compress endpoint without exactly one higher neighbor "
               "at node " +
               std::to_string(u);
      }
      if (!endpoint && higher != 0) {
        return "compress interior with higher neighbor at node " +
               std::to_string(u);
      }
    }
  }
  return {};
}

std::string check_rake_layers(const Tree& tree, const Decomposition& d) {
  // Sublayer independence: no two adjacent nodes share (layer, sublayer);
  // each rake node has <= 1 neighbor in a strictly higher (sub)layer.
  for (NodeId v = 0; v < tree.size(); ++v) {
    const auto& av = d.assignment[static_cast<std::size_t>(v)];
    if (av.kind != LayerKind::kRake) continue;
    const std::int64_t my_key = layer_order_key(av);
    int higher = 0;
    for (NodeId u : tree.neighbors(v)) {
      const auto& au = d.assignment[static_cast<std::size_t>(u)];
      if (au.kind == LayerKind::kRake && au.layer == av.layer &&
          au.sublayer == av.sublayer) {
        return "adjacent nodes in the same rake sublayer: " +
               std::to_string(v) + "," + std::to_string(u);
      }
      if (layer_order_key(au) > my_key) ++higher;
    }
    if (higher > 1) {
      return "rake node with multiple higher neighbors: " + std::to_string(v);
    }
  }
  return {};
}

}  // namespace

std::string validate_decomposition(const Tree& tree, const Decomposition& d) {
  if (static_cast<NodeId>(d.assignment.size()) != tree.size()) {
    return "assignment size mismatch";
  }
  for (NodeId v = 0; v < tree.size(); ++v) {
    if (d.assignment[static_cast<std::size_t>(v)].layer < 1) {
      return "unassigned node " + std::to_string(v);
    }
  }
  if (std::string e = check_rake_layers(tree, d); !e.empty()) return e;
  if (std::string e = check_compress_layers(tree, d); !e.empty()) return e;
  return {};
}

}  // namespace lcl::decomp
