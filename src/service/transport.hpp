// Connection supervisor for the lcld daemon: one poll-based event loop
// owning the listener and every connection file descriptor, replacing
// the PR-9 thread-per-connection Unix-socket loop.
//
// Two listener flavors behind one loop:
//
//   * Unix stream socket (`unix_path`) — the local pipe-replacement
//     transport CI replays;
//   * TCP (`tcp_host`/`tcp_port`, port 0 = ephemeral) — the network
//     front door; the resolved port is readable via `port()` so tests
//     and benches can bind ephemerally.
//
// Per-connection state machine: read buffer -> line framing -> bounded
// in-flight window -> ordered write backlog. Flow control is explicit
// and per-connection:
//
//   * a connection may have at most `pipeline_depth` requests submitted
//     to the server's admission queue concurrently (responses come back
//     through per-request futures and are emitted strictly in request
//     order, so clients can pipeline without reordering);
//   * a connection whose client is not draining responses accumulates
//     at most `max_backlog_bytes` of rendered-but-unsent bytes before
//     the supervisor stops *reading* from it (and stops popping
//     completed futures), so one slow client bounds its own memory
//     instead of ballooning the daemon's;
//   * at most `max_conns` connections are resident; an accept beyond
//     that is answered with a single `overloaded` error line and
//     closed.
//
// The loop blocks in poll(); request completions on worker threads wake
// it through a self-pipe (the completion-callback overload of
// `Server::submit`), so responses flush promptly instead of on the next
// poll tick. All socket I/O is non-blocking, retries `EINTR`, treats
// `EAGAIN` as "try after the next poll", and writes with `MSG_NOSIGNAL`
// — a client vanishing mid-reply is a closed connection, never a
// `SIGPIPE` death. A final request line that arrives without a trailing
// newline before EOF is framed and served (the write side stays open
// until its response has been flushed).
#pragma once

#include <csignal>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "service/server.hpp"

namespace lcl::service {

/// Hard cap on one framed request line. A client streaming bytes with
/// no newline is answered `bad_request` and dropped once it crosses
/// this, so an unframed firehose cannot grow a read buffer unboundedly.
inline constexpr std::size_t kMaxLineBytes = 1u << 20;

struct TransportOptions {
  std::string unix_path;  ///< non-empty: listen on a Unix socket
  std::string tcp_host;   ///< non-empty: listen on TCP host:tcp_port
  int tcp_port = 0;       ///< 0 = kernel-assigned ephemeral port
  int max_conns = 256;    ///< resident connection cap (reject beyond)
  int pipeline_depth = 32;  ///< per-connection in-flight request window
  std::size_t max_backlog_bytes = 256u << 10;  ///< per-conn write bound
  int poll_ms = 200;         ///< idle poll tick (stop-flag latency)
  int drain_grace_ms = 5000;  ///< max wait for in-flight work on stop
  int listen_backlog = 64;
  /// SO_SNDBUF for accepted sockets; 0 keeps the system default. The
  /// backlog-stall tests shrink it so a non-draining client jams the
  /// kernel buffer (and thus the supervisor's backlog bound) quickly.
  int sndbuf_bytes = 0;
};

/// Monotonic counters (peaks/gauges excepted), readable concurrently
/// with the loop. The flow-control counters are the observable side of
/// the supervisor's promises and are pinned by the transport tests.
struct TransportStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_at_capacity = 0;  ///< max-conns rejections
  std::uint64_t lines_in = 0;              ///< framed request lines
  std::uint64_t responses_out = 0;         ///< response lines flushed
  std::uint64_t read_pauses = 0;  ///< window/backlog flow-control stalls
  std::uint64_t eintr_retries = 0;
  std::size_t peak_backlog_bytes = 0;  ///< largest unsent backlog seen
  std::size_t peak_conns = 0;
  std::size_t open_conns = 0;
};

/// Writes all of `data`, retrying `EINTR` and waiting out `EAGAIN` on
/// blocking descriptors; sockets are written with `MSG_NOSIGNAL`.
/// Returns false only on a real error (e.g. `EPIPE`). This is the
/// EINTR-correct replacement for the old lcld `write_all`.
[[nodiscard]] bool write_fully(int fd, std::string_view data);

/// Splits `"HOST:PORT"`; accepts port 0 (ephemeral). Returns false on
/// a missing colon, empty host, or non-numeric/out-of-range port.
[[nodiscard]] bool parse_hostport(const std::string& spec,
                                  std::string& host, int& port);

class Transport {
 public:
  /// Does not bind; call `listen_now()` (or let `start()`/`run()` do
  /// it) so construction stays throw-free for members.
  Transport(Server& server, TransportOptions opts);
  ~Transport();

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Binds + listens. Throws std::runtime_error with errno detail.
  void listen_now();

  /// Blocking serve loop for the daemon: runs until `*stop_flag` is
  /// non-zero, then drains (stop accepting/reading, flush in-flight
  /// responses, bounded by `drain_grace_ms`). Returns 0.
  int run(const volatile std::sig_atomic_t* stop_flag);

  /// Background mode for tests and benches: spawns the loop thread.
  void start();
  /// Requests drain, joins the loop thread. Idempotent.
  void stop();

  /// Resolved TCP port (after listen_now); 0 for Unix transports.
  [[nodiscard]] int port() const { return resolved_port_; }
  /// Printable endpoint, e.g. "tcp://127.0.0.1:4815" or "unix://path".
  [[nodiscard]] std::string endpoint() const;

  [[nodiscard]] TransportStats stats() const;

 private:
  struct Conn;
  struct Waker;

  void loop(const volatile std::sig_atomic_t* stop_flag);
  void accept_new();
  void pump_read(Conn& c);
  void frame_lines(Conn& c, bool at_eof);
  void pump_submit(Conn& c);
  void pump_responses(Conn& c);
  void flush_writes(Conn& c);
  [[nodiscard]] bool wants_read(const Conn& c) const;
  [[nodiscard]] bool done(const Conn& c) const;
  void close_listener();

  Server& server_;
  TransportOptions opts_;
  int listen_fd_ = -1;
  int resolved_port_ = 0;
  bool is_tcp_ = false;
  std::shared_ptr<Waker> waker_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::thread loop_thread_;
  volatile std::sig_atomic_t internal_stop_ = 0;
  bool started_ = false;

  mutable std::mutex stats_mu_;
  TransportStats stats_;  // guarded by stats_mu_
};

}  // namespace lcl::service
