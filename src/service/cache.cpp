#include "service/cache.hpp"

#include <algorithm>
#include <utility>

#include "core/landscape.hpp"
#include "service/protocol.hpp"

namespace lcl::service {

namespace {

/// FNV-1a over the key picks the shard; the canonical-key alphabet is
/// tiny (hex + separators), so a real mixing hash matters.
std::size_t key_hash(const std::string& key) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

}  // namespace

std::size_t CacheEntry::entry_bytes(const CacheEntry& e) {
  std::size_t bytes = sizeof(CacheEntry);
  bytes += e.key.size();
  bytes += e.classify_body.size();
  bytes += e.cls.rationale.size();
  bytes += e.testing.failure.size();
  // CSR arrays of the witness tree: ids + offsets + both edge endpoints.
  bytes += static_cast<std::size_t>(e.testing.witness.size()) * 16;
  bytes += static_cast<std::size_t>(e.testing.witness.edge_count()) * 16;
  return bytes;
}

ProblemCache::ProblemCache(std::size_t byte_budget, int shards)
    : byte_budget_(byte_budget) {
  const int count = std::max(1, shards);
  shard_budget_ = byte_budget_ / static_cast<std::size_t>(count);
  shards_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ProblemCache::Shard& ProblemCache::shard_for(const std::string& key) {
  return *shards_[key_hash(key) % shards_.size()];
}

std::shared_ptr<const CacheEntry> ProblemCache::lookup(
    const std::string& key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  it->second = shard.lru.begin();
  hits_.fetch_add(1, std::memory_order_relaxed);
  return *it->second;
}

std::shared_ptr<const CacheEntry> ProblemCache::insert(
    std::shared_ptr<const CacheEntry> entry) {
  Shard& shard = shard_for(entry->key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(entry->key);
  if (it != shard.index.end()) {
    // A racing compute already inserted this key; the resident entry is
    // identical (classification is deterministic) and wins.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    it->second = shard.lru.begin();
    return *it->second;
  }
  shard.bytes += entry->bytes;
  shard.lru.push_front(std::move(entry));
  shard.index.emplace(shard.lru.front()->key, shard.lru.begin());
  // Trim the tail past this shard's budget slice, but never the entry
  // just inserted — an oversized singleton stays resident until the
  // next insert displaces it.
  while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
    const auto& victim = shard.lru.back();
    shard.bytes -= victim->bytes;
    shard.index.erase(victim->key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return shard.lru.front();
}

std::shared_ptr<const CacheEntry> ProblemCache::get_or_compute(
    const problems::BwTable& table) {
  // Strip before canonicalizing — the classifier does the same, so the
  // key identifies exactly one classification outcome.
  const problems::BwTable stripped = problems::strip_unused_labels(table);
  std::string key = problems::canonical_key(stripped);
  if (auto hit = lookup(key)) return hit;

  // Miss: classify outside any lock (milliseconds for witness-building
  // tables), then insert-if-absent.
  auto entry = std::make_shared<CacheEntry>();
  entry->key = std::move(key);
  entry->canonical = problems::canonical_table(stripped);
  entry->cls = problems::classify_table(stripped);
  entry->testing = problems::tree_testing(entry->canonical);
  entry->classify_body = render_classify_body(entry->key, entry->canonical,
                                              entry->cls, entry->testing);
  entry->bytes = CacheEntry::entry_bytes(*entry);
  return insert(std::move(entry));
}

CacheStats ProblemCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.entries += shard->lru.size();
    s.bytes += shard->bytes;
  }
  return s;
}

std::string render_classify_body(const std::string& key,
                                 const problems::BwTable& canonical,
                                 const problems::Classification& cls,
                                 const problems::TreeTesting& testing) {
  std::string out = "\"ok\":true,\"type\":\"classify\",\"key\":\"";
  out += json_escape(key);
  out += "\",\"alphabet\":" + std::to_string(canonical.alphabet);
  out += ",\"max_degree\":" + std::to_string(canonical.max_degree);
  out += ",\"predicted\":\"" + problems::to_string(cls.predicted);
  out += "\",\"path_class\":\"" + bw::to_string(cls.path_class);
  out += "\",\"tree_good\":";
  out += cls.tree_good ? "true" : "false";
  out += ",\"testing_good\":";
  out += cls.testing_good ? "true" : "false";
  out += ",\"constant_good\":";
  out += cls.constant_good ? "true" : "false";
  out += ",\"rationale\":\"" + json_escape(cls.rationale);
  out += "\",\"region\":{\"range\":\"" + json_escape(cls.region.range);
  out += "\",\"kind\":\"" + core::to_string(cls.region.kind);
  out += "\",\"provenance\":\"" + core::to_string(cls.region.provenance);
  out += "\",\"source\":\"" + json_escape(cls.region.source);
  out += "\",\"witness\":\"" + json_escape(cls.region.witness);
  out += "\"},\"reachable_sets\":" + std::to_string(testing.reachable_sets);
  out += ",\"witness_nodes\":" +
         std::to_string(testing.has_witness
                            ? static_cast<std::int64_t>(
                                  testing.witness.size())
                            : 0);
  if (!testing.good) {
    out += ",\"witness_failure\":\"" + json_escape(testing.failure) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace lcl::service
