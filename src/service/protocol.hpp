// Line-delimited JSON request protocol of the lcld daemon.
//
// One request per line, one response line per request, in order. Three
// request types (the full schema is documented in DESIGN.md,
// "Classification as a service"):
//
//   {"type":"classify", "id":1, <problem selector>}
//   {"type":"solve",    "id":2, <problem selector>, "solver":"bw_generic",
//    "family":"path", "n":4096, "seed":0, "max_rounds":0,
//    "options":{"k":2}}
//   {"type":"info",     "id":3}
//
// A problem selector is exactly one of
//   "problem_seed": S          — problems::sample_table(S)
//   "problem": "edge_coloring" — a named witness table
//   "table": {"alphabet":A, "max_degree":D, "allowed":[m1..mD]}
// (`classify` requires one; `solve` defaults to seed 0, the free table,
// which only the table-driven solvers consume.)
//
// Responses are single-line JSON: `{"id":N,"ok":true,...}` on success,
// `{"id":N,"ok":false,"error":"<code>","detail":"..."}` on failure.
// The `id` is an optional client correlation token, echoed verbatim
// when present and omitted when not — it is the only per-client field,
// so identical requests produce byte-identical responses (the cache-hit
// determinism contract the hammer test pins). Parsing rides on
// `core::json::parse`; every malformed input maps to one of the typed
// `ErrorCode`s rather than a raw exception.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "problems/lclgen.hpp"

namespace lcl::service {

/// Typed protocol failures, stable wire names (see to_string).
enum class ErrorCode {
  kBadJson = 0,     ///< line does not parse as JSON
  kBadRequest,      ///< parses, but fields are missing/invalid
  kUnknownType,     ///< "type" is not classify/solve/info
  kOversizedTable,  ///< table beyond kMaxAlphabet/kMaxTableDegree caps
  kUnknownSolver,   ///< solver name not in the registry
  kUnknownFamily,   ///< family name not in the registry
  kOverloaded,      ///< admission queue full (backpressure)
  kTimeout,         ///< request expired before execution
  kInternal,        ///< unexpected server-side exception
};

[[nodiscard]] const char* to_string(ErrorCode code);

/// A parse/validation failure carrying its wire code. The what() string
/// becomes the response's "detail". When the failing request's id was
/// already extracted before the failure, it rides along so the error
/// response still correlates (parse_request attaches it).
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(ErrorCode code, const std::string& detail)
      : std::runtime_error(detail), code_(code) {}
  [[nodiscard]] ErrorCode code() const { return code_; }

  void attach_id(std::int64_t id) {
    has_id_ = true;
    id_ = id;
  }
  [[nodiscard]] bool has_id() const { return has_id_; }
  [[nodiscard]] std::int64_t id() const { return id_; }

 private:
  ErrorCode code_;
  bool has_id_ = false;
  std::int64_t id_ = 0;
};

/// A validated request.
struct Request {
  enum class Type { kClassify, kSolve, kInfo };

  Type type = Type::kInfo;
  bool has_id = false;
  std::int64_t id = 0;

  // Problem selector (exactly one set; see file comment).
  bool has_table = false;            ///< explicit inline table
  problems::BwTable table;
  bool has_problem_seed = false;     ///< lclgen seed
  std::uint64_t problem_seed = 0;
  std::string problem_name;          ///< named witness table ("" = none)

  // solve-only fields (protocol defaults).
  std::string solver = "bw_generic";
  std::string family = "path";
  std::int64_t n = 4096;
  std::int64_t delta = 0;            ///< 0 = family default degree bound
  std::uint64_t seed = 0;            ///< instance/run seed
  std::int64_t max_rounds = 0;       ///< 0 = 8n + 4096
  /// Solver options in request order; scalars carry one value, lists
  /// several (mirrors algo::SolverConfig).
  std::vector<std::pair<std::string, std::vector<std::int64_t>>> options;
};

/// Parses and validates one request line. Throws ProtocolError.
[[nodiscard]] Request parse_request(std::string_view line);

/// Resolves the request's problem selector to a concrete table. The
/// caller strips/canonicalizes via the cache; this only materializes.
[[nodiscard]] problems::BwTable request_table(const Request& req);

/// JSON string escaping for the single-line response writers.
[[nodiscard]] std::string json_escape(std::string_view s);

/// `{"id":N,` when the request carried an id, else `{`. Every response
/// body is appended after this prefix.
[[nodiscard]] std::string envelope_prefix(bool has_id, std::int64_t id);

/// Full single-line error response.
[[nodiscard]] std::string render_error(bool has_id, std::int64_t id,
                                       ErrorCode code,
                                       const std::string& detail);

}  // namespace lcl::service
