#include "service/server.hpp"

#include <algorithm>
#include <utility>

#include "algo/bw_generic.hpp"
#include "algo/registry.hpp"
#include "core/experiment.hpp"
#include "core/json.hpp"
#include "graph/families.hpp"

namespace lcl::service {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cache_bytes, opts_.cache_shards),
      pool_(core::BatchOptions{std::max(1, opts_.threads)}),
      start_(std::chrono::steady_clock::now()) {
  opts_.threads = std::max(1, opts_.threads);
  opts_.max_queue = std::max(1, opts_.max_queue);
  workers_.reserve(static_cast<std::size_t>(opts_.threads));
  for (int i = 0; i < opts_.threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() {
  drain();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::string Server::handle_line(const std::string& line) {
  bool has_id = false;
  std::int64_t id = 0;
  std::string response;
  try {
    const Request req = parse_request(line);
    has_id = req.has_id;
    id = req.id;
    response = execute(req);
  } catch (const ProtocolError& e) {
    if (e.has_id()) {
      has_id = true;
      id = e.id();
    }
    response = render_error(has_id, id, e.code(), e.what());
  } catch (const std::exception& e) {
    response = render_error(has_id, id, ErrorCode::kInternal, e.what());
  }
  served_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

std::future<std::string> Server::submit(std::string line) {
  return submit(std::move(line), std::function<void()>());
}

std::future<std::string> Server::submit(std::string line,
                                        std::function<void()> on_done) {
  std::promise<std::string> done;
  std::future<std::string> fut = done.get_future();
  const char* reject = nullptr;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (draining_ || stop_) {
      reject = "server draining";
    } else if (queue_.size() >=
               static_cast<std::size_t>(opts_.max_queue)) {
      reject = "admission queue full";
    } else {
      queue_.push_back(Pending{std::move(line), std::move(done),
                               std::move(on_done),
                               std::chrono::steady_clock::now()});
    }
  }
  if (reject != nullptr) {
    // Backpressure is O(1): the rejected line is never parsed, so the
    // response carries no id (pipe/socket ordering still correlates).
    rejected_.fetch_add(1, std::memory_order_relaxed);
    done.set_value(render_error(
        false, 0, ErrorCode::kOverloaded,
        std::string(reject) + " (depth " + std::to_string(opts_.max_queue) +
            ")"));
    if (on_done) on_done();  // rejection completes inline
  } else {
    queue_cv_.notify_one();
  }
  return fut;
}

void Server::worker_loop() {
  for (;;) {
    Pending item;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      item = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    std::string response;
    const double age_ms = ms_since(item.admitted);
    if (opts_.timeout_ms >= 0 && age_ms >= opts_.timeout_ms) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      response = render_error(
          false, 0, ErrorCode::kTimeout,
          "request expired in queue (limit " +
              std::to_string(opts_.timeout_ms) + " ms)");
    } else {
      if (opts_.before_execute) opts_.before_execute();
      response = handle_line(item.line);
    }
    item.done.set_value(std::move(response));
    if (item.notify) item.notify();
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void Server::drain() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  draining_ = true;
  idle_cv_.wait(lock,
                [this] { return queue_.empty() && in_flight_ == 0; });
}

ServerStats Server::stats() const {
  ServerStats s;
  s.uptime_ms = ms_since(start_);
  s.cache = cache_.stats();
  s.served = served_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    s.in_flight = in_flight_;
    s.queue_depth = queue_.size();
  }
  s.threads = opts_.threads;
  return s;
}

std::string Server::execute(const Request& req) {
  switch (req.type) {
    case Request::Type::kClassify: return run_classify(req);
    case Request::Type::kSolve: return run_solve(req);
    case Request::Type::kInfo: return run_info(req);
  }
  throw ProtocolError(ErrorCode::kInternal, "unreachable request type");
}

std::string Server::run_classify(const Request& req) {
  const auto entry = cache_.get_or_compute(request_table(req));
  return envelope_prefix(req.has_id, req.id) + entry->classify_body;
}

std::string Server::run_solve(const Request& req) {
  const algo::SolverSpec* spec = algo::find_solver(req.solver);
  if (spec == nullptr) {
    throw ProtocolError(ErrorCode::kUnknownSolver,
                        "unknown solver \"" + req.solver + "\" (known: " +
                            join_names(algo::solver_names()) + ")");
  }
  const graph::Family* family = graph::find_family(req.family);
  if (family == nullptr) {
    throw ProtocolError(ErrorCode::kUnknownFamily,
                        "unknown family \"" + req.family + "\" (known: " +
                            join_names(graph::family_names()) + ")");
  }
  if (spec->compatible && !spec->compatible(*family)) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "solver \"" + req.solver +
                            "\" is not compatible with family \"" +
                            req.family + "\"");
  }

  algo::SolverConfig config;
  config.seed = req.seed;
  for (const auto& [key, words] : req.options) {
    const algo::OptionSpec* opt = spec->find_option(key);
    if (opt == nullptr) {
      throw ProtocolError(ErrorCode::kBadRequest,
                          "solver \"" + req.solver +
                              "\" has no option \"" + key + "\"");
    }
    if (opt->is_list) {
      config.set(key, words);
    } else if (words.size() == 1) {
      config.set(key, words[0]);
    } else {
      throw ProtocolError(ErrorCode::kBadRequest,
                          "option \"" + key + "\" is a scalar");
    }
  }

  // Table-driven solvers get the memoized per-problem context: the
  // cache entry's canonical table goes straight into the program
  // factory, so a warm solve skips sampling + canonicalization (and
  // the response can report the cached landscape prediction).
  std::shared_ptr<const CacheEntry> entry;
  algo::SolverSpec run_spec = *spec;
  if (spec->name == "bw_generic") {
    entry = cache_.get_or_compute(request_table(req));
    const problems::BwTable table = entry->canonical;
    run_spec.factory = [table](const graph::Tree& tree,
                               const algo::SolverConfig&)
        -> std::unique_ptr<local::Program> {
      return std::make_unique<algo::BwGenericProgram>(tree, table);
    };
  }
  try {
    algo::SolverConfig probe = config;
    probe.validate(run_spec);
  } catch (const std::invalid_argument& e) {
    throw ProtocolError(ErrorCode::kBadRequest, e.what());
  }

  const std::int64_t max_rounds =
      req.max_rounds > 0 ? req.max_rounds : 8 * req.n + 4096;
  core::BatchJob job;
  job.label = req.solver + "@" + req.family;
  job.scale = static_cast<double>(req.n);
  job.seed = req.seed;
  const std::string family_name = req.family;
  const auto n = static_cast<graph::NodeId>(req.n);
  const int delta = static_cast<int>(req.delta);
  job.run = [run_spec, config, family_name, n, delta,
             max_rounds](std::uint64_t seed) {
    graph::Tree tree =
        graph::make_family_instance(family_name, n, seed, delta);
    algo::prepare_instance(tree, run_spec.needs, seed);
    const algo::SolverRun run =
        algo::run_registered(run_spec, tree, config, max_rounds);
    return core::measure_run(static_cast<double>(n), run.stats,
                             run.verdict);
  };

  std::vector<core::MeasuredRun> results;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    results = pool_.run_all({std::move(job)});
  }
  const core::MeasuredRun& r = results.at(0);

  std::string out = envelope_prefix(req.has_id, req.id);
  out += "\"ok\":true,\"type\":\"solve\",\"solver\":\"";
  out += json_escape(req.solver);
  out += "\",\"family\":\"" + json_escape(req.family);
  out += "\",\"n\":" + std::to_string(r.n);
  if (entry != nullptr) {
    out += ",\"key\":\"" + json_escape(entry->key) + "\"";
    out += ",\"predicted\":\"" +
           problems::to_string(entry->cls.predicted) + "\"";
  }
  out += ",\"status\":\"";
  out += core::to_string(r.status);
  out += "\",\"certified\":";
  out += r.ok() ? "true" : "false";
  if (!r.check_reason.empty()) {
    out += ",\"check_reason\":\"" + json_escape(r.check_reason) + "\"";
  }
  out += ",\"node_averaged\":" +
         core::json::format_number(r.node_averaged, "%.17g");
  out += ",\"worst_case\":" + std::to_string(r.worst_case);
  out += ",\"term_p50\":" + std::to_string(r.term.p50);
  out += ",\"term_p90\":" + std::to_string(r.term.p90);
  out += ",\"term_p99\":" + std::to_string(r.term.p99);
  out += "}";
  return out;
}

std::string Server::run_info(const Request& req) {
  const ServerStats s = stats();
  std::string out = envelope_prefix(req.has_id, req.id);
  out += "\"ok\":true,\"type\":\"info\"";
  out += ",\"uptime_ms\":" + core::json::format_number(s.uptime_ms, "%.3f");
  out += ",\"cache_entries\":" + std::to_string(s.cache.entries);
  out += ",\"cache_bytes\":" + std::to_string(s.cache.bytes);
  out += ",\"cache_budget_bytes\":" +
         std::to_string(cache_.byte_budget());
  out += ",\"cache_hits\":" + std::to_string(s.cache.hits);
  out += ",\"cache_misses\":" + std::to_string(s.cache.misses);
  out += ",\"cache_evictions\":" + std::to_string(s.cache.evictions);
  out += ",\"served\":" + std::to_string(s.served);
  out += ",\"rejected\":" + std::to_string(s.rejected);
  out += ",\"in_flight\":" + std::to_string(s.in_flight);
  out += ",\"queue_depth\":" + std::to_string(s.queue_depth);
  out += ",\"threads\":" + std::to_string(s.threads);
  out += "}";
  return out;
}

}  // namespace lcl::service
