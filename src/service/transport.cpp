#include "service/transport.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <stdexcept>
#include <utility>

namespace lcl::service {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[nodiscard]] std::string errno_detail(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

bool write_fully(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t got = ::send(fd, data.data() + off, data.size() - off,
                         MSG_NOSIGNAL);
    if (got < 0 && errno == ENOTSOCK) {
      got = ::write(fd, data.data() + off, data.size() - off);
    }
    if (got > 0) {
      off += static_cast<std::size_t>(got);
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd waiter{fd, POLLOUT, 0};
      (void)::poll(&waiter, 1, 100);
      continue;
    }
    return false;
  }
  return true;
}

bool parse_hostport(const std::string& spec, std::string& host,
                    int& port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  const std::string port_str = spec.substr(colon + 1);
  if (port_str.empty() ||
      port_str.find_first_not_of("0123456789") != std::string::npos ||
      port_str.size() > 5) {
    return false;
  }
  const long value = std::strtol(port_str.c_str(), nullptr, 10);
  if (value < 0 || value > 65535) return false;
  host = spec.substr(0, colon);
  port = static_cast<int>(value);
  return true;
}

// ---------------------------------------------------------------------------
// Internal state.
// ---------------------------------------------------------------------------

/// One connection's state machine. `rbuf` holds unframed bytes,
/// `pending` framed lines waiting for a window slot, `inflight` the
/// submitted requests' futures in request order, `wbuf`/`woff` the
/// ordered write backlog (woff = bytes of wbuf already sent).
struct Transport::Conn {
  int fd = -1;
  std::string rbuf;
  std::deque<std::string> pending;
  std::deque<std::future<std::string>> inflight;
  std::string wbuf;
  std::size_t woff = 0;
  bool eof = false;   ///< peer half-closed (or daemon draining)
  bool dead = false;  ///< hard error: close without flushing
  bool reading = true;  ///< last computed wants_read (stall counting)
  /// Oversized-line rejection mode: keep reading-and-dropping the
  /// peer's bytes until it hangs up. Closing with unread data pending
  /// would RST the socket and destroy the rejection line in flight.
  bool discard = false;

  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
  [[nodiscard]] std::size_t backlog() const { return wbuf.size() - woff; }
};

/// Self-pipe shared with the server's completion callbacks. Workers
/// may outlive one transport's loop (the callback holds a weak_ptr and
/// upgrades it for the duration of the wake), so the fds are owned
/// here, closed only when the last reference drops.
struct Transport::Waker {
  int read_fd = -1;
  int write_fd = -1;
  std::mutex mu;

  Waker() {
    int fds[2] = {-1, -1};
    if (::pipe(fds) == 0) {
      read_fd = fds[0];
      write_fd = fds[1];
      set_nonblocking(read_fd);
      set_nonblocking(write_fd);
    }
  }
  ~Waker() {
    if (read_fd >= 0) ::close(read_fd);
    if (write_fd >= 0) ::close(write_fd);
  }

  void wake() {
    std::lock_guard<std::mutex> lock(mu);
    if (write_fd < 0) return;
    const char byte = 1;
    // A full pipe already has a wake pending; EAGAIN is success.
    (void)!::write(write_fd, &byte, 1);
  }
  void drain() {
    char sink[256];
    while (::read(read_fd, sink, sizeof(sink)) > 0) {
    }
  }
};

Transport::Transport(Server& server, TransportOptions opts)
    : server_(server),
      opts_(std::move(opts)),
      waker_(std::make_shared<Waker>()) {
  opts_.max_conns = std::max(1, opts_.max_conns);
  opts_.pipeline_depth = std::max(1, opts_.pipeline_depth);
  opts_.max_backlog_bytes = std::max<std::size_t>(1, opts_.max_backlog_bytes);
  opts_.poll_ms = std::max(1, opts_.poll_ms);
}

Transport::~Transport() {
  stop();
  close_listener();
}

void Transport::listen_now() {
  if (listen_fd_ >= 0) return;
  if (!opts_.tcp_host.empty()) {
    is_tcp_ = true;
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_NUMERICSERV;
    addrinfo* res = nullptr;
    const std::string port_str = std::to_string(opts_.tcp_port);
    if (::getaddrinfo(opts_.tcp_host.c_str(), port_str.c_str(), &hints,
                      &res) != 0 ||
        res == nullptr) {
      throw std::runtime_error("transport: cannot resolve " +
                               opts_.tcp_host + ":" + port_str);
    }
    int fd = -1;
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
      fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) continue;
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
      ::close(fd);
      fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
      throw std::runtime_error(
          errno_detail(("transport: bind " + opts_.tcp_host + ":" +
                        port_str)
                           .c_str()));
    }
    if (::listen(fd, opts_.listen_backlog) != 0) {
      ::close(fd);
      throw std::runtime_error(errno_detail("transport: listen"));
    }
    sockaddr_storage bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      if (bound.ss_family == AF_INET) {
        resolved_port_ = ntohs(
            reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        resolved_port_ = ntohs(
            reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
      }
    }
    listen_fd_ = fd;
  } else {
    sockaddr_un addr{};
    if (opts_.unix_path.empty() ||
        opts_.unix_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("transport: bad unix socket path \"" +
                               opts_.unix_path + "\"");
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error(errno_detail("transport: socket"));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opts_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(opts_.unix_path.c_str());  // stale socket from a prior run
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, opts_.listen_backlog) != 0) {
      ::close(fd);
      throw std::runtime_error(
          errno_detail(("transport: bind/listen " + opts_.unix_path)
                           .c_str()));
    }
    listen_fd_ = fd;
  }
  set_nonblocking(listen_fd_);
}

void Transport::close_listener() {
  if (listen_fd_ < 0) return;
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (!is_tcp_ && !opts_.unix_path.empty()) {
    ::unlink(opts_.unix_path.c_str());
  }
}

std::string Transport::endpoint() const {
  if (is_tcp_) {
    return "tcp://" + opts_.tcp_host + ":" + std::to_string(resolved_port_);
  }
  return "unix://" + opts_.unix_path;
}

TransportStats Transport::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

int Transport::run(const volatile std::sig_atomic_t* stop_flag) {
  listen_now();
  loop(stop_flag);
  return 0;
}

void Transport::start() {
  if (started_) return;
  listen_now();
  internal_stop_ = 0;
  started_ = true;
  loop_thread_ = std::thread([this] { loop(nullptr); });
}

void Transport::stop() {
  internal_stop_ = 1;
  if (loop_thread_.joinable()) loop_thread_.join();
  started_ = false;
}

// ---------------------------------------------------------------------------
// The event loop.
// ---------------------------------------------------------------------------

bool Transport::wants_read(const Conn& c) const {
  if (c.eof || c.dead) return false;
  if (c.discard) return true;  // drain-and-drop needs no window
  return c.pending.size() + c.inflight.size() <
             static_cast<std::size_t>(opts_.pipeline_depth) &&
         c.backlog() < opts_.max_backlog_bytes;
}

bool Transport::done(const Conn& c) const {
  return c.dead || (c.eof && c.pending.empty() && c.inflight.empty() &&
                    c.backlog() == 0);
}

void Transport::loop(const volatile std::sig_atomic_t* stop_flag) {
  using clock = std::chrono::steady_clock;
  bool draining = false;
  clock::time_point drain_deadline{};
  std::vector<pollfd> fds;

  for (;;) {
    const bool stop_now =
        internal_stop_ != 0 || (stop_flag != nullptr && *stop_flag != 0);
    if (stop_now && !draining) {
      // Graceful drain: stop accepting and reading, flush everything
      // framed or in flight, then leave. A connection with nothing
      // outstanding closes immediately.
      draining = true;
      close_listener();
      for (auto& c : conns_) c->eof = true;
      drain_deadline = clock::now() + std::chrono::milliseconds(
                                          opts_.drain_grace_ms);
    }
    if (draining &&
        (conns_.empty() || clock::now() >= drain_deadline)) {
      break;
    }

    fds.clear();
    const std::size_t listener_slot = fds.size();
    if (listen_fd_ >= 0) {
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    }
    const std::size_t waker_slot = fds.size();
    fds.push_back(pollfd{waker_->read_fd, POLLIN, 0});
    const std::size_t conn_base = fds.size();
    const std::size_t polled_conns = conns_.size();
    for (auto& c : conns_) {
      short events = 0;
      const bool want = wants_read(*c);
      if (want) events |= POLLIN;
      if (!want && c->reading && !c->eof && !c->dead) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.read_pauses;
      }
      c->reading = want;
      if (c->backlog() > 0) events |= POLLOUT;
      fds.push_back(pollfd{c->fd, events, 0});
    }

    const int ready =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), opts_.poll_ms);
    if (ready < 0 && errno != EINTR) break;

    if (fds[waker_slot].revents & POLLIN) waker_->drain();
    if (listen_fd_ >= 0 && (fds[listener_slot].revents & POLLIN)) {
      accept_new();
    }

    for (std::size_t i = 0; i < conns_.size(); ++i) {
      Conn& c = *conns_[i];
      // Connections accepted this tick sit past the polled range; they
      // have no revents yet and get their first read next tick.
      const short revents =
          i < polled_conns ? fds[conn_base + i].revents : 0;
      if ((revents & (POLLERR | POLLNVAL)) != 0) c.dead = true;
      if (!c.dead && (revents & (POLLIN | POLLHUP)) != 0 && !c.eof) {
        pump_read(c);
      }
      // Completions may have landed regardless of socket readiness
      // (the waker got us here), so every connection pumps each tick.
      pump_submit(c);
      pump_responses(c);
      if (!c.dead && c.backlog() > 0) flush_writes(c);
      // Submitting may have freed window for already-framed lines.
      pump_submit(c);
      pump_responses(c);
      if (!c.dead && c.backlog() > 0) flush_writes(c);
    }

    conns_.erase(
        std::remove_if(conns_.begin(), conns_.end(),
                       [this](const std::unique_ptr<Conn>& c) {
                         return done(*c);
                       }),
        conns_.end());
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.open_conns = conns_.size();
    }
  }

  conns_.clear();  // abandoned futures resolve into dead shared state
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.open_conns = 0;
  }
  close_listener();
}

void Transport::accept_new() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept failure: next poll retries
    }
    if (conns_.size() >= static_cast<std::size_t>(opts_.max_conns)) {
      // The rejection path: one typed error line, then close. The
      // fresh socket's send buffer is empty, so this cannot block
      // meaningfully.
      (void)write_fully(
          fd, render_error(false, 0, ErrorCode::kOverloaded,
                           "connection limit reached (max " +
                               std::to_string(opts_.max_conns) + ")") +
                  "\n");
      ::close(fd);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected_at_capacity;
      continue;
    }
    set_nonblocking(fd);
    if (is_tcp_) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    if (opts_.sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opts_.sndbuf_bytes,
                   sizeof(opts_.sndbuf_bytes));
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conns_.push_back(std::move(conn));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.accepted;
    stats_.open_conns = conns_.size();
    stats_.peak_conns = std::max(stats_.peak_conns, conns_.size());
  }
}

void Transport::pump_read(Conn& c) {
  char chunk[16384];
  while (wants_read(c)) {
    const ssize_t got = ::recv(c.fd, chunk, sizeof(chunk), 0);
    if (got > 0) {
      if (c.discard) continue;  // rejected firehose: drop the bytes
      c.rbuf.append(chunk, static_cast<std::size_t>(got));
      frame_lines(c, /*at_eof=*/false);
      continue;
    }
    if (got == 0) {
      // EOF: a final line without a trailing newline is still a
      // request — frame the residue and serve it before closing.
      frame_lines(c, /*at_eof=*/true);
      c.eof = true;
      return;
    }
    if (errno == EINTR) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.eintr_retries;
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    c.dead = true;  // ECONNRESET and friends
    return;
  }
}

void Transport::frame_lines(Conn& c, bool at_eof) {
  std::size_t start = 0;
  std::uint64_t framed = 0;
  for (;;) {
    const std::size_t newline = c.rbuf.find('\n', start);
    if (newline == std::string::npos) break;
    if (newline > start) {
      c.pending.emplace_back(c.rbuf, start, newline - start);
      ++framed;
    }
    start = newline + 1;
  }
  if (start > 0) c.rbuf.erase(0, start);
  if (at_eof && !c.rbuf.empty()) {
    c.pending.push_back(std::move(c.rbuf));
    c.rbuf.clear();
    ++framed;
  }
  if (!at_eof && !c.discard && c.rbuf.size() > kMaxLineBytes) {
    // Unframed firehose: answer once, then drain-and-drop until the
    // peer hangs up (see Conn::discard).
    c.wbuf += render_error(false, 0, ErrorCode::kBadRequest,
                           "request line exceeds " +
                               std::to_string(kMaxLineBytes) + " bytes");
    c.wbuf += '\n';
    c.rbuf.clear();
    c.rbuf.shrink_to_fit();
    c.discard = true;
  }
  if (framed > 0) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.lines_in += framed;
  }
}

void Transport::pump_submit(Conn& c) {
  while (!c.pending.empty() &&
         c.inflight.size() <
             static_cast<std::size_t>(opts_.pipeline_depth)) {
    std::weak_ptr<Waker> weak = waker_;
    c.inflight.push_back(server_.submit(std::move(c.pending.front()),
                                        [weak] {
                                          if (auto w = weak.lock()) {
                                            w->wake();
                                          }
                                        }));
    c.pending.pop_front();
  }
}

void Transport::pump_responses(Conn& c) {
  std::uint64_t emitted = 0;
  // Only pull completed responses into the backlog while it is under
  // its bound: a stalled client caps its backlog at one response past
  // `max_backlog_bytes`, and the un-popped futures keep the in-flight
  // window closed, which in turn parks the read side.
  while (!c.inflight.empty() && c.backlog() < opts_.max_backlog_bytes &&
         c.inflight.front().wait_for(std::chrono::seconds(0)) ==
             std::future_status::ready) {
    c.wbuf += c.inflight.front().get();
    c.wbuf += '\n';
    c.inflight.pop_front();
    ++emitted;
  }
  if (emitted > 0 || c.backlog() > 0) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.responses_out += emitted;
    stats_.peak_backlog_bytes =
        std::max(stats_.peak_backlog_bytes, c.backlog());
  }
}

void Transport::flush_writes(Conn& c) {
  while (c.woff < c.wbuf.size()) {
    const ssize_t got = ::send(c.fd, c.wbuf.data() + c.woff,
                               c.wbuf.size() - c.woff, MSG_NOSIGNAL);
    if (got > 0) {
      c.woff += static_cast<std::size_t>(got);
      continue;
    }
    if (got < 0 && errno == EINTR) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.eintr_retries;
      continue;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    c.dead = true;  // EPIPE/ECONNRESET: the client vanished mid-reply
    return;
  }
  if (c.woff == c.wbuf.size()) {
    c.wbuf.clear();
    c.woff = 0;
  } else if (c.woff > (64u << 10)) {
    c.wbuf.erase(0, c.woff);
    c.woff = 0;
  }
}

}  // namespace lcl::service
