// Sharded concurrent LRU cache of classified problems.
//
// The classifier (problems/classify.hpp) is a pure function of the
// canonical constraint table, so the service layer can memoize it: one
// `Entry` per label-permutation isomorphism class, keyed by
// `problems::canonical_key` of the *stripped* table (classification
// strips inert labels before canonicalizing, so the cache key must
// too — otherwise a padded table would miss on its own class). An entry
// is the initialize-once per-problem context the whole daemon amortizes
// across queries, mirroring ACL's `decompression_context` idiom:
//
//   * the canonical `BwTable` (warm solves hand it straight to
//     `BwGenericProgram` — no resampling, no recanonicalization),
//   * the full `Classification` plus the rake-closure artifacts
//     (reachable-set count, infeasibility witness tree),
//   * the pre-rendered single-line `classify` response body, so a warm
//     hit is one lookup plus one string concatenation — and a repeated
//     query's response is byte-identical to the cold one *by
//     construction* (the cache stores the bytes, not a re-render).
//
// Concurrency model: the key space is split over `shards` independent
// locks (shard = FNV-1a of the key), each shard an intrusive
// list-+ -map LRU with its own slice of the byte budget. Entries are
// handed out as `shared_ptr<const Entry>`, so eviction never
// invalidates a response mid-render. Lookups that miss compute
// *outside* any lock (classification can take milliseconds) and
// insert-if-absent afterwards; because classification is deterministic,
// a racing duplicate compute produces an identical entry and the first
// insert wins. Hit/miss/eviction counters are lock-free atomics,
// surfaced through the `info` request and the service_sweep metrics.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "problems/classify.hpp"
#include "problems/lclgen.hpp"

namespace lcl::service {

/// Counter snapshot of the cache (monotonic except entries/bytes).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
};

/// One memoized problem: the per-problem context shared by every
/// request that maps to the same canonical key.
struct CacheEntry {
  std::string key;                 ///< problems::canonical_key (stripped)
  problems::BwTable canonical;     ///< canonical representative table
  problems::Classification cls;    ///< full landscape prediction
  problems::TreeTesting testing;   ///< rake-closure artifacts + witness
  std::string classify_body;       ///< pre-rendered response tail
  std::size_t bytes = 0;           ///< accounted size (see entry_bytes)

  /// Byte accounting: struct + strings + the witness tree's CSR. The
  /// witness dominates for unsolvable problems (up to ~2*10^5 nodes).
  [[nodiscard]] static std::size_t entry_bytes(const CacheEntry& e);
};

class ProblemCache {
 public:
  /// `byte_budget` is split evenly across `shards`; each shard evicts
  /// its own LRU tail past its slice. A zero budget still caches the
  /// most recent entry per shard (an insert is never rejected, only
  /// trimmed after the fact).
  explicit ProblemCache(std::size_t byte_budget, int shards = 8);

  ProblemCache(const ProblemCache&) = delete;
  ProblemCache& operator=(const ProblemCache&) = delete;

  /// Looks up `key`, refreshing its LRU position. Counts a hit or miss.
  [[nodiscard]] std::shared_ptr<const CacheEntry> lookup(
      const std::string& key);

  /// Inserts `entry` (keyed by entry->key) unless an entry with the
  /// same key already exists — the resident entry wins, so racing
  /// duplicate computes converge on one context. Trims the shard's LRU
  /// tail past its byte-budget slice. Returns the resident entry.
  std::shared_ptr<const CacheEntry> insert(
      std::shared_ptr<const CacheEntry> entry);

  /// The memoization workhorse: strip + canonicalize `table`, look the
  /// key up, and on a miss classify (outside any lock) and insert. The
  /// returned entry is immutable and safe to hold across evictions.
  std::shared_ptr<const CacheEntry> get_or_compute(
      const problems::BwTable& table);

  [[nodiscard]] CacheStats stats() const;

  [[nodiscard]] std::size_t byte_budget() const { return byte_budget_; }

 private:
  struct Shard {
    std::mutex mu;
    /// Front = most recent. The map points into the list.
    std::list<std::shared_ptr<const CacheEntry>> lru;
    std::unordered_map<
        std::string,
        std::list<std::shared_ptr<const CacheEntry>>::iterator>
        index;
    std::size_t bytes = 0;
  };

  [[nodiscard]] Shard& shard_for(const std::string& key);

  std::size_t byte_budget_;
  std::size_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

/// Renders the shared single-line `classify` response tail for an
/// entry (everything after the request id): `"ok":true,...`. Lives
/// here so the cache can pre-render it at compute time; the protocol
/// layer (protocol.hpp) wraps it with the envelope.
[[nodiscard]] std::string render_classify_body(
    const std::string& key, const problems::BwTable& canonical,
    const problems::Classification& cls,
    const problems::TreeTesting& testing);

}  // namespace lcl::service
