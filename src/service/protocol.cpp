#include "service/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "core/json.hpp"

namespace lcl::service {

namespace {

using core::json::Value;

constexpr double kMaxExactInt = 9007199254740992.0;  // 2^53

/// Largest instance a single solve request may ask for. Protects the
/// daemon from one request allocating the whole machine; bulk sweeps
/// belong in lclbench, not the service.
constexpr std::int64_t kMaxRequestN = 1 << 24;

[[noreturn]] void fail(ErrorCode code, const std::string& detail) {
  throw ProtocolError(code, detail);
}

/// Reads an integral JSON number in [min, max]; `what` names the field
/// in error details.
std::int64_t require_int(const Value& v, const char* what,
                         std::int64_t min, std::int64_t max) {
  if (v.type != Value::Type::kNumber || std::floor(v.number) != v.number ||
      std::fabs(v.number) > kMaxExactInt) {
    fail(ErrorCode::kBadRequest,
         std::string(what) + " must be an integer");
  }
  const auto n = static_cast<std::int64_t>(v.number);
  if (n < min || n > max) {
    fail(ErrorCode::kBadRequest, std::string(what) + " = " +
                                     std::to_string(n) +
                                     " out of range [" + std::to_string(min) +
                                     ", " + std::to_string(max) + "]");
  }
  return n;
}

const std::string& require_string(const Value& v, const char* what) {
  if (v.type != Value::Type::kString) {
    fail(ErrorCode::kBadRequest, std::string(what) + " must be a string");
  }
  return v.str;
}

/// Parses {"alphabet":A,"max_degree":D,"allowed":[m1..mD]} with the
/// representation caps enforced: over-cap sizes are kOversizedTable
/// (the table formalism cannot hold them), structurally invalid masks
/// are kBadRequest.
problems::BwTable parse_table(const Value& v) {
  if (!v.is_object()) {
    fail(ErrorCode::kBadRequest, "\"table\" must be an object");
  }
  const Value* alpha = v.find("alphabet");
  const Value* deg = v.find("max_degree");
  const Value* allowed = v.find("allowed");
  if (alpha == nullptr || deg == nullptr || allowed == nullptr) {
    fail(ErrorCode::kBadRequest,
         "\"table\" needs \"alphabet\", \"max_degree\", \"allowed\"");
  }
  const std::int64_t a = require_int(*alpha, "table.alphabet", 1,
                                     std::numeric_limits<int>::max());
  const std::int64_t d = require_int(*deg, "table.max_degree", 1,
                                     std::numeric_limits<int>::max());
  if (a > problems::kMaxAlphabet) {
    fail(ErrorCode::kOversizedTable,
         "alphabet " + std::to_string(a) + " exceeds the representation cap " +
             std::to_string(problems::kMaxAlphabet));
  }
  if (d > problems::kMaxTableDegree) {
    fail(ErrorCode::kOversizedTable,
         "max_degree " + std::to_string(d) +
             " exceeds the representation cap " +
             std::to_string(problems::kMaxTableDegree));
  }
  if (!allowed->is_array() ||
      allowed->array.size() != static_cast<std::size_t>(d)) {
    fail(ErrorCode::kBadRequest,
         "table.allowed must be an array of max_degree = " +
             std::to_string(d) + " row masks");
  }
  problems::BwTable t;
  t.alphabet = static_cast<int>(a);
  t.max_degree = static_cast<int>(d);
  t.seed = 0;
  t.name = "request";
  for (int row = 0; row < t.max_degree; ++row) {
    const std::int64_t mask =
        require_int(allowed->array[static_cast<std::size_t>(row)],
                    "table.allowed[]", 0,
                    std::numeric_limits<std::int64_t>::max());
    const auto n_multisets =
        problems::multisets(t.alphabet, row + 1).size();
    const std::uint64_t valid =
        n_multisets >= 64 ? ~0ull : ((1ull << n_multisets) - 1ull);
    if ((static_cast<std::uint64_t>(mask) & ~valid) != 0) {
      fail(ErrorCode::kBadRequest,
           "table.allowed[" + std::to_string(row) + "] has bits beyond the " +
               std::to_string(n_multisets) + " degree-" +
               std::to_string(row + 1) + " multisets");
    }
    t.allowed[static_cast<std::size_t>(row)] =
        static_cast<std::uint64_t>(mask);
  }
  return t;
}

/// The named witness tables (lclgen's paper problems) at their
/// canonical degree-3 instantiations.
problems::BwTable named_table(const std::string& name) {
  if (name == "free") return problems::free_table(2, 3);
  if (name == "edge_coloring") return problems::edge_coloring_table(3, 3);
  if (name == "weak_matching") return problems::weak_matching_table(3);
  if (name == "covering") return problems::covering_table(3);
  if (name == "two_coloring") return problems::two_coloring_table(3);
  fail(ErrorCode::kBadRequest,
       "unknown named problem \"" + name +
           "\" (known: free, edge_coloring, weak_matching, covering, "
           "two_coloring)");
}

/// Parses the shared problem selector into `req`; returns how many of
/// the three selector fields were present.
int parse_selector(const Value& root, Request& req) {
  int selectors = 0;
  if (const Value* seed = root.find("problem_seed")) {
    req.problem_seed = static_cast<std::uint64_t>(
        require_int(*seed, "problem_seed", 0,
                    static_cast<std::int64_t>(kMaxExactInt)));
    req.has_problem_seed = true;
    ++selectors;
  }
  if (const Value* name = root.find("problem")) {
    req.problem_name = require_string(*name, "problem");
    (void)named_table(req.problem_name);  // validate eagerly
    ++selectors;
  }
  if (const Value* table = root.find("table")) {
    req.table = parse_table(*table);
    req.has_table = true;
    ++selectors;
  }
  if (selectors > 1) {
    fail(ErrorCode::kBadRequest,
         "give exactly one of \"problem_seed\", \"problem\", \"table\"");
  }
  return selectors;
}

void parse_solve_fields(const Value& root, Request& req) {
  if (const Value* s = root.find("solver")) {
    req.solver = require_string(*s, "solver");
  }
  if (const Value* f = root.find("family")) {
    req.family = require_string(*f, "family");
  }
  if (const Value* n = root.find("n")) {
    req.n = require_int(*n, "n", 2, kMaxRequestN);
  }
  if (const Value* d = root.find("delta")) {
    req.delta = require_int(*d, "delta", 0, 64);
  }
  if (const Value* s = root.find("seed")) {
    req.seed = static_cast<std::uint64_t>(require_int(
        *s, "seed", 0, static_cast<std::int64_t>(kMaxExactInt)));
  }
  if (const Value* m = root.find("max_rounds")) {
    req.max_rounds = require_int(*m, "max_rounds", 0,
                                 std::numeric_limits<int>::max());
  }
  if (const Value* opts = root.find("options")) {
    if (!opts->is_object()) {
      fail(ErrorCode::kBadRequest, "\"options\" must be an object");
    }
    for (const auto& [key, val] : opts->object) {
      std::vector<std::int64_t> words;
      if (val.is_array()) {
        for (const Value& e : val.array) {
          words.push_back(require_int(
              e, ("options." + key).c_str(),
              std::numeric_limits<std::int64_t>::min(),
              std::numeric_limits<std::int64_t>::max()));
        }
      } else {
        words.push_back(require_int(
            val, ("options." + key).c_str(),
            std::numeric_limits<std::int64_t>::min(),
            std::numeric_limits<std::int64_t>::max()));
      }
      req.options.emplace_back(key, std::move(words));
    }
  }
}

}  // namespace

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadJson: return "bad_json";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownType: return "unknown_type";
    case ErrorCode::kOversizedTable: return "oversized_table";
    case ErrorCode::kUnknownSolver: return "unknown_solver";
    case ErrorCode::kUnknownFamily: return "unknown_family";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

Request parse_request(std::string_view line) {
  Value root;
  try {
    root = core::json::parse(line);
  } catch (const std::exception& e) {
    fail(ErrorCode::kBadJson, e.what());
  }
  if (!root.is_object()) {
    fail(ErrorCode::kBadRequest, "request must be a JSON object");
  }

  Request req;
  if (const Value* id = root.find("id")) {
    req.id = require_int(*id, "id", 0,
                         static_cast<std::int64_t>(kMaxExactInt));
    req.has_id = true;
  }

  // Every failure past this point knows the request id — attach it so
  // the error response still correlates with its request.
  try {
    const Value* type = root.find("type");
    if (type == nullptr) {
      fail(ErrorCode::kBadRequest, "missing \"type\"");
    }
    const std::string& kind = require_string(*type, "type");
    if (kind == "classify") {
      req.type = Request::Type::kClassify;
      if (parse_selector(root, req) == 0) {
        fail(ErrorCode::kBadRequest,
             "classify needs one of \"problem_seed\", \"problem\", "
             "\"table\"");
      }
    } else if (kind == "solve") {
      req.type = Request::Type::kSolve;
      if (parse_selector(root, req) == 0) {
        req.has_problem_seed = true;  // default: seed 0, the free table
      }
      parse_solve_fields(root, req);
    } else if (kind == "info") {
      req.type = Request::Type::kInfo;
    } else {
      fail(ErrorCode::kUnknownType,
           "unknown request type \"" + kind +
               "\" (known: classify, solve, info)");
    }
  } catch (ProtocolError& e) {
    if (req.has_id) e.attach_id(req.id);
    throw;
  }
  return req;
}

problems::BwTable request_table(const Request& req) {
  if (req.has_table) return req.table;
  if (!req.problem_name.empty()) return named_table(req.problem_name);
  return problems::sample_table(req.problem_seed);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string envelope_prefix(bool has_id, std::int64_t id) {
  if (!has_id) return "{";
  return "{\"id\":" + std::to_string(id) + ",";
}

std::string render_error(bool has_id, std::int64_t id, ErrorCode code,
                         const std::string& detail) {
  std::string out = envelope_prefix(has_id, id);
  out += "\"ok\":false,\"error\":\"";
  out += to_string(code);
  out += "\",\"detail\":\"";
  out += json_escape(detail);
  out += "\"}";
  return out;
}

}  // namespace lcl::service
