// The lcld request server: admission, execution, memoization.
//
// One `Server` owns the `ProblemCache`, a `core::BatchRunner` pool for
// solve execution, and a bounded admission queue drained by worker
// threads. Two entry points:
//
//   * `handle_line` — synchronous: parse, execute, render. This is the
//     stdio pipe mode and the deterministic path the tests and the
//     service_sweep cache-hit phase use (single caller -> counters are
//     exact).
//   * `submit` — asynchronous with backpressure: the line is admitted
//     into a bounded FIFO (depth `max_queue`) or rejected immediately
//     with `overloaded`; workers drain the queue in order and fulfill
//     the returned future. A request older than `timeout_ms` by the
//     time a worker picks it up is answered `timeout` without
//     executing (the admission queue is where a saturated daemon ages
//     requests, so expiry is checked at dequeue). `timeout_ms < 0`
//     disables expiry; `timeout_ms == 0` expires everything — the
//     deterministic hook the timeout test uses.
//
// Execution: `classify` and `info` run inline on the calling/worker
// thread (a classify is one cache probe after warmup). `solve` builds
// a `core::BatchJob` — the same composition the bench scenarios use —
// and executes it through the shared `BatchRunner`, serialized by a
// mutex (the pool's run_all is batch-oriented); for table-driven
// solvers the job's program factory closes over the cache entry's
// canonical table, so a warm solve skips sampling, stripping, and
// canonicalization entirely.
//
// Shutdown is graceful-drain: `drain` stops admission (new submits get
// `overloaded`) and blocks until the queue is empty and no request is
// in flight; the destructor drains, then joins the workers.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"

namespace lcl::service {

struct ServerOptions {
  std::size_t cache_bytes = 64ull << 20;  ///< ProblemCache byte budget
  int cache_shards = 8;
  int threads = 1;      ///< admission workers == BatchRunner pool size
  int max_queue = 256;  ///< admission queue depth (backpressure beyond)
  double timeout_ms = -1.0;  ///< per-request age limit; < 0 = disabled
  /// Test seam: runs on the worker thread after dequeue + expiry check,
  /// before execution. The queue-full test parks the only worker here.
  std::function<void()> before_execute;
};

/// Snapshot served by the `info` request.
struct ServerStats {
  double uptime_ms = 0.0;
  CacheStats cache;
  std::uint64_t served = 0;     ///< responses produced (all paths)
  std::uint64_t rejected = 0;   ///< overloaded + timeout responses
  std::uint64_t in_flight = 0;  ///< currently executing (async path)
  std::uint64_t queue_depth = 0;
  int threads = 0;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Parse + execute + render, synchronously. Never throws: every
  /// failure renders as a typed error response.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Bounded-queue admission. The future always resolves to a response
  /// line (rejections resolve immediately).
  [[nodiscard]] std::future<std::string> submit(std::string line);

  /// Admission with a completion hook: `on_done` runs (on the worker
  /// thread, or inline for immediate rejections) after the returned
  /// future's value is set. This is the non-blocking contract the
  /// poll-based transport supervisor needs — it parks in poll() and the
  /// hook wakes it through a self-pipe, instead of a thread blocking in
  /// future::get per connection. The hook must be cheap and noexcept in
  /// spirit: it runs inside the serving path.
  [[nodiscard]] std::future<std::string> submit(
      std::string line, std::function<void()> on_done);

  /// Stop admitting, finish everything queued/in flight. Idempotent.
  void drain();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const ProblemCache& cache() const { return cache_; }

 private:
  struct Pending {
    std::string line;
    std::promise<std::string> done;
    std::function<void()> notify;  ///< runs after done.set_value
    std::chrono::steady_clock::time_point admitted;
  };

  void worker_loop();
  [[nodiscard]] std::string execute(const Request& req);
  [[nodiscard]] std::string run_classify(const Request& req);
  [[nodiscard]] std::string run_solve(const Request& req);
  [[nodiscard]] std::string run_info(const Request& req);

  ServerOptions opts_;
  ProblemCache cache_;
  core::BatchRunner pool_;
  std::mutex pool_mu_;  ///< serializes run_all batches on pool_

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;  ///< workers: work or stop
  std::condition_variable idle_cv_;   ///< drain: queue empty + idle
  std::deque<Pending> queue_;         // guarded by queue_mu_
  bool draining_ = false;             // guarded by queue_mu_
  bool stop_ = false;                 // guarded by queue_mu_
  std::uint64_t in_flight_ = 0;       // guarded by queue_mu_

  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::chrono::steady_clock::time_point start_;
  std::vector<std::thread> workers_;
};

}  // namespace lcl::service
