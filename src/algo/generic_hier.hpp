// The generic algorithm for k-hierarchical 2.5- and 3.5-coloring
// (Section 4.1), as a LOCAL-engine program.
//
// Phase i < k (parameter gamma_i): the still-alive level-i nodes detect,
// by endpoint-initiated waves, whether their induced path is shorter than
// gamma_i. Short paths 2-color consistently (parity anchored at the
// endpoint with the smaller LOCAL id); long paths output Decline at a
// fixed deadline. Between phases, higher-level nodes adjacent to a
// lower-level W/B/E node output Exempt (the "iff" rule of Definitions
// 8/9); the inter-phase gap of k+6 rounds lets Exempt chains settle.
//
// Phase k: the remaining level-k nodes either 2-color by the same wave
// (2.5 variant, Theta(path length)) or 3-color by iterated Cole-Vishkin
// reduction (3.5 variant, Theta(log* K) + `symmetry_pad` rounds; see
// DESIGN.md Substitution 1 for the virtual-log* pad).
//
// The program only drives nodes whose input label is Active
// (graph::WeightInput::kActive, the default input 0); composite solvers
// (A_poly, the Pi^{3.5} solver) embed it and route weight nodes to their
// own logic. Levels are precomputed on the active subgraph — a constant-
// round LOCAL computation for constant k (see `LevelProgram` for the
// distributed version and the test that they agree).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/builders.hpp"
#include "graph/tree.hpp"
#include "local/engine.hpp"
#include "problems/labels.hpp"

namespace lcl::algo {

using graph::NodeId;
using graph::Tree;

/// Tuning knobs of the generic algorithm.
struct GenericOptions {
  problems::Variant variant = problems::Variant::kTwoHalf;
  int k = 1;
  /// gamma_1..gamma_{k-1}; empty for k = 1. Each must be >= 2.
  std::vector<std::int64_t> gammas;
  /// Size of the initial color palette for Cole-Vishkin (3.5 phase k);
  /// must exceed every LOCAL id. 0 means "use the number of nodes".
  std::int64_t id_space = 0;
  /// Virtual-log* target Lambda: the level-k 3-coloring phase is padded
  /// so its total round count is max(natural CV cost, Lambda), modeling
  /// an ID space of tower height Lambda (DESIGN.md Substitution 1).
  /// 0 = real log* only (no padding).
  std::int64_t symmetry_pad = 0;
};

/// The generic algorithm (Section 4.1). Usable standalone (all nodes
/// Active) or embedded for the Active part of the weighted problems.
class GenericHierProgram final : public local::Program {
 public:
  /// `levels` are Definition-8 levels of the *active subgraph* (0 for
  /// weight nodes), e.g. from problems::compute_levels[_masked].
  GenericHierProgram(const Tree& tree, GenericOptions options,
                     std::vector<int> levels);

  void on_init(local::NodeCtx& ctx) override;
  void on_round(local::NodeCtx& ctx) override;
  void on_init_batch(local::BatchCtx& batch,
                     local::NodeSpan nodes) override;
  void on_round_batch(local::BatchCtx& batch,
                      local::NodeSpan nodes) override;

  /// First round of phase i (1-based). Exposed for tests and for
  /// composite programs that schedule around the phases.
  [[nodiscard]] std::int64_t phase_start(int i) const {
    return phase_start_[static_cast<std::size_t>(i)];
  }
  /// The fixed round at which every surviving level-k node terminates in
  /// the 3.5 variant (wave phases terminate data-dependently instead).
  [[nodiscard]] std::int64_t cv_end_round() const { return cv_end_round_; }

 private:
  struct WaveState {
    // One logical wave per side; side 0/1 map to the node's (up to two)
    // alive same-level path ports, or to "self" for endpoints.
    std::int64_t src[2] = {-1, -1};
    std::int64_t dist[2] = {-1, -1};
    int port[2] = {-1, -1};  ///< alive path ports (-1 = absent)
    int ports_alive = -1;    ///< -1 until computed at phase start
  };

  [[nodiscard]] bool is_active(NodeId v) const {
    return tree_.input(v) ==
           static_cast<int>(graph::WeightInput::kActive);
  }
  [[nodiscard]] int level(NodeId v) const {
    return levels_[static_cast<std::size_t>(v)];
  }

  /// Applies the continuous Exempt rule; returns true if terminated.
  bool try_exempt(local::NodeCtx& ctx);
  /// Phase containing `round`, or 0 if before phase 1.
  [[nodiscard]] int phase_of(std::int64_t round) const;

  void wave_round(local::NodeCtx& ctx, int phase);
  void cv_round(local::NodeCtx& ctx);

  // Batch-kernel twins of try_exempt/wave_round/cv_round: identical
  // reads through BatchCtx's committed-plane views, writes staged into
  // the member lanes below and flushed once per round.
  bool try_exempt_batch(local::BatchCtx& batch, NodeId v);
  void wave_round_batch(local::BatchCtx& batch, NodeId v, int phase);
  void cv_round_batch(local::BatchCtx& batch, NodeId v);

  const Tree& tree_;
  GenericOptions opt_;
  std::vector<int> levels_;
  std::vector<std::int64_t> phase_start_;  ///< index 1..k
  std::int64_t cv_end_round_ = 0;
  std::int64_t cv_pad_ = 0;  ///< idle rounds realizing the Lambda target
  std::vector<std::int64_t> cv_schedule_;

  std::vector<WaveState> wave_;
  std::vector<std::int64_t> color_;  ///< CV working color

  // Batch-dispatch staging lanes, reused across rounds: wave publishes
  // are width-6 rows of wave_words_, CV publishes width-1 rows of
  // cv_words_, terminations pair batch_term_nodes_[i] with
  // batch_term_outputs_[i]. Flushed at the end of each on_round_batch
  // via publish_lane/terminate_lane — unobservable under the engine's
  // staging semantics (reads see only round-start state).
  std::vector<NodeId> wave_nodes_;
  std::vector<std::int64_t> wave_words_;
  std::vector<NodeId> cv_nodes_;
  std::vector<std::int64_t> cv_words_;
  std::vector<NodeId> batch_term_nodes_;
  std::vector<local::Output> batch_term_outputs_;
};

/// Convenience: run the generic algorithm on `tree` and return the stats.
[[nodiscard]] local::RunStats run_generic(const Tree& tree,
                                          GenericOptions options);

/// Theory-optimal gammas for the *unweighted* problems:
/// t = base^{1/(2^k - 1)}, gamma_i = t^{2^{i-1}} (Lemma 14; for the 2.5
/// polynomial analog use base = n, exponent 1/(2k-1) instead).
[[nodiscard]] std::vector<std::int64_t> gammas_for_35(std::int64_t lambda,
                                                      int k);
[[nodiscard]] std::vector<std::int64_t> gammas_for_25(std::int64_t n, int k);

}  // namespace lcl::algo
