#include "algo/generic_hier.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "algo/cole_vishkin.hpp"
#include "local/engine.hpp"
#include "problems/levels.hpp"

namespace lcl::algo {

namespace {

using problems::Color;
using problems::Variant;

constexpr std::int64_t kNoEntry = -1;

// Wave register layout: [tgt0, src0, d0, tgt1, src1, d1].
constexpr std::size_t kWaveRegSize = 6;

}  // namespace

GenericHierProgram::GenericHierProgram(const Tree& tree,
                                       GenericOptions options,
                                       std::vector<int> levels)
    : tree_(tree), opt_(std::move(options)), levels_(std::move(levels)) {
  if (opt_.k < 1) throw std::invalid_argument("generic: k >= 1");
  if (static_cast<int>(opt_.gammas.size()) != opt_.k - 1) {
    throw std::invalid_argument("generic: need k-1 gammas");
  }
  for (std::int64_t g : opt_.gammas) {
    if (g < 2) throw std::invalid_argument("generic: gamma_i >= 2");
  }
  if (static_cast<NodeId>(levels_.size()) != tree_.size()) {
    throw std::invalid_argument("generic: levels size mismatch");
  }

  // Phase schedule: phase i occupies [phase_start(i), phase_start(i+1)).
  phase_start_.assign(static_cast<std::size_t>(opt_.k) + 1, 0);
  phase_start_[1] = 1;
  for (int i = 1; i < opt_.k; ++i) {
    phase_start_[static_cast<std::size_t>(i) + 1] =
        phase_start_[static_cast<std::size_t>(i)] +
        opt_.gammas[static_cast<std::size_t>(i - 1)] + opt_.k + 6;
  }

  // Cole-Vishkin schedule for the 3.5 level-k phase.
  std::int64_t id_space = opt_.id_space > 0 ? opt_.id_space : tree_.size();
  for (NodeId v = 0; v < tree_.size(); ++v) {
    id_space = std::max(id_space, tree_.local_id(v) + 1);
  }
  cv_schedule_ = cv_schedule(std::max<std::int64_t>(id_space, 2));
  // Natural CV phase cost: reductions + 22 greedy eliminations. The
  // virtual-log* target pads the phase up to Lambda total rounds.
  const std::int64_t natural =
      static_cast<std::int64_t>(cv_schedule_.size()) + 22;
  cv_pad_ = std::max<std::int64_t>(0, opt_.symmetry_pad - natural);
  cv_end_round_ = phase_start_[static_cast<std::size_t>(opt_.k)] +
                  static_cast<std::int64_t>(cv_schedule_.size()) +
                  cv_pad_ + 24;

  wave_.assign(static_cast<std::size_t>(tree_.size()), WaveState{});
  color_.assign(static_cast<std::size_t>(tree_.size()), 0);
}

void GenericHierProgram::on_init(local::NodeCtx& ctx) {
  const NodeId v = ctx.node();
  if (!is_active(v)) return;
  if (level(v) == opt_.k + 1) {
    // Definition 8/9: level-(k+1) nodes are unconditionally Exempt.
    ctx.terminate(static_cast<int>(Color::kE));
  }
}

int GenericHierProgram::phase_of(std::int64_t round) const {
  int phase = 0;
  for (int i = 1; i <= opt_.k; ++i) {
    if (round >= phase_start_[static_cast<std::size_t>(i)]) phase = i;
  }
  return phase;
}

bool GenericHierProgram::try_exempt(local::NodeCtx& ctx) {
  const NodeId v = ctx.node();
  const int lv = level(v);
  const auto nb = tree_.neighbors(v);

  if (lv >= 2 && lv <= opt_.k - 1) {
    for (std::size_t p = 0; p < nb.size(); ++p) {
      const NodeId u = nb[p];
      if (!is_active(u) || level(u) >= lv) continue;
      if (!ctx.neighbor_terminated(static_cast<int>(p))) continue;
      const Color cu =
          static_cast<Color>(ctx.neighbor_output(static_cast<int>(p)).primary);
      if (problems::is_two_color(cu) || cu == Color::kE) {
        if (ctx.round() >= phase_start_[static_cast<std::size_t>(lv)]) {
          throw std::logic_error(
              "generic: Exempt fired after own phase started (scheduling "
              "gap too small)");
        }
        ctx.terminate(static_cast<int>(Color::kE));
        return true;
      }
    }
    return false;
  }

  if (lv == opt_.k && opt_.k >= 2 &&
      ctx.round() < phase_start_[static_cast<std::size_t>(opt_.k)]) {
    // Strict level-k rule: Exempt only once all lower-level neighbors have
    // decided, some is W/B/E and none is D.
    bool all_done = true;
    bool has_colored = false;
    bool has_decline = false;
    for (std::size_t p = 0; p < nb.size(); ++p) {
      const NodeId u = nb[p];
      if (!is_active(u) || level(u) >= lv) continue;
      if (!ctx.neighbor_terminated(static_cast<int>(p))) {
        all_done = false;
        break;
      }
      const Color cu =
          static_cast<Color>(ctx.neighbor_output(static_cast<int>(p)).primary);
      if (problems::is_two_color(cu) || cu == Color::kE) has_colored = true;
      if (cu == Color::kD) has_decline = true;
    }
    if (all_done && has_colored && !has_decline) {
      ctx.terminate(static_cast<int>(Color::kE));
      return true;
    }
  }
  return false;
}

void GenericHierProgram::wave_round(local::NodeCtx& ctx, int phase) {
  const NodeId v = ctx.node();
  WaveState& w = wave_[static_cast<std::size_t>(v)];
  const std::int64_t t =
      ctx.round() - phase_start_[static_cast<std::size_t>(phase)] + 1;
  const bool last_phase = (phase == opt_.k);
  const std::int64_t gamma =
      last_phase ? 0 : opt_.gammas[static_cast<std::size_t>(phase - 1)];
  const auto nb = tree_.neighbors(v);

  if (w.ports_alive < 0) {
    // Phase start: freeze the set of alive same-level path ports.
    w.ports_alive = 0;
    for (std::size_t p = 0; p < nb.size(); ++p) {
      const NodeId u = nb[p];
      if (!is_active(u) || level(u) != level(v)) continue;
      if (ctx.neighbor_terminated(static_cast<int>(p))) continue;
      if (w.ports_alive < 2) w.port[w.ports_alive] = static_cast<int>(p);
      ++w.ports_alive;
    }
    if (w.ports_alive > 2) {
      throw std::logic_error("generic: level path with degree > 2");
    }
    // Endpoints seed the missing side(s) with their own wave.
    for (int s = 0; s < 2; ++s) {
      if (w.port[s] < 0) {
        w.src[s] = ctx.local_id();
        w.dist[s] = 0;
      }
    }
  }

  // 1. Receive pending waves.
  for (int s = 0; s < 2; ++s) {
    if (w.port[s] < 0 || w.src[s] >= 0) continue;
    const local::RegView reg = ctx.peek(w.port[s]);
    if (reg.size() != kWaveRegSize) continue;
    for (int e = 0; e < 2; ++e) {
      const std::size_t base = static_cast<std::size_t>(3 * e);
      if (reg[base] == static_cast<std::int64_t>(v)) {
        w.src[s] = reg[base + 1];
        w.dist[s] = reg[base + 2] + 1;
      }
    }
  }

  // 2. Forward: toward port[s] goes the wave of the other side.
  local::Register out(kWaveRegSize, kNoEntry);
  bool publish = false;
  for (int s = 0; s < 2; ++s) {
    const int other = 1 - s;
    if (w.port[s] < 0 || w.src[other] < 0) continue;
    const std::size_t base = static_cast<std::size_t>(3 * s);
    out[base] = nb[static_cast<std::size_t>(w.port[s])];
    out[base + 1] = w.src[other];
    out[base + 2] = w.dist[other];
    publish = true;
  }
  if (publish) ctx.publish(out);

  // 3. Decide.
  if (w.src[0] >= 0 && w.src[1] >= 0) {
    const std::int64_t len = w.dist[0] + w.dist[1] + 1;
    if (!last_phase && len >= gamma) {
      ctx.terminate(static_cast<int>(Color::kD));
      return;
    }
    const int anchor = (w.src[0] <= w.src[1]) ? 0 : 1;
    const bool even = (w.dist[anchor] % 2 == 0);
    ctx.terminate(static_cast<int>(even ? Color::kW : Color::kB));
    return;
  }
  if (!last_phase && t >= gamma + 2) {
    ctx.terminate(static_cast<int>(Color::kD));
  }
}

void GenericHierProgram::cv_round(local::NodeCtx& ctx) {
  const NodeId v = ctx.node();
  WaveState& w = wave_[static_cast<std::size_t>(v)];
  const std::int64_t t =
      ctx.round() - phase_start_[static_cast<std::size_t>(opt_.k)] + 1;
  const std::int64_t sched = static_cast<std::int64_t>(cv_schedule_.size());
  const auto nb = tree_.neighbors(v);

  if (t == 1) {
    // Freeze alive same-level ports; adopt the LOCAL id as initial color.
    w.ports_alive = 0;
    for (std::size_t p = 0; p < nb.size(); ++p) {
      const NodeId u = nb[p];
      if (!is_active(u) || level(u) != level(v)) continue;
      if (ctx.neighbor_terminated(static_cast<int>(p))) continue;
      if (w.ports_alive < 2) w.port[w.ports_alive] = static_cast<int>(p);
      ++w.ports_alive;
    }
    if (w.ports_alive > 2) {
      throw std::logic_error("generic: level-k path with degree > 2");
    }
    color_[static_cast<std::size_t>(v)] = ctx.local_id();
    ctx.publish({color_[static_cast<std::size_t>(v)]});
    return;
  }

  auto neighbor_color = [&](int s) -> std::int64_t {
    if (w.port[s] < 0) return -1;
    const local::RegView reg = ctx.peek(w.port[s]);
    return reg.empty() ? -1 : reg[0];
  };

  if (t >= 2 && t <= 1 + sched) {
    const std::int64_t q = cv_schedule_[static_cast<std::size_t>(t - 2)];
    color_[static_cast<std::size_t>(v)] =
        cv_reduce(q, color_[static_cast<std::size_t>(v)], neighbor_color(0),
                  neighbor_color(1));
    ctx.publish({color_[static_cast<std::size_t>(v)]});
    return;
  }

  const std::int64_t elim_start = 1 + sched + cv_pad_ + 1;
  if (t >= elim_start && t < elim_start + 22) {
    // One color class per round, from 24 down to 3.
    const std::int64_t cls = 24 - (t - elim_start);
    if (color_[static_cast<std::size_t>(v)] == cls) {
      bool used[3] = {false, false, false};
      for (int s = 0; s < 2; ++s) {
        const std::int64_t c = neighbor_color(s);
        if (c >= 0 && c < 3) used[static_cast<std::size_t>(c)] = true;
      }
      for (std::int64_t c = 0; c < 3; ++c) {
        if (!used[static_cast<std::size_t>(c)]) {
          color_[static_cast<std::size_t>(v)] = c;
          break;
        }
      }
      ctx.publish({color_[static_cast<std::size_t>(v)]});
    }
    return;
  }

  if (ctx.round() >= cv_end_round_) {
    static constexpr Color kMap[3] = {Color::kR, Color::kG, Color::kY};
    const std::int64_t c = color_[static_cast<std::size_t>(v)];
    if (c < 0 || c > 2) {
      throw std::logic_error("generic: CV did not reach 3 colors");
    }
    ctx.terminate(static_cast<int>(kMap[static_cast<std::size_t>(c)]));
  }
}

void GenericHierProgram::on_round(local::NodeCtx& ctx) {
  const NodeId v = ctx.node();
  if (!is_active(v)) return;
  const int lv = level(v);

  if (try_exempt(ctx)) return;

  const int phase = phase_of(ctx.round());
  if (phase == 0 || lv > opt_.k) return;

  if (lv < opt_.k) {
    if (phase == lv) wave_round(ctx, phase);
    return;
  }

  // Level-k nodes act only in phase k.
  if (phase != opt_.k) return;
  if (opt_.variant == Variant::kTwoHalf) {
    wave_round(ctx, opt_.k);
  } else {
    cv_round(ctx);
  }
}

// --- Batch-dispatch lane kernels ------------------------------------
// Span-level twins of on_init/on_round (the pinned per-node reference).
// The per-round phase — constant across the whole alive span — is
// computed once instead of per node, neighbors resolve through the raw
// CSR, and neighbor state reads go through BatchCtx's committed-plane
// views (`reg`, `terminated_visible`), which by construction see only
// round-start state. All writes are staged into the member lanes and
// flushed at the end of the span: registers as one width-6 wave lane
// plus one width-1 CV lane, terminations as a per-node output lane.
// Since per-node writes also only become visible at the end-of-round
// flip, the deferral is unobservable and the schedule is bit-identical
// (pinned by the generic_hier case in tests/test_differential.cpp).

void GenericHierProgram::on_init_batch(local::BatchCtx& batch,
                                       local::NodeSpan nodes) {
  batch_term_nodes_.clear();
  for (const NodeId v : nodes) {
    if (!is_active(v)) continue;
    if (level(v) == opt_.k + 1) batch_term_nodes_.push_back(v);
  }
  if (!batch_term_nodes_.empty()) {
    batch.terminate_lane(batch_term_nodes_,
                         local::Output{static_cast<int>(Color::kE), -1});
  }
}

bool GenericHierProgram::try_exempt_batch(local::BatchCtx& batch,
                                          NodeId v) {
  const int lv = level(v);
  const std::int32_t* off = batch.offsets();
  const NodeId* adj = batch.adjacency();
  const auto begin = static_cast<std::size_t>(off[v]);
  const auto end = static_cast<std::size_t>(off[v + 1]);

  if (lv >= 2 && lv <= opt_.k - 1) {
    for (std::size_t p = begin; p < end; ++p) {
      const NodeId u = adj[p];
      if (!is_active(u) || level(u) >= lv) continue;
      if (!batch.terminated_visible(u)) continue;
      const Color cu = static_cast<Color>(batch.output(u).primary);
      if (problems::is_two_color(cu) || cu == Color::kE) {
        if (batch.round() >= phase_start_[static_cast<std::size_t>(lv)]) {
          throw std::logic_error(
              "generic: Exempt fired after own phase started (scheduling "
              "gap too small)");
        }
        batch_term_nodes_.push_back(v);
        batch_term_outputs_.push_back(
            local::Output{static_cast<int>(Color::kE), -1});
        return true;
      }
    }
    return false;
  }

  if (lv == opt_.k && opt_.k >= 2 &&
      batch.round() < phase_start_[static_cast<std::size_t>(opt_.k)]) {
    bool all_done = true;
    bool has_colored = false;
    bool has_decline = false;
    for (std::size_t p = begin; p < end; ++p) {
      const NodeId u = adj[p];
      if (!is_active(u) || level(u) >= lv) continue;
      if (!batch.terminated_visible(u)) {
        all_done = false;
        break;
      }
      const Color cu = static_cast<Color>(batch.output(u).primary);
      if (problems::is_two_color(cu) || cu == Color::kE) has_colored = true;
      if (cu == Color::kD) has_decline = true;
    }
    if (all_done && has_colored && !has_decline) {
      batch_term_nodes_.push_back(v);
      batch_term_outputs_.push_back(
          local::Output{static_cast<int>(Color::kE), -1});
      return true;
    }
  }
  return false;
}

void GenericHierProgram::wave_round_batch(local::BatchCtx& batch, NodeId v,
                                          int phase) {
  WaveState& w = wave_[static_cast<std::size_t>(v)];
  const std::int64_t t =
      batch.round() - phase_start_[static_cast<std::size_t>(phase)] + 1;
  const bool last_phase = (phase == opt_.k);
  const std::int64_t gamma =
      last_phase ? 0 : opt_.gammas[static_cast<std::size_t>(phase - 1)];
  const std::int32_t* off = batch.offsets();
  const NodeId* adj = batch.adjacency();
  const auto begin = static_cast<std::size_t>(off[v]);
  const auto degree = static_cast<std::size_t>(off[v + 1]) - begin;

  if (w.ports_alive < 0) {
    w.ports_alive = 0;
    for (std::size_t p = 0; p < degree; ++p) {
      const NodeId u = adj[begin + p];
      if (!is_active(u) || level(u) != level(v)) continue;
      if (batch.terminated_visible(u)) continue;
      if (w.ports_alive < 2) w.port[w.ports_alive] = static_cast<int>(p);
      ++w.ports_alive;
    }
    if (w.ports_alive > 2) {
      throw std::logic_error("generic: level path with degree > 2");
    }
    for (int s = 0; s < 2; ++s) {
      if (w.port[s] < 0) {
        w.src[s] = tree_.local_id(v);
        w.dist[s] = 0;
      }
    }
  }

  // 1. Receive pending waves.
  for (int s = 0; s < 2; ++s) {
    if (w.port[s] < 0 || w.src[s] >= 0) continue;
    const local::RegView reg =
        batch.reg(adj[begin + static_cast<std::size_t>(w.port[s])]);
    if (reg.size() != kWaveRegSize) continue;
    for (int e = 0; e < 2; ++e) {
      const std::size_t base = static_cast<std::size_t>(3 * e);
      if (reg[base] == static_cast<std::int64_t>(v)) {
        w.src[s] = reg[base + 1];
        w.dist[s] = reg[base + 2] + 1;
      }
    }
  }

  // 2. Forward, staged as one row of the width-6 wave lane.
  std::int64_t out[kWaveRegSize] = {kNoEntry, kNoEntry, kNoEntry,
                                    kNoEntry, kNoEntry, kNoEntry};
  bool publish = false;
  for (int s = 0; s < 2; ++s) {
    const int other = 1 - s;
    if (w.port[s] < 0 || w.src[other] < 0) continue;
    const std::size_t base = static_cast<std::size_t>(3 * s);
    out[base] = adj[begin + static_cast<std::size_t>(w.port[s])];
    out[base + 1] = w.src[other];
    out[base + 2] = w.dist[other];
    publish = true;
  }
  if (publish) {
    wave_nodes_.push_back(v);
    wave_words_.insert(wave_words_.end(), out, out + kWaveRegSize);
  }

  // 3. Decide.
  if (w.src[0] >= 0 && w.src[1] >= 0) {
    const std::int64_t len = w.dist[0] + w.dist[1] + 1;
    batch_term_nodes_.push_back(v);
    if (!last_phase && len >= gamma) {
      batch_term_outputs_.push_back(
          local::Output{static_cast<int>(Color::kD), -1});
      return;
    }
    const int anchor = (w.src[0] <= w.src[1]) ? 0 : 1;
    const bool even = (w.dist[anchor] % 2 == 0);
    batch_term_outputs_.push_back(local::Output{
        static_cast<int>(even ? Color::kW : Color::kB), -1});
    return;
  }
  if (!last_phase && t >= gamma + 2) {
    batch_term_nodes_.push_back(v);
    batch_term_outputs_.push_back(
        local::Output{static_cast<int>(Color::kD), -1});
  }
}

void GenericHierProgram::cv_round_batch(local::BatchCtx& batch, NodeId v) {
  WaveState& w = wave_[static_cast<std::size_t>(v)];
  const std::int64_t t =
      batch.round() - phase_start_[static_cast<std::size_t>(opt_.k)] + 1;
  const std::int64_t sched = static_cast<std::int64_t>(cv_schedule_.size());
  const std::int32_t* off = batch.offsets();
  const NodeId* adj = batch.adjacency();
  const auto begin = static_cast<std::size_t>(off[v]);
  const auto degree = static_cast<std::size_t>(off[v + 1]) - begin;

  const auto stage_color = [&] {
    cv_nodes_.push_back(v);
    cv_words_.push_back(color_[static_cast<std::size_t>(v)]);
  };

  if (t == 1) {
    w.ports_alive = 0;
    for (std::size_t p = 0; p < degree; ++p) {
      const NodeId u = adj[begin + p];
      if (!is_active(u) || level(u) != level(v)) continue;
      if (batch.terminated_visible(u)) continue;
      if (w.ports_alive < 2) w.port[w.ports_alive] = static_cast<int>(p);
      ++w.ports_alive;
    }
    if (w.ports_alive > 2) {
      throw std::logic_error("generic: level-k path with degree > 2");
    }
    color_[static_cast<std::size_t>(v)] = tree_.local_id(v);
    stage_color();
    return;
  }

  auto neighbor_color = [&](int s) -> std::int64_t {
    if (w.port[s] < 0) return -1;
    const local::RegView reg =
        batch.reg(adj[begin + static_cast<std::size_t>(w.port[s])]);
    return reg.empty() ? -1 : reg[0];
  };

  if (t >= 2 && t <= 1 + sched) {
    const std::int64_t q = cv_schedule_[static_cast<std::size_t>(t - 2)];
    color_[static_cast<std::size_t>(v)] =
        cv_reduce(q, color_[static_cast<std::size_t>(v)], neighbor_color(0),
                  neighbor_color(1));
    stage_color();
    return;
  }

  const std::int64_t elim_start = 1 + sched + cv_pad_ + 1;
  if (t >= elim_start && t < elim_start + 22) {
    const std::int64_t cls = 24 - (t - elim_start);
    if (color_[static_cast<std::size_t>(v)] == cls) {
      bool used[3] = {false, false, false};
      for (int s = 0; s < 2; ++s) {
        const std::int64_t c = neighbor_color(s);
        if (c >= 0 && c < 3) used[static_cast<std::size_t>(c)] = true;
      }
      for (std::int64_t c = 0; c < 3; ++c) {
        if (!used[static_cast<std::size_t>(c)]) {
          color_[static_cast<std::size_t>(v)] = c;
          break;
        }
      }
      stage_color();
    }
    return;
  }

  if (batch.round() >= cv_end_round_) {
    static constexpr Color kMap[3] = {Color::kR, Color::kG, Color::kY};
    const std::int64_t c = color_[static_cast<std::size_t>(v)];
    if (c < 0 || c > 2) {
      throw std::logic_error("generic: CV did not reach 3 colors");
    }
    batch_term_nodes_.push_back(v);
    batch_term_outputs_.push_back(local::Output{
        static_cast<int>(kMap[static_cast<std::size_t>(c)]), -1});
  }
}

void GenericHierProgram::on_round_batch(local::BatchCtx& batch,
                                        local::NodeSpan nodes) {
  // Pure in the round number, so one lookup serves the whole span.
  const int phase = phase_of(batch.round());
  wave_nodes_.clear();
  wave_words_.clear();
  cv_nodes_.clear();
  cv_words_.clear();
  batch_term_nodes_.clear();
  batch_term_outputs_.clear();

  for (const NodeId v : nodes) {
    if (!is_active(v)) continue;
    const int lv = level(v);
    if (try_exempt_batch(batch, v)) continue;
    if (phase == 0 || lv > opt_.k) continue;
    if (lv < opt_.k) {
      if (phase == lv) wave_round_batch(batch, v, phase);
      continue;
    }
    if (phase != opt_.k) continue;
    if (opt_.variant == Variant::kTwoHalf) {
      wave_round_batch(batch, v, opt_.k);
    } else {
      cv_round_batch(batch, v);
    }
  }

  // Flush in per-node order: publishes, then terminations.
  if (!wave_nodes_.empty()) {
    batch.publish_lane(wave_nodes_, wave_words_.data(), kWaveRegSize);
  }
  if (!cv_nodes_.empty()) {
    batch.publish_lane(cv_nodes_, cv_words_.data(), 1);
  }
  if (!batch_term_nodes_.empty()) {
    batch.terminate_lane(batch_term_nodes_, batch_term_outputs_.data());
  }
}

local::RunStats run_generic(const Tree& tree, GenericOptions options) {
  std::vector<int> levels = problems::compute_levels(tree, options.k);
  GenericHierProgram program(tree, options, std::move(levels));
  local::Engine engine(tree);
  return engine.run(program);
}

std::vector<std::int64_t> gammas_for_35(std::int64_t lambda, int k) {
  // t = lambda^{1/2^{k-1}}, gamma_i = t^{2^{i-1}} (Lemma 14).
  std::vector<std::int64_t> gammas;
  const double t = std::pow(static_cast<double>(std::max<std::int64_t>(
                                lambda, 2)),
                            1.0 / static_cast<double>(1 << (k - 1)));
  double g = t;
  for (int i = 1; i < k; ++i) {
    gammas.push_back(std::max<std::int64_t>(2, std::llround(g)));
    g = g * g;
  }
  return gammas;
}

std::vector<std::int64_t> gammas_for_25(std::int64_t n, int k) {
  // t = n^{1/(2k-1)}, gamma_i = t^{2^{i-1}} (BBK+23b optimal profile).
  std::vector<std::int64_t> gammas;
  const double t = std::pow(static_cast<double>(std::max<std::int64_t>(n, 2)),
                            1.0 / static_cast<double>(2 * k - 1));
  double g = t;
  for (int i = 1; i < k; ++i) {
    gammas.push_back(std::max<std::int64_t>(2, std::llround(g)));
    g = g * g;
  }
  return gammas;
}

}  // namespace lcl::algo
