// Solver for k-hierarchical weight-augmented 2.5-coloring
// (Definitions 63 and 67, Section 10), node-averaged Theta(n^{1/k})
// (Lemma 69).
//
// Active nodes run the generic 2.5-coloring algorithm with
// gamma_i = Theta(n^{1/k}) (worst case O(n^{1/k})). Weight nodes solve
// k-hierarchical labeling from a proper (gamma, ell, k)-decomposition of
// the weight subgraph (Lemma 65):
//   rake layer (i, j)        -> label R_i, oriented to the higher neighbor
//   compress-layer interiors -> label C_i, the two chain cells adjacent
//                               to the endpoints orient toward them
//   compress-layer endpoints -> label R_{i+1}, oriented to their higher
//                               neighbor.
// Secondary outputs then flood along reverse orientations: weight nodes
// pointing at an active node copy its output once it terminates; rake
// chains forward the value; compress interiors Decline (and nodes whose
// pointee declined do too). Because the paper's weight trees are
// balanced, no compress step fires inside them and a full Omega(w)
// fraction of weight copies the host's output — the x = 1 efficiency of
// Lemma 68.
#pragma once

#include <cstdint>
#include <vector>

#include "algo/generic_hier.hpp"
#include "graph/tree.hpp"
#include "local/engine.hpp"
#include "problems/checkers.hpp"

namespace lcl::algo {

struct WeightAugOptions {
  int k = 2;
  /// Uniform gamma for the active generic algorithm and the target of the
  /// weight-side decomposition; 0 means ceil(n^{1/k}).
  std::int64_t gamma = 0;
  std::int64_t id_space = 0;
};

class WeightAugProgram final : public local::Program {
 public:
  WeightAugProgram(const graph::Tree& tree, WeightAugOptions options);

  void on_init(local::NodeCtx& ctx) override;
  void on_round(local::NodeCtx& ctx) override;

  /// The orientation map the solution commits to (checker input).
  [[nodiscard]] const problems::OrientationMap& orientation() const {
    return orient_;
  }

 private:
  enum class WKind : int {
    kActiveNode,
    kMustDecline,   ///< compress interior not adjacent to active
    kOrphanRoot,    ///< no pointee at all: arbitrary secondary W
    kPointsActive,  ///< pointee is an active neighbor
    kPointsWeight,  ///< pointee is a weight neighbor
  };

  [[nodiscard]] bool is_active(graph::NodeId v) const {
    return tree_.input(v) ==
           static_cast<int>(graph::WeightInput::kActive);
  }

  const graph::Tree& tree_;
  WeightAugOptions opt_;
  GenericHierProgram generic_;

  std::vector<WKind> kind_;
  std::vector<int> label_;                  ///< Definition-63 label
  std::vector<std::int64_t> label_round_;   ///< round the label is known
  std::vector<int> pointee_port_;           ///< outgoing port (-1 none)
  problems::OrientationMap orient_;
};

[[nodiscard]] local::RunStats run_weight_aug(const graph::Tree& tree,
                                             WeightAugOptions options,
                                             problems::OrientationMap*
                                                 orientation_out = nullptr);

}  // namespace lcl::algo
