#include "algo/decomp_program.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace lcl::algo {

namespace {

using graph::NodeId;

// Register layout: [alive, snapshot_degree, tgt0, d0, tgt1, d1].
constexpr std::size_t kRegSize = 6;
constexpr std::int64_t kNone = -1;

}  // namespace

int encode_layer(const decomp::LayerAssignment& a) {
  const int kind_bit = a.kind == decomp::LayerKind::kCompress ? 1 : 0;
  return (a.layer << 13) | (a.sublayer << 1) | kind_bit;
}

decomp::LayerAssignment decode_layer(int encoded) {
  decomp::LayerAssignment a;
  a.kind = (encoded & 1) ? decomp::LayerKind::kCompress
                         : decomp::LayerKind::kRake;
  a.sublayer = (encoded >> 1) & ((1 << 12) - 1);
  a.layer = encoded >> 13;
  return a;
}

DecompositionProgram::DecompositionProgram(const graph::Tree& tree,
                                           int gamma, int ell)
    : tree_(tree), gamma_(gamma), ell_(ell) {
  if (gamma < 1 || ell < 2) {
    throw std::invalid_argument("decomp program: gamma >= 1, ell >= 2");
  }
  state_.assign(static_cast<std::size_t>(tree.size()), State{});
  scratch_.reserve(static_cast<std::size_t>(tree.size()) * kRegSize);
  alive_.assign(static_cast<std::size_t>(tree.size()), 1);
  alive_prev_.assign(static_cast<std::size_t>(tree.size()), 1);
  snap_deg_.assign(static_cast<std::size_t>(tree.size()), -1);
}

void DecompositionProgram::on_init(local::NodeCtx& ctx) {
  ctx.publish({1, ctx.degree(), kNone, kNone, kNone, kNone});
}

void DecompositionProgram::on_round(local::NodeCtx& ctx) {
  const NodeId v = ctx.node();
  State& st = state_[static_cast<std::size_t>(v)];
  const std::int64_t r = ctx.round();
  const std::int64_t iter = (r - 1) / window();
  const std::int64_t offset = (r - 1) % window();
  const int layer = static_cast<int>(iter) + 1;

  auto neighbor_alive = [&](int p) {
    const local::RegView reg = ctx.peek(p);
    return !reg.empty() && reg[0] == 1;
  };
  auto neighbor_snapshot_degree = [&](int p) {
    const local::RegView reg = ctx.peek(p);
    return reg.size() >= 2 ? reg[1] : kNone;
  };

  // ---- Rake sub-steps ------------------------------------------------
  if (offset < 2 * gamma_) {
    const bool snapshot_round = (offset % 2 == 0);
    const int substep = static_cast<int>(offset / 2) + 1;
    if (snapshot_round) {
      int deg = 0;
      for (int p = 0; p < ctx.degree(); ++p) deg += neighbor_alive(p);
      st.snapshot_degree = deg;
      ctx.publish({1, deg, kNone, kNone, kNone, kNone});
      return;
    }
    // Decision round.
    if (st.snapshot_degree > 1) return;
    bool deferred = false;
    for (int p = 0; p < ctx.degree(); ++p) {
      if (!neighbor_alive(p)) continue;
      const std::int64_t nd = neighbor_snapshot_degree(p);
      const NodeId u = tree_.neighbors(v)[static_cast<std::size_t>(p)];
      if (nd >= 0 && nd <= 1 && tree_.local_id(u) < tree_.local_id(v)) {
        deferred = true;
        break;
      }
    }
    if (deferred) return;
    ctx.publish({0, kNone, kNone, kNone, kNone, kNone});
    st.alive = false;
    ctx.terminate(encode_layer(
        {decomp::LayerKind::kRake, layer, substep}));
    return;
  }

  // ---- Compress step --------------------------------------------------
  const std::int64_t c = offset - 2 * gamma_;
  if (c == 0) {
    // Snapshot for the compress phase.
    int deg = 0;
    for (int p = 0; p < ctx.degree(); ++p) deg += neighbor_alive(p);
    st.snapshot_degree = deg;
    ctx.publish({1, deg, kNone, kNone, kNone, kNone});
    return;
  }
  if (st.snapshot_degree != 2) return;  // not a chain node this window

  if (c == 1) {
    // Identify chain ports (alive neighbors with snapshot degree 2) and
    // seed the end-distance waves.
    st.chain_ports[0] = st.chain_ports[1] = -1;
    st.dist_left = st.dist_right = -1;
    int found = 0;
    for (int p = 0; p < ctx.degree() && found < 2; ++p) {
      if (neighbor_alive(p) && neighbor_snapshot_degree(p) == 2) {
        st.chain_ports[found++] = p;
      }
    }
    // A missing chain neighbor on a side makes this node the end there.
    if (st.chain_ports[0] < 0) st.dist_left = 0;
    if (st.chain_ports[1] < 0) st.dist_right = 0;
  }

  auto side_dist = [&](int s) {
    return s == 0 ? st.dist_left : st.dist_right;
  };
  auto set_side_dist = [&](int s, int d) {
    (s == 0 ? st.dist_left : st.dist_right) = d;
  };

  if (c >= 2 && c <= 1 + ell_) {
    // Receive: the entry a chain neighbor addressed to us carries its
    // distance to the end on its far side; ours is one more (saturated).
    for (int s = 0; s < 2; ++s) {
      const int p = st.chain_ports[s];
      if (p < 0 || side_dist(s) >= 0) continue;
      const local::RegView reg = ctx.peek(p);
      if (reg.size() != kRegSize) continue;
      for (int e = 0; e < 2; ++e) {
        const std::size_t base = 2 + 2 * static_cast<std::size_t>(e);
        if (reg[base] == static_cast<std::int64_t>(v)) {
          set_side_dist(s, std::min<int>(
                               ell_, static_cast<int>(reg[base + 1]) + 1));
        }
      }
    }
  }
  if (c >= 1 && c <= 1 + ell_) {
    // Publish toward each chain port the distance on the *other* side.
    local::Register out = {1, st.snapshot_degree, kNone, kNone, kNone,
                           kNone};
    bool any = false;
    for (int s = 0; s < 2; ++s) {
      const int p = st.chain_ports[s];
      const int other = side_dist(1 - s);
      if (p < 0 || other < 0) continue;
      const std::size_t base = 2 + 2 * static_cast<std::size_t>(s);
      out[base] = tree_.neighbors(v)[static_cast<std::size_t>(p)];
      out[base + 1] = other;
      any = true;
    }
    if (any) ctx.publish(out);
    return;
  }

  if (c == 2 + ell_) {
    // Decision: saturated end distances; unknown means >= ell.
    const int dl = st.dist_left >= 0 ? st.dist_left : ell_;
    const int dr = st.dist_right >= 0 ? st.dist_right : ell_;
    if (dl + dr >= ell_ - 1) {
      ctx.publish({0, kNone, kNone, kNone, kNone, kNone});
      st.alive = false;
      ctx.terminate(encode_layer(
          {decomp::LayerKind::kCompress, layer, 0}));
    }
    return;
  }
}

void DecompositionProgram::on_init_batch(local::BatchCtx& batch,
                                         local::NodeSpan nodes) {
  const std::int32_t* off = batch.offsets();
  scratch_.resize(nodes.size() * kRegSize);
  std::int64_t* out = scratch_.data();
  for (const NodeId v : nodes) {
    const auto vi = static_cast<std::size_t>(v);
    out[0] = 1;
    out[1] = off[vi + 1] - off[vi];
    out[2] = out[3] = out[4] = out[5] = kNone;
    out += kRegSize;
  }
  batch.publish_lane(nodes, scratch_.data(), kRegSize);
}

// Batch kernel: the per-node path recomputes the protocol phase
// (iteration / window offset / layer — two integer divisions) for every
// alive node every round and resolves every neighbor observation
// through the register planes; here the phase is hoisted to one
// computation per round and neighbor reads are flat lane loads.
// `alive_` / `snap_deg_` mirror exactly the committed register's first
// two words: a lane is written in one phase and read in others, and the
// one phase that reads the lane it also writes (rake decisions write
// `alive_`) reads the round-start copy `alive_prev_` — the lane
// analogue of the engine's staging/committed split, so walk order
// cannot leak same-round writes. Snapshot rounds stage all registers in
// one contiguous lane and publish with a single bulk write; the wave
// rounds build registers in a stack array instead of the per-node
// heap-backed `local::Register`. Reads and state updates are
// element-for-element those of `on_round`, so the schedule is
// bit-identical.
void DecompositionProgram::on_round_batch(local::BatchCtx& batch,
                                          local::NodeSpan nodes) {
  const std::int64_t r = batch.round();
  const std::int64_t offset = (r - 1) % window();
  const int layer = static_cast<int>((r - 1) / window()) + 1;
  const std::int32_t* off = batch.offsets();
  const NodeId* adj = batch.adjacency();
  const graph::LocalId* ids = tree_.local_ids().data();
  const std::uint8_t* alive = alive_.data();
  const std::int32_t* snap_deg = snap_deg_.data();

  const bool rake_phase = offset < 2 * gamma_;
  const std::int64_t c = offset - 2 * gamma_;

  // ---- Snapshot rounds (every even rake sub-step, and c == 0) --------
  // Nothing writes `alive_` in a snapshot round, so the direct read is
  // the committed value.
  if ((rake_phase && offset % 2 == 0) || c == 0) {
    scratch_.resize(nodes.size() * kRegSize);
    std::int64_t* out = scratch_.data();
    for (const NodeId v : nodes) {
      const auto vi = static_cast<std::size_t>(v);
      int deg = 0;
      for (std::int32_t p = off[vi]; p < off[vi + 1]; ++p) {
        deg += alive[static_cast<std::size_t>(adj[p])];
      }
      state_[vi].snapshot_degree = deg;
      snap_deg_[vi] = deg;
      out[0] = 1;
      out[1] = deg;
      out[2] = out[3] = out[4] = out[5] = kNone;
      out += kRegSize;
    }
    batch.publish_lane(nodes, scratch_.data(), kRegSize);
    return;
  }

  // ---- Rake decision rounds ------------------------------------------
  // Raking writes `alive_` mid-walk, so the defer check reads the
  // round-start copy (= what the committed registers say).
  if (rake_phase) {
    const int substep = static_cast<int>(offset / 2) + 1;
    std::memcpy(alive_prev_.data(), alive_.data(), alive_.size());
    const std::uint8_t* alive_prev = alive_prev_.data();
    for (const NodeId v : nodes) {
      const auto vi = static_cast<std::size_t>(v);
      State& st = state_[vi];
      if (st.snapshot_degree > 1) continue;
      bool deferred = false;
      for (std::int32_t p = off[vi]; p < off[vi + 1]; ++p) {
        const auto u = static_cast<std::size_t>(adj[p]);
        if (alive_prev[u] == 0) continue;
        // An alive neighbor always published in the snapshot round just
        // before this one, so its lane entry is its committed reg[1].
        if (snap_deg[u] <= 1 && ids[u] < ids[vi]) {
          deferred = true;
          break;
        }
      }
      if (deferred) continue;
      batch.publish(v, {0, kNone, kNone, kNone, kNone, kNone});
      st.alive = false;
      alive_[vi] = 0;
      batch.terminate(
          v, encode_layer({decomp::LayerKind::kRake, layer, substep}));
    }
    return;
  }

  // ---- Compress rounds (c >= 1) --------------------------------------
  for (const NodeId v : nodes) {
    const auto vi = static_cast<std::size_t>(v);
    State& st = state_[vi];
    if (st.snapshot_degree != 2) continue;  // not a chain node this window
    const auto base_off = static_cast<std::size_t>(off[vi]);

    if (c == 1) {
      // Nothing writes `alive_` at c == 1, so direct lane reads are the
      // committed values here too.
      st.chain_ports[0] = st.chain_ports[1] = -1;
      st.dist_left = st.dist_right = -1;
      const int degree = off[vi + 1] - off[vi];
      int found = 0;
      for (int p = 0; p < degree && found < 2; ++p) {
        const auto u = static_cast<std::size_t>(
            adj[base_off + static_cast<std::size_t>(p)]);
        if (alive[u] != 0 && snap_deg[u] == 2) {
          st.chain_ports[found++] = p;
        }
      }
      if (st.chain_ports[0] < 0) st.dist_left = 0;
      if (st.chain_ports[1] < 0) st.dist_right = 0;
    }

    auto side_dist = [&](int s) {
      return s == 0 ? st.dist_left : st.dist_right;
    };
    auto set_side_dist = [&](int s, int d) {
      (s == 0 ? st.dist_left : st.dist_right) = d;
    };

    if (c >= 2 && c <= 1 + ell_) {
      for (int s = 0; s < 2; ++s) {
        const int p = st.chain_ports[s];
        if (p < 0 || side_dist(s) >= 0) continue;
        const local::RegView reg =
            batch.reg(adj[base_off + static_cast<std::size_t>(p)]);
        if (reg.size() != kRegSize) continue;
        for (int e = 0; e < 2; ++e) {
          const std::size_t base = 2 + 2 * static_cast<std::size_t>(e);
          if (reg[base] == static_cast<std::int64_t>(v)) {
            set_side_dist(s, std::min<int>(
                                 ell_, static_cast<int>(reg[base + 1]) + 1));
          }
        }
      }
    }
    if (c >= 1 && c <= 1 + ell_) {
      std::int64_t out[kRegSize] = {1,     st.snapshot_degree, kNone,
                                    kNone, kNone,              kNone};
      bool any = false;
      for (int s = 0; s < 2; ++s) {
        const int p = st.chain_ports[s];
        const int other = side_dist(1 - s);
        if (p < 0 || other < 0) continue;
        const std::size_t base = 2 + 2 * static_cast<std::size_t>(s);
        out[base] = adj[base_off + static_cast<std::size_t>(p)];
        out[base + 1] = other;
        any = true;
      }
      if (any) batch.publish(v, local::RegView(out, kRegSize));
      continue;
    }

    if (c == 2 + ell_) {
      const int dl = st.dist_left >= 0 ? st.dist_left : ell_;
      const int dr = st.dist_right >= 0 ? st.dist_right : ell_;
      if (dl + dr >= ell_ - 1) {
        batch.publish(v, {0, kNone, kNone, kNone, kNone, kNone});
        st.alive = false;
        alive_[vi] = 0;
        batch.terminate(
            v, encode_layer({decomp::LayerKind::kCompress, layer, 0}));
      }
      continue;
    }
  }
}

DistributedDecomposition run_distributed_decomposition(
    const graph::Tree& tree, int gamma, int ell) {
  DecompositionProgram program(tree, gamma, ell);
  local::Engine engine(tree);
  DistributedDecomposition out;
  out.stats = engine.run(program);
  out.decomposition.gamma = gamma;
  out.decomposition.ell = ell;
  out.decomposition.relaxed = true;
  out.decomposition.assignment.resize(
      static_cast<std::size_t>(tree.size()));
  out.decomposition.assign_step.resize(
      static_cast<std::size_t>(tree.size()));
  int max_layer = 0;
  for (graph::NodeId v = 0; v < tree.size(); ++v) {
    const auto a =
        decode_layer(out.stats.output[static_cast<std::size_t>(v)].primary);
    out.decomposition.assignment[static_cast<std::size_t>(v)] = a;
    out.decomposition.assign_step[static_cast<std::size_t>(v)] =
        static_cast<int>(
            out.stats.termination_round[static_cast<std::size_t>(v)]);
    max_layer = std::max(max_layer, a.layer);
  }
  out.decomposition.num_layers = max_layer;
  return out;
}

}  // namespace lcl::algo
