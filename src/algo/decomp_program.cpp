#include "algo/decomp_program.hpp"

#include <algorithm>
#include <stdexcept>

namespace lcl::algo {

namespace {

using graph::NodeId;

// Register layout: [alive, snapshot_degree, tgt0, d0, tgt1, d1].
constexpr std::size_t kRegSize = 6;
constexpr std::int64_t kNone = -1;

}  // namespace

int encode_layer(const decomp::LayerAssignment& a) {
  const int kind_bit = a.kind == decomp::LayerKind::kCompress ? 1 : 0;
  return (a.layer << 13) | (a.sublayer << 1) | kind_bit;
}

decomp::LayerAssignment decode_layer(int encoded) {
  decomp::LayerAssignment a;
  a.kind = (encoded & 1) ? decomp::LayerKind::kCompress
                         : decomp::LayerKind::kRake;
  a.sublayer = (encoded >> 1) & ((1 << 12) - 1);
  a.layer = encoded >> 13;
  return a;
}

DecompositionProgram::DecompositionProgram(const graph::Tree& tree,
                                           int gamma, int ell)
    : tree_(tree), gamma_(gamma), ell_(ell) {
  if (gamma < 1 || ell < 2) {
    throw std::invalid_argument("decomp program: gamma >= 1, ell >= 2");
  }
  state_.assign(static_cast<std::size_t>(tree.size()), State{});
}

void DecompositionProgram::on_init(local::NodeCtx& ctx) {
  ctx.publish({1, ctx.degree(), kNone, kNone, kNone, kNone});
}

void DecompositionProgram::on_round(local::NodeCtx& ctx) {
  const NodeId v = ctx.node();
  State& st = state_[static_cast<std::size_t>(v)];
  const std::int64_t r = ctx.round();
  const std::int64_t iter = (r - 1) / window();
  const std::int64_t offset = (r - 1) % window();
  const int layer = static_cast<int>(iter) + 1;

  auto neighbor_alive = [&](int p) {
    const local::RegView reg = ctx.peek(p);
    return !reg.empty() && reg[0] == 1;
  };
  auto neighbor_snapshot_degree = [&](int p) {
    const local::RegView reg = ctx.peek(p);
    return reg.size() >= 2 ? reg[1] : kNone;
  };

  // ---- Rake sub-steps ------------------------------------------------
  if (offset < 2 * gamma_) {
    const bool snapshot_round = (offset % 2 == 0);
    const int substep = static_cast<int>(offset / 2) + 1;
    if (snapshot_round) {
      int deg = 0;
      for (int p = 0; p < ctx.degree(); ++p) deg += neighbor_alive(p);
      st.snapshot_degree = deg;
      ctx.publish({1, deg, kNone, kNone, kNone, kNone});
      return;
    }
    // Decision round.
    if (st.snapshot_degree > 1) return;
    bool deferred = false;
    for (int p = 0; p < ctx.degree(); ++p) {
      if (!neighbor_alive(p)) continue;
      const std::int64_t nd = neighbor_snapshot_degree(p);
      const NodeId u = tree_.neighbors(v)[static_cast<std::size_t>(p)];
      if (nd >= 0 && nd <= 1 && tree_.local_id(u) < tree_.local_id(v)) {
        deferred = true;
        break;
      }
    }
    if (deferred) return;
    ctx.publish({0, kNone, kNone, kNone, kNone, kNone});
    st.alive = false;
    ctx.terminate(encode_layer(
        {decomp::LayerKind::kRake, layer, substep}));
    return;
  }

  // ---- Compress step --------------------------------------------------
  const std::int64_t c = offset - 2 * gamma_;
  if (c == 0) {
    // Snapshot for the compress phase.
    int deg = 0;
    for (int p = 0; p < ctx.degree(); ++p) deg += neighbor_alive(p);
    st.snapshot_degree = deg;
    ctx.publish({1, deg, kNone, kNone, kNone, kNone});
    return;
  }
  if (st.snapshot_degree != 2) return;  // not a chain node this window

  if (c == 1) {
    // Identify chain ports (alive neighbors with snapshot degree 2) and
    // seed the end-distance waves.
    st.chain_ports[0] = st.chain_ports[1] = -1;
    st.dist_left = st.dist_right = -1;
    int found = 0;
    for (int p = 0; p < ctx.degree() && found < 2; ++p) {
      if (neighbor_alive(p) && neighbor_snapshot_degree(p) == 2) {
        st.chain_ports[found++] = p;
      }
    }
    // A missing chain neighbor on a side makes this node the end there.
    if (st.chain_ports[0] < 0) st.dist_left = 0;
    if (st.chain_ports[1] < 0) st.dist_right = 0;
  }

  auto side_dist = [&](int s) {
    return s == 0 ? st.dist_left : st.dist_right;
  };
  auto set_side_dist = [&](int s, int d) {
    (s == 0 ? st.dist_left : st.dist_right) = d;
  };

  if (c >= 2 && c <= 1 + ell_) {
    // Receive: the entry a chain neighbor addressed to us carries its
    // distance to the end on its far side; ours is one more (saturated).
    for (int s = 0; s < 2; ++s) {
      const int p = st.chain_ports[s];
      if (p < 0 || side_dist(s) >= 0) continue;
      const local::RegView reg = ctx.peek(p);
      if (reg.size() != kRegSize) continue;
      for (int e = 0; e < 2; ++e) {
        const std::size_t base = 2 + 2 * static_cast<std::size_t>(e);
        if (reg[base] == static_cast<std::int64_t>(v)) {
          set_side_dist(s, std::min<int>(
                               ell_, static_cast<int>(reg[base + 1]) + 1));
        }
      }
    }
  }
  if (c >= 1 && c <= 1 + ell_) {
    // Publish toward each chain port the distance on the *other* side.
    local::Register out = {1, st.snapshot_degree, kNone, kNone, kNone,
                           kNone};
    bool any = false;
    for (int s = 0; s < 2; ++s) {
      const int p = st.chain_ports[s];
      const int other = side_dist(1 - s);
      if (p < 0 || other < 0) continue;
      const std::size_t base = 2 + 2 * static_cast<std::size_t>(s);
      out[base] = tree_.neighbors(v)[static_cast<std::size_t>(p)];
      out[base + 1] = other;
      any = true;
    }
    if (any) ctx.publish(out);
    return;
  }

  if (c == 2 + ell_) {
    // Decision: saturated end distances; unknown means >= ell.
    const int dl = st.dist_left >= 0 ? st.dist_left : ell_;
    const int dr = st.dist_right >= 0 ? st.dist_right : ell_;
    if (dl + dr >= ell_ - 1) {
      ctx.publish({0, kNone, kNone, kNone, kNone, kNone});
      st.alive = false;
      ctx.terminate(encode_layer(
          {decomp::LayerKind::kCompress, layer, 0}));
    }
    return;
  }
}

DistributedDecomposition run_distributed_decomposition(
    const graph::Tree& tree, int gamma, int ell) {
  DecompositionProgram program(tree, gamma, ell);
  local::Engine engine(tree);
  DistributedDecomposition out;
  out.stats = engine.run(program);
  out.decomposition.gamma = gamma;
  out.decomposition.ell = ell;
  out.decomposition.relaxed = true;
  out.decomposition.assignment.resize(
      static_cast<std::size_t>(tree.size()));
  out.decomposition.assign_step.resize(
      static_cast<std::size_t>(tree.size()));
  int max_layer = 0;
  for (graph::NodeId v = 0; v < tree.size(); ++v) {
    const auto a =
        decode_layer(out.stats.output[static_cast<std::size_t>(v)].primary);
    out.decomposition.assignment[static_cast<std::size_t>(v)] = a;
    out.decomposition.assign_step[static_cast<std::size_t>(v)] =
        static_cast<int>(
            out.stats.termination_round[static_cast<std::size_t>(v)]);
    max_layer = std::max(max_layer, a.layer);
  }
  out.decomposition.num_layers = max_layer;
  return out;
}

}  // namespace lcl::algo
