// Linial-style iterated color reduction on paths (max degree 2).
//
// One reduction round maps a proper coloring with K colors to a proper
// coloring with q^2 colors, where q is a small prime chosen from K, using
// the polynomial cover-free family from Linial's paper: color c < q^3 is
// identified with a degree-<=2 polynomial f_c over F_q, and the set
// S_c = { x*q + f_c(x) : x in F_q } subset [q^2] satisfies
// |S_a ∩ S_b| <= 2 for a != b. With q >= 5, a node with at most two
// neighbors can always pick an element of its own set hit by neither
// neighbor's set; the picked element is the new color.
//
// Iterating shrinks any 64-bit ID space to at most 25 colors in O(log* K)
// rounds (the full schedule is a deterministic function of K that all
// nodes compute locally), after which at most 22 rounds of one-class-at-a-
// time greedy recoloring reach 3 colors. Total: Theta(log* K) rounds —
// the engine of Corollary 10 / Corollary 17 / the level-k phase of the
// 3.5-coloring algorithms.
#pragma once

#include <cstdint>
#include <vector>

namespace lcl::algo {

/// Smallest prime >= x (x <= ~2^21 in practice here).
[[nodiscard]] std::int64_t next_prime(std::int64_t x);

/// The prime used to reduce a K-coloring in one round: the smallest prime
/// q >= 5 with q^3 >= K (so every color < K encodes as a polynomial).
[[nodiscard]] std::int64_t cv_prime_for(std::int64_t num_colors);

/// The full reduction schedule for an initial palette of `num_colors`:
/// the sequence of primes q_1, q_2, ... applied per round until the
/// palette size reaches its fixed point of 25 (= 5^2) colors.
/// Schedule length is Theta(log* num_colors).
[[nodiscard]] std::vector<std::int64_t> cv_schedule(std::int64_t num_colors);

/// One Cole-Vishkin/Linial step: given own color and the colors of at most
/// two neighbors (pass -1 for absent neighbors), all < q^3 and pairwise
/// distinct from own where present, returns a new color < q^2 guaranteed
/// to differ from the neighbors' new colors computed with the same q.
[[nodiscard]] std::int64_t cv_reduce(std::int64_t q, std::int64_t own,
                                     std::int64_t nbr1, std::int64_t nbr2);

/// Number of rounds of the complete 3-coloring procedure from a palette of
/// `num_colors`: schedule length + (25 - 3) greedy class-elimination
/// rounds. Deterministic and globally known, so all nodes can run in
/// lockstep without termination detection.
[[nodiscard]] std::int64_t cv_total_rounds(std::int64_t num_colors);

}  // namespace lcl::algo
