// Randomized 3-coloring of paths with O(1) *expected node-averaged*
// complexity — the witness for the randomized side of the landscape
// (Figures 1/2: randomized node-averaged complexity on trees is either
// O(1) or n^{Omega(1)}; every sub-polynomial problem drops to O(1)).
//
// Protocol (per round): every undecided node proposes a uniformly random
// color; a node fixes its previous proposal once it conflicts with no
// already-fixed neighbor and ties with no undecided neighbor of higher
// LOCAL id. Each node survives a round with probability bounded away
// from 1, so termination times are geometric: node-average O(1),
// worst case O(log n) w.h.p. Randomness is deterministic per (seed,
// node), so runs reproduce.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/tree.hpp"
#include "local/engine.hpp"

namespace lcl::algo {

/// Randomized path/tree coloring with `colors` >= max degree + 1.
class RandomColoringProgram final : public local::Program {
 public:
  RandomColoringProgram(const graph::Tree& tree, int colors,
                        std::uint64_t seed);

  void on_init(local::NodeCtx& ctx) override;
  void on_round(local::NodeCtx& ctx) override;
  void on_init_batch(local::BatchCtx& batch,
                     local::NodeSpan nodes) override;
  void on_round_batch(local::BatchCtx& batch,
                      local::NodeSpan nodes) override;

 private:
  [[nodiscard]] int draw(graph::NodeId v);

  const graph::Tree& tree_;
  int colors_;
  std::uint64_t seed_;
  std::vector<std::uint64_t> state_;  ///< per-node PRNG state
  std::vector<int> proposal_;         ///< previous round's proposal
  /// Batch-kernel mirror of the *committed* proposals: refreshed from
  /// `proposal_` at the top of every batch round, before any redraw
  /// mutates it, so neighbor reads are flat int loads that cannot
  /// observe same-round writes (the lane analogue of the engine's
  /// staging/committed register split).
  std::vector<int> committed_;
};

/// Convenience: run and return stats (outputs are color indices).
[[nodiscard]] local::RunStats run_random_coloring(const graph::Tree& tree,
                                                  int colors,
                                                  std::uint64_t seed);

}  // namespace lcl::algo
