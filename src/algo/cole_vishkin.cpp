#include "algo/cole_vishkin.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

namespace lcl::algo {

std::int64_t next_prime(std::int64_t x) {
  if (x <= 2) return 2;
  if (x % 2 == 0) ++x;
  for (;; x += 2) {
    bool prime = true;
    for (std::int64_t p = 3; p * p <= x; p += 2) {
      if (x % p == 0) {
        prime = false;
        break;
      }
    }
    if (prime) return x;
  }
}

std::int64_t cv_prime_for(std::int64_t num_colors) {
  // Smallest q >= 5 with q^3 >= num_colors.
  std::int64_t lo = 5;
  while (lo * lo * lo < num_colors) ++lo;
  return next_prime(lo);
}

std::vector<std::int64_t> cv_schedule(std::int64_t num_colors) {
  std::vector<std::int64_t> schedule;
  std::int64_t k = num_colors;
  for (;;) {
    const std::int64_t q = cv_prime_for(k);
    const std::int64_t next = q * q;
    if (next >= k && !schedule.empty()) break;  // reached the fixed point
    schedule.push_back(q);
    if (next >= k) break;  // single non-shrinking step for tiny palettes
    k = next;
  }
  // Ensure the palette ends at exactly 25: once k <= 125, q = 5 and one
  // more step lands on 25. Add it if the loop stopped earlier.
  if (k > 25) {
    while (k > 25) {
      const std::int64_t q = cv_prime_for(k);
      schedule.push_back(q);
      const std::int64_t next = q * q;
      if (next >= k) break;
      k = next;
    }
  }
  return schedule;
}

std::int64_t cv_reduce(std::int64_t q, std::int64_t own, std::int64_t nbr1,
                       std::int64_t nbr2) {
  if (own < 0 || own >= q * q * q) {
    throw std::invalid_argument("cv_reduce: color out of range");
  }
  auto poly_eval = [q](std::int64_t c, std::int64_t x) {
    const std::int64_t a0 = c % q;
    const std::int64_t a1 = (c / q) % q;
    const std::int64_t a2 = (c / (q * q)) % q;
    return (a0 + a1 * x + a2 * x * x) % q;
  };
  // Find x in F_q whose point (x, f_own(x)) is hit by neither neighbor's
  // polynomial. Each distinct neighbor polynomial agrees with ours on at
  // most 2 points, so among q >= 5 points one is free.
  for (std::int64_t x = 0; x < q; ++x) {
    const std::int64_t y = poly_eval(own, x);
    if (nbr1 >= 0 && nbr1 != own && poly_eval(nbr1, x) == y) continue;
    if (nbr2 >= 0 && nbr2 != own && poly_eval(nbr2, x) == y) continue;
    // Note: a neighbor color equal to our own would make every point
    // collide; proper colorings never present that case.
    if (nbr1 == own || nbr2 == own) {
      throw std::invalid_argument("cv_reduce: neighbor shares our color");
    }
    return x * q + y;
  }
  throw std::logic_error("cv_reduce: no free point (q too small?)");
}

std::int64_t cv_total_rounds(std::int64_t num_colors) {
  return static_cast<std::int64_t>(cv_schedule(num_colors).size()) +
         (25 - 3);
}

}  // namespace lcl::algo
