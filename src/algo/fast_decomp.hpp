// The adapted Fast Decomposition Algorithm (Section 8.1): a d-free-weight
// solver with O(1) node-averaged and O(log n) worst-case complexity,
// used by the Pi^{3.5} solver on the weight subgraph.
//
// One iteration = one rake step (remove alive degree <= 1 nodes) plus one
// relaxed compress step (whole alive chains of length >= ell = 3), with
// the Figure-5 edge orientations: a raked node's edge from its remaining
// alive neighbor points *into* the raked node, and the first/last ell
// edges of a compress chain point inward. "Reachable from v through a
// consistently oriented path" is then exactly the earlier-assigned
// subtree hanging below v, which grows by O(1) depth per iteration.
//
// Adapted output rules (Section 8.1):
//  * pre-step: input-A nodes within distance 5 connect the path between
//    them with Connect and leave the decomposition;
//  * when an input-A node is assigned, it outputs Copy and floods Copy
//    through its oriented subtree C(v); its still-alive / same-chain
//    neighbors become *border* nodes and Decline;
//  * border nodes propagate Decline through their subtree once assigned;
//  * local maxima (Definition 42) Decline and propagate;
//  * chain nodes at distance >= ell from both chain ends Decline and
//    propagate.
//
// The planner below computes roles, rounds (3 engine rounds per
// iteration, propagation one hop per round) and the C(v) component
// structure; the Lemma-52 pruning C(v) -> C'(v) is decided at run time by
// the Pi^{3.5} program (it depends on whether the active neighbor already
// terminated) via `prune_component`.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/tree.hpp"

namespace lcl::algo {

using graph::NodeId;
using graph::Tree;

/// Role of a weight node after the adapted fast decomposition.
enum class FdaRole : int {
  kInactive = 0,  ///< not a participant (active node)
  kConnect,       ///< pre-step Connect path
  kDecline,       ///< declines at a known round
  kCopyRoot,      ///< input-A node owning a component C(v)
  kCopyMember,    ///< member of some C(v), flood-listens
};

/// Plan produced by the adapted fast decomposition.
struct FastDecompPlan {
  std::vector<FdaRole> role;
  /// kConnect/kDecline: termination round. kCopyRoot: the decision round
  /// rho_dec at which Case 1 (flood everything) vs Case 2 (prune first)
  /// is resolved. kCopyMember: unused (0).
  std::vector<std::int64_t> ready_round;
  std::vector<NodeId> comp_root;   ///< C(v) root per member (or invalid)
  std::vector<int> comp_depth;     ///< depth within C(v) (-1 if none)
  std::vector<int> flood_parent_port;  ///< port toward depth-1 neighbor
  std::vector<std::vector<NodeId>> components;  ///< members per component,
                                                ///< BFS order from root
  std::vector<int> comp_of_root;   ///< root node -> component index
  int iterations = 0;
  /// |{nodes without output after iteration i}| — Corollary 47's decay.
  std::vector<std::int64_t> unfinished_after_iteration;
};

/// Runs the planner on the subgraph induced by `participates`, with
/// `is_a` marking input-A nodes (weight nodes adjacent to an active).
/// `early_resolution` toggles the eager A-free-subtree Decline rule
/// (the Corollary-47 decay mechanism); disabling it is the ablation of
/// bench_ablation — outputs stay valid but the node-average of the
/// Decline mass degrades from O(1) to Theta(depth).
[[nodiscard]] FastDecompPlan run_fast_decomposition(
    const Tree& tree, const std::vector<char>& participates,
    const std::vector<char>& is_a, int d, bool early_resolution = true);

/// Lemma 52: prunes C(root) to C'(root). Every kept Copy node may turn at
/// most (d - #already-Declining-neighbors) of its heaviest child subtrees
/// into Decline; returns keep[i] for components[comp].
/// `is_declined(u)` must report whether u's final output is Decline.
[[nodiscard]] std::vector<char> prune_component(
    const Tree& tree, const FastDecompPlan& plan, int comp, int d,
    const std::vector<char>& is_declined);

}  // namespace lcl::algo
