// The generic algorithm for Pi^{3.5}_{Delta,d,k} (Section 8.2),
// achieving node-averaged complexity O((log* n)^{alpha_1(x')}) with
// x' = log(Delta-d+1)/log(Delta-1) (Theorem 5).
//
// Active nodes run the generic 3.5-coloring algorithm with
// gamma_i = (log* n)^{alpha_i} (the alpha_i of Lemma 36); weight nodes
// follow the adapted fast decomposition plan: Connect/Decline at their
// planned rounds, and each component C(v) resolves at its decision round
// rho_dec into either Case 1 (the active neighbor already terminated:
// flood its label through all of C(v)) or Case 2 (prune C(v) to C'(v)
// per Lemma 52; pruned nodes Decline, kept nodes flood once the active
// terminates).
#pragma once

#include <cstdint>
#include <vector>

#include "algo/fast_decomp.hpp"
#include "algo/generic_hier.hpp"
#include "graph/tree.hpp"
#include "local/engine.hpp"

namespace lcl::algo {

/// Options for the Pi^{3.5} solver.
struct Pi35Options {
  int k = 2;
  int d = 3;
  /// gamma_i for the embedded generic algorithm (size k-1).
  std::vector<std::int64_t> gammas;
  std::int64_t id_space = 0;
  /// Virtual-log* pad for the level-k 3-coloring (DESIGN.md Subst. 1).
  std::int64_t symmetry_pad = 0;
};

class Pi35Program final : public local::Program {
 public:
  Pi35Program(const graph::Tree& tree, Pi35Options options);

  void on_init(local::NodeCtx& ctx) override;
  void on_round(local::NodeCtx& ctx) override;

  [[nodiscard]] const FastDecompPlan& plan() const { return plan_; }
  /// Number of weight nodes whose final primary output is Copy — the
  /// quantity bounded by Lemma 52 (|C'(v)| <= 2 |C(v)|^{x'}).
  [[nodiscard]] std::int64_t copies_kept() const { return copies_kept_; }

 private:
  [[nodiscard]] bool is_active(graph::NodeId v) const {
    return tree_.input(v) ==
           static_cast<int>(graph::WeightInput::kActive);
  }
  void resolve_component(local::NodeCtx& ctx, graph::NodeId root);

  const graph::Tree& tree_;
  Pi35Options opt_;
  GenericHierProgram generic_;
  FastDecompPlan plan_;
  /// Final Decline verdicts (plan declines + runtime pruning), used by
  /// the adaptive pruning of later components.
  std::vector<char> declined_;
  /// Per member node: round at which a pruning Decline fires (-1 none).
  std::vector<std::int64_t> prune_round_;
  /// Per root: 0 undecided, 1 flood-all, 2 pruned.
  std::vector<char> case_of_root_;
  std::int64_t copies_kept_ = 0;
};

[[nodiscard]] local::RunStats run_pi35(const graph::Tree& tree,
                                       Pi35Options options);

}  // namespace lcl::algo
