#include "algo/dfree_logn.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "algo/connect_paths.hpp"

namespace lcl::algo {

namespace {

using problems::WeightOut;

std::int64_t ceil_log_base(std::int64_t n, std::int64_t base) {
  std::int64_t r = 0;
  std::int64_t v = 1;
  while (v < n) {
    v *= base;
    ++r;
  }
  return r;
}

}  // namespace

DFreeResult run_dfree_algorithm_a(const Tree& tree,
                                  const std::vector<char>& participates,
                                  const std::vector<char>& is_a, int d,
                                  std::int64_t n_for_radius) {
  if (d < 1) throw std::invalid_argument("dfree: d >= 1");
  const NodeId n = tree.size();
  DFreeResult res;
  res.output.assign(static_cast<std::size_t>(n), -1);
  res.copy_root.assign(static_cast<std::size_t>(n), graph::kInvalidNode);
  res.copy_depth.assign(static_cast<std::size_t>(n), -1);

  const std::int64_t logd = ceil_log_base(n_for_radius, d + 1);
  const std::int64_t ball_radius = logd + 1;
  const std::int64_t connect_bound = 2 * logd + 2;
  res.view_radius = 3 * logd + 3;

  auto in = [&](NodeId v) {
    return participates[static_cast<std::size_t>(v)] != 0;
  };

  // Default: every participant Declines unless a later rule overrides.
  for (NodeId v = 0; v < n; ++v) {
    if (in(v)) {
      res.output[static_cast<std::size_t>(v)] =
          static_cast<int>(WeightOut::kDecline);
    }
  }

  // --- Connect rule -------------------------------------------------
  // Exactly the nodes on a path of length <= connect_bound between two
  // input-A nodes output Connect: BFS from each A-node to the bound with
  // parent recording, then walk back the unique tree path from every
  // other A-node discovered. (Within a weight component, balls from
  // distinct A-nodes stay inside the component, so the total work is
  // linear for the paper's instances.)
  mark_connect_paths(tree, participates, is_a, connect_bound,
                     [&](NodeId v) {
                       res.output[static_cast<std::size_t>(v)] =
                           static_cast<int>(WeightOut::kConnect);
                     });

  // --- A* assignment around each non-Connect A-node ------------------
  for (NodeId v = 0; v < n; ++v) {
    if (!in(v) || !is_a[static_cast<std::size_t>(v)]) continue;
    if (res.output[static_cast<std::size_t>(v)] ==
        static_cast<int>(WeightOut::kConnect)) {
      continue;
    }

    // BFS ball of radius ball_radius rooted at v; record parents so the
    // ball is a rooted tree.
    std::vector<NodeId> order;           // BFS order
    std::vector<NodeId> parent_of;       // parallel to order
    std::vector<int> depth_of;           // parallel to order
    std::vector<std::int64_t> ball_idx(  // node -> index in order, or -1
        static_cast<std::size_t>(n), -1);
    {
      std::deque<NodeId> q{v};
      ball_idx[static_cast<std::size_t>(v)] = 0;
      order.push_back(v);
      parent_of.push_back(graph::kInvalidNode);
      depth_of.push_back(0);
      std::size_t head = 0;
      while (head < order.size()) {
        const NodeId u = order[head];
        const int du = depth_of[head];
        ++head;
        if (du == ball_radius) continue;
        for (NodeId w : tree.neighbors(u)) {
          if (!in(w) || ball_idx[static_cast<std::size_t>(w)] >= 0) continue;
          ball_idx[static_cast<std::size_t>(w)] =
              static_cast<std::int64_t>(order.size());
          order.push_back(w);
          parent_of.push_back(u);
          depth_of.push_back(du + 1);
        }
      }
    }

    // Subtree sizes within the ball (children are later in BFS order).
    std::vector<std::int64_t> subtree(order.size(), 1);
    for (std::size_t i = order.size(); i-- > 1;) {
      const std::int64_t pi =
          ball_idx[static_cast<std::size_t>(parent_of[i])];
      subtree[static_cast<std::size_t>(pi)] += subtree[i];
    }
    std::vector<std::vector<std::size_t>> children(order.size());
    for (std::size_t i = 1; i < order.size(); ++i) {
      children[static_cast<std::size_t>(
                   ball_idx[static_cast<std::size_t>(parent_of[i])])]
          .push_back(i);
    }

    // A*: root Copy; every Copy node Declines its min(d, #children)
    // heaviest child subtrees, keeps the rest Copy.
    std::deque<std::size_t> q{0};
    res.output[static_cast<std::size_t>(v)] =
        static_cast<int>(WeightOut::kCopy);
    res.copy_root[static_cast<std::size_t>(v)] = v;
    res.copy_depth[static_cast<std::size_t>(v)] = 0;
    while (!q.empty()) {
      const std::size_t i = q.front();
      q.pop_front();
      auto kids = children[i];
      std::sort(kids.begin(), kids.end(),
                [&](std::size_t a, std::size_t b) {
                  return subtree[a] > subtree[b];
                });
      const std::size_t to_decline =
          std::min<std::size_t>(static_cast<std::size_t>(d), kids.size());
      for (std::size_t c = to_decline; c < kids.size(); ++c) {
        const std::size_t child = kids[c];
        const NodeId w = order[child];
        res.output[static_cast<std::size_t>(w)] =
            static_cast<int>(WeightOut::kCopy);
        res.copy_root[static_cast<std::size_t>(w)] = v;
        res.copy_depth[static_cast<std::size_t>(w)] = depth_of[child];
        q.push_back(child);
      }
      // Declined subtrees stay at the default Decline.
    }
  }

  return res;
}

}  // namespace lcl::algo
