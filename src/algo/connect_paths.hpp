// Shared Connect-path marking: the nodes lying on a path of length
// <= bound between two input-A nodes (used by Algorithm A's Connect rule
// and the distance-5 pre-step of the adapted fast decomposition).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/tree.hpp"

namespace lcl::algo {

/// Calls `mark(v)` for every participating node v on the unique tree
/// path (endpoints included) between two input-A nodes at distance
/// <= bound from each other, paths through participants only.
void mark_connect_paths(const graph::Tree& tree,
                        const std::vector<char>& participates,
                        const std::vector<char>& is_a, std::int64_t bound,
                        const std::function<void(graph::NodeId)>& mark);

}  // namespace lcl::algo
