// Distributed computation of Definition-8 levels.
//
// The peeling process ("V_i = nodes of remaining degree <= 2") is a
// k-round LOCAL computation: in round i every unpeeled node counts its
// unpeeled neighbors as of the previous round and adopts level i if at
// most two remain. This program exists to *prove by test* that the
// centralized `problems::compute_levels` used by the solvers matches a
// genuinely distributed execution (see tests/test_levels.cpp).
#pragma once

#include <vector>

#include "graph/tree.hpp"
#include "local/engine.hpp"

namespace lcl::algo {

/// Runs the k-round distributed peeling; each node terminates in round
/// <= k+1 with its level as the primary output.
class LevelProgram final : public local::Program {
 public:
  LevelProgram(const graph::Tree& tree, int k) : tree_(tree), k_(k) {
    peeled_.assign(static_cast<std::size_t>(tree.size()), 0);
    newly_peeled_.reserve(static_cast<std::size_t>(tree.size()));
  }

  void on_init(local::NodeCtx& ctx) override {
    // Register slot 0: 1 once peeled (level fixed), else 0.
    (void)ctx;
  }

  void on_round(local::NodeCtx& ctx) override {
    const graph::NodeId v = ctx.node();
    const std::int64_t round = ctx.round();
    if (round > k_) {
      ctx.terminate(k_ + 1);
      return;
    }
    int unpeeled_neighbors = 0;
    for (int p = 0; p < ctx.degree(); ++p) {
      const local::RegView reg = ctx.peek(p);
      const bool peeled = !reg.empty() && reg[0] == 1;
      if (!peeled) ++unpeeled_neighbors;
    }
    if (unpeeled_neighbors <= 2) {
      ctx.publish({1});
      ctx.terminate(static_cast<int>(round));
      return;
    }
    (void)v;
  }

  /// Batch kernel: neighbor peeled-state lives in a program-side byte
  /// lane instead of being re-read through register views — `peeled_`
  /// mirrors exactly what the committed registers say (a node's peel is
  /// folded in at the *start* of the next round, the program-side
  /// counterpart of the engine's end-of-round flip), so the count loop
  /// is a flat byte gather over the CSR.
  void on_round_batch(local::BatchCtx& batch,
                      local::NodeSpan nodes) override {
    const std::int64_t round = batch.round();
    if (round > k_) {
      batch.terminate_lane(nodes, local::Output{k_ + 1, -1});
      return;
    }
    for (const graph::NodeId v : newly_peeled_) {
      peeled_[static_cast<std::size_t>(v)] = 1;
    }
    newly_peeled_.clear();
    const std::int32_t* off = batch.offsets();
    const graph::NodeId* adj = batch.adjacency();
    static constexpr std::int64_t kPeeledReg[1] = {1};
    for (const graph::NodeId v : nodes) {
      const auto begin = static_cast<std::size_t>(
          off[static_cast<std::size_t>(v)]);
      const auto end = static_cast<std::size_t>(
          off[static_cast<std::size_t>(v) + 1]);
      int unpeeled_neighbors = 0;
      for (std::size_t p = begin; p < end; ++p) {
        unpeeled_neighbors +=
            peeled_[static_cast<std::size_t>(adj[p])] == 0;
      }
      if (unpeeled_neighbors <= 2) {
        batch.publish(v, local::RegView(kPeeledReg, 1));
        batch.terminate(v, static_cast<int>(round));
        newly_peeled_.push_back(v);
      }
    }
  }

 private:
  const graph::Tree& tree_;
  int k_;
  std::vector<char> peeled_;
  std::vector<graph::NodeId> newly_peeled_;
};

}  // namespace lcl::algo
