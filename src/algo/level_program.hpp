// Distributed computation of Definition-8 levels.
//
// The peeling process ("V_i = nodes of remaining degree <= 2") is a
// k-round LOCAL computation: in round i every unpeeled node counts its
// unpeeled neighbors as of the previous round and adopts level i if at
// most two remain. This program exists to *prove by test* that the
// centralized `problems::compute_levels` used by the solvers matches a
// genuinely distributed execution (see tests/test_levels.cpp).
#pragma once

#include <vector>

#include "graph/tree.hpp"
#include "local/engine.hpp"

namespace lcl::algo {

/// Runs the k-round distributed peeling; each node terminates in round
/// <= k+1 with its level as the primary output.
class LevelProgram final : public local::Program {
 public:
  LevelProgram(const graph::Tree& tree, int k) : tree_(tree), k_(k) {
    peeled_.assign(static_cast<std::size_t>(tree.size()), 0);
  }

  void on_init(local::NodeCtx& ctx) override {
    // Register slot 0: 1 once peeled (level fixed), else 0.
    (void)ctx;
  }

  void on_round(local::NodeCtx& ctx) override {
    const graph::NodeId v = ctx.node();
    const std::int64_t round = ctx.round();
    if (round > k_) {
      ctx.terminate(k_ + 1);
      return;
    }
    int unpeeled_neighbors = 0;
    for (int p = 0; p < ctx.degree(); ++p) {
      const local::RegView reg = ctx.peek(p);
      const bool peeled = !reg.empty() && reg[0] == 1;
      if (!peeled) ++unpeeled_neighbors;
    }
    if (unpeeled_neighbors <= 2) {
      ctx.publish({1});
      ctx.terminate(static_cast<int>(round));
      return;
    }
    (void)peeled_;
    (void)v;
  }

 private:
  const graph::Tree& tree_;
  int k_;
  std::vector<char> peeled_;
};

}  // namespace lcl::algo
