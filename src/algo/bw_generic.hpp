// Engine wrapper for the Section-11 generic solver on sampled BwTables.
//
// The label computation is centralized (bw::solve_tree_bw, falling back
// to the exact bw::solve_tree_bw_global), and every node is charged the
// locality-equivalent round count of the distributed schedule — the same
// convention as the other centralized registry wrappers (DESIGN.md,
// "The solver registry"):
//
//   * flexible mode (the rectangle solver succeeded): node v terminates
//     at its peel step `assign_step[v]` — the distributed round in which
//     it learns its layer; the geometric layer decay makes the
//     node-average O(1) (Theorem 7's constant-good side).
//   * split surcharge: a compress chain whose realized compress problem
//     (the chain's committed boundary label-sets, Definition 77) does
//     not classify O(1) must be split by symmetry breaking; its nodes
//     additionally pay kSplitPad + cv_total_rounds(n) — the actual
//     Linial/Cole-Vishkin round account on the instance's ID space.
//   * global mode (rectangles failed, exact DP succeeded): no node can
//     commit before the full bottom-up/top-down echo, so v pays
//     2 * depth - assign_step[v] — Theta(log n) for everyone.
//   * infeasible: both solvers rejected; the program terminates
//     immediately with output -1 and `solved() == false`, and the
//     registry certifier reports the instance as infeasible.
//
// Certification recovers the full edge labeling from the program
// (downcast, like the weight-augmented orientation map) and re-checks it
// with the independent bw::check_tree_bw.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/tree.hpp"
#include "local/engine.hpp"
#include "problems/lclgen.hpp"

namespace lcl::algo {

/// Which schedule the wrapper charged.
enum class BwMode : int {
  kFlexible = 0,       ///< rectangle solve, no chain needed splitting
  kFlexibleSplit = 1,  ///< rectangle solve, >= 1 chain split surcharge
  kGlobal = 2,         ///< exact DP, full-depth schedule
  kInfeasible = 3,     ///< no labeling exists on this instance
};

[[nodiscard]] const char* to_string(BwMode m);

class BwGenericProgram final : public local::Program {
 public:
  /// Flat surcharge added on top of the Cole-Vishkin round account when
  /// a chain splits, so split runs are magnitude-separated from O(1)
  /// runs at every sweep size (see classify.hpp's thresholds).
  static constexpr std::int64_t kSplitPad = 16;

  BwGenericProgram(const graph::Tree& tree, problems::BwTable table);

  void on_init(local::NodeCtx&) override {}
  void on_round(local::NodeCtx& ctx) override;

  [[nodiscard]] bool solved() const { return mode_ != BwMode::kInfeasible; }
  [[nodiscard]] BwMode mode() const { return mode_; }
  [[nodiscard]] const std::vector<int>& edge_labels() const {
    return edge_labels_;
  }
  [[nodiscard]] const std::string& failure() const { return failure_; }
  [[nodiscard]] const problems::BwTable& table() const { return table_; }

 private:
  problems::BwTable table_;
  BwMode mode_ = BwMode::kInfeasible;
  std::vector<std::int64_t> round_of_;
  std::vector<int> out_;
  std::vector<int> edge_labels_;  ///< per bw::EdgeIndex edge id
  std::string failure_;
};

}  // namespace lcl::algo
