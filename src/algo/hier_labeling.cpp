#include "algo/hier_labeling.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "decomp/rake_compress.hpp"
#include "problems/labels.hpp"

namespace lcl::algo {

namespace {

using decomp::LayerKind;
using graph::NodeId;
using problems::EdgeDir;

int port_of(const graph::Tree& t, NodeId v, NodeId target) {
  const auto nb = t.neighbors(v);
  for (std::size_t p = 0; p < nb.size(); ++p) {
    if (nb[p] == target) return static_cast<int>(p);
  }
  throw std::logic_error("hier_labeling: missing port");
}

}  // namespace

HierLabeling solve_hierarchical_labeling(const graph::Tree& tree, int k) {
  if (k < 1) throw std::invalid_argument("hier_labeling: k >= 1");
  const NodeId n = tree.size();

  // (gamma, 4, k)-decomposition; double gamma until <= k layers.
  std::int64_t gamma = std::max<std::int64_t>(
      2, static_cast<std::int64_t>(std::ceil(std::pow(
             static_cast<double>(std::max<NodeId>(n, 2)), 1.0 / k))));
  decomp::Decomposition dec;
  for (;;) {
    dec = decomp::rake_compress(tree, static_cast<int>(gamma), 4,
                                /*split_paths=*/true);
    if (dec.num_layers <= k) break;
    gamma *= 2;
  }

  HierLabeling out;
  out.gamma = gamma;
  out.layers_used = dec.num_layers;
  out.labels.assign(static_cast<std::size_t>(n), -1);
  out.assign_round = dec.assign_step;
  out.orientation.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    out.orientation[static_cast<std::size_t>(v)].assign(
        static_cast<std::size_t>(tree.degree(v)), EdgeDir::kNone);
  }
  auto orient = [&](NodeId from, NodeId to) {
    out.orientation[static_cast<std::size_t>(from)]
                   [static_cast<std::size_t>(port_of(tree, from, to))] =
                       EdgeDir::kOutgoing;
    out.orientation[static_cast<std::size_t>(to)]
                   [static_cast<std::size_t>(port_of(tree, to, from))] =
                       EdgeDir::kIncoming;
  };
  auto key = [&](NodeId v) {
    return decomp::layer_order_key(
        dec.assignment[static_cast<std::size_t>(v)]);
  };

  for (NodeId v = 0; v < n; ++v) {
    const auto& a = dec.assignment[static_cast<std::size_t>(v)];
    if (a.kind == LayerKind::kRake) {
      out.labels[static_cast<std::size_t>(v)] =
          problems::rake_label(a.layer);
      for (NodeId u : tree.neighbors(v)) {
        if (key(u) > key(v)) {
          orient(v, u);
          break;  // Definition 71: at most one higher neighbor
        }
      }
      continue;
    }
    // Compress segment cell: endpoint iff <= 1 same-layer neighbor.
    int same = 0;
    for (NodeId u : tree.neighbors(v)) {
      const auto& au = dec.assignment[static_cast<std::size_t>(u)];
      if (au.kind == LayerKind::kCompress && au.layer == a.layer) ++same;
    }
    if (same <= 1) {
      out.labels[static_cast<std::size_t>(v)] =
          problems::rake_label(a.layer + 1);
      for (NodeId u : tree.neighbors(v)) {
        const auto& au = dec.assignment[static_cast<std::size_t>(u)];
        if (au.kind == LayerKind::kCompress && au.layer == a.layer) {
          orient(u, v);  // the adjacent interior points at the endpoint
        } else if (key(u) > key(v)) {
          orient(v, u);
        }
      }
    } else {
      out.labels[static_cast<std::size_t>(v)] =
          problems::compress_label(a.layer);
    }
  }
  return out;
}

}  // namespace lcl::algo
