#include "algo/randomized.hpp"

#include <cstring>
#include <stdexcept>

namespace lcl::algo {

namespace {

/// splitmix64 step — a small, well-distributed PRNG per node.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

RandomColoringProgram::RandomColoringProgram(const graph::Tree& tree,
                                             int colors,
                                             std::uint64_t seed)
    : tree_(tree), colors_(colors), seed_(seed) {
  if (colors < tree.max_degree() + 1) {
    throw std::invalid_argument(
        "random coloring: need >= max degree + 1 colors");
  }
  state_.assign(static_cast<std::size_t>(tree.size()), 0);
  proposal_.assign(static_cast<std::size_t>(tree.size()), -1);
  committed_.assign(static_cast<std::size_t>(tree.size()), -1);
  for (graph::NodeId v = 0; v < tree.size(); ++v) {
    state_[static_cast<std::size_t>(v)] =
        seed_ * 0x2545f4914f6cdd1dULL +
        static_cast<std::uint64_t>(tree.local_id(v)) + 1;
  }
}

int RandomColoringProgram::draw(graph::NodeId v) {
  return static_cast<int>(splitmix64(state_[static_cast<std::size_t>(v)]) %
                          static_cast<std::uint64_t>(colors_));
}

void RandomColoringProgram::on_init(local::NodeCtx& ctx) {
  const graph::NodeId v = ctx.node();
  proposal_[static_cast<std::size_t>(v)] = draw(v);
  ctx.publish({proposal_[static_cast<std::size_t>(v)]});
}

void RandomColoringProgram::on_round(local::NodeCtx& ctx) {
  const graph::NodeId v = ctx.node();
  const int mine = proposal_[static_cast<std::size_t>(v)];

  // Can the previous proposal be fixed? It must differ from every
  // fixed neighbor color, and every undecided neighbor with the same
  // proposal must have a smaller LOCAL id.
  bool safe = true;
  for (int p = 0; p < ctx.degree(); ++p) {
    if (ctx.neighbor_terminated(p)) {
      if (ctx.neighbor_output(p).primary == mine) {
        safe = false;
        break;
      }
      continue;
    }
    const local::RegView reg = ctx.peek(p);
    const int theirs = reg.empty() ? -1 : static_cast<int>(reg[0]);
    if (theirs == mine) {
      const graph::NodeId u =
          tree_.neighbors(v)[static_cast<std::size_t>(p)];
      if (tree_.local_id(u) > tree_.local_id(v)) {
        safe = false;
        break;
      }
    }
  }
  if (safe) {
    ctx.terminate(mine);
    return;
  }
  proposal_[static_cast<std::size_t>(v)] = draw(v);
  ctx.publish({proposal_[static_cast<std::size_t>(v)]});
}

void RandomColoringProgram::on_init_batch(local::BatchCtx& batch,
                                          local::NodeSpan nodes) {
  (void)batch;
  for (const graph::NodeId v : nodes) {
    const int proposal = draw(v);
    proposal_[static_cast<std::size_t>(v)] = proposal;
    const std::int64_t word = proposal;
    batch.publish(v, local::RegView(&word, 1));
  }
}

// Batch kernel: the same per-node rule over flat lanes. `committed_`
// (copied from `proposal_` before any redraw this round) equals the
// committed register word for every node that has published — the last
// draw *is* the last publish — and equals the fixed output color for a
// terminated node (`proposal_` freezes at the color it terminated
// with), so both neighbor classes read one int instead of resolving a
// register plane. Terminations are masked by term_round < round exactly
// like NodeCtx::neighbor_terminated. Reads see only round-start state
// and each node's PRNG stream is independent, so the schedule is
// bit-identical to the per-node path.
void RandomColoringProgram::on_round_batch(local::BatchCtx& batch,
                                           local::NodeSpan nodes) {
  const std::int64_t round = batch.round();
  const std::int32_t* off = batch.offsets();
  const graph::NodeId* adj = batch.adjacency();
  const std::uint8_t* term = batch.terminated_lane().data();
  const std::int64_t* term_round = batch.term_round_lane().data();
  const graph::LocalId* ids = tree_.local_ids().data();
  std::memcpy(committed_.data(), proposal_.data(),
              proposal_.size() * sizeof(int));
  const int* committed = committed_.data();
  for (const graph::NodeId v : nodes) {
    const auto vi = static_cast<std::size_t>(v);
    const int mine = committed[vi];
    const auto begin = static_cast<std::size_t>(off[vi]);
    const auto end = static_cast<std::size_t>(off[vi + 1]);
    bool safe = true;
    for (std::size_t p = begin; p < end; ++p) {
      const auto u = static_cast<std::size_t>(adj[p]);
      if (committed[u] != mine) continue;
      if (term[u] != 0 && term_round[u] < round) {
        safe = false;  // conflicts with a fixed neighbor
        break;
      }
      if (ids[u] > ids[vi]) {
        safe = false;  // loses the tie against an undecided neighbor
        break;
      }
    }
    if (safe) {
      batch.terminate(v, mine);
      continue;
    }
    const int proposal = draw(v);
    proposal_[vi] = proposal;
    const std::int64_t word = proposal;
    batch.publish(v, local::RegView(&word, 1));
  }
}

local::RunStats run_random_coloring(const graph::Tree& tree, int colors,
                                    std::uint64_t seed) {
  RandomColoringProgram program(tree, colors, seed);
  local::Engine engine(tree);
  return engine.run(program);
}

}  // namespace lcl::algo
