#include "algo/bw_generic.hpp"

#include <algorithm>

#include "algo/cole_vishkin.hpp"
#include "bw/path_lcl.hpp"
#include "decomp/rake_compress.hpp"
#include "problems/classify.hpp"

namespace lcl::algo {

const char* to_string(BwMode m) {
  switch (m) {
    case BwMode::kFlexible: return "flexible";
    case BwMode::kFlexibleSplit: return "flexible+split";
    case BwMode::kGlobal: return "global";
    case BwMode::kInfeasible: return "infeasible";
  }
  return "?";
}

BwGenericProgram::BwGenericProgram(const graph::Tree& tree,
                                   problems::BwTable table)
    : table_(std::move(table)) {
  const auto n = static_cast<std::size_t>(tree.size());
  round_of_.assign(n, 1);
  out_.assign(n, -1);

  const bw::TreeBwProblem problem = table_.to_problem();
  const decomp::Decomposition dec =
      decomp::rake_compress(tree, /*gamma=*/1, /*ell=*/4,
                            /*split_paths=*/true);

  bw::TreeBwResult result = bw::solve_tree_bw(tree, problem);
  if (result.solved) {
    mode_ = BwMode::kFlexible;
    edge_labels_ = std::move(result.edge_label);
    for (std::size_t v = 0; v < n; ++v) {
      round_of_[v] = std::max(1, dec.assign_step[v]);
    }
    // Per-chain split decision on the *realized* compress problems: the
    // chain's committed boundary label-sets restrict the path
    // restriction; a non-O(1) class means the interior needs symmetry
    // breaking, charged at the actual Cole-Vishkin account for the
    // instance's ID space.
    const bw::PathLcl path = problems::path_restriction(table_);
    const std::int64_t split_cost =
        kSplitPad +
        cv_total_rounds(std::max<std::int64_t>(tree.size(), 4));
    for (const bw::ChainRecord& chain : result.chains) {
      const bw::PathLcl compress = bw::with_boundaries(
          path, chain.left != 0 ? chain.left : path.left_boundary,
          chain.right != 0 ? chain.right : path.right_boundary);
      if (bw::classify(compress) != bw::PathComplexity::kConstant) {
        mode_ = BwMode::kFlexibleSplit;
        for (const graph::NodeId v : chain.nodes) {
          round_of_[static_cast<std::size_t>(v)] += split_cost;
        }
      }
    }
  } else {
    const std::string flexible_failure = result.failure;
    bw::TreeBwResult exact = bw::solve_tree_bw_global(tree, problem);
    if (exact.solved) {
      mode_ = BwMode::kGlobal;
      edge_labels_ = std::move(exact.edge_label);
      int depth = 1;
      for (std::size_t v = 0; v < n; ++v) {
        depth = std::max(depth, dec.assign_step[v]);
      }
      for (std::size_t v = 0; v < n; ++v) {
        round_of_[v] = 2 * static_cast<std::int64_t>(depth) -
                       std::max(1, dec.assign_step[v]);
      }
    } else {
      mode_ = BwMode::kInfeasible;
      failure_ = "flexible: " + flexible_failure +
                 "; exact: " + exact.failure;
      return;
    }
  }

  // Per-node output: the label of the node's port-0 edge (leaves report
  // their unique incident label). The checker grades the full edge
  // labeling recovered by downcast, not these.
  const bw::EdgeIndex edges = bw::EdgeIndex::build(tree);
  for (graph::NodeId v = 0; v < tree.size(); ++v) {
    if (tree.degree(v) == 0) continue;
    out_[static_cast<std::size_t>(v)] =
        edge_labels_[static_cast<std::size_t>(edges.of(tree, v, 0))];
  }
}

void BwGenericProgram::on_round(local::NodeCtx& ctx) {
  const auto v = static_cast<std::size_t>(ctx.node());
  if (ctx.round() >= round_of_[v]) {
    ctx.terminate(out_[v]);
  }
}

}  // namespace lcl::algo
