// Standalone solver for the k-hierarchical labeling problem
// (Definition 63) via the Lemma-65 construction: compute a proper
// (gamma, 4, k)-decomposition with gamma ~ n^{1/k}, then map
//   rake layer (i, j)        -> R_i, oriented at the higher neighbor,
//   compress-chain interiors -> C_i (cells next to an endpoint orient
//                               toward it),
//   compress-chain endpoints -> R_{i+1}, oriented at their higher
//                               neighbor.
// Worst-case round cost is the decomposition's O(k n^{1/k}) (Lemma 65);
// `assign_step` provides the per-node round accounting.
//
// This is the same mapping the weight-augmented solver (Definition 67)
// applies on its weight subgraph; the standalone form exposes it for
// whole trees and for the Definition-63 checker.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/tree.hpp"
#include "problems/checkers.hpp"

namespace lcl::algo {

struct HierLabeling {
  std::vector<int> labels;  ///< Definition-63 labels (problems::rake_label…)
  problems::OrientationMap orientation;
  std::vector<int> assign_round;  ///< peel step per node (round accounting)
  int layers_used = 0;
  std::int64_t gamma = 0;
};

/// Solves k-hierarchical labeling on a whole tree. Throws if no gamma up
/// to n produces at most k layers (cannot happen for k >= 1).
[[nodiscard]] HierLabeling solve_hierarchical_labeling(
    const graph::Tree& tree, int k);

}  // namespace lcl::algo
