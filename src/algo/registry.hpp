// Algorithm registry: every paper algorithm as a first-class, sweepable
// citizen.
//
// The paper's landscape results are statements about *classes* of
// algorithms — the Θ(n^{1/(2k)}) / Θ(n^{1/k}) hierarchies are
// instantiated by many concrete solvers — yet solvers used to be bespoke
// `local::Program` subclasses with incompatible option structs, each
// hand-wired into exactly one scenario. The registry gives them one
// uniform surface, mirroring the instance-family registry
// (graph/families.hpp) on the algorithm axis:
//
//   * `SolverSpec` — name, paper binding (problem / theorem / predicted
//     complexity), the input preparations the solver needs (shuffled
//     IDs, Definition-22 Active/Weight marking, Section-7 A/W marking,
//     a per-run RNG seed), typed options with defaults and ranges, a
//     `factory` building the program from a (Tree, SolverConfig) pair,
//     and a `certify` hook that grades the run with the problem's own
//     independent checker (solver-side artifacts such as orientation
//     maps are recovered from the program instance, so every solver is
//     certifiable through the same call).
//   * `SolverConfig` — typed key=value options (scalars and small
//     integer lists), validated in one place (`SolverConfig::validate`)
//     with clear out-of-range errors instead of silent clamping.
//   * `prepare_instance` — applies a spec's declared input needs to a
//     freshly built instance, so any solver runs on any compatible
//     family through one code path (`core::make_solver_job` composes
//     this with `core::make_family_job`'s instance construction).
//
// The `solver_matrix` bench scenario sweeps the full compatible
// algorithm × family cross-product through exactly this surface.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/families.hpp"
#include "graph/tree.hpp"
#include "local/engine.hpp"
#include "problems/checkers.hpp"

namespace lcl::algo {

/// Input preparations a registered solver declares. `prepare_instance`
/// applies them to a freshly built instance; everything is deterministic
/// in (topology, seed).
enum InputNeed : unsigned {
  /// Distinct shuffled LOCAL IDs (symmetry breaking). Families emit
  /// identity IDs; solvers whose measured behavior assumes random ID
  /// assignment declare this.
  kNeedShuffledIds = 1u << 0,
  /// Definition-22 Active/Weight input marking. Nodes deeper than half
  /// the component depth become Weight, so weight subtrees hang off an
  /// active skeleton exactly as in the paper's constructions.
  kNeedWeightInputs = 1u << 1,
  /// Section-7 d-free A/W marking: a sparse deterministic set of
  /// input-A nodes (component roots plus a seeded sprinkle), rest W.
  kNeedDFreeInputs = 1u << 2,
  /// The solver consumes the per-run seed (`SolverConfig::seed`).
  kNeedRng = 1u << 3,
};

/// One typed option of a registered solver. All option values are
/// int64 words; a list option (e.g. `gammas`) holds several, a scalar
/// exactly one, and flags are scalars restricted to [0, 1].
struct OptionSpec {
  std::string key;
  std::string summary;
  std::int64_t def = 0;  ///< default for scalar options
  std::int64_t min = 0;  ///< inclusive per-element range
  std::int64_t max = std::numeric_limits<std::int64_t>::max();
  /// List options take comma-separated values on the CLI and have no
  /// static default — the factory derives one from the instance (the
  /// theory profile) when the option is absent.
  bool is_list = false;
};

struct SolverSpec;

/// Typed key=value option assignment for one solver instantiation.
class SolverConfig {
 public:
  /// Per-run seed, consumed by solvers that declare `kNeedRng`.
  std::uint64_t seed = 0;

  void set(const std::string& key, std::int64_t value) {
    values_[key] = {value};
  }
  void set(const std::string& key, std::vector<std::int64_t> values) {
    values_[key] = std::move(values);
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) != 0;
  }
  /// Scalar accessor; throws std::invalid_argument if absent or a list.
  [[nodiscard]] std::int64_t get(const std::string& key) const;
  /// List accessor; throws std::invalid_argument if absent.
  [[nodiscard]] const std::vector<std::int64_t>& list(
      const std::string& key) const;

  [[nodiscard]] const std::map<std::string, std::vector<std::int64_t>>&
  values() const {
    return values_;
  }

  /// Validates against a spec and resolves defaults, the one place all
  /// option checking funnels through: every set key must be a declared
  /// option, every element must lie in the option's [min, max] range
  /// (clear errors name the solver, key, value, and range — no silent
  /// clamping), and absent scalar options are filled with their
  /// defaults. Returns *this for chaining.
  SolverConfig& validate(const SolverSpec& spec);

 private:
  std::map<std::string, std::vector<std::int64_t>> values_;
};

/// A registered solver.
struct SolverSpec {
  std::string name;        ///< stable CLI/JSON key
  std::string summary;     ///< one-line description
  std::string problem;     ///< the LCL it solves (checker binding)
  std::string theorem;     ///< paper theorem/lemma it instantiates
  std::string complexity;  ///< predicted node-averaged complexity
  unsigned needs = 0;      ///< InputNeed bitmask
  std::vector<OptionSpec> options;

  /// Builds the program. The tree must already carry the inputs the
  /// spec's `needs` declare (see `prepare_instance`); `config` must be
  /// validated. Factories raise std::invalid_argument with the solver
  /// name for relational option errors (e.g. |gammas| != k-1).
  std::function<std::unique_ptr<local::Program>(const graph::Tree&,
                                                const SolverConfig&)>
      factory;

  /// Grades a completed run with the problem's independent checker.
  /// Receives the program that ran so solver-side artifacts (e.g. the
  /// weight-augmented orientation map) stay certifiable through the
  /// uniform surface.
  std::function<problems::CheckResult(
      const graph::Tree&, const local::Program&, const local::RunStats&,
      const SolverConfig&)>
      certify;

  /// Which instance families the solver can run on (default: every tree
  /// family; non-forest edge-case families must be opted into).
  std::function<bool(const graph::Family&)> compatible;

  [[nodiscard]] const OptionSpec* find_option(const std::string& key) const;
};

/// The full registry, in paper order. Names are stable CLI/JSON keys.
[[nodiscard]] const std::vector<SolverSpec>& registry();

/// Looks up a solver by name; nullptr if unknown.
[[nodiscard]] const SolverSpec* find_solver(const std::string& name);

/// Looks up a solver by name; throws std::invalid_argument (listing the
/// registered names) if unknown.
[[nodiscard]] const SolverSpec& solver(const std::string& name);

/// All registered solver names, in registry order.
[[nodiscard]] std::vector<std::string> solver_names();

/// Parses a comma-separated solver selection. "all" (or an empty
/// string) yields every registered solver. Throws std::invalid_argument
/// on an unknown name.
[[nodiscard]] std::vector<std::string> parse_solver_list(
    const std::string& csv);

/// Applies one CLI "key=value" pair to `config`: scalar options parse
/// one integer, list options a comma-separated sequence. Throws
/// std::invalid_argument on malformed pairs or keys the spec does not
/// declare.
void apply_option(const SolverSpec& spec, SolverConfig& config,
                  const std::string& kv);

/// Splits a "key=value" CLI pair; throws std::invalid_argument when the
/// '=' or the key is missing.
[[nodiscard]] std::pair<std::string, std::string> split_option(
    const std::string& kv);

/// Applies a solver's declared input needs to a freshly built instance.
/// Deterministic in (topology, seed); see `InputNeed` for the exact
/// markings.
void prepare_instance(graph::Tree& tree, unsigned needs,
                      std::uint64_t seed);

/// Outcome of running a registered solver once.
struct SolverRun {
  local::RunStats stats;
  problems::CheckResult verdict;
};

/// One uniform run: validates `config`, builds the program through the
/// spec's factory, executes it on a fresh engine, and certifies the
/// outputs with the spec's checker binding. A truncated run is measured
/// but not certified (partial outputs are not checkable), mirroring
/// `core::make_job`. The instance must already be prepared (or be a
/// paper construction that carries its own inputs). `dispatch` selects
/// the Program↔Engine stepping contract (per-node hooks vs span-level
/// batch kernels); results are bit-identical either way.
[[nodiscard]] SolverRun run_registered(
    const SolverSpec& spec, const graph::Tree& tree, SolverConfig config,
    std::int64_t max_rounds = std::numeric_limits<int>::max(),
    local::DispatchMode dispatch = local::DispatchMode::kAuto);

}  // namespace lcl::algo
