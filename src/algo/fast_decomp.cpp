#include "algo/fast_decomp.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "algo/connect_paths.hpp"

namespace lcl::algo {

namespace {

constexpr int kEll = 3;            // relaxed compress threshold
constexpr int kRoundsPerIter = 3;  // engine rounds charged per iteration

/// Working state of the planner.
struct Planner {
  const Tree& tree;
  const std::vector<char>& participates;
  const std::vector<char>& is_a;
  int d;

  std::vector<char> alive;
  std::vector<char> assigned;
  std::vector<std::int64_t> layer_key;  // 2i rake / 2i+1 compress
  std::vector<std::vector<NodeId>> kids;  // oriented u -> kids[u]
  // Deferred orientation: when `pending_parent[c]` is assigned, the edge
  // pending_parent[c] -> c materializes (compress-endpoint boundary).
  std::vector<NodeId> pending_child;  // per node: child to adopt on assign
  // Early-resolution bookkeeping (the Corollary-47 decay mechanism; see
  // DESIGN.md Substitution 3): whether a node's oriented subtree contains
  // an input-A node, and how many early Declines each alive parent has
  // granted to its raked children (at most d-2, the Lemma-52 budget).
  std::vector<char> has_a_below;
  std::vector<int> early_declines;

  FastDecompPlan plan;

  explicit Planner(const Tree& t, const std::vector<char>& part,
                   const std::vector<char>& a, int d_param)
      : tree(t), participates(part), is_a(a), d(d_param) {
    const std::size_t n = static_cast<std::size_t>(t.size());
    alive.assign(n, 0);
    assigned.assign(n, 0);
    layer_key.assign(n, -1);
    kids.resize(n);
    pending_child.assign(n, graph::kInvalidNode);
    has_a_below.assign(n, 0);
    early_declines.assign(n, 0);
    plan.role.assign(n, FdaRole::kInactive);
    plan.ready_round.assign(n, 0);
    plan.comp_root.assign(n, graph::kInvalidNode);
    plan.comp_depth.assign(n, -1);
    plan.flood_parent_port.assign(n, -1);
  }

  [[nodiscard]] bool in(NodeId v) const {
    return participates[static_cast<std::size_t>(v)] != 0;
  }
  [[nodiscard]] bool has_output(NodeId v) const {
    const FdaRole r = plan.role[static_cast<std::size_t>(v)];
    return r != FdaRole::kInactive || !in(v);
  }

  /// Decline propagation: BFS over `kids` starting below each seed,
  /// skipping nodes that already carry an output (which also blocks the
  /// subtree behind them — an existing Copy component is sealed).
  void propagate_decline(const std::vector<NodeId>& seeds,
                         std::int64_t base_round) {
    std::deque<std::pair<NodeId, std::int64_t>> q;
    for (NodeId s : seeds) {
      if (!has_output(s)) {
        plan.role[static_cast<std::size_t>(s)] = FdaRole::kDecline;
        plan.ready_round[static_cast<std::size_t>(s)] = base_round;
      }
      if (plan.role[static_cast<std::size_t>(s)] == FdaRole::kDecline) {
        q.emplace_back(s, base_round);
      }
    }
    while (!q.empty()) {
      auto [u, r] = q.front();
      q.pop_front();
      for (NodeId w : kids[static_cast<std::size_t>(u)]) {
        if (has_output(w)) continue;
        plan.role[static_cast<std::size_t>(w)] = FdaRole::kDecline;
        plan.ready_round[static_cast<std::size_t>(w)] = r + 1;
        q.emplace_back(w, r + 1);
      }
    }
  }

  /// Copy propagation from a freshly assigned input-A node.
  void propagate_copy(NodeId root, std::int64_t base_round) {
    if (has_output(root)) {
      throw std::logic_error("fda: input-A node already has an output");
    }
    plan.role[static_cast<std::size_t>(root)] = FdaRole::kCopyRoot;
    plan.comp_root[static_cast<std::size_t>(root)] = root;
    plan.comp_depth[static_cast<std::size_t>(root)] = 0;
    std::vector<NodeId> members{root};
    std::deque<NodeId> q{root};
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop_front();
      for (NodeId w : kids[static_cast<std::size_t>(u)]) {
        if (has_output(w)) continue;
        plan.role[static_cast<std::size_t>(w)] = FdaRole::kCopyMember;
        plan.comp_root[static_cast<std::size_t>(w)] = root;
        plan.comp_depth[static_cast<std::size_t>(w)] =
            plan.comp_depth[static_cast<std::size_t>(u)] + 1;
        const auto nb = tree.neighbors(w);
        for (std::size_t p = 0; p < nb.size(); ++p) {
          if (nb[p] == u) {
            plan.flood_parent_port[static_cast<std::size_t>(w)] =
                static_cast<int>(p);
          }
        }
        members.push_back(w);
        q.push_back(w);
      }
    }
    int max_depth = 0;
    for (NodeId m : members) {
      max_depth =
          std::max(max_depth, plan.comp_depth[static_cast<std::size_t>(m)]);
    }
    // rho_dec: assignment + collect the component topology (2 * depth).
    plan.ready_round[static_cast<std::size_t>(root)] =
        base_round + 2 * max_depth + 1;
    plan.comp_of_root.resize(static_cast<std::size_t>(tree.size()), -1);
    plan.comp_of_root[static_cast<std::size_t>(root)] =
        static_cast<int>(plan.components.size());
    plan.components.push_back(std::move(members));
  }

  /// Marks `b` as a border node: it declines immediately (it is never an
  /// input-A node thanks to the distance-5 Connect pre-step).
  void make_border(NodeId b, std::int64_t round) {
    if (is_a[static_cast<std::size_t>(b)]) {
      throw std::logic_error("fda: input-A node bordered (pre-step broken)");
    }
    if (!has_output(b)) {
      plan.role[static_cast<std::size_t>(b)] = FdaRole::kDecline;
      plan.ready_round[static_cast<std::size_t>(b)] = round;
    }
    // Its subtree propagation happens when it gets assigned (rule 2),
    // which `on_assigned` triggers because its role is already kDecline.
  }

  /// Adopts a deferred compress-boundary child and refreshes the
  /// A-containment flag; call right after `v` is given a layer.
  void adopt_and_flag(NodeId v) {
    if (pending_child[static_cast<std::size_t>(v)] !=
        graph::kInvalidNode) {
      kids[static_cast<std::size_t>(v)].push_back(
          pending_child[static_cast<std::size_t>(v)]);
      pending_child[static_cast<std::size_t>(v)] = graph::kInvalidNode;
    }
    char flag = is_a[static_cast<std::size_t>(v)] ? 1 : 0;
    for (NodeId w : kids[static_cast<std::size_t>(v)]) {
      if (has_a_below[static_cast<std::size_t>(w)]) flag = 1;
    }
    has_a_below[static_cast<std::size_t>(v)] = flag;
  }

  /// Rule 2: bordered nodes propagate their Decline once assigned.
  void on_assigned(NodeId v, std::int64_t round) {
    if (plan.role[static_cast<std::size_t>(v)] == FdaRole::kDecline) {
      propagate_decline({v}, round);
    }
  }

  /// Early resolution (eager Lemma-52 pruning): a freshly raked node
  /// whose subtree is A-free may Decline immediately, provided its still-
  /// alive parent has granted fewer than d-2 such Declines. This yields
  /// the geometric decay of Corollary 47 with ratio ~ (Delta-d+1)/
  /// (Delta-1) while preserving every Copy node's Decline budget.
  void try_early_decline(NodeId v, NodeId parent, std::int64_t round) {
    if (has_output(v) || is_a[static_cast<std::size_t>(v)] ||
        has_a_below[static_cast<std::size_t>(v)]) {
      return;
    }
    if (parent == graph::kInvalidNode ||
        !alive[static_cast<std::size_t>(parent)] ||
        assigned[static_cast<std::size_t>(parent)]) {
      return;
    }
    if (early_declines[static_cast<std::size_t>(parent)] >= d - 2) return;
    ++early_declines[static_cast<std::size_t>(parent)];
    propagate_decline({v}, round);
  }
};

}  // namespace

FastDecompPlan run_fast_decomposition(const Tree& tree,
                                      const std::vector<char>& participates,
                                      const std::vector<char>& is_a,
                                      int d, bool early_resolution) {
  if (d < 3) throw std::invalid_argument("fda: d >= 3 (Theorem 5)");
  const NodeId n = tree.size();
  Planner pl(tree, participates, is_a, d);
  pl.plan.comp_of_root.assign(static_cast<std::size_t>(n), -1);

  // --- Pre-step: Connect paths between input-A nodes within distance 5.
  constexpr std::int64_t kBound = 5;
  mark_connect_paths(tree, participates, is_a, kBound, [&](NodeId v) {
    pl.plan.role[static_cast<std::size_t>(v)] = FdaRole::kConnect;
    pl.plan.ready_round[static_cast<std::size_t>(v)] = kBound + 1;
  });

  // Alive = participants that did not output Connect.
  std::int64_t alive_count = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (pl.in(v) &&
        pl.plan.role[static_cast<std::size_t>(v)] != FdaRole::kConnect) {
      pl.alive[static_cast<std::size_t>(v)] = 1;
      ++alive_count;
    }
  }
  auto alive_degree = [&](NodeId v) {
    int deg = 0;
    for (NodeId u : tree.neighbors(v)) {
      if (pl.alive[static_cast<std::size_t>(u)]) ++deg;
    }
    return deg;
  };

  int iter = 0;
  while (alive_count > 0) {
    ++iter;
    const std::int64_t round = kRoundsPerIter * iter;

    // ---- Rake step.
    std::vector<NodeId> rake_set;
    std::vector<char> in_rake(static_cast<std::size_t>(n), 0);
    for (NodeId v = 0; v < n; ++v) {
      if (pl.alive[static_cast<std::size_t>(v)] && alive_degree(v) <= 1) {
        rake_set.push_back(v);
        in_rake[static_cast<std::size_t>(v)] = 1;
      }
    }
    for (NodeId v : rake_set) {
      // Parent = the alive neighbor that stays (or the larger-id member
      // of a simultaneously raked pair).
      NodeId parent = graph::kInvalidNode;
      bool parent_raked_now = false;
      for (NodeId u : tree.neighbors(v)) {
        if (!pl.alive[static_cast<std::size_t>(u)]) continue;
        if (!in_rake[static_cast<std::size_t>(u)] ||
            tree.local_id(u) > tree.local_id(v)) {
          parent = u;
          parent_raked_now = in_rake[static_cast<std::size_t>(u)] != 0;
        }
      }
      pl.assigned[static_cast<std::size_t>(v)] = 1;
      pl.layer_key[static_cast<std::size_t>(v)] = 2 * iter;
      if (parent != graph::kInvalidNode) {
        pl.kids[static_cast<std::size_t>(parent)].push_back(v);
      }
      pl.adopt_and_flag(v);
      // Adapted rule 1, rake case.
      if (is_a[static_cast<std::size_t>(v)] && !pl.has_output(v)) {
        if (parent != graph::kInvalidNode &&
            !pl.assigned[static_cast<std::size_t>(parent)]) {
          pl.make_border(parent, round);
        }
        pl.propagate_copy(v, round);
      } else if (early_resolution && !parent_raked_now) {
        pl.try_early_decline(v, parent, round);
      }
      pl.on_assigned(v, round);
    }
    for (NodeId v : rake_set) {
      pl.alive[static_cast<std::size_t>(v)] = 0;
    }
    alive_count -= static_cast<std::int64_t>(rake_set.size());

    // ---- Relaxed compress step (ell = 3).
    std::vector<char> is_chain(static_cast<std::size_t>(n), 0);
    for (NodeId v = 0; v < n; ++v) {
      if (pl.alive[static_cast<std::size_t>(v)] && alive_degree(v) == 2) {
        is_chain[static_cast<std::size_t>(v)] = 1;
      }
    }
    std::vector<char> visited(static_cast<std::size_t>(n), 0);
    for (NodeId v = 0; v < n; ++v) {
      if (!is_chain[static_cast<std::size_t>(v)] ||
          visited[static_cast<std::size_t>(v)]) {
        continue;
      }
      int chain_neighbors = 0;
      for (NodeId u : tree.neighbors(v)) {
        if (pl.alive[static_cast<std::size_t>(u)] &&
            is_chain[static_cast<std::size_t>(u)]) {
          ++chain_neighbors;
        }
      }
      if (chain_neighbors == 2) continue;  // interior; find an end first
      // Walk the maximal chain from this end.
      std::vector<NodeId> chain;
      NodeId prev = graph::kInvalidNode;
      NodeId cur = v;
      while (cur != graph::kInvalidNode) {
        visited[static_cast<std::size_t>(cur)] = 1;
        chain.push_back(cur);
        NodeId next = graph::kInvalidNode;
        for (NodeId u : tree.neighbors(cur)) {
          if (u != prev && pl.alive[static_cast<std::size_t>(u)] &&
              is_chain[static_cast<std::size_t>(u)] &&
              !visited[static_cast<std::size_t>(u)]) {
            next = u;
          }
        }
        prev = cur;
        cur = next;
      }
      const std::int64_t len = static_cast<std::int64_t>(chain.size());
      if (len < kEll) continue;  // stays alive; rakes away later

      // Assign + orient. Inward orientation: the first min(ell, (len-1)/2)
      // edges from each end point toward the interior; deeper edges stay
      // unoriented (Observation 46.4).
      for (NodeId c : chain) {
        pl.assigned[static_cast<std::size_t>(c)] = 1;
        pl.layer_key[static_cast<std::size_t>(c)] = 2 * iter + 1;
      }
      const std::int64_t inward =
          std::min<std::int64_t>(kEll, (len - 1) / 2);
      for (std::int64_t e = 0; e < inward; ++e) {
        pl.kids[static_cast<std::size_t>(chain[static_cast<std::size_t>(e)])]
            .push_back(chain[static_cast<std::size_t>(e + 1)]);
        pl.kids[static_cast<std::size_t>(
                    chain[static_cast<std::size_t>(len - 1 - e)])]
            .push_back(chain[static_cast<std::size_t>(len - 2 - e)]);
      }
      // Adopt deferred children and settle A-containment flags; the
      // inward chain-kid relation has depth <= ell, so ell+1 passes
      // converge.
      for (int pass = 0; pass <= kEll; ++pass) {
        for (NodeId c : chain) pl.adopt_and_flag(c);
      }
      // Boundary edges: the outer alive neighbor of each chain end adopts
      // the endpoint as a deferred child once it is itself assigned.
      for (int side = 0; side < 2; ++side) {
        const NodeId end = side == 0 ? chain.front() : chain.back();
        for (NodeId h : tree.neighbors(end)) {
          if (pl.alive[static_cast<std::size_t>(h)] &&
              !is_chain[static_cast<std::size_t>(h)]) {
            pl.pending_child[static_cast<std::size_t>(h)] = end;
          }
        }
      }

      // Adapted rule 1, compress case: input-A chain nodes first.
      for (std::int64_t i = 0; i < len; ++i) {
        const NodeId c = chain[static_cast<std::size_t>(i)];
        if (!is_a[static_cast<std::size_t>(c)] || pl.has_output(c)) continue;
        // Border the <= 2 same-chain / still-alive neighbors.
        for (NodeId u : tree.neighbors(c)) {
          const bool same_chain =
              is_chain[static_cast<std::size_t>(u)] &&
              pl.layer_key[static_cast<std::size_t>(u)] == 2 * iter + 1;
          const bool unassigned =
              pl.alive[static_cast<std::size_t>(u)] &&
              !pl.assigned[static_cast<std::size_t>(u)];
          if (same_chain || unassigned) pl.make_border(u, round);
        }
        pl.propagate_copy(c, round);
      }
      // Rule 4: nodes at distance >= ell from both chain ends decline.
      std::vector<NodeId> mid;
      for (std::int64_t i = kEll; i < len - kEll; ++i) {
        mid.push_back(chain[static_cast<std::size_t>(i)]);
      }
      pl.propagate_decline(mid, round);
      // Rule 2 for freshly assigned bordered chain nodes.
      for (NodeId c : chain) pl.on_assigned(c, round);

      for (NodeId c : chain) pl.alive[static_cast<std::size_t>(c)] = 0;
      alive_count -= len;
    }

    // ---- Rule 3: local maxima among assigned, output-free nodes.
    std::vector<NodeId> maxima;
    for (NodeId v = 0; v < n; ++v) {
      if (!pl.in(v) || !pl.assigned[static_cast<std::size_t>(v)] ||
          pl.has_output(v)) {
        continue;
      }
      bool is_max = true;
      for (NodeId u : tree.neighbors(v)) {
        if (!pl.in(u)) continue;
        if (pl.plan.role[static_cast<std::size_t>(u)] == FdaRole::kConnect) {
          continue;
        }
        if (!pl.assigned[static_cast<std::size_t>(u)] ||
            pl.layer_key[static_cast<std::size_t>(u)] >=
                pl.layer_key[static_cast<std::size_t>(v)]) {
          is_max = false;
          break;
        }
      }
      if (is_max) maxima.push_back(v);
    }
    pl.propagate_decline(maxima, round);

    if (iter > 4 * n + 8) {
      throw std::logic_error("fda: failed to converge");
    }
    std::int64_t unfinished = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (pl.in(v) && !pl.has_output(v)) ++unfinished;
    }
    pl.plan.unfinished_after_iteration.push_back(unfinished);
  }

  // ---- Cleanup: everything is assigned; resolve leftovers by repeated
  // local-maxima passes, then a final forced Decline (nodes isolated from
  // any oriented path, e.g. short-chain middles).
  const std::int64_t final_round = kRoundsPerIter * (iter + 1);
  for (;;) {
    std::vector<NodeId> maxima;
    for (NodeId v = 0; v < n; ++v) {
      if (!pl.in(v) || pl.has_output(v)) continue;
      bool is_max = true;
      for (NodeId u : tree.neighbors(v)) {
        if (!pl.in(u)) continue;
        if (pl.plan.role[static_cast<std::size_t>(u)] == FdaRole::kConnect) {
          continue;
        }
        if (pl.layer_key[static_cast<std::size_t>(u)] >=
            pl.layer_key[static_cast<std::size_t>(v)]) {
          is_max = false;
          break;
        }
      }
      if (is_max) maxima.push_back(v);
    }
    if (maxima.empty()) break;
    pl.propagate_decline(maxima, final_round);
  }
  for (NodeId v = 0; v < n; ++v) {
    if (pl.in(v) && !pl.has_output(v)) {
      pl.plan.role[static_cast<std::size_t>(v)] = FdaRole::kDecline;
      pl.plan.ready_round[static_cast<std::size_t>(v)] = final_round + 1;
    }
  }

  pl.plan.iterations = iter;
  return pl.plan;
}

std::vector<char> prune_component(const Tree& tree,
                                  const FastDecompPlan& plan, int comp,
                                  int d,
                                  const std::vector<char>& is_declined) {
  const auto& members = plan.components[static_cast<std::size_t>(comp)];
  const std::size_t m = members.size();
  std::vector<std::int64_t> member_idx(
      static_cast<std::size_t>(tree.size()), -1);
  for (std::size_t i = 0; i < m; ++i) {
    member_idx[static_cast<std::size_t>(members[i])] =
        static_cast<std::int64_t>(i);
  }
  // Children within the component (parent = flood_parent_port target).
  std::vector<std::vector<std::size_t>> children(m);
  for (std::size_t i = 1; i < m; ++i) {
    const NodeId v = members[i];
    const int pp = plan.flood_parent_port[static_cast<std::size_t>(v)];
    const NodeId parent =
        tree.neighbors(v)[static_cast<std::size_t>(pp)];
    children[static_cast<std::size_t>(
                 member_idx[static_cast<std::size_t>(parent)])]
        .push_back(i);
  }
  // Subtree sizes (members are in BFS order: children come later).
  std::vector<std::int64_t> subtree(m, 1);
  for (std::size_t i = m; i-- > 1;) {
    const NodeId v = members[i];
    const int pp = plan.flood_parent_port[static_cast<std::size_t>(v)];
    const NodeId parent = tree.neighbors(v)[static_cast<std::size_t>(pp)];
    subtree[static_cast<std::size_t>(
        member_idx[static_cast<std::size_t>(parent)])] += subtree[i];
  }

  std::vector<char> keep(m, 0);
  keep[0] = 1;  // the input-A root always stays Copy
  std::deque<std::size_t> q{0};
  while (!q.empty()) {
    const std::size_t i = q.front();
    q.pop_front();
    const NodeId v = members[i];
    // How many neighbors already decline (outside the component or
    // previously pruned)?
    int declined_neighbors = 0;
    for (NodeId u : tree.neighbors(v)) {
      if (member_idx[static_cast<std::size_t>(u)] < 0 &&
          is_declined[static_cast<std::size_t>(u)]) {
        ++declined_neighbors;
      }
    }
    auto kids = children[i];
    std::sort(kids.begin(), kids.end(), [&](std::size_t a, std::size_t b) {
      return subtree[a] > subtree[b];
    });
    const int can_prune = std::max(0, d - declined_neighbors);
    const std::size_t pruned =
        std::min<std::size_t>(static_cast<std::size_t>(can_prune),
                              kids.size());
    for (std::size_t c = pruned; c < kids.size(); ++c) {
      keep[kids[c]] = 1;
      q.push_back(kids[c]);
    }
    // Heaviest `pruned` subtrees stay keep = 0 (become Decline).
  }
  return keep;
}

}  // namespace lcl::algo
