#include "algo/connect_paths.hpp"

#include <deque>

namespace lcl::algo {

using graph::NodeId;
using graph::Tree;

void mark_connect_paths(const Tree& tree,
                        const std::vector<char>& participates,
                        const std::vector<char>& is_a, std::int64_t bound,
                        const std::function<void(NodeId)>& mark) {
  const NodeId n = tree.size();
  std::vector<NodeId> parent(static_cast<std::size_t>(n),
                             graph::kInvalidNode);
  std::vector<std::int64_t> dist(static_cast<std::size_t>(n), -1);
  std::vector<NodeId> touched;

  for (NodeId a = 0; a < n; ++a) {
    if (!participates[static_cast<std::size_t>(a)] ||
        !is_a[static_cast<std::size_t>(a)]) {
      continue;
    }
    // Depth-bounded BFS from a with parent recording.
    touched.clear();
    dist[static_cast<std::size_t>(a)] = 0;
    touched.push_back(a);
    std::deque<NodeId> q{a};
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop_front();
      if (dist[static_cast<std::size_t>(u)] == bound) continue;
      for (NodeId w : tree.neighbors(u)) {
        if (!participates[static_cast<std::size_t>(w)] ||
            dist[static_cast<std::size_t>(w)] >= 0) {
          continue;
        }
        dist[static_cast<std::size_t>(w)] =
            dist[static_cast<std::size_t>(u)] + 1;
        parent[static_cast<std::size_t>(w)] = u;
        touched.push_back(w);
        q.push_back(w);
      }
    }
    // Walk back from every other A-node in the ball (each unordered pair
    // is processed twice — idempotent marking keeps that harmless).
    for (NodeId b : touched) {
      if (b == a || !is_a[static_cast<std::size_t>(b)]) continue;
      NodeId cur = b;
      while (cur != graph::kInvalidNode) {
        mark(cur);
        cur = parent[static_cast<std::size_t>(cur)];
      }
    }
    // Reset scratch state.
    for (NodeId v : touched) {
      dist[static_cast<std::size_t>(v)] = -1;
      parent[static_cast<std::size_t>(v)] = graph::kInvalidNode;
    }
  }
}

}  // namespace lcl::algo
