#include "algo/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "algo/apoly.hpp"
#include "algo/bw_generic.hpp"
#include "algo/cole_vishkin.hpp"
#include "algo/decomp_program.hpp"
#include "algo/dfree_logn.hpp"
#include "algo/generic_hier.hpp"
#include "algo/hier_labeling.hpp"
#include "algo/level_program.hpp"
#include "algo/pi35.hpp"
#include "algo/randomized.hpp"
#include "algo/weight_aug.hpp"
#include "bw/tree_problem.hpp"
#include "decomp/rake_compress.hpp"
#include "graph/builders.hpp"
#include "problems/labels.hpp"
#include "problems/lclgen.hpp"
#include "problems/levels.hpp"

namespace lcl::algo {

namespace {

using graph::NodeId;
using graph::Tree;
using problems::CheckResult;
using problems::Variant;

// ---------------------------------------------------------------------------
// Shared option-building helpers.
// ---------------------------------------------------------------------------

constexpr std::int64_t kBig = std::numeric_limits<std::int64_t>::max() / 4;

OptionSpec opt_k(int max_k, std::int64_t def = 2) {
  return {"k", "hierarchy depth", def, 1, max_k, false};
}

OptionSpec opt_gammas() {
  return {"gammas",
          "phase thresholds gamma_1..gamma_{k-1} (default: theory profile)",
          0, 2, kBig, true};
}

OptionSpec opt_id_space() {
  return {"id_space", "Cole-Vishkin palette size (0 = number of nodes)", 0,
          0, kBig, false};
}

OptionSpec opt_symmetry_pad() {
  return {"symmetry_pad", "virtual-log* target Lambda (0 = real log*)", 0,
          0, 1 << 26, false};
}

/// Resolves the `gammas` list option, falling back to the 2.5-regime
/// theory profile (Lemma 14 analog, base n).
std::vector<std::int64_t> gammas_or_25(const SolverConfig& cfg,
                                       const Tree& tree, int k) {
  if (cfg.has("gammas")) return cfg.list("gammas");
  return gammas_for_25(std::max<std::int64_t>(tree.size(), 2), k);
}

/// Resolves `gammas` for the 3.5 regime: base is the virtual-log*
/// target Lambda when padded, else the natural Cole-Vishkin round cost.
std::vector<std::int64_t> gammas_or_35(const SolverConfig& cfg,
                                       const Tree& tree, int k,
                                       std::int64_t symmetry_pad) {
  if (cfg.has("gammas")) return cfg.list("gammas");
  const std::int64_t lambda =
      symmetry_pad > 0
          ? symmetry_pad
          : cv_total_rounds(std::max<std::int64_t>(tree.size(), 2));
  return gammas_for_35(lambda, k);
}

void require_gamma_count(const std::string& solver,
                         const std::vector<std::int64_t>& gammas, int k) {
  if (static_cast<int>(gammas.size()) != k - 1) {
    throw std::invalid_argument(
        solver + ": gammas must have k-1 = " + std::to_string(k - 1) +
        " entries, got " + std::to_string(gammas.size()));
  }
}

std::vector<int> levels_of(const Tree& tree, int k) {
  return problems::compute_levels(tree, k);
}

bool tree_only(const graph::Family& f) { return f.is_tree; }

/// Effective random-coloring palette: 0 means max degree + 1. Resolved
/// in one place so the factory and the certifier can never diverge.
int resolve_colors(const Tree& tree, const SolverConfig& cfg) {
  const int colors = static_cast<int>(cfg.get("colors"));
  return colors != 0 ? colors : tree.max_degree() + 1;
}

// ---------------------------------------------------------------------------
// Engine wrappers for the centralized view-based solvers. The rules are
// functions of a bounded-radius view, so the computation happens in the
// constructor and every node is charged the locality-equivalent round
// count (see DESIGN.md, Simulator design).
// ---------------------------------------------------------------------------

/// Algorithm A for the d-free weight problem (Section 7), standalone:
/// participants are all nodes, input-A nodes carry DFreeInput::kA. Every
/// node is charged the view radius.
class DFreeAProgram final : public local::Program {
 public:
  DFreeAProgram(const Tree& tree, int d) {
    const NodeId n = tree.size();
    std::vector<char> participates(static_cast<std::size_t>(n), 1);
    std::vector<char> is_a(static_cast<std::size_t>(n), 0);
    for (NodeId v = 0; v < n; ++v) {
      is_a[static_cast<std::size_t>(v)] =
          tree.input(v) == static_cast<int>(problems::DFreeInput::kA) ? 1
                                                                      : 0;
    }
    result_ = run_dfree_algorithm_a(tree, participates, is_a, d, n);
    charge_ = std::max<std::int64_t>(1, result_.view_radius);
  }

  void on_init(local::NodeCtx&) override {}
  void on_round(local::NodeCtx& ctx) override {
    if (ctx.round() >= charge_) {
      ctx.terminate(result_.output[static_cast<std::size_t>(ctx.node())]);
    }
  }
  /// Batch kernel: rounds before the charge are a single compare; at the
  /// charge round every alive node fixes its precomputed output.
  void on_round_batch(local::BatchCtx& batch,
                      local::NodeSpan nodes) override {
    if (batch.round() < charge_) return;
    for (const NodeId v : nodes) {
      batch.terminate(v, result_.output[static_cast<std::size_t>(v)]);
    }
  }

 private:
  DFreeResult result_;
  std::int64_t charge_ = 1;
};

/// Lemma-65 k-hierarchical labeling, standalone: the centralized
/// construction with each node charged its peel step (the distributed
/// round in which it learns its layer).
class HierLabelingProgram final : public local::Program {
 public:
  HierLabelingProgram(const Tree& tree, int k)
      : solution_(solve_hierarchical_labeling(tree, k)) {}

  void on_init(local::NodeCtx&) override {}
  void on_round(local::NodeCtx& ctx) override {
    const auto v = static_cast<std::size_t>(ctx.node());
    if (ctx.round() >= solution_.assign_round[v]) {
      ctx.terminate(solution_.labels[v]);
    }
  }
  /// Batch kernel: one flat compare per alive node against the
  /// precomputed peel schedule — no per-node virtual hop.
  void on_round_batch(local::BatchCtx& batch,
                      local::NodeSpan nodes) override {
    const std::int64_t r = batch.round();
    for (const NodeId v : nodes) {
      const auto i = static_cast<std::size_t>(v);
      if (r >= solution_.assign_round[i]) {
        batch.terminate(v, solution_.labels[i]);
      }
    }
  }

  [[nodiscard]] const HierLabeling& solution() const { return solution_; }

 private:
  HierLabeling solution_;
};

// ---------------------------------------------------------------------------
// Certifiers.
// ---------------------------------------------------------------------------

CheckResult certify_hier_coloring(const Tree& tree,
                                  const local::RunStats& stats, int k,
                                  Variant variant) {
  return problems::check_hierarchical_coloring(tree, k, variant,
                                               stats.primaries());
}

CheckResult certify_weighted(const Tree& tree,
                             const local::RunStats& stats, int k, int d,
                             Variant variant) {
  return problems::check_weighted(tree, k, d, variant, stats.output);
}

/// Proper coloring with a palette of `colors` labels {0..colors-1}.
CheckResult certify_proper_coloring(const Tree& tree,
                                    const local::RunStats& stats,
                                    int colors) {
  for (NodeId v = 0; v < tree.size(); ++v) {
    const int c = stats.output[static_cast<std::size_t>(v)].primary;
    if (c < 0 || c >= colors) {
      return CheckResult::fail("node " + std::to_string(v) +
                               ": color out of palette");
    }
    for (NodeId u : tree.neighbors(v)) {
      if (stats.output[static_cast<std::size_t>(u)].primary == c) {
        return CheckResult::fail("node " + std::to_string(v) +
                                 ": neighbor shares color " +
                                 std::to_string(c));
      }
    }
  }
  return CheckResult::pass();
}

CheckResult certify_levels(const Tree& tree, const local::RunStats& stats,
                           int k) {
  const std::vector<int> want = problems::compute_levels(tree, k);
  for (NodeId v = 0; v < tree.size(); ++v) {
    if (stats.output[static_cast<std::size_t>(v)].primary !=
        want[static_cast<std::size_t>(v)]) {
      return CheckResult::fail(
          "node " + std::to_string(v) + ": level " +
          std::to_string(stats.output[static_cast<std::size_t>(v)].primary) +
          " != peeling level " +
          std::to_string(want[static_cast<std::size_t>(v)]));
    }
  }
  return CheckResult::pass();
}

/// Decodes DecompositionProgram outputs back into a Decomposition and
/// validates it (relaxed variant: the distributed program compresses
/// whole chains). Shared with the family_sweep scenario via the spec.
CheckResult certify_decomposition(const Tree& tree,
                                  const local::RunStats& stats, int gamma,
                                  int ell) {
  decomp::Decomposition d;
  d.gamma = gamma;
  d.ell = ell;
  d.relaxed = true;
  d.assignment.resize(static_cast<std::size_t>(tree.size()));
  d.assign_step.resize(static_cast<std::size_t>(tree.size()));
  int max_layer = 0;
  for (NodeId v = 0; v < tree.size(); ++v) {
    const auto a =
        decode_layer(stats.output[static_cast<std::size_t>(v)].primary);
    d.assignment[static_cast<std::size_t>(v)] = a;
    d.assign_step[static_cast<std::size_t>(v)] = static_cast<int>(
        stats.termination_round[static_cast<std::size_t>(v)]);
    max_layer = std::max(max_layer, a.layer);
  }
  d.num_layers = max_layer;
  const std::string err = decomp::validate_decomposition(tree, d);
  return err.empty() ? CheckResult::pass() : CheckResult::fail(err);
}

// ---------------------------------------------------------------------------
// The registry itself.
// ---------------------------------------------------------------------------

std::vector<SolverSpec> build_registry() {
  std::vector<SolverSpec> reg;

  {
    SolverSpec s;
    s.name = "generic_hier_25";
    s.summary = "generic k-hierarchical 2.5-coloring (Section 4.1)";
    s.problem = "k-hierarchical 2.5-coloring (Definition 8)";
    s.theorem = "BBK+23b baseline; Lemma 14 profile";
    s.complexity = "Theta(n^{1/(2k-1)})";
    s.needs = kNeedShuffledIds;
    s.options = {opt_k(8), opt_gammas(), opt_id_space()};
    s.factory = [](const Tree& tree, const SolverConfig& cfg) {
      const int k = static_cast<int>(cfg.get("k"));
      GenericOptions o;
      o.variant = Variant::kTwoHalf;
      o.k = k;
      o.gammas = gammas_or_25(cfg, tree, k);
      o.id_space = cfg.get("id_space");
      require_gamma_count("generic_hier_25", o.gammas, k);
      return std::make_unique<GenericHierProgram>(tree, std::move(o),
                                                  levels_of(tree, k));
    };
    s.certify = [](const Tree& tree, const local::Program&,
                   const local::RunStats& stats, const SolverConfig& cfg) {
      return certify_hier_coloring(tree, stats,
                                   static_cast<int>(cfg.get("k")),
                                   Variant::kTwoHalf);
    };
    reg.push_back(std::move(s));
  }

  {
    SolverSpec s;
    s.name = "generic_hier_35";
    s.summary = "generic k-hierarchical 3.5-coloring (Section 4.1)";
    s.problem = "k-hierarchical 3.5-coloring (Definition 9)";
    s.theorem = "Theorem 11 / Corollary 10";
    s.complexity = "Theta((log* n)^{1/2^{k-1}})";
    s.needs = kNeedShuffledIds;
    s.options = {opt_k(8), opt_gammas(), opt_id_space(),
                 opt_symmetry_pad()};
    s.factory = [](const Tree& tree, const SolverConfig& cfg) {
      const int k = static_cast<int>(cfg.get("k"));
      GenericOptions o;
      o.variant = Variant::kThreeHalf;
      o.k = k;
      o.symmetry_pad = cfg.get("symmetry_pad");
      o.gammas = gammas_or_35(cfg, tree, k, o.symmetry_pad);
      o.id_space = cfg.get("id_space");
      require_gamma_count("generic_hier_35", o.gammas, k);
      return std::make_unique<GenericHierProgram>(tree, std::move(o),
                                                  levels_of(tree, k));
    };
    s.certify = [](const Tree& tree, const local::Program&,
                   const local::RunStats& stats, const SolverConfig& cfg) {
      return certify_hier_coloring(tree, stats,
                                   static_cast<int>(cfg.get("k")),
                                   Variant::kThreeHalf);
    };
    reg.push_back(std::move(s));
  }

  {
    SolverSpec s;
    s.name = "apoly";
    s.summary = "A_poly for the weighted problem Pi^{2.5} (Section 7.1)";
    s.problem = "Pi^{2.5}_{Delta,d,k} (Definition 22)";
    s.theorem = "Theorems 2/3";
    s.complexity = "Theta(n^{alpha1(x)})";
    s.needs = kNeedShuffledIds | kNeedWeightInputs;
    s.options = {opt_k(8),
                 {"d", "Decline budget of the weight gadget", 2, 0, 64,
                  false},
                 opt_gammas(),
                 opt_id_space(),
                 opt_symmetry_pad(),
                 {"naive_all_copy",
                  "ablation: every weight node copies (x = 1 strawman)", 0,
                  0, 1, false}};
    s.factory = [](const Tree& tree, const SolverConfig& cfg) {
      const int k = static_cast<int>(cfg.get("k"));
      ApolyOptions o;
      o.k = k;
      o.d = static_cast<int>(cfg.get("d"));
      o.gammas = gammas_or_25(cfg, tree, k);
      o.id_space = cfg.get("id_space");
      o.symmetry_pad = cfg.get("symmetry_pad");
      o.naive_all_copy = cfg.get("naive_all_copy") != 0;
      require_gamma_count("apoly", o.gammas, k);
      return std::make_unique<ApolyProgram>(tree, std::move(o));
    };
    s.certify = [](const Tree& tree, const local::Program&,
                   const local::RunStats& stats, const SolverConfig& cfg) {
      return certify_weighted(tree, stats, static_cast<int>(cfg.get("k")),
                              static_cast<int>(cfg.get("d")),
                              Variant::kTwoHalf);
    };
    reg.push_back(std::move(s));
  }

  {
    SolverSpec s;
    s.name = "pi35";
    s.summary =
        "fast-decomposition solver for Pi^{3.5} (Section 8.2)";
    s.problem = "Pi^{3.5}_{Delta,d,k} (Definition 22)";
    s.theorem = "Theorems 4/5";
    s.complexity = "O((log* n)^{alpha1(x')})";
    s.needs = kNeedShuffledIds | kNeedWeightInputs;
    s.options = {opt_k(8),
                 {"d", "Decline budget of the weight gadget", 3, 3, 64,
                  false},
                 opt_gammas(),
                 opt_id_space(),
                 opt_symmetry_pad()};
    s.factory = [](const Tree& tree, const SolverConfig& cfg) {
      const int k = static_cast<int>(cfg.get("k"));
      Pi35Options o;
      o.k = k;
      o.d = static_cast<int>(cfg.get("d"));
      o.symmetry_pad = cfg.get("symmetry_pad");
      o.gammas = gammas_or_35(cfg, tree, k, o.symmetry_pad);
      o.id_space = cfg.get("id_space");
      require_gamma_count("pi35", o.gammas, k);
      return std::make_unique<Pi35Program>(tree, std::move(o));
    };
    s.certify = [](const Tree& tree, const local::Program&,
                   const local::RunStats& stats, const SolverConfig& cfg) {
      return certify_weighted(tree, stats, static_cast<int>(cfg.get("k")),
                              static_cast<int>(cfg.get("d")),
                              Variant::kThreeHalf);
    };
    reg.push_back(std::move(s));
  }

  {
    SolverSpec s;
    s.name = "weight_aug";
    s.summary =
        "k-hierarchical weight-augmented 2.5-coloring (Section 10)";
    s.problem = "weight-augmented 2.5-coloring (Definition 67)";
    s.theorem = "Lemma 69";
    s.complexity = "Theta(n^{1/k})";
    s.needs = kNeedShuffledIds | kNeedWeightInputs;
    s.options = {opt_k(8),
                 {"gamma",
                  "uniform active gamma / weight decomposition target "
                  "(0 = ceil(n^{1/k}))",
                  0, 0, kBig, false},
                 opt_id_space()};
    s.factory = [](const Tree& tree, const SolverConfig& cfg) {
      WeightAugOptions o;
      o.k = static_cast<int>(cfg.get("k"));
      o.gamma = cfg.get("gamma");
      o.id_space = cfg.get("id_space");
      if (o.gamma == 1) {
        throw std::invalid_argument(
            "weight_aug: gamma must be 0 (auto) or >= 2, got 1");
      }
      return std::make_unique<WeightAugProgram>(tree, std::move(o));
    };
    s.certify = [](const Tree& tree, const local::Program& program,
                   const local::RunStats& stats, const SolverConfig& cfg) {
      const auto* p = dynamic_cast<const WeightAugProgram*>(&program);
      if (p == nullptr) {
        return CheckResult::fail("weight_aug: program type mismatch");
      }
      return problems::check_weight_augmented(
          tree, static_cast<int>(cfg.get("k")), stats.output,
          p->orientation());
    };
    reg.push_back(std::move(s));
  }

  {
    SolverSpec s;
    s.name = "hier_labeling";
    s.summary = "Lemma-65 k-hierarchical labeling from a decomposition";
    s.problem = "k-hierarchical labeling (Definition 63)";
    s.theorem = "Lemma 65";
    s.complexity = "O(k n^{1/k}) worst case";
    s.needs = kNeedShuffledIds;
    s.options = {opt_k(8)};
    s.factory = [](const Tree& tree, const SolverConfig& cfg) {
      return std::make_unique<HierLabelingProgram>(
          tree, static_cast<int>(cfg.get("k")));
    };
    s.certify = [](const Tree& tree, const local::Program& program,
                   const local::RunStats& stats, const SolverConfig& cfg) {
      const auto* p = dynamic_cast<const HierLabelingProgram*>(&program);
      if (p == nullptr) {
        return CheckResult::fail("hier_labeling: program type mismatch");
      }
      return problems::check_hierarchical_labeling(
          tree, static_cast<int>(cfg.get("k")), stats.primaries(),
          p->solution().orientation);
    };
    reg.push_back(std::move(s));
  }

  {
    SolverSpec s;
    s.name = "dfree_a";
    s.summary = "Algorithm A for the d-free weight problem (Section 7)";
    s.problem = "d-free weight problem (Section 7)";
    s.theorem = "Lemmas 37/40";
    s.complexity = "O(log n) worst case; <= 6 w^x copies";
    s.needs = kNeedShuffledIds | kNeedDFreeInputs;
    s.options = {
        {"d", "Decline budget per Copy node", 2, 0, 64, false}};
    s.factory = [](const Tree& tree, const SolverConfig& cfg) {
      return std::make_unique<DFreeAProgram>(
          tree, static_cast<int>(cfg.get("d")));
    };
    s.certify = [](const Tree& tree, const local::Program&,
                   const local::RunStats& stats, const SolverConfig& cfg) {
      return problems::check_dfree_weight(
          tree, static_cast<int>(cfg.get("d")), stats.primaries());
    };
    reg.push_back(std::move(s));
  }

  {
    SolverSpec s;
    s.name = "rake_compress";
    s.summary =
        "distributed rake-and-compress decomposition (Definition 71)";
    s.problem = "(gamma, ell)-decomposition (Definitions 43/71)";
    s.theorem = "Lemma 72";
    s.complexity = "O(log n) rounds at gamma = 1";
    s.options = {{"gamma", "rake sub-steps per iteration", 1, 1, 1 << 20,
                  false},
                 {"ell", "minimum compressible chain length", 4, 2,
                  1 << 20, false}};
    s.factory = [](const Tree& tree, const SolverConfig& cfg) {
      return std::make_unique<DecompositionProgram>(
          tree, static_cast<int>(cfg.get("gamma")),
          static_cast<int>(cfg.get("ell")));
    };
    s.certify = [](const Tree& tree, const local::Program&,
                   const local::RunStats& stats, const SolverConfig& cfg) {
      return certify_decomposition(tree, stats,
                                   static_cast<int>(cfg.get("gamma")),
                                   static_cast<int>(cfg.get("ell")));
    };
    reg.push_back(std::move(s));
  }

  {
    SolverSpec s;
    s.name = "level_peeling";
    s.summary = "distributed Definition-8 level computation";
    s.problem = "Definition-8 levels (peeling process)";
    s.theorem = "Definition 8";
    s.complexity = "O(k) worst case";
    s.options = {opt_k(64)};
    s.factory = [](const Tree& tree, const SolverConfig& cfg) {
      return std::make_unique<LevelProgram>(
          tree, static_cast<int>(cfg.get("k")));
    };
    s.certify = [](const Tree& tree, const local::Program&,
                   const local::RunStats& stats, const SolverConfig& cfg) {
      return certify_levels(tree, stats, static_cast<int>(cfg.get("k")));
    };
    reg.push_back(std::move(s));
  }

  {
    SolverSpec s;
    s.name = "random_coloring";
    s.summary = "randomized coloring, O(1) expected node-average";
    s.problem = "proper coloring, >= Delta+1 colors";
    s.theorem = "Figure 2 (randomized dichotomy)";
    s.complexity = "O(1) expected node-average";
    s.needs = kNeedShuffledIds | kNeedRng;
    s.options = {{"colors", "palette size (0 = max degree + 1)", 0, 0,
                  1 << 20, false}};
    // Needs no acyclicity — the O(1)-average witness runs on any
    // bounded-degree graph, including the cycle edge-case family.
    s.compatible = [](const graph::Family&) { return true; };
    s.factory = [](const Tree& tree, const SolverConfig& cfg) {
      return std::make_unique<RandomColoringProgram>(
          tree, resolve_colors(tree, cfg), cfg.seed);
    };
    s.certify = [](const Tree& tree, const local::Program&,
                   const local::RunStats& stats, const SolverConfig& cfg) {
      return certify_proper_coloring(tree, stats,
                                     resolve_colors(tree, cfg));
    };
    reg.push_back(std::move(s));
  }

  {
    SolverSpec s;
    s.name = "bw_generic";
    s.summary =
        "generic rake-and-compress solver for sampled bw tables "
        "(Section 11)";
    s.problem = "sampled black-white tree LCL (Definition 70 table)";
    s.theorem = "Theorem 7 / Section 11 generic algorithm";
    s.complexity = "O(1) / Theta(log* n) / Theta(log n) by class";
    s.needs = kNeedShuffledIds;
    s.options = {{"problem_seed",
                  "lclgen generator seed of the sampled table (0 = the "
                  "free table)",
                  0, 0, kBig, false}};
    // The table formalism caps degrees at problems::kMaxTableDegree, so
    // only families whose *default* shape respects the cap are swept by
    // the matrix scenario (problem_sweep builds its instances with an
    // explicit delta instead).
    s.compatible = [](const graph::Family& f) {
      return f.is_tree &&
             (f.name == "path" || f.name == "binary_pendant" ||
              f.name == "galton_watson" || f.name == "random_attach");
    };
    s.factory = [](const Tree& tree, const SolverConfig& cfg) {
      return std::make_unique<BwGenericProgram>(
          tree, problems::sample_table(
                    static_cast<std::uint64_t>(cfg.get("problem_seed"))));
    };
    s.certify = [](const Tree& tree, const local::Program& program,
                   const local::RunStats&, const SolverConfig&) {
      const auto* p = dynamic_cast<const BwGenericProgram*>(&program);
      if (p == nullptr) {
        return CheckResult::fail("bw_generic: program type mismatch");
      }
      if (!p->solved()) {
        return CheckResult::fail("bw_generic: instance infeasible: " +
                                 p->failure());
      }
      const std::string err =
          bw::check_tree_bw(tree, p->table().to_problem(),
                            p->edge_labels());
      return err.empty() ? CheckResult::pass()
                         : CheckResult::fail("bw_generic: " + err);
    };
    reg.push_back(std::move(s));
  }

  for (SolverSpec& s : reg) {
    if (!s.compatible) s.compatible = tree_only;
  }
  return reg;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Per-component BFS depths from the smallest node index; also reports
/// each component's root and maximum depth via the callback.
void mark_by_depth(Tree& tree,
                   const std::function<void(NodeId root, NodeId v,
                                            int depth, int max_depth)>&
                       mark) {
  const NodeId n = tree.size();
  std::vector<int> depth(static_cast<std::size_t>(n), -1);
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  for (NodeId root = 0; root < n; ++root) {
    if (depth[static_cast<std::size_t>(root)] >= 0) continue;
    order.clear();
    order.push_back(root);
    depth[static_cast<std::size_t>(root)] = 0;
    int max_depth = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
      const NodeId v = order[i];
      for (NodeId u : tree.neighbors(v)) {
        if (depth[static_cast<std::size_t>(u)] >= 0) continue;
        depth[static_cast<std::size_t>(u)] =
            depth[static_cast<std::size_t>(v)] + 1;
        max_depth =
            std::max(max_depth, depth[static_cast<std::size_t>(u)]);
        order.push_back(u);
      }
    }
    for (const NodeId v : order) {
      mark(root, v, depth[static_cast<std::size_t>(v)], max_depth);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// SolverConfig.
// ---------------------------------------------------------------------------

std::int64_t SolverConfig::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    throw std::invalid_argument("solver option '" + key +
                                "' is not set (validate the config "
                                "against the spec first)");
  }
  if (it->second.size() != 1) {
    throw std::invalid_argument("solver option '" + key +
                                "' is a list, not a scalar");
  }
  return it->second.front();
}

const std::vector<std::int64_t>& SolverConfig::list(
    const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    throw std::invalid_argument("solver option '" + key + "' is not set");
  }
  return it->second;
}

SolverConfig& SolverConfig::validate(const SolverSpec& spec) {
  for (const auto& [key, words] : values_) {
    const OptionSpec* opt = spec.find_option(key);
    if (opt == nullptr) {
      std::string known;
      for (const OptionSpec& o : spec.options) {
        known += (known.empty() ? "" : ", ") + o.key;
      }
      throw std::invalid_argument("solver '" + spec.name +
                                  "' has no option '" + key +
                                  "' (options: " + known + ")");
    }
    if (!opt->is_list && words.size() != 1) {
      throw std::invalid_argument("solver '" + spec.name + "': option '" +
                                  key + "' takes a single value");
    }
    for (const std::int64_t w : words) {
      if (w < opt->min || w > opt->max) {
        throw std::invalid_argument(
            "solver '" + spec.name + "': " + key + "=" +
            std::to_string(w) + " out of range [" +
            std::to_string(opt->min) + ", " + std::to_string(opt->max) +
            "]");
      }
    }
  }
  // Fill scalar defaults; list options stay absent so factories can
  // derive the theory profile from the instance.
  for (const OptionSpec& opt : spec.options) {
    if (!opt.is_list && values_.count(opt.key) == 0) {
      values_[opt.key] = {opt.def};
    }
  }
  return *this;
}

// ---------------------------------------------------------------------------
// Registry accessors.
// ---------------------------------------------------------------------------

const OptionSpec* SolverSpec::find_option(const std::string& key) const {
  for (const OptionSpec& o : options) {
    if (o.key == key) return &o;
  }
  return nullptr;
}

const std::vector<SolverSpec>& registry() {
  static const std::vector<SolverSpec> reg = build_registry();
  return reg;
}

const SolverSpec* find_solver(const std::string& name) {
  for (const SolverSpec& s : registry()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const SolverSpec& solver(const std::string& name) {
  const SolverSpec* s = find_solver(name);
  if (s == nullptr) {
    std::string known;
    for (const std::string& n : solver_names()) {
      known += (known.empty() ? "" : ", ") + n;
    }
    throw std::invalid_argument("unknown solver '" + name +
                                "' (registered: " + known + ")");
  }
  return *s;
}

std::vector<std::string> solver_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const SolverSpec& s : registry()) names.push_back(s.name);
  return names;
}

std::vector<std::string> parse_solver_list(const std::string& csv) {
  if (csv.empty() || csv == "all") return solver_names();
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string name =
        csv.substr(pos, comma == std::string::npos ? std::string::npos
                                                   : comma - pos);
    if (!name.empty()) {
      (void)solver(name);  // throws with the registered names listed
      out.push_back(name);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::pair<std::string, std::string> split_option(const std::string& kv) {
  const std::size_t eq = kv.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument("malformed option '" + kv +
                                "' (expected key=value)");
  }
  return {kv.substr(0, eq), kv.substr(eq + 1)};
}

void apply_option(const SolverSpec& spec, SolverConfig& config,
                  const std::string& kv) {
  const auto [key, raw] = split_option(kv);
  const OptionSpec* opt = spec.find_option(key);
  if (opt == nullptr) {
    std::string known;
    for (const OptionSpec& o : spec.options) {
      known += (known.empty() ? "" : ", ") + o.key;
    }
    throw std::invalid_argument("solver '" + spec.name +
                                "' has no option '" + key +
                                "' (options: " + known + ")");
  }
  auto parse_word = [&](const std::string& word) {
    try {
      std::size_t used = 0;
      const std::int64_t v = std::stoll(word, &used);
      if (used != word.size()) throw std::invalid_argument(word);
      return v;
    } catch (const std::exception&) {
      throw std::invalid_argument("solver '" + spec.name + "': option " +
                                  key + " expects an integer, got '" +
                                  word + "'");
    }
  };
  if (!opt->is_list) {
    config.set(key, parse_word(raw));
    return;
  }
  std::vector<std::int64_t> words;
  std::size_t pos = 0;
  while (pos <= raw.size()) {
    const std::size_t comma = raw.find(',', pos);
    const std::string word =
        raw.substr(pos, comma == std::string::npos ? std::string::npos
                                                   : comma - pos);
    if (!word.empty()) words.push_back(parse_word(word));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  config.set(key, std::move(words));
}

// ---------------------------------------------------------------------------
// Instance preparation.
// ---------------------------------------------------------------------------

void prepare_instance(graph::Tree& tree, unsigned needs,
                      std::uint64_t seed) {
  if ((needs & kNeedShuffledIds) != 0) {
    graph::assign_ids(tree, graph::IdScheme::kShuffled,
                      splitmix64(seed ^ 0x1d5a110c5eedULL));
  }
  if ((needs & kNeedWeightInputs) != 0) {
    // Definition-22 marking: the shallow half of each component is the
    // active skeleton, the deep half the weight trees hanging off it —
    // the paper's construction shape, induced on an arbitrary family
    // instance. Deterministic in topology alone.
    mark_by_depth(tree, [&](NodeId, NodeId v, int depth, int max_depth) {
      const bool weight = depth > max_depth / 2;
      tree.set_input(v, static_cast<int>(
                            weight ? graph::WeightInput::kWeight
                                   : graph::WeightInput::kActive));
    });
  }
  if ((needs & kNeedDFreeInputs) != 0) {
    // Section-7 marking: component roots are input-A (so the instance
    // is never A-free), plus a sparse seeded sprinkle; everything else
    // is plain weight.
    mark_by_depth(tree, [&](NodeId root, NodeId v, int, int) {
      const bool is_a =
          v == root ||
          splitmix64(seed * 0x9e3779b97f4a7c15ULL +
                     static_cast<std::uint64_t>(v)) %
                  16 ==
              0;
      tree.set_input(v, static_cast<int>(is_a ? problems::DFreeInput::kA
                                              : problems::DFreeInput::kW));
    });
  }
}

// ---------------------------------------------------------------------------
// Uniform execution.
// ---------------------------------------------------------------------------

SolverRun run_registered(const SolverSpec& spec, const graph::Tree& tree,
                         SolverConfig config, std::int64_t max_rounds,
                         local::DispatchMode dispatch) {
  config.validate(spec);
  const std::unique_ptr<local::Program> program =
      spec.factory(tree, config);
  // Reuses this thread's shared workspace; certify runs after the
  // engine run completes, so helpers that spin up their own engines
  // never nest inside it.
  local::Engine engine(tree, local::KernelMode::kAuto, dispatch);
  SolverRun out;
  out.stats = engine.run(*program, local::tls_workspace(), max_rounds);
  // Mirror core::make_job: a truncated run is measured, not certified
  // (partial outputs are not checkable).
  out.verdict = out.stats.truncated
                    ? problems::CheckResult::pass()
                    : spec.certify(tree, *program, out.stats, config);
  return out;
}

}  // namespace lcl::algo
