// A genuinely distributed rake-and-compress decomposition
// (Definitions 43/71) as a LOCAL-engine program — the in-model
// counterpart of the centralized `decomp::rake_compress`, used to
// validate Lemma 72's *round* bounds (O(k n^{1/k}) for gamma = n^{1/k},
// O(log n) for gamma = 1), not just its layer counts.
//
// Protocol. Iterations are fixed windows of (2*gamma + ell + 3) rounds
// known to all nodes:
//   * gamma rake sub-steps of 2 rounds each: every alive node publishes
//     its alive-degree (snapshot round), then nodes whose published
//     degree is <= 1 rake — deferring to an eligible neighbor of smaller
//     LOCAL id so sublayers stay independent (Def. 71 property 3);
//   * one compress step of ell + 3 rounds: alive nodes whose snapshot
//     degree is 2 exchange saturated distance-to-chain-end waves; a node
//     compresses iff its saturated end distances sum to >= ell - 1,
//     which all nodes of a maximal chain of length >= ell (and no node
//     of a shorter one) conclude simultaneously (relaxed variant: whole
//     chains, no splitting).
//
// A node terminates when assigned; its output encodes
// (kind, layer, sublayer) and the engine's T_v is its assignment round.
#pragma once

#include <cstdint>

#include "decomp/rake_compress.hpp"
#include "graph/tree.hpp"
#include "local/engine.hpp"

namespace lcl::algo {

/// Packs a layer assignment into an engine output and back.
[[nodiscard]] int encode_layer(const decomp::LayerAssignment& a);
[[nodiscard]] decomp::LayerAssignment decode_layer(int encoded);

class DecompositionProgram final : public local::Program {
 public:
  DecompositionProgram(const graph::Tree& tree, int gamma, int ell);

  void on_init(local::NodeCtx& ctx) override;
  void on_round(local::NodeCtx& ctx) override;
  void on_init_batch(local::BatchCtx& batch,
                     local::NodeSpan nodes) override;
  void on_round_batch(local::BatchCtx& batch,
                      local::NodeSpan nodes) override;

 private:
  struct State {
    bool alive = true;
    int snapshot_degree = -1;
    int dist_left = -1;   ///< saturated distance to a chain end
    int dist_right = -1;
    int chain_ports[2] = {-1, -1};
  };

  [[nodiscard]] std::int64_t window() const { return 2 * gamma_ + ell_ + 3; }

  const graph::Tree& tree_;
  int gamma_;
  int ell_;
  std::vector<State> state_;
  /// Batch-kernel staging for bulk snapshot publishes (one contiguous
  /// register lane per round; reserved once in the constructor).
  std::vector<std::int64_t> scratch_;
  /// Batch-kernel flat mirrors of the committed register's first two
  /// words. `alive_[u]` tracks reg[0] (written only in decision rounds);
  /// `snap_deg_[u]` tracks reg[1] for alive nodes (written only in
  /// snapshot rounds). Rounds that *read* a lane other rounds *write*
  /// read `alive_prev_`, a round-start copy, so batch walk order cannot
  /// leak same-round writes — see on_round_batch.
  std::vector<std::uint8_t> alive_;
  std::vector<std::uint8_t> alive_prev_;
  std::vector<std::int32_t> snap_deg_;
};

/// Runs the program and returns (decomposition view, run stats).
struct DistributedDecomposition {
  decomp::Decomposition decomposition;
  local::RunStats stats;
};
[[nodiscard]] DistributedDecomposition run_distributed_decomposition(
    const graph::Tree& tree, int gamma, int ell);

}  // namespace lcl::algo
