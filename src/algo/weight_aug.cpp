#include "algo/weight_aug.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "decomp/rake_compress.hpp"
#include "problems/labels.hpp"
#include "problems/levels.hpp"

namespace lcl::algo {

namespace {

using decomp::Decomposition;
using decomp::LayerKind;
using graph::NodeId;
using problems::Color;
using problems::EdgeDir;

std::vector<int> active_levels(const graph::Tree& tree, int k) {
  std::vector<char> mask(static_cast<std::size_t>(tree.size()), 0);
  for (NodeId v = 0; v < tree.size(); ++v) {
    mask[static_cast<std::size_t>(v)] =
        tree.input(v) == static_cast<int>(graph::WeightInput::kActive) ? 1
                                                                       : 0;
  }
  return problems::compute_levels_masked(tree, k, mask);
}

GenericOptions make_generic_options(const graph::Tree& tree,
                                    const WeightAugOptions& opt) {
  std::int64_t gamma = opt.gamma;
  if (gamma <= 0) {
    gamma = std::max<std::int64_t>(
        2, static_cast<std::int64_t>(std::ceil(std::pow(
               static_cast<double>(std::max<graph::NodeId>(tree.size(), 2)),
               1.0 / opt.k))));
  }
  GenericOptions g;
  g.variant = problems::Variant::kTwoHalf;
  g.k = opt.k;
  g.gammas.assign(static_cast<std::size_t>(opt.k - 1), gamma);
  g.id_space = opt.id_space;
  return g;
}

}  // namespace

WeightAugProgram::WeightAugProgram(const graph::Tree& tree,
                                   WeightAugOptions options)
    : tree_(tree),
      opt_(std::move(options)),
      generic_(tree, make_generic_options(tree, opt_),
               active_levels(tree, opt_.k)) {
  const NodeId n = tree_.size();
  kind_.assign(static_cast<std::size_t>(n), WKind::kActiveNode);
  label_.assign(static_cast<std::size_t>(n), -1);
  label_round_.assign(static_cast<std::size_t>(n), 0);
  pointee_port_.assign(static_cast<std::size_t>(n), -1);
  orient_.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    orient_[static_cast<std::size_t>(v)].assign(
        static_cast<std::size_t>(tree_.degree(v)), EdgeDir::kNone);
  }

  // ---- Induced weight subgraph -------------------------------------
  std::vector<char> weight_mask(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    weight_mask[static_cast<std::size_t>(v)] = is_active(v) ? 0 : 1;
  }
  std::vector<NodeId> from_sub;
  const graph::Tree sub =
      graph::induced_subgraph(tree_, weight_mask, &from_sub);
  if (sub.size() == 0) return;

  // ---- (gamma, 4, k)-decomposition of the weight subgraph ----------
  // Active-adjacent weight nodes are pinned so they finish last in their
  // component (Definition 67 rule 3 makes them point at the active).
  std::vector<char> pinned(static_cast<std::size_t>(sub.size()), 0);
  for (NodeId s = 0; s < sub.size(); ++s) {
    const NodeId v = from_sub[static_cast<std::size_t>(s)];
    for (NodeId u : tree_.neighbors(v)) {
      if (is_active(u)) pinned[static_cast<std::size_t>(s)] = 1;
    }
  }
  // Retry with doubled gamma until at most k layers result (Lemma 72).
  std::int64_t gamma = std::max<std::int64_t>(
      2, static_cast<std::int64_t>(std::ceil(std::pow(
             static_cast<double>(std::max<graph::NodeId>(n, 2)),
             1.0 / opt_.k))));
  Decomposition dec;
  for (;;) {
    dec = decomp::rake_compress(sub, static_cast<int>(gamma), 4,
                                /*split_paths=*/true, 1 << 20, &pinned);
    if (dec.num_layers <= opt_.k) break;
    gamma *= 2;
  }

  // ---- Lemma 65: labels + orientations ------------------------------
  auto sub_key = [&](NodeId s) {
    return decomp::layer_order_key(
        dec.assignment[static_cast<std::size_t>(s)]);
  };
  auto port_of = [&](NodeId v, NodeId target) {
    const auto nb = tree_.neighbors(v);
    for (std::size_t p = 0; p < nb.size(); ++p) {
      if (nb[p] == target) return static_cast<int>(p);
    }
    throw std::logic_error("weight_aug: missing port");
  };
  auto set_oriented = [&](NodeId fromv, NodeId tov) {
    orient_[static_cast<std::size_t>(fromv)]
           [static_cast<std::size_t>(port_of(fromv, tov))] =
               EdgeDir::kOutgoing;
    orient_[static_cast<std::size_t>(tov)]
           [static_cast<std::size_t>(port_of(tov, fromv))] =
               EdgeDir::kIncoming;
  };

  for (NodeId s = 0; s < sub.size(); ++s) {
    const NodeId v = from_sub[static_cast<std::size_t>(s)];
    const auto& a = dec.assignment[static_cast<std::size_t>(s)];
    label_round_[static_cast<std::size_t>(v)] =
        dec.assign_step[static_cast<std::size_t>(s)] + 1;

    if (a.kind == LayerKind::kRake) {
      label_[static_cast<std::size_t>(v)] = problems::rake_label(a.layer);
      kind_[static_cast<std::size_t>(v)] = WKind::kOrphanRoot;
      // Orient toward the unique higher-(sub)layer weight neighbor.
      for (NodeId u_sub : sub.neighbors(s)) {
        if (sub_key(u_sub) > sub_key(s)) {
          const NodeId u = from_sub[static_cast<std::size_t>(u_sub)];
          set_oriented(v, u);
          kind_[static_cast<std::size_t>(v)] = WKind::kPointsWeight;
          pointee_port_[static_cast<std::size_t>(v)] = port_of(v, u);
          break;
        }
      }
    } else {
      // Compress segment: endpoints (<= 1 same-layer neighbor) get
      // R_{layer+1}; interiors get C_layer.
      int same = 0;
      for (NodeId u_sub : sub.neighbors(s)) {
        const auto& au = dec.assignment[static_cast<std::size_t>(u_sub)];
        if (au.kind == LayerKind::kCompress && au.layer == a.layer) ++same;
      }
      const bool endpoint = same <= 1;
      if (endpoint) {
        label_[static_cast<std::size_t>(v)] =
            problems::rake_label(a.layer + 1);
        kind_[static_cast<std::size_t>(v)] = WKind::kOrphanRoot;
        for (NodeId u_sub : sub.neighbors(s)) {
          const auto& au = dec.assignment[static_cast<std::size_t>(u_sub)];
          const bool higher = sub_key(u_sub) > sub_key(s);
          const NodeId u = from_sub[static_cast<std::size_t>(u_sub)];
          if (au.kind == LayerKind::kCompress && au.layer == a.layer) {
            // The adjacent interior points at the endpoint.
            set_oriented(u, v);
          } else if (higher) {
            set_oriented(v, u);
            kind_[static_cast<std::size_t>(v)] = WKind::kPointsWeight;
            pointee_port_[static_cast<std::size_t>(v)] = port_of(v, u);
          }
        }
      } else {
        label_[static_cast<std::size_t>(v)] =
            problems::compress_label(a.layer);
        kind_[static_cast<std::size_t>(v)] = WKind::kMustDecline;
      }
    }
  }

  // Raked subtree edges: every rake node also *receives* orientations
  // from its lower neighbors, which `set_oriented` already recorded from
  // the child's side.

  // ---- Rule 3 of Definition 67: actives dominate orientation --------
  for (NodeId v = 0; v < n; ++v) {
    if (is_active(v)) continue;
    const auto nb = tree_.neighbors(v);
    for (std::size_t p = 0; p < nb.size(); ++p) {
      if (!is_active(nb[p])) continue;
      // Point to the first active neighbor; requires no prior pointee
      // (true for Definition-25-style instances, asserted here).
      if (kind_[static_cast<std::size_t>(v)] == WKind::kPointsWeight) {
        throw std::logic_error(
            "weight_aug: active-adjacent weight node already points at a "
            "weight node");
      }
      if (kind_[static_cast<std::size_t>(v)] == WKind::kMustDecline) {
        // Rule 5: compress nodes adjacent to an active must copy instead.
        // Keep the compress label but copy (handled as kPointsActive).
      }
      kind_[static_cast<std::size_t>(v)] = WKind::kPointsActive;
      pointee_port_[static_cast<std::size_t>(v)] = static_cast<int>(p);
      orient_[static_cast<std::size_t>(v)][p] = EdgeDir::kOutgoing;
      orient_[static_cast<std::size_t>(nb[p])]
             [static_cast<std::size_t>(port_of(nb[p], v))] =
                 EdgeDir::kIncoming;
      break;
    }
  }
}

void WeightAugProgram::on_init(local::NodeCtx& ctx) {
  if (is_active(ctx.node())) generic_.on_init(ctx);
}

void WeightAugProgram::on_round(local::NodeCtx& ctx) {
  const NodeId v = ctx.node();
  if (is_active(v)) {
    generic_.on_round(ctx);
    return;
  }

  const std::int64_t r = ctx.round();
  if (r < label_round_[static_cast<std::size_t>(v)]) return;
  const int lab = label_[static_cast<std::size_t>(v)];

  switch (kind_[static_cast<std::size_t>(v)]) {
    case WKind::kActiveNode:
      throw std::logic_error("weight_aug: active routed to weight logic");

    case WKind::kMustDecline:
      ctx.publish({-1});
      ctx.terminate(lab, -1);
      return;

    case WKind::kOrphanRoot:
      // No pointee anywhere: free choice of secondary (W).
      ctx.publish({static_cast<std::int64_t>(Color::kW)});
      ctx.terminate(lab, static_cast<int>(Color::kW));
      return;

    case WKind::kPointsActive: {
      const int pp = pointee_port_[static_cast<std::size_t>(v)];
      if (!ctx.neighbor_terminated(pp)) return;
      const int sec = ctx.neighbor_output(pp).primary;
      ctx.publish({sec});
      ctx.terminate(lab, sec);
      return;
    }

    case WKind::kPointsWeight: {
      const int pp = pointee_port_[static_cast<std::size_t>(v)];
      const local::RegView reg = ctx.peek(pp);
      if (reg.empty()) return;
      const std::int64_t sec = reg[0];
      ctx.publish({sec});
      ctx.terminate(lab, static_cast<int>(sec));
      return;
    }
  }
}

local::RunStats run_weight_aug(const graph::Tree& tree,
                               WeightAugOptions options,
                               problems::OrientationMap* orientation_out) {
  WeightAugProgram program(tree, std::move(options));
  local::Engine engine(tree);
  local::RunStats stats = engine.run(program);
  if (orientation_out != nullptr) *orientation_out = program.orientation();
  return stats;
}

}  // namespace lcl::algo
