// Algorithm A for the d-free weight problem (Section 7): the O(log n)
// view-based solver used by A_poly.
//
// The rules are functions of the (3*ceil(log_{d+1} n)+3)-hop view of a
// node, so the computation here is performed centrally and the engine
// wrapper charges every node the view radius in rounds (locality-
// equivalent; see DESIGN.md, Simulator design).
//
//  * Nodes on a path of length <= 2*ceil(log_{d+1} n)+2 between two
//    input-A nodes output Connect.
//  * Every other input-A node v runs the constructive A* assignment of
//    Lemma 37 on its (ceil(log_{d+1} n)+1)-hop ball: v outputs Copy; each
//    Copy node Declines its min(d, #children) heaviest child subtrees and
//    keeps the rest Copy (DESIGN.md Substitution 2: A* is the paper's own
//    analyzed witness for the Copy-minimizing phi).
//  * Everything else outputs Decline.
//
// Lemma 40 then bounds each Copy component by 6 * |ball|^x with
// x = log(Delta-1-d)/log(Delta-1), which bench_lemma23_dfree measures.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/tree.hpp"
#include "problems/labels.hpp"

namespace lcl::problems {
// fwd
}

namespace lcl::algo {

using graph::NodeId;
using graph::Tree;

/// Result of running Algorithm A on the weight subgraph.
struct DFreeResult {
  /// Per node: WeightOut cast to int; -1 for nodes outside the instance
  /// (e.g. Active nodes when run inside a Pi^Z instance).
  std::vector<int> output;
  /// Per node: the input-A root of its Copy component, or kInvalidNode.
  std::vector<NodeId> copy_root;
  /// Per node: BFS distance from the Copy-component root (-1 if none).
  std::vector<int> copy_depth;
  /// The view radius (= rounds charged to Connect/Decline nodes).
  std::int64_t view_radius = 0;
};

/// Runs Algorithm A on the subgraph induced by nodes with
/// `participates[v] != 0`. `is_a[v]` marks input-A nodes (must be a
/// subset of participants). `n_for_radius` is the n in the radius formula
/// (pass the global graph size).
[[nodiscard]] DFreeResult run_dfree_algorithm_a(
    const Tree& tree, const std::vector<char>& participates,
    const std::vector<char>& is_a, int d, std::int64_t n_for_radius);

}  // namespace lcl::algo
