#include "algo/pi35.hpp"

#include <stdexcept>

#include "problems/labels.hpp"
#include "problems/levels.hpp"

namespace lcl::algo {

namespace {

using graph::NodeId;
using problems::WeightOut;

std::vector<int> active_levels(const graph::Tree& tree, int k) {
  std::vector<char> mask(static_cast<std::size_t>(tree.size()), 0);
  for (NodeId v = 0; v < tree.size(); ++v) {
    mask[static_cast<std::size_t>(v)] =
        tree.input(v) == static_cast<int>(graph::WeightInput::kActive) ? 1
                                                                       : 0;
  }
  return problems::compute_levels_masked(tree, k, mask);
}

FastDecompPlan make_plan(const graph::Tree& tree, int d) {
  const NodeId n = tree.size();
  std::vector<char> participates(static_cast<std::size_t>(n), 0);
  std::vector<char> is_a(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    if (tree.input(v) == static_cast<int>(graph::WeightInput::kActive)) {
      continue;
    }
    participates[static_cast<std::size_t>(v)] = 1;
    for (NodeId u : tree.neighbors(v)) {
      if (tree.input(u) ==
          static_cast<int>(graph::WeightInput::kActive)) {
        is_a[static_cast<std::size_t>(v)] = 1;
      }
    }
  }
  return run_fast_decomposition(tree, participates, is_a, d);
}

}  // namespace

Pi35Program::Pi35Program(const graph::Tree& tree, Pi35Options options)
    : tree_(tree),
      opt_(std::move(options)),
      generic_(tree,
               GenericOptions{problems::Variant::kThreeHalf, opt_.k,
                              opt_.gammas, opt_.id_space,
                              opt_.symmetry_pad},
               active_levels(tree, opt_.k)),
      plan_(make_plan(tree, opt_.d)) {
  const std::size_t n = static_cast<std::size_t>(tree.size());
  declined_.assign(n, 0);
  prune_round_.assign(n, -1);
  case_of_root_.assign(plan_.components.size(), 0);
  for (NodeId v = 0; v < tree.size(); ++v) {
    if (plan_.role[static_cast<std::size_t>(v)] == FdaRole::kDecline) {
      declined_[static_cast<std::size_t>(v)] = 1;
    }
  }
}

void Pi35Program::on_init(local::NodeCtx& ctx) {
  if (is_active(ctx.node())) generic_.on_init(ctx);
}

void Pi35Program::resolve_component(local::NodeCtx& ctx, NodeId root) {
  const int comp = plan_.comp_of_root[static_cast<std::size_t>(root)];
  // Case 1 iff some active neighbor has already terminated.
  bool active_done = false;
  const auto nb = tree_.neighbors(root);
  for (std::size_t p = 0; p < nb.size(); ++p) {
    if (is_active(nb[p]) && ctx.neighbor_terminated(static_cast<int>(p))) {
      active_done = true;
      break;
    }
  }
  if (active_done) {
    case_of_root_[static_cast<std::size_t>(comp)] = 1;
    return;
  }
  // Case 2: prune to C'(v); pruned members decline, one hop per round.
  case_of_root_[static_cast<std::size_t>(comp)] = 2;
  const std::vector<char> keep =
      prune_component(tree_, plan_, comp, opt_.d, declined_);
  const auto& members =
      plan_.components[static_cast<std::size_t>(comp)];
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (keep[i]) continue;
    const NodeId m = members[i];
    declined_[static_cast<std::size_t>(m)] = 1;
    prune_round_[static_cast<std::size_t>(m)] =
        ctx.round() + plan_.comp_depth[static_cast<std::size_t>(m)];
  }
}

void Pi35Program::on_round(local::NodeCtx& ctx) {
  const NodeId v = ctx.node();
  if (is_active(v)) {
    generic_.on_round(ctx);
    return;
  }

  const FdaRole role = plan_.role[static_cast<std::size_t>(v)];
  const std::int64_t r = ctx.round();

  switch (role) {
    case FdaRole::kInactive:
      throw std::logic_error("pi35: weight node without a role");

    case FdaRole::kConnect:
    case FdaRole::kDecline: {
      const int out = role == FdaRole::kConnect
                          ? static_cast<int>(WeightOut::kConnect)
                          : static_cast<int>(WeightOut::kDecline);
      if (r >= plan_.ready_round[static_cast<std::size_t>(v)]) {
        ctx.terminate(out);
      }
      return;
    }

    case FdaRole::kCopyRoot: {
      const std::int64_t decide =
          plan_.ready_round[static_cast<std::size_t>(v)];
      if (r < decide) return;
      const int comp = plan_.comp_of_root[static_cast<std::size_t>(v)];
      if (case_of_root_[static_cast<std::size_t>(comp)] == 0) {
        resolve_component(ctx, v);
      }
      // Flood: adopt the first terminated active neighbor's label.
      const auto nb = tree_.neighbors(v);
      for (std::size_t p = 0; p < nb.size(); ++p) {
        if (!is_active(nb[p])) continue;
        if (ctx.neighbor_terminated(static_cast<int>(p))) {
          const int label =
              ctx.neighbor_output(static_cast<int>(p)).primary;
          ctx.publish({label});
          ctx.terminate(static_cast<int>(WeightOut::kCopy), label);
          ++copies_kept_;
          return;
        }
      }
      return;
    }

    case FdaRole::kCopyMember: {
      // Pruned members decline at their scheduled round.
      const std::int64_t pr = prune_round_[static_cast<std::size_t>(v)];
      if (pr >= 0) {
        if (r >= pr) ctx.terminate(static_cast<int>(WeightOut::kDecline));
        return;
      }
      // Kept members listen for the flood from their parent.
      const int pp = plan_.flood_parent_port[static_cast<std::size_t>(v)];
      const local::RegView reg = ctx.peek(pp);
      if (!reg.empty()) {
        ctx.publish({reg[0]});
        ctx.terminate(static_cast<int>(WeightOut::kCopy),
                      static_cast<int>(reg[0]));
        ++copies_kept_;
      }
      return;
    }
  }
}

local::RunStats run_pi35(const graph::Tree& tree, Pi35Options options) {
  Pi35Program program(tree, std::move(options));
  local::Engine engine(tree);
  return engine.run(program);
}

}  // namespace lcl::algo
