#include "algo/apoly.hpp"

#include <stdexcept>

#include <deque>

#include "problems/labels.hpp"
#include "problems/levels.hpp"

namespace lcl::algo {

namespace {

using graph::NodeId;
using problems::WeightOut;

std::vector<int> active_levels(const graph::Tree& tree, int k) {
  std::vector<char> mask(static_cast<std::size_t>(tree.size()), 0);
  for (NodeId v = 0; v < tree.size(); ++v) {
    mask[static_cast<std::size_t>(v)] =
        tree.input(v) == static_cast<int>(graph::WeightInput::kActive) ? 1
                                                                       : 0;
  }
  return problems::compute_levels_masked(tree, k, mask);
}

}  // namespace

ApolyProgram::ApolyProgram(const graph::Tree& tree, ApolyOptions options)
    : tree_(tree),
      opt_(std::move(options)),
      generic_(tree,
               GenericOptions{opt_.variant, opt_.k, opt_.gammas,
                              opt_.id_space, opt_.symmetry_pad},
               active_levels(tree, opt_.k)) {
  // Algorithm A on the weight subgraph: participants are weight nodes,
  // input-A nodes are the weight nodes adjacent to at least one active.
  const NodeId n = tree_.size();
  std::vector<char> participates(static_cast<std::size_t>(n), 0);
  std::vector<char> is_a(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    if (is_active(v)) continue;
    participates[static_cast<std::size_t>(v)] = 1;
    for (NodeId u : tree_.neighbors(v)) {
      if (is_active(u)) is_a[static_cast<std::size_t>(v)] = 1;
    }
  }
  if (opt_.naive_all_copy) {
    // Every weight node copies; components root at an arbitrary input-A
    // node (BFS over the weight subgraph from all A-nodes at once).
    dfree_.output.assign(static_cast<std::size_t>(n), -1);
    dfree_.copy_root.assign(static_cast<std::size_t>(n),
                            graph::kInvalidNode);
    dfree_.copy_depth.assign(static_cast<std::size_t>(n), -1);
    dfree_.view_radius = 1;
    std::deque<NodeId> q;
    for (NodeId v = 0; v < n; ++v) {
      if (is_a[static_cast<std::size_t>(v)]) {
        dfree_.output[static_cast<std::size_t>(v)] =
            static_cast<int>(WeightOut::kCopy);
        dfree_.copy_root[static_cast<std::size_t>(v)] = v;
        dfree_.copy_depth[static_cast<std::size_t>(v)] = 0;
        q.push_back(v);
      }
    }
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop_front();
      for (NodeId w : tree_.neighbors(u)) {
        if (!participates[static_cast<std::size_t>(w)] ||
            dfree_.copy_depth[static_cast<std::size_t>(w)] >= 0) {
          continue;
        }
        dfree_.output[static_cast<std::size_t>(w)] =
            static_cast<int>(WeightOut::kCopy);
        dfree_.copy_root[static_cast<std::size_t>(w)] =
            dfree_.copy_root[static_cast<std::size_t>(u)];
        dfree_.copy_depth[static_cast<std::size_t>(w)] =
            dfree_.copy_depth[static_cast<std::size_t>(u)] + 1;
        q.push_back(w);
      }
    }
  } else {
    dfree_ = run_dfree_algorithm_a(tree_, participates, is_a, opt_.d, n);
  }

  // Flood tree: each non-root Copy node points to a neighbor in the same
  // component with depth one less.
  flood_parent_port_.assign(static_cast<std::size_t>(n), -1);
  for (NodeId v = 0; v < n; ++v) {
    if (dfree_.output[static_cast<std::size_t>(v)] !=
            static_cast<int>(WeightOut::kCopy) ||
        dfree_.copy_depth[static_cast<std::size_t>(v)] <= 0) {
      continue;
    }
    const auto nb = tree_.neighbors(v);
    for (std::size_t p = 0; p < nb.size(); ++p) {
      const NodeId u = nb[p];
      if (dfree_.copy_root[static_cast<std::size_t>(u)] ==
              dfree_.copy_root[static_cast<std::size_t>(v)] &&
          dfree_.copy_depth[static_cast<std::size_t>(u)] ==
              dfree_.copy_depth[static_cast<std::size_t>(v)] - 1) {
        flood_parent_port_[static_cast<std::size_t>(v)] =
            static_cast<int>(p);
        break;
      }
    }
    if (flood_parent_port_[static_cast<std::size_t>(v)] < 0) {
      throw std::logic_error("apoly: Copy node without flood parent");
    }
  }
}

void ApolyProgram::on_init(local::NodeCtx& ctx) {
  if (is_active(ctx.node())) generic_.on_init(ctx);
}

void ApolyProgram::on_round(local::NodeCtx& ctx) {
  const NodeId v = ctx.node();
  if (is_active(v)) {
    generic_.on_round(ctx);
    return;
  }

  const int out = dfree_.output[static_cast<std::size_t>(v)];
  const std::int64_t r = ctx.round();

  if (out == static_cast<int>(WeightOut::kConnect) ||
      out == static_cast<int>(WeightOut::kDecline)) {
    // Algorithm A is a view computation of radius view_radius; its
    // non-waiting outputs are charged exactly that many rounds.
    if (r >= dfree_.view_radius) {
      ctx.terminate(out);
    }
    return;
  }

  // Copy nodes: wait for the label, then flood it downward.
  if (r < dfree_.view_radius) return;
  std::int64_t label = -1;
  if (dfree_.copy_depth[static_cast<std::size_t>(v)] == 0) {
    // Component root (input-A): adopt the output of the first active
    // neighbor to terminate (smallest port on ties).
    const auto nb = tree_.neighbors(v);
    for (std::size_t p = 0; p < nb.size(); ++p) {
      if (!is_active(nb[p])) continue;
      if (ctx.neighbor_terminated(static_cast<int>(p))) {
        label = ctx.neighbor_output(static_cast<int>(p)).primary;
        break;
      }
    }
  } else {
    const int pp = flood_parent_port_[static_cast<std::size_t>(v)];
    const local::RegView reg = ctx.peek(pp);
    if (!reg.empty()) label = reg[0];
  }
  if (label >= 0) {
    ctx.publish({label});
    ctx.terminate(static_cast<int>(WeightOut::kCopy),
                  static_cast<int>(label));
  }
}

local::RunStats run_apoly(const graph::Tree& tree, ApolyOptions options) {
  ApolyProgram program(tree, std::move(options));
  local::Engine engine(tree);
  return engine.run(program);
}

}  // namespace lcl::algo
