// A_poly (Section 7.1): the upper-bound algorithm for Pi^{2.5}_{Delta,d,k}
// achieving node-averaged complexity O(n^{alpha_1}) (Theorem 2).
//
// Active nodes run the generic algorithm (Section 4.1) on the active
// subgraph with gamma_i = n^{alpha_i}, where the alpha_i come from the
// optimization of Lemma 33. Weight nodes first solve the d-free weight
// problem with Algorithm A (O(log n) worst case); weight nodes that
// output Connect or Decline terminate right after, while each Copy
// component waits for the active neighbor of its unique input-A node to
// decide and then floods that output label as its secondary output
// (one hop per round).
#pragma once

#include <cstdint>
#include <vector>

#include "algo/dfree_logn.hpp"
#include "algo/generic_hier.hpp"
#include "graph/tree.hpp"
#include "local/engine.hpp"

namespace lcl::algo {

/// Options for A_poly.
struct ApolyOptions {
  int k = 2;
  int d = 2;
  /// gamma_i for the embedded generic algorithm (size k-1).
  std::vector<std::int64_t> gammas;
  /// Variant for the active part; Theorem 2 uses 2.5.
  problems::Variant variant = problems::Variant::kTwoHalf;
  std::int64_t id_space = 0;
  std::int64_t symmetry_pad = 0;
  /// Ablation: skip Algorithm A and make every weight node Copy (the
  /// x = 1 "all weight waits" strawman the paper's d-free machinery
  /// improves on). Valid output, worse node-average.
  bool naive_all_copy = false;
};

/// The composite program. Inputs on the tree must be
/// graph::WeightInput::{kActive,kWeight}.
class ApolyProgram final : public local::Program {
 public:
  ApolyProgram(const graph::Tree& tree, ApolyOptions options);

  void on_init(local::NodeCtx& ctx) override;
  void on_round(local::NodeCtx& ctx) override;

  /// Outcome of Algorithm A (exposed for tests: d-free validity and the
  /// Lemma 40 Copy bound are asserted on it directly).
  [[nodiscard]] const DFreeResult& dfree() const { return dfree_; }

 private:
  [[nodiscard]] bool is_active(graph::NodeId v) const {
    return tree_.input(v) ==
           static_cast<int>(graph::WeightInput::kActive);
  }

  const graph::Tree& tree_;
  ApolyOptions opt_;
  GenericHierProgram generic_;
  DFreeResult dfree_;
  /// Port of the parent in the Copy-component flood tree (-1 for roots).
  std::vector<int> flood_parent_port_;
};

/// Convenience runner.
[[nodiscard]] local::RunStats run_apoly(const graph::Tree& tree,
                                        ApolyOptions options);

}  // namespace lcl::algo
