// Data-parallel kernels for the engine hot path, with a scalar twin for
// every SIMD routine.
//
// The engine's per-round bookkeeping reduces to three bulk passes over
// flat lanes (see engine.hpp for the structure-of-arrays layout):
//
//   flip_commit    cur ^= pub; pub = 0        (publish-flip, uint8 lanes)
//   compact_alive  stable-remove terminated   (alive list, NodeId lane)
//   reduce_tv      sum_v T_v and max_v T_v    (term-round lane, int64)
//
// Each exists in two semantically identical variants. The *scalar*
// variant is the reference implementation: one element per step, with
// compiler auto-vectorization explicitly disabled so the pair measures
// the data-parallel win rather than the optimizer's mood — and so the
// `--engine scalar` path is a stable baseline across compilers. The
// *simd* variant uses GCC/Clang portable vector extensions (32-byte
// lanes; no intrinsics, no -march requirement). Building with
// -DLCL_FORCE_SCALAR=ON compiles the simd entry points as forwards to
// the scalar ones, so every call site stays valid on targets without
// vector support and sanitizer CI can pin both paths.
//
// Differential guarantee: for identical inputs the two variants produce
// bit-identical outputs (same stable order from compaction, same exact
// integer sums) — pinned by tests/test_simd.cpp and the engine-level
// fuzz loop in tests/test_differential.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "graph/tree.hpp"

namespace lcl::local {

/// Which kernel family an engine run dispatches to.
///   kScalar — reference one-element-per-step kernels.
///   kSimd   — wide kernels (degrades to kScalar in LCL_FORCE_SCALAR
///             builds).
///   kAuto   — the process-wide default (set_default_kernel_mode, wired
///             to `lclbench --engine`), which itself defaults to the
///             widest compiled path.
enum class KernelMode { kScalar = 0, kSimd = 1, kAuto = 2 };

/// Whether this build compiled the wide kernels (false under
/// -DLCL_FORCE_SCALAR=ON).
[[nodiscard]] constexpr bool simd_compiled() {
#if defined(LCL_FORCE_SCALAR)
  return false;
#else
  return true;
#endif
}

/// Process-wide default used by engines constructed with kAuto.
[[nodiscard]] KernelMode default_kernel_mode();
void set_default_kernel_mode(KernelMode mode);

/// Collapses a requested mode to the concrete kScalar/kSimd an engine
/// run will execute: kAuto defers to the process default, and kSimd
/// degrades to kScalar when the wide kernels are not compiled.
[[nodiscard]] KernelMode resolve_kernel_mode(KernelMode mode);

/// "scalar" / "simd" / "auto".
[[nodiscard]] const char* kernel_mode_name(KernelMode mode);

/// Parses "scalar" / "simd" / "auto"; returns false on anything else.
[[nodiscard]] bool parse_kernel_mode(const std::string& text,
                                     KernelMode& out);

/// End-of-run T_v reduction result: sum_v T_v (the node-averaged
/// numerator) and max_v T_v (the worst case).
struct TvReduction {
  std::int64_t sum = 0;
  std::int64_t max = 0;
};

// --- publish-flip: cur[i] ^= pub[i]; pub[i] = 0 over a byte range. ---
// The engine calls the simd variant on a 64-byte-aligned subrange
// covering the round's publishers (dense flip); the scalar engine path
// scatters over the publisher list instead and never calls these.
void flip_commit_scalar(std::uint8_t* cur, std::uint8_t* pub,
                        std::size_t count);
void flip_commit_simd(std::uint8_t* cur, std::uint8_t* pub,
                      std::size_t count);

// --- alive compaction: stable in-place removal of terminated ids. ---
// Returns the surviving count. The simd variant classifies 16-id blocks
// (fully alive -> one block move, fully dead -> skipped outright, mixed
// -> per-id pass); order is identical to the scalar pass.
// Precondition for the simd variant: `alive` is strictly increasing and
// `terminated` holds strict 0/1 flags — both invariants of the engine's
// alive list (initialized 0..n-1, compaction is stable), and what lets
// a contiguous id run load its 16 flags as two words instead of 16
// indexed gathers.
std::size_t compact_alive_scalar(graph::NodeId* alive, std::size_t count,
                                 const std::uint8_t* terminated);
std::size_t compact_alive_simd(graph::NodeId* alive, std::size_t count,
                               const std::uint8_t* terminated);

// --- T_v reduction: exact integer sum and max over the lane. ---
// `count` may include the plane's zeroed 64-byte-block padding: T_v >= 0
// makes zero a neutral element for both sum and max.
TvReduction reduce_tv_scalar(const std::int64_t* term_round,
                             std::size_t count);
TvReduction reduce_tv_simd(const std::int64_t* term_round,
                           std::size_t count);

}  // namespace lcl::local
