// Iterated-logarithm utilities and the virtual-log* model knob.
//
// For every n that fits in memory, log*(n) <= 5, so complexities of the
// form (log* n)^c cannot be separated by direct simulation. Following
// DESIGN.md (Substitution 1), benches sweep a "virtual log*" parameter
// Lambda: the symmetry-breaking subroutine still computes a *valid*
// coloring via real Cole-Vishkin reduction, but its round account is
// padded to Lambda, modeling an ID space of tower height Lambda.
#pragma once

#include <cstdint>

namespace lcl::local {

/// floor(log2(x)) for x >= 1.
[[nodiscard]] constexpr int ilog2(std::uint64_t x) {
  int r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

/// log*(n): number of times log2 must be iterated before the value drops
/// to <= 1. log*(1) = 0, log*(2) = 1, log*(4) = 2, log*(16) = 3,
/// log*(65536) = 4, log*(2^65536) = 5.
[[nodiscard]] constexpr int log_star(std::uint64_t n) {
  int r = 0;
  while (n > 1) {
    n = static_cast<std::uint64_t>(ilog2(n));
    ++r;
  }
  return r;
}

/// 2-tower: tower(0)=1, tower(1)=2, tower(2)=4, tower(3)=16, tower(4)=65536.
/// Saturates at the largest uint64 tower (tower(5) overflows).
[[nodiscard]] constexpr std::uint64_t tower(int h) {
  std::uint64_t v = 1;
  for (int i = 0; i < h; ++i) {
    if (v >= 64) return ~std::uint64_t{0};  // saturate
    v = std::uint64_t{1} << v;
  }
  return v;
}

}  // namespace lcl::local
