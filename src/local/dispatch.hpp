// Program-dispatch selection for the engine round loop.
//
// PR 7 made the engine's bookkeeping passes wide (see simd.hpp), which
// left the *callback boundary* as the hot path: one virtual
// `Program::on_init/on_round` call per alive node per round. Batched
// dispatch collapses that to a handful of span-level calls — the engine
// hands the whole compacted alive list to `Program::on_*_batch` and a
// ported program runs one lane-level kernel over it (see engine.hpp,
// `BatchCtx`). The default batch hooks loop the per-node hooks, so the
// two modes are semantically identical for every program; which one an
// engine run uses is this knob, mirroring `KernelMode` exactly:
//
//   kPerNode — drive the per-node hooks directly (the reference path,
//              and the baseline side of the dispatch A/B series).
//   kBatch   — drive the span-level hooks (ported programs run their
//              batch kernels; unported ones fall through to the
//              defaults, which replay the per-node schedule).
//   kAuto    — the process-wide default (set_default_dispatch_mode,
//              wired to `lclbench --dispatch`), which itself defaults
//              to kBatch: with the default hooks the modes are
//              bit-identical, so batch never loses.
//
// Differential guarantee: for identical (program, instance, seed) the
// two modes produce bit-identical `RunStats` — pinned by
// tests/test_dispatch.cpp and the three-way fuzz loop in
// tests/test_differential.cpp.
#pragma once

#include <string>

namespace lcl::local {

/// How an engine run drives the program: per-node virtual calls, one
/// span-level call per round, or the process default.
enum class DispatchMode { kPerNode = 0, kBatch = 1, kAuto = 2 };

/// Process-wide default used by engines constructed with kAuto.
[[nodiscard]] DispatchMode default_dispatch_mode();
void set_default_dispatch_mode(DispatchMode mode);

/// Collapses a requested mode to the concrete kPerNode/kBatch an engine
/// run will execute: kAuto defers to the process default, which itself
/// defaults to kBatch.
[[nodiscard]] DispatchMode resolve_dispatch_mode(DispatchMode mode);

/// "pernode" / "batch" / "auto".
[[nodiscard]] const char* dispatch_mode_name(DispatchMode mode);

/// Parses "pernode" / "batch" / "auto"; returns false on anything else.
[[nodiscard]] bool parse_dispatch_mode(const std::string& text,
                                       DispatchMode& out);

}  // namespace lcl::local
