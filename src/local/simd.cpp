#include "local/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

namespace lcl::local {

namespace {

std::atomic<KernelMode> g_default_mode{KernelMode::kAuto};

// The scalar kernels are the *reference* path: they must stay genuinely
// one-element-per-step so the simd-vs-scalar series measures the
// data-parallel win (and so `--engine scalar` behaves the same under
// every compiler), hence auto-vectorization is pinned off per function
// (GCC) or per loop (Clang).
#if defined(__clang__)
#define LCL_SCALAR_KERNEL
#define LCL_SCALAR_LOOP \
  _Pragma("clang loop vectorize(disable) interleave(disable)")
#elif defined(__GNUC__)
#define LCL_SCALAR_KERNEL \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#define LCL_SCALAR_LOOP
#else
#define LCL_SCALAR_KERNEL
#define LCL_SCALAR_LOOP
#endif

}  // namespace

KernelMode default_kernel_mode() {
  return g_default_mode.load(std::memory_order_relaxed);
}

void set_default_kernel_mode(KernelMode mode) {
  g_default_mode.store(mode, std::memory_order_relaxed);
}

KernelMode resolve_kernel_mode(KernelMode mode) {
  if (mode == KernelMode::kAuto) mode = default_kernel_mode();
  if (mode == KernelMode::kAuto) {
    mode = simd_compiled() ? KernelMode::kSimd : KernelMode::kScalar;
  }
  if (mode == KernelMode::kSimd && !simd_compiled()) {
    mode = KernelMode::kScalar;
  }
  return mode;
}

const char* kernel_mode_name(KernelMode mode) {
  switch (mode) {
    case KernelMode::kScalar:
      return "scalar";
    case KernelMode::kSimd:
      return "simd";
    case KernelMode::kAuto:
      return "auto";
  }
  return "auto";
}

bool parse_kernel_mode(const std::string& text, KernelMode& out) {
  if (text == "scalar") {
    out = KernelMode::kScalar;
    return true;
  }
  if (text == "simd") {
    out = KernelMode::kSimd;
    return true;
  }
  if (text == "auto") {
    out = KernelMode::kAuto;
    return true;
  }
  return false;
}

LCL_SCALAR_KERNEL
void flip_commit_scalar(std::uint8_t* cur, std::uint8_t* pub,
                        std::size_t count) {
  LCL_SCALAR_LOOP
  for (std::size_t i = 0; i < count; ++i) {
    cur[i] ^= pub[i];
    pub[i] = 0;
  }
}

LCL_SCALAR_KERNEL
std::size_t compact_alive_scalar(graph::NodeId* alive, std::size_t count,
                                 const std::uint8_t* terminated) {
  std::size_t w = 0;
  LCL_SCALAR_LOOP
  for (std::size_t i = 0; i < count; ++i) {
    const graph::NodeId v = alive[i];
    if (terminated[static_cast<std::size_t>(v)] == 0) alive[w++] = v;
  }
  return w;
}

LCL_SCALAR_KERNEL
TvReduction reduce_tv_scalar(const std::int64_t* term_round,
                             std::size_t count) {
  TvReduction r;
  LCL_SCALAR_LOOP
  for (std::size_t i = 0; i < count; ++i) {
    const std::int64_t t = term_round[i];
    r.sum += t;
    if (t > r.max) r.max = t;
  }
  return r;
}

#if defined(LCL_FORCE_SCALAR)

// Forced-scalar build: the wide entry points stay linkable so call
// sites (engine dispatch, benches, tests) compile unchanged, but every
// path executes the reference kernels.
void flip_commit_simd(std::uint8_t* cur, std::uint8_t* pub,
                      std::size_t count) {
  flip_commit_scalar(cur, pub, count);
}

std::size_t compact_alive_simd(graph::NodeId* alive, std::size_t count,
                               const std::uint8_t* terminated) {
  return compact_alive_scalar(alive, count, terminated);
}

TvReduction reduce_tv_simd(const std::int64_t* term_round,
                           std::size_t count) {
  return reduce_tv_scalar(term_round, count);
}

#else  // wide kernels

namespace {

// Portable GCC/Clang vector extensions: 32-byte lanes compile on any
// target (the backend lowers them to whatever width the ISA has), so no
// -march flag or intrinsic header is required.
using v32u8 [[gnu::vector_size(32)]] = std::uint8_t;
using v4i64 [[gnu::vector_size(32)]] = std::int64_t;

}  // namespace

// Runtime ISA dispatch: the baseline x86-64 ABI is SSE2-only, where the
// 64-bit lanewise compare in reduce_tv has no instruction and gets
// scalarized — slower than the reference kernel. target_clones emits a
// baseline body plus an AVX2 clone and picks per CPU at load time
// (ifunc), keeping one portable binary. Skipped under sanitizers
// (instrumented ifunc resolvers are not worth the risk) and on
// compilers without the attribute — the generic lowering still runs.
#if defined(__x86_64__) && !defined(__SANITIZE_ADDRESS__) && \
    !defined(__SANITIZE_THREAD__)
#if defined(__clang__)
#if __has_feature(ifunc_target_clones)
#define LCL_WIDE_KERNEL __attribute__((target_clones("default", "avx2")))
#endif
#else  // GCC
#define LCL_WIDE_KERNEL __attribute__((target_clones("default", "avx2")))
#endif
#endif
#ifndef LCL_WIDE_KERNEL
#define LCL_WIDE_KERNEL
#endif

LCL_WIDE_KERNEL
void flip_commit_simd(std::uint8_t* cur, std::uint8_t* pub,
                      std::size_t count) {
  std::size_t i = 0;
  for (; i + 32 <= count; i += 32) {
    v32u8 c;
    v32u8 p;
    std::memcpy(&c, cur + i, 32);
    std::memcpy(&p, pub + i, 32);
    c ^= p;
    std::memcpy(cur + i, &c, 32);
  }
  for (; i < count; ++i) cur[i] ^= pub[i];
  std::memset(pub, 0, count);
}

LCL_WIDE_KERNEL
std::size_t compact_alive_simd(graph::NodeId* alive, std::size_t count,
                               const std::uint8_t* terminated) {
  // Blocked three-speed compaction. Termination is lumpy in most rounds
  // (the alive set shrinks by a few ids at a time, or a whole region
  // dies at once), so 16-id blocks are usually uniform: one flag-gather
  // sum decides, and a fully-surviving block moves with a single
  // 64-byte memmove (fully-terminated blocks cost nothing at all)
  // instead of 16 dependent conditional stores. Mixed blocks fall back
  // to the per-id pass, preserving the exact stable order of the scalar
  // twin.
  constexpr std::size_t kBlock = 16;
  // All-ones in every flag byte: terminated[] stores strict 0/1.
  constexpr std::uint64_t kAllDead = 0x0101010101010101ULL;
  std::size_t w = 0;
  std::size_t i = 0;
  for (; i + kBlock <= count; i += kBlock) {
    const graph::NodeId first = alive[i];
    if (alive[i + kBlock - 1] ==
        first + static_cast<graph::NodeId>(kBlock - 1)) {
      // Contiguous id run (the common shape: alive starts as 0..n-1 and
      // compaction keeps it sorted, so runs only break at gaps): the 16
      // flags are adjacent in the terminated lane and two 8-byte loads
      // replace 16 indexed gathers.
      std::uint64_t f0;
      std::uint64_t f1;
      std::memcpy(&f0, terminated + static_cast<std::size_t>(first), 8);
      std::memcpy(&f1, terminated + static_cast<std::size_t>(first) + 8, 8);
      if ((f0 | f1) == 0) {
        if (w != i) {
          std::memmove(alive + w, alive + i,
                       kBlock * sizeof(graph::NodeId));
        }
        w += kBlock;
        continue;
      }
      if (f0 == kAllDead && f1 == kAllDead) continue;
    } else {
      unsigned dead = 0;
      for (std::size_t j = 0; j < kBlock; ++j) {
        dead += terminated[static_cast<std::size_t>(alive[i + j])];
      }
      if (dead == 0) {
        if (w != i) {
          std::memmove(alive + w, alive + i,
                       kBlock * sizeof(graph::NodeId));
        }
        w += kBlock;
        continue;
      }
      if (dead == kBlock) continue;
    }
    for (std::size_t j = 0; j < kBlock; ++j) {
      const graph::NodeId v = alive[i + j];
      alive[w] = v;
      w += static_cast<std::size_t>(
          terminated[static_cast<std::size_t>(v)] == 0);
    }
  }
  for (; i < count; ++i) {
    const graph::NodeId v = alive[i];
    alive[w] = v;
    w += static_cast<std::size_t>(
        terminated[static_cast<std::size_t>(v)] == 0);
  }
  return w;
}

LCL_WIDE_KERNEL
TvReduction reduce_tv_simd(const std::int64_t* term_round,
                           std::size_t count) {
  // Four independent accumulator pairs: a single pair serializes every
  // iteration behind the compare/blend latency chain, so the loop runs
  // at chain latency instead of load throughput. The vector ternary
  // lowers to one compare + one blend (or a native lanewise max).
  v4i64 sum0 = {0, 0, 0, 0}, sum1 = sum0, sum2 = sum0, sum3 = sum0;
  v4i64 mx0 = sum0, mx1 = sum0, mx2 = sum0, mx3 = sum0;
  std::size_t i = 0;
  for (; i + 16 <= count; i += 16) {
    v4i64 a0, a1, a2, a3;
    std::memcpy(&a0, term_round + i, 32);
    std::memcpy(&a1, term_round + i + 4, 32);
    std::memcpy(&a2, term_round + i + 8, 32);
    std::memcpy(&a3, term_round + i + 12, 32);
    sum0 += a0;
    sum1 += a1;
    sum2 += a2;
    sum3 += a3;
    mx0 = a0 > mx0 ? a0 : mx0;
    mx1 = a1 > mx1 ? a1 : mx1;
    mx2 = a2 > mx2 ? a2 : mx2;
    mx3 = a3 > mx3 ? a3 : mx3;
  }
  const v4i64 sum = (sum0 + sum1) + (sum2 + sum3);
  v4i64 mx = mx0 > mx1 ? mx0 : mx1;
  const v4i64 mxb = mx2 > mx3 ? mx2 : mx3;
  mx = mx > mxb ? mx : mxb;
  TvReduction r;
  r.sum = sum[0] + sum[1] + sum[2] + sum[3];
  r.max = std::max(std::max(mx[0], mx[1]), std::max(mx[2], mx[3]));
  for (; i < count; ++i) {
    const std::int64_t t = term_round[i];
    r.sum += t;
    if (t > r.max) r.max = t;
  }
  return r;
}

#endif  // LCL_FORCE_SCALAR

}  // namespace lcl::local
