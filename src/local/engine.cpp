#include "local/engine.hpp"

#include <algorithm>
#include <cstring>
#include <string>

namespace lcl::local {

Output NodeCtx::neighbor_output(int port) const {
  if (!neighbor_terminated(port)) {
    throw std::logic_error("NodeCtx: neighbor output not yet visible");
  }
  return engine_.outputs_[static_cast<std::size_t>(neighbor(port))];
}

void NodeCtx::terminate(Output out) {
  if (engine_.terminated_[static_cast<std::size_t>(v_)] != 0) {
    throw std::logic_error("NodeCtx: double termination");
  }
  engine_.terminated_[static_cast<std::size_t>(v_)] = 1;
  engine_.outputs_[static_cast<std::size_t>(v_)] = out;
  engine_.term_round_[static_cast<std::size_t>(v_)] = engine_.round_;
}

void Engine::grow(std::int64_t width) {
  std::int64_t new_cap = cap_;
  while (new_cap < width) new_cap *= 2;
  const std::size_t slots = 2 * static_cast<std::size_t>(tree_.size());
  std::vector<std::int64_t> grown(slots * static_cast<std::size_t>(new_cap),
                                  0);
  for (std::size_t s = 0; s < slots; ++s) {
    std::memcpy(grown.data() + s * static_cast<std::size_t>(new_cap),
                arena_.data() + s * static_cast<std::size_t>(cap_),
                static_cast<std::size_t>(len_[s]) * sizeof(std::int64_t));
  }
  // Keep the outgoing arena alive until the end of the round: the program
  // may still hold RegViews into it, and committed slots are immutable for
  // the rest of the round, so those views stay correct.
  retired_.push_back(std::move(arena_));
  arena_ = std::move(grown);
  cap_ = new_cap;
}

void Engine::commit_publishes() {
  // Toggle the owners' parity bits; silent and terminated nodes cost
  // nothing.
  for (const NodeId v : published_) {
    cur_[static_cast<std::size_t>(v)] ^= 1;
  }
  published_.clear();
  retired_.clear();
}

void Engine::flip_and_compact() {
  commit_publishes();

  // Compact the alive list in place.
  std::size_t w = 0;
  for (const NodeId v : alive_) {
    if (terminated_[static_cast<std::size_t>(v)] == 0) alive_[w++] = v;
  }
  alive_.resize(w);
}

RunStats Engine::run(Program& program, std::int64_t max_rounds,
                     RunProfile* profile) {
  const std::size_t n = static_cast<std::size_t>(tree_.size());
  round_ = 0;

  // The only adjacency "setup": borrow the Tree's native CSR pointers.
  // Nothing is copied or rebuilt per run.
  off_ = tree_.offsets().data();
  adj_ = tree_.adjacency().data();

  cap_ = kInitialCap;
  arena_.assign(2 * n * static_cast<std::size_t>(cap_), 0);
  len_.assign(2 * n, 0);
  cur_.assign(n, 0);
  retired_.clear();
  published_.clear();
  publish_round_.assign(n, -1);
  terminated_.assign(n, 0);
  outputs_.assign(n, Output{});
  term_round_.assign(n, 0);

  // Init phase (round 0): registers published here are visible in round 1.
  alive_.clear();
  alive_.reserve(n);
  for (NodeId v = 0; v < tree_.size(); ++v) {
    NodeCtx ctx(*this, v);
    program.on_init(ctx);
    if (terminated_[static_cast<std::size_t>(v)] == 0) alive_.push_back(v);
  }
  commit_publishes();
  if (profile != nullptr) {
    profile->alive_per_round.clear();
    profile->term_count.clear();
  }

  RunStats stats;
  while (!alive_.empty()) {
    if (round_ >= max_rounds) {
      // Structured truncation: keep everything measured so far and censor
      // the survivors' T_v at the executed round count (a lower bound on
      // their true termination time). Their outputs stay {-1, -1}.
      stats.truncated = true;
      stats.unterminated = static_cast<std::int64_t>(alive_.size());
      for (const NodeId v : alive_) {
        term_round_[static_cast<std::size_t>(v)] = round_;
      }
      break;
    }
    ++round_;
    if (profile != nullptr) {
      profile->alive_per_round.push_back(
          static_cast<std::int64_t>(alive_.size()));
    }
    for (const NodeId v : alive_) {
      NodeCtx ctx(*this, v);
      program.on_round(ctx);
    }
    flip_and_compact();
  }

  stats.n = tree_.size();
  stats.rounds = round_;
  stats.termination_round = term_round_;
  stats.output = outputs_;
  stats.worst_case = 0;
  stats.total_rounds = 0;
  for (const std::int64_t t : term_round_) {
    stats.worst_case = std::max(stats.worst_case, t);
    stats.total_rounds += t;
  }
  stats.node_averaged =
      stats.n == 0 ? 0.0
                   : static_cast<double>(stats.total_rounds) /
                         static_cast<double>(stats.n);
  if (profile != nullptr) {
    profile->term_count.assign(
        static_cast<std::size_t>(stats.worst_case) + 1, 0);
    for (const std::int64_t t : term_round_) {
      ++profile->term_count[static_cast<std::size_t>(t)];
    }
  }
  return stats;
}

}  // namespace lcl::local
