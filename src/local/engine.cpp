#include "local/engine.hpp"

#include <algorithm>
#include <cstring>
#include <string>

namespace lcl::local {

Output NodeCtx::neighbor_output(int port) const {
  if (!neighbor_terminated(port)) {
    throw std::logic_error("NodeCtx: neighbor output not yet visible");
  }
  return engine_.outputs_[static_cast<std::size_t>(neighbor(port))];
}

void NodeCtx::terminate(Output out) {
  const auto v = static_cast<std::size_t>(v_);
  if (engine_.term_[v] != 0) {
    throw std::logic_error("NodeCtx: double termination");
  }
  engine_.term_[v] = 1;
  engine_.outputs_[v] = out;
  engine_.term_round_[v] = engine_.round_;
}

// Default batch hooks: replay the per-node schedule over the span, so a
// program that never heard of batching behaves bit-identically under
// either dispatch mode.

void Program::on_init_batch(BatchCtx& batch, NodeSpan nodes) {
  for (const NodeId v : nodes) {
    NodeCtx ctx = batch.node_ctx(v);
    on_init(ctx);
  }
}

void Program::on_round_batch(BatchCtx& batch, NodeSpan nodes) {
  for (const NodeId v : nodes) {
    NodeCtx ctx = batch.node_ctx(v);
    on_round(ctx);
  }
}

void BatchCtx::terminate(NodeId v, Output out) {
  NodeCtx ctx(engine_, v);
  ctx.terminate(out);
}

void BatchCtx::terminate_lane(NodeSpan nodes, Output out) {
  Engine& e = engine_;
  for (const NodeId v : nodes) {
    const auto i = static_cast<std::size_t>(v);
    if (e.term_[i] != 0) {
      throw std::logic_error("BatchCtx: double termination");
    }
    e.term_[i] = 1;
    e.outputs_[i] = out;
    e.term_round_[i] = e.round_;
  }
}

void BatchCtx::terminate_lane(NodeSpan nodes, const Output* outputs) {
  Engine& e = engine_;
  for (std::size_t j = 0; j < nodes.size(); ++j) {
    const auto i = static_cast<std::size_t>(nodes[j]);
    if (e.term_[i] != 0) {
      throw std::logic_error("BatchCtx: double termination");
    }
    e.term_[i] = 1;
    e.outputs_[i] = outputs[j];
    e.term_round_[i] = e.round_;
  }
}

void BatchCtx::publish_lane(NodeSpan nodes, const std::int64_t* words,
                            std::size_t width) {
  Engine& e = engine_;
  // One capacity check for the whole lane; the per-node body below is
  // NodeCtx::publish with the grow branch hoisted out.
  if (static_cast<std::int64_t>(width) > e.cap_) {
    e.grow(static_cast<std::int64_t>(width));
  }
  const std::int64_t* src = words;
  for (const NodeId v : nodes) {
    const auto i = static_cast<std::size_t>(v);
    const int staging = e.cur_[i] ^ 1;
    if (width != 0) {
      std::memcpy(e.words_[staging] + i * static_cast<std::size_t>(e.cap_),
                  src, width * sizeof(std::int64_t));
    }
    e.len_[staging][i] = static_cast<std::int32_t>(width);
    if (e.pub_[i] == 0) {
      e.pub_[i] = 1;
      e.ws_->published.push_back(v);
      e.pub_lo_ = std::min(e.pub_lo_, i);
      e.pub_hi_ = std::max(e.pub_hi_, i);
    }
    src += width;
  }
}

Engine::Workspace& tls_workspace() {
  thread_local Engine::Workspace ws;
  return ws;
}

void Engine::Workspace::prepare(std::int64_t n) {
  const auto count = static_cast<std::size_t>(n);
  if (cap < kInitialCap) cap = kInitialCap;
  std::int64_t allocs = 0;
  // Word planes keep their contents: register reads are length-bounded
  // and every len resets to 0 below, so stale words are unreachable —
  // skipping the 2*n*cap clear is a large part of the warm-run win.
  for (auto& plane : words) {
    allocs += plane.ensure(count * static_cast<std::size_t>(cap)) ? 1 : 0;
  }
  // Bookkeeping lanes ARE cleared over their full padded extent: the
  // wide kernels treat pad elements as data (pub=0 makes the dense flip
  // a no-op there, term_round=0 is neutral for sum/max), and a
  // workspace hops between runs of different n.
  for (auto& plane : len) allocs += plane.assign(count, 0) ? 1 : 0;
  allocs += cur.assign(count, 0) ? 1 : 0;
  allocs += pub.assign(count, 0) ? 1 : 0;
  allocs += terminated.assign(count, 0) ? 1 : 0;
  allocs += term_round.assign(count, 0) ? 1 : 0;
  if (outputs.capacity() < count) ++allocs;
  outputs.assign(count, Output{});
  if (alive.capacity() < count) {
    ++allocs;
    alive.reserve(count);
  }
  alive.clear();
  if (published.capacity() < count) {
    ++allocs;
    published.reserve(count);
  }
  published.clear();
  retired.clear();
  alloc_events_ += allocs;
}

void Engine::bind(Workspace& ws) {
  ws_ = &ws;
  cap_ = ws.cap;
  for (int p = 0; p < 2; ++p) {
    words_[p] = ws.words[p].data();
    len_[p] = ws.len[p].data();
  }
  cur_ = ws.cur.data();
  pub_ = ws.pub.data();
  term_ = ws.terminated.data();
  term_round_ = ws.term_round.data();
  outputs_ = ws.outputs.data();
  pub_lo_ = std::numeric_limits<std::size_t>::max();
  pub_hi_ = 0;
}

void Engine::grow(std::int64_t width) {
  std::int64_t new_cap = cap_;
  while (new_cap < width) new_cap *= 2;
  const auto n = static_cast<std::size_t>(tree_.size());
  for (int p = 0; p < 2; ++p) {
    AlignedPlane<std::int64_t> grown;
    grown.ensure(n * static_cast<std::size_t>(new_cap));
    ++ws_->alloc_events_;
    for (std::size_t v = 0; v < n; ++v) {
      const std::int32_t l = len_[p][v];
      if (l != 0) {
        std::memcpy(grown.data() + v * static_cast<std::size_t>(new_cap),
                    words_[p] + v * static_cast<std::size_t>(cap_),
                    static_cast<std::size_t>(l) * sizeof(std::int64_t));
      }
    }
    // Keep the outgoing plane alive until the end of the round: the
    // program may still hold RegViews into it, and committed registers
    // are immutable for the rest of the round, so those views stay
    // correct.
    ws_->retired.push_back(std::move(ws_->words[p]));
    ws_->words[p] = std::move(grown);
    words_[p] = ws_->words[p].data();
  }
  cap_ = new_cap;
  ws_->cap = new_cap;
}

void Engine::commit_publishes() {
  std::vector<NodeId>& published = ws_->published;
  if (!published.empty()) {
    const std::size_t count = published.size();
    const std::size_t span = pub_hi_ - pub_lo_ + 1;
    if (simd_ &&
        span <= static_cast<std::size_t>(kDenseFlipFactor) * count) {
      // Dense flip: one wide XOR over the 64-byte-aligned block range
      // covering every publisher. The span bound keeps this
      // O(#published); pub bytes outside the publisher set are 0, so
      // the XOR is a no-op there.
      const std::size_t lo = pub_lo_ & ~static_cast<std::size_t>(63);
      const std::size_t hi = (pub_hi_ + 64) & ~static_cast<std::size_t>(63);
      flip_commit_simd(cur_ + lo, pub_ + lo, hi - lo);
    } else {
      // Sparse round: toggle the owners' parity bits via the publisher
      // list; silent and terminated nodes cost nothing.
      for (const NodeId v : published) {
        cur_[static_cast<std::size_t>(v)] ^= 1;
        pub_[static_cast<std::size_t>(v)] = 0;
      }
    }
    published.clear();
    pub_lo_ = std::numeric_limits<std::size_t>::max();
    pub_hi_ = 0;
  }
  ws_->retired.clear();
}

void Engine::flip_and_compact() {
  commit_publishes();

  // Compact the alive list in place (stable; identical order under both
  // kernel variants).
  std::vector<NodeId>& alive = ws_->alive;
  const std::size_t w =
      simd_ ? compact_alive_simd(alive.data(), alive.size(), term_)
            : compact_alive_scalar(alive.data(), alive.size(), term_);
  alive.resize(w);
}

RunStats Engine::run(Program& program, std::int64_t max_rounds,
                     RunProfile* profile) {
  return run(program, own_ws_, max_rounds, profile);
}

RunStats Engine::run(Program& program, Workspace& ws,
                     std::int64_t max_rounds, RunProfile* profile) {
  RunStats stats;
  run_into(program, ws, stats, max_rounds, profile);
  return stats;
}

void Engine::run_into(Program& program, Workspace& ws, RunStats& stats,
                      std::int64_t max_rounds, RunProfile* profile) {
  if (ws.in_use) {
    throw std::logic_error(
        "local::Engine: workspace already serving a run in flight "
        "(one workspace per concurrent run; see tls_workspace())");
  }
  ws.in_use = true;
  struct Release {
    bool* flag;
    ~Release() { *flag = false; }
  } release{&ws.in_use};

  const auto n = static_cast<std::size_t>(tree_.size());
  round_ = 0;
  simd_ = resolve_kernel_mode(mode_) == KernelMode::kSimd;
  batch_ = resolve_dispatch_mode(dispatch_) == DispatchMode::kBatch;

  // The only adjacency "setup": borrow the Tree's native CSR pointers.
  // Nothing is copied or rebuilt per run.
  off_ = tree_.offsets().data();
  adj_ = tree_.adjacency().data();

  ws.prepare(tree_.size());
  bind(ws);

  // Init phase (round 0): registers published here are visible in round 1.
  std::vector<NodeId>& alive = ws.alive;
  BatchCtx bctx(*this);
  if (batch_) {
    // One span-level call over every node, then a stable compaction of
    // the init-terminated ones — the same surviving order the per-node
    // push_back filter produces. `alive` was reserved for n by
    // prepare(), so the resize never allocates on a warm run.
    alive.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      alive[i] = static_cast<NodeId>(i);
    }
    program.on_init_batch(bctx, NodeSpan(alive.data(), alive.size()));
    const std::size_t w =
        simd_ ? compact_alive_simd(alive.data(), alive.size(), term_)
              : compact_alive_scalar(alive.data(), alive.size(), term_);
    alive.resize(w);
  } else {
    for (NodeId v = 0; v < tree_.size(); ++v) {
      NodeCtx ctx(*this, v);
      program.on_init(ctx);
      if (term_[static_cast<std::size_t>(v)] == 0) alive.push_back(v);
    }
  }
  commit_publishes();
  if (profile != nullptr) {
    profile->alive_per_round.clear();
    profile->term_count.clear();
  }

  // Reset every scalar field: the stats object may be recycled from a
  // previous run (run_into contract).
  stats.truncated = false;
  stats.unterminated = 0;
  while (!alive.empty()) {
    if (round_ >= max_rounds) {
      // Structured truncation: keep everything measured so far and censor
      // the survivors' T_v at the executed round count (a lower bound on
      // their true termination time). Their outputs stay {-1, -1}.
      stats.truncated = true;
      stats.unterminated = static_cast<std::int64_t>(alive.size());
      for (const NodeId v : alive) {
        term_round_[static_cast<std::size_t>(v)] = round_;
      }
      break;
    }
    ++round_;
    if (profile != nullptr) {
      profile->alive_per_round.push_back(
          static_cast<std::int64_t>(alive.size()));
    }
    if (batch_) {
      program.on_round_batch(bctx, NodeSpan(alive.data(), alive.size()));
    } else {
      for (const NodeId v : alive) {
        NodeCtx ctx(*this, v);
        program.on_round(ctx);
      }
    }
    flip_and_compact();
  }

  stats.n = tree_.size();
  stats.rounds = round_;
  stats.termination_round.assign(term_round_, term_round_ + n);
  stats.output.assign(outputs_, outputs_ + n);
  // The padded tail of the term_round lane is zero (prepare clears it,
  // truncation writes only real ids), and zero is neutral for both sum
  // and max, so the reduction may run over whole blocks.
  const TvReduction r =
      simd_ ? reduce_tv_simd(term_round_,
                             AlignedPlane<std::int64_t>::padded(n))
            : reduce_tv_scalar(term_round_, n);
  stats.worst_case = r.max;
  stats.total_rounds = r.sum;
  stats.node_averaged =
      stats.n == 0 ? 0.0
                   : static_cast<double>(stats.total_rounds) /
                         static_cast<double>(stats.n);
  if (profile != nullptr) {
    profile->term_count.assign(
        static_cast<std::size_t>(stats.worst_case) + 1, 0);
    for (std::size_t v = 0; v < n; ++v) {
      ++profile->term_count[static_cast<std::size_t>(term_round_[v])];
    }
  }
}

}  // namespace lcl::local
