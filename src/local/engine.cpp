#include "local/engine.hpp"

#include <algorithm>

namespace lcl::local {

int NodeCtx::degree() const { return engine_.tree_.degree(v_); }

std::int64_t NodeCtx::local_id() const {
  return engine_.tree_.local_id(v_);
}

int NodeCtx::input() const { return engine_.tree_.input(v_); }

std::int64_t NodeCtx::n() const { return engine_.tree_.size(); }

std::int64_t NodeCtx::round() const { return engine_.round_; }

const Register& NodeCtx::peek(int port) const {
  const NodeId u = engine_.tree_.neighbors(v_)[static_cast<std::size_t>(port)];
  return engine_.prev_[static_cast<std::size_t>(u)];
}

bool NodeCtx::neighbor_terminated(int port) const {
  const NodeId u = engine_.tree_.neighbors(v_)[static_cast<std::size_t>(port)];
  // Terminations become visible one round after they happen (synchronous
  // semantics): a node terminating in round r is observed from round r+1.
  return engine_.terminated_[static_cast<std::size_t>(u)] &&
         engine_.term_round_[static_cast<std::size_t>(u)] < engine_.round_;
}

Output NodeCtx::neighbor_output(int port) const {
  const NodeId u = engine_.tree_.neighbors(v_)[static_cast<std::size_t>(port)];
  if (!neighbor_terminated(port)) {
    throw std::logic_error("NodeCtx: neighbor output not yet visible");
  }
  return engine_.outputs_[static_cast<std::size_t>(u)];
}

void NodeCtx::publish(Register reg) {
  engine_.next_[static_cast<std::size_t>(v_)] = std::move(reg);
}

const Register& NodeCtx::own() const {
  return engine_.prev_[static_cast<std::size_t>(v_)];
}

void NodeCtx::terminate(Output out) {
  if (engine_.terminated_[static_cast<std::size_t>(v_)]) {
    throw std::logic_error("NodeCtx: double termination");
  }
  engine_.terminated_[static_cast<std::size_t>(v_)] = true;
  engine_.outputs_[static_cast<std::size_t>(v_)] = out;
  engine_.term_round_[static_cast<std::size_t>(v_)] = engine_.round_;
}

RunStats Engine::run(Program& program, std::int64_t max_rounds) {
  const std::size_t n = static_cast<std::size_t>(tree_.size());
  round_ = 0;
  prev_.assign(n, {});
  next_.assign(n, {});
  terminated_.assign(n, false);
  outputs_.assign(n, Output{});
  term_round_.assign(n, 0);

  // Init phase (round 0): registers published here are visible in round 1.
  std::vector<NodeId> alive;
  alive.reserve(n);
  for (NodeId v = 0; v < tree_.size(); ++v) {
    NodeCtx ctx(*this, v);
    program.on_init(ctx);
    // During init, publishes go to next_; fold them into prev_ below.
    if (!terminated_[static_cast<std::size_t>(v)]) alive.push_back(v);
  }
  prev_.swap(next_);
  // After termination, the node's last publish remains frozen: copy any
  // init-round publish of terminated nodes too (already in prev_ via swap).
  next_ = prev_;

  std::int64_t alive_count = static_cast<std::int64_t>(alive.size());
  while (alive_count > 0) {
    ++round_;
    if (round_ > max_rounds) {
      throw std::runtime_error(
          "Engine: round limit exceeded with " +
          std::to_string(alive_count) + " nodes alive");
    }
    std::vector<NodeId> still_alive;
    still_alive.reserve(alive.size());
    for (NodeId v : alive) {
      NodeCtx ctx(*this, v);
      program.on_round(ctx);
      if (!terminated_[static_cast<std::size_t>(v)]) still_alive.push_back(v);
    }
    // Synchronous flip. Only alive nodes may have written; terminated
    // nodes' entries in next_ already mirror their frozen registers.
    for (NodeId v : alive) {
      prev_[static_cast<std::size_t>(v)] = next_[static_cast<std::size_t>(v)];
    }
    alive = std::move(still_alive);
    alive_count = static_cast<std::int64_t>(alive.size());
  }

  RunStats stats;
  stats.n = tree_.size();
  stats.rounds = round_;
  stats.termination_round = term_round_;
  stats.output = outputs_;
  stats.worst_case = 0;
  stats.total_rounds = 0;
  for (std::int64_t t : term_round_) {
    stats.worst_case = std::max(stats.worst_case, t);
    stats.total_rounds += t;
  }
  stats.node_averaged =
      stats.n == 0 ? 0.0
                   : static_cast<double>(stats.total_rounds) /
                         static_cast<double>(stats.n);
  return stats;
}

}  // namespace lcl::local
