// Synchronous LOCAL-model simulator.
//
// Model. Computation proceeds in synchronous rounds over a fixed
// bounded-degree graph. Every node holds a *published register* (a small
// vector of words) that all neighbors can read. In round r each
// non-terminated node (a) reads its neighbors' registers as of the end of
// round r-1, (b) updates its own register, and (c) may *terminate* by
// fixing its output. A terminated node stops computing, but its final
// register stays readable — the standard termination semantics under which
// node-averaged complexity is defined (Section 2 of the paper).
//
// The engine records T_v = the round in which v terminated; the
// node-averaged complexity of a run is (1/n) * sum_v T_v, and the
// worst-case complexity is max_v T_v.
//
// Storage layout. Registers live in one flat contiguous arena holding two
// fixed-capacity *slots* per node (a committed slot and a staging slot):
// slot s of node v occupies the word slice [(2v+s)*cap, (2v+s)*cap+len),
// where `cap` is a uniform capacity that doubles on demand (a publish wider
// than `cap` triggers a rare O(n*cap) arena rebuild; steady state never
// reallocates). A per-node parity bit names the committed slot. Reads
// (`peek`/`own`) return views of the committed slot; a `publish` writes the
// staging slot; the synchronous flip at the end of the round just toggles
// the parity bit of each node that published — no register is ever copied,
// and a node that stays silent (or has terminated) costs nothing at the
// flip. Adjacency is NOT snapshotted: `graph::Tree` is CSR-native and
// frozen (see graph/tree.hpp and DESIGN.md), so the engine borrows the
// tree's own offset/neighbor arrays at the start of each run and a
// `peek` is two array indexations into contiguous memory with zero
// per-run adjacency work.
//
// Cost model. The engine keeps a compacted list of alive nodes (compacted
// in place after each round, so terminated nodes cost nothing — not even a
// branch) and a per-round list of publishers (so the flip is O(#published),
// not O(n)). Per round the work is one program callback per alive node
// plus one O(register width) write per publish. Total simulation cost is
// therefore O(sum_v T_v) — proportional to exactly the quantity the
// paper's theorems bound, which keeps fast instances fast. A terminated
// node's committed slot is simply never touched again, so its final
// register stays readable for free.
//
// Algorithms implement `Program`. Independent runs (one engine per
// instance) share nothing and can execute concurrently; see
// `core/batch.hpp` for the thread-pooled sweep runner.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/tree.hpp"

namespace lcl::local {

using graph::NodeId;
using graph::Tree;

/// A published register value: a small vector of words. Used to *construct*
/// register contents; reads return the non-owning `RegView`.
using Register = std::vector<std::int64_t>;

/// Read-only view of a published register. Views point into the engine's
/// arena (the owner's committed slot) and stay valid for the duration of
/// the current round callback; copy the words out to retain them across
/// rounds.
using RegView = std::span<const std::int64_t>;

/// Per-node output of an LCL algorithm: a primary label and an optional
/// secondary label (used by the weighted problems of Definition 22).
struct Output {
  int primary = -1;
  int secondary = -1;
};

class Engine;

/// Node-local view handed to `Program` callbacks. All information reachable
/// through a `NodeCtx` is information the node legitimately has in the
/// LOCAL model: its own identifiers/state and its neighbors' registers.
class NodeCtx {
 public:
  NodeCtx(Engine& engine, NodeId v) : engine_(engine), v_(v) {}

  [[nodiscard]] NodeId node() const { return v_; }
  [[nodiscard]] int degree() const;
  [[nodiscard]] std::int64_t local_id() const;
  [[nodiscard]] int input() const;
  /// Number of nodes in the graph (global knowledge, standard in LOCAL).
  [[nodiscard]] std::int64_t n() const;
  /// Current round number (1-based; 0 during on_init).
  [[nodiscard]] std::int64_t round() const;

  /// Neighbor's register as of the end of the previous round.
  [[nodiscard]] RegView peek(int port) const;
  /// Whether the neighbor on `port` has terminated. Like registers,
  /// terminations become visible one round after they happen (a node
  /// terminating in round r is observed from round r+1) — synchronous
  /// semantics with no same-round information leaks.
  [[nodiscard]] bool neighbor_terminated(int port) const;
  /// Neighbor's fixed output; only valid if `neighbor_terminated(port)`.
  [[nodiscard]] Output neighbor_output(int port) const;

  /// Overwrites this node's register (visible to neighbors next round).
  void publish(RegView reg);
  void publish(std::initializer_list<std::int64_t> words) {
    publish(RegView(words.begin(), words.size()));
  }
  /// Reads this node's own current register (as published).
  [[nodiscard]] RegView own() const;

  /// Terminates this node with the given output; `T_v` = current round.
  void terminate(Output out);
  void terminate(int primary, int secondary = -1) {
    terminate(Output{primary, secondary});
  }

 private:
  /// Resolves a port to the neighbor's dense index via the tree's CSR.
  [[nodiscard]] NodeId neighbor(int port) const;

  Engine& engine_;
  NodeId v_;
};

/// A distributed algorithm. One `Program` instance serves the whole run;
/// per-node state must live in engine registers or in program-owned
/// per-node arrays (indexed by NodeId) that the program only accesses for
/// the node passed to the callback.
class Program {
 public:
  virtual ~Program() = default;
  /// Called once per node before round 1 (round() == 0). May publish and
  /// may terminate (yielding T_v = 0, i.e., constant-time termination).
  virtual void on_init(NodeCtx& ctx) = 0;
  /// Called once per round for each non-terminated node.
  virtual void on_round(NodeCtx& ctx) = 0;
};

/// Result of a run.
///
/// Truncation. A run that hits `max_rounds` with nodes still alive is not
/// an error: the engine returns the partial measurement with
/// `truncated == true`. Every node that never terminated has its T_v
/// *censored* at `rounds` (the executed round count) — a lower bound on
/// its true termination time — its `output` stays `{-1, -1}`, and
/// `unterminated` counts such nodes. For a truncated run `node_averaged`,
/// `worst_case`, and `total_rounds` are therefore lower bounds.
struct RunStats {
  std::int64_t n = 0;
  std::int64_t rounds = 0;  ///< rounds executed
  double node_averaged = 0.0;
  std::int64_t worst_case = 0;
  std::int64_t total_rounds = 0;  ///< sum_v T_v
  bool truncated = false;         ///< hit `max_rounds` with nodes alive
  std::int64_t unterminated = 0;  ///< nodes whose T_v is censored
  std::vector<std::int64_t> termination_round;  ///< T_v per node
  std::vector<Output> output;                   ///< fixed outputs per node

  [[nodiscard]] std::vector<int> primaries() const {
    std::vector<int> p;
    p.reserve(output.size());
    for (const Output& o : output) p.push_back(o.primary);
    return p;
  }
  [[nodiscard]] std::vector<int> secondaries() const {
    std::vector<int> s;
    s.reserve(output.size());
    for (const Output& o : output) s.push_back(o.secondary);
    return s;
  }
};

/// Optional per-run measurement profile, filled by `Engine::run` when the
/// caller passes one. Collection is O(sum_v T_v) on top of the
/// simulation: the alive trajectory is one append per executed round
/// (rounds <= sum T_v once anything survives init) and the histogram is
/// one counting pass over data the engine already owns.
struct RunProfile {
  /// `alive_per_round[r]` = nodes that executed round r+1 (so index 0
  /// counts round 1). Length == `RunStats::rounds`.
  std::vector<std::int64_t> alive_per_round;
  /// `term_count[t]` = number of nodes with T_v == t, matching
  /// `RunStats::termination_round` exactly — for truncated runs this
  /// includes the survivors censored at `rounds`.
  std::vector<std::int64_t> term_count;
};

/// The synchronous engine. Construct with a graph (frozen by
/// construction — every `Tree` is), `run` a program; the engine enforces
/// the synchronous schedule and records termination rounds.
class Engine {
 public:
  explicit Engine(const Tree& tree) : tree_(tree) {}

  /// Runs `program` to completion, or until `max_rounds` rounds have
  /// executed — in which case the returned stats carry
  /// `truncated == true` and censored partials (see `RunStats`) instead
  /// of the run being thrown away. Pass `profile` to additionally collect
  /// the per-round alive trajectory and the T_v histogram.
  RunStats run(Program& program,
               std::int64_t max_rounds = std::numeric_limits<int>::max(),
               RunProfile* profile = nullptr);

  [[nodiscard]] const Tree& tree() const { return tree_; }

 private:
  friend class NodeCtx;

  /// Initial uniform register capacity (words); doubles on demand.
  static constexpr std::int64_t kInitialCap = 8;

  /// Slot id of slot `s` (0/1) of node `v`; the slot's words start at
  /// slot id * cap_ and its length is len_[slot id].
  [[nodiscard]] static std::size_t slot_id(NodeId v, int s) {
    return 2 * static_cast<std::size_t>(v) + static_cast<std::size_t>(s);
  }
  /// Grows the arena so a register of `width` words fits. The outgoing
  /// arena is retired (kept alive until the end of the round), so views
  /// handed out earlier this round stay valid.
  void grow(std::int64_t width);
  /// Commits this round's publishes (parity toggles) and releases any
  /// retired arenas. Called at the end of init and of every round.
  void commit_publishes();
  /// End-of-round synchronous flip: commit publishes, then compact the
  /// alive list in place.
  void flip_and_compact();

  const Tree& tree_;
  std::int64_t round_ = 0;

  // Borrowed views of the tree's native CSR, captured at the top of each
  // run() (so reassigning the referenced Tree between runs stays safe,
  // as it was under the per-run snapshot): neighbors of v are
  // adj_[off_[v] + port]. The arrays never move during a run — topology
  // is frozen and attribute setters touch separate storage.
  const std::int32_t* off_ = nullptr;
  const NodeId* adj_ = nullptr;

  // Flat register arena; see the file header for the layout.
  std::int64_t cap_ = kInitialCap;
  std::vector<std::int64_t> arena_;
  std::vector<std::int32_t> len_;    // len_[2v+s], per slot
  std::vector<std::uint8_t> cur_;    // committed slot parity per node
  // Arenas replaced by a mid-round growth, retired until the flip so that
  // outstanding RegViews keep pointing at live (committed, immutable) data.
  std::vector<std::vector<std::int64_t>> retired_;

  std::vector<NodeId> alive_;      // compacted in place every round
  std::vector<NodeId> published_;  // publishers of the current round
  std::vector<std::int64_t> publish_round_;  // last round v published
  std::vector<char> terminated_;
  std::vector<Output> outputs_;
  std::vector<std::int64_t> term_round_;
};

// NodeCtx accessors are on the per-node-per-round hot path; they are
// defined inline here so simulation loops don't pay a cross-TU call per
// register read.

inline int NodeCtx::degree() const {
  return static_cast<int>(engine_.off_[static_cast<std::size_t>(v_) + 1] -
                          engine_.off_[static_cast<std::size_t>(v_)]);
}

inline std::int64_t NodeCtx::local_id() const {
  return engine_.tree_.local_id(v_);
}

inline int NodeCtx::input() const { return engine_.tree_.input(v_); }

inline std::int64_t NodeCtx::n() const { return engine_.tree_.size(); }

inline std::int64_t NodeCtx::round() const { return engine_.round_; }

inline NodeId NodeCtx::neighbor(int port) const {
  return engine_.adj_[static_cast<std::size_t>(
                          engine_.off_[static_cast<std::size_t>(v_)]) +
                      static_cast<std::size_t>(port)];
}

inline RegView NodeCtx::peek(int port) const {
  const NodeId u = neighbor(port);
  const std::size_t slot =
      Engine::slot_id(u, engine_.cur_[static_cast<std::size_t>(u)]);
  return {engine_.arena_.data() +
              slot * static_cast<std::size_t>(engine_.cap_),
          static_cast<std::size_t>(engine_.len_[slot])};
}

inline bool NodeCtx::neighbor_terminated(int port) const {
  const NodeId u = neighbor(port);
  // Terminations become visible one round after they happen (synchronous
  // semantics): a node terminating in round r is observed from round r+1.
  return engine_.terminated_[static_cast<std::size_t>(u)] != 0 &&
         engine_.term_round_[static_cast<std::size_t>(u)] < engine_.round_;
}

inline RegView NodeCtx::own() const {
  const std::size_t slot =
      Engine::slot_id(v_, engine_.cur_[static_cast<std::size_t>(v_)]);
  return {engine_.arena_.data() +
              slot * static_cast<std::size_t>(engine_.cap_),
          static_cast<std::size_t>(engine_.len_[slot])};
}

inline void NodeCtx::publish(RegView reg) {
  const std::int64_t width = static_cast<std::int64_t>(reg.size());
  if (width > engine_.cap_) engine_.grow(width);
  const std::size_t slot =
      Engine::slot_id(v_, engine_.cur_[static_cast<std::size_t>(v_)] ^ 1);
  if (width != 0) {
    std::memcpy(engine_.arena_.data() +
                    slot * static_cast<std::size_t>(engine_.cap_),
                reg.data(),
                static_cast<std::size_t>(width) * sizeof(std::int64_t));
  }
  engine_.len_[slot] = static_cast<std::int32_t>(width);
  if (engine_.publish_round_[static_cast<std::size_t>(v_)] !=
      engine_.round_) {
    engine_.publish_round_[static_cast<std::size_t>(v_)] = engine_.round_;
    engine_.published_.push_back(v_);
  }
}

}  // namespace lcl::local
