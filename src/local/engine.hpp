// Synchronous LOCAL-model simulator.
//
// Model. Computation proceeds in synchronous rounds over a fixed
// bounded-degree graph. Every node holds a *published register* (a small
// vector of words) that all neighbors can read. In round r each
// non-terminated node (a) reads its neighbors' registers as of the end of
// round r-1, (b) updates its own register, and (c) may *terminate* by
// fixing its output. A terminated node stops computing, but its final
// register stays readable — the standard termination semantics under which
// node-averaged complexity is defined (Section 2 of the paper).
//
// The engine records T_v = the round in which v terminated; the
// node-averaged complexity of a run is (1/n) * sum_v T_v, and the
// worst-case complexity is max_v T_v.
//
// Storage layout (structure-of-arrays). Register words live in two flat
// *planes* — a pair of fixed-capacity word buffers where node v's words
// in plane p occupy [p.data() + v*cap, ... + len[p][v]), with `cap` a
// uniform capacity that doubles on demand (a publish wider than `cap`
// triggers a rare O(n*cap) plane rebuild; steady state never
// reallocates). A per-node parity byte (`cur`) names the committed
// plane; the other plane is the staging side. All per-node bookkeeping
// is split into separate 64-byte-aligned lanes, each padded to a whole
// number of 64-byte blocks: the `cur`/`pub`/`terminated` byte lanes, the
// per-plane `len` lanes, and the `term_round` lane. That split is what
// makes the three hot bulk passes — the end-of-round publish-flip, the
// alive-list compaction, and the final T_v reduction — branch-free
// kernels over contiguous memory (see local/simd.hpp; `--engine
// scalar|simd|auto` and LCL_FORCE_SCALAR pick the variant). Reads
// (`peek`/`own`) return views of the committed plane; a `publish` writes
// the staging side; the synchronous flip at the end of the round toggles
// the parity of the publishers — either as one wide XOR over a dense
// publisher range or as a scatter over the publisher list, whichever is
// cheaper — so no register is ever copied. Adjacency is NOT snapshotted:
// `graph::Tree` is CSR-native and frozen (see graph/tree.hpp and
// DESIGN.md), so the engine borrows the tree's own offset/neighbor
// arrays at the start of each run and a `peek` is two array indexations
// into contiguous memory with zero per-run adjacency work.
//
// Workspace. All of that per-run state lives in a reusable
// `Engine::Workspace` (the ACL `decompression_context` idiom): the first
// run sizes the planes, every later run of compatible size just
// re-clears them, so steady-state sweeps are allocation-free
// (`Workspace::alloc_events()` counts plane (re)allocations and is
// asserted flat by tests and the engine_micro warm-run metric).
// `run(program)` uses an engine-owned workspace; `run(program, ws)`
// runs in a caller-owned one — `core::BatchRunner` jobs and the solver
// registry share one workspace per worker thread via `tls_workspace()`
// — and `run_into` additionally recycles the result vectors. A
// workspace serves one run at a time (enforced), and must not be
// touched while a run on it is in flight.
//
// Cost model. The engine keeps a compacted list of alive nodes (compacted
// in place after each round, so terminated nodes cost nothing — not even a
// branch) and a per-round list of publishers. The flip is O(#published):
// the dense wide-XOR kernel is only chosen when the publishers' id-span
// is within a constant factor of their count, so it never degrades a
// sparse round to O(n). Per round the work is one program callback per
// alive node plus one O(register width) write per publish. Total
// simulation cost is therefore O(sum_v T_v) — proportional to exactly
// the quantity the paper's theorems bound, which keeps fast instances
// fast. A terminated node's committed words are simply never touched
// again, so its final register stays readable for free.
//
// Dispatch. The engine drives a program either through the classic
// per-node virtual hooks (one `on_round` call per alive node) or
// through span-level batch hooks (one `on_round_batch` call per round
// over the whole compacted alive list) — `DispatchMode
// {pernode, batch, auto}` picks, exactly like `KernelMode` picks the
// kernels (see local/dispatch.hpp). The default batch hooks loop the
// per-node hooks in alive order, so the two modes are bit-identical for
// every program; ported programs override them with lane-level kernels
// over `BatchCtx`'s direct SoA views and bulk writers.
//
// Algorithms implement `Program`. Independent runs (one engine per
// instance) share nothing and can execute concurrently; see
// `core/batch.hpp` for the thread-pooled sweep runner.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <new>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/tree.hpp"
#include "local/dispatch.hpp"
#include "local/simd.hpp"

namespace lcl::local {

using graph::NodeId;
using graph::Tree;

/// A published register value: a small vector of words. Used to *construct*
/// register contents; reads return the non-owning `RegView`.
using Register = std::vector<std::int64_t>;

/// Read-only view of a published register. Views point into the engine's
/// word planes (the owner's committed side) and stay valid for the
/// duration of the current round callback; copy the words out to retain
/// them across rounds.
using RegView = std::span<const std::int64_t>;

/// Per-node output of an LCL algorithm: a primary label and an optional
/// secondary label (used by the weighted problems of Definition 22).
struct Output {
  int primary = -1;
  int secondary = -1;
};

/// A 64-byte-aligned lane of trivially-copyable elements, padded to a
/// whole number of 64-byte blocks so kernels never need a masked tail.
/// Capacity only grows (`ensure`/`assign` return true exactly when they
/// had to allocate — the workspace's allocation accounting), and
/// `assign` clears the *padding* too: the kernels treat pad elements as
/// data, so they must always hold the neutral value.
template <typename T>
class AlignedPlane {
 public:
  static constexpr std::size_t kAlign = 64;

  /// `count` rounded up to a whole number of 64-byte blocks, in
  /// elements. (Element sizes divide 64 for every lane type used here.)
  [[nodiscard]] static std::size_t padded(std::size_t count) {
    const std::size_t per = kAlign / sizeof(T);
    return (count + per - 1) / per * per;
  }

  AlignedPlane() = default;
  AlignedPlane(AlignedPlane&&) noexcept = default;
  AlignedPlane& operator=(AlignedPlane&&) noexcept = default;

  /// Guarantees capacity for `count` elements (plus block padding).
  /// Existing contents are NOT preserved across a reallocation. Returns
  /// true iff an allocation happened.
  bool ensure(std::size_t count) {
    const std::size_t need = padded(count);
    if (need <= cap_) return false;
    buf_.reset(static_cast<T*>(
        ::operator new(need * sizeof(T), std::align_val_t(kAlign))));
    cap_ = need;
    return true;
  }

  /// Sizes the plane for `count` elements and fills every element —
  /// including the block padding — with `value`. Returns true iff an
  /// allocation happened.
  bool assign(std::size_t count, T value) {
    const bool grew = ensure(count);
    std::fill_n(buf_.get(), padded(count), value);
    return grew;
  }

  [[nodiscard]] T* data() { return buf_.get(); }
  [[nodiscard]] const T* data() const { return buf_.get(); }
  [[nodiscard]] std::size_t capacity() const { return cap_; }

 private:
  struct Free {
    void operator()(T* p) const {
      ::operator delete(p, std::align_val_t(kAlign));
    }
  };
  std::unique_ptr<T, Free> buf_;
  std::size_t cap_ = 0;
};

class Engine;

/// Node-local view handed to `Program` callbacks. All information reachable
/// through a `NodeCtx` is information the node legitimately has in the
/// LOCAL model: its own identifiers/state and its neighbors' registers.
class NodeCtx {
 public:
  NodeCtx(Engine& engine, NodeId v) : engine_(engine), v_(v) {}

  [[nodiscard]] NodeId node() const { return v_; }
  [[nodiscard]] int degree() const;
  [[nodiscard]] std::int64_t local_id() const;
  [[nodiscard]] int input() const;
  /// Number of nodes in the graph (global knowledge, standard in LOCAL).
  [[nodiscard]] std::int64_t n() const;
  /// Current round number (1-based; 0 during on_init).
  [[nodiscard]] std::int64_t round() const;

  /// Neighbor's register as of the end of the previous round.
  [[nodiscard]] RegView peek(int port) const;
  /// Whether the neighbor on `port` has terminated. Like registers,
  /// terminations become visible one round after they happen (a node
  /// terminating in round r is observed from round r+1) — synchronous
  /// semantics with no same-round information leaks.
  [[nodiscard]] bool neighbor_terminated(int port) const;
  /// Neighbor's fixed output; only valid if `neighbor_terminated(port)`.
  [[nodiscard]] Output neighbor_output(int port) const;

  /// Overwrites this node's register (visible to neighbors next round).
  void publish(RegView reg);
  void publish(std::initializer_list<std::int64_t> words) {
    publish(RegView(words.begin(), words.size()));
  }
  /// Reads this node's own current register (as published).
  [[nodiscard]] RegView own() const;

  /// Terminates this node with the given output; `T_v` = current round.
  void terminate(Output out);
  void terminate(int primary, int secondary = -1) {
    terminate(Output{primary, secondary});
  }

 private:
  /// Resolves a port to the neighbor's dense index via the tree's CSR.
  [[nodiscard]] NodeId neighbor(int port) const;

  Engine& engine_;
  NodeId v_;
};

/// The engine's per-round unit of batched dispatch: a contiguous,
/// strictly increasing run of node ids (the compacted alive list).
using NodeSpan = std::span<const NodeId>;

/// Span-level view handed to the batch hooks: the whole-round
/// counterpart of `NodeCtx`, exposing the engine's SoA lanes directly
/// so a ported program can run one flat kernel over the alive span
/// instead of n virtual calls.
///
/// Aliasing rules (what keeps batch runs bit-identical to per-node
/// runs, in any processing order):
///   * Reads see the end of the *previous* round. `reg(u)` returns u's
///     committed register — a publish this round writes the staging
///     plane and only flips at the end of the round, so reads are
///     unaffected by same-round writes. `terminated_visible(u)` applies
///     the same one-round delay to terminations.
///   * The raw `terminated_lane()` view is the live flag lane: it
///     includes *same-round* terminations (the engine sets the flag
///     eagerly so double-termination is detectable). Kernels that need
///     synchronous semantics must mask it with `term_round_lane()[u] <
///     round()` — which is exactly what `terminated_visible` does.
///   * Writers (`publish*`, `terminate*`) only touch staging state
///     (staging plane, termination flags for *future* visibility), so
///     the order a kernel walks the span in cannot change what any
///     node observes this round.
/// Register views obtained through a `BatchCtx` stay valid for the
/// duration of the current hook call, exactly like `NodeCtx` views.
class BatchCtx {
 public:
  /// Number of nodes in the graph.
  [[nodiscard]] std::int64_t n() const;
  /// Current round number (1-based; 0 during on_init_batch).
  [[nodiscard]] std::int64_t round() const;
  [[nodiscard]] const Tree& tree() const;

  /// The tree's native CSR: neighbors of v are
  /// `adjacency()[offsets()[v] + port]`.
  [[nodiscard]] const std::int32_t* offsets() const;
  [[nodiscard]] const NodeId* adjacency() const;

  /// Node u's committed register (as of the end of the previous round).
  [[nodiscard]] RegView reg(NodeId u) const;
  /// Length-bounded views of the termination lanes (length n; see the
  /// aliasing rules above for the raw-flag caveat).
  [[nodiscard]] std::span<const std::uint8_t> terminated_lane() const;
  [[nodiscard]] std::span<const std::int64_t> term_round_lane() const;
  /// Whether u's termination is visible this round (synchronous
  /// semantics: a node terminating in round r is observed from r+1).
  [[nodiscard]] bool terminated_visible(NodeId u) const;
  /// u's fixed output; only meaningful if `terminated_visible(u)`.
  [[nodiscard]] Output output(NodeId u) const;

  /// Overwrites v's register (visible to neighbors next round).
  void publish(NodeId v, RegView reg);
  void publish(NodeId v, std::initializer_list<std::int64_t> words) {
    publish(v, RegView(words.begin(), words.size()));
  }
  /// Bulk publish: node `nodes[i]` publishes the `width` words at
  /// `words + i * width`. One capacity check for the whole lane.
  void publish_lane(NodeSpan nodes, const std::int64_t* words,
                    std::size_t width);

  /// Terminates v with the given output; `T_v` = current round.
  void terminate(NodeId v, Output out);
  void terminate(NodeId v, int primary, int secondary = -1) {
    terminate(v, Output{primary, secondary});
  }
  /// Bulk terminate: every node in `nodes` fixes the same output.
  void terminate_lane(NodeSpan nodes, Output out);
  /// Bulk terminate with per-node outputs: `nodes[i]` fixes
  /// `outputs[i]`.
  void terminate_lane(NodeSpan nodes, const Output* outputs);

  /// Per-node view for one node of the span — the escape hatch the
  /// default batch hooks use to replay the per-node schedule.
  [[nodiscard]] NodeCtx node_ctx(NodeId v);

 private:
  friend class Engine;
  explicit BatchCtx(Engine& engine) : engine_(engine) {}

  Engine& engine_;
};

/// A distributed algorithm. One `Program` instance serves the whole run;
/// per-node state must live in engine registers or in program-owned
/// per-node arrays (indexed by NodeId) that the program only accesses for
/// the node passed to the callback.
///
/// The per-node hooks are the reference semantics. The batch hooks are
/// the span-level fast path: their default implementations loop the
/// per-node hooks over the span in order, so overriding them is purely
/// an optimization — a correct override produces bit-identical
/// `RunStats` under `DispatchMode::kBatch` as the per-node hooks do
/// under `DispatchMode::kPerNode` (pinned by the dispatch differential
/// suites). Programs that override a batch hook should keep the
/// per-node twin intact as the pinned reference.
class Program {
 public:
  virtual ~Program() = default;
  /// Called once per node before round 1 (round() == 0). May publish and
  /// may terminate (yielding T_v = 0, i.e., constant-time termination).
  virtual void on_init(NodeCtx& ctx) = 0;
  /// Called once per round for each non-terminated node.
  virtual void on_round(NodeCtx& ctx) = 0;
  /// Batched init: called once with every node (round() == 0). Default:
  /// loops `on_init` over the span.
  virtual void on_init_batch(BatchCtx& batch, NodeSpan nodes);
  /// Batched round: called once per round with the compacted alive
  /// list. Default: loops `on_round` over the span.
  virtual void on_round_batch(BatchCtx& batch, NodeSpan nodes);
};

/// Result of a run.
///
/// Truncation. A run that hits `max_rounds` with nodes still alive is not
/// an error: the engine returns the partial measurement with
/// `truncated == true`. Every node that never terminated has its T_v
/// *censored* at `rounds` (the executed round count) — a lower bound on
/// its true termination time — its `output` stays `{-1, -1}`, and
/// `unterminated` counts such nodes. For a truncated run `node_averaged`,
/// `worst_case`, and `total_rounds` are therefore lower bounds.
struct RunStats {
  std::int64_t n = 0;
  std::int64_t rounds = 0;  ///< rounds executed
  double node_averaged = 0.0;
  std::int64_t worst_case = 0;
  std::int64_t total_rounds = 0;  ///< sum_v T_v
  bool truncated = false;         ///< hit `max_rounds` with nodes alive
  std::int64_t unterminated = 0;  ///< nodes whose T_v is censored
  std::vector<std::int64_t> termination_round;  ///< T_v per node
  std::vector<Output> output;                   ///< fixed outputs per node

  [[nodiscard]] std::vector<int> primaries() const {
    std::vector<int> p;
    p.reserve(output.size());
    for (const Output& o : output) p.push_back(o.primary);
    return p;
  }
  [[nodiscard]] std::vector<int> secondaries() const {
    std::vector<int> s;
    s.reserve(output.size());
    for (const Output& o : output) s.push_back(o.secondary);
    return s;
  }
};

/// Optional per-run measurement profile, filled by `Engine::run` when the
/// caller passes one. Collection is O(sum_v T_v) on top of the
/// simulation: the alive trajectory is one append per executed round
/// (rounds <= sum T_v once anything survives init) and the histogram is
/// one counting pass over data the engine already owns.
struct RunProfile {
  /// `alive_per_round[r]` = nodes that executed round r+1 (so index 0
  /// counts round 1). Length == `RunStats::rounds`.
  std::vector<std::int64_t> alive_per_round;
  /// `term_count[t]` = number of nodes with T_v == t, matching
  /// `RunStats::termination_round` exactly — for truncated runs this
  /// includes the survivors censored at `rounds`.
  std::vector<std::int64_t> term_count;
};

/// The synchronous engine. Construct with a graph (frozen by
/// construction — every `Tree` is) and optionally a kernel mode, `run` a
/// program; the engine enforces the synchronous schedule and records
/// termination rounds.
class Engine {
 public:
  /// Reusable per-run state (the ACL decompression_context idiom): all
  /// register planes, bookkeeping lanes, and scratch lists of a run.
  /// The first run allocates; later runs of any size that fits just
  /// re-clear, so a workspace amortizes setup across a whole sweep.
  /// One workspace serves one run at a time (nested use throws); share
  /// across threads only via one-workspace-per-thread
  /// (`tls_workspace()`).
  struct Workspace {
    /// Initial uniform register capacity (words); doubles on demand and
    /// the grown capacity is kept across runs.
    static constexpr std::int64_t kInitialCap = 8;

    /// Plane (re)allocations since construction, including mid-run
    /// capacity growth. Flat across reps == the steady state is
    /// allocation-free.
    [[nodiscard]] std::int64_t alloc_events() const {
      return alloc_events_;
    }

   private:
    friend class Engine;
    friend class NodeCtx;
    friend class BatchCtx;

    /// Sizes every lane for an n-node run and resets run state. Word
    /// planes are NOT cleared: register reads are length-bounded and
    /// lengths reset to 0, so stale words are unreachable.
    void prepare(std::int64_t n);

    AlignedPlane<std::int64_t> words[2];  ///< word planes, v at v*cap
    AlignedPlane<std::int32_t> len[2];    ///< per-plane register widths
    AlignedPlane<std::uint8_t> cur;       ///< committed-plane parity
    AlignedPlane<std::uint8_t> pub;       ///< published-this-round flag
    AlignedPlane<std::uint8_t> terminated;
    AlignedPlane<std::int64_t> term_round;
    std::vector<Output> outputs;
    std::vector<NodeId> alive;      ///< compacted in place every round
    std::vector<NodeId> published;  ///< publishers of the current round
    /// Word planes replaced by a mid-round growth, retired until the
    /// flip so outstanding RegViews keep pointing at live (committed,
    /// immutable) data.
    std::vector<AlignedPlane<std::int64_t>> retired;
    std::int64_t cap = kInitialCap;
    std::int64_t alloc_events_ = 0;
    bool in_use = false;
  };

  explicit Engine(const Tree& tree, KernelMode mode = KernelMode::kAuto,
                  DispatchMode dispatch = DispatchMode::kAuto)
      : tree_(tree), mode_(mode), dispatch_(dispatch) {}

  /// Runs `program` to completion, or until `max_rounds` rounds have
  /// executed — in which case the returned stats carry
  /// `truncated == true` and censored partials (see `RunStats`) instead
  /// of the run being thrown away. Pass `profile` to additionally collect
  /// the per-round alive trajectory and the T_v histogram. This overload
  /// uses the engine's own workspace (reused across its runs).
  RunStats run(Program& program,
               std::int64_t max_rounds = std::numeric_limits<int>::max(),
               RunProfile* profile = nullptr);

  /// Same, in a caller-owned workspace — the sweep-loop form: keep one
  /// `Workspace` per worker thread and every run after the first is
  /// allocation-free.
  RunStats run(Program& program, Workspace& ws,
               std::int64_t max_rounds = std::numeric_limits<int>::max(),
               RunProfile* profile = nullptr);

  /// Lowest-overhead form: writes the result into caller-owned stats,
  /// recycling its vectors' capacity (a warm run performs zero heap
  /// allocations in engine, workspace, or result).
  void run_into(Program& program, Workspace& ws, RunStats& stats,
                std::int64_t max_rounds = std::numeric_limits<int>::max(),
                RunProfile* profile = nullptr);

  [[nodiscard]] const Tree& tree() const { return tree_; }
  /// The mode this engine was constructed with (possibly kAuto).
  [[nodiscard]] KernelMode mode() const { return mode_; }
  /// The dispatch this engine was constructed with (possibly kAuto).
  [[nodiscard]] DispatchMode dispatch() const { return dispatch_; }

 private:
  friend class NodeCtx;
  friend class BatchCtx;

  /// The dense publish-flip kernel is used only when the publishers'
  /// id-span is at most this factor times their count, keeping the flip
  /// O(#published) even under the wide kernels.
  static constexpr std::int64_t kDenseFlipFactor = 4;

  /// Grows the word planes so a register of `width` words fits. The
  /// outgoing planes are retired (kept alive until the end of the
  /// round), so views handed out earlier this round stay valid.
  void grow(std::int64_t width);
  /// Commits this round's publishes (parity toggles) and releases any
  /// retired planes. Called at the end of init and of every round.
  void commit_publishes();
  /// End-of-round synchronous flip: commit publishes, then compact the
  /// alive list in place.
  void flip_and_compact();
  /// Points the hot-path mirrors at `ws`'s (re)prepared lanes.
  void bind(Workspace& ws);

  const Tree& tree_;
  KernelMode mode_;
  DispatchMode dispatch_;
  bool simd_ = false;   ///< resolved kernel choice for the current run
  bool batch_ = false;  ///< resolved dispatch choice for the current run
  std::int64_t round_ = 0;

  // Borrowed views of the tree's native CSR, captured at the top of each
  // run() (so reassigning the referenced Tree between runs stays safe,
  // as it was under the per-run snapshot): neighbors of v are
  // adj_[off_[v] + port]. The arrays never move during a run — topology
  // is frozen and attribute setters touch separate storage.
  const std::int32_t* off_ = nullptr;
  const NodeId* adj_ = nullptr;

  // Hot-path mirrors into the bound workspace's lanes (refreshed by
  // bind() and grow()); raw pointers so the inline NodeCtx accessors
  // are single indexations.
  Workspace* ws_ = nullptr;
  std::int64_t cap_ = Workspace::kInitialCap;
  std::int64_t* words_[2] = {nullptr, nullptr};
  std::int32_t* len_[2] = {nullptr, nullptr};
  std::uint8_t* cur_ = nullptr;
  std::uint8_t* pub_ = nullptr;
  std::uint8_t* term_ = nullptr;
  std::int64_t* term_round_ = nullptr;
  Output* outputs_ = nullptr;
  // Publisher id-range of the current round, for the dense-flip choice.
  std::size_t pub_lo_ = 0;
  std::size_t pub_hi_ = 0;

  Workspace own_ws_;  ///< backs the workspace-less run() overload
};

/// This thread's shared workspace: one per thread, reused by every
/// engine run routed through it (`core::BatchRunner` jobs, the solver
/// registry's `run_registered`). Do not run two engines on it at once —
/// the engine throws if a run is already in flight.
[[nodiscard]] Engine::Workspace& tls_workspace();

// NodeCtx accessors are on the per-node-per-round hot path; they are
// defined inline here so simulation loops don't pay a cross-TU call per
// register read.

inline int NodeCtx::degree() const {
  return static_cast<int>(engine_.off_[static_cast<std::size_t>(v_) + 1] -
                          engine_.off_[static_cast<std::size_t>(v_)]);
}

inline std::int64_t NodeCtx::local_id() const {
  return engine_.tree_.local_id(v_);
}

inline int NodeCtx::input() const { return engine_.tree_.input(v_); }

inline std::int64_t NodeCtx::n() const { return engine_.tree_.size(); }

inline std::int64_t NodeCtx::round() const { return engine_.round_; }

inline NodeId NodeCtx::neighbor(int port) const {
  return engine_.adj_[static_cast<std::size_t>(
                          engine_.off_[static_cast<std::size_t>(v_)]) +
                      static_cast<std::size_t>(port)];
}

inline RegView NodeCtx::peek(int port) const {
  const auto u = static_cast<std::size_t>(neighbor(port));
  const int plane = engine_.cur_[u];
  return {engine_.words_[plane] + u * static_cast<std::size_t>(engine_.cap_),
          static_cast<std::size_t>(engine_.len_[plane][u])};
}

inline bool NodeCtx::neighbor_terminated(int port) const {
  const auto u = static_cast<std::size_t>(neighbor(port));
  // Terminations become visible one round after they happen (synchronous
  // semantics): a node terminating in round r is observed from round r+1.
  return engine_.term_[u] != 0 && engine_.term_round_[u] < engine_.round_;
}

inline RegView NodeCtx::own() const {
  const auto v = static_cast<std::size_t>(v_);
  const int plane = engine_.cur_[v];
  return {engine_.words_[plane] + v * static_cast<std::size_t>(engine_.cap_),
          static_cast<std::size_t>(engine_.len_[plane][v])};
}

inline void NodeCtx::publish(RegView reg) {
  Engine& e = engine_;
  const std::int64_t width = static_cast<std::int64_t>(reg.size());
  if (width > e.cap_) e.grow(width);
  const auto v = static_cast<std::size_t>(v_);
  const int staging = e.cur_[v] ^ 1;
  if (width != 0) {
    std::memcpy(e.words_[staging] + v * static_cast<std::size_t>(e.cap_),
                reg.data(),
                static_cast<std::size_t>(width) * sizeof(std::int64_t));
  }
  e.len_[staging][v] = static_cast<std::int32_t>(width);
  if (e.pub_[v] == 0) {
    e.pub_[v] = 1;
    e.ws_->published.push_back(v_);
    e.pub_lo_ = std::min(e.pub_lo_, v);
    e.pub_hi_ = std::max(e.pub_hi_, v);
  }
}

// BatchCtx accessors share the hot-path mirrors with NodeCtx; the
// single-node writers are exactly the NodeCtx ones with the id made
// explicit, so both dispatch modes go through one definition of the
// publish/terminate bookkeeping.

inline std::int64_t BatchCtx::n() const { return engine_.tree_.size(); }

inline std::int64_t BatchCtx::round() const { return engine_.round_; }

inline const Tree& BatchCtx::tree() const { return engine_.tree_; }

inline const std::int32_t* BatchCtx::offsets() const {
  return engine_.off_;
}

inline const NodeId* BatchCtx::adjacency() const { return engine_.adj_; }

inline RegView BatchCtx::reg(NodeId u) const {
  const auto i = static_cast<std::size_t>(u);
  const int plane = engine_.cur_[i];
  return {engine_.words_[plane] + i * static_cast<std::size_t>(engine_.cap_),
          static_cast<std::size_t>(engine_.len_[plane][i])};
}

inline std::span<const std::uint8_t> BatchCtx::terminated_lane() const {
  return {engine_.term_, static_cast<std::size_t>(engine_.tree_.size())};
}

inline std::span<const std::int64_t> BatchCtx::term_round_lane() const {
  return {engine_.term_round_,
          static_cast<std::size_t>(engine_.tree_.size())};
}

inline bool BatchCtx::terminated_visible(NodeId u) const {
  const auto i = static_cast<std::size_t>(u);
  return engine_.term_[i] != 0 && engine_.term_round_[i] < engine_.round_;
}

inline Output BatchCtx::output(NodeId u) const {
  return engine_.outputs_[static_cast<std::size_t>(u)];
}

inline void BatchCtx::publish(NodeId v, RegView reg) {
  NodeCtx ctx(engine_, v);
  ctx.publish(reg);
}

inline NodeCtx BatchCtx::node_ctx(NodeId v) {
  return NodeCtx(engine_, v);
}

}  // namespace lcl::local
