// Synchronous LOCAL-model simulator.
//
// Model. Computation proceeds in synchronous rounds over a fixed
// bounded-degree graph. Every node holds a *published register* (a small
// vector of words) that all neighbors can read. In round r each
// non-terminated node (a) reads its neighbors' registers as of the end of
// round r-1, (b) updates its own register, and (c) may *terminate* by
// fixing its output. A terminated node stops computing, but its final
// register stays readable — the standard termination semantics under which
// node-averaged complexity is defined (Section 2 of the paper).
//
// The engine records T_v = the round in which v terminated; the
// node-averaged complexity of a run is (1/n) * sum_v T_v, and the
// worst-case complexity is max_v T_v.
//
// Algorithms implement `Program`. The per-round cost of the engine is
// O(#alive nodes), so the total simulation cost is O(sum_v T_v) — exactly
// the quantity the paper's theorems bound, which keeps fast instances fast.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/tree.hpp"

namespace lcl::local {

using graph::NodeId;
using graph::Tree;

/// A published register: a small vector of words readable by neighbors.
using Register = std::vector<std::int64_t>;

/// Per-node output of an LCL algorithm: a primary label and an optional
/// secondary label (used by the weighted problems of Definition 22).
struct Output {
  int primary = -1;
  int secondary = -1;
};

class Engine;

/// Node-local view handed to `Program` callbacks. All information reachable
/// through a `NodeCtx` is information the node legitimately has in the
/// LOCAL model: its own identifiers/state and its neighbors' registers.
class NodeCtx {
 public:
  NodeCtx(Engine& engine, NodeId v) : engine_(engine), v_(v) {}

  [[nodiscard]] NodeId node() const { return v_; }
  [[nodiscard]] int degree() const;
  [[nodiscard]] std::int64_t local_id() const;
  [[nodiscard]] int input() const;
  /// Number of nodes in the graph (global knowledge, standard in LOCAL).
  [[nodiscard]] std::int64_t n() const;
  /// Current round number (1-based; 0 during on_init).
  [[nodiscard]] std::int64_t round() const;

  /// Neighbor's register as of the end of the previous round.
  [[nodiscard]] const Register& peek(int port) const;
  /// Whether the neighbor on `port` has terminated. Like registers,
  /// terminations become visible one round after they happen (a node
  /// terminating in round r is observed from round r+1) — synchronous
  /// semantics with no same-round information leaks.
  [[nodiscard]] bool neighbor_terminated(int port) const;
  /// Neighbor's fixed output; only valid if `neighbor_terminated(port)`.
  [[nodiscard]] Output neighbor_output(int port) const;

  /// Overwrites this node's register (visible to neighbors next round).
  void publish(Register reg);
  /// Reads this node's own current register (as published).
  [[nodiscard]] const Register& own() const;

  /// Terminates this node with the given output; `T_v` = current round.
  void terminate(Output out);
  void terminate(int primary, int secondary = -1) {
    terminate(Output{primary, secondary});
  }

 private:
  Engine& engine_;
  NodeId v_;
};

/// A distributed algorithm. One `Program` instance serves the whole run;
/// per-node state must live in engine registers or in program-owned
/// per-node arrays (indexed by NodeId) that the program only accesses for
/// the node passed to the callback.
class Program {
 public:
  virtual ~Program() = default;
  /// Called once per node before round 1 (round() == 0). May publish and
  /// may terminate (yielding T_v = 0, i.e., constant-time termination).
  virtual void on_init(NodeCtx& ctx) = 0;
  /// Called once per round for each non-terminated node.
  virtual void on_round(NodeCtx& ctx) = 0;
};

/// Result of a run.
struct RunStats {
  std::int64_t n = 0;
  std::int64_t rounds = 0;  ///< rounds executed until all terminated
  double node_averaged = 0.0;
  std::int64_t worst_case = 0;
  std::int64_t total_rounds = 0;  ///< sum_v T_v
  std::vector<std::int64_t> termination_round;  ///< T_v per node
  std::vector<Output> output;                   ///< fixed outputs per node

  [[nodiscard]] std::vector<int> primaries() const {
    std::vector<int> p;
    p.reserve(output.size());
    for (const Output& o : output) p.push_back(o.primary);
    return p;
  }
  [[nodiscard]] std::vector<int> secondaries() const {
    std::vector<int> s;
    s.reserve(output.size());
    for (const Output& o : output) s.push_back(o.secondary);
    return s;
  }
};

/// The synchronous engine. Construct with a finalized graph, `run` a
/// program; the engine enforces the synchronous schedule and records
/// termination rounds.
class Engine {
 public:
  explicit Engine(const Tree& tree) : tree_(tree) {
    if (!tree.finalized()) {
      throw std::invalid_argument("Engine: tree must be finalized");
    }
  }

  /// Runs `program` to completion (or `max_rounds`). Throws if any node
  /// fails to terminate within the bound.
  RunStats run(Program& program,
               std::int64_t max_rounds = std::numeric_limits<int>::max());

  [[nodiscard]] const Tree& tree() const { return tree_; }

 private:
  friend class NodeCtx;

  const Tree& tree_;
  std::int64_t round_ = 0;
  // Double-buffered registers: reads see prev_, writes go to next_.
  std::vector<Register> prev_;
  std::vector<Register> next_;
  std::vector<bool> terminated_;
  std::vector<Output> outputs_;
  std::vector<std::int64_t> term_round_;
};

}  // namespace lcl::local
