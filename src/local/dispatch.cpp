#include "local/dispatch.hpp"

#include <atomic>

namespace lcl::local {

namespace {

std::atomic<DispatchMode> g_default_dispatch{DispatchMode::kAuto};

}  // namespace

DispatchMode default_dispatch_mode() {
  return g_default_dispatch.load(std::memory_order_relaxed);
}

void set_default_dispatch_mode(DispatchMode mode) {
  g_default_dispatch.store(mode, std::memory_order_relaxed);
}

DispatchMode resolve_dispatch_mode(DispatchMode mode) {
  if (mode == DispatchMode::kAuto) mode = default_dispatch_mode();
  // Batch dispatch with the default hooks replays the per-node schedule
  // exactly (see Program::on_round_batch), so the resolved default is
  // the batched loop: ported programs get their kernels, everything
  // else is bit-identical.
  if (mode == DispatchMode::kAuto) mode = DispatchMode::kBatch;
  return mode;
}

const char* dispatch_mode_name(DispatchMode mode) {
  switch (mode) {
    case DispatchMode::kPerNode:
      return "pernode";
    case DispatchMode::kBatch:
      return "batch";
    case DispatchMode::kAuto:
      return "auto";
  }
  return "auto";
}

bool parse_dispatch_mode(const std::string& text, DispatchMode& out) {
  if (text == "pernode") {
    out = DispatchMode::kPerNode;
    return true;
  }
  if (text == "batch") {
    out = DispatchMode::kBatch;
    return true;
  }
  if (text == "auto") {
    out = DispatchMode::kAuto;
    return true;
  }
  return false;
}

}  // namespace lcl::local
