// Instance builders: every graph family used by the paper's upper- and
// lower-bound arguments, plus the generic tree shapes swept by the
// instance-family registry (families.hpp).
//
//  * paths and caterpillars (baselines, Feuilloley-style path results);
//  * balanced Delta-regular weight trees (Lemma 23);
//  * the k-hierarchical lower-bound graph of Definition 18 (Figure 3);
//  * the weighted construction of Definition 25 (Figure 4);
//  * spiders, brooms, and binary-with-pendant-path hybrids (mixed
//    rake/compress workloads);
//  * random trees: degree-capped attachment, Galton-Watson branching,
//    and degree-capped Prüfer-sequence labeled trees.
//
// All builders construct through the calling thread's reusable
// `TreeBuilder` arena (tls_build_arena), so sweeps that build thousands
// of instances do not reallocate adjacency scaffolding per run.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/tree.hpp"

namespace lcl::graph {

/// Input labels shared by the weighted problem families (Definition 22).
enum class WeightInput : int {
  kActive = 0,  ///< node participates in the hierarchical coloring
  kWeight = 1,  ///< node only propagates/declines secondary outputs
};

/// A path on `n` nodes (node i adjacent to i+1).
[[nodiscard]] Tree make_path(NodeId n);

/// A cycle is never a tree; provided for checker edge-case tests only.
/// Built with `TreeBuilder::finalize_graph`, so the result carries the
/// explicit `forest_checked() == false` flag.
[[nodiscard]] Tree make_cycle(NodeId n);

/// A star with `leaves` leaves (center = node 0).
[[nodiscard]] Tree make_star(NodeId leaves);

/// A complete (Delta-1)-ary rooted tree ("balanced Delta-regular tree"):
/// every internal node has Delta-1 children (the root too; its parent port
/// is reserved for the attachment edge), truncated to exactly `w` nodes in
/// BFS order. Root = node 0. This is the weight-tree shape of Lemma 23.
[[nodiscard]] Tree make_balanced_weight_tree(NodeId w, int delta);

/// Result of building a hierarchical instance: the tree plus the
/// by-construction level of every node (1..k; level k+1 never occurs in
/// these instances) for test cross-validation against the peeling process.
struct HierarchicalInstance {
  Tree tree;
  std::vector<int> intended_level;  ///< size n, values in [1, k]
  int k = 0;
  std::vector<std::int64_t> path_lengths;  ///< ell_1..ell_k actually used
};

/// Definition 18 (Figure 3): the k-hierarchical lower-bound graph.
///
/// Starts from a level-k path of length ell[k-1]; then, for each level
/// i = k-1..1, attaches to every node of every level-(i+1) path a fresh
/// path of length ell[i-1] (connected by one endpoint).
///
/// `ell` must have exactly k entries, all >= 1.
[[nodiscard]] HierarchicalInstance make_hierarchical_lower_bound(
    const std::vector<std::int64_t>& ell);

/// Definition 25 (Figure 4): the weighted construction for Pi^Z_{Delta,d,k}.
///
/// Builds the Definition-18 skeleton with n' ~ n/k nodes using path lengths
/// ell'_i = ell_i / k^{1/k}, marks all its nodes Active, then distributes
/// ~n/k Weight nodes per level i in {2..k} as balanced Delta-regular trees
/// hanging evenly off the level-i skeleton nodes.
struct WeightedInstance {
  Tree tree;
  std::vector<int> intended_level;  ///< 0 for weight nodes, 1..k for active
  int k = 0;
  int delta = 0;
  NodeId active_count = 0;
  NodeId weight_count = 0;
  /// The ell'_i = ell_i / k^{1/k} actually used for the skeleton; solvers
  /// that want the Decline regime set gamma_i to these.
  std::vector<std::int64_t> skeleton_lengths;
};

[[nodiscard]] WeightedInstance make_weighted_construction(
    const std::vector<std::int64_t>& ell, int delta);

/// A caterpillar: a spine path of length `spine` with `legs` pendant
/// leaves per spine node. Useful as a mixed rake/compress workload.
[[nodiscard]] Tree make_caterpillar(NodeId spine, int legs);

/// A spider: `legs` paths of `leg_len` nodes each, all attached to a
/// common center (node 0). Degree of the center is `legs`.
[[nodiscard]] Tree make_spider(int legs, NodeId leg_len);

/// A broom: a handle path of `handle` nodes (0..handle-1) whose far end
/// carries `bristles` pendant leaves. Compress-then-rake in one shape.
[[nodiscard]] Tree make_broom(NodeId handle, NodeId bristles);

/// A complete binary tree on `core` nodes (BFS order, root 0) whose
/// leaves each carry a pendant path; pendant lengths are balanced so the
/// instance has exactly `core + pendant_total` nodes. High-diameter
/// low-degree hybrid of the Figure-3 shape.
[[nodiscard]] Tree make_binary_with_pendant_paths(NodeId core,
                                                  NodeId pendant_total);

/// A uniformly random tree with max degree <= delta, built by a
/// degree-capped random attachment process (deterministic given `seed`).
[[nodiscard]] Tree make_random_tree(NodeId n, int delta, std::uint64_t seed);

/// A Galton-Watson branching tree capped at degree `delta`, grown in BFS
/// order with uniform offspring counts in [0, delta-1]; when the process
/// goes extinct before `n` nodes, growth restarts from a uniformly random
/// node with spare degree, so the result is always a connected tree on
/// exactly `n` nodes. Deterministic given `seed`.
[[nodiscard]] Tree make_galton_watson_tree(NodeId n, int delta,
                                           std::uint64_t seed);

/// A random labeled tree decoded from a Prüfer sequence. With
/// `delta == 0` the sequence is uniform (a uniformly random labeled
/// tree); otherwise each label is resampled while it would exceed
/// delta-1 occurrences, capping every degree at `delta`. Deterministic
/// given `seed`. Requires delta == 0 or delta >= 2.
[[nodiscard]] Tree make_prufer_tree(NodeId n, int delta, std::uint64_t seed);

/// ID assignment strategies. All preserve distinctness.
enum class IdScheme {
  kSequential,   ///< id(v) = v
  kShuffled,     ///< random permutation of [0, n)
  kBlockOffset,  ///< id(v) = v + offset (disjoint blocks across instances)
};

/// Re-assigns LOCAL IDs according to `scheme`.
void assign_ids(Tree& t, IdScheme scheme, std::uint64_t seed_or_offset = 0);

}  // namespace lcl::graph
