// Bounded-degree tree/forest substrate for the LOCAL simulator.
//
// All LCL instances in this library live on (forests of) trees with a
// constant maximum degree. Nodes are dense indices [0, n); every node
// additionally carries a distinct LOCAL-model identifier (ID) that
// algorithms may use for symmetry breaking, and an input label drawn from
// the instance's finite input alphabet (stored as a small integer).
//
// Storage. `Tree` is CSR-native and topologically immutable: adjacency is
// one flat neighbor array plus an (n+1)-entry offset array, so
// `neighbors(v)` is an O(1) span into contiguous memory and the whole
// structure is three large allocations instead of n small ones. The
// simulator and every solver/checker read this CSR directly — nothing
// snapshots or re-walks adjacency per run. Construction goes through
// `TreeBuilder`, a reusable arena that records edges and emits a frozen
// `Tree` from `finalize()`; per-node IDs and input labels remain settable
// on the finished `Tree` (they are instance attributes, not topology).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace lcl::graph {

/// Dense node index, 0-based. Distinct from the LOCAL-model identifier.
using NodeId = std::int32_t;

/// LOCAL-model identifier; algorithms may only compare/inspect these.
using LocalId = std::int64_t;

constexpr NodeId kInvalidNode = -1;

class TreeBuilder;

/// An undirected bounded-degree forest in frozen CSR form, with per-node
/// LOCAL IDs and per-node small-integer input labels.
///
/// Topology is immutable from birth: instances come from
/// `TreeBuilder::finalize()` (or the isolated-nodes constructor), and the
/// neighbor order of `v` — its port numbering — is the order in which
/// `v`'s edges were added to the builder.
class Tree {
 public:
  /// The empty graph.
  Tree() = default;

  /// `n` isolated nodes, IDs preset to 0..n-1.
  explicit Tree(NodeId n) {
    if (n < 0) throw std::invalid_argument("Tree: negative node count");
    offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
    ids_.resize(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) ids_[static_cast<std::size_t>(v)] = v;
    inputs_.assign(static_cast<std::size_t>(n), 0);
  }

  /// Number of nodes.
  [[nodiscard]] NodeId size() const {
    return static_cast<NodeId>(ids_.size());
  }

  /// Neighbors of `v` (stable order; order is part of the port numbering).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
    check_node(v);
    const std::size_t lo =
        static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
    const std::size_t hi =
        static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v) + 1]);
    return {neighbors_.data() + lo, hi - lo};
  }

  /// Degree of `v`. O(1).
  [[nodiscard]] int degree(NodeId v) const {
    check_node(v);
    return static_cast<int>(offsets_[static_cast<std::size_t>(v) + 1] -
                            offsets_[static_cast<std::size_t>(v)]);
  }

  /// The raw CSR offset array (n+1 entries; neighbors of `v` occupy
  /// [offsets()[v], offsets()[v+1]) of `adjacency()`). Consumers on hot
  /// paths (the engine, bw's EdgeIndex) index these directly.
  [[nodiscard]] std::span<const std::int32_t> offsets() const {
    return offsets_;
  }

  /// The flat neighbor array (2m entries, port-ordered per node).
  [[nodiscard]] std::span<const NodeId> adjacency() const {
    return neighbors_;
  }

  /// LOCAL identifier of `v`.
  [[nodiscard]] LocalId local_id(NodeId v) const {
    check_node(v);
    return ids_[static_cast<std::size_t>(v)];
  }

  /// The flat LOCAL-id lane (indexed by NodeId) — what batch kernels
  /// read instead of n bounds-checked `local_id` calls.
  [[nodiscard]] std::span<const LocalId> local_ids() const {
    return ids_;
  }

  /// Overrides the LOCAL identifier of `v` (IDs must stay distinct;
  /// enforced by `validate_ids`).
  void set_local_id(NodeId v, LocalId id) {
    check_node(v);
    ids_[static_cast<std::size_t>(v)] = id;
  }

  /// Small-integer input label of `v` (meaning defined by the LCL).
  [[nodiscard]] int input(NodeId v) const {
    check_node(v);
    return inputs_[static_cast<std::size_t>(v)];
  }

  /// Sets the input label of `v`.
  void set_input(NodeId v, int label) {
    check_node(v);
    inputs_[static_cast<std::size_t>(v)] = label;
  }

  /// Maximum degree over all nodes (0 for the empty graph). O(1):
  /// precomputed at finalize time.
  [[nodiscard]] int max_degree() const { return max_degree_; }

  /// Number of undirected edges. O(1).
  [[nodiscard]] std::int64_t edge_count() const {
    return static_cast<std::int64_t>(neighbors_.size()) / 2;
  }

  /// True unless the instance was built with
  /// `TreeBuilder::finalize_graph`, which skips the acyclicity proof.
  /// Cycle instances (checker edge-case tests) report false here — the
  /// explicit "not necessarily a tree" flag.
  [[nodiscard]] bool forest_checked() const { return forest_checked_; }

  /// Throws unless all LOCAL IDs are pairwise distinct.
  void validate_ids() const;

  /// True iff the graph is acyclic (a forest). O(n).
  [[nodiscard]] bool is_forest() const;

  /// True iff the graph is connected and acyclic. O(n).
  [[nodiscard]] bool is_tree() const;

 private:
  friend class TreeBuilder;

  void check_node(NodeId v) const {
    if (v < 0 || v >= size()) {
      throw std::out_of_range("Tree: node index " + std::to_string(v));
    }
  }

  std::vector<std::int32_t> offsets_;  ///< n+1 entries (empty when n == 0)
  std::vector<NodeId> neighbors_;     ///< flat, 2m entries
  std::vector<LocalId> ids_;
  std::vector<int> inputs_;
  int max_degree_ = 0;
  bool forest_checked_ = true;
};

/// Mutable construction arena for `Tree`.
///
/// Records nodes, edges, IDs, and inputs, then `finalize()` validates the
/// instance (node ranges, no self-loops, no duplicate edges, optional
/// degree cap, acyclicity via union-find) and emits a frozen CSR `Tree` in
/// one O(n + m) pass. The builder's buffers — edge lists and all
/// validation scratch — survive `reset()`, so a reused builder performs no
/// heap allocation in steady state; only the emitted `Tree`'s own
/// exact-size arrays are allocated per build. `tls_build_arena()` hands
/// every thread one such reusable builder, which is what the instance
/// builders and the sweep engine route through.
class TreeBuilder {
 public:
  TreeBuilder() = default;
  explicit TreeBuilder(NodeId n) { reset(n); }

  /// Clears and re-creates `n` isolated nodes with identity IDs and zero
  /// inputs. Keeps buffer capacity.
  void reset(NodeId n) {
    if (n < 0) throw std::invalid_argument("TreeBuilder: negative node count");
    n_ = n;
    edge_u_.clear();
    edge_v_.clear();
    ids_.resize(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) ids_[static_cast<std::size_t>(v)] = v;
    inputs_.assign(static_cast<std::size_t>(n), 0);
  }

  /// Number of nodes so far.
  [[nodiscard]] NodeId size() const { return n_; }

  /// Appends a fresh isolated node and returns its index.
  NodeId add_node() {
    ids_.push_back(static_cast<LocalId>(n_));
    inputs_.push_back(0);
    return n_++;
  }

  /// Records an undirected edge. Validates node ranges and rejects
  /// self-loops immediately; duplicate edges are caught at `finalize()`.
  void add_edge(NodeId u, NodeId v) {
    check_node(u);
    check_node(v);
    if (u == v) throw std::invalid_argument("TreeBuilder: self-loop");
    edge_u_.push_back(u);
    edge_v_.push_back(v);
  }

  /// Sets the LOCAL identifier carried into the finished `Tree`.
  void set_local_id(NodeId v, LocalId id) {
    check_node(v);
    ids_[static_cast<std::size_t>(v)] = id;
  }

  /// Sets the input label carried into the finished `Tree`.
  void set_input(NodeId v, int label) {
    check_node(v);
    inputs_[static_cast<std::size_t>(v)] = label;
  }

  /// Input label of `v` as currently recorded.
  [[nodiscard]] int input(NodeId v) const {
    check_node(v);
    return inputs_[static_cast<std::size_t>(v)];
  }

  /// Validates and emits a frozen forest. Throws on duplicate edges, on a
  /// cycle, and (when `max_degree` > 0) on any node exceeding the cap.
  /// The builder keeps its buffers and can be `reset()` for the next
  /// build.
  [[nodiscard]] Tree finalize(int max_degree = 0) {
    return build(max_degree, /*forest_flag=*/true, /*verify=*/true);
  }

  /// Like `finalize` but permits cycles: the emitted instance reports
  /// `forest_checked() == false`. For checker edge-case graphs
  /// (`make_cycle`) only; every tree family goes through `finalize`.
  [[nodiscard]] Tree finalize_graph(int max_degree = 0) {
    return build(max_degree, /*forest_flag=*/false, /*verify=*/true);
  }

  /// For callers that can prove structurally that the recorded edges are
  /// a duplicate-free forest — e.g. `induced_subgraph` of a verified
  /// forest, whose edges are a subset of the parent's. Emits with
  /// `forest_checked() == true` but skips the duplicate-edge and
  /// acyclicity passes. Prefer `finalize()` everywhere else.
  [[nodiscard]] Tree finalize_known_forest(int max_degree = 0) {
    return build(max_degree, /*forest_flag=*/true, /*verify=*/false);
  }

 private:
  void check_node(NodeId v) const {
    if (v < 0 || v >= n_) {
      throw std::out_of_range("TreeBuilder: node index " +
                              std::to_string(v));
    }
  }

  Tree build(int max_degree, bool forest_flag, bool verify);

  NodeId n_ = 0;
  std::vector<NodeId> edge_u_;
  std::vector<NodeId> edge_v_;
  std::vector<LocalId> ids_;
  std::vector<int> inputs_;
  // finalize() scratch, reused across builds.
  std::vector<std::int32_t> fill_;
  std::vector<NodeId> dsu_;
  std::vector<NodeId> stamp_;
};

/// The calling thread's reusable build arena. All `make_*` instance
/// builders and the family registry route construction through this, so
/// batched sweeps (one builder per worker thread) stop reallocating
/// adjacency scaffolding between jobs. Direct users must not call other
/// arena-building helpers mid-build; library code goes through
/// `ArenaLease`, which detects that mistake.
[[nodiscard]] TreeBuilder& tls_build_arena();

/// RAII checkout of `tls_build_arena()`, reset to `n` nodes. Two live
/// leases on one thread mean a nested build is about to clobber the
/// outer builder's recorded state — the constructor throws
/// `std::logic_error` instead of corrupting silently. Every library
/// builder (`make_*`, `induced_subgraph`, the family registry) acquires
/// one for exactly the duration of its construction.
class ArenaLease {
 public:
  explicit ArenaLease(NodeId n);
  ~ArenaLease();
  ArenaLease(const ArenaLease&) = delete;
  ArenaLease& operator=(const ArenaLease&) = delete;

  [[nodiscard]] TreeBuilder& operator*() const { return b_; }
  [[nodiscard]] TreeBuilder* operator->() const { return &b_; }

 private:
  TreeBuilder& b_;
};

/// The subgraph induced by {v : keep[v] != 0}, renumbered densely in
/// increasing node order. Input labels are copied from the parent; LOCAL
/// IDs are reset to the dense index (callers deriving LOCAL-visible
/// sub-instances re-assign as needed). `from_sub`/`to_sub`, when non-null,
/// receive the sub->parent and parent->sub (kInvalidNode when dropped)
/// index maps. Built through the thread's arena.
[[nodiscard]] Tree induced_subgraph(const Tree& t,
                                    const std::vector<char>& keep,
                                    std::vector<NodeId>* from_sub = nullptr,
                                    std::vector<NodeId>* to_sub = nullptr);

/// Breadth-first distances from `source`; unreachable nodes get -1.
[[nodiscard]] std::vector<int> bfs_distances(const Tree& t,
                                             NodeId source);

/// Collects all nodes within distance `radius` of `v` (including `v`).
[[nodiscard]] std::vector<NodeId> ball(const Tree& t, NodeId v, int radius);

/// Connected components: returns (component index per node, #components).
[[nodiscard]] std::pair<std::vector<int>, int> components(const Tree& t);

}  // namespace lcl::graph
