// Bounded-degree tree/forest substrate for the LOCAL simulator.
//
// All LCL instances in this library live on (forests of) trees with a
// constant maximum degree. Nodes are dense indices [0, n); every node
// additionally carries a distinct LOCAL-model identifier (ID) that
// algorithms may use for symmetry breaking, and an input label drawn from
// the instance's finite input alphabet (stored as a small integer).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace lcl::graph {

/// Dense node index, 0-based. Distinct from the LOCAL-model identifier.
using NodeId = std::int32_t;

/// LOCAL-model identifier; algorithms may only compare/inspect these.
using LocalId = std::int64_t;

constexpr NodeId kInvalidNode = -1;

/// An undirected bounded-degree forest with O(1)-degree adjacency lists,
/// per-node LOCAL IDs, and per-node small-integer input labels.
///
/// The structure is immutable after `finalize()`; the simulator and all
/// checkers assume a frozen topology.
class Tree {
 public:
  Tree() = default;

  /// Creates a graph with `n` isolated nodes, IDs preset to 0..n-1.
  explicit Tree(NodeId n) { reset(n); }

  /// Clears and re-creates `n` isolated nodes with identity IDs.
  void reset(NodeId n) {
    if (n < 0) throw std::invalid_argument("Tree: negative node count");
    adjacency_.assign(static_cast<std::size_t>(n), {});
    ids_.resize(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) ids_[static_cast<std::size_t>(v)] = v;
    inputs_.assign(static_cast<std::size_t>(n), 0);
    finalized_ = false;
  }

  /// Number of nodes.
  [[nodiscard]] NodeId size() const {
    return static_cast<NodeId>(adjacency_.size());
  }

  /// Adds an undirected edge. Only valid before `finalize()`.
  void add_edge(NodeId u, NodeId v) {
    if (finalized_) throw std::logic_error("Tree: add_edge after finalize");
    check_node(u);
    check_node(v);
    if (u == v) throw std::invalid_argument("Tree: self-loop");
    adjacency_[static_cast<std::size_t>(u)].push_back(v);
    adjacency_[static_cast<std::size_t>(v)].push_back(u);
  }

  /// Appends a fresh isolated node and returns its index.
  NodeId add_node() {
    if (finalized_) throw std::logic_error("Tree: add_node after finalize");
    adjacency_.emplace_back();
    ids_.push_back(static_cast<LocalId>(ids_.size()));
    inputs_.push_back(0);
    return size() - 1;
  }

  /// Freezes the topology and validates bounded degree / forest-ness.
  /// `max_degree` of 0 skips the degree check.
  void finalize(int max_degree = 0) {
    std::size_t edge_twice = 0;
    for (NodeId v = 0; v < size(); ++v) {
      const auto& nb = neighbors(v);
      edge_twice += nb.size();
      if (max_degree > 0 &&
          nb.size() > static_cast<std::size_t>(max_degree)) {
        throw std::logic_error("Tree: node " + std::to_string(v) +
                               " exceeds max degree " +
                               std::to_string(max_degree));
      }
    }
    // A forest on n nodes has at most n-1 edges; cycles are caught by the
    // connected-component acyclicity check below.
    if (edge_twice / 2 >= static_cast<std::size_t>(size()) + 1) {
      throw std::logic_error("Tree: too many edges for a forest");
    }
    finalized_ = true;
  }

  /// Neighbors of `v` (stable order; order is part of the port numbering).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
    check_node(v);
    return adjacency_[static_cast<std::size_t>(v)];
  }

  /// Degree of `v`.
  [[nodiscard]] int degree(NodeId v) const {
    return static_cast<int>(neighbors(v).size());
  }

  /// LOCAL identifier of `v`.
  [[nodiscard]] LocalId local_id(NodeId v) const {
    check_node(v);
    return ids_[static_cast<std::size_t>(v)];
  }

  /// Overrides the LOCAL identifier of `v` (IDs must stay distinct;
  /// enforced by `validate_ids`).
  void set_local_id(NodeId v, LocalId id) {
    check_node(v);
    ids_[static_cast<std::size_t>(v)] = id;
  }

  /// Small-integer input label of `v` (meaning defined by the LCL).
  [[nodiscard]] int input(NodeId v) const {
    check_node(v);
    return inputs_[static_cast<std::size_t>(v)];
  }

  /// Sets the input label of `v`.
  void set_input(NodeId v, int label) {
    check_node(v);
    inputs_[static_cast<std::size_t>(v)] = label;
  }

  /// Maximum degree over all nodes (0 for the empty graph).
  [[nodiscard]] int max_degree() const {
    int dmax = 0;
    for (NodeId v = 0; v < size(); ++v) dmax = std::max(dmax, degree(v));
    return dmax;
  }

  /// Number of undirected edges.
  [[nodiscard]] std::int64_t edge_count() const {
    std::int64_t twice = 0;
    for (NodeId v = 0; v < size(); ++v) twice += degree(v);
    return twice / 2;
  }

  /// True once `finalize()` has been called.
  [[nodiscard]] bool finalized() const { return finalized_; }

  /// Throws unless all LOCAL IDs are pairwise distinct.
  void validate_ids() const;

  /// True iff the graph is acyclic (a forest). O(n).
  [[nodiscard]] bool is_forest() const;

  /// True iff the graph is connected and acyclic. O(n).
  [[nodiscard]] bool is_tree() const;

 private:
  void check_node(NodeId v) const {
    if (v < 0 || v >= size()) {
      throw std::out_of_range("Tree: node index " + std::to_string(v));
    }
  }

  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<LocalId> ids_;
  std::vector<int> inputs_;
  bool finalized_ = false;
};

/// Breadth-first distances from `source`; unreachable nodes get -1.
[[nodiscard]] std::vector<int> bfs_distances(const Tree& t,
                                             NodeId source);

/// Collects all nodes within distance `radius` of `v` (including `v`).
[[nodiscard]] std::vector<NodeId> ball(const Tree& t, NodeId v, int radius);

/// Connected components: returns (component index per node, #components).
[[nodiscard]] std::pair<std::vector<int>, int> components(const Tree& t);

}  // namespace lcl::graph
