#include "graph/tree.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace lcl::graph {

namespace {

/// Union-find root with path halving; `parent` is the builder's reused
/// scratch.
NodeId dsu_find(std::vector<NodeId>& parent, NodeId v) {
  while (parent[static_cast<std::size_t>(v)] != v) {
    parent[static_cast<std::size_t>(v)] =
        parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])];
    v = parent[static_cast<std::size_t>(v)];
  }
  return v;
}

}  // namespace

Tree TreeBuilder::build(int max_degree, bool forest_flag, bool verify) {
  const std::size_t n = static_cast<std::size_t>(n_);
  const std::size_t m = edge_u_.size();

  Tree t;
  t.forest_checked_ = forest_flag;

  // Degree counts -> exclusive prefix sum. The Tree's own arrays are
  // exact-size fresh allocations (the Tree owns them); everything else
  // below is reused builder scratch.
  t.offsets_.assign(n + 1, 0);
  for (std::size_t e = 0; e < m; ++e) {
    ++t.offsets_[static_cast<std::size_t>(edge_u_[e]) + 1];
    ++t.offsets_[static_cast<std::size_t>(edge_v_[e]) + 1];
  }
  int dmax = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::int32_t deg = t.offsets_[v + 1];
    dmax = std::max(dmax, static_cast<int>(deg));
    if (max_degree > 0 && deg > max_degree) {
      throw std::logic_error("TreeBuilder: node " + std::to_string(v) +
                             " exceeds max degree " +
                             std::to_string(max_degree));
    }
    t.offsets_[v + 1] += t.offsets_[v];
  }
  t.max_degree_ = dmax;

  // Fill the flat neighbor array in edge-insertion order, so each node's
  // port numbering is the order in which its edges were added — the same
  // stable order the historical vector-of-vectors adjacency produced.
  t.neighbors_.resize(2 * m);
  fill_.assign(t.offsets_.begin(), t.offsets_.end() - 1);
  for (std::size_t e = 0; e < m; ++e) {
    const NodeId u = edge_u_[e];
    const NodeId v = edge_v_[e];
    t.neighbors_[static_cast<std::size_t>(
        fill_[static_cast<std::size_t>(u)]++)] = v;
    t.neighbors_[static_cast<std::size_t>(
        fill_[static_cast<std::size_t>(v)]++)] = u;
  }

  // Duplicate-edge detection with a stamp array: while scanning v's
  // neighbor list, stamp_[u] == v marks "u already seen from v".
  if (verify) {
    stamp_.assign(n, kInvalidNode);
    for (std::size_t v = 0; v < n; ++v) {
      for (std::int32_t i = t.offsets_[v]; i < t.offsets_[v + 1]; ++i) {
        const NodeId u = t.neighbors_[static_cast<std::size_t>(i)];
        if (stamp_[static_cast<std::size_t>(u)] ==
            static_cast<NodeId>(v)) {
          throw std::logic_error("TreeBuilder: duplicate edge " +
                                 std::to_string(v) + "-" +
                                 std::to_string(u));
        }
        stamp_[static_cast<std::size_t>(u)] = static_cast<NodeId>(v);
      }
    }
  }

  // Acyclicity via union-find: an edge inside one component is a cycle.
  if (verify && forest_flag) {
    dsu_.resize(n);
    for (std::size_t v = 0; v < n; ++v) dsu_[v] = static_cast<NodeId>(v);
    for (std::size_t e = 0; e < m; ++e) {
      const NodeId ru = dsu_find(dsu_, edge_u_[e]);
      const NodeId rv = dsu_find(dsu_, edge_v_[e]);
      if (ru == rv) {
        throw std::logic_error(
            "TreeBuilder: cycle through edge " +
            std::to_string(edge_u_[e]) + "-" + std::to_string(edge_v_[e]) +
            " (use finalize_graph for non-forest instances)");
      }
      dsu_[static_cast<std::size_t>(ru)] = rv;
    }
  }

  t.ids_ = ids_;
  t.inputs_ = inputs_;
  return t;
}

TreeBuilder& tls_build_arena() {
  thread_local TreeBuilder arena;
  return arena;
}

namespace {
thread_local bool tls_arena_leased = false;
}  // namespace

ArenaLease::ArenaLease(NodeId n) : b_(tls_build_arena()) {
  if (tls_arena_leased) {
    throw std::logic_error(
        "ArenaLease: nested use of the thread build arena (an instance "
        "builder called another builder mid-build)");
  }
  // Mark leased only once reset() has succeeded: if it throws (n < 0)
  // the destructor never runs, and the flag must not stay poisoned.
  b_.reset(n);
  tls_arena_leased = true;
}

ArenaLease::~ArenaLease() { tls_arena_leased = false; }

Tree induced_subgraph(const Tree& t, const std::vector<char>& keep,
                      std::vector<NodeId>* from_sub,
                      std::vector<NodeId>* to_sub) {
  const NodeId n = t.size();
  if (static_cast<NodeId>(keep.size()) != n) {
    throw std::invalid_argument("induced_subgraph: mask size mismatch");
  }
  std::vector<NodeId> local_to;
  std::vector<NodeId>& map = to_sub != nullptr ? *to_sub : local_to;
  map.assign(static_cast<std::size_t>(n), kInvalidNode);
  if (from_sub != nullptr) from_sub->clear();
  NodeId sub_n = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (keep[static_cast<std::size_t>(v)] == 0) continue;
    map[static_cast<std::size_t>(v)] = sub_n++;
    if (from_sub != nullptr) from_sub->push_back(v);
  }
  ArenaLease arena(sub_n);
  TreeBuilder& b = *arena;
  for (NodeId v = 0; v < n; ++v) {
    const NodeId sv = map[static_cast<std::size_t>(v)];
    if (sv == kInvalidNode) continue;
    b.set_input(sv, t.input(v));
    for (const NodeId u : t.neighbors(v)) {
      const NodeId su = map[static_cast<std::size_t>(u)];
      if (su != kInvalidNode && u > v) b.add_edge(sv, su);
    }
  }
  // An induced subgraph of a verified forest is a duplicate-free forest
  // by construction (its edges are a subset of the parent's), so the
  // verification passes are skipped on this checker hot path; unverified
  // parents (cycles) may induce non-forests and keep the flag cleared.
  return t.forest_checked() ? b.finalize_known_forest(0)
                            : b.finalize_graph(0);
}

void Tree::validate_ids() const {
  std::unordered_set<LocalId> seen;
  seen.reserve(static_cast<std::size_t>(size()));
  for (NodeId v = 0; v < size(); ++v) {
    if (!seen.insert(local_id(v)).second) {
      throw std::logic_error("Tree: duplicate LOCAL id " +
                             std::to_string(local_id(v)));
    }
  }
}

bool Tree::is_forest() const {
  // A graph is a forest iff every connected component with c nodes has
  // exactly c-1 edges.
  auto [comp, count] = components(*this);
  std::vector<std::int64_t> nodes(static_cast<std::size_t>(count), 0);
  std::vector<std::int64_t> edges_twice(static_cast<std::size_t>(count), 0);
  for (NodeId v = 0; v < size(); ++v) {
    nodes[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])]++;
    edges_twice[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])] +=
        degree(v);
  }
  for (int c = 0; c < count; ++c) {
    if (edges_twice[static_cast<std::size_t>(c)] / 2 !=
        nodes[static_cast<std::size_t>(c)] - 1) {
      return false;
    }
  }
  return true;
}

bool Tree::is_tree() const {
  if (size() == 0) return false;
  auto [comp, count] = components(*this);
  (void)comp;
  return count == 1 && is_forest();
}

std::vector<int> bfs_distances(const Tree& t, NodeId source) {
  std::vector<int> dist(static_cast<std::size_t>(t.size()), -1);
  std::deque<NodeId> queue;
  dist[static_cast<std::size_t>(source)] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId w : t.neighbors(u)) {
      if (dist[static_cast<std::size_t>(w)] < 0) {
        dist[static_cast<std::size_t>(w)] =
            dist[static_cast<std::size_t>(u)] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

std::vector<NodeId> ball(const Tree& t, NodeId v, int radius) {
  std::vector<NodeId> out;
  std::vector<int> dist(static_cast<std::size_t>(t.size()), -1);
  std::deque<NodeId> queue;
  dist[static_cast<std::size_t>(v)] = 0;
  queue.push_back(v);
  out.push_back(v);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    if (dist[static_cast<std::size_t>(u)] == radius) continue;
    for (NodeId w : t.neighbors(u)) {
      if (dist[static_cast<std::size_t>(w)] < 0) {
        dist[static_cast<std::size_t>(w)] =
            dist[static_cast<std::size_t>(u)] + 1;
        out.push_back(w);
        queue.push_back(w);
      }
    }
  }
  return out;
}

std::pair<std::vector<int>, int> components(const Tree& t) {
  std::vector<int> comp(static_cast<std::size_t>(t.size()), -1);
  int count = 0;
  std::deque<NodeId> queue;
  for (NodeId s = 0; s < t.size(); ++s) {
    if (comp[static_cast<std::size_t>(s)] >= 0) continue;
    comp[static_cast<std::size_t>(s)] = count;
    queue.push_back(s);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (NodeId w : t.neighbors(u)) {
        if (comp[static_cast<std::size_t>(w)] < 0) {
          comp[static_cast<std::size_t>(w)] = count;
          queue.push_back(w);
        }
      }
    }
    ++count;
  }
  return {std::move(comp), count};
}

}  // namespace lcl::graph
