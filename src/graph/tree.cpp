#include "graph/tree.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace lcl::graph {

void Tree::validate_ids() const {
  std::unordered_set<LocalId> seen;
  seen.reserve(static_cast<std::size_t>(size()));
  for (NodeId v = 0; v < size(); ++v) {
    if (!seen.insert(local_id(v)).second) {
      throw std::logic_error("Tree: duplicate LOCAL id " +
                             std::to_string(local_id(v)));
    }
  }
}

bool Tree::is_forest() const {
  // A graph is a forest iff every connected component with c nodes has
  // exactly c-1 edges.
  auto [comp, count] = components(*this);
  std::vector<std::int64_t> nodes(static_cast<std::size_t>(count), 0);
  std::vector<std::int64_t> edges_twice(static_cast<std::size_t>(count), 0);
  for (NodeId v = 0; v < size(); ++v) {
    nodes[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])]++;
    edges_twice[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])] +=
        degree(v);
  }
  for (int c = 0; c < count; ++c) {
    if (edges_twice[static_cast<std::size_t>(c)] / 2 !=
        nodes[static_cast<std::size_t>(c)] - 1) {
      return false;
    }
  }
  return true;
}

bool Tree::is_tree() const {
  if (size() == 0) return false;
  auto [comp, count] = components(*this);
  (void)comp;
  return count == 1 && is_forest();
}

std::vector<int> bfs_distances(const Tree& t, NodeId source) {
  std::vector<int> dist(static_cast<std::size_t>(t.size()), -1);
  std::deque<NodeId> queue;
  dist[static_cast<std::size_t>(source)] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId w : t.neighbors(u)) {
      if (dist[static_cast<std::size_t>(w)] < 0) {
        dist[static_cast<std::size_t>(w)] =
            dist[static_cast<std::size_t>(u)] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

std::vector<NodeId> ball(const Tree& t, NodeId v, int radius) {
  std::vector<NodeId> out;
  std::vector<int> dist(static_cast<std::size_t>(t.size()), -1);
  std::deque<NodeId> queue;
  dist[static_cast<std::size_t>(v)] = 0;
  queue.push_back(v);
  out.push_back(v);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    if (dist[static_cast<std::size_t>(u)] == radius) continue;
    for (NodeId w : t.neighbors(u)) {
      if (dist[static_cast<std::size_t>(w)] < 0) {
        dist[static_cast<std::size_t>(w)] =
            dist[static_cast<std::size_t>(u)] + 1;
        out.push_back(w);
        queue.push_back(w);
      }
    }
  }
  return out;
}

std::pair<std::vector<int>, int> components(const Tree& t) {
  std::vector<int> comp(static_cast<std::size_t>(t.size()), -1);
  int count = 0;
  std::deque<NodeId> queue;
  for (NodeId s = 0; s < t.size(); ++s) {
    if (comp[static_cast<std::size_t>(s)] >= 0) continue;
    comp[static_cast<std::size_t>(s)] = count;
    queue.push_back(s);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (NodeId w : t.neighbors(u)) {
        if (comp[static_cast<std::size_t>(w)] < 0) {
          comp[static_cast<std::size_t>(w)] = count;
          queue.push_back(w);
        }
      }
    }
    ++count;
  }
  return {std::move(comp), count};
}

}  // namespace lcl::graph
