#include "graph/families.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/builders.hpp"

namespace lcl::graph {

namespace {

NodeId at_least(NodeId n, NodeId floor) { return std::max(n, floor); }

/// Shape-determined families (default_delta == 0) take no degree
/// parameter; an explicit delta would be silently unhonorable (a star's
/// center has degree n-1 regardless), so it is an error, not a default.
void reject_delta(const char* family, const FamilyParams& p) {
  if (p.delta != 0) {
    throw std::invalid_argument(std::string(family) +
                                ": family has no degree parameter");
  }
}

// Family lambdas receive `p.delta` already resolved against the family's
// default by make_family_instance/all-callers — no fallback constants
// here, so default_delta is the single source of truth. Unsatisfiable
// explicit deltas throw (from the underlying builder or here), never
// get silently substituted.

std::vector<Family> build_registry() {
  std::vector<Family> reg;

  reg.push_back({"path", "a path on n nodes", 0, true, false,
                 [](const FamilyParams& p) {
                   reject_delta("path", p);
                   return make_path(at_least(p.n, 1));
                 }});

  reg.push_back({"cycle",
                 "a cycle on n nodes (NOT a tree; checker edge cases)", 0,
                 false, false, [](const FamilyParams& p) {
                   reject_delta("cycle", p);
                   return make_cycle(at_least(p.n, 3));
                 }});

  reg.push_back({"star", "one center with n-1 leaves", 0, true, false,
                 [](const FamilyParams& p) {
                   reject_delta("star", p);
                   return make_star(at_least(p.n, 1) - 1);
                 }});

  reg.push_back({"caterpillar",
                 "spine path with delta-2 pendant leaves per spine node",
                 5, true, false, [](const FamilyParams& p) {
                   if (p.delta < 3) {
                     throw std::invalid_argument(
                         "caterpillar: delta >= 3 required");
                   }
                   const int legs = p.delta - 2;
                   const NodeId spine = at_least(
                       static_cast<NodeId>(p.n / (legs + 1)), 1);
                   return make_caterpillar(spine, legs);
                 }});

  reg.push_back({"dary",
                 "complete balanced (delta-1)-ary tree, BFS-truncated at n",
                 5, true, false, [](const FamilyParams& p) {
                   return make_balanced_weight_tree(at_least(p.n, 1),
                                                    p.delta);
                 }});

  reg.push_back({"spider",
                 "delta legs of equal length joined at one center", 6,
                 true, false, [](const FamilyParams& p) {
                   // Leg interiors have degree 2, so delta < 2 cannot be
                   // honored by any spider (legs >= 1 implies a leg).
                   if (p.delta < 2) {
                     throw std::invalid_argument(
                         "spider: delta >= 2 required");
                   }
                   const int legs = p.delta;
                   const NodeId leg_len = at_least(
                       static_cast<NodeId>((p.n - 1) / legs), 1);
                   return make_spider(legs, leg_len);
                 }});

  reg.push_back({"broom",
                 "a handle path ending in a fan of n/2 leaves", 0, true,
                 false, [](const FamilyParams& p) {
                   reject_delta("broom", p);
                   const NodeId handle = at_least(p.n / 2, 1);
                   const NodeId bristles =
                       std::max<NodeId>(at_least(p.n, 1) - handle, 0);
                   return make_broom(handle, bristles);
                 }});

  reg.push_back({"binary_pendant",
                 "complete binary core with balanced pendant paths", 3,
                 true, false, [](const FamilyParams& p) {
                   // The shape is inherently degree-3; any looser cap is
                   // honored trivially, a tighter one cannot be.
                   if (p.delta < 3) {
                     throw std::invalid_argument(
                         "binary_pendant: delta >= 3 required");
                   }
                   const NodeId core = at_least(p.n / 2, 1);
                   const NodeId pendant =
                       std::max<NodeId>(at_least(p.n, 1) - core, 0);
                   return make_binary_with_pendant_paths(core, pendant);
                 }});

  reg.push_back({"galton_watson",
                 "degree-capped Galton-Watson branching tree", 4, true,
                 true, [](const FamilyParams& p) {
                   return make_galton_watson_tree(at_least(p.n, 1),
                                                  p.delta, p.seed);
                 }});

  reg.push_back({"prufer",
                 "random labeled tree via degree-capped Prufer sequence",
                 8, true, true, [](const FamilyParams& p) {
                   return make_prufer_tree(at_least(p.n, 1), p.delta,
                                           p.seed);
                 }});

  reg.push_back({"random_attach",
                 "uniform random attachment tree, degree-capped", 4, true,
                 true, [](const FamilyParams& p) {
                   return make_random_tree(at_least(p.n, 1), p.delta,
                                           p.seed);
                 }});

  return reg;
}

}  // namespace

const std::vector<Family>& all_families() {
  static const std::vector<Family> registry = build_registry();
  return registry;
}

const Family* find_family(const std::string& name) {
  for (const Family& f : all_families()) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

Tree make_family_instance(const std::string& name, NodeId n,
                          std::uint64_t seed, int delta) {
  const Family* f = find_family(name);
  if (f == nullptr) {
    throw std::invalid_argument("unknown instance family '" + name + "'");
  }
  FamilyParams p;
  p.n = n;
  p.seed = seed;
  // Resolve the degree bound once, centrally: 0 picks the family default
  // (itself 0 for shape-determined families, which reject explicit
  // values); an explicit bound the family cannot honor throws.
  p.delta = delta != 0 ? delta : f->default_delta;
  return f->build(p);
}

std::vector<std::string> family_names() {
  std::vector<std::string> names;
  names.reserve(all_families().size());
  for (const Family& f : all_families()) names.push_back(f.name);
  return names;
}

std::vector<std::string> parse_family_list(const std::string& csv) {
  std::vector<std::string> out;
  if (csv.empty() || csv == "all") {
    for (const Family& f : all_families()) {
      if (f.is_tree) out.push_back(f.name);
    }
    return out;
  }
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string name =
        csv.substr(pos, comma == std::string::npos ? std::string::npos
                                                   : comma - pos);
    if (!name.empty()) {
      if (find_family(name) == nullptr) {
        throw std::invalid_argument("unknown instance family '" + name +
                                    "'");
      }
      out.push_back(name);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace lcl::graph
