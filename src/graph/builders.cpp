#include "graph/builders.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

namespace lcl::graph {

Tree make_path(NodeId n) {
  ArenaLease arena(n);
  TreeBuilder& b = *arena;
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.finalize(2);
}

Tree make_cycle(NodeId n) {
  if (n < 3) throw std::invalid_argument("make_cycle: n >= 3 required");
  ArenaLease arena(n);
  TreeBuilder& b = *arena;
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  b.add_edge(n - 1, 0);
  // Cycles are for checker edge-case tests; the explicit non-forest
  // finalize marks the instance forest_checked() == false.
  return b.finalize_graph(2);
}

Tree make_star(NodeId leaves) {
  ArenaLease arena(leaves + 1);
  TreeBuilder& b = *arena;
  for (NodeId v = 1; v <= leaves; ++v) b.add_edge(0, v);
  return b.finalize(0);
}

Tree make_balanced_weight_tree(NodeId w, int delta) {
  if (w < 1) throw std::invalid_argument("weight tree: w >= 1");
  if (delta < 3) throw std::invalid_argument("weight tree: delta >= 3");
  ArenaLease arena(w);
  TreeBuilder& b = *arena;
  // BFS-order complete (delta-1)-ary tree: children of node v are
  // v*(delta-1)+1 .. v*(delta-1)+(delta-1), truncated at w.
  const std::int64_t fanout = delta - 1;
  for (NodeId v = 0; v < w; ++v) {
    for (std::int64_t c = 1; c <= fanout; ++c) {
      const std::int64_t child = static_cast<std::int64_t>(v) * fanout + c;
      if (child >= w) break;
      b.add_edge(v, static_cast<NodeId>(child));
    }
  }
  return b.finalize(delta);
}

HierarchicalInstance make_hierarchical_lower_bound(
    const std::vector<std::int64_t>& ell) {
  const int k = static_cast<int>(ell.size());
  if (k < 1) throw std::invalid_argument("hierarchical: k >= 1");
  for (std::int64_t l : ell) {
    if (l < 1) throw std::invalid_argument("hierarchical: ell_i >= 1");
  }

  HierarchicalInstance inst;
  inst.k = k;
  inst.path_lengths = ell;
  ArenaLease arena(0);
  TreeBuilder& b = *arena;

  // Build level-k path first, then recursively attach lower-level paths.
  // We materialize iteratively: keep the list of nodes of the level being
  // expanded together with each node's count of same-level path
  // neighbors (0, 1, or 2 — known from its position in its path, so no
  // adjacency query is needed mid-build).
  std::vector<NodeId> current;
  std::vector<int> current_peers;

  // Level-k path.
  {
    const std::int64_t len = ell[static_cast<std::size_t>(k - 1)];
    for (std::int64_t j = 0; j < len; ++j) {
      const NodeId v = b.add_node();
      inst.intended_level.push_back(k);
      if (j > 0) b.add_edge(v - 1, v);
      current.push_back(v);
      current_peers.push_back((j > 0 ? 1 : 0) + (j + 1 < len ? 1 : 0));
    }
  }

  for (int level = k - 1; level >= 1; --level) {
    std::vector<NodeId> next;
    std::vector<int> next_peers;
    const std::int64_t len = ell[static_cast<std::size_t>(level - 1)];
    auto attach_path = [&](NodeId host) {
      NodeId prev = host;
      for (std::int64_t j = 0; j < len; ++j) {
        const NodeId v = b.add_node();
        inst.intended_level.push_back(level);
        b.add_edge(prev, v);
        prev = v;
        next.push_back(v);
        next_peers.push_back((j > 0 ? 1 : 0) + (j + 1 < len ? 1 : 0));
      }
    };
    // Each host gets one attached path; hosts with path-degree <= 1 (the
    // endpoints of their level-(level+1) path) get extra attachments so
    // that their degree stays >= 3 until their own peeling round — this
    // is why Figure 3's outermost level-1 paths differ from the rest.
    for (std::size_t h = 0; h < current.size(); ++h) {
      const NodeId host = current[h];
      attach_path(host);
      for (int extra = current_peers[h]; extra < 2; ++extra) {
        attach_path(host);
      }
    }
    current = std::move(next);
    current_peers = std::move(next_peers);
  }

  // Degree: interior hosts have 2 path neighbors + 1 attachment = 3;
  // endpoint hosts 1 + 2 = 3 (isolated hosts 0 + 3 = 3); plus the parent
  // attachment edge on lower-level path heads: max degree 4.
  inst.tree = b.finalize(4);
  return inst;
}

WeightedInstance make_weighted_construction(
    const std::vector<std::int64_t>& ell, int delta) {
  const int k = static_cast<int>(ell.size());
  if (k < 1) throw std::invalid_argument("weighted: k >= 1");
  // Skeleton nodes reach degree 4 (Figure-3 boundary fix) plus one
  // attached weight tree; Lemma-58 parameters always give Delta >= 5.
  if (delta < 5) throw std::invalid_argument("weighted: delta >= 5");

  // Skeleton with ell'_i = max(1, ell_i / k^{1/k}).
  std::vector<std::int64_t> ell_prime(ell.size());
  const double shrink = std::pow(static_cast<double>(k), 1.0 / k);
  for (std::size_t i = 0; i < ell.size(); ++i) {
    ell_prime[i] = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::llround(static_cast<double>(ell[i]) / shrink)));
  }

  HierarchicalInstance skel = make_hierarchical_lower_bound(ell_prime);

  WeightedInstance inst;
  inst.k = k;
  inst.delta = delta;
  inst.intended_level = skel.intended_level;
  inst.active_count = skel.tree.size();
  inst.skeleton_lengths = ell_prime;

  // Copy the skeleton into the build arena so it can be extended with the
  // weight trees. (The nested hierarchical build above has finished with
  // the arena; resetting it here is safe.)
  ArenaLease arena(skel.tree.size());
  TreeBuilder& b = *arena;
  for (NodeId v = 0; v < skel.tree.size(); ++v) {
    for (NodeId u : skel.tree.neighbors(v)) {
      if (u > v) b.add_edge(v, u);
    }
    b.set_input(v, static_cast<int>(WeightInput::kActive));
  }

  // Total weight budget: (k-1) * n' where n' = skeleton size, spread as
  // n' weight nodes per level in {2..k}, evenly across that level's nodes,
  // each as a balanced (delta-1)-ary tree attached to the skeleton node.
  const std::int64_t n_prime = skel.tree.size();
  std::vector<std::vector<NodeId>> level_nodes(
      static_cast<std::size_t>(k + 1));
  for (NodeId v = 0; v < skel.tree.size(); ++v) {
    level_nodes[static_cast<std::size_t>(
                    skel.intended_level[static_cast<std::size_t>(v)])]
        .push_back(v);
  }

  const std::int64_t fanout = delta - 1;
  for (int level = 2; level <= k; ++level) {
    const auto& hosts = level_nodes[static_cast<std::size_t>(level)];
    if (hosts.empty()) continue;
    const std::int64_t per_host =
        std::max<std::int64_t>(1, n_prime / static_cast<std::int64_t>(
                                               hosts.size()));
    for (NodeId host : hosts) {
      // Attach a balanced weight tree of `per_host` nodes rooted at a
      // fresh node adjacent to `host`.
      const NodeId base = b.size();
      for (std::int64_t j = 0; j < per_host; ++j) {
        const NodeId v = b.add_node();
        b.set_input(v, static_cast<int>(WeightInput::kWeight));
        inst.intended_level.push_back(0);
        if (j == 0) {
          b.add_edge(host, v);
        } else {
          const NodeId parent =
              base + static_cast<NodeId>((j - 1) / fanout);
          b.add_edge(parent, v);
        }
      }
    }
  }

  // Skeleton nodes have degree <= 3 plus one weight-tree root = 4 <= delta;
  // weight-tree internal nodes have <= (delta-1) children + parent = delta.
  inst.tree = b.finalize(delta);
  inst.weight_count = inst.tree.size() - inst.active_count;
  return inst;
}

Tree make_caterpillar(NodeId spine, int legs) {
  ArenaLease arena(spine);
  TreeBuilder& b = *arena;
  for (NodeId v = 0; v + 1 < spine; ++v) b.add_edge(v, v + 1);
  for (NodeId v = 0; v < spine; ++v) {
    for (int j = 0; j < legs; ++j) {
      const NodeId leaf = b.add_node();
      b.add_edge(v, leaf);
    }
  }
  return b.finalize(legs + 2);
}

Tree make_spider(int legs, NodeId leg_len) {
  if (legs < 1) throw std::invalid_argument("spider: legs >= 1");
  if (leg_len < 1) throw std::invalid_argument("spider: leg_len >= 1");
  ArenaLease arena(1);
  TreeBuilder& b = *arena;
  for (int l = 0; l < legs; ++l) {
    NodeId prev = 0;
    for (NodeId j = 0; j < leg_len; ++j) {
      const NodeId v = b.add_node();
      b.add_edge(prev, v);
      prev = v;
    }
  }
  return b.finalize(std::max(legs, 2));
}

Tree make_broom(NodeId handle, NodeId bristles) {
  if (handle < 1) throw std::invalid_argument("broom: handle >= 1");
  if (bristles < 0) throw std::invalid_argument("broom: bristles >= 0");
  ArenaLease arena(handle);
  TreeBuilder& b = *arena;
  for (NodeId v = 0; v + 1 < handle; ++v) b.add_edge(v, v + 1);
  for (NodeId j = 0; j < bristles; ++j) {
    const NodeId leaf = b.add_node();
    b.add_edge(handle - 1, leaf);
  }
  return b.finalize(0);
}

Tree make_binary_with_pendant_paths(NodeId core, NodeId pendant_total) {
  if (core < 1) {
    throw std::invalid_argument("binary_pendant: core >= 1");
  }
  if (pendant_total < 0) {
    throw std::invalid_argument("binary_pendant: pendant_total >= 0");
  }
  ArenaLease arena(core);
  TreeBuilder& b = *arena;
  // BFS-order complete binary tree on `core` nodes.
  std::vector<NodeId> leaves;
  for (NodeId v = 0; v < core; ++v) {
    const std::int64_t left = 2 * static_cast<std::int64_t>(v) + 1;
    if (left >= core) leaves.push_back(v);
    for (std::int64_t c = left; c <= left + 1 && c < core; ++c) {
      b.add_edge(v, static_cast<NodeId>(c));
    }
  }
  // Balance `pendant_total` path nodes across the binary leaves: the
  // first (pendant_total % leaves) pendants get one extra node.
  const std::int64_t nl = static_cast<std::int64_t>(leaves.size());
  for (std::int64_t i = 0; i < nl; ++i) {
    std::int64_t len = pendant_total / nl + (i < pendant_total % nl ? 1 : 0);
    NodeId prev = leaves[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < len; ++j) {
      const NodeId v = b.add_node();
      b.add_edge(prev, v);
      prev = v;
    }
  }
  return b.finalize(3);
}

Tree make_random_tree(NodeId n, int delta, std::uint64_t seed) {
  if (n < 1) throw std::invalid_argument("random tree: n >= 1");
  if (delta < 2) throw std::invalid_argument("random tree: delta >= 2");
  std::mt19937_64 rng(seed);
  ArenaLease arena(1);
  TreeBuilder& b = *arena;
  std::vector<NodeId> attachable = {0};
  std::vector<int> deg(1, 0);
  while (b.size() < n) {
    std::uniform_int_distribution<std::size_t> pick(0, attachable.size() - 1);
    const std::size_t slot = pick(rng);
    const NodeId host = attachable[slot];
    const NodeId v = b.add_node();
    deg.push_back(1);
    b.add_edge(host, v);
    deg[static_cast<std::size_t>(host)]++;
    if (deg[static_cast<std::size_t>(host)] >= delta) {
      attachable[slot] = attachable.back();
      attachable.pop_back();
    }
    if (delta > 1) attachable.push_back(v);
  }
  return b.finalize(delta);
}

Tree make_galton_watson_tree(NodeId n, int delta, std::uint64_t seed) {
  if (n < 1) throw std::invalid_argument("galton-watson: n >= 1");
  if (delta < 2) throw std::invalid_argument("galton-watson: delta >= 2");
  std::mt19937_64 rng(seed);
  ArenaLease arena(1);
  TreeBuilder& b = *arena;
  // Offspring distribution: uniform over [0, delta-1] children. Mean
  // (delta-1)/2 makes large components likely, but extinction still
  // happens; restarts keep the instance connected.
  std::vector<int> deg(1, 0);
  std::vector<NodeId> frontier = {0};
  std::vector<NodeId> spare = {0};  // nodes with degree < delta
  while (b.size() < n) {
    if (frontier.empty()) {
      // Extinct: regrow from a random node with spare capacity.
      while (true) {
        std::uniform_int_distribution<std::size_t> pick(0, spare.size() - 1);
        const std::size_t slot = pick(rng);
        const NodeId host = spare[slot];
        if (deg[static_cast<std::size_t>(host)] < delta) {
          frontier.push_back(host);
          break;
        }
        spare[slot] = spare.back();
        spare.pop_back();
      }
    }
    std::vector<NodeId> next_frontier;
    for (const NodeId v : frontier) {
      if (b.size() >= n) break;
      const int cap = delta - deg[static_cast<std::size_t>(v)];
      if (cap <= 0) continue;
      std::uniform_int_distribution<int> offspring(0, delta - 1);
      int children = std::min(offspring(rng), cap);
      children = static_cast<int>(
          std::min<std::int64_t>(children, n - b.size()));
      for (int c = 0; c < children; ++c) {
        const NodeId w = b.add_node();
        deg.push_back(1);
        b.add_edge(v, w);
        deg[static_cast<std::size_t>(v)]++;
        next_frontier.push_back(w);
        spare.push_back(w);
      }
    }
    frontier = std::move(next_frontier);
  }
  return b.finalize(delta);
}

Tree make_prufer_tree(NodeId n, int delta, std::uint64_t seed) {
  if (n < 1) throw std::invalid_argument("prufer: n >= 1");
  if (delta != 0 && delta < 2) {
    throw std::invalid_argument("prufer: delta == 0 or delta >= 2");
  }
  ArenaLease arena(n);
  TreeBuilder& b = *arena;
  if (n == 1) return b.finalize(delta);
  if (n == 2) {
    b.add_edge(0, 1);
    return b.finalize(delta);
  }
  std::mt19937_64 rng(seed);
  // Draw the Prüfer sequence; with a degree cap, resample any label that
  // would exceed delta-1 occurrences (degree = occurrences + 1).
  const std::int64_t len = static_cast<std::int64_t>(n) - 2;
  std::vector<NodeId> seq(static_cast<std::size_t>(len));
  std::vector<int> count(static_cast<std::size_t>(n), 0);
  std::uniform_int_distribution<NodeId> label(0, n - 1);
  for (std::int64_t i = 0; i < len; ++i) {
    NodeId a = label(rng);
    if (delta > 0) {
      while (count[static_cast<std::size_t>(a)] >= delta - 1) {
        a = label(rng);
      }
    }
    seq[static_cast<std::size_t>(i)] = a;
    ++count[static_cast<std::size_t>(a)];
  }
  // Linear Prüfer decoding with the moving-pointer leaf scan.
  std::vector<int> deg(static_cast<std::size_t>(n), 1);
  for (const NodeId a : seq) ++deg[static_cast<std::size_t>(a)];
  NodeId ptr = 0;
  while (deg[static_cast<std::size_t>(ptr)] != 1) ++ptr;
  NodeId leaf = ptr;
  for (const NodeId a : seq) {
    b.add_edge(leaf, a);
    if (--deg[static_cast<std::size_t>(a)] == 1 && a < ptr) {
      leaf = a;
    } else {
      ++ptr;
      while (deg[static_cast<std::size_t>(ptr)] != 1) ++ptr;
      leaf = ptr;
    }
  }
  b.add_edge(leaf, n - 1);
  return b.finalize(delta);
}

void assign_ids(Tree& t, IdScheme scheme, std::uint64_t seed_or_offset) {
  const NodeId n = t.size();
  switch (scheme) {
    case IdScheme::kSequential:
      for (NodeId v = 0; v < n; ++v) t.set_local_id(v, v);
      break;
    case IdScheme::kShuffled: {
      std::vector<LocalId> ids(static_cast<std::size_t>(n));
      std::iota(ids.begin(), ids.end(), LocalId{0});
      std::mt19937_64 rng(seed_or_offset);
      std::shuffle(ids.begin(), ids.end(), rng);
      for (NodeId v = 0; v < n; ++v) {
        t.set_local_id(v, ids[static_cast<std::size_t>(v)]);
      }
      break;
    }
    case IdScheme::kBlockOffset:
      for (NodeId v = 0; v < n; ++v) {
        t.set_local_id(v, static_cast<LocalId>(v) +
                              static_cast<LocalId>(seed_or_offset));
      }
      break;
  }
}

}  // namespace lcl::graph
