#include "graph/builders.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

namespace lcl::graph {

Tree make_path(NodeId n) {
  Tree t(n);
  for (NodeId v = 0; v + 1 < n; ++v) t.add_edge(v, v + 1);
  t.finalize(2);
  return t;
}

Tree make_cycle(NodeId n) {
  if (n < 3) throw std::invalid_argument("make_cycle: n >= 3 required");
  Tree t(n);
  for (NodeId v = 0; v + 1 < n; ++v) t.add_edge(v, v + 1);
  t.add_edge(n - 1, 0);
  // Do NOT finalize with forest assumptions; cycles are for checker tests.
  t.finalize(2);
  return t;
}

Tree make_star(NodeId leaves) {
  Tree t(leaves + 1);
  for (NodeId v = 1; v <= leaves; ++v) t.add_edge(0, v);
  t.finalize(0);
  return t;
}

Tree make_balanced_weight_tree(NodeId w, int delta) {
  if (w < 1) throw std::invalid_argument("weight tree: w >= 1");
  if (delta < 3) throw std::invalid_argument("weight tree: delta >= 3");
  Tree t(w);
  // BFS-order complete (delta-1)-ary tree: children of node v are
  // v*(delta-1)+1 .. v*(delta-1)+(delta-1), truncated at w.
  const std::int64_t fanout = delta - 1;
  for (NodeId v = 0; v < w; ++v) {
    for (std::int64_t c = 1; c <= fanout; ++c) {
      const std::int64_t child = static_cast<std::int64_t>(v) * fanout + c;
      if (child >= w) break;
      t.add_edge(v, static_cast<NodeId>(child));
    }
  }
  t.finalize(delta);
  return t;
}

HierarchicalInstance make_hierarchical_lower_bound(
    const std::vector<std::int64_t>& ell) {
  const int k = static_cast<int>(ell.size());
  if (k < 1) throw std::invalid_argument("hierarchical: k >= 1");
  for (std::int64_t l : ell) {
    if (l < 1) throw std::invalid_argument("hierarchical: ell_i >= 1");
  }

  HierarchicalInstance inst;
  inst.k = k;
  inst.path_lengths = ell;
  Tree& t = inst.tree;

  // Build level-k path first, then recursively attach lower-level paths.
  // We materialize iteratively: keep the list of nodes of level i+1 and,
  // for each, attach a fresh path of ell[i-1] nodes by one endpoint.
  struct Pending {
    NodeId node;
    int level;
  };

  std::vector<NodeId> current;  // nodes of the level being expanded
  // Level-k path.
  for (std::int64_t j = 0; j < ell[static_cast<std::size_t>(k - 1)]; ++j) {
    const NodeId v = t.add_node();
    inst.intended_level.push_back(k);
    if (j > 0) t.add_edge(v - 1, v);
    current.push_back(v);
  }

  for (int level = k - 1; level >= 1; --level) {
    std::vector<NodeId> next;
    const std::int64_t len = ell[static_cast<std::size_t>(level - 1)];
    auto attach_path = [&](NodeId host) {
      NodeId prev = host;
      for (std::int64_t j = 0; j < len; ++j) {
        const NodeId v = t.add_node();
        inst.intended_level.push_back(level);
        t.add_edge(prev, v);
        prev = v;
        next.push_back(v);
      }
    };
    // Each host gets one attached path; hosts with path-degree <= 1 (the
    // endpoints of their level-(level+1) path) get extra attachments so
    // that their degree stays >= 3 until their own peeling round — this
    // is why Figure 3's outermost level-1 paths differ from the rest.
    for (NodeId host : current) {
      int host_peers = 0;
      for (NodeId u : t.neighbors(host)) {
        if (inst.intended_level[static_cast<std::size_t>(u)] ==
            inst.intended_level[static_cast<std::size_t>(host)]) {
          ++host_peers;
        }
      }
      attach_path(host);
      for (int extra = host_peers; extra < 2; ++extra) attach_path(host);
    }
    current = std::move(next);
  }

  // Degree: interior hosts have 2 path neighbors + 1 attachment = 3;
  // endpoint hosts 1 + 2 = 3 (isolated hosts 0 + 3 = 3); plus the parent
  // attachment edge on lower-level path heads: max degree 4.
  t.finalize(4);
  return inst;
}

WeightedInstance make_weighted_construction(
    const std::vector<std::int64_t>& ell, int delta) {
  const int k = static_cast<int>(ell.size());
  if (k < 1) throw std::invalid_argument("weighted: k >= 1");
  // Skeleton nodes reach degree 4 (Figure-3 boundary fix) plus one
  // attached weight tree; Lemma-58 parameters always give Delta >= 5.
  if (delta < 5) throw std::invalid_argument("weighted: delta >= 5");

  // Skeleton with ell'_i = max(1, ell_i / k^{1/k}).
  std::vector<std::int64_t> ell_prime(ell.size());
  const double shrink = std::pow(static_cast<double>(k), 1.0 / k);
  std::int64_t skeleton_nodes_per_level_product = 1;
  for (std::size_t i = 0; i < ell.size(); ++i) {
    ell_prime[i] = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::llround(static_cast<double>(ell[i]) / shrink)));
    skeleton_nodes_per_level_product *= ell_prime[i];
  }
  (void)skeleton_nodes_per_level_product;

  HierarchicalInstance skel = make_hierarchical_lower_bound(ell_prime);

  WeightedInstance inst;
  inst.k = k;
  inst.delta = delta;
  inst.intended_level = skel.intended_level;
  inst.active_count = skel.tree.size();
  inst.skeleton_lengths = ell_prime;

  // Copy skeleton into a fresh non-finalized tree we can extend.
  Tree t(skel.tree.size());
  for (NodeId v = 0; v < skel.tree.size(); ++v) {
    for (NodeId u : skel.tree.neighbors(v)) {
      if (u > v) t.add_edge(v, u);
    }
    t.set_input(v, static_cast<int>(WeightInput::kActive));
  }

  // Total weight budget: (k-1) * n' where n' = skeleton size, spread as
  // n' weight nodes per level in {2..k}, evenly across that level's nodes,
  // each as a balanced (delta-1)-ary tree attached to the skeleton node.
  const std::int64_t n_prime = skel.tree.size();
  std::vector<std::vector<NodeId>> level_nodes(
      static_cast<std::size_t>(k + 1));
  for (NodeId v = 0; v < skel.tree.size(); ++v) {
    level_nodes[static_cast<std::size_t>(
                    skel.intended_level[static_cast<std::size_t>(v)])]
        .push_back(v);
  }

  const std::int64_t fanout = delta - 1;
  for (int level = 2; level <= k; ++level) {
    const auto& hosts = level_nodes[static_cast<std::size_t>(level)];
    if (hosts.empty()) continue;
    const std::int64_t per_host =
        std::max<std::int64_t>(1, n_prime / static_cast<std::int64_t>(
                                               hosts.size()));
    for (NodeId host : hosts) {
      // Attach a balanced weight tree of `per_host` nodes rooted at a
      // fresh node r adjacent to `host`.
      const NodeId base = t.size();
      for (std::int64_t j = 0; j < per_host; ++j) {
        const NodeId v = t.add_node();
        t.set_input(v, static_cast<int>(WeightInput::kWeight));
        inst.intended_level.push_back(0);
        if (j == 0) {
          t.add_edge(host, v);
        } else {
          const NodeId parent =
              base + static_cast<NodeId>((j - 1) / fanout);
          t.add_edge(parent, v);
        }
      }
    }
  }

  inst.weight_count = t.size() - inst.active_count;
  // Skeleton nodes have degree <= 3 plus one weight-tree root = 4 <= delta;
  // weight-tree internal nodes have <= (delta-1) children + parent = delta.
  t.finalize(delta);
  inst.tree = std::move(t);
  return inst;
}

Tree make_caterpillar(NodeId spine, int legs) {
  Tree t(spine);
  for (NodeId v = 0; v + 1 < spine; ++v) t.add_edge(v, v + 1);
  for (NodeId v = 0; v < spine; ++v) {
    for (int j = 0; j < legs; ++j) {
      const NodeId leaf = t.add_node();
      t.add_edge(v, leaf);
    }
  }
  t.finalize(legs + 2);
  return t;
}

Tree make_random_tree(NodeId n, int delta, std::uint64_t seed) {
  if (n < 1) throw std::invalid_argument("random tree: n >= 1");
  if (delta < 2) throw std::invalid_argument("random tree: delta >= 2");
  std::mt19937_64 rng(seed);
  Tree t(1);
  std::vector<NodeId> attachable = {0};
  std::vector<int> deg(1, 0);
  while (t.size() < n) {
    std::uniform_int_distribution<std::size_t> pick(0, attachable.size() - 1);
    const std::size_t slot = pick(rng);
    const NodeId host = attachable[slot];
    const NodeId v = t.add_node();
    deg.push_back(1);
    t.add_edge(host, v);
    deg[static_cast<std::size_t>(host)]++;
    if (deg[static_cast<std::size_t>(host)] >= delta) {
      attachable[slot] = attachable.back();
      attachable.pop_back();
    }
    if (delta > 1) attachable.push_back(v);
  }
  t.finalize(delta);
  return t;
}

void assign_ids(Tree& t, IdScheme scheme, std::uint64_t seed_or_offset) {
  const NodeId n = t.size();
  switch (scheme) {
    case IdScheme::kSequential:
      for (NodeId v = 0; v < n; ++v) t.set_local_id(v, v);
      break;
    case IdScheme::kShuffled: {
      std::vector<LocalId> ids(static_cast<std::size_t>(n));
      std::iota(ids.begin(), ids.end(), LocalId{0});
      std::mt19937_64 rng(seed_or_offset);
      std::shuffle(ids.begin(), ids.end(), rng);
      for (NodeId v = 0; v < n; ++v) {
        t.set_local_id(v, ids[static_cast<std::size_t>(v)]);
      }
      break;
    }
    case IdScheme::kBlockOffset:
      for (NodeId v = 0; v < n; ++v) {
        t.set_local_id(v, static_cast<LocalId>(v) +
                              static_cast<LocalId>(seed_or_offset));
      }
      break;
  }
}

}  // namespace lcl::graph
