// Instance-family registry: named, parameterized tree generators.
//
// Every scenario and test can sweep any solver across any family by name
// instead of hand-wiring instance builders: `make_family_instance("spider",
// n, seed)` builds through the same reusable per-thread arena as the
// `make_*` builders. The registry is the single source of truth for the
// shapes the landscape experiments exercise — lclbench's `--families`
// flag selects from it, and BENCH_*.json records the selection so
// snapshots are reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/tree.hpp"

namespace lcl::graph {

/// Parameters for one family instantiation.
struct FamilyParams {
  NodeId n = 0;            ///< target node count (hit exactly, or within
                           ///< the family's rounding to its shape grid)
  int delta = 0;           ///< degree bound. `Family::build` expects the
                           ///< *resolved* value (family default already
                           ///< applied — use make_family_instance);
                           ///< unsatisfiable explicit bounds throw.
  std::uint64_t seed = 0;  ///< consumed by randomized families only
};

/// A registered instance family.
struct Family {
  std::string name;     ///< stable CLI/JSON key
  std::string summary;  ///< one-line description
  int default_delta = 0;  ///< degree bound applied when params.delta == 0
                          ///< (0 = shape-determined, no cap parameter)
  bool is_tree = true;    ///< false for checker edge-case graphs (cycle)
  bool randomized = false;  ///< true iff the seed changes the instance
  std::function<Tree(const FamilyParams&)> build;
};

/// The full registry, in stable order. Names are stable CLI/JSON keys.
[[nodiscard]] const std::vector<Family>& all_families();

/// Looks up a family by name; nullptr if unknown.
[[nodiscard]] const Family* find_family(const std::string& name);

/// Builds an instance of the named family. Throws std::invalid_argument
/// on an unknown name.
[[nodiscard]] Tree make_family_instance(const std::string& name, NodeId n,
                                        std::uint64_t seed = 0,
                                        int delta = 0);

/// All registered family names, in registry order.
[[nodiscard]] std::vector<std::string> family_names();

/// Parses a comma-separated family selection. "all" (or an empty string)
/// yields every *tree* family (cycle and other non-tree edge-case
/// families must be named explicitly). Throws std::invalid_argument on
/// an unknown name.
[[nodiscard]] std::vector<std::string> parse_family_list(
    const std::string& csv);

}  // namespace lcl::graph
