// Closed-form node-averaged complexity exponents (the analytic heart of
// the paper) and the parameter constructions that realize target
// exponents.
//
//  * Efficiency factors of the weight gadget (Lemma 23 / Section 8):
//      x  = log(Delta-d-1)/log(Delta-1)   (lower bound / A_poly)
//      x' = log(Delta-d+1)/log(Delta-1)   (fast-decomposition upper bound)
//  * Polynomial regime (Lemma 33): alpha_i = (2-x) alpha_{i-1},
//      alpha_1 = 1 / sum_{j=0}^{k-1} (2-x)^j;  Pi^{2.5} is Theta(n^alpha1).
//  * log* regime (Lemma 36):
//      alpha_1 = 1 / (1 + (1-x) sum_{j=0}^{k-2} (2-x)^j);
//      Pi^{3.5} is between (log* n)^{alpha1(x)} and (log* n)^{alpha1(x')}.
//  * Lemma 58: any rational x = p/q in (0,1) is realized by
//      Delta = 2^q + 1, d = 2^q - 2^p.
//  * Lemma 62: scaling p/q by c gives |x - x'| <= 2/(2^{cp} ln 2 ...)
//      ~ 2/(2 a c); used to squeeze upper and lower exponents within eps.
#pragma once

#include <cstdint>
#include <vector>

namespace lcl::core {

/// x = log(Delta-d-1)/log(Delta-1). Requires Delta >= d+3 (so x > 0).
[[nodiscard]] double efficiency_x(int delta, int d);

/// x' = log(Delta-d+1)/log(Delta-1), the slightly lossier factor of the
/// Pi^{3.5} upper bound (Theorem 5).
[[nodiscard]] double efficiency_x_prime(int delta, int d);

/// Lemma 33: alpha_1(x) = 1 / sum_{j=0}^{k-1} (2-x)^j.
[[nodiscard]] double alpha1_poly(double x, int k);

/// Lemma 36: alpha_1(x) = 1 / (1 + (1-x) sum_{j=0}^{k-2} (2-x)^j).
[[nodiscard]] double alpha1_logstar(double x, int k);

/// The full alpha profile alpha_1..alpha_{k-1} with
/// alpha_i = (2-x) alpha_{i-1} (shared by Lemmas 33 and 36).
[[nodiscard]] std::vector<double> alpha_profile_poly(double x, int k);
[[nodiscard]] std::vector<double> alpha_profile_logstar(double x, int k);

/// Parameters (Delta, d) realizing a rational efficiency factor.
struct GadgetParams {
  int delta = 0;
  int d = 0;
  double x = 0.0;        ///< realized x (== p/q exactly in the reals)
  double x_prime = 0.0;  ///< realized x'
};

/// Lemma 58: Delta = 2^q + 1, d = 2^q - 2^p for x = p/q. Requires
/// 1 <= p < q and q small enough that 2^q fits an int.
[[nodiscard]] GadgetParams params_for_rational(int p, int q);

/// Lemma 62: scales (p, q) -> (cp, cq) until x' - x < eps; returns the
/// scaled parameters. Throws if the required Delta would overflow.
[[nodiscard]] GadgetParams params_with_gap(int p, int q, double eps);

/// Theorem 1 search: given 0 < r1 < r2 <= 1/2, returns (params, k) whose
/// polynomial-regime exponent alpha1 lies in [r1, r2].
struct DensityChoice {
  GadgetParams params;
  int k = 0;
  double exponent = 0.0;  ///< achieved alpha1
};
[[nodiscard]] DensityChoice choose_poly_exponent(double r1, double r2);

/// Theorem 6 search: given 0 < r1 < r2 < 1 and eps > 0, returns
/// (params, k) with alpha1(x) in [r1, r2] and alpha1(x') < alpha1(x)+eps.
[[nodiscard]] DensityChoice choose_logstar_exponent(double r1, double r2,
                                                    double eps);

/// gamma_i = round(base^{alpha_i}) for a profile; clamped to >= 2.
[[nodiscard]] std::vector<std::int64_t> gammas_from_profile(
    const std::vector<double>& alphas, double base);

}  // namespace lcl::core
