// Batched multi-threaded experiment execution.
//
// A landscape sweep is a set of independent runs: build an instance, run a
// `Program` on the `Engine`, verify the output with a checker, record a
// `MeasuredRun`. Runs share nothing (each job owns its tree and engine), so
// a sweep is embarrassingly parallel. `BatchRunner` executes a vector of
// jobs across a persistent `std::thread` pool and aggregates the samples in
// *job order*: `run_all(jobs)[i]` always corresponds to `jobs[i]`, and every
// job carries its own deterministic seed, so results are bit-identical for
// any thread count (including 1).
//
// Instance construction inside jobs goes through each worker thread's
// reusable `graph::TreeBuilder` arena (`graph::tls_build_arena()`): every
// `graph::make_*` builder and the family registry route through it, so a
// sweep of thousands of jobs reallocates no adjacency scaffolding after
// the first build on each worker — only the emitted Trees' exact-size CSR
// arrays are allocated per run, and the engine itself snapshots nothing.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "algo/registry.hpp"
#include "core/experiment.hpp"
#include "graph/tree.hpp"
#include "local/engine.hpp"
#include "problems/checkers.hpp"

namespace lcl::core {

/// One unit of work: a closure from a deterministic seed to a verified
/// measurement. Jobs must be self-contained (no shared mutable state); the
/// runner may execute them on any thread in any order.
struct BatchJob {
  std::string label;
  double scale = 0.0;  ///< the sweep variable, copied into the result
  std::uint64_t seed = 0;
  std::function<MeasuredRun(std::uint64_t seed)> run;
};

/// Builds the instance for one job. Must not touch shared mutable state.
using InstanceBuilder = std::function<graph::Tree(std::uint64_t seed)>;
/// Creates the program that will run on the built instance.
using ProgramFactory =
    std::function<std::unique_ptr<local::Program>(const graph::Tree&)>;
/// Verifies the run's outputs against the instance.
using RunChecker = std::function<problems::CheckResult(
    const graph::Tree&, const local::RunStats&)>;

/// Composes the canonical (instance-builder, program-factory, checker)
/// triple into a `BatchJob`: builds the tree, runs the program on a
/// fresh `Engine`, checks the outputs, and fills in the `MeasuredRun`
/// through `core::measure_run` (termination distribution included).
/// Failures map onto the `RunStatus` taxonomy: a throwing builder yields
/// `kBuildFailed`, a run that hits `max_rounds` yields `kTruncated` with
/// censored partial stats (the checker is skipped), a rejected output
/// yields `kCheckFailed`.
[[nodiscard]] BatchJob make_job(
    std::string label, double scale, std::uint64_t seed,
    InstanceBuilder build, ProgramFactory make_program, RunChecker check,
    std::int64_t max_rounds = std::numeric_limits<int>::max());

/// Like `make_job`, but builds the instance from the named registry
/// family (graph/families.hpp) at `n` nodes with the job seed, so any
/// scenario can sweep any solver across any family by name. `delta` == 0
/// uses the family's default degree bound.
[[nodiscard]] BatchJob make_family_job(
    std::string label, double scale, std::uint64_t seed,
    std::string family, graph::NodeId n, int delta,
    ProgramFactory make_program, RunChecker check,
    std::int64_t max_rounds = std::numeric_limits<int>::max());

/// The fully registry-driven composition: instance from the named
/// *family* registry entry, algorithm from the named *solver* registry
/// entry (algo/registry.hpp). The job builds the family instance at `n`
/// with the job seed, applies the solver's declared input needs
/// (`algo::prepare_instance`), instantiates the solver through its
/// factory with `config` (validated eagerly, so misconfigured sweeps
/// fail at construction), runs it, and certifies the outputs with the
/// solver's own checker binding — any solver on any compatible family
/// through one code path.
[[nodiscard]] BatchJob make_solver_job(
    std::string label, double scale, std::uint64_t seed,
    std::string solver, algo::SolverConfig config, std::string family,
    graph::NodeId n, int delta,
    std::int64_t max_rounds = std::numeric_limits<int>::max());

struct BatchOptions {
  /// Worker count; 0 means `std::thread::hardware_concurrency()`.
  int threads = 0;
};

/// A persistent thread pool executing batches of jobs. Construction spawns
/// the workers; they idle between batches and are joined on destruction.
class BatchRunner {
 public:
  explicit BatchRunner(const BatchOptions& opts = {});
  ~BatchRunner();

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  /// Number of worker threads in the pool.
  [[nodiscard]] int threads() const {
    return static_cast<int>(workers_.size());
  }

  /// Executes all jobs and returns their measurements in job order. A job
  /// whose closure throws yields a `MeasuredRun` with
  /// `status == RunStatus::kException` and the exception message in
  /// `check_reason` (the batch still completes). Blocks until every job
  /// has finished.
  std::vector<MeasuredRun> run_all(const std::vector<BatchJob>& jobs);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< signals workers: batch available
  std::condition_variable done_cv_;  ///< signals run_all: batch finished
  const std::vector<BatchJob>* jobs_ = nullptr;  // guarded by mu_
  std::vector<MeasuredRun>* results_ = nullptr;  // guarded by mu_
  std::size_t next_job_ = 0;                     // guarded by mu_
  std::size_t pending_ = 0;                      // guarded by mu_
  bool shutdown_ = false;                        // guarded by mu_
  std::vector<std::thread> workers_;
};

/// Convenience wrapper: run a full batch on a transient pool.
[[nodiscard]] std::vector<MeasuredRun> run_batch(
    const std::vector<BatchJob>& jobs, int threads = 0);

}  // namespace lcl::core
