// Experiment harness shared by the benches: builds paper instances,
// runs solvers, verifies outputs with the independent checkers, and
// collects (scale, node-averaged) samples for exponent fits.
//
// Measurement model. Node-averaged complexity is interesting precisely
// because the average hides stragglers: in the paper's constructions most
// nodes terminate in O(1) rounds while a vanishing fraction runs for
// n^Theta(1). A `MeasuredRun` therefore carries the termination-round
// *distribution* (exact tail percentiles plus a log-bucketed histogram,
// see `TermSummary`), a typed `RunStatus` instead of a bare bool, and —
// after `run_sweep` aggregation — the spread across repetitions.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/fitting.hpp"
#include "graph/builders.hpp"
#include "local/engine.hpp"
#include "problems/checkers.hpp"

namespace lcl::core {

/// The failure taxonomy of the measurement pipeline. Everything that can
/// go wrong with a run is one of these — no more collapsing distinct
/// failures into an opaque reason string.
enum class RunStatus {
  kOk = 0,       ///< ran to completion, checker accepted
  kCheckFailed,  ///< ran to completion, checker rejected
  kTruncated,    ///< hit max_rounds; stats are censored partials
  kBuildFailed,  ///< instance construction threw
  kException,    ///< program / engine / checker threw
};

/// Stable lowercase name, used as the JSON "status" value.
[[nodiscard]] const char* to_string(RunStatus status);

/// Summary of a run's termination-round distribution {T_v}.
///
/// Percentiles use the nearest-rank definition (pXX = smallest t such
/// that at least XX% of the nodes have T_v <= t) and are *exact* when the
/// summary comes from a single run. `hist` is the distribution in
/// logarithmic buckets — bucket 0 counts T_v == 0, bucket b >= 1 counts
/// T_v in [2^(b-1), 2^b - 1] — compact enough to snapshot for every run
/// while still separating the O(1) bulk from the n^Theta(1) stragglers.
/// `merge` pools histograms across repetitions; a pooled summary's
/// percentiles are recomputed from the buckets and are therefore
/// accurate to bucket resolution (each reported as the bucket's upper
/// edge).
struct TermSummary {
  std::int64_t p50 = 0;
  std::int64_t p90 = 0;
  std::int64_t p99 = 0;
  std::vector<std::int64_t> hist;  ///< log-bucket counts; empty = no data

  /// Exact summary from per-node termination rounds (O(n)).
  [[nodiscard]] static TermSummary from_rounds(
      const std::vector<std::int64_t>& termination_round);
  /// Exact summary from `count_by_round[t]` = #{v : T_v == t}
  /// (`local::RunProfile::term_count`).
  [[nodiscard]] static TermSummary from_counts(
      const std::vector<std::int64_t>& count_by_round);

  /// Pools `other` into this summary (bucket-wise sum; percentiles are
  /// refreshed from the pooled buckets). Merging into an empty summary
  /// copies `other` verbatim, keeping its exact percentiles.
  void merge(const TermSummary& other);

  /// Total node count across the histogram.
  [[nodiscard]] std::int64_t total() const;
};

/// Outcome of one verified run, or of a `run_sweep` point aggregated over
/// repetitions. Raw (single-run) records have `reps == 1`; aggregated
/// records carry the rep spread and the pooled distribution of the ok
/// repetitions only, so a failed rep can never pollute the averages.
struct MeasuredRun {
  double scale = 0.0;         ///< the sweep variable (n or Lambda)
  double node_averaged = 0.0; ///< mean over ok reps when aggregated
  std::int64_t worst_case = 0;
  std::int64_t n = 0;
  double build_ms = -1.0;     ///< instance-construction wall time;
                              ///< < 0 = not recorded (only make_job /
                              ///< make_family_job-based jobs measure it)
  /// Defaults to kException: a record nobody filled in represents a
  /// production failure, never a silently-valid measurement.
  RunStatus status = RunStatus::kException;
  std::string check_reason;   ///< human detail for non-ok statuses
  TermSummary term;           ///< T_v distribution (pooled over ok reps)

  // Repetition spread, filled by run_sweep aggregation.
  int reps = 1;               ///< repetitions aggregated into this record
  int reps_ok = 0;            ///< how many of them were kOk
  double na_stddev = 0.0;     ///< stddev of node_averaged over ok reps
  double na_min = 0.0;        ///< min of node_averaged over ok reps
  double na_max = 0.0;        ///< max of node_averaged over ok reps

  [[nodiscard]] bool ok() const { return status == RunStatus::kOk; }
};

/// Builds a `MeasuredRun` from engine stats and a checker verdict:
/// fills the distribution summary and resolves the status taxonomy. A
/// truncated run is `kTruncated` regardless of `verdict` (partial
/// outputs are not checkable) with the truncation details in
/// `check_reason`. `node_averaged` defaults to `stats.node_averaged`;
/// callers using an adjusted average overwrite it afterwards.
[[nodiscard]] MeasuredRun measure_run(double scale,
                                      const local::RunStats& stats,
                                      const problems::CheckResult& verdict);

/// As `measure_run`, but with the scalar node-average replaced by
/// `weight_adjusted_average` (the distribution summary keeps the raw
/// T_v). Shared by the Pi^{2.5}/Pi^{3.5}/density sweeps.
[[nodiscard]] MeasuredRun measure_run_weight_adjusted(
    double scale, const graph::Tree& tree, const local::RunStats& stats,
    const problems::CheckResult& verdict);

/// Pretty-prints a table of runs (with tail percentiles, rep spread, and
/// status) plus the fitted exponent vs. the predicted range [lo, hi]
/// (pass lo == hi for a point prediction).
void print_experiment(const std::string& title,
                      const std::vector<MeasuredRun>& runs,
                      const std::string& scale_name, double predicted_lo,
                      double predicted_hi);

/// Converts measured runs to fit samples (only ok runs).
[[nodiscard]] std::vector<Sample> to_samples(
    const std::vector<MeasuredRun>& runs);

/// Node-average with the Connect/Decline weight nodes' contribution
/// removed — exactly the accounting of Theorem 2's proof ("terminate in
/// O(log n) rounds and can therefore be ignored"); at finite n that
/// logarithmic floor otherwise swamps small exponents. Shared by the
/// Pi^{2.5}/Pi^{3.5} sweeps.
[[nodiscard]] double weight_adjusted_average(const graph::Tree& tree,
                                             const local::RunStats& stats);

/// Stable FNV-1a hash of a name, used as a base seed so a named sweep
/// cell's instances are identical no matter which other cells were
/// selected alongside it — single-cell reruns reproduce full sweeps
/// exactly. Recorded behavior: changing this function invalidates the
/// committed BENCH snapshots of every name-seeded scenario.
[[nodiscard]] std::uint64_t stable_name_seed(std::string_view name);

/// Path lengths ell_1..ell_k for the Definition-18 / Definition-25
/// constructions: ell_i = base^{alpha_i} for i < k and ell_k chosen so
/// the product is ~target_n. `alphas` has k-1 entries. The running
/// product saturates instead of overflowing, so extreme (base, alpha)
/// combinations degrade to ell_k == 1 rather than UB.
[[nodiscard]] std::vector<std::int64_t> lower_bound_lengths(
    const std::vector<double>& alphas, double base, std::int64_t target_n);

}  // namespace lcl::core
