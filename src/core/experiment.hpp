// Experiment harness shared by the benches: builds paper instances,
// runs solvers, verifies outputs with the independent checkers, and
// collects (scale, node-averaged) samples for exponent fits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/fitting.hpp"
#include "graph/builders.hpp"
#include "local/engine.hpp"

namespace lcl::core {

/// Outcome of one verified run.
struct MeasuredRun {
  double scale = 0.0;         ///< the sweep variable (n or Lambda)
  double node_averaged = 0.0;
  std::int64_t worst_case = 0;
  std::int64_t n = 0;
  double build_ms = -1.0;     ///< instance-construction wall time;
                              ///< < 0 = not recorded (only make_job /
                              ///< make_family_job-based jobs measure it)
  bool valid = false;         ///< checker verdict
  std::string check_reason;
};

/// Pretty-prints a table of runs plus the fitted exponent vs. the
/// predicted range [lo, hi] (pass lo == hi for a point prediction).
void print_experiment(const std::string& title,
                      const std::vector<MeasuredRun>& runs,
                      const std::string& scale_name, double predicted_lo,
                      double predicted_hi);

/// Converts measured runs to fit samples (only valid runs).
[[nodiscard]] std::vector<Sample> to_samples(
    const std::vector<MeasuredRun>& runs);

/// Node-average with the Connect/Decline weight nodes' contribution
/// removed — exactly the accounting of Theorem 2's proof ("terminate in
/// O(log n) rounds and can therefore be ignored"); at finite n that
/// logarithmic floor otherwise swamps small exponents. Shared by the
/// Pi^{2.5}/Pi^{3.5} sweeps.
[[nodiscard]] double weight_adjusted_average(const graph::Tree& tree,
                                             const local::RunStats& stats);

/// Path lengths ell_1..ell_k for the Definition-18 / Definition-25
/// constructions: ell_i = base^{alpha_i} for i < k and ell_k chosen so
/// the product is ~target_n. `alphas` has k-1 entries.
[[nodiscard]] std::vector<std::int64_t> lower_bound_lengths(
    const std::vector<double>& alphas, double base, std::int64_t target_n);

}  // namespace lcl::core
