#include "core/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace lcl::core::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.str = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        Value v;
        v.type = Value::Type::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        Value v;
        v.type = Value::Type::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      }
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by the snapshot writer; map them to U+FFFD).
          if (code >= 0xD800 && code <= 0xDFFF) code = 0xFFFD;
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(parsed)) {
      pos_ = start;
      fail("bad number '" + token + "'");
    }
    Value v;
    v.type = Value::Type::kNumber;
    v.number = parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Value::number_or(double fallback) const {
  return type == Type::kNumber ? number : fallback;
}

std::int64_t Value::int_or(std::int64_t fallback) const {
  if (type != Type::kNumber) return fallback;
  // Casting an out-of-range double to int64 is UB; the never-throw
  // accessor contract resolves such numbers (and NaN) to the fallback.
  // 9223372036854775808.0 is exactly 2^63.
  if (!(number >= -9223372036854775808.0 &&
        number < 9223372036854775808.0)) {
    return fallback;
  }
  return static_cast<std::int64_t>(number);
}

bool Value::bool_or(bool fallback) const {
  return type == Type::kBool ? boolean : fallback;
}

const std::string& Value::string_or(const std::string& fallback) const {
  return type == Type::kString ? str : fallback;
}

double Value::get_number(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->number_or(fallback);
}

bool Value::get_bool(std::string_view key, bool fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->bool_or(fallback);
}

std::string Value::get_string(std::string_view key,
                              const std::string& fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->string_or(fallback);
}

std::string format_number(double v, const char* fallback_fmt) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  if (v == std::floor(v) && v >= -9007199254740992.0 &&
      v <= 9007199254740992.0) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), fallback_fmt, v);
  }
  return buf;
}

namespace {

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double v) {
  out += format_number(v, "%.17g");
}

void dump_value(std::string& out, const Value& v, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string inner(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (v.type) {
    case Value::Type::kNull: out += "null"; break;
    case Value::Type::kBool: out += v.boolean ? "true" : "false"; break;
    case Value::Type::kNumber: dump_number(out, v.number); break;
    case Value::Type::kString: dump_string(out, v.str); break;
    case Value::Type::kArray: {
      if (v.array.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        out += inner;
        dump_value(out, v.array[i], indent + 1);
        if (i + 1 < v.array.size()) out += ',';
        out += '\n';
      }
      out += pad + "]";
      break;
    }
    case Value::Type::kObject: {
      if (v.object.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < v.object.size(); ++i) {
        out += inner;
        dump_string(out, v.object[i].first);
        out += ": ";
        dump_value(out, v.object[i].second, indent + 1);
        if (i + 1 < v.object.size()) out += ',';
        out += '\n';
      }
      out += pad + "}";
      break;
    }
  }
}

}  // namespace

std::string dump(const Value& v) {
  std::string out;
  dump_value(out, v, 0);
  out += '\n';
  return out;
}

Value parse(std::string_view text) {
  return Parser(text).parse_document();
}

Value parse_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("json: cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  if (!f && !f.eof()) throw std::runtime_error("json: cannot read " + path);
  return parse(buf.str());
}

}  // namespace lcl::core::json
