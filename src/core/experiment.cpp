#include "core/experiment.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

#include "problems/labels.hpp"

namespace lcl::core {

namespace {

/// Log-bucket index of a termination round: 0 for t == 0, else
/// bit_width(t), i.e. bucket b >= 1 holds t in [2^(b-1), 2^b - 1].
std::size_t bucket_of(std::int64_t t) {
  return t <= 0 ? 0
               : static_cast<std::size_t>(
                     std::bit_width(static_cast<std::uint64_t>(t)));
}

/// Upper edge of a log bucket — the value a pooled percentile reports.
std::int64_t bucket_edge(std::size_t b) {
  return b == 0 ? 0 : (std::int64_t{1} << b) - 1;
}

/// Nearest-rank percentile out of `count_by_value[t]` = #{v : T_v == t}.
std::int64_t percentile_from_counts(
    const std::vector<std::int64_t>& count_by_value, std::int64_t total,
    double q) {
  if (total <= 0) return 0;
  const std::int64_t rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(q * static_cast<double>(total))));
  std::int64_t seen = 0;
  for (std::size_t t = 0; t < count_by_value.size(); ++t) {
    seen += count_by_value[t];
    if (seen >= rank) return static_cast<std::int64_t>(t);
  }
  return static_cast<std::int64_t>(count_by_value.size()) - 1;
}

/// Nearest-rank percentile from log buckets, reported at bucket
/// resolution (upper edge).
std::int64_t percentile_from_buckets(
    const std::vector<std::int64_t>& buckets, std::int64_t total,
    double q) {
  if (total <= 0) return 0;
  const std::int64_t rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(q * static_cast<double>(total))));
  std::int64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) return bucket_edge(b);
  }
  return buckets.empty() ? 0 : bucket_edge(buckets.size() - 1);
}

}  // namespace

const char* to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kCheckFailed: return "check_failed";
    case RunStatus::kTruncated: return "truncated";
    case RunStatus::kBuildFailed: return "build_failed";
    case RunStatus::kException: return "exception";
  }
  return "exception";
}

TermSummary TermSummary::from_rounds(
    const std::vector<std::int64_t>& termination_round) {
  TermSummary s;
  if (termination_round.empty()) return s;
  std::int64_t max_t = 0;
  for (const std::int64_t t : termination_round) {
    max_t = std::max(max_t, t);
  }
  s.hist.assign(bucket_of(max_t) + 1, 0);
  // Exact percentiles need exact counts; build the by-round counting
  // vector once (O(n + max T_v)) and derive both.
  std::vector<std::int64_t> counts(static_cast<std::size_t>(max_t) + 1, 0);
  for (const std::int64_t t : termination_round) {
    ++counts[static_cast<std::size_t>(std::max<std::int64_t>(0, t))];
    ++s.hist[bucket_of(t)];
  }
  const auto total = static_cast<std::int64_t>(termination_round.size());
  s.p50 = percentile_from_counts(counts, total, 0.50);
  s.p90 = percentile_from_counts(counts, total, 0.90);
  s.p99 = percentile_from_counts(counts, total, 0.99);
  return s;
}

TermSummary TermSummary::from_counts(
    const std::vector<std::int64_t>& count_by_round) {
  TermSummary s;
  std::int64_t total = 0;
  for (std::size_t t = 0; t < count_by_round.size(); ++t) {
    if (count_by_round[t] == 0) continue;
    total += count_by_round[t];
    const std::size_t b = bucket_of(static_cast<std::int64_t>(t));
    if (s.hist.size() <= b) s.hist.resize(b + 1, 0);
    s.hist[b] += count_by_round[t];
  }
  if (total == 0) {
    s.hist.clear();
    return s;
  }
  s.p50 = percentile_from_counts(count_by_round, total, 0.50);
  s.p90 = percentile_from_counts(count_by_round, total, 0.90);
  s.p99 = percentile_from_counts(count_by_round, total, 0.99);
  return s;
}

void TermSummary::merge(const TermSummary& other) {
  if (other.hist.empty()) return;
  if (hist.empty()) {
    *this = other;  // keep the donor's exact percentiles
    return;
  }
  if (hist.size() < other.hist.size()) hist.resize(other.hist.size(), 0);
  for (std::size_t b = 0; b < other.hist.size(); ++b) {
    hist[b] += other.hist[b];
  }
  const std::int64_t n = total();
  p50 = percentile_from_buckets(hist, n, 0.50);
  p90 = percentile_from_buckets(hist, n, 0.90);
  p99 = percentile_from_buckets(hist, n, 0.99);
}

std::int64_t TermSummary::total() const {
  std::int64_t n = 0;
  for (const std::int64_t c : hist) n += c;
  return n;
}

MeasuredRun measure_run(double scale, const local::RunStats& stats,
                        const problems::CheckResult& verdict) {
  MeasuredRun r;
  r.scale = scale;
  r.node_averaged = stats.node_averaged;
  r.worst_case = stats.worst_case;
  r.n = stats.n;
  r.term = TermSummary::from_rounds(stats.termination_round);
  if (stats.truncated) {
    r.status = RunStatus::kTruncated;
    r.check_reason = "round limit " + std::to_string(stats.rounds) +
                     " hit with " + std::to_string(stats.unterminated) +
                     " nodes alive (stats censored)";
  } else if (verdict.ok) {
    r.status = RunStatus::kOk;
  } else {
    r.status = RunStatus::kCheckFailed;
    r.check_reason = verdict.reason;
  }
  r.reps = 1;
  r.reps_ok = r.ok() ? 1 : 0;
  r.na_min = r.node_averaged;
  r.na_max = r.node_averaged;
  return r;
}

MeasuredRun measure_run_weight_adjusted(
    double scale, const graph::Tree& tree, const local::RunStats& stats,
    const problems::CheckResult& verdict) {
  MeasuredRun r = measure_run(scale, stats, verdict);
  r.node_averaged = weight_adjusted_average(tree, stats);
  r.na_min = r.node_averaged;
  r.na_max = r.node_averaged;
  return r;
}

void print_experiment(const std::string& title,
                      const std::vector<MeasuredRun>& runs,
                      const std::string& scale_name, double predicted_lo,
                      double predicted_hi) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("  %12s %10s %14s %7s %7s %7s %12s %9s  %s\n",
              scale_name.c_str(), "n", "node-avg", "p50", "p90", "p99",
              "worst-case", "spread", "status");
  for (const MeasuredRun& r : runs) {
    // Build the whole row as a string before printing: handing
    // `("NO: " + reason).c_str()` straight to printf would pass a
    // pointer into a destroyed temporary.
    char cols[160];
    std::snprintf(cols, sizeof(cols),
                  "  %12.0f %10lld %14.3f %7lld %7lld %7lld %12lld",
                  r.scale, static_cast<long long>(r.n), r.node_averaged,
                  static_cast<long long>(r.term.p50),
                  static_cast<long long>(r.term.p90),
                  static_cast<long long>(r.term.p99),
                  static_cast<long long>(r.worst_case));
    std::string row = cols;
    char spread[32];
    if (r.reps > 1) {
      std::snprintf(spread, sizeof(spread), " %c%7.3f",
                    r.reps_ok == r.reps ? ' ' : '*', r.na_stddev);
    } else {
      std::snprintf(spread, sizeof(spread), " %9s", "-");
    }
    row += spread;
    if (r.ok()) {
      row += "  yes";
    } else {
      row += "  ";
      row += to_string(r.status);
      if (!r.check_reason.empty()) row += ": " + r.check_reason;
    }
    std::printf("%s\n", row.c_str());
  }
  const std::vector<Sample> samples = to_samples(runs);
  const PowerFit fit = fit_power_law(samples);
  if (fit.ok) {
    if (predicted_lo == predicted_hi) {
      std::printf(
          "  fitted exponent: %.3f (R^2 %.3f)   paper predicts: %.3f\n",
          fit.exponent, fit.r_squared, predicted_lo);
    } else {
      std::printf(
          "  fitted exponent: %.3f (R^2 %.3f)   paper predicts: "
          "[%.3f, %.3f]\n",
          fit.exponent, fit.r_squared, predicted_lo, predicted_hi);
    }
  }
  std::printf("\n");
}

std::vector<Sample> to_samples(const std::vector<MeasuredRun>& runs) {
  std::vector<Sample> samples;
  for (const MeasuredRun& r : runs) {
    if (r.ok() && r.scale > 0 && r.node_averaged > 0) {
      samples.push_back({r.scale, r.node_averaged});
    }
  }
  return samples;
}

double weight_adjusted_average(const graph::Tree& tree,
                               const local::RunStats& stats) {
  std::int64_t total = 0;
  for (graph::NodeId v = 0; v < tree.size(); ++v) {
    const bool weight =
        tree.input(v) == static_cast<int>(graph::WeightInput::kWeight);
    const bool copy =
        stats.output[static_cast<std::size_t>(v)].primary ==
        static_cast<int>(problems::WeightOut::kCopy);
    if (weight && !copy) continue;
    total += stats.termination_round[static_cast<std::size_t>(v)];
  }
  return static_cast<double>(total) / static_cast<double>(tree.size());
}

std::uint64_t stable_name_seed(std::string_view name) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV-1a prime
  }
  return h;
}

std::vector<std::int64_t> lower_bound_lengths(
    const std::vector<double>& alphas, double base, std::int64_t target_n) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> ell;
  std::int64_t prod = 1;
  for (double a : alphas) {
    const double raw = std::pow(base, a);
    // Saturate both the length itself and the running product: at
    // extreme (base, alpha) the construction degrades to ell_k == 1
    // instead of signed-overflow UB.
    const std::int64_t l =
        raw < static_cast<double>(kMax)
            ? std::max<std::int64_t>(1, std::llround(raw))
            : kMax;
    ell.push_back(l);
    prod = prod > kMax / l ? kMax : prod * l;
  }
  ell.push_back(std::max<std::int64_t>(1, target_n / std::max<std::int64_t>(
                                               prod, 1)));
  return ell;
}

}  // namespace lcl::core
