#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "problems/labels.hpp"

namespace lcl::core {

void print_experiment(const std::string& title,
                      const std::vector<MeasuredRun>& runs,
                      const std::string& scale_name, double predicted_lo,
                      double predicted_hi) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("  %12s %10s %14s %12s %8s\n", scale_name.c_str(), "n",
              "node-avg", "worst-case", "valid");
  for (const MeasuredRun& r : runs) {
    std::printf("  %12.0f %10lld %14.3f %12lld %8s\n", r.scale,
                static_cast<long long>(r.n), r.node_averaged,
                static_cast<long long>(r.worst_case),
                r.valid ? "yes" : ("NO: " + r.check_reason).c_str());
  }
  const std::vector<Sample> samples = to_samples(runs);
  if (samples.size() >= 2) {
    const PowerFit fit = fit_power_law(samples);
    if (predicted_lo == predicted_hi) {
      std::printf(
          "  fitted exponent: %.3f (R^2 %.3f)   paper predicts: %.3f\n",
          fit.exponent, fit.r_squared, predicted_lo);
    } else {
      std::printf(
          "  fitted exponent: %.3f (R^2 %.3f)   paper predicts: "
          "[%.3f, %.3f]\n",
          fit.exponent, fit.r_squared, predicted_lo, predicted_hi);
    }
  }
  std::printf("\n");
}

std::vector<Sample> to_samples(const std::vector<MeasuredRun>& runs) {
  std::vector<Sample> samples;
  for (const MeasuredRun& r : runs) {
    if (r.valid && r.scale > 0 && r.node_averaged > 0) {
      samples.push_back({r.scale, r.node_averaged});
    }
  }
  return samples;
}

double weight_adjusted_average(const graph::Tree& tree,
                               const local::RunStats& stats) {
  std::int64_t total = 0;
  for (graph::NodeId v = 0; v < tree.size(); ++v) {
    const bool weight =
        tree.input(v) == static_cast<int>(graph::WeightInput::kWeight);
    const bool copy =
        stats.output[static_cast<std::size_t>(v)].primary ==
        static_cast<int>(problems::WeightOut::kCopy);
    if (weight && !copy) continue;
    total += stats.termination_round[static_cast<std::size_t>(v)];
  }
  return static_cast<double>(total) / static_cast<double>(tree.size());
}

std::vector<std::int64_t> lower_bound_lengths(
    const std::vector<double>& alphas, double base, std::int64_t target_n) {
  std::vector<std::int64_t> ell;
  std::int64_t prod = 1;
  for (double a : alphas) {
    const std::int64_t l = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(std::pow(base, a))));
    ell.push_back(l);
    prod *= l;
  }
  ell.push_back(std::max<std::int64_t>(1, target_n / std::max<std::int64_t>(
                                               prod, 1)));
  return ell;
}

}  // namespace lcl::core
