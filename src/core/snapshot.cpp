#include "core/snapshot.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace lcl::core::snapshot {

namespace {

using json::Value;

// ---------------------------------------------------------------------------
// Wire primitives.
// ---------------------------------------------------------------------------

/// Value tags (one byte each). Appending new tags is a format-version
/// bump: old readers must reject rather than misparse.
enum : std::uint8_t {
  kTagNull = 0,
  kTagFalse = 1,
  kTagTrue = 2,
  kTagNumber = 3,   ///< number subtag + payload (see put_number)
  kTagStrNew = 4,   ///< varint length + bytes; assigns the next pool id
  kTagStrRef = 5,   ///< varint pool id of an already-seen string
  kTagArray = 6,    ///< varint count + elements
  kTagObject = 7,   ///< varint count + (pooled key, value) pairs
  kTagRuns = 8,     ///< columnar run-record array (see encode_runs)
};

/// Number subtags: 0 = integral zigzag varint, 1..8 = decimal-scaled
/// (value * 10^k is an exactly-representable integer, verified at
/// encode time), 9 = raw little-endian IEEE-754 bits.
enum : std::uint8_t { kNumInt = 0, kNumF64 = 9 };

constexpr double kPow10[9] = {1.0,    1e1, 1e2, 1e3, 1e4,
                              1e5,    1e6, 1e7, 1e8};
constexpr double kIntWindow = 9007199254740992.0;  // 2^53

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out += static_cast<char>(0x80 | (v & 0x7F));
    v >>= 7;
  }
  out += static_cast<char>(v);
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void put_svarint(std::string& out, std::int64_t v) {
  put_varint(out, zigzag(v));
}

/// Integral double in the exactly-representable window, excluding -0.0
/// (whose sign bit a varint would drop).
bool is_plain_int(double v) {
  return v == std::floor(v) && v >= -kIntWindow && v <= kIntWindow &&
         !(v == 0.0 && std::signbit(v));
}

/// Smallest k in 1..8 such that v * 10^k is an exactly-representable
/// integer whose rescaling reproduces v bit-for-bit; 0 when none.
int decimal_exponent(double v) {
  for (int k = 1; k <= 8; ++k) {
    const double scaled = v * kPow10[k];
    if (!(scaled >= -kIntWindow && scaled <= kIntWindow)) continue;
    const auto c = static_cast<std::int64_t>(std::llround(scaled));
    if (static_cast<double>(c) / kPow10[k] == v && c != 0) return k;
  }
  return 0;
}

/// One number, subtag + payload. Lossless: every branch decodes back to
/// the original bit pattern (the int/dec branches are verified
/// reconstructions, the f64 branch is the bit pattern itself).
void put_number(std::string& out, double v) {
  if (std::isfinite(v) && is_plain_int(v)) {
    out += static_cast<char>(kNumInt);
    put_svarint(out, static_cast<std::int64_t>(v));
    return;
  }
  if (std::isfinite(v)) {
    if (const int k = decimal_exponent(v); k != 0) {
      out += static_cast<char>(k);
      put_svarint(out,
                  static_cast<std::int64_t>(std::llround(v * kPow10[k])));
      return;
    }
  }
  out += static_cast<char>(kNumF64);
  const auto bits = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    out += static_cast<char>((bits >> (8 * i)) & 0xFF);
  }
}

// ---------------------------------------------------------------------------
// Bounds-checked reader over memory or a stream (fixed 64 KiB buffer, so
// read_file never materializes the whole payload).
// ---------------------------------------------------------------------------

class Reader {
 public:
  explicit Reader(std::string_view mem) : mem_(mem), size_(mem.size()) {}
  Reader(std::istream& stream, std::uint64_t size)
      : stream_(&stream), buf_(64 * 1024), size_(size) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("lclb: " + what + " at byte " +
                             std::to_string(pos_));
  }

  [[nodiscard]] std::uint64_t remaining() const { return size_ - pos_; }

  std::uint8_t u8() {
    std::uint8_t b = 0;
    bytes(&b, 1);
    return b;
  }

  void bytes(void* dst, std::size_t n) {
    if (n > remaining()) fail("unexpected end of stream");
    if (stream_ == nullptr) {
      std::memcpy(dst, mem_.data() + pos_, n);
      pos_ += n;
      return;
    }
    auto* out = static_cast<char*>(dst);
    while (n > 0) {
      if (buf_pos_ == buf_len_) refill();
      const std::size_t take = std::min(n, buf_len_ - buf_pos_);
      std::memcpy(out, buf_.data() + buf_pos_, take);
      buf_pos_ += take;
      out += take;
      pos_ += take;
      n -= take;
    }
  }

  std::string str(std::size_t n) {
    if (n > remaining()) fail("string length overruns the stream");
    std::string s(n, '\0');
    if (n > 0) bytes(s.data(), n);
    return s;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
    }
    fail("overlong varint");
  }

  std::int64_t svarint() { return unzigzag(varint()); }

  /// A count of elements that each occupy at least one byte: anything
  /// beyond the remaining payload is corruption, caught before any
  /// allocation sized by it.
  std::size_t count() {
    const std::uint64_t c = varint();
    if (c > remaining()) fail("element count overruns the stream");
    return static_cast<std::size_t>(c);
  }

  double number() {
    const std::uint8_t sub = u8();
    if (sub == kNumInt) return static_cast<double>(svarint());
    if (sub >= 1 && sub <= 8) {
      return static_cast<double>(svarint()) / kPow10[sub];
    }
    if (sub == kNumF64) {
      std::uint8_t raw[8];
      bytes(raw, 8);
      std::uint64_t bits = 0;
      for (int i = 0; i < 8; ++i) {
        bits |= static_cast<std::uint64_t>(raw[i]) << (8 * i);
      }
      return std::bit_cast<double>(bits);
    }
    fail("unknown number subtag " + std::to_string(sub));
  }

 private:
  void refill() {
    stream_->read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    buf_len_ = static_cast<std::size_t>(stream_->gcount());
    buf_pos_ = 0;
    if (buf_len_ == 0) fail("unexpected end of stream");
  }

  std::string_view mem_;
  std::istream* stream_ = nullptr;
  std::vector<char> buf_;
  std::size_t buf_pos_ = 0;
  std::size_t buf_len_ = 0;
  std::uint64_t pos_ = 0;
  std::uint64_t size_ = 0;
};

// ---------------------------------------------------------------------------
// The run-record schema: the fixed v1 column order (matching the
// snapshot writer's emission order, so present keys of a canonical run
// object are always a subsequence of this list).
// ---------------------------------------------------------------------------

enum class ColKind { kNum, kHist, kStr, kBool };

struct ColumnSpec {
  const char* key;
  ColKind kind;
};

constexpr ColumnSpec kRunColumns[] = {
    {"scale", ColKind::kNum},        {"n", ColKind::kNum},
    {"node_averaged", ColKind::kNum}, {"worst_case", ColKind::kNum},
    {"build_ms", ColKind::kNum},     {"term_p50", ColKind::kNum},
    {"term_p90", ColKind::kNum},     {"term_p99", ColKind::kNum},
    {"term_hist", ColKind::kHist},   {"reps", ColKind::kNum},
    {"reps_ok", ColKind::kNum},      {"na_stddev", ColKind::kNum},
    {"na_min", ColKind::kNum},       {"na_max", ColKind::kNum},
    {"status", ColKind::kStr},       {"valid", ColKind::kBool},
    {"check_reason", ColKind::kStr},
};
constexpr int kNumRunColumns =
    static_cast<int>(sizeof(kRunColumns) / sizeof(kRunColumns[0]));

int column_index(const std::string& key) {
  for (int i = 0; i < kNumRunColumns; ++i) {
    if (key == kRunColumns[i].key) return i;
  }
  return -1;
}

bool value_matches_kind(const Value& v, ColKind kind) {
  switch (kind) {
    case ColKind::kNum: return v.type == Value::Type::kNumber;
    case ColKind::kStr: return v.type == Value::Type::kString;
    case ColKind::kBool: return v.type == Value::Type::kBool;
    case ColKind::kHist:
      if (v.type != Value::Type::kArray) return false;
      for (const Value& e : v.array) {
        if (e.type != Value::Type::kNumber) return false;
      }
      return true;
  }
  return false;
}

/// A non-empty array qualifies for columnar encoding iff every element
/// is an object whose keys are distinct, drawn from the v1 column list,
/// in strictly increasing column order (so rebuilding present columns
/// in list order reproduces the original key order byte-for-byte), with
/// kind-matching values.
bool is_run_array(const Value& arr) {
  if (!arr.is_array() || arr.array.empty()) return false;
  for (const Value& e : arr.array) {
    if (!e.is_object() || e.object.empty()) return false;
    int prev = -1;
    for (const auto& [key, value] : e.object) {
      const int idx = column_index(key);
      if (idx <= prev) return false;  // unknown key, dup, or reordered
      if (!value_matches_kind(value, kRunColumns[idx].kind)) return false;
      prev = idx;
    }
  }
  return true;
}

// Column payload encodings (first payload byte of each present column).
enum : std::uint8_t {
  kNumColDelta = 0,    ///< first value + zigzag deltas (all integral)
  kNumColGeneric = 1,  ///< per-row put_number
  kNumColDup = 2,      ///< byte-identical to an earlier numeric column
  kStrColConst = 0,    ///< one pooled string for every present row
  kStrColPerRow = 1,   ///< pooled string per present row
  kHistColInt = 0,     ///< per row: varint length + zigzag varints
  kHistColGeneric = 1, ///< per row: varint length + put_number each
};

// Column presence descriptors.
enum : std::uint8_t { kColAbsent = 0, kColAll = 1, kColMixed = 2 };

// ---------------------------------------------------------------------------
// Encoder.
// ---------------------------------------------------------------------------

class Encoder {
 public:
  explicit Encoder(std::string& out) : out_(out) {}

  void value(const Value& v) {
    switch (v.type) {
      case Value::Type::kNull: out_ += static_cast<char>(kTagNull); break;
      case Value::Type::kBool:
        out_ += static_cast<char>(v.boolean ? kTagTrue : kTagFalse);
        break;
      case Value::Type::kNumber:
        out_ += static_cast<char>(kTagNumber);
        put_number(out_, v.number);
        break;
      case Value::Type::kString: string(v.str); break;
      case Value::Type::kArray:
        if (is_run_array(v)) {
          runs(v);
        } else {
          out_ += static_cast<char>(kTagArray);
          put_varint(out_, v.array.size());
          for (const Value& e : v.array) value(e);
        }
        break;
      case Value::Type::kObject:
        out_ += static_cast<char>(kTagObject);
        put_varint(out_, v.object.size());
        for (const auto& [key, member] : v.object) {
          string(key);
          value(member);
        }
        break;
    }
  }

 private:
  /// One gathered run column: presence per row plus the present values
  /// in row order.
  struct Column {
    std::vector<bool> present;
    std::vector<const Value*> values;
  };

  void string(const std::string& s) {
    // Adaptive pool: linear scan is fine at snapshot scale (the pool
    // holds distinct strings only, dominated by keys and statuses).
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (*pool_[i] == s) {
        out_ += static_cast<char>(kTagStrRef);
        put_varint(out_, i);
        return;
      }
    }
    out_ += static_cast<char>(kTagStrNew);
    put_varint(out_, s.size());
    out_ += s;
    pool_.push_back(&s);
  }

  void presence_bitmap(const std::vector<bool>& present) {
    std::uint8_t byte = 0;
    for (std::size_t i = 0; i < present.size(); ++i) {
      if (present[i]) byte |= static_cast<std::uint8_t>(1U << (i % 8));
      if (i % 8 == 7 || i + 1 == present.size()) {
        out_ += static_cast<char>(byte);
        byte = 0;
      }
    }
  }

  void runs(const Value& arr) {
    const std::size_t m = arr.array.size();
    out_ += static_cast<char>(kTagRuns);
    put_varint(out_, m);

    // Gather per-column presence and value pointers.
    std::vector<Column> cols(kNumRunColumns);
    for (auto& c : cols) c.present.assign(m, false);
    for (std::size_t row = 0; row < m; ++row) {
      for (const auto& [key, value] : arr.array[row].object) {
        const int idx = column_index(key);
        cols[static_cast<std::size_t>(idx)].present[row] = true;
        cols[static_cast<std::size_t>(idx)].values.push_back(&value);
      }
    }

    // Presence descriptors for all columns, then payloads in order.
    for (const Column& c : cols) {
      const std::size_t p = c.values.size();
      if (p == 0) {
        out_ += static_cast<char>(kColAbsent);
      } else if (p == m) {
        out_ += static_cast<char>(kColAll);
      } else {
        out_ += static_cast<char>(kColMixed);
        presence_bitmap(c.present);
      }
    }
    for (int ci = 0; ci < kNumRunColumns; ++ci) {
      const Column& c = cols[static_cast<std::size_t>(ci)];
      if (c.values.empty()) continue;
      switch (kRunColumns[ci].kind) {
        case ColKind::kNum: num_column(cols, ci); break;
        case ColKind::kHist: hist_column(c); break;
        case ColKind::kStr: str_column(c); break;
        case ColKind::kBool: bool_column(c); break;
      }
    }
  }

  void num_column(const std::vector<Column>& cols, int ci) {
    const Column& c = cols[static_cast<std::size_t>(ci)];
    // Duplicate of an earlier numeric column (same rows, same bits)?
    // na_min/na_max collapse onto node_averaged this way at reps == 1.
    for (int j = 0; j < ci; ++j) {
      const Column& src = cols[static_cast<std::size_t>(j)];
      if (kRunColumns[j].kind != ColKind::kNum) continue;
      if (src.present != c.present) continue;
      bool same = true;
      for (std::size_t r = 0; r < c.values.size() && same; ++r) {
        same = std::bit_cast<std::uint64_t>(c.values[r]->number) ==
               std::bit_cast<std::uint64_t>(src.values[r]->number);
      }
      if (same) {
        out_ += static_cast<char>(kNumColDup);
        out_ += static_cast<char>(j);
        return;
      }
    }
    bool all_int = true;
    for (const Value* v : c.values) {
      if (!is_plain_int(v->number)) {
        all_int = false;
        break;
      }
    }
    if (all_int) {
      out_ += static_cast<char>(kNumColDelta);
      std::int64_t prev = 0;
      for (std::size_t r = 0; r < c.values.size(); ++r) {
        const auto v = static_cast<std::int64_t>(c.values[r]->number);
        put_svarint(out_, r == 0 ? v : v - prev);
        prev = v;
      }
      return;
    }
    out_ += static_cast<char>(kNumColGeneric);
    for (const Value* v : c.values) put_number(out_, v->number);
  }

  void hist_column(const Column& c) {
    bool all_int = true;
    for (const Value* v : c.values) {
      for (const Value& e : v->array) {
        if (!is_plain_int(e.number)) {
          all_int = false;
          break;
        }
      }
    }
    out_ += static_cast<char>(all_int ? kHistColInt : kHistColGeneric);
    for (const Value* v : c.values) {
      put_varint(out_, v->array.size());
      for (const Value& e : v->array) {
        if (all_int) {
          put_svarint(out_, static_cast<std::int64_t>(e.number));
        } else {
          put_number(out_, e.number);
        }
      }
    }
  }

  void str_column(const Column& c) {
    bool constant = true;
    for (const Value* v : c.values) {
      if (v->str != c.values[0]->str) {
        constant = false;
        break;
      }
    }
    if (constant) {
      out_ += static_cast<char>(kStrColConst);
      string(c.values[0]->str);
    } else {
      out_ += static_cast<char>(kStrColPerRow);
      for (const Value* v : c.values) string(v->str);
    }
  }

  void bool_column(const Column& c) {
    std::vector<bool> bits;
    bits.reserve(c.values.size());
    for (const Value* v : c.values) bits.push_back(v->boolean);
    presence_bitmap(bits);
  }

  std::string& out_;
  std::vector<const std::string*> pool_;
};

// ---------------------------------------------------------------------------
// Decoder.
// ---------------------------------------------------------------------------

class Decoder {
 public:
  explicit Decoder(Reader& in) : in_(in) {}

  Value value() { return value_at_depth(0); }

 private:
  /// Nesting guard: a corrupt stream must not be able to recurse the
  /// decoder off the stack.
  static constexpr int kMaxDepth = 192;

  Value value_at_depth(int depth) {
    if (depth > kMaxDepth) in_.fail("nesting too deep");
    const std::uint8_t tag = in_.u8();
    Value v;
    switch (tag) {
      case kTagNull: return v;
      case kTagFalse:
      case kTagTrue:
        v.type = Value::Type::kBool;
        v.boolean = tag == kTagTrue;
        return v;
      case kTagNumber:
        v.type = Value::Type::kNumber;
        v.number = in_.number();
        return v;
      case kTagStrNew:
      case kTagStrRef:
        v.type = Value::Type::kString;
        v.str = string(tag);
        return v;
      case kTagArray: {
        v.type = Value::Type::kArray;
        const std::size_t count = in_.count();
        v.array.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
          v.array.push_back(value_at_depth(depth + 1));
        }
        return v;
      }
      case kTagObject: {
        v.type = Value::Type::kObject;
        const std::size_t count = in_.count();
        v.object.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
          std::string key = string(in_.u8());
          v.object.emplace_back(std::move(key), value_at_depth(depth + 1));
        }
        return v;
      }
      case kTagRuns: return runs();
      default: in_.fail("unknown value tag " + std::to_string(tag));
    }
  }

  std::string string(std::uint8_t tag) {
    if (tag == kTagStrNew) {
      const std::size_t len = in_.count();
      pool_.push_back(in_.str(len));
      return pool_.back();
    }
    if (tag == kTagStrRef) {
      const std::uint64_t id = in_.varint();
      if (id >= pool_.size()) in_.fail("string pool id out of range");
      return pool_[static_cast<std::size_t>(id)];
    }
    in_.fail("expected a string tag, got " + std::to_string(tag));
  }

  std::vector<bool> bitmap(std::size_t n) {
    std::vector<bool> bits(n);
    std::uint8_t byte = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i % 8 == 0) byte = in_.u8();
      bits[i] = (byte >> (i % 8)) & 1;
    }
    return bits;
  }

  Value runs() {
    const std::size_t m = in_.count();
    if (m == 0) in_.fail("empty run-columnar array");

    std::vector<std::vector<bool>> present(kNumRunColumns);
    for (int ci = 0; ci < kNumRunColumns; ++ci) {
      const std::uint8_t desc = in_.u8();
      if (desc == kColAbsent) {
        present[static_cast<std::size_t>(ci)].assign(m, false);
      } else if (desc == kColAll) {
        present[static_cast<std::size_t>(ci)].assign(m, true);
      } else if (desc == kColMixed) {
        present[static_cast<std::size_t>(ci)] = bitmap(m);
      } else {
        in_.fail("bad column presence descriptor " + std::to_string(desc));
      }
    }

    // Decode column payloads. Columns are materialized as Values in
    // present-row order; rows are then reassembled in column order.
    std::vector<std::vector<Value>> columns(kNumRunColumns);
    std::vector<std::vector<double>> numbers(kNumRunColumns);
    for (int ci = 0; ci < kNumRunColumns; ++ci) {
      const auto& pres = present[static_cast<std::size_t>(ci)];
      const auto p = static_cast<std::size_t>(
          std::count(pres.begin(), pres.end(), true));
      if (p == 0) continue;
      auto& out = columns[static_cast<std::size_t>(ci)];
      out.reserve(p);
      switch (kRunColumns[ci].kind) {
        case ColKind::kNum: {
          std::vector<double>& nums = numbers[static_cast<std::size_t>(ci)];
          nums.reserve(p);
          const std::uint8_t enc = in_.u8();
          if (enc == kNumColDelta) {
            std::int64_t acc = 0;
            for (std::size_t r = 0; r < p; ++r) {
              acc = r == 0 ? in_.svarint() : acc + in_.svarint();
              nums.push_back(static_cast<double>(acc));
            }
          } else if (enc == kNumColGeneric) {
            for (std::size_t r = 0; r < p; ++r) {
              nums.push_back(in_.number());
            }
          } else if (enc == kNumColDup) {
            const std::uint8_t src = in_.u8();
            if (src >= ci || kRunColumns[src].kind != ColKind::kNum ||
                numbers[src].size() != p) {
              in_.fail("bad duplicate-column reference");
            }
            nums = numbers[src];
          } else {
            in_.fail("unknown numeric column encoding " +
                     std::to_string(enc));
          }
          for (const double d : nums) {
            Value v;
            v.type = Value::Type::kNumber;
            v.number = d;
            out.push_back(std::move(v));
          }
          break;
        }
        case ColKind::kHist: {
          const std::uint8_t enc = in_.u8();
          if (enc != kHistColInt && enc != kHistColGeneric) {
            in_.fail("unknown histogram column encoding " +
                     std::to_string(enc));
          }
          for (std::size_t r = 0; r < p; ++r) {
            Value arr;
            arr.type = Value::Type::kArray;
            const std::size_t len = in_.count();
            arr.array.reserve(len);
            for (std::size_t i = 0; i < len; ++i) {
              Value e;
              e.type = Value::Type::kNumber;
              e.number = enc == kHistColInt
                             ? static_cast<double>(in_.svarint())
                             : in_.number();
              arr.array.push_back(std::move(e));
            }
            out.push_back(std::move(arr));
          }
          break;
        }
        case ColKind::kStr: {
          const std::uint8_t enc = in_.u8();
          if (enc == kStrColConst) {
            const std::string s = string(in_.u8());
            for (std::size_t r = 0; r < p; ++r) {
              Value v;
              v.type = Value::Type::kString;
              v.str = s;
              out.push_back(std::move(v));
            }
          } else if (enc == kStrColPerRow) {
            for (std::size_t r = 0; r < p; ++r) {
              Value v;
              v.type = Value::Type::kString;
              v.str = string(in_.u8());
              out.push_back(std::move(v));
            }
          } else {
            in_.fail("unknown string column encoding " +
                     std::to_string(enc));
          }
          break;
        }
        case ColKind::kBool: {
          const std::vector<bool> bits = bitmap(p);
          for (std::size_t r = 0; r < p; ++r) {
            Value v;
            v.type = Value::Type::kBool;
            v.boolean = bits[r];
            out.push_back(std::move(v));
          }
          break;
        }
      }
    }

    // Reassemble rows: present columns in list order, which is exactly
    // the key order the encoder required of the source objects.
    Value arr;
    arr.type = Value::Type::kArray;
    arr.array.reserve(m);
    std::vector<std::size_t> cursor(kNumRunColumns, 0);
    for (std::size_t row = 0; row < m; ++row) {
      Value obj;
      obj.type = Value::Type::kObject;
      for (int ci = 0; ci < kNumRunColumns; ++ci) {
        if (!present[static_cast<std::size_t>(ci)][row]) continue;
        auto& cur = cursor[static_cast<std::size_t>(ci)];
        obj.object.emplace_back(
            kRunColumns[ci].key,
            std::move(columns[static_cast<std::size_t>(ci)][cur]));
        ++cur;
      }
      arr.array.push_back(std::move(obj));
    }
    return arr;
  }

  Reader& in_;
  std::vector<std::string> pool_;
};

void check_header(Reader& in) {
  char magic[4];
  in.bytes(magic, 4);
  if (std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("lclb: bad magic (not a .lclb snapshot)");
  }
  const std::uint8_t version = in.u8();
  if (version != kFormatVersion) {
    throw std::runtime_error("lclb: unsupported format version " +
                             std::to_string(version) + " (reader supports " +
                             std::to_string(kFormatVersion) + ")");
  }
}

Value decode_body(Reader& in) {
  check_header(in);
  Value v = Decoder(in).value();
  if (in.remaining() != 0) {
    in.fail("trailing garbage after document");
  }
  return v;
}

}  // namespace

std::string encode(const Value& v) {
  std::string out;
  out.append(kMagic, 4);
  out += static_cast<char>(kFormatVersion);
  Encoder(out).value(v);
  return out;
}

Value decode(std::string_view bytes) {
  Reader in(bytes);
  return decode_body(in);
}

void write_file(const std::string& path, const Value& v) {
  const std::string bytes = encode(v);
  std::ofstream f(path, std::ios::binary);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!f) throw std::runtime_error("lclb: cannot write " + path);
}

Value read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw std::runtime_error("lclb: cannot open " + path);
  const auto size = static_cast<std::uint64_t>(f.tellg());
  f.seekg(0);
  Reader in(f, size);
  return decode_body(in);
}

bool is_snapshot_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  char magic[4] = {0, 0, 0, 0};
  f.read(magic, 4);
  return f.gcount() == 4 && std::memcmp(magic, kMagic, 4) == 0;
}

Value load_any(const std::string& path) {
  return is_snapshot_file(path) ? read_file(path)
                                : json::parse_file(path);
}

}  // namespace lcl::core::snapshot
