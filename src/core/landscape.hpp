// The node-averaged complexity landscape of LCLs on bounded-degree trees
// (Figures 1 and 2 of the paper), as a queryable table.
//
// Each entry describes one region of the landscape: its asymptotic form,
// whether it is a realizable class, a dense region, or a proven gap, and
// which result (prior work vs. this paper) established it. The Figure-2
// bench prints the table and attaches measured witnesses from the
// simulator for the realizable rows.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lcl::core {

/// Kind of landscape region.
enum class RegionKind {
  kClass,  ///< realizable complexity class (e.g. Theta(log* n)^c)
  kDense,  ///< infinitely dense set of realizable classes
  kGap,    ///< proven empty region
};

/// Which side of the literature established the region.
enum class Provenance {
  kPriorWork,   ///< known before this paper (Fig. 1)
  kThisPaper,   ///< new in this paper (Fig. 2)
};

struct LandscapeRegion {
  std::string range;        ///< human-readable asymptotic range
  RegionKind kind;
  Provenance provenance;
  std::string source;       ///< theorem/corollary or citation
  std::string witness;      ///< problem family witnessing the region
};

/// Deterministic node-averaged landscape rows, low to high complexity.
/// `after` = true gives the completed Figure-2 landscape; false gives the
/// prior-work Figure-1 view (gaps known before this paper only).
[[nodiscard]] std::vector<LandscapeRegion> landscape(bool after);

[[nodiscard]] std::string to_string(RegionKind k);
[[nodiscard]] std::string to_string(Provenance p);

/// First row whose `range` starts with `range_prefix`; nullptr if none.
/// The problem classifier (problems/classify.hpp) uses this to bind its
/// predictions to the authoritative Figure-2 rows instead of restating
/// them.
[[nodiscard]] const LandscapeRegion* find_region(
    const std::vector<LandscapeRegion>& rows, std::string_view range_prefix);

}  // namespace lcl::core
