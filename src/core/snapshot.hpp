// Compact binary perf snapshots (.lclb): a versioned columnar encoding
// of the lclbench JSON snapshot DOM.
//
// The split mirrors ACL's compressed_tracks design: `core::json` stays
// the readable, lossless export/import view, and this codec is the
// storage form the perf history actually accumulates. `encode` maps any
// `core::json::Value` to bytes and `decode` maps them back to a Value
// that is *dump-identical* to the input (`json::dump(decode(encode(v)))
// == json::dump(v)`), so a snapshot can round-trip JSON -> binary ->
// JSON byte-identically through the `core::json::dump` golden path with
// zero information loss — including the 53-bit integral problem seeds.
//
// Wire format v1 (all multi-byte integers are LEB128 varints; signed
// values are zigzag-mapped first; raw doubles are little-endian IEEE
// bit patterns):
//
//   magic "LCLB" | u8 format version | one encoded value
//
// Value tags: null / false / true / number / string-new / string-ref /
// array / object / run-columnar. Strings (keys and values alike) go
// through one adaptive document-wide pool: the first occurrence is
// written inline and assigns the next pool id, every repeat is a 1-2
// byte reference — statuses, family names, and object keys collapse to
// almost nothing. Numbers are never stored as text: an integral double
// in the exactly-representable window [-2^53, 2^53] is a zigzag varint,
// a short-decimal double (value * 10^k integral-representable for some
// k <= 8, verified bit-exactly at encode time) is (k, varint), anything
// else is the raw 8-byte bit pattern. All three decode to the original
// bits.
//
// The size win comes from the run-columnar tag: an array whose elements
// all look like lclbench run records (keys a subsequence of the fixed
// v1 column order, expected types) is transposed into per-column
// streams — presence bitmaps for optional columns, delta+zigzag varints
// for integer-valued columns (n, worst_case, term percentiles, ...),
// duplicate-column references (na_min/na_max == node_averaged at reps
// 1), constant-string and bool-bitmap columns for status/valid, and
// varint-run histograms. Arrays that do not match fall back to the
// generic encoding, so losslessness never depends on the schema guess.
//
// Versioning rules: the format version is bumped whenever decode of
// existing bytes would change (new tags, new run columns, changed
// column order). The reader rejects unknown versions and bad magic with
// a clear error rather than guessing, and every read is bounds-checked
// so truncated or corrupt streams throw instead of over-allocating.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/json.hpp"

namespace lcl::core::snapshot {

/// "LCLB" — first four bytes of every .lclb file.
inline constexpr char kMagic[4] = {'L', 'C', 'L', 'B'};
/// Current wire-format version (byte 5 of the file).
inline constexpr std::uint8_t kFormatVersion = 1;

/// Encodes a JSON DOM into .lclb bytes (including magic + version).
/// Deterministic: equal DOMs produce equal bytes, which is what lets a
/// golden .lclb file pin the encoder.
[[nodiscard]] std::string encode(const json::Value& v);

/// Decodes .lclb bytes back into the JSON DOM. Throws
/// `std::runtime_error` with a byte offset on bad magic, an unsupported
/// version, truncation, or a corrupt stream.
[[nodiscard]] json::Value decode(std::string_view bytes);

/// Writes `encode(v)` to a file. Throws `std::runtime_error` when the
/// file cannot be written.
void write_file(const std::string& path, const json::Value& v);

/// Streams a .lclb file through a fixed-size buffer into `decode`'s
/// DOM — the whole file is never materialized as text. Throws like
/// `decode`, plus on unreadable files.
[[nodiscard]] json::Value read_file(const std::string& path);

/// True when the file starts with the .lclb magic (sniffed, not guessed
/// from the extension). False on unreadable or short files.
[[nodiscard]] bool is_snapshot_file(const std::string& path);

/// Loads a snapshot in either form: .lclb magic -> binary reader,
/// anything else -> `json::parse_file`. The mixed-format entry point
/// used by `lclbench --compare`, `--history`, and `--export`.
[[nodiscard]] json::Value load_any(const std::string& path);

}  // namespace lcl::core::snapshot
