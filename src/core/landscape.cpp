#include "core/landscape.hpp"

namespace lcl::core {

std::string to_string(RegionKind k) {
  switch (k) {
    case RegionKind::kClass: return "class";
    case RegionKind::kDense: return "dense";
    case RegionKind::kGap: return "gap";
  }
  return "?";
}

std::string to_string(Provenance p) {
  switch (p) {
    case Provenance::kPriorWork: return "prior work";
    case Provenance::kThisPaper: return "this paper";
  }
  return "?";
}

const LandscapeRegion* find_region(const std::vector<LandscapeRegion>& rows,
                                   std::string_view range_prefix) {
  for (const LandscapeRegion& r : rows) {
    if (std::string_view(r.range).substr(0, range_prefix.size()) ==
        range_prefix) {
      return &r;
    }
  }
  return nullptr;
}

std::vector<LandscapeRegion> landscape(bool after) {
  using RK = RegionKind;
  using PV = Provenance;
  std::vector<LandscapeRegion> rows;

  rows.push_back({"O(1)", RK::kClass, PV::kPriorWork,
                  "trivial / order-invariant LCLs",
                  "constant-output problems"});
  if (after) {
    rows.push_back({"omega(1) .. (log* n)^{o(1)}", RK::kGap, PV::kThisPaper,
                    "Theorem 7 (decidable membership in O(1))",
                    "-"});
    rows.push_back({"(log* n)^{Omega(1)} .. o(log* n)", RK::kDense,
                    PV::kThisPaper,
                    "Theorems 4-6 (Pi^{3.5}_{Delta,d,k} density)",
                    "weighted 3.5-coloring, exponent alpha1(x)"});
  } else {
    rows.push_back({"omega(1) .. o(log* n)", RK::kGap, PV::kPriorWork,
                    "open before this paper (no problems known)", "-"});
  }
  rows.push_back({"Theta((log* n)^{1/2^{k-1}})", RK::kClass,
                  after ? PV::kThisPaper : PV::kPriorWork,
                  "Theorem 11 (k-hierarchical 3.5-coloring)",
                  "k-hierarchical 3.5-coloring"});
  rows.push_back({"Theta(log* n)", RK::kClass, PV::kPriorWork,
                  "Feuilloley'17 on paths; GRB22 gap below",
                  "3-coloring of paths"});
  rows.push_back({"omega(log* n) .. n^{o(1)}", RK::kGap, PV::kPriorWork,
                  "BBK+23 (DISC'23)", "-"});
  rows.push_back({"Theta(n^{1/(2k-1)})", RK::kClass, PV::kPriorWork,
                  "BBK+23 (k-hierarchical 2.5-coloring)",
                  "k-hierarchical 2.5-coloring"});
  if (after) {
    rows.push_back({"n^{Omega(1)} .. o(sqrt n): dense", RK::kDense,
                    PV::kThisPaper,
                    "Theorems 1-3 (Pi^{2.5}_{Delta,d,k} density)",
                    "weighted 2.5-coloring, exponent alpha1(x)"});
    rows.push_back({"Theta(n^{1/k}) incl. Theta(sqrt n)", RK::kClass,
                    PV::kThisPaper,
                    "Lemma 69 (weight-augmented 2.5-coloring)",
                    "k-hierarchical weight-augmented 2.5-coloring"});
    rows.push_back({"omega(sqrt n) .. o(n)", RK::kGap, PV::kThisPaper,
                    "Corollary 60 (via Feuilloley's lemma)", "-"});
  }
  rows.push_back({"Theta(n)", RK::kClass, PV::kPriorWork,
                  "2-coloring of paths (worst case Theta(n))",
                  "2-coloring of paths"});
  return rows;
}

}  // namespace lcl::core
