#include "core/batch.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "graph/families.hpp"

namespace lcl::core {

BatchJob make_job(std::string label, double scale, std::uint64_t seed,
                  InstanceBuilder build, ProgramFactory make_program,
                  RunChecker check, std::int64_t max_rounds) {
  BatchJob job;
  job.label = std::move(label);
  job.scale = scale;
  job.seed = seed;
  job.run = [scale, build = std::move(build),
             make_program = std::move(make_program),
             check = std::move(check), max_rounds](std::uint64_t s) {
    // Instance construction gets its own failure class: a bad generator
    // parameterization is a different bug than a solver crash, and the
    // structured status keeps them apart in every snapshot.
    const auto build_start = std::chrono::steady_clock::now();
    graph::Tree tree;
    try {
      tree = build(s);
    } catch (const std::exception& e) {
      MeasuredRun r;
      r.scale = scale;
      r.status = RunStatus::kBuildFailed;
      r.check_reason = std::string("instance build threw: ") + e.what();
      return r;
    }
    const double build_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - build_start)
            .count();
    const std::unique_ptr<local::Program> program = make_program(tree);
    // One reusable workspace per worker thread: every job after a
    // thread's first runs the engine allocation-free.
    local::Engine engine(tree);
    const local::RunStats stats =
        engine.run(*program, local::tls_workspace(), max_rounds);
    // A truncated run is measured, not checked: measure_run marks it
    // kTruncated and records the censored partial stats.
    const problems::CheckResult verdict =
        stats.truncated ? problems::CheckResult::pass() : check(tree, stats);
    MeasuredRun r = measure_run(scale, stats, verdict);
    r.build_ms = build_ms;
    return r;
  };
  return job;
}

BatchJob make_family_job(std::string label, double scale,
                         std::uint64_t seed, std::string family,
                         graph::NodeId n, int delta,
                         ProgramFactory make_program, RunChecker check,
                         std::int64_t max_rounds) {
  // Validate the configuration eagerly so misconfigured sweeps fail at
  // construction, not on a worker thread mid-batch: the name must
  // resolve, and a tiny dry build exercises the family's own parameter
  // checks (unsatisfiable delta etc.) through the real code path.
  if (graph::find_family(family) == nullptr) {
    throw std::invalid_argument("make_family_job: unknown family '" +
                                family + "'");
  }
  (void)graph::make_family_instance(family, /*n=*/8, /*seed=*/0, delta);
  InstanceBuilder build = [family = std::move(family), n,
                           delta](std::uint64_t s) {
    return graph::make_family_instance(family, n, s, delta);
  };
  return make_job(std::move(label), scale, seed, std::move(build),
                  std::move(make_program), std::move(check), max_rounds);
}

BatchJob make_solver_job(std::string label, double scale,
                         std::uint64_t seed, std::string solver,
                         algo::SolverConfig config, std::string family,
                         graph::NodeId n, int delta,
                         std::int64_t max_rounds) {
  // Resolve and validate both registry axes eagerly: an unknown solver,
  // an out-of-range option, or an unknown/unsatisfiable family throws
  // here, at sweep construction, not on a worker thread mid-batch.
  const algo::SolverSpec& spec = algo::solver(solver);
  config.validate(spec);
  if (graph::find_family(family) == nullptr) {
    throw std::invalid_argument("make_solver_job: unknown family '" +
                                family + "'");
  }
  {
    // Dry-build the whole cell on a tiny instance: the family's own
    // parameter checks (unsatisfiable delta etc.) AND the solver
    // factory's relational option checks (|gammas| != k-1, gamma == 1,
    // ...) both fire here, at sweep construction — not as a
    // kException on every worker-thread run.
    graph::Tree probe =
        graph::make_family_instance(family, /*n=*/8, /*seed=*/0, delta);
    algo::prepare_instance(probe, spec.needs, /*seed=*/0);
    algo::SolverConfig probe_config = config;
    probe_config.seed = 0;
    (void)spec.factory(probe, probe_config);
  }

  BatchJob job;
  job.label = std::move(label);
  job.scale = scale;
  job.seed = seed;
  job.run = [scale, &spec, config = std::move(config),
             family = std::move(family), n, delta,
             max_rounds](std::uint64_t s) {
    const auto build_start = std::chrono::steady_clock::now();
    graph::Tree tree;
    try {
      tree = graph::make_family_instance(family, n, s, delta);
      algo::prepare_instance(tree, spec.needs, s);
    } catch (const std::exception& e) {
      MeasuredRun r;
      r.scale = scale;
      r.status = RunStatus::kBuildFailed;
      r.check_reason = std::string("instance build threw: ") + e.what();
      return r;
    }
    const double build_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - build_start)
            .count();
    algo::SolverConfig run_config = config;
    run_config.seed = s;
    const std::unique_ptr<local::Program> program =
        spec.factory(tree, run_config);
    local::Engine engine(tree);
    const local::RunStats stats =
        engine.run(*program, local::tls_workspace(), max_rounds);
    const problems::CheckResult verdict =
        stats.truncated ? problems::CheckResult::pass()
                        : spec.certify(tree, *program, stats, run_config);
    MeasuredRun r = measure_run(scale, stats, verdict);
    r.build_ms = build_ms;
    return r;
  };
  return job;
}

BatchRunner::BatchRunner(const BatchOptions& opts) {
  int threads = opts.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::max(threads, 1);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

BatchRunner::~BatchRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::vector<MeasuredRun> BatchRunner::run_all(
    const std::vector<BatchJob>& jobs) {
  std::vector<MeasuredRun> results(jobs.size());
  if (jobs.empty()) return results;
  std::unique_lock<std::mutex> lock(mu_);
  jobs_ = &jobs;
  results_ = &results;
  next_job_ = 0;
  pending_ = jobs.size();
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  jobs_ = nullptr;
  results_ = nullptr;
  return results;
}

void BatchRunner::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return shutdown_ || (jobs_ != nullptr && next_job_ < jobs_->size());
    });
    if (shutdown_) return;
    while (jobs_ != nullptr && next_job_ < jobs_->size()) {
      const std::size_t i = next_job_++;
      const BatchJob& job = (*jobs_)[i];
      std::vector<MeasuredRun>* results = results_;
      lock.unlock();
      MeasuredRun r;
      try {
        r = job.run(job.seed);
      } catch (const std::exception& e) {
        r.scale = job.scale;
        r.status = RunStatus::kException;
        r.check_reason = std::string("job threw: ") + e.what();
      } catch (...) {
        r.scale = job.scale;
        r.status = RunStatus::kException;
        r.check_reason = "job threw a non-std exception";
      }
      lock.lock();
      (*results)[i] = std::move(r);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

std::vector<MeasuredRun> run_batch(const std::vector<BatchJob>& jobs,
                                   int threads) {
  BatchOptions opts;
  opts.threads = threads;
  BatchRunner runner(opts);
  return runner.run_all(jobs);
}

}  // namespace lcl::core
