#include "core/fitting.hpp"

#include <cmath>

namespace lcl::core {

PowerFit fit_power_law(const std::vector<Sample>& samples) {
  PowerFit fit;  // ok == false until every degeneracy check passes
  if (samples.size() < 2) return fit;
  const double n = static_cast<double>(samples.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (const Sample& s : samples) {
    if (s.scale <= 0 || s.measure <= 0) return fit;
    const double x = std::log(s.scale);
    const double y = std::log(s.measure);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    syy += y * y;
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return fit;
  fit.exponent = (n * sxy - sx * sy) / denom;
  fit.log_coeff = (sy - fit.exponent * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (const Sample& s : samples) {
    const double pred =
        fit.log_coeff + fit.exponent * std::log(s.scale);
    const double r = std::log(s.measure) - pred;
    ss_res += r * r;
  }
  fit.r_squared = ss_tot <= 1e-12 ? 1.0 : 1.0 - ss_res / ss_tot;
  fit.ok = true;
  return fit;
}

}  // namespace lcl::core
