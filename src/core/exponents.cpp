#include "core/exponents.hpp"

#include <cmath>
#include <stdexcept>

namespace lcl::core {

double efficiency_x(int delta, int d) {
  if (delta < d + 3) throw std::invalid_argument("exponents: Delta >= d+3");
  if (d < 1) throw std::invalid_argument("exponents: d >= 1");
  return std::log(static_cast<double>(delta - d - 1)) /
         std::log(static_cast<double>(delta - 1));
}

double efficiency_x_prime(int delta, int d) {
  if (delta < d + 3) throw std::invalid_argument("exponents: Delta >= d+3");
  return std::log(static_cast<double>(delta - d + 1)) /
         std::log(static_cast<double>(delta - 1));
}

double alpha1_poly(double x, int k) {
  if (k < 1) throw std::invalid_argument("exponents: k >= 1");
  double sum = 0.0;
  double term = 1.0;  // (2-x)^0
  for (int j = 0; j < k; ++j) {
    sum += term;
    term *= (2.0 - x);
  }
  return 1.0 / sum;
}

double alpha1_logstar(double x, int k) {
  if (k < 1) throw std::invalid_argument("exponents: k >= 1");
  double sum = 0.0;
  double term = 1.0;
  for (int j = 0; j <= k - 2; ++j) {
    sum += term;
    term *= (2.0 - x);
  }
  return 1.0 / (1.0 + (1.0 - x) * sum);
}

namespace {

std::vector<double> profile_from_alpha1(double alpha1, double x, int k) {
  std::vector<double> alphas;
  double a = alpha1;
  for (int i = 1; i <= k - 1; ++i) {
    alphas.push_back(a);
    a *= (2.0 - x);
  }
  return alphas;
}

}  // namespace

std::vector<double> alpha_profile_poly(double x, int k) {
  return profile_from_alpha1(alpha1_poly(x, k), x, k);
}

std::vector<double> alpha_profile_logstar(double x, int k) {
  return profile_from_alpha1(alpha1_logstar(x, k), x, k);
}

GadgetParams params_for_rational(int p, int q) {
  if (p < 1 || p >= q) throw std::invalid_argument("exponents: 1 <= p < q");
  if (q > 24) throw std::invalid_argument("exponents: q too large");
  GadgetParams out;
  out.delta = (1 << q) + 1;
  out.d = (1 << q) - (1 << p);
  // Sanity: Delta - d - 1 = 2^p, Delta - 1 = 2^q, so x = p/q exactly.
  out.x = efficiency_x(out.delta, out.d);
  out.x_prime = efficiency_x_prime(out.delta, out.d);
  return out;
}

GadgetParams params_with_gap(int p, int q, double eps) {
  if (eps <= 0) throw std::invalid_argument("exponents: eps > 0");
  for (int c = 1;; ++c) {
    if (c * q > 24) {
      throw std::invalid_argument(
          "exponents: cannot realize gap eps (Delta overflow)");
    }
    GadgetParams params = params_for_rational(c * p, c * q);
    if (params.x_prime - params.x < eps) return params;
  }
}

DensityChoice choose_poly_exponent(double r1, double r2) {
  if (!(0.0 < r1 && r1 < r2 && r2 <= 0.5)) {
    throw std::invalid_argument("exponents: need 0 < r1 < r2 <= 1/2");
  }
  // Pick k with 1/(2k-1) <= r1 (so alpha1 spans past r1 as x -> 0..1),
  // then scan rationals p/q for alpha1 in [r1, r2]. alpha1_poly is
  // continuous and increasing in x (Lemma 57), range [1/(2k-1), 1/k].
  for (int k = 1; k <= 16; ++k) {
    const double lo = alpha1_poly(0.0, k);  // 1/(2k-1)
    const double hi = alpha1_poly(1.0, k);  // 1/k
    if (hi < r1 || lo > r2) continue;
    for (int q = 2; q <= 12; ++q) {
      for (int p = 1; p < q; ++p) {
        GadgetParams params = params_for_rational(p, q);
        const double a = alpha1_poly(params.x, k);
        if (a >= r1 && a <= r2) {
          return {params, k, a};
        }
      }
    }
  }
  throw std::runtime_error("exponents: no rational found in [r1, r2]");
}

DensityChoice choose_logstar_exponent(double r1, double r2, double eps) {
  if (!(0.0 < r1 && r1 < r2 && r2 < 1.0)) {
    throw std::invalid_argument("exponents: need 0 < r1 < r2 < 1");
  }
  for (int k = 1; k <= 16; ++k) {
    const double lo = alpha1_logstar(0.0, k);  // 1/(2^{k}-1)... = 1/(2k-?)
    const double hi = alpha1_logstar(1.0, k);  // 1
    if (hi < r1 || lo > r2) continue;
    for (int q = 2; q <= 8; ++q) {
      for (int p = 1; p < q; ++p) {
        GadgetParams base = params_for_rational(p, q);
        const double a = alpha1_logstar(base.x, k);
        if (a < r1 || a > r2) continue;
        // Squeeze x' toward x until the exponent gap closes below eps.
        for (int c = 1; c * q <= 24; ++c) {
          GadgetParams params = params_for_rational(c * p, c * q);
          const double a_lo = alpha1_logstar(params.x, k);
          const double a_hi = alpha1_logstar(params.x_prime, k);
          if (a_hi - a_lo < eps) {
            return {params, k, a_lo};
          }
        }
      }
    }
  }
  throw std::runtime_error("exponents: no (params, k) meets the gap");
}

std::vector<std::int64_t> gammas_from_profile(
    const std::vector<double>& alphas, double base) {
  std::vector<std::int64_t> gammas;
  gammas.reserve(alphas.size());
  for (double a : alphas) {
    const double g = std::pow(base, a);
    gammas.push_back(
        std::max<std::int64_t>(2, static_cast<std::int64_t>(std::llround(g))));
  }
  return gammas;
}

}  // namespace lcl::core
