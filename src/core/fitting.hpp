// Log-log least-squares exponent fitting for the benches: given sample
// pairs (scale, measured-rounds), estimate c in rounds ~ scale^c.
#pragma once

#include <cstdint>
#include <vector>

namespace lcl::core {

/// One measured point of a scaling experiment.
struct Sample {
  double scale = 0.0;    ///< n, or the virtual log* Lambda
  double measure = 0.0;  ///< measured node-averaged rounds
};

/// Least-squares slope/intercept of log(measure) against log(scale).
/// `ok == false` means the fit is undefined (fewer than two samples, a
/// non-positive sample, or a degenerate x range) and the other fields
/// are meaningless; reporting layers must check it instead of assuming a
/// fit exists.
struct PowerFit {
  bool ok = false;
  double exponent = 0.0;   ///< fitted c
  double log_coeff = 0.0;  ///< fitted log-constant
  double r_squared = 0.0;  ///< goodness of fit
};

/// Fits rounds ~ scale^c. Never throws: degenerate inputs (size < 2,
/// non-positive samples, identical scales) yield `ok == false`, so a
/// stray all-equal sweep cannot abort a whole bench run.
[[nodiscard]] PowerFit fit_power_law(const std::vector<Sample>& samples);

}  // namespace lcl::core
