// Minimal recursive-descent JSON reader for the measurement pipeline.
//
// The bench layer *writes* snapshots with a hand-rolled serializer
// (bench/scenario.cpp); this is the matching reader that `lclbench
// --compare` and the tests use to load BENCH_*.json files back. It is a
// deliberate subset implementation — no external dependency, no DOM
// mutation, object keys kept in file order — just enough to parse what
// the snapshot writer (and ordinary hand-written JSON) produces.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lcl::core::json {

/// A parsed JSON value. Tagged union over the six JSON types; the
/// accessors never throw — missing keys / wrong types resolve to the
/// caller's default, which is exactly what reading snapshots of mixed
/// schema versions needs.
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // file order

  [[nodiscard]] bool is_null() const { return type == Type::kNull; }
  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Typed reads with defaults (no throw, no coercion).
  [[nodiscard]] double number_or(double fallback) const;
  [[nodiscard]] std::int64_t int_or(std::int64_t fallback) const;
  [[nodiscard]] bool bool_or(bool fallback) const;
  [[nodiscard]] const std::string& string_or(
      const std::string& fallback) const;

  /// Convenience: `find(key)` then the typed read, defaulting when the
  /// key is missing entirely.
  [[nodiscard]] double get_number(std::string_view key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;
  [[nodiscard]] std::string get_string(std::string_view key,
                                       const std::string& fallback) const;
};

/// Parses a complete JSON document. Throws `std::runtime_error` with a
/// byte offset on malformed input or trailing garbage.
[[nodiscard]] Value parse(std::string_view text);

/// Reads and parses a file. Throws `std::runtime_error` if the file
/// cannot be read or does not parse.
[[nodiscard]] Value parse_file(const std::string& path);

/// Shared JSON number formatting: non-finite values become "null",
/// integral values inside the exactly-representable double range
/// [-2^53, 2^53] print as full-precision integers (53-bit problem seeds
/// must survive a snapshot round-trip), anything else through
/// `fallback_fmt` (a printf format for one double — the snapshot writer
/// passes "%.6g" for compact files, `dump` "%.17g" for exact
/// round-trips). Single source of truth for the integral cutoff.
[[nodiscard]] std::string format_number(double v, const char* fallback_fmt);

/// Serializes a Value into a canonical, deterministic text form:
/// 2-space-indented objects/arrays with keys in stored (file) order,
/// integral numbers in [-2^53, 2^53] printed as integers, other numbers
/// via shortest-round-trip %.17g, and a trailing newline. `dump` and
/// `parse` are exact inverses on this form (`dump(parse(dump(v))) ==
/// dump(v)`), which is what the golden-file round-trip test pins: any
/// drift between the snapshot schema, the parser, and this serializer
/// shows up as a byte diff at test time rather than inside `--compare`.
[[nodiscard]] std::string dump(const Value& v);

}  // namespace lcl::core::json
