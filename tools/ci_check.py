#!/usr/bin/env python3
"""CI assertion gates for lclbench smoke snapshots.

Each subcommand checks one smoke JSON emitted by the workflow in
.github/workflows/ci.yml (the assertions used to live there as inline
heredocs; keeping them here makes them reviewable, reusable locally,
and identical across workflows):

    ci_check.py matrix   smoke_matrix.json    solver-matrix coverage
    ci_check.py problems smoke_problems.json  sweep agreement + certification
    ci_check.py all      smoke_all.json       full-registry run validity
    ci_check.py service  responses.jsonl      lcld replay of the pinned script
    ci_check.py service-tcp ./build/lcld tests/golden/service_smoke.jsonl
                                              same replay over TCP (pipelined)

`service-tcp` is self-contained: it launches the given lcld binary on an
ephemeral TCP port, sends the whole pinned script as one pipelined burst
(exercising the transport supervisor's in-flight window and ordered
write backlog), validates the responses with the same assertions as
`service`, then SIGTERMs the daemon and requires a clean drain (exit 0).

Exit status: 0 when every assertion holds, 1 with a message otherwise.
Run locally with e.g.:

    ./build/lclbench --run solver_matrix --n 0.02 --seed 5 \
        --json smoke_matrix.json
    python3 tools/ci_check.py matrix smoke_matrix.json
"""

import json
import re
import signal
import socket
import subprocess
import sys


def check_matrix(d):
    """Tiny-n certification of the solver x family cross-product:
    every compatible cell ran, checked, and the matrix can't silently
    shrink below its historical floor."""
    m = d["scenarios"][0]["metrics"]
    assert m["cells_check_failed"] == 0, m
    assert m["cells_ok"] == m["cells_total"], m
    assert m["cells_ok"] >= 30, m
    assert len(d["algos"]) >= 10, d["algos"]
    print(f"{int(m['cells_ok'])}/{int(m['cells_total'])} cells certified")


def check_problems(d):
    """Generator -> classifier -> certified agreement on the sampled
    LCL sweep: deterministic in (--problem-seed, --n), so exact
    agreement is assertable."""
    assert d["problems"] == 20 and d["problem_seed"] == 1, d
    m = d["scenarios"][0]["metrics"]
    assert m["problems_total"] >= 20, m
    assert m["problems_agree"] == m["problems_total"], m
    assert m["problems_uncertified"] == 0, m
    print(f"{int(m['problems_agree'])}/{int(m['problems_total'])} "
          "problems agree, all runs certified")


def check_all(d):
    """Every registered scenario ran end to end and every run is
    schema-complete and checker-valid."""
    assert d["seed"] == 7, d["seed"]
    assert len(d["families"]) >= 6, d["families"]
    names = {s["name"] for s in d["scenarios"]}
    assert "family_sweep" in names and "engine_micro" in names, names
    assert "problem_sweep" in names, names
    assert d["schema"] == "lclbench-v3", d["schema"]
    # Kernel provenance: the resolved --engine choice is always recorded
    # (auto collapses to the widest compiled path before emission).
    assert d["engine"] in ("scalar", "simd"), d.get("engine")
    # Dispatch provenance (additive to lclbench-v3): the resolved
    # --dispatch contract is always recorded (auto collapses to batch).
    assert d["dispatch"] in ("pernode", "batch"), d.get("dispatch")
    bad = [(s["name"], se["title"], r.get("status"))
           for s in d["scenarios"]
           for se in s["series"]
           for r in se["runs"] if not r["valid"]]
    assert not bad, bad[:5]
    runs = [r for s in d["scenarios"] for se in s["series"]
            for r in se["runs"]]
    assert all("term_hist" in r and "term_p99" in r and
               "reps" in r and "na_stddev" in r for r in runs)
    print(f"{len(d['scenarios'])} scenarios, all runs valid")


def check_service(lines):
    """lcld --stdio replay of tests/golden/service_smoke.jsonl: one
    response line per request line, in order. The script sends the same
    classify twice (the second must be served from cache byte-identically),
    an info probe (which must see that hit), a solve that must certify,
    and two malformed lines that must map to their typed errors."""
    rs = [json.loads(line) for line in lines]
    assert len(rs) == 6, f"expected 6 response lines, got {len(rs)}"
    assert lines[0] == lines[1], \
        f"repeated classify not byte-identical:\n{lines[0]}\n{lines[1]}"
    classify = rs[0]
    assert classify["ok"] and classify["type"] == "classify", classify
    assert classify["id"] == 1 and classify["key"], classify
    assert classify["predicted"], classify
    info = rs[2]
    assert info["ok"] and info["type"] == "info", info
    assert info["cache_hits"] >= 1, info
    assert info["cache_entries"] >= 1, info
    solve = rs[3]
    assert solve["ok"] and solve["type"] == "solve", solve
    assert solve["certified"] is True, solve
    assert solve["key"] == classify["key"], (solve, classify)
    assert not rs[4]["ok"] and rs[4]["error"] == "unknown_type", rs[4]
    assert rs[4]["id"] == 4, rs[4]
    assert not rs[5]["ok"] and rs[5]["error"] == "bad_json", rs[5]
    assert "id" not in rs[5], rs[5]
    print(f"6/6 service responses ok, cache_hits={int(info['cache_hits'])}")


def check_service_tcp(lcld_path, script_path):
    """End-to-end TCP replay: launch lcld on an ephemeral port, send the
    pinned script as ONE pipelined burst over a single connection (the
    responses must still come back in request order), validate with the
    same assertions as the stdio replay, then SIGTERM-drain."""
    proc = subprocess.Popen(
        [lcld_path, "--tcp", "127.0.0.1:0", "--threads", "2"],
        stderr=subprocess.PIPE, text=True)
    try:
        announce = proc.stderr.readline()
        m = re.search(r"tcp://[0-9.]+:(\d+)", announce)
        assert m, f"no endpoint announcement on stderr: {announce!r}"
        port = int(m.group(1))
        with open(script_path, "rb") as f:
            requests = [l for l in f.read().splitlines() if l.strip()]
        conn = socket.create_connection(("127.0.0.1", port), timeout=30)
        conn.settimeout(30)
        conn.sendall(b"".join(r + b"\n" for r in requests))
        buf = b""
        while buf.count(b"\n") < len(requests):
            chunk = conn.recv(1 << 16)
            assert chunk, "daemon closed the connection mid-replay"
            buf += chunk
        conn.close()
        check_service([l.decode() for l in buf.splitlines()])
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0, \
            f"lcld did not drain cleanly: exit {proc.returncode}"
        print(f"tcp replay ok: pipelined burst of {len(requests)} "
              "requests, ordered responses, clean SIGTERM drain")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


CHECKS = {
    "matrix": check_matrix,
    "problems": check_problems,
    "all": check_all,
    "service": check_service,
}


def main(argv):
    if len(argv) == 4 and argv[1] == "service-tcp":
        try:
            check_service_tcp(argv[2], argv[3])
        except (OSError, ValueError, KeyError, AssertionError,
                subprocess.TimeoutExpired) as e:
            print(f"ci_check service-tcp: FAILED: {e!r}", file=sys.stderr)
            return 1
        return 0
    if len(argv) != 3 or argv[1] not in CHECKS:
        subs = "|".join(sorted(CHECKS))
        print(f"usage: {argv[0]} {{{subs}}} <snapshot.json>\n"
              f"       {argv[0]} service-tcp <lcld> <script.jsonl>",
              file=sys.stderr)
        return 1
    try:
        with open(argv[2]) as f:
            if argv[1] == "service":
                # Line-delimited responses, not one JSON document.
                d = [line.rstrip("\n") for line in f if line.strip()]
            else:
                d = json.load(f)
        CHECKS[argv[1]](d)
    except (OSError, ValueError, KeyError, AssertionError) as e:
        print(f"ci_check {argv[1]}: FAILED: {e!r}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
